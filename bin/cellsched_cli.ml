(* Command-line interface to the scheduling framework.

   Subcommands:
     generate   produce a random streaming application (DagGen-style)
     info       summarize a graph file (tasks, edges, CCR, depth)
     map        compute a mapping with a chosen strategy
     simulate   run a mapped stream through the Cell simulator
     compare    run every strategy side by side on one graph
     schedule   print the periodic steady-state schedule
     faults     inject faults and recover online by remapping
     batch      answer a stream of mapping requests through the mapping cache
     serve      long-lived scheduling server (stdin pipe or Unix socket)
     cache      inspect or reset a persistent mapping cache
     obs        map + simulate with metrics on, dump the registry
     dot        export a graph to Graphviz

   map, simulate and faults accept --metrics FILE to dump the metrics
   registry (JSON, or Prometheus text for .prom files); simulate also
   exports Chrome trace JSON (--trace-json) and the throughput ramp-up
   curve (--rampup-csv). map --trace-json records the solve as
   request-scoped spans (rendered by obs spans), and serve --trace-dir
   writes one such file per completed request. File-writing options
   refuse to overwrite existing files unless --force is given. *)

open Cmdliner

(* --- shared arguments ---------------------------------------------------- *)

let graph_arg =
  let doc = "Application graph file (cellstream text format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

let n_spe_arg =
  let doc = "Number of SPEs (0-8)." in
  Arg.(value & opt int 8 & info [ "spes" ] ~docv:"N" ~doc)

let strategy_arg =
  let strategies =
    [
      ("milp", `Milp);
      ("greedy-mem", `Greedy_mem);
      ("greedy-cpu", `Greedy_cpu);
      ("density-pack", `Density);
      ("lp-round", `Lp_round);
      ("ppe-only", `Ppe_only);
      ("portfolio", `Portfolio);
      ("bb", `Bb);
    ]
  in
  let doc =
    Printf.sprintf "Mapping strategy: %s."
      (String.concat ", " (List.map fst strategies))
  in
  Arg.(value & opt (enum strategies) `Milp & info [ "strategy"; "s" ] ~doc)

let parallel_arg =
  let doc =
    "Run the search on a domain pool of $(docv) workers (0 or no value: \
     CELLSTREAM_DOMAINS, else the recommended domain count). Results are \
     bitwise identical to the sequential run."
  in
  Arg.(
    value
    & opt ~vopt:(Some 0) (some int) None
    & info [ "parallel" ] ~docv:"N" ~doc)

(* Run [f] with the pool the --parallel option asks for (none by
   default); the pool's lifetime is the call, and its worker stats are
   published into the metrics registry before shutdown. *)
let with_optional_pool parallel f =
  match parallel with
  | None -> f None
  | Some n ->
      let size = if n <= 0 then Par.Pool.default_size () else n in
      Par.Pool.with_pool ~size (fun pool ->
          Fun.protect
            ~finally:(fun () -> Par.Pool.publish_stats pool)
            (fun () -> f (Some pool)))

let gap_arg =
  let doc = "Relative optimality gap for the MILP solver (paper: 0.05)." in
  Arg.(value & opt float 0.05 & info [ "gap" ] ~doc)

let time_limit_arg =
  let doc = "MILP time limit in seconds." in
  Arg.(value & opt float 30. & info [ "time-limit" ] ~doc)

let platform_of n_spe = Cell.Platform.qs22 ~n_spe ()

let load_graph path = Streaming.Serialize.of_file path

(* A solver's proof obligations alongside its mapping: the proven lower
   bound on the period, the implied gap, and whether the gap target was
   actually certified (vs a limit stopping the search early). *)
type bound_report = { lower_bound : float; bound_gap : float; proven : bool }

let compute_mapping_bounded ?(span = Obs.Span.null) strategy ~gap ~time_limit
    ?should_stop ?pool platform g =
  match strategy with
  | `Ppe_only -> (Cellsched.Heuristics.ppe_only platform g, None)
  | `Greedy_mem -> (Cellsched.Heuristics.greedy_mem platform g, None)
  | `Greedy_cpu -> (Cellsched.Heuristics.greedy_cpu platform g, None)
  | `Density -> (Cellsched.Heuristics.density_pack platform g, None)
  | `Lp_round -> (Cellsched.Heuristics.lp_rounding platform g, None)
  | `Portfolio ->
      let r = Cellsched.Portfolio.solve ~span ?pool ?should_stop platform g in
      let p = r.Cellsched.Portfolio.period in
      ( r.Cellsched.Portfolio.best,
        Some
          {
            lower_bound = r.Cellsched.Portfolio.lower_bound;
            bound_gap =
              (if p > 0. && Float.is_finite p then
                 (p -. r.Cellsched.Portfolio.lower_bound) /. p
               else 0.);
            proven = false;
          } )
  | `Bb ->
      let options =
        {
          Cellsched.Mapping_search.default_options with
          rel_gap = gap;
          time_limit;
        }
      in
      let r =
        Cellsched.Mapping_search.solve ~span ~options ?should_stop ?pool
          platform g
      in
      ( r.Cellsched.Mapping_search.mapping,
        Some
          {
            lower_bound = r.Cellsched.Mapping_search.lower_bound;
            bound_gap = r.Cellsched.Mapping_search.gap;
            proven = r.Cellsched.Mapping_search.optimal_within_gap;
          } )
  | `Milp ->
      let options =
        {
          Cellsched.Milp_solver.default_options with
          rel_gap = gap;
          time_limit;
        }
      in
      let r =
        Cellsched.Milp_solver.solve ~span ~options ?should_stop ?pool platform g
      in
      ( r.Cellsched.Milp_solver.mapping,
        Some
          {
            lower_bound = r.Cellsched.Milp_solver.lower_bound;
            bound_gap = r.Cellsched.Milp_solver.gap;
            proven = r.Cellsched.Milp_solver.proven_within_gap;
          } )

let compute_mapping strategy ~gap ~time_limit ?should_stop ?pool platform g =
  fst
    (compute_mapping_bounded strategy ~gap ~time_limit ?should_stop ?pool
       platform g)

let report_bound = function
  | None -> ()
  | Some { lower_bound; bound_gap; proven } ->
      Format.printf "lower bound: %.6g s (gap %.2f%%, %s)@." lower_bound
        (100. *. bound_gap)
        (if proven then "proven within target gap" else "not proven optimal")

let report_mapping platform g mapping =
  Format.printf "%a@." (Cellsched.Mapping.pp platform g) mapping;
  (* One engine evaluation answers violations, bottleneck and throughput. *)
  let ev = Cellsched.Eval.create platform g mapping in
  List.iter
    (fun v ->
      Format.printf "violation: %a@."
        (Cellsched.Steady_state.pp_violation platform)
        v)
    (Cellsched.Eval.violations ev);
  let resource, time = Cellsched.Eval.bottleneck ev in
  let period = Cellsched.Eval.period ev in
  Format.printf "predicted throughput: %.2f instances/s@."
    (if period <= 0. then infinity else 1. /. period);
  Format.printf "bottleneck: %a (%.4f ms per instance)@."
    (Cellsched.Steady_state.pp_resource platform)
    resource (time *. 1e3)

(* --- observability plumbing ----------------------------------------------- *)

let force_arg =
  let doc = "Overwrite output files that already exist." in
  Arg.(value & flag & info [ "force" ] ~doc)

let metrics_arg =
  let doc =
    "Enable the metrics registry and dump it to $(docv) after the run \
     (JSON, or Prometheus text exposition when $(docv) ends in .prom)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Output files refuse to clobber unless --force was given. *)
let write_file ~force path contents =
  if (not force) && Sys.file_exists path then begin
    Printf.eprintf
      "cellsched: %s exists, not overwriting (pass --force to replace)\n" path;
    exit 2
  end;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  Printf.printf "wrote %s\n" path

let enable_metrics = function
  | None -> ()
  | Some _ -> Obs.Metrics.set_enabled true

let dump_metrics ~force = function
  | None -> ()
  | Some path ->
      let render =
        if Filename.check_suffix path ".prom" then Obs.Metrics.to_prometheus
        else Obs.Metrics.to_json
      in
      write_file ~force path (render Obs.Metrics.default)

(* --- generate ------------------------------------------------------------ *)

let generate_cmd =
  let run n fat density regularity jump chain ccr seed output =
    let rng = Support.Rng.create seed in
    let costs = Daggen.Generator.default_costs in
    let g =
      if chain then Daggen.Generator.generate_chain ~rng ~n ~costs
      else
        Daggen.Generator.generate ~rng
          ~shape:{ Daggen.Generator.n; fat; density; regularity; jump }
          ~costs
    in
    let g = Streaming.Ccr.scale_to g ~target:ccr in
    (match output with
    | Some path ->
        Streaming.Serialize.to_file g path;
        Printf.printf "wrote %s (%d tasks, %d edges, CCR %.3f)\n" path
          (Streaming.Graph.n_tasks g)
          (Streaming.Graph.n_edges g)
          (Streaming.Ccr.compute g)
    | None -> print_string (Streaming.Serialize.to_string g));
    0
  in
  let n = Arg.(value & opt int 50 & info [ "n" ] ~doc:"Number of tasks.") in
  let fat = Arg.(value & opt float 0.3 & info [ "fat" ] ~doc:"Width factor.") in
  let density =
    Arg.(value & opt float 0.4 & info [ "density" ] ~doc:"Edge probability.")
  in
  let regularity =
    Arg.(value & opt float 0.6 & info [ "regularity" ] ~doc:"Layer regularity.")
  in
  let jump = Arg.(value & opt int 2 & info [ "jump" ] ~doc:"Max layer jump.") in
  let chain =
    Arg.(value & flag & info [ "chain" ] ~doc:"Generate a linear chain.")
  in
  let ccr =
    Arg.(value & opt float 0.775 & info [ "ccr" ] ~doc:"Target CCR.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random streaming application")
    Term.(
      const run $ n $ fat $ density $ regularity $ jump $ chain $ ccr $ seed
      $ output)

(* --- info ----------------------------------------------------------------- *)

let info_cmd =
  let run path =
    let g = load_graph path in
    Format.printf "%a@." Streaming.Graph.pp g;
    Format.printf "CCR: %.3f@." (Streaming.Ccr.compute g);
    let fp = Cellsched.Steady_state.first_periods g in
    Format.printf "pipeline depth: %d periods@." (Array.fold_left max 0 fp);
    0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Summarize an application graph")
    Term.(const run $ graph_arg)

(* --- map ------------------------------------------------------------------ *)

let map_cmd =
  let run path n_spe strategy gap time_limit timeout parallel trace_json metrics
      force =
    enable_metrics metrics;
    let g = load_graph path in
    let platform = platform_of n_spe in
    (* --timeout is the daemon's deadline hook on the one-shot path: the
       solver is cancelled when the wall-clock budget expires and its
       best incumbent so far is reported, clearly marked partial. *)
    let fired = Atomic.make false in
    let should_stop =
      match timeout with
      | None -> None
      | Some ms ->
          if not (Float.is_finite ms && ms > 0.) then begin
            Printf.eprintf
              "cellsched: --timeout %g must be a positive number of ms\n" ms;
            exit 2
          end;
          let deadline = Unix.gettimeofday () +. (ms /. 1000.) in
          Some
            (fun () ->
              if Unix.gettimeofday () > deadline then begin
                Atomic.set fired true;
                true
              end
              else false)
    in
    (* One collector per run; the root "map" span covers the whole solve
       and the solver's flight-recorder spans nest under it. *)
    let trace =
      Option.map (fun file -> (file, Obs.Span.collector ())) trace_json
    in
    let solve span =
      with_optional_pool parallel (fun pool ->
          compute_mapping_bounded ~span strategy ~gap ~time_limit ?should_stop
            ?pool platform g)
    in
    let mapping, bound =
      match trace with
      | None -> solve Obs.Span.null
      | Some (_, col) ->
          Obs.Span.with_span (Obs.Span.root col ~trace:"map") "map" solve
    in
    if Atomic.get fired then
      Format.printf
        "PARTIAL: --timeout %g ms expired; showing the best incumbent found@."
        (Option.get timeout);
    report_mapping platform g mapping;
    report_bound bound;
    (match trace with
    | None -> ()
    | Some (file, col) ->
        write_file ~force file (Obs.Span.to_chrome_json (Obs.Span.spans col)));
    dump_metrics ~force metrics;
    0
  in
  let timeout =
    let doc =
      "Cancel the solve after $(docv) milliseconds of wall-clock time and \
       report the best (always feasible) incumbent found so far; the output \
       is then prefixed with a PARTIAL marker. Applies to the portfolio, bb \
       and milp strategies (the greedy heuristics are effectively instant)."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"MS" ~doc)
  in
  let trace_json =
    let doc =
      "Record the solve as request-scoped spans and write them as Chrome \
       trace_event JSON to $(docv) (open in chrome://tracing or Perfetto, \
       or render with $(b,cellsched obs spans)). The portfolio, bb and milp \
       strategies contribute flight-recorder spans (entrants, dives, \
       subtrees, node counts); the greedy heuristics record only the root."
    in
    Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Compute a mapping of a graph onto the Cell")
    Term.(
      const run $ graph_arg $ n_spe_arg $ strategy_arg $ gap_arg
      $ time_limit_arg $ timeout $ parallel_arg $ trace_json $ metrics_arg
      $ force_arg)

(* --- simulate -------------------------------------------------------------- *)

let simulate_cmd =
  let run path n_spe strategy gap time_limit instances gantt svg trace_json
      rampup_csv metrics force =
    enable_metrics metrics;
    let g = load_graph path in
    let platform = platform_of n_spe in
    let mapping = compute_mapping strategy ~gap ~time_limit platform g in
    report_mapping platform g mapping;
    let trace =
      if gantt || svg <> None || trace_json <> None then
        Some (Simulator.Trace.create ())
      else None
    in
    (* The runtime stamps events with simulated time, so the sink clock is
       irrelevant; a fake clock keeps the output reproducible. *)
    let sink =
      if trace_json <> None then
        Obs.Events.ring ~clock:(Obs.Events.Clock.fake ()) ()
      else Obs.Events.null
    in
    let m = Simulator.Runtime.run ?trace ~sink platform g mapping ~instances in
    Format.printf
      "simulated %d instances in %.3f s@.steady throughput: %.2f instances/s@.transfers: %d (%.1f kB)@."
      m.Simulator.Runtime.instances m.Simulator.Runtime.makespan
      m.Simulator.Runtime.steady_throughput m.Simulator.Runtime.transfers
      (m.Simulator.Runtime.bytes_transferred /. 1024.);
    (match rampup_csv with
    | None -> ()
    | Some file ->
        (* Throughput ramp-up towards the steady-state plateau (the curve
           of the paper's Fig. 6), as data. *)
        let buf = Buffer.create 1024 in
        Buffer.add_string buf "instances,time_s,throughput_per_s\n";
        List.iter
          (fun (i, tput) ->
            Buffer.add_string buf
              (Printf.sprintf "%d,%.9g,%.9g\n" i
                 m.Simulator.Runtime.completion_times.(i - 1)
                 tput))
          (Simulator.Runtime.throughput_curve m ~points:100);
        write_file ~force file (Buffer.contents buf));
    (match trace with
    | None -> ()
    | Some trace ->
        (* Show the steady-state regime: a window in the middle. *)
        let mid = m.Simulator.Runtime.makespan /. 2. in
        let span = m.Simulator.Runtime.makespan /. 50. in
        if gantt then
          print_string
            (Simulator.Trace.gantt ~from_time:mid ~to_time:(mid +. span)
               platform trace);
        (match svg with
        | Some file ->
            write_file ~force file
              (Simulator.Trace.to_svg ~from_time:mid ~to_time:(mid +. span)
                 platform trace)
        | None -> ());
        match trace_json with
        | Some file ->
            write_file ~force file
              (Simulator.Trace.to_chrome
                 ~extra:(Obs.Events.events sink)
                 platform trace)
        | None -> ());
    dump_metrics ~force metrics;
    0
  in
  let instances =
    Arg.(value & opt int 5000 & info [ "instances"; "n" ] ~doc:"Stream length.")
  in
  let gantt =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of a steady-state window.")
  in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~doc:"Write an SVG Gantt chart to this file.")
  in
  let trace_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"FILE"
          ~doc:
            "Write the full run as Chrome trace_event JSON (open in \
             chrome://tracing or Perfetto): one lane per PE plus DMA-queue, \
             buffer-occupancy and throughput counter tracks.")
  in
  let rampup_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "rampup-csv" ] ~docv:"FILE"
          ~doc:
            "Write the cumulative-throughput ramp-up timeseries \
             (instances,time,throughput) as CSV.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a mapped stream on the Cell")
    Term.(
      const run $ graph_arg $ n_spe_arg $ strategy_arg $ gap_arg
      $ time_limit_arg $ instances $ gantt $ svg $ trace_json $ rampup_csv
      $ metrics_arg $ force_arg)

(* --- schedule --------------------------------------------------------------- *)

let schedule_cmd =
  let run path n_spe strategy gap time_limit period =
    let g = load_graph path in
    let platform = platform_of n_spe in
    let mapping = compute_mapping strategy ~gap ~time_limit platform g in
    let sched = Cellsched.Schedule.build platform g mapping in
    Format.printf "throughput: %.2f instances/s, warmup %d periods@.@."
      (Cellsched.Schedule.throughput sched)
      (Cellsched.Schedule.warmup_periods sched);
    Cellsched.Schedule.pp_period sched g platform period Format.std_formatter ();
    Format.print_newline ();
    0
  in
  let period =
    Arg.(value & opt int 0 & info [ "period" ] ~doc:"Period index to print.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print the periodic steady-state schedule")
    Term.(
      const run $ graph_arg $ n_spe_arg $ strategy_arg $ gap_arg
      $ time_limit_arg $ period)

(* --- compare ----------------------------------------------------------------- *)

let compare_cmd =
  let run path n_spe gap time_limit instances =
    let g = load_graph path in
    let platform = platform_of n_spe in
    let strategies =
      Cellsched.Heuristics.standard_candidates ~with_lp:true platform g
      @ [
          ( "milp",
            (Cellsched.Milp_solver.solve
               ~options:
                 {
                   Cellsched.Milp_solver.default_options with
                   rel_gap = gap;
                   time_limit;
                 }
               platform g)
              .Cellsched.Milp_solver.mapping );
        ]
    in
    let base =
      Cellsched.Steady_state.throughput platform g
        (Cellsched.Heuristics.ppe_only platform g)
    in
    let table =
      Support.Table.create
        [ "strategy"; "feasible"; "predicted/s"; "simulated/s"; "speed-up"; "bottleneck" ]
    in
    List.iter
      (fun (name, mapping) ->
        let feasible = Cellsched.Steady_state.feasible platform g mapping in
        let loads = Cellsched.Steady_state.loads platform g mapping in
        let predicted = Cellsched.Steady_state.throughput platform g mapping in
        let deployable =
          List.for_all
            (function Cellsched.Steady_state.Memory _ -> false | _ -> true)
            (Cellsched.Steady_state.violations platform g mapping)
        in
        let simulated =
          if deployable then
            Printf.sprintf "%.2f"
              (Simulator.Runtime.run platform g mapping ~instances)
                .Simulator.Runtime.steady_throughput
          else "-"
        in
        let resource, _ = Cellsched.Steady_state.bottleneck platform loads in
        Support.Table.add_row table
          [
            name;
            string_of_bool feasible;
            Printf.sprintf "%.2f" predicted;
            simulated;
            Printf.sprintf "%.2f" (predicted /. base);
            Format.asprintf "%a" (Cellsched.Steady_state.pp_resource platform) resource;
          ])
      strategies;
    Support.Table.print table;
    0
  in
  let instances =
    Arg.(value & opt int 3000 & info [ "instances"; "n" ] ~doc:"Stream length.")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare every mapping strategy on a graph (predicted + simulated)")
    Term.(const run $ graph_arg $ n_spe_arg $ gap_arg $ time_limit_arg $ instances)

(* --- faults ----------------------------------------------------------------- *)

let fail_spec_conv =
  let parse s =
    try Scanf.sscanf s "%d@%f" (fun spe t -> Ok (spe, t))
    with _ -> Error (`Msg "expected SPE@TIME, e.g. 3@0.25")
  in
  let print ppf (spe, t) = Format.fprintf ppf "%d@@%g" spe t in
  Arg.conv (parse, print)

let interval_spec_conv =
  let parse s =
    try
      Scanf.sscanf s "%d@%f:%fx%f" (fun pe t1 t2 f -> Ok (pe, t1, t2, f))
    with _ -> Error (`Msg "expected PE@FROM:UNTILxFACTOR, e.g. 2@0.1:0.5x3")
  in
  let print ppf (pe, t1, t2, f) =
    Format.fprintf ppf "%d@@%g:%gx%g" pe t1 t2 f
  in
  Arg.conv (parse, print)

let json_float v =
  if Float.is_nan v then "null" else Printf.sprintf "%.9g" v

let report_json platform (report : Resilience.Controller.report) =
  let module C = Resilience.Controller in
  let incident (i : C.incident) =
    Printf.sprintf
      "{\"failed_pes\":[%s],\"stall_time\":%s,\"detection_time\":%s,\
       \"recovery_time\":%s,\"remap_cost\":%s,\"migration_cost\":%s,\
       \"migrated_tasks\":%d,\"lost_instances\":%d,\"strategy\":\"%s\",\
       \"predicted_period\":%s}"
      (String.concat ","
         (List.map
            (fun pe -> Printf.sprintf "\"%s\"" (Cell.Platform.pe_name platform pe))
            i.C.failed_pes))
      (json_float i.C.stall_time)
      (json_float i.C.detection_time)
      (json_float i.C.recovery_time)
      (json_float i.C.remap_cost)
      (json_float i.C.migration_cost)
      i.C.migrated_tasks i.C.lost_instances i.C.strategy
      (json_float i.C.predicted_period)
  in
  Printf.sprintf
    "{\"requested\":%d,\"completed\":%d,\"recovered\":%b,\"makespan\":%s,\
     \"baseline_period\":%s,\"final_period\":%s,\"incidents\":[%s]}"
    report.C.requested report.C.completed report.C.recovered
    (json_float report.C.makespan)
    (json_float report.C.baseline_period)
    (json_float report.C.final_period)
    (String.concat "," (List.map incident report.C.incidents))

let faults_cmd =
  let module C = Resilience.Controller in
  let run path n_spe strategy gap time_limit instances fails slowdowns degrades
      random fault_seed horizon policy window threshold gantt svg json metrics
      force =
    enable_metrics metrics;
    let g = load_graph path in
    let platform = platform_of n_spe in
    let mapping = compute_mapping strategy ~gap ~time_limit platform g in
    let loads = Cellsched.Steady_state.loads platform g mapping in
    let period = Cellsched.Steady_state.period platform loads in
    let horizon =
      match horizon with
      | Some h -> h
      | None -> period *. float_of_int instances /. 2.
    in
    let spe_pe spe =
      let spes = Cell.Platform.spes platform in
      match List.nth_opt spes spe with
      | Some pe -> pe
      | None ->
          Printf.eprintf "cellsched: no SPE %d on this platform (0-%d)\n" spe
            (List.length spes - 1);
          exit 2
    in
    let plan =
      try
        let plan =
          List.map
            (fun (spe, t) -> Fault.fail_stop ~pe:(spe_pe spe) ~at:t)
            fails
          @ List.map
              (fun (pe, t1, t2, f) ->
                Fault.slowdown ~pe ~factor:f ~from_:t1 ~until:t2)
              slowdowns
          @ List.map
              (fun (pe, t1, t2, f) ->
                Fault.link_degrade ~pe ~factor:f ~from_:t1 ~until:t2)
              degrades
          @
          if random > 0 then
            Fault.random_campaign
              ~rng:(Support.Rng.create fault_seed)
              ~n_fail_stops:random ~n_slowdowns:random ~n_degrades:random
              platform ~horizon
          else []
        in
        Fault.validate platform plan;
        plan
      with Invalid_argument msg ->
        Printf.eprintf "cellsched: %s\n" msg;
        exit 2
    in
    let options = { C.default_options with policy; window; degradation_threshold = threshold } in
    let trace =
      if gantt || svg <> None then Some (Simulator.Trace.create ()) else None
    in
    if not json then begin
      report_mapping platform g mapping;
      Format.printf "@.fault plan:@.  @[<v>%a@]@.@." (Fault.pp platform) plan
    end;
    let report = C.run ~options ?trace ~faults:plan platform g mapping ~instances in
    if json then print_endline (report_json platform report)
    else Format.printf "%a@." (C.pp_report platform) report;
    (match (trace, report.C.incidents) with
    | None, _ -> ()
    | Some trace, incidents ->
        (* Window the chart around the first incident (or mid-stream). *)
        let from_time, to_time =
          match incidents with
          | i :: _ ->
              let pad = 25. *. period in
              ( Float.max 0. (i.C.stall_time -. pad),
                Float.min report.C.makespan
                  ((if Float.is_nan i.C.recovery_time then i.C.detection_time
                    else i.C.recovery_time)
                  +. (2. *. pad)) )
          | [] ->
              let mid = report.C.makespan /. 2. in
              (mid, mid +. (report.C.makespan /. 50.))
        in
        if gantt then
          print_string (Simulator.Trace.gantt ~from_time ~to_time platform trace);
        match svg with
        | Some file ->
            write_file ~force file
              (Simulator.Trace.to_svg ~from_time ~to_time platform trace)
        | None -> ());
    dump_metrics ~force metrics;
    if report.C.recovered then 0 else 1
  in
  let instances =
    Arg.(value & opt int 5000 & info [ "instances"; "n" ] ~doc:"Stream length.")
  in
  let fails =
    Arg.(
      value
      & opt_all fail_spec_conv []
      & info [ "fail-spe" ] ~docv:"SPE@TIME"
          ~doc:"Fail-stop SPE number $(i,SPE) at $(i,TIME) seconds (repeatable).")
  in
  let slowdowns =
    Arg.(
      value
      & opt_all interval_spec_conv []
      & info [ "slowdown" ] ~docv:"PE@FROM:UNTILxF"
          ~doc:"Slow PE index $(i,PE) by factor $(i,F) over the interval (repeatable).")
  in
  let degrades =
    Arg.(
      value
      & opt_all interval_spec_conv []
      & info [ "degrade" ] ~docv:"PE@FROM:UNTILxF"
          ~doc:"Divide the interface bandwidth of PE $(i,PE) by $(i,F) over the interval (repeatable).")
  in
  let random =
    Arg.(
      value & opt int 0
      & info [ "random" ] ~docv:"K"
          ~doc:"Add a random campaign: $(i,K) fail-stops, slowdowns and degradations each.")
  in
  let fault_seed =
    Arg.(value & opt int 42 & info [ "fault-seed" ] ~doc:"Campaign PRNG seed.")
  in
  let horizon =
    Arg.(
      value
      & opt (some float) None
      & info [ "horizon" ]
          ~doc:"Campaign horizon in seconds (default: half the predicted run).")
  in
  let policy =
    Arg.(
      value
      & opt (enum [ ("heuristic", C.Heuristic); ("refined", C.Refined) ]) C.Heuristic
      & info [ "policy" ] ~doc:"Recovery policy: heuristic, refined.")
  in
  let window =
    Arg.(
      value & opt int 32
      & info [ "window" ] ~doc:"Completions in the failure-detection window.")
  in
  let threshold =
    Arg.(
      value & opt float 0.5
      & info [ "threshold" ]
          ~doc:"Windowed-rate fraction below which the failure alarm fires.")
  in
  let gantt =
    Arg.(
      value & flag
      & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of the incident.")
  in
  let svg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~doc:"Write an SVG Gantt chart of the incident to this file.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the recovery report as JSON.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Inject faults into a simulated stream and recover online")
    Term.(
      const run $ graph_arg $ n_spe_arg $ strategy_arg $ gap_arg
      $ time_limit_arg $ instances $ fails $ slowdowns $ degrades $ random
      $ fault_seed $ horizon $ policy $ window $ threshold $ gantt $ svg
      $ json $ metrics_arg $ force_arg)

(* --- obs -------------------------------------------------------------------- *)

(* Rebuild span records from a Chrome trace file (map --trace-json or a
   daemon --trace-dir file): phase-X events of category "span" carry
   path/trace in args, ts/dur in microseconds. Ids are not serialized —
   the tree renderer works from paths alone, so dummies suffice. *)
let spans_of_chrome_json json =
  let module J = Support.Json in
  let attr_of_json = function
    | J.Bool b -> Obs.Span.Bool b
    | J.Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Obs.Span.Int (int_of_float f)
        else Obs.Span.Float f
    | J.Str s -> Obs.Span.String s
    | v -> Obs.Span.String (J.to_string v)
  in
  let span_of_event ev =
    match
      ( J.member "ph" ev,
        J.member "cat" ev,
        Option.bind (J.member "args" ev) (J.member "path"),
        Option.bind (J.member "ts" ev) J.to_float )
    with
    | Some (J.Str "X"), Some (J.Str "span"), Some (J.Str path), Some ts ->
        let name = Option.bind (J.member "name" ev) J.to_str in
        let trace =
          Option.bind (Option.bind (J.member "args" ev) (J.member "trace"))
            J.to_str
        in
        let dur =
          Option.value ~default:0.
            (Option.bind (J.member "dur" ev) J.to_float)
        in
        let attrs =
          match J.member "args" ev with
          | Some (J.Obj fields) ->
              List.filter_map
                (fun (k, v) ->
                  if k = "path" || k = "trace" then None
                  else Some (k, attr_of_json v))
                fields
          | _ -> []
        in
        Some
          {
            Obs.Span.trace = Option.value ~default:"" trace;
            id = 0L;
            parent = 0L;
            name = Option.value ~default:(Filename.basename path) name;
            path;
            t_start = ts /. 1e6;
            t_stop = (ts +. dur) /. 1e6;
            attrs;
          }
    | _ -> None
  in
  match Option.bind (J.member "traceEvents" json) J.to_list with
  | None -> Error "no traceEvents array (not a Chrome trace file?)"
  | Some events ->
      let spans = List.filter_map span_of_event events in
      Ok
        (List.sort
           (fun (a : Obs.Span.span) b ->
             let c = String.compare a.trace b.trace in
             if c <> 0 then c
             else
               let c = String.compare a.path b.path in
               if c <> 0 then c else Float.compare a.t_start b.t_start)
           spans)

let obs_spans_cmd =
  let run file =
    let contents =
      try In_channel.with_open_bin file In_channel.input_all
      with Sys_error m ->
        Printf.eprintf "cellsched: %s\n" m;
        exit 2
    in
    match Support.Json.parse contents with
    | Error m ->
        Printf.eprintf "cellsched: %s: %s\n" file m;
        2
    | Ok json -> (
        match spans_of_chrome_json json with
        | Error m ->
            Printf.eprintf "cellsched: %s: %s\n" file m;
            2
        | Ok [] ->
            Printf.eprintf "cellsched: %s: no span events\n" file;
            2
        | Ok spans ->
            (* One indented tree per trace id in the file. *)
            let rec by_trace = function
              | [] -> ()
              | (s : Obs.Span.span) :: _ as spans ->
                  let mine, rest =
                    List.partition
                      (fun (x : Obs.Span.span) -> x.Obs.Span.trace = s.trace)
                      spans
                  in
                  Printf.printf "trace %s (%d spans)\n" s.trace
                    (List.length mine);
                  print_string (Obs.Span.render_tree mine);
                  by_trace rest
            in
            by_trace spans;
            0)
  in
  let file =
    let doc =
      "Chrome trace_event JSON file, as written by $(b,map --trace-json) or \
       a daemon $(b,--trace-dir)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "spans"
       ~doc:
         "Render a recorded span trace as a human-readable tree (one line \
          per span, two-space indent per depth, durations and attributes \
          inline)")
    Term.(const run $ file)

let obs_cmd =
  let run path n_spe strategy gap time_limit instances format =
    (* One instrumented map + simulate pass; the registry goes to stdout. *)
    Obs.Metrics.set_enabled true;
    let g = load_graph path in
    let platform = platform_of n_spe in
    let mapping = compute_mapping strategy ~gap ~time_limit platform g in
    let _ = Simulator.Runtime.run platform g mapping ~instances in
    let render =
      match format with
      | `Json -> Obs.Metrics.to_json
      | `Prom -> Obs.Metrics.to_prometheus
    in
    print_string (render Obs.Metrics.default);
    print_newline ();
    0
  in
  let instances =
    Arg.(value & opt int 2000 & info [ "instances"; "n" ] ~doc:"Stream length.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("prometheus", `Prom) ]) `Json
      & info [ "format" ] ~doc:"Registry output format: json, prometheus.")
  in
  let registry =
    Term.(
      const run $ graph_arg $ n_spe_arg $ strategy_arg $ gap_arg
      $ time_limit_arg $ instances $ format)
  in
  Cmd.group ~default:registry
    (Cmd.info "obs"
       ~doc:
         "Map and simulate a graph with every metric enabled, then dump the \
          whole registry (solver, search, simulator families) to stdout; \
          the $(b,spans) sub-command renders recorded span traces")
    [ obs_spans_cmd ]

(* --- batch ------------------------------------------------------------------ *)

let batch_cmd =
  let run requests_path n_spe cache_path parallel no_fibers metrics force =
    enable_metrics metrics;
    let contents =
      match requests_path with
      | "-" -> In_channel.input_all stdin
      | path -> (
          try In_channel.with_open_bin path In_channel.input_all
          with Sys_error m ->
            Printf.eprintf "cellsched: %s\n" m;
            exit 2)
    in
    (* Lines naming the same graph file share one parse. *)
    let graphs = Hashtbl.create 8 in
    let load_graph file =
      match Hashtbl.find_opt graphs file with
      | Some g -> g
      | None ->
          let g = load_graph file in
          Hashtbl.add graphs file g;
          g
    in
    let requests =
      try
        String.split_on_char '\n' contents
        |> List.mapi (fun i line ->
               Service.Request.parse_line ~load_graph ~default_spes:n_spe
                 (i + 1) line)
        |> List.filter_map Fun.id
      with Failure m ->
        Printf.eprintf "cellsched: %s: %s\n" requests_path m;
        exit 2
    in
    let cache =
      match cache_path with
      | Some path -> Service.Cache.load_file path
      | None -> Service.Cache.create ()
    in
    let responses =
      with_optional_pool parallel (fun pool ->
          Service.Batch.run ?pool ~fibers:(not no_fibers) ~cache requests)
    in
    List.iter (fun r -> print_string (Service.Batch.render r)) responses;
    let hits =
      List.length
        (List.filter (fun r -> r.Service.Batch.source = Service.Batch.Hit)
           responses)
    in
    Printf.eprintf "batch: %d request(s), %d from cache, %d solved\n"
      (List.length responses) hits
      (List.length responses - hits);
    (match cache_path with
    | None -> ()
    | Some path -> (
        (* Read-modify-write of the named cache file: writing back over
           the file we loaded is the contract, no --force needed. *)
        match Service.Cache.save_file ~force:true cache path with
        | Ok () -> ()
        | Error m ->
            Printf.eprintf "cellsched: %s\n" m;
            exit 2));
    dump_metrics ~force metrics;
    0
  in
  let requests =
    let doc =
      "Request file, or - for stdin. One request per line: \
       $(i,GRAPH-FILE) [spes=N] [strategy=portfolio|bb] [seed=N] \
       [restarts=N] [gap=F] [max-nodes=N]; # starts a comment."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REQUESTS" ~doc)
  in
  let cache =
    let doc =
      "Persistent mapping cache: loaded before the batch (a missing or \
       corrupt file starts empty) and written back after. Without this \
       option the batch still deduplicates in memory."
    in
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE" ~doc)
  in
  let no_fibers =
    let doc =
      "With --parallel, dispatch distinct misses as domain-granular pool \
       thunks instead of suspendable fibers (output is bitwise identical \
       either way)."
    in
    Arg.(value & flag & info [ "no-fibers" ] ~doc)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Answer a stream of mapping requests, deduplicating by canonical \
          fingerprint and solving only the distinct cache misses")
    Term.(
      const run $ requests $ n_spe_arg $ cache $ parallel_arg $ no_fibers
      $ metrics_arg $ force_arg)

(* --- serve ------------------------------------------------------------------ *)

let serve_cmd =
  let run n_spe bound parallel fibers max_inflight socket cache_path
      cache_entries cache_bytes cache_shards flush_period metrics_file
      trace_dir =
    if bound <= 0 then begin
      Printf.eprintf "cellsched: --bound must be positive\n";
      exit 2
    end;
    if cache_shards <= 0 || cache_shards > Service.Shard.max_shards then begin
      Printf.eprintf "cellsched: --cache-shards must be in 1-%d\n"
        Service.Shard.max_shards;
      exit 2
    end;
    if flush_period < 0. then begin
      Printf.eprintf "cellsched: --flush-period must be >= 0\n";
      exit 2
    end;
    if max_inflight <= 0 then begin
      Printf.eprintf "cellsched: --max-inflight must be positive\n";
      exit 2
    end;
    let concurrency =
      match parallel with
      | None -> 1
      | Some n -> if n <= 0 then Par.Pool.default_size () else n
    in
    let config =
      {
        Daemon.Server.default_config with
        default_spes = n_spe;
        bound;
        concurrency;
        fibers;
        max_inflight;
        cache_path;
        cache_entries;
        cache_bytes;
        cache_shards;
        flush_period;
        metrics_file;
        trace_dir;
      }
    in
    let t =
      match socket with
      | Some path -> Daemon.Server.serve_socket config ~path
      | None ->
          Daemon.Server.serve_fd config ~input:Unix.stdin ~output:Unix.stdout
    in
    let s = Daemon.Server.stats t in
    Printf.eprintf
      "serve: %d request(s): %d hit, %d solved, %d partial, %d rejected, %d \
       malformed\n"
      s.Daemon.Server.received s.Daemon.Server.hits s.Daemon.Server.solved
      s.Daemon.Server.partials s.Daemon.Server.rejected s.Daemon.Server.errors;
    0
  in
  let bound =
    let doc =
      "Admission bound: maximum queued plus in-flight solves. Further \
       requests are refused with REJECT <id> overload (cache hits are \
       always served)."
    in
    Arg.(value & opt int 64 & info [ "bound" ] ~docv:"N" ~doc)
  in
  let fibers =
    let doc =
      "Dispatch each admitted solve as a suspendable fiber over the worker \
       pool (one worker even without --parallel), up to --max-inflight at \
       once; solves yield at node-budget boundaries so cache hits keep \
       flowing during long dives. Replies are sequenced in admission order, \
       bitwise identical to the fiber-less daemon."
    in
    Arg.(value & flag & info [ "fibers" ] ~doc)
  in
  let max_inflight =
    let doc = "Fiber mode: maximum concurrently in-flight solve fibers." in
    Arg.(value & opt int 32 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let socket =
    let doc =
      "Listen on a Unix-domain socket at $(docv) instead of serving \
       stdin/stdout; a stale socket file is replaced and the file is \
       unlinked on exit."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let cache =
    let doc =
      "Persistent mapping cache: loaded warm at start-up, flushed \
       atomically in the background and on shutdown."
    in
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE" ~doc)
  in
  let cache_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-entries" ] ~docv:"N" ~doc:"Cache LRU entry bound.")
  in
  let cache_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-bytes" ] ~docv:"N" ~doc:"Cache LRU byte bound.")
  in
  let cache_shards =
    let doc =
      "Shard the warm cache across $(docv) independently-locked shards \
       (fingerprint-routed; entry/byte bounds are totals split across \
       shards; replies are bitwise identical at any shard count). With a \
       persistent --cache, each shard flushes to its own FILE.shardI \
       atomically; shard-count changes migrate at load."
    in
    Arg.(value & opt int 1 & info [ "cache-shards" ] ~docv:"N" ~doc)
  in
  let flush_period =
    let doc =
      "Seconds between background cache/metrics flushes (0 disables the \
       periodic flush; shutdown still flushes)."
    in
    Arg.(value & opt float 30. & info [ "flush-period" ] ~docv:"SEC" ~doc)
  in
  let metrics_file =
    let doc =
      "Rewrite $(docv) with the metrics registry at every flush and on \
       shutdown (Prometheus text, or JSON when $(docv) ends in .json). The \
       METRICS protocol verb serves the same registry inline."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE" ~doc)
  in
  let trace_dir =
    let doc =
      "Write each completed request's span tree to $(docv)/<id>.json as \
       Chrome trace_event JSON (the directory is created if missing; later \
       requests reusing an id overwrite the file). The TRACE protocol verb \
       serves the same spans inline whether or not this option is set."
    in
    Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling daemon: a long-lived server answering the batch \
          request grammar line by line, with deadlines, priorities, \
          admission control, a warm persistent cache, live metrics and \
          per-request tracing")
    Term.(
      const run $ n_spe_arg $ bound $ parallel_arg $ fibers $ max_inflight
      $ socket $ cache $ cache_entries $ cache_bytes $ cache_shards
      $ flush_period $ metrics_file $ trace_dir)

(* --- workload --------------------------------------------------------------- *)

let workload_cmd =
  let run graph_files n seed skew spes strategies restarts gap max_nodes ids =
    if graph_files = [] then begin
      Printf.eprintf "cellsched: workload needs at least one graph file\n";
      exit 2
    end;
    let graphs =
      List.map
        (fun file ->
          try (file, load_graph file)
          with Sys_error m ->
            Printf.eprintf "cellsched: %s\n" m;
            exit 2)
        graph_files
    in
    let strategy_of = function
      | "portfolio" ->
          Service.Request.Portfolio
            {
              seed = Cellsched.Portfolio.default_seed;
              restarts =
                Option.value restarts
                  ~default:Cellsched.Portfolio.default_restarts;
            }
      | "bb" ->
          Service.Request.Bb
            {
              rel_gap =
                Option.value gap
                  ~default:Cellsched.Mapping_search.default_options.rel_gap;
              max_nodes = Option.value max_nodes ~default:50_000;
            }
      | s ->
          Printf.eprintf "cellsched: unknown strategy %S (portfolio, bb)\n" s;
          exit 2
    in
    let spec =
      {
        Service.Workload.seed;
        requests = n;
        skew;
        graphs;
        spes;
        strategies = List.map strategy_of strategies;
      }
    in
    match Service.Workload.(lines ~ids (generate spec)) with
    | lines ->
        List.iter print_endline lines;
        0
    | exception Invalid_argument m ->
        Printf.eprintf "cellsched: %s\n" m;
        2
  in
  let graphs =
    let doc = "Graph files forming the request population." in
    Arg.(value & pos_all string [] & info [] ~docv:"GRAPH" ~doc)
  in
  let n =
    Arg.(
      value & opt int 200
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Stream length.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Generator seed; equal seeds give byte-equal streams.")
  in
  let skew =
    let doc =
      "Zipf skew $(i,s): rank k is drawn with probability proportional to \
       1/(k+1)^s over the graphs x spes x strategies population (0 is \
       uniform; 1.1 is a typical hot-spot web workload)."
    in
    Arg.(value & opt float 1.1 & info [ "skew" ] ~docv:"S" ~doc)
  in
  let spes =
    Arg.(
      value
      & opt (list int) [ 8 ]
      & info [ "spes" ] ~docv:"N,.." ~doc:"SPE counts in the population.")
  in
  let strategies =
    Arg.(
      value
      & opt (list string) [ "portfolio" ]
      & info [ "strategies" ] ~docv:"S,.."
          ~doc:"Solver strategies in the population (portfolio, bb).")
  in
  let restarts =
    Arg.(
      value
      & opt (some int) None
      & info [ "restarts" ] ~docv:"N"
          ~doc:"Portfolio restart count for generated requests.")
  in
  let gap =
    Arg.(
      value
      & opt (some float) None
      & info [ "gap" ] ~docv:"F" ~doc:"B&B relative gap for generated requests.")
  in
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"B&B node budget for generated requests.")
  in
  let ids =
    Arg.(
      value & flag
      & info [ "ids" ]
          ~doc:"Prefix each line with id=rI for daemon-framed replay.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Print a seeded zipfian request stream (batch/serve grammar) to \
          stdout: the population is graphs x SPE counts x strategies, \
          popularity rank is seed-shuffled, and request I is drawn \
          zipf(skew) — deterministic, so a printed stream is a reproducible \
          load test")
    Term.(
      const run $ graphs $ n $ seed $ skew $ spes $ strategies $ restarts
      $ gap $ max_nodes $ ids)

(* --- traffic ---------------------------------------------------------------- *)

let traffic_cmd =
  let run socket requests_path clients =
    let contents =
      match requests_path with
      | "-" -> In_channel.input_all stdin
      | path -> (
          try In_channel.with_open_bin path In_channel.input_all
          with Sys_error m ->
            Printf.eprintf "cellsched: %s\n" m;
            exit 2)
    in
    (* Any existing id= token is replaced: the replayer owns reply
       correlation, and its ids encode (client, sequence). *)
    let strip_id line =
      if String.starts_with ~prefix:"id=" line then
        match String.index_opt line ' ' with
        | Some i -> String.sub line (i + 1) (String.length line - i - 1)
        | None -> ""
      else line
    in
    let payload =
      String.split_on_char '\n' contents
      |> List.filter_map (fun l ->
             let l = String.trim l in
             if l = "" || l.[0] = '#' then None else Some (strip_id l))
      |> Array.of_list
    in
    if Array.length payload = 0 then begin
      Printf.eprintf "cellsched: no requests in %s\n" requests_path;
      exit 2
    end;
    if clients <= 0 then begin
      Printf.eprintf "cellsched: --clients must be positive\n";
      exit 2
    end;
    (* One closed-loop client per domain: send a request, wait for its
       framed terminal line, measure the round trip, send the next. *)
    let run_client d (slice : string array) =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX socket)
       with Unix.Unix_error (e, _, _) ->
         Printf.eprintf "cellsched: connect %s: %s\n" socket
           (Unix.error_message e);
         exit 2);
      let ic = Unix.in_channel_of_descr fd in
      let latencies = ref [] and statuses = ref [] and dropped = ref 0 in
      (try
         Array.iteri
           (fun i line ->
             let id = Printf.sprintf "c%dr%d" d i in
             let msg = Printf.sprintf "id=%s %s\n" id line in
             let t0 = Unix.gettimeofday () in
             let rec write off =
               if off < String.length msg then
                 write (off + Unix.write_substring fd msg off
                                (String.length msg - off))
             in
             write 0;
             (* Scan to this request's terminal line; reply bodies pass by. *)
             let rec await () =
               let l = input_line ic in
               if String.starts_with ~prefix:("END " ^ id) l then "ok"
               else if String.starts_with ~prefix:("REJECT " ^ id) l then
                 "rejected"
               else if String.starts_with ~prefix:("ERROR " ^ id) l then
                 "error"
               else if
                 String.starts_with ~prefix:("BEGIN " ^ id ^ " partial") l
               then begin
                 ignore (await () : string);
                 "partial"
               end
               else await ()
             in
             let status = await () in
             latencies := (Unix.gettimeofday () -. t0) :: !latencies;
             statuses := status :: !statuses)
           slice
       with End_of_file ->
         dropped :=
           Array.length slice - List.length !latencies);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (!latencies, !statuses, !dropped)
    in
    let slices =
      Array.init clients (fun d ->
          let n = Array.length payload in
          Array.init
            ((n - d + clients - 1) / clients)
            (fun i -> payload.((i * clients) + d)))
    in
    let t0 = Unix.gettimeofday () in
    let results =
      if clients = 1 then [| run_client 0 slices.(0) |]
      else
        Array.map Domain.join
          (Array.mapi
             (fun d slice -> Domain.spawn (fun () -> run_client d slice))
             slices)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let latencies =
      Array.to_list results |> List.concat_map (fun (l, _, _) -> l)
      |> List.sort compare |> Array.of_list
    in
    let statuses =
      Array.to_list results |> List.concat_map (fun (_, s, _) -> s)
    in
    let dropped =
      Array.to_list results |> List.fold_left (fun a (_, _, d) -> a + d) 0
    in
    let count name = List.length (List.filter (( = ) name) statuses) in
    let pct q =
      let n = Array.length latencies in
      if n = 0 then nan
      else latencies.(min (n - 1) (int_of_float (Float.ceil (q *. float_of_int (n - 1)))))
    in
    let replied = Array.length latencies in
    Printf.printf "traffic: %d request(s), %d client(s), %d replied, %d dropped\n"
      (Array.length payload) clients replied dropped;
    Printf.printf "  ok %d, partial %d, rejected %d, errors %d\n" (count "ok")
      (count "partial") (count "rejected") (count "error");
    Printf.printf "  wall %.3f s, %.1f req/s\n" wall
      (float_of_int replied /. wall);
    if replied > 0 then
      Printf.printf "  latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n"
        (1000. *. pct 0.50) (1000. *. pct 0.95) (1000. *. pct 0.99)
        (1000. *. latencies.(replied - 1));
    if dropped > 0 then 1 else 0
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of a running $(b,cellsched serve).")
  in
  let requests =
    let doc =
      "Request stream to replay (one request-grammar line each, e.g. the \
       output of $(b,cellsched workload)), or - for stdin."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REQUESTS" ~doc)
  in
  let clients =
    let doc =
      "Concurrent closed-loop clients; the stream is split round-robin and \
       each client runs in its own domain with its own connection."
    in
    Arg.(value & opt int 1 & info [ "clients" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Replay a request stream against a live daemon socket and report \
          round-trip latency percentiles and throughput (exit 1 if any \
          request went unanswered)")
    Term.(const run $ socket $ requests $ clients)

(* --- cache ------------------------------------------------------------------ *)

let cache_cmd =
  let run path json clear force =
    if clear then begin
      match Service.Cache.save_file ~force (Service.Cache.create ()) path with
      | Ok () ->
          Printf.printf "wrote %s (empty cache)\n" path;
          0
      | Error m ->
          Printf.eprintf "cellsched: %s\n" m;
          2
    end
    else if not (Sys.file_exists path) then begin
      Printf.printf "%s: no cache file (a batch run would start empty)\n" path;
      0
    end
    else begin
      let contents = In_channel.with_open_bin path In_channel.input_all in
      let cache =
        match Service.Cache.load_string contents with
        | Ok cache -> cache
        | Error (cache, reason) ->
            Printf.eprintf "cellsched: %s: corrupt cache (%s); treating as empty\n"
              path reason;
            cache
      in
      if json then print_endline (Service.Cache.to_json_string cache)
      else begin
        Printf.printf "%s: %d entr%s, ~%d bytes\n" path
          (Service.Cache.length cache)
          (if Service.Cache.length cache = 1 then "y" else "ies")
          (Service.Cache.bytes_used cache);
        List.iter
          (fun (e : Service.Cache.entry) ->
            Printf.printf "  %s  %-28s  feasible=%b  period=%.6g s  %s\n"
              e.Service.Cache.fingerprint e.Service.Cache.strategy
              e.Service.Cache.feasible e.Service.Cache.period
              e.Service.Cache.bottleneck)
          (Service.Cache.entries cache)
      end;
      0
    end
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Cache file (as written by batch --cache).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Dump the cache as JSON.")
  in
  let clear =
    Arg.(
      value & flag
      & info [ "clear" ]
          ~doc:
            "Write an empty cache to $(i,FILE) (refuses to overwrite an \
             existing file without --force).")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Inspect or reset a persistent mapping cache (MRU first)")
    Term.(const run $ path $ json $ clear $ force_arg)

(* --- dot -------------------------------------------------------------------- *)

let dot_cmd =
  let run path output =
    let g = load_graph path in
    (match output with
    | Some out ->
        Streaming.Dot.to_file g out;
        Printf.printf "wrote %s\n" out
    | None -> print_string (Streaming.Dot.to_string g));
    0
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a graph to Graphviz")
    Term.(const run $ graph_arg $ output)

let () =
  let doc = "Steady-state scheduling of streaming applications on the Cell" in
  let info = Cmd.info "cellsched" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd;
            info_cmd;
            map_cmd;
            simulate_cmd;
            schedule_cmd;
            compare_cmd;
            faults_cmd;
            batch_cmd;
            serve_cmd;
            workload_cmd;
            traffic_cmd;
            cache_cmd;
            obs_cmd;
            dot_cmd;
          ]))
