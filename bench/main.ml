(* Benchmark harness regenerating every figure and table of the paper's
   evaluation (S6), plus the ablations called for by S7 and a bechamel
   micro-benchmark suite.

   Usage: main.exe [--quick] [--parallel[=N]] [--seed=N]
          [fig6|fig7|fig8|milptime|ablation|replication|dualcell|faults|micro|search|obs|par|bb|service|daemon|traffic|all]...
   With no experiment argument, everything runs. --quick shortens the
   simulated streams by 10x for fast smoke runs. --parallel fans the
   independent sweep points (Fig. 7 SPE counts, Fig. 8 CCR x graph) out
   over a domain pool of N workers (default: the host's core count);
   tables are byte-identical to the sequential run. --seed=N offsets the
   fixed seeds of the service/daemon/traffic experiments, so CI can run
   a second seed cheaply and assert the bitwise checks hold there too. *)

let usage () =
  prerr_endline
    "usage: bench [--quick] [--parallel[=N]] [--seed=N] \
     [fig6|fig7|fig8|milptime|ablation|replication|dualcell|faults|micro|search|obs|par|bb|service|daemon|traffic|all]...";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  if quick then Experiments.scale := 0.1;
  let parallel =
    List.fold_left
      (fun acc a ->
        if a = "--parallel" then Some (Par.Pool.default_size ())
        else if String.starts_with ~prefix:"--parallel=" a then
          match
            int_of_string_opt (String.sub a 11 (String.length a - 11))
          with
          | Some n when n > 0 -> Some n
          | Some _ | None -> usage ()
        else acc)
      None args
  in
  List.iter
    (fun a ->
      if String.starts_with ~prefix:"--seed=" a then
        match int_of_string_opt (String.sub a 7 (String.length a - 7)) with
        | Some n -> Experiments.seed := n
        | None -> usage ())
    args;
  let experiments =
    List.filter
      (fun a ->
        a <> "--quick"
        && (not (String.starts_with ~prefix:"--parallel" a))
        && not (String.starts_with ~prefix:"--seed=" a))
      args
    |> function
    | [] | [ "all" ] ->
        [ "fig6"; "fig7"; "fig8"; "milptime"; "ablation"; "replication";
          "dualcell"; "faults"; "micro"; "search"; "par"; "bb"; "service";
          "daemon"; "traffic" ]
    | names -> names
  in
  print_endline "cellstream benchmark harness";
  print_endline
    "reproduction of: Gallet, Jacquelin, Marchal, \"Scheduling complex\n\
     streaming applications on the Cell processor\" (IPDPS 2010)";
  Printf.printf "experiments: %s%s%s\n\n" (String.concat ", " experiments)
    (if quick then " (quick mode)" else "")
    (match parallel with
    | Some n -> Printf.sprintf " (pool: %d domains)" n
    | None -> "");
  let run = function
    | "fig6" -> Experiments.fig6 ()
    | "fig7" -> ignore (Experiments.fig7 ())
    | "fig8" -> ignore (Experiments.fig8 ())
    | "milptime" -> Experiments.milptime ()
    | "ablation" -> Experiments.ablation ()
    | "replication" -> Experiments.replication ()
    | "dualcell" -> Experiments.dualcell ()
    | "faults" -> Experiments.faults ()
    | "micro" -> Experiments.micro ()
    | "search" -> Experiments.search ()
    | "obs" -> Experiments.obs ()
    | "par" -> Experiments.search_par ()
    | "bb" -> Experiments.search_bb ()
    | "service" -> Experiments.service ()
    | "daemon" -> Experiments.daemon ()
    | "traffic" -> Experiments.traffic ()
    | other ->
        Printf.eprintf "unknown experiment %S\n" other;
        usage ()
  in
  match parallel with
  | None -> List.iter run experiments
  | Some n ->
      let p = Par.Pool.create ~size:n () in
      Experiments.pool := Some p;
      Fun.protect
        ~finally:(fun () ->
          Par.Pool.publish_stats p;
          Par.Pool.shutdown p)
        (fun () -> List.iter run experiments)
