(* Benchmark harness regenerating every figure and table of the paper's
   evaluation (S6), plus the ablations called for by S7 and a bechamel
   micro-benchmark suite.

   Usage: main.exe [--quick] [fig6|fig7|fig8|milptime|ablation|replication|dualcell|faults|micro|search|all]...
   With no experiment argument, everything runs. --quick shortens the
   simulated streams by 10x for fast smoke runs. *)

let usage () =
  prerr_endline
    "usage: bench [--quick] [fig6|fig7|fig8|milptime|ablation|replication|dualcell|faults|micro|search|all]...";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  if quick then Experiments.scale := 0.1;
  let experiments =
    List.filter (fun a -> a <> "--quick") args |> function
    | [] | [ "all" ] -> [ "fig6"; "fig7"; "fig8"; "milptime"; "ablation"; "replication"; "dualcell"; "faults"; "micro"; "search" ]
    | names -> names
  in
  print_endline "cellstream benchmark harness";
  print_endline
    "reproduction of: Gallet, Jacquelin, Marchal, \"Scheduling complex\n\
     streaming applications on the Cell processor\" (IPDPS 2010)";
  Printf.printf "experiments: %s%s\n\n" (String.concat ", " experiments)
    (if quick then " (quick mode)" else "");
  let run = function
    | "fig6" -> Experiments.fig6 ()
    | "fig7" -> ignore (Experiments.fig7 ())
    | "fig8" -> ignore (Experiments.fig8 ())
    | "milptime" -> Experiments.milptime ()
    | "ablation" -> Experiments.ablation ()
    | "replication" -> Experiments.replication ()
    | "dualcell" -> Experiments.dualcell ()
    | "faults" -> Experiments.faults ()
    | "micro" -> Experiments.micro ()
    | "search" -> Experiments.search ()
    | other ->
        Printf.eprintf "unknown experiment %S\n" other;
        usage ()
  in
  List.iter run experiments
