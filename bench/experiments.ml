(* Experiment implementations for the paper's figures and tables.

   Every experiment prints the series the paper reports, annotated with the
   values the paper's own plots show, so EXPERIMENTS.md can be regenerated
   from this output. Seeds are fixed: all numbers are reproducible. *)

module P = Cell.Platform
module G = Streaming.Graph
module SS = Cellsched.Steady_state
module MS = Cellsched.Milp_solver
module H = Cellsched.Heuristics
module R = Simulator.Runtime

let scale = ref 1.0
(* --quick divides stream lengths by 10. *)

let seed = ref 0
(* --seed=N offsets the fixed seeds of the service/daemon/traffic
   experiments. The default 0 reproduces the published numbers; any
   other value exercises the same code paths on a fresh request stream,
   which is how CI checks that the bitwise assertions are not an
   artifact of one lucky seed. *)

let instances n = max 200 (int_of_float (float_of_int n *. !scale))

let pool : Par.Pool.t option ref = ref None
(* Set by bench --parallel[=N]. Sweeps fan their independent points out
   over it through [pmap]; every point is a pure function of its inputs
   and [parallel_map] preserves order, so the tables are byte-identical
   to the sequential run. *)

let pmap f arr =
  match !pool with
  | Some p when Array.length arr > 1 -> Par.Pool.parallel_map p f arr
  | _ -> Array.map f arr

let pmap_list f l = Array.to_list (pmap f (Array.of_list l))

let milp_options =
  (* Sweeps use a 10 s budget per solve (incumbents converge within a few
     seconds); the dedicated milptime experiment uses the paper's full
     setting. *)
  { MS.default_options with rel_gap = 0.05; time_limit = 10. }

let solve_lp platform g = MS.solve ~options:milp_options platform g

let simulate platform g mapping ~n =
  R.run platform g mapping ~instances:(instances n)

let steady platform g mapping ~n =
  (simulate platform g mapping ~n).R.steady_throughput

let graphs () = Daggen.Presets.all_random ()

(* ------------------------------------------------------------------ *)
(* E1/E5 - Figure 6: throughput vs number of instances.                *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  print_endline "== Figure 6: throughput vs stream position ==";
  print_endline
    "   (random graph 1, CCR 0.775, QS22 with 8 SPEs, LP mapping;\n\
    \    paper: steady state after ~1000 instances at ~95% of the LP bound)";
  let platform = P.qs22 () in
  let g = Daggen.Presets.random_graph_1 () in
  let r = solve_lp platform g in
  let n = instances 10_000 in
  let metrics = R.run platform g r.MS.mapping ~instances:n in
  let table = Support.Table.create [ "instances"; "experimental"; "theoretical" ] in
  let curve = R.throughput_curve metrics ~points:20 in
  List.iter
    (fun (i, thr) ->
      Support.Table.add_row table
        [
          string_of_int i;
          Printf.sprintf "%.2f" thr;
          Printf.sprintf "%.2f" r.MS.throughput;
        ])
    curve;
  Support.Table.print table;
  let ratio = metrics.R.steady_throughput /. r.MS.throughput in
  Printf.printf
    "steady-state throughput: %.2f inst/s; LP prediction: %.2f inst/s; ratio \
     %.1f%% (paper: ~95%%)\n\n"
    metrics.R.steady_throughput r.MS.throughput (100. *. ratio)

(* ------------------------------------------------------------------ *)
(* E2 - Figure 7: speed-up vs number of SPEs.                          *)
(* ------------------------------------------------------------------ *)

let fig7_one name g =
  Printf.printf "== Figure 7: speed-up vs #SPEs - %s ==\n" name;
  print_endline
    "   (speed-up over PPE-only, 5000 instances; paper: LP reaches 2-3 with\n\
    \    8 SPEs while both greedy heuristics stay near 1.3)";
  let base_platform = P.qs22 ~n_spe:0 () in
  let base =
    steady base_platform g (H.ppe_only base_platform g) ~n:5_000
  in
  let table =
    Support.Table.create [ "#SPEs"; "GREEDYCPU"; "GREEDYMEM"; "LinearProgramming" ]
  in
  let rows =
    pmap_list
      (fun ns ->
        let platform = P.qs22 ~n_spe:ns () in
        let speedup m = steady platform g m ~n:5_000 /. base in
        let lp = (solve_lp platform g).MS.mapping in
        ( ns,
          speedup (H.greedy_cpu platform g),
          speedup (H.greedy_mem platform g),
          speedup lp ))
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  List.iter
    (fun (ns, gc, gm, lp) ->
      Support.Table.add_row table
        [
          string_of_int ns;
          Printf.sprintf "%.2f" gc;
          Printf.sprintf "%.2f" gm;
          Printf.sprintf "%.2f" lp;
        ])
    rows;
  Support.Table.print table;
  print_newline ();
  rows

let fig7 () =
  List.map (fun (name, g) -> (name, fig7_one name g)) (graphs ())

(* ------------------------------------------------------------------ *)
(* E3 - Figure 8: speed-up vs CCR (8 SPEs, LP mapping).                *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  print_endline "== Figure 8: LP-mapping speed-up vs CCR (QS22, 8 SPEs) ==";
  print_endline
    "   (10000 instances; paper: speed-ups of 2.5-3.5 at CCR 0.775 decaying\n\
    \    towards ~1 at CCR 4.6, where mapping everything on the PPE wins)";
  let platform = P.qs22 () in
  let presets =
    [
      ("random graph 1", fun ccr -> Daggen.Presets.random_graph_1 ~ccr ());
      ("random graph 2", fun ccr -> Daggen.Presets.random_graph_2 ~ccr ());
      ("random graph 3", fun ccr -> Daggen.Presets.random_graph_3 ~ccr ());
    ]
  in
  let table =
    Support.Table.create
      ("CCR" :: List.map (fun (name, _) -> name) presets)
  in
  let ccrs = Streaming.Ccr.paper_ccrs in
  let n_presets = List.length presets in
  (* One pool task per (CCR, graph) point. *)
  let points =
    Array.of_list
      (List.concat_map
         (fun ccr -> List.map (fun (_, make) -> (ccr, make)) presets)
         ccrs)
  in
  let speeds =
    pmap
      (fun (ccr, make) ->
        let g = make ccr in
        let base = steady platform g (H.ppe_only platform g) ~n:10_000 in
        let lp = (solve_lp platform g).MS.mapping in
        steady platform g lp ~n:10_000 /. base)
      points
  in
  let result =
    List.mapi
      (fun i ccr ->
        let speedups =
          List.init n_presets (fun j -> speeds.((i * n_presets) + j))
        in
        Support.Table.add_row table
          (Printf.sprintf "%.3f" ccr
          :: List.map (Printf.sprintf "%.2f") speedups);
        (ccr, speedups))
      ccrs
  in
  Support.Table.print table;
  print_newline ();
  result

(* ------------------------------------------------------------------ *)
(* E4 - MILP resolution time (paper S6: "below one minute, mostly      *)
(* around 20 seconds" with CPLEX at a 5% gap).                         *)
(* ------------------------------------------------------------------ *)

let milptime () =
  print_endline "== MILP resolution (5% optimality gap, QS22 with 8 SPEs) ==";
  print_endline
    "   (paper: CPLEX always below one minute, mostly around 20 s)";
  let platform = P.qs22 () in
  let table =
    Support.Table.create
      [ "graph"; "tasks"; "edges"; "time (s)"; "nodes"; "gap"; "proven" ]
  in
  List.iter
    (fun (name, g) ->
      let r = MS.solve ~options:{ milp_options with time_limit = 30. } platform g in
      Support.Table.add_row table
        [
          name;
          string_of_int (G.n_tasks g);
          string_of_int (G.n_edges g);
          Printf.sprintf "%.2f" r.MS.solve_time;
          string_of_int r.MS.nodes;
          Printf.sprintf "%.3f" r.MS.gap;
          string_of_bool r.MS.proven_within_gap;
        ])
    (graphs ());
  Support.Table.print table;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* A1/A2 - Ablations: the paper's S7 future-work optimizations and     *)
(* the "involved heuristics" it calls for.                             *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "== Ablation A1: buffer optimizations (S7 future work) ==";
  print_endline
    "   (LP mapping on a memory-tight variant, 8 SPEs, 2% gap; sharing\n\
    \    colocated buffers / tightening the pipeline frees local store,\n\
    \    letting more work leave the PPE)";
  let platform = P.qs22 () in
  let a1_options = { milp_options with rel_gap = 0.02; time_limit = 20. } in
  let table =
    Support.Table.create
      [
        "graph";
        "paper model";
        "mem (kB)";
        "+buffer sharing";
        "mem (kB)";
        "+tight pipeline";
      ]
  in
  let spe_memory ?share_colocated_buffers ?tight_pipeline g mapping =
    let l = SS.loads ?share_colocated_buffers ?tight_pipeline platform g mapping in
    List.fold_left (fun acc pe -> acc +. l.SS.memory.(pe)) 0. (P.spes platform)
    /. 1024.
  in
  List.iter
    (fun (name, mk) ->
      let g = mk 1.9 in
      let base = MS.solve ~options:a1_options platform g in
      let shared =
        MS.solve
          ~options:{ a1_options with share_colocated_buffers = true }
          platform g
      in
      (* The tight-pipeline analysis applies to a given mapping: re-evaluate
         the shared-buffer mapping with mapping-aware firstPeriods. *)
      let tight =
        1.
        /. SS.period platform
             (SS.loads ~share_colocated_buffers:true ~tight_pipeline:true
                platform g shared.MS.mapping)
      in
      Support.Table.add_row table
        [
          name;
          Printf.sprintf "%.2f inst/s" base.MS.throughput;
          Printf.sprintf "%.0f" (spe_memory g base.MS.mapping);
          Printf.sprintf "%.2f inst/s" shared.MS.throughput;
          Printf.sprintf "%.0f"
            (spe_memory ~share_colocated_buffers:true g shared.MS.mapping);
          Printf.sprintf "%.2f inst/s" tight;
        ])
    [
      ("random graph 1", fun ccr -> Daggen.Presets.random_graph_1 ~ccr ());
      ("random graph 2", fun ccr -> Daggen.Presets.random_graph_2 ~ccr ());
      ("random graph 3", fun ccr -> Daggen.Presets.random_graph_3 ~ccr ());
    ];
  Support.Table.print table;
  print_newline ();
  print_endline "== Ablation A2: involved heuristics vs the paper's greedy ==";
  print_endline
    "   (predicted throughput, 8 SPEs, CCR 0.775; the paper notes simple\n\
    \    heuristics fail and calls for better ones)";
  let table =
    Support.Table.create
      [ "graph"; "greedy-mem"; "greedy-cpu"; "density-pack"; "lp-round"; "search (LP)" ]
  in
  List.iter
    (fun (name, g) ->
      let thr m =
        if SS.feasible platform g m then SS.throughput platform g m else nan
      in
      let row =
        [
          thr (H.greedy_mem platform g);
          thr (H.greedy_cpu platform g);
          thr (H.density_pack platform g);
          thr (H.lp_rounding ~improve:true platform g);
          (solve_lp platform g).MS.throughput;
        ]
      in
      Support.Table.add_row table
        (name :: List.map (fun v -> Printf.sprintf "%.2f" v) row))
    (graphs ());
  Support.Table.print table;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* A3 - replication analysis: the paper's S3.1 argument that general   *)
(* (replicated) mappings do not pay off on the Cell.                   *)
(* ------------------------------------------------------------------ *)

let replication () =
  print_endline "== Ablation A3: task replication (the S3.1 general mappings) ==";
  print_endline
    "   (replicating every SPE-mapped stateless task on one extra SPE;
    \    peeking tasks force data duplication and buffers double, the
    \    paper's reason to restrict to simple mappings)";
  let platform = P.qs22 () in
  let table =
    Support.Table.create
      [
        "graph";
        "simple mapping";
        "replicated";
        "remote bytes x";
        "SPE mem x";
        "mem feasible";
      ]
  in
  List.iter
    (fun (name, g) ->
      let r = solve_lp platform g in
      let mapping = r.MS.mapping in
      let simple = Cellsched.Replication.of_mapping platform g mapping in
      (* Give every stateless SPE task a second replica on the next SPE. *)
      let spes = Array.of_list (P.spes platform) in
      let spec =
        Array.init (G.n_tasks g) (fun k ->
            let pe = Cellsched.Mapping.pe mapping k in
            if P.is_spe platform pe && not (G.task g k).Streaming.Task.stateful
            then begin
              let idx = pe - 1 in
              let buddy = spes.((idx + 1) mod Array.length spes) in
              if buddy = pe then [ pe ] else [ pe; buddy ]
            end
            else [ pe ])
      in
      let replicated = Cellsched.Replication.make platform g spec in
      let bytes l =
        Array.fold_left ( +. ) 0. l.SS.bytes_in +. Array.fold_left ( +. ) 0. l.SS.bytes_out
      in
      let mem l =
        List.fold_left (fun acc pe -> acc +. l.SS.memory.(pe)) 0. (P.spes platform)
      in
      let ls = Cellsched.Replication.loads platform g simple in
      let lr = Cellsched.Replication.loads platform g replicated in
      let feasible =
        not
          (List.exists
             (function SS.Memory _ -> true | _ -> false)
             (Cellsched.Replication.violations platform g replicated))
      in
      Support.Table.add_row table
        [
          name;
          Printf.sprintf "%.2f inst/s" (Cellsched.Replication.throughput platform g simple);
          Printf.sprintf "%.2f inst/s" (Cellsched.Replication.throughput platform g replicated);
          Printf.sprintf "%.2f" (bytes lr /. Float.max 1. (bytes ls));
          Printf.sprintf "%.2f" (mem lr /. Float.max 1. (mem ls));
          string_of_bool feasible;
        ])
    (graphs ());
  Support.Table.print table;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E6 - extension: platform scaling across PS3 / QS22 / dual QS22      *)
(* (the multi-Cell deployment the paper lists as future work, S7).     *)
(* ------------------------------------------------------------------ *)

let dualcell () =
  print_endline "== Extension: platform scaling (PS3 / QS22 / dual-Cell QS22) ==";
  print_endline
    "   (LP-mapping speed-up over a single PPE, CCR 0.775; the dual-Cell
    \    QS22 is the S7 future-work platform: flat = contention-free,\n\
    \    BIF = cross-Cell traffic shares a 20 GB/s coherent interface)";
  let platforms =
    [
      ("PS3 (6 SPEs)", P.ps3 ());
      ("QS22 (8 SPEs)", P.qs22 ());
      ("QS22 dual (flat)", P.qs22_dual ~flat:true ());
      ("QS22 dual (BIF contention)", P.qs22_dual ());
    ]
  in
  let table =
    Support.Table.create
      ("graph" :: List.map (fun (name, _) -> name) platforms)
  in
  List.iter
    (fun (name, g) ->
      let base_platform = P.qs22 ~n_spe:0 () in
      let base = steady base_platform g (H.ppe_only base_platform g) ~n:5_000 in
      let cells =
        List.map
          (fun (_, platform) ->
            let lp = (solve_lp platform g).MS.mapping in
            Printf.sprintf "%.2f" (steady platform g lp ~n:5_000 /. base))
          platforms
      in
      Support.Table.add_row table (name :: cells))
    (graphs ());
  Support.Table.print table;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* M1 - micro-benchmarks (bechamel).                                   *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "== Micro-benchmarks (bechamel, monotonic clock) ==";
  let open Bechamel in
  let platform = P.qs22 () in
  let g = Daggen.Presets.random_graph_1 () in
  let mapping = H.density_pack platform g in
  let small_lp () =
    let p = Lp.Problem.create () in
    let x = Lp.Problem.add_var p "x" in
    let y = Lp.Problem.add_var p "y" in
    Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 2.) ]) Lp.Problem.Le 14.;
    Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 3.); (y, -1.) ]) Lp.Problem.Ge 0.;
    Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, -1.) ]) Lp.Problem.Le 2.;
    Lp.Problem.set_objective p Lp.Problem.Maximize
      (Lp.Expr.of_list [ (x, 3.); (y, 4.) ]);
    match Lp.Simplex.solve p with
    | Lp.Simplex.Optimal _ -> ()
    | _ -> assert false
  in
  let tests =
    [
      Test.make ~name:"steady-state analysis (50 tasks)"
        (Staged.stage (fun () ->
             ignore (SS.period platform (SS.loads platform g mapping))));
      Test.make ~name:"first-periods + buffers"
        (Staged.stage (fun () ->
             let fp = SS.first_periods g in
             ignore (SS.buffer_sizes ~first_periods:fp g)));
      Test.make ~name:"greedy-mem heuristic"
        (Staged.stage (fun () -> ignore (H.greedy_mem platform g)));
      Test.make ~name:"density-pack heuristic"
        (Staged.stage (fun () -> ignore (H.density_pack platform g)));
      Test.make ~name:"simplex (tiny LP)" (Staged.stage small_lp);
      Test.make ~name:"compact formulation build"
        (Staged.stage (fun () ->
             ignore (Cellsched.Milp_formulation.build_compact platform g)));
      Test.make ~name:"simulate 100 instances"
        (Staged.stage (fun () ->
             ignore (R.run platform g mapping ~instances:100)));
    ]
  in
  let grouped = Test.make_grouped ~name:"cellstream" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table = Support.Table.create [ "benchmark"; "time per run" ] in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      let time =
        match Analyze.OLS.estimates v with
        | Some [ ns ] ->
            if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
        | _ -> "n/a"
      in
      Support.Table.add_row table [ name; time ])
    (List.sort compare rows);
  Support.Table.print table;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E9 - Resilience: SPE fail-stop mid-stream, online recovery.         *)
(* ------------------------------------------------------------------ *)

let faults () =
  print_endline "== Resilience: SPE fail-stop mid-stream, online recovery ==";
  print_endline
    "   (best heuristic mapping on the QS22; the most-loaded SPE fail-stops\n\
    \    halfway through the stream; the controller detects the stall from\n\
    \    windowed completion rates, masks the SPE out, remaps on the\n\
    \    survivors and resumes. Measured degraded throughput should track\n\
    \    the steady-state prediction on the reduced platform, ~95% with\n\
    \    the default framework overhead.)";
  let module C = Resilience.Controller in
  let platform = P.qs22 () in
  let table =
    Support.Table.create
      [
        "graph";
        "victim";
        "detect (ms)";
        "recover (ms)";
        "moved";
        "lost";
        "degraded pred/s";
        "measured/s";
        "ratio";
      ]
  in
  List.iter
    (fun (name, g) ->
      let mapping =
        match
          H.best_feasible platform g
            (H.standard_candidates ~with_lp:true platform g)
        with
        | Some (_, m) -> m
        | None -> H.ppe_only platform g
      in
      let victim =
        List.fold_left
          (fun best pe ->
            let load pe =
              List.length (Cellsched.Mapping.tasks_on mapping pe)
            in
            match best with
            | Some b when load b >= load pe -> best
            | _ when load pe > 0 -> Some pe
            | _ -> best)
          None (P.spes platform)
      in
      match victim with
      | None ->
          Support.Table.add_row table
            [ name; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
      | Some victim ->
          let n = instances 4000 in
          let period = SS.period platform (SS.loads platform g mapping) in
          let at = float_of_int n *. period /. 2. in
          let report =
            C.run ~faults:[ Fault.fail_stop ~pe:victim ~at ] platform g
              mapping ~instances:n
          in
          let i = List.hd report.C.incidents in
          Support.Table.add_row table
            [
              name;
              P.pe_name platform victim;
              Printf.sprintf "%.1f" ((i.C.detection_time -. i.C.stall_time) *. 1e3);
              Printf.sprintf "%.1f" ((i.C.recovery_time -. i.C.stall_time) *. 1e3);
              string_of_int i.C.migrated_tasks;
              string_of_int i.C.lost_instances;
              Printf.sprintf "%.2f" (1. /. i.C.predicted_period);
              Printf.sprintf "%.2f" (1. /. report.C.final_period);
              Printf.sprintf "%.3f" (i.C.predicted_period /. report.C.final_period);
            ])
    (graphs ());
  Support.Table.print table;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* M2 - search micro-benchmark: incremental Eval engine vs scratch.    *)
(* ------------------------------------------------------------------ *)

(* Reference baseline: the pre-engine local search, one full
   Steady_state recompute per candidate move or swap. Kept verbatim so
   the engine's speedup is measured against the real historical cost;
   both searches must return the identical mapping (the engine probes
   candidates in the same order with bitwise-equal periods). *)
let local_search_scratch ?(max_passes = 50) platform g mapping =
  let module M = Cellsched.Mapping in
  let assignment = M.to_array mapping in
  let n = P.n_pes platform in
  let best_period =
    ref
      (SS.period platform
         (SS.loads platform g (M.make platform g assignment)))
  in
  let eval () =
    let candidate = M.make platform g assignment in
    if SS.feasible platform g candidate then
      Some (SS.period platform (SS.loads platform g candidate))
    else None
  in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for k = 0 to G.n_tasks g - 1 do
      let home = assignment.(k) in
      let best_move = ref None in
      for pe = 0 to n - 1 do
        if pe <> home then begin
          assignment.(k) <- pe;
          match eval () with
          | Some t when t < !best_period -. 1e-12 ->
              best_period := t;
              best_move := Some pe
          | _ -> ()
        end
      done;
      assignment.(k) <-
        (match !best_move with Some pe -> improved := true; pe | None -> home)
    done;
    for k1 = 0 to G.n_tasks g - 1 do
      for k2 = k1 + 1 to G.n_tasks g - 1 do
        if assignment.(k1) <> assignment.(k2) then begin
          let p1 = assignment.(k1) and p2 = assignment.(k2) in
          assignment.(k1) <- p2;
          assignment.(k2) <- p1;
          match eval () with
          | Some t when t < !best_period -. 1e-12 ->
              best_period := t;
              improved := true
          | _ ->
              assignment.(k1) <- p1;
              assignment.(k2) <- p2
        end
      done
    done
  done;
  M.make platform g assignment

let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Instrumentation-overhead baseline for the observability layer: the
   engine local search on the largest preset with the metrics registry
   off vs on. Every hook is a single branch when off, so the gap must
   stay within noise (<2% target). The metrics-on reruns also populate
   the search_* counter families; the resulting registry snapshot lands
   in BENCH_obs.json alongside the timings. *)
let search_obs platform =
  print_endline "== Observability overhead: metrics registry off vs on ==";
  let name, g =
    List.fold_left
      (fun (bn, bg) (n, g) ->
        if G.n_tasks g > G.n_tasks bg then (n, g) else (bn, bg))
      (List.hd (graphs ()))
      (List.tl (graphs ()))
  in
  let start =
    match
      H.best_feasible platform g
        (H.standard_candidates ~with_lp:false platform g)
    with
    | Some (_, m) -> m
    | None -> H.ppe_only platform g
  in
  let min_of_3 f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let _, t = time_of f in
      if t < !best then best := t
    done;
    !best
  in
  let ls () = ignore (H.local_search platform g start) in
  Obs.Metrics.set_enabled false;
  (* Span-tracing overhead on the solver flight-recorder path: the same
     portfolio solve with the default null context vs a live collector.
     The null path is one pattern match per site and the live path a
     few timestamp+CAS pushes per solve, so both rounds must agree
     within the 2% bar; one full re-measure (min over both rounds)
     absorbs scheduler noise before a failure is declared. *)
  let solve span = ignore (Cellsched.Portfolio.solve ~span platform g) in
  let col = Obs.Span.collector () in
  let traced () =
    Obs.Span.clear col;
    solve (Obs.Span.sub (Obs.Span.root col ~trace:"bench") "bench")
  in
  (* Interleave the paired runs so CPU-frequency drift between blocks
     cannot masquerade as overhead, and keep folding rounds of mins in
     until the verdict is clean (or three rounds say it is not). *)
  let measure_spans () =
    let off = ref infinity and on = ref infinity in
    for _ = 1 to 3 do
      let _, t = time_of (fun () -> solve Obs.Span.null) in
      if t < !off then off := t;
      let _, t = time_of traced in
      if t < !on then on := t
    done;
    (!off, !on)
  in
  let span_overhead (off, on) = (on -. off) /. off *. 100. in
  let t_span_off, t_span_on =
    let r = ref (measure_spans ()) in
    let rounds = ref 1 in
    while span_overhead !r > 2. && !rounds < 3 do
      let off', on' = measure_spans () in
      r := (Float.min (fst !r) off', Float.min (snd !r) on');
      incr rounds
    done;
    !r
  in
  let span_pct = span_overhead (t_span_off, t_span_on) in
  traced ();
  let span_count = Obs.Span.count col in
  Printf.printf
    "graph %s: portfolio %.4f s (tracing off) vs %.4f s (on, %d spans): \
     %+.2f%%\n"
    name t_span_off t_span_on span_count span_pct;
  if span_pct > 2. then
    failwith
      (Printf.sprintf
         "span tracing overhead %+.2f%% above the 2%% bar (off %.4f s, on \
          %.4f s)"
         span_pct t_span_off t_span_on);
  let t_off = min_of_3 ls in
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset Obs.Metrics.default;
  let t_on = min_of_3 ls in
  (* Same one-round re-measure as the span check: the workload is tens
     of milliseconds, where a single scheduler hiccup exceeds 2%. *)
  let t_off, t_on =
    if (t_on -. t_off) /. t_off *. 100. <= 2. then (t_off, t_on)
    else begin
      Obs.Metrics.set_enabled false;
      let off' = min_of_3 ls in
      Obs.Metrics.set_enabled true;
      (Float.min t_off off', Float.min t_on (min_of_3 ls))
    end
  in
  (* The harness's own timings go through the same registry. *)
  let timing state =
    Obs.Metrics.histogram_family
      ~help:"Engine local-search wall time by instrumentation state"
      "bench_local_search_seconds" ~labels:[ "metrics" ] [ state ]
  in
  Obs.Metrics.Histogram.observe (timing "off") t_off;
  Obs.Metrics.Histogram.observe (timing "on") t_on;
  let overhead_pct = (t_on -. t_off) /. t_off *. 100. in
  Printf.printf
    "graph %s: engine ls %.4f s (metrics off) vs %.4f s (on): %+.2f%%\n" name
    t_off t_on overhead_pct;
  if overhead_pct > 2. then
    print_endline "WARNING: instrumentation overhead above the 2% target";
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"obs_overhead\",\n\
    \  \"graph\": %S,\n\
    \  \"tasks\": %d,\n\
    \  \"engine_ls_metrics_off_s\": %.6f,\n\
    \  \"engine_ls_metrics_on_s\": %.6f,\n\
    \  \"overhead_pct\": %.3f,\n\
    \  \"portfolio_span_off_s\": %.6f,\n\
    \  \"portfolio_span_on_s\": %.6f,\n\
    \  \"span_overhead_pct\": %.3f,\n\
    \  \"span_count\": %d,\n\
    \  \"registry\": %s\n\
     }\n"
    name (G.n_tasks g) t_off t_on overhead_pct t_span_off t_span_on span_pct
    span_count
    (Obs.Metrics.to_json Obs.Metrics.default);
  close_out oc;
  Obs.Metrics.set_enabled false;
  print_endline "wrote BENCH_obs.json"

let search () =
  print_endline "== Search micro-benchmark: incremental engine vs scratch ==";
  print_endline
    "   (local search through Eval probes vs full per-candidate recompute;\n\
    \    identical mappings required; branch-and-bound timing for context)";
  let platform = P.qs22 () in
  let module M = Cellsched.Mapping in
  let module Search = Cellsched.Mapping_search in
  let table =
    Support.Table.create
      [ "graph"; "tasks"; "scratch ls"; "engine ls"; "speedup"; "same"; "b&b nodes"; "b&b time" ]
  in
  let json_rows = ref [] in
  let ok_94 = ref true in
  List.iter
    (fun (name, g) ->
      let start =
        match
          H.best_feasible platform g
            (H.standard_candidates ~with_lp:false platform g)
        with
        | Some (_, m) -> m
        | None -> H.ppe_only platform g
      in
      let m_scratch, t_scratch =
        time_of (fun () -> local_search_scratch platform g start)
      in
      let m_engine, t_engine =
        time_of (fun () -> H.local_search platform g start)
      in
      let period m = SS.period platform (SS.loads platform g m) in
      let same =
        M.to_array m_scratch = M.to_array m_engine
        && period m_scratch = period m_engine
      in
      let speedup = if t_engine > 0. then t_scratch /. t_engine else infinity in
      if G.n_tasks g >= 90 && (speedup < 2. || not same) then ok_94 := false;
      let bb_options = { Search.default_options with time_limit = 10. } in
      let r, t_bb =
        time_of (fun () -> Search.solve ~options:bb_options platform g)
      in
      Support.Table.add_row table
        [
          name;
          string_of_int (G.n_tasks g);
          Printf.sprintf "%.3f s" t_scratch;
          Printf.sprintf "%.3f s" t_engine;
          Printf.sprintf "%.1fx" speedup;
          (if same then "yes" else "NO");
          string_of_int r.Search.nodes;
          Printf.sprintf "%.3f s" t_bb;
        ];
      json_rows :=
        Printf.sprintf
          "    { \"graph\": %S, \"tasks\": %d, \"scratch_local_search_s\": %.6f,\n\
          \      \"engine_local_search_s\": %.6f, \"speedup\": %.3f,\n\
          \      \"same_mapping\": %b, \"period_s\": %.9g,\n\
          \      \"bb_nodes\": %d, \"bb_time_s\": %.6f, \"bb_period_s\": %.9g }"
          name (G.n_tasks g) t_scratch t_engine speedup same
          (period m_engine) r.Search.nodes t_bb r.Search.period
        :: !json_rows)
    (graphs ());
  Support.Table.print table;
  let oc = open_out "BENCH_eval.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"search\",\n  \"platform\": \"QS22 (1 PPE + 8 SPEs)\",\n\
    \  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "wrote BENCH_eval.json";
  if not !ok_94 then
    print_endline
      "WARNING: engine local search under 2x (or diverged) on the 94-task preset";
  search_obs platform;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* P1 - parallel search: portfolio + B&B on a domain pool vs the       *)
(* sequential fold. Same seeds: the mapping and period must be bitwise *)
(* identical at every pool size; only the wall clock may differ.       *)
(* ------------------------------------------------------------------ *)

(* Standalone entry for the observability regression: the span-tracing
   and metrics overhead bars plus BENCH_obs.json, without the full
   search suite around it. *)
let obs () = search_obs (P.qs22 ())

let search_par () =
  let host = Domain.recommended_domain_count () in
  print_endline "== Parallel search: domain pool vs sequential ==";
  Printf.printf
    "   (portfolio and branch-and-bound; bitwise-identical results required\n\
    \    at every pool size; this host reports %d core(s))\n"
    host;
  let platform = P.qs22 () in
  let module M = Cellsched.Mapping in
  let module Search = Cellsched.Mapping_search in
  let module Pf = Cellsched.Portfolio in
  let sizes = [ 1; 2; 4 ] in
  let quick = !scale < 1. in
  let restarts = if quick then 2 else Pf.default_restarts in
  (* A node budget, not a wall-clock limit, bounds the B&B here: a
     deadline cutoff is timing-dependent and would break the
     bitwise-identity check between runs of different speeds. *)
  let bb_options =
    {
      Search.default_options with
      max_nodes = (if quick then 8_000 else 50_000);
      time_limit = 3600.;
    }
  in
  let bits = Int64.bits_of_float in
  let table =
    Support.Table.create
      [ "graph"; "strategy"; "seq"; "pool=1"; "pool=2"; "pool=4"; "best speedup"; "identical" ]
  in
  let json_rows = ref [] in
  let speedup_gauge strategy domains =
    Obs.Metrics.gauge_family
      ~help:"Measured parallel search speedup over the sequential run"
      "par_speedup" ~labels:[ "strategy"; "domains" ]
      [ strategy; string_of_int domains ]
  in
  let best_speedup = ref 0. in
  let all_identical = ref true in
  let metrics_were_on = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  List.iter
    (fun (name, g) ->
      let run_strategy strategy ~seq ~par =
        let (a0, p0), t_seq = time_of seq in
        let runs =
          List.map
            (fun n ->
              Par.Pool.with_pool ~size:n (fun p ->
                  let (a, pd), t = time_of (fun () -> par p) in
                  Par.Pool.publish_stats p;
                  let same = a = a0 && bits pd = bits p0 in
                  let speedup = if t > 0. then t_seq /. t else infinity in
                  Obs.Metrics.Gauge.set (speedup_gauge strategy n) speedup;
                  if speedup > !best_speedup then best_speedup := speedup;
                  if not same then all_identical := false;
                  (n, t, speedup, same)))
            sizes
        in
        let identical = List.for_all (fun (_, _, _, same) -> same) runs in
        let best =
          List.fold_left (fun acc (_, _, s, _) -> Float.max acc s) 0. runs
        in
        Support.Table.add_row table
          (name :: strategy
          :: Printf.sprintf "%.3f s" t_seq
          :: List.map (fun (_, t, _, _) -> Printf.sprintf "%.3f s" t) runs
          @ [
              Printf.sprintf "%.2fx" best;
              (if identical then "yes" else "NO");
            ]);
        json_rows :=
          Printf.sprintf
            "    { \"graph\": %S, \"tasks\": %d, \"strategy\": %S,\n\
            \      \"period_s\": %.9g, \"sequential_s\": %.6f, \"identical\": %b,\n\
            \      \"runs\": [ %s ] }"
            name (G.n_tasks g) strategy p0 t_seq identical
            (String.concat ", "
               (List.map
                  (fun (n, t, s, same) ->
                    Printf.sprintf
                      "{ \"domains\": %d, \"time_s\": %.6f, \"speedup\": %.3f, \
                       \"identical\": %b }"
                      n t s same)
                  runs))
          :: !json_rows
      in
      let portfolio_result r = (M.to_array r.Pf.best, r.Pf.period) in
      run_strategy "portfolio"
        ~seq:(fun () -> portfolio_result (Pf.solve ~restarts platform g))
        ~par:(fun p -> portfolio_result (Pf.solve ~pool:p ~restarts platform g));
      let bb_result (r : Search.result) =
        (M.to_array r.Search.mapping, r.Search.period)
      in
      run_strategy "bb"
        ~seq:(fun () -> bb_result (Search.solve ~options:bb_options platform g))
        ~par:(fun p ->
          bb_result (Search.solve ~options:bb_options ~pool:p platform g)))
    (graphs ());
  Support.Table.print table;
  (* Fiber-vs-thunk: the same batch of distinct misses fanned out over
     one pool, once as suspendable fibers (the serving default), once as
     domain-granular thunks. Outputs must be bitwise identical; the
     interesting numbers are the wall clocks and the raw fiber
     scheduling rate (spawn/await/yield round-trips per second). *)
  print_endline "-- Batch miss fan-out: fibers vs thunks (same pool) --";
  let fiber_requests = if quick then 6 else 12 in
  let random_graph rng n =
    Daggen.Generator.generate ~rng
      ~shape:
        { Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.5; jump = 2 }
      ~costs:Daggen.Generator.default_costs
  in
  let fiber_reqs =
    let rng = Support.Rng.create 77 in
    List.init fiber_requests (fun i ->
        let g = random_graph rng (8 + (i mod 5)) in
        {
          Service.Request.label = Printf.sprintf "fiber-bench-%d" i;
          platform;
          graph = g;
          strategy =
            Service.Request.Bb
              { rel_gap = 0.05; max_nodes = (if quick then 2_000 else 8_000) };
          deadline_ms = None;
          prio = 0;
        })
  in
  let render_all responses =
    String.concat "" (List.map Service.Batch.render responses)
  in
  let batch_with ~fibers =
    Par.Pool.with_pool ~size:(min 4 (max 2 host)) (fun p ->
        time_of (fun () ->
            render_all
              (Service.Batch.run_view ~pool:p ~fibers
                 ~view:(Service.Cache.view (Service.Cache.create ()))
                 fiber_reqs)))
  in
  let out_thunk, t_thunk = batch_with ~fibers:false in
  let out_fiber, t_fiber = batch_with ~fibers:true in
  let fiber_identical = String.equal out_thunk out_fiber in
  if not fiber_identical then all_identical := false;
  (* scheduling-rate microbench: tiny fibers, nothing but spawn/await *)
  let spawn_rate =
    let n = if quick then 20_000 else 100_000 in
    Par.Pool.with_pool ~size:(min 4 (max 2 host)) (fun p ->
        let (), t =
          time_of (fun () ->
              ignore
                (Par.Fiber.run p (fun () ->
                     Par.Fiber.parallel_map
                       (fun i ->
                         Par.Fiber.yield ();
                         i + 1)
                       (Array.init n Fun.id))))
        in
        if t > 0. then float_of_int n /. t else 0.)
  in
  Printf.printf
    "   %d distinct misses: thunks %.3f s, fibers %.3f s (ratio %.2fx), \
     identical: %s\n\
    \   fiber spawn+yield+await round-trips: %.0f /s\n"
    fiber_requests t_thunk t_fiber
    (if t_fiber > 0. then t_thunk /. t_fiber else infinity)
    (if fiber_identical then "yes" else "NO")
    spawn_rate;
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"par\",\n\
    \  \"host_cores\": %d,\n\
    \  \"pool_sizes\": [ %s ],\n\
    \  \"all_identical\": %b,\n\
    \  \"best_speedup\": %.3f,\n\
    \  \"fiber\": { \"requests\": %d, \"thunk_s\": %.6f, \"fiber_s\": %.6f,\n\
    \              \"ratio\": %.3f, \"identical\": %b,\n\
    \              \"spawn_await_per_s\": %.0f },\n\
    \  \"rows\": [\n%s\n  ]\n\
     }\n"
    host
    (String.concat ", " (List.map string_of_int sizes))
    !all_identical !best_speedup fiber_requests t_thunk t_fiber
    (if t_fiber > 0. then t_thunk /. t_fiber else 0.)
    fiber_identical spawn_rate
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "wrote BENCH_par.json";
  if not !all_identical then
    print_endline "WARNING: a pooled run diverged from the sequential result";
  if host = 1 then
    print_endline
      "note: host_cores = 1 — pooled runs cannot beat sequential here;\n\
      \      CI skips the speedup assertions on this host (correctness\n\
      \      checks above still apply)"
  else if !best_speedup < 2. then
    Printf.printf
      "note: best speedup %.2fx below 2x (host has %d core(s); >=2x needs >=4)\n"
      !best_speedup host;
  Obs.Metrics.set_enabled metrics_were_on;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* P2 - B&B closure: the rebuilt optimality path (combinatorial        *)
(* bounds, hardest-first order, portfolio seed, sequential dive +      *)
(* threshold tightening) against the frozen PR-2 baselines, which      *)
(* burned ~2M nodes in 10 s without closing the 50-task presets.       *)
(* ------------------------------------------------------------------ *)

(* BENCH_eval.json numbers of the pre-rebuild engine (PR-2), kept as
   literals so the comparison survives the code they measured. *)
let bb_baselines =
  [
    ("random graph 1", (1_826_816, 0.0652, false));
    ("random graph 3", (2_449_408, 0.0502, false));
  ]

let search_bb () =
  print_endline "== Branch-and-bound closure: rebuilt bounds vs PR-2 baseline ==";
  print_endline
    "   (10 s budget per instance; closed = proven within the 5% default gap)";
  let platform = P.qs22 () in
  let module Search = Cellsched.Mapping_search in
  let bb_options = { Search.default_options with time_limit = 10. } in
  let g150 =
    let rng = Support.Rng.create 45 in
    let g =
      Daggen.Generator.generate ~rng
        ~shape:
          {
            Daggen.Generator.n = 150;
            fat = 0.4;
            density = 0.25;
            regularity = 0.6;
            jump = 2;
          }
        ~costs:Daggen.Generator.default_costs
    in
    Streaming.Ccr.scale_to g ~target:0.775
  in
  let instances = graphs () @ [ ("random graph 150", g150) ] in
  let table =
    Support.Table.create
      [ "graph"; "tasks"; "period"; "bound"; "gap"; "nodes"; "closed";
        "time"; "PR-2 nodes"; "PR-2 period" ]
  in
  let json_rows = ref [] in
  let closed = ref 0 in
  let g13_closed = ref true in
  List.iter
    (fun (name, g) ->
      let r, t = time_of (fun () -> Search.solve ~options:bb_options platform g) in
      if r.Search.optimal_within_gap then incr closed
      else if List.mem_assoc name bb_baselines then g13_closed := false;
      let baseline = List.assoc_opt name bb_baselines in
      Support.Table.add_row table
        [
          name;
          string_of_int (G.n_tasks g);
          Printf.sprintf "%.4g s" r.Search.period;
          Printf.sprintf "%.4g s" r.Search.lower_bound;
          Printf.sprintf "%.2f%%" (100. *. r.Search.gap);
          string_of_int r.Search.nodes;
          (if r.Search.optimal_within_gap then "yes" else "NO");
          Printf.sprintf "%.3f s" t;
          (match baseline with
          | Some (n, _, _) -> string_of_int n
          | None -> "-");
          (match baseline with
          | Some (_, p, c) ->
              Printf.sprintf "%.4g s%s" p (if c then "" else " (open)")
          | None -> "-");
        ];
      json_rows :=
        Printf.sprintf
          "    { \"graph\": %S, \"tasks\": %d, \"period_s\": %.9g,\n\
          \      \"lower_bound_s\": %.9g, \"gap\": %.6f, \"nodes\": %d,\n\
          \      \"closed\": %b, \"time_s\": %.6f%s }"
          name (G.n_tasks g) r.Search.period r.Search.lower_bound r.Search.gap
          r.Search.nodes r.Search.optimal_within_gap t
          (match baseline with
          | Some (n, p, c) ->
              Printf.sprintf
                ",\n\
                \      \"pr2_nodes\": %d, \"pr2_period_s\": %.9g, \
                 \"pr2_closed\": %b"
                n p c
          | None -> "")
        :: !json_rows)
    instances;
  Support.Table.print table;
  let oc = open_out "BENCH_bb.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"bb\",\n\
    \  \"platform\": \"QS22 (1 PPE + 8 SPEs)\",\n\
    \  \"time_budget_s\": %g,\n\
    \  \"closed\": %d,\n\
    \  \"total\": %d,\n\
    \  \"graphs_1_and_3_closed\": %b,\n\
    \  \"rows\": [\n%s\n  ]\n\
     }\n"
    bb_options.Search.time_limit !closed (List.length instances) !g13_closed
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "wrote BENCH_bb.json";
  if not !g13_closed then
    print_endline
      "WARNING: a 50-task preset the rebuilt engine must close stayed open";
  print_newline ()

(* Mapping-service latency: cache-hit path (fingerprint + transport +
   validate) vs solve path (full portfolio run) on every preset graph.
   The acceptance bar is a >=10x hit-path advantage; in practice the gap
   is orders of magnitude. BENCH_service.json records both latencies,
   the speedup, and whether each hit reproduced the stored solve
   bitwise (identical resubmission => transport is the identity). *)
let service () =
  print_endline "== Mapping service: cache-hit path vs solve path ==";
  let platform = P.qs22 () in
  let module Pf = Cellsched.Portfolio in
  let quick = !scale < 1. in
  let restarts = if quick then 2 else Pf.default_restarts in
  let hit_reps = 50 in
  let table =
    Support.Table.create
      [ "graph"; "tasks"; "solve"; "hit"; "speedup"; "hit bitwise" ]
  in
  let json_rows = ref [] in
  let min_speedup = ref infinity in
  let all_bitwise = ref true in
  List.iter
    (fun (name, g) ->
      let request =
        {
          Service.Request.label = name;
          platform;
          graph = g;
          strategy =
            Service.Request.Portfolio
              { seed = Pf.default_seed + !seed; restarts };
          deadline_ms = None;
          prio = 0;
        }
      in
      let cache = Service.Cache.create () in
      let one () =
        match Service.Batch.run ~cache [ request ] with
        | [ r ] -> r
        | _ -> assert false
      in
      let solved, t_solve = time_of one in
      assert (solved.Service.Batch.source = Service.Batch.Solved);
      (* The hit path is microseconds; amortize over many repeats and
         keep the minimum mean as the noise-resistant estimate. *)
      let best = ref infinity in
      let last = ref solved in
      for _ = 1 to 3 do
        let t0 = Unix.gettimeofday () in
        for _ = 1 to hit_reps do
          last := one ()
        done;
        let t = (Unix.gettimeofday () -. t0) /. float_of_int hit_reps in
        if t < !best then best := t
      done;
      let t_hit = !best in
      assert ((!last).Service.Batch.source = Service.Batch.Hit);
      let bitwise =
        (!last).Service.Batch.assignment = solved.Service.Batch.assignment
        && Int64.bits_of_float (!last).Service.Batch.period
           = Int64.bits_of_float solved.Service.Batch.period
      in
      if not bitwise then all_bitwise := false;
      let speedup = if t_hit > 0. then t_solve /. t_hit else infinity in
      if speedup < !min_speedup then min_speedup := speedup;
      json_rows :=
        Printf.sprintf
          "    { \"graph\": %S, \"tasks\": %d, \"solve_s\": %.6f, \
           \"hit_s\": %.9f, \"speedup\": %.1f, \"hit_bitwise\": %b }"
          name (G.n_tasks g) t_solve t_hit speedup bitwise
        :: !json_rows;
      Support.Table.add_row table
        [
          name;
          string_of_int (G.n_tasks g);
          Printf.sprintf "%.3f s" t_solve;
          Printf.sprintf "%.1f us" (t_hit *. 1e6);
          Printf.sprintf "%.0fx" speedup;
          (if bitwise then "yes" else "NO");
        ])
    (graphs ());
  Support.Table.print table;
  let oc = open_out "BENCH_service.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"service\",\n\
    \  \"hit_reps\": %d,\n\
    \  \"min_speedup\": %.1f,\n\
    \  \"all_hits_bitwise\": %b,\n\
    \  \"rows\": [\n%s\n  ]\n\
     }\n"
    hit_reps !min_speedup !all_bitwise
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  print_endline "wrote BENCH_service.json";
  if !min_speedup < 10. then
    Printf.printf "WARNING: hit-path speedup %.1fx below the 10x target\n"
      !min_speedup;
  print_newline ()

(* Daemon reply latency: a seeded 200-request stream (repeats, mixed
   priorities, a slice of tight deadlines) driven through the server
   engine in pipe discipline — handle_line, then poll — with the reply
   latencies collected by the on_reply hook. The acceptance bar is
   zero dropped replies: every request line gets exactly one reply
   (hit, solved, partial, reject or error). BENCH_daemon.json records
   the p50/p95/p99 reply latency and the reply mix. *)
let daemon () =
  print_endline "== Scheduling daemon: seeded request stream ==";
  let quick = !scale < 1. in
  let n_requests = if quick then 50 else 200 in
  let restarts = if quick then 2 else Cellsched.Portfolio.default_restarts in
  (* Request labels are whitespace-split tokens on the wire. *)
  let presets =
    List.map
      (fun (name, g) ->
        (String.map (fun c -> if c = ' ' then '-' else c) name, g))
      (graphs ())
  in
  let rng = Support.Rng.create (20100419 + !seed) in
  let lines =
    List.init n_requests (fun i ->
        let name, _ = List.nth presets (Support.Rng.int rng (List.length presets)) in
        let spes = [| 4; 6; 8 |].(Support.Rng.int rng 3) in
        let deadline =
          (* Every eighth request gets a budget far below a cold solve:
             those must come back as feasible partials, not drops. *)
          if Support.Rng.int rng 8 = 0 then " deadline=5" else ""
        in
        let prio =
          match Support.Rng.int rng 4 with
          | 0 -> " prio=2"
          | 1 -> " prio=-1"
          | _ -> ""
        in
        Printf.sprintf "%s spes=%d strategy=portfolio seed=%d restarts=%d%s%s id=r%d"
          name spes
          (Cellsched.Portfolio.default_seed + !seed)
          restarts deadline prio i)
  in
  (* Latency percentiles come out of the server's own
     daemon_reply_seconds histogram (log buckets, three per decade),
     estimated by Obs.Metrics quantile interpolation — the same numbers
     a Prometheus scrape of the live daemon would yield. *)
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset Obs.Metrics.default;
  let statuses = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace statuses k (1 + Option.value ~default:0 (Hashtbl.find_opt statuses k))
  in
  let on_reply (r : Daemon.Server.reply) =
    bump
      (match r.Daemon.Server.status with
      | `Hit -> "hit"
      | `Solved -> "solved"
      | `Partial -> "partial"
      | `Rejected -> "rejected"
      | `Error _ -> "error")
  in
  let config =
    { Daemon.Server.default_config with bound = n_requests; flush_period = 0. }
  in
  let server =
    Daemon.Server.create ~on_reply
      ~load_graph:(fun name -> List.assoc name presets)
      config
  in
  let out _ = () in
  let _, elapsed =
    time_of (fun () ->
        List.iter
          (fun line ->
            Daemon.Server.handle_line server ~out line;
            Daemon.Server.poll server)
          lines;
        Daemon.Server.finish server)
  in
  let stats = Daemon.Server.stats server in
  let dropped = stats.Daemon.Server.received - stats.Daemon.Server.replies in
  let h_latency =
    Obs.Metrics.histogram ~help:"Daemon reply latency (seconds since receipt)"
      "daemon_reply_seconds"
  in
  let percentile q =
    let v = Obs.Metrics.Histogram.quantile h_latency q in
    if Float.is_nan v then 0. else v
  in
  let p50 = percentile 0.50 and p95 = percentile 0.95 and p99 = percentile 0.99 in
  Obs.Metrics.set_enabled false;
  let count k = Option.value ~default:0 (Hashtbl.find_opt statuses k) in
  Printf.printf
    "%d request(s) in %.2f s: %d hit, %d solved, %d partial, %d rejected, %d \
     error(s); %d dropped\n"
    stats.Daemon.Server.received elapsed (count "hit") (count "solved")
    (count "partial") (count "rejected") (count "error") dropped;
  Printf.printf "reply latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n"
    (p50 *. 1e3) (p95 *. 1e3) (p99 *. 1e3);
  let oc = open_out "BENCH_daemon.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"daemon\",\n\
    \  \"requests\": %d,\n\
    \  \"replies\": %d,\n\
    \  \"dropped\": %d,\n\
    \  \"hits\": %d,\n\
    \  \"solved\": %d,\n\
    \  \"partials\": %d,\n\
    \  \"rejected\": %d,\n\
    \  \"errors\": %d,\n\
    \  \"elapsed_s\": %.3f,\n\
    \  \"latency_ms\": { \"p50\": %.6f, \"p95\": %.6f, \"p99\": %.6f }\n\
     }\n"
    stats.Daemon.Server.received stats.Daemon.Server.replies dropped
    (count "hit") (count "solved") (count "partial") (count "rejected")
    (count "error") elapsed (p50 *. 1e3) (p95 *. 1e3) (p99 *. 1e3);
  close_out oc;
  print_endline "wrote BENCH_daemon.json";
  if dropped <> 0 then
    Printf.printf "WARNING: %d request(s) never got a reply\n" dropped;
  print_newline ()

(* Fleet-scale traffic: the daemon engine under a seeded zipfian request
   stream at shard counts {1,2,4} x skew {0.8,1.1}. Every point replays
   the identical stream (Workload is deterministic) through a fresh
   single-threaded server, so the concatenated reply bytes of the
   sharded runs must equal the shards=1 reference byte for byte — the
   identity is asserted at every measured point, not sampled. The
   hit-rate curve replays each stream against shrinking byte budgets
   with the solves pre-computed (a pure cache simulation: hit/miss
   classification does not depend on how a miss was filled), and must
   be monotone in the budget by the LRU inclusion property. *)
let traffic () =
  print_endline "== Fleet-scale traffic: sharded cache under zipfian load ==";
  let quick = !scale < 1. in
  let n_requests = if quick then 240 else 1200 in
  let restarts = if quick then 2 else Cellsched.Portfolio.default_restarts in
  (* Request labels are whitespace-split tokens on the wire. The paper
     presets alone make too small a population for a cache-pressure
     sweep, so a tail of small seeded daggen graphs pads it out — the
     hot head stays dominated by the presets under zipf ranking. *)
  let presets =
    List.map
      (fun (name, g) ->
        (String.map (fun c -> if c = ' ' then '-' else c) name, g))
      (graphs ())
    @ List.init 13 (fun i ->
          let rng = Support.Rng.create (7100 + i) in
          let shape =
            {
              Daggen.Generator.n = 10 + (i mod 4);
              fat = 1.5;
              density = 0.4;
              regularity = 0.5;
              jump = 2;
            }
          in
          ( Printf.sprintf "tail-%02d" i,
            Daggen.Generator.generate ~rng ~shape
              ~costs:Daggen.Generator.default_costs ))
  in
  let spec skew =
    {
      Service.Workload.seed = 20100419 + !seed;
      requests = n_requests;
      skew;
      graphs = presets;
      spes = [ 4; 8 ];
      strategies =
        [
          Service.Request.Portfolio
            { seed = Cellsched.Portfolio.default_seed + !seed; restarts };
        ];
    }
  in
  let skews = [ 0.8; 1.1 ] and shard_counts = [ 1; 2; 4 ] in
  Obs.Metrics.set_enabled true;
  let run_point ~shards lines =
    Obs.Metrics.reset Obs.Metrics.default;
    let config =
      {
        Daemon.Server.default_config with
        bound = n_requests;
        flush_period = 0.;
        cache_shards = shards;
      }
    in
    let server =
      Daemon.Server.create
        ~load_graph:(fun name -> List.assoc name presets)
        config
    in
    let buf = Buffer.create (1 lsl 16) in
    let out = Buffer.add_string buf in
    let _, elapsed =
      time_of (fun () ->
          List.iter
            (fun line ->
              Daemon.Server.handle_line server ~out line;
              Daemon.Server.poll server)
            lines;
          Daemon.Server.finish server)
    in
    let stats = Daemon.Server.stats server in
    let h =
      Obs.Metrics.histogram
        ~help:"Daemon reply latency (seconds since receipt)"
        "daemon_reply_seconds"
    in
    let pct q =
      let v = Obs.Metrics.Histogram.quantile h q in
      if Float.is_nan v then 0. else v
    in
    (Buffer.contents buf, elapsed, stats, (pct 0.50, pct 0.95, pct 0.99))
  in
  let table =
    Support.Table.create
      [ "skew"; "shards"; "req/s"; "p50"; "p95"; "p99"; "hit"; "bitwise" ]
  in
  let point_rows = ref [] in
  let all_bitwise = ref true in
  let total_dropped = ref 0 in
  List.iter
    (fun skew ->
      let lines =
        Service.Workload.(lines ~ids:true (generate (spec skew)))
      in
      let reference = ref "" in
      List.iter
        (fun shards ->
          let output, elapsed, stats, (p50, p95, p99) =
            run_point ~shards lines
          in
          if shards = 1 then reference := output;
          let bitwise = String.equal output !reference in
          if not bitwise then all_bitwise := false;
          let dropped =
            stats.Daemon.Server.received - stats.Daemon.Server.replies
          in
          total_dropped := !total_dropped + dropped;
          let rps = float_of_int stats.Daemon.Server.replies /. elapsed in
          let hit_rate =
            float_of_int stats.Daemon.Server.hits
            /. float_of_int (max 1 stats.Daemon.Server.received)
          in
          point_rows :=
            Printf.sprintf
              "    { \"skew\": %.2f, \"shards\": %d, \"requests\": %d, \
               \"rps\": %.1f, \"latency_ms\": { \"p50\": %.6f, \"p95\": \
               %.6f, \"p99\": %.6f }, \"hits\": %d, \"solved\": %d, \
               \"dropped\": %d, \"bitwise_vs_single\": %b }"
              skew shards stats.Daemon.Server.received rps (p50 *. 1e3)
              (p95 *. 1e3) (p99 *. 1e3) stats.Daemon.Server.hits
              stats.Daemon.Server.solved dropped bitwise
            :: !point_rows;
          Support.Table.add_row table
            [
              Printf.sprintf "%.2f" skew;
              string_of_int shards;
              Printf.sprintf "%.0f" rps;
              Printf.sprintf "%.2f ms" (p50 *. 1e3);
              Printf.sprintf "%.2f ms" (p95 *. 1e3);
              Printf.sprintf "%.2f ms" (p99 *. 1e3);
              Printf.sprintf "%.0f%%" (hit_rate *. 100.);
              (if bitwise then "yes" else "NO");
            ])
        shard_counts)
    skews;
  (* Hit rate vs cache bytes: replay against shrinking budgets with
     every solve pre-computed once. *)
  let curve_rows = ref [] in
  let monotone = ref true in
  List.iter
    (fun skew ->
      let stream = Service.Workload.generate (spec skew) in
      let base =
        Service.Cache.create ~publish:false ~max_entries:(1 lsl 20)
          ~max_bytes:(1 lsl 30) ()
      in
      let entries = Hashtbl.create 64 in
      Array.iter
        (fun r ->
          let fp = Service.Request.fingerprint r in
          if not (Hashtbl.mem entries fp) then begin
            ignore (Service.Batch.run ~cache:base [ r ]);
            match Service.Cache.find base fp with
            | Some e -> Hashtbl.add entries fp e
            | None -> assert false
          end)
        stream;
      let total_bytes = Service.Cache.bytes_used base in
      let budgets =
        [
          max 256 (total_bytes / 4);
          max 256 (total_bytes / 2);
          max 256 (3 * total_bytes / 4);
          total_bytes + 1024;
        ]
      in
      let previous = ref (-1.) in
      List.iter
        (fun budget ->
          let shard =
            Service.Shard.create ~shards:4 ~max_entries:(1 lsl 20)
              ~max_bytes:budget ()
          in
          let view = Service.Shard.view shard in
          let hits = ref 0 in
          Array.iter
            (fun r ->
              let fp = Service.Request.fingerprint r in
              match view.Service.Cache.probe fp with
              | Some _ -> incr hits
              | None -> view.Service.Cache.insert (Hashtbl.find entries fp))
            stream;
          let rate = float_of_int !hits /. float_of_int (Array.length stream) in
          if rate < !previous then monotone := false;
          previous := rate;
          curve_rows :=
            Printf.sprintf
              "    { \"skew\": %.2f, \"shards\": 4, \"cache_bytes\": %d, \
               \"hit_rate\": %.4f }"
              skew budget rate
            :: !curve_rows)
        budgets)
    skews;
  Obs.Metrics.set_enabled false;
  Support.Table.print table;
  let oc = open_out "BENCH_traffic.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"traffic\",\n\
    \  \"seed\": %d,\n\
    \  \"requests_per_point\": %d,\n\
    \  \"population\": %d,\n\
    \  \"all_bitwise\": %b,\n\
    \  \"dropped\": %d,\n\
    \  \"hit_rate_monotone\": %b,\n\
    \  \"points\": [\n%s\n  ],\n\
    \  \"hit_rate_curve\": [\n%s\n  ]\n\
     }\n"
    (20100419 + !seed) n_requests
    (Array.length (Service.Workload.population (spec 1.1)))
    !all_bitwise !total_dropped !monotone
    (String.concat ",\n" (List.rev !point_rows))
    (String.concat ",\n" (List.rev !curve_rows));
  close_out oc;
  print_endline "wrote BENCH_traffic.json";
  if not !all_bitwise then
    print_endline
      "WARNING: a sharded run's replies diverged from the shards=1 reference";
  if !total_dropped <> 0 then
    Printf.printf "WARNING: %d request(s) never got a reply\n" !total_dropped;
  if not !monotone then
    print_endline "WARNING: hit rate not monotone in the cache budget";
  print_newline ()
