(* Failover demo: an SPE fail-stops halfway through a stream and the
   resilience controller recovers online — detect, mask, remap, migrate,
   resume. Prints the incident report and an ASCII Gantt chart of the
   incident window: the healthy steady state ramping down into the stall,
   the recovery gap, and the degraded steady state on the survivors.

   Run with: dune exec examples/failover_demo.exe *)

module P = Cell.Platform
module SS = Cellsched.Steady_state
module C = Resilience.Controller

let () =
  let g = Daggen.Presets.random_graph_1 () in
  let platform = P.qs22 () in
  Format.printf "%a@.@." P.pp platform;
  let name, mapping =
    match
      Cellsched.Heuristics.best_feasible platform g
        (Cellsched.Heuristics.standard_candidates ~with_lp:true platform g)
    with
    | Some nm -> nm
    | None -> ("ppe-only", Cellsched.Heuristics.ppe_only platform g)
  in
  Format.printf "initial mapping (%s):@.%a@.@." name
    (Cellsched.Mapping.pp platform g)
    mapping;
  (* Kill the busiest SPE halfway through the stream. *)
  let victim =
    List.fold_left
      (fun best pe ->
        let load pe = List.length (Cellsched.Mapping.tasks_on mapping pe) in
        match best with
        | Some b when load b >= load pe -> best
        | _ when load pe > 0 -> Some pe
        | _ -> best)
      None (P.spes platform)
    |> Option.get
  in
  let n = 4000 in
  let period = SS.period platform (SS.loads platform g mapping) in
  let at = float_of_int n *. period /. 2. in
  let faults = [ Fault.fail_stop ~pe:victim ~at ] in
  Format.printf "fault plan:@.  %a@.@." (Fault.pp platform) faults;
  let trace = Simulator.Trace.create () in
  let report = C.run ~trace ~faults platform g mapping ~instances:n in
  Format.printf "%a@.@." (C.pp_report platform) report;
  let incident = List.hd report.C.incidents in
  let pad = 20. *. period in
  Format.printf "incident window (x = fault, # = compute, - = transfer):@.";
  print_string
    (Simulator.Trace.gantt ~width:100
       ~from_time:(Float.max 0. (incident.C.stall_time -. pad))
       ~to_time:(incident.C.recovery_time +. (3. *. pad))
       platform trace);
  Format.printf
    "@.recovery latency: %.1f ms (detect %.1f + remap %.1f + migrate %.1f)@."
    ((incident.C.recovery_time -. incident.C.stall_time) *. 1e3)
    ((incident.C.detection_time -. incident.C.stall_time) *. 1e3)
    (incident.C.remap_cost *. 1e3)
    (incident.C.migration_cost *. 1e3);
  Format.printf
    "degraded throughput: %.2f inst/s measured vs %.2f inst/s predicted on \
     the survivors (%.1f%%)@."
    (1. /. report.C.final_period)
    (1. /. incident.C.predicted_period)
    (100. *. incident.C.predicted_period /. report.C.final_period)
