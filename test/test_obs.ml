(* Tests for the observability layer: histogram bucket edges,
   snapshot/reset semantics, deterministic event ordering under a fake
   clock, the Chrome trace_event JSON shape, and the transparency
   property — enabling metrics must not change any scheduling or
   simulation result, bitwise. *)

module M = Obs.Metrics
module Ev = Obs.Events
module P = Cell.Platform
module G = Streaming.Graph

(* --- a minimal JSON parser (validation only) ------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some (('"' | '\\' | '/') as c) ->
                Buffer.add_char buf c;
                advance ();
                go ()
            | Some ('b' | 'f' | 'n' | 'r' | 't') ->
                advance ();
                go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                  | _ -> fail "bad \\u escape"
                done;
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else Obj (members [])
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            Arr [])
          else Arr (elements [])
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> Num (number ())
      | _ -> fail "unexpected character"
    and members acc =
      skip_ws ();
      let k = string_lit () in
      skip_ws ();
      expect ':';
      let v = value () in
      skip_ws ();
      match peek () with
      | Some ',' ->
          advance ();
          members ((k, v) :: acc)
      | Some '}' ->
          advance ();
          List.rev ((k, v) :: acc)
      | _ -> fail "expected ',' or '}'"
    and elements acc =
      let v = value () in
      skip_ws ();
      match peek () with
      | Some ',' ->
          advance ();
          elements (v :: acc)
      | Some ']' ->
          advance ();
          List.rev (v :: acc)
      | _ -> fail "expected ',' or ']'"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj kvs -> ( try Some (List.assoc k kvs) with Not_found -> None)
    | _ -> None
end

(* --- histogram buckets ---------------------------------------------------- *)

let test_histogram_buckets () =
  let r = M.create () in
  let h = M.histogram ~registry:r ~buckets:[| 1.; 2.; 4. |] "h" in
  (* Upper bounds are inclusive: an observation equal to a bound lands in
     that bound's bucket, one epsilon above spills into the next. *)
  List.iter (M.Histogram.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.0; 4.5; 100. ];
  let buckets = M.Histogram.buckets h in
  Alcotest.(check int) "bucket count" 4 (Array.length buckets);
  let counts = Array.map snd buckets in
  Alcotest.(check (array int)) "per-bucket" [| 2; 2; 1; 2 |] counts;
  Alcotest.(check (float 0.)) "le=1" 1. (fst buckets.(0));
  Alcotest.(check (float 0.)) "le=2" 2. (fst buckets.(1));
  Alcotest.(check (float 0.)) "le=4" 4. (fst buckets.(2));
  Alcotest.(check bool) "overflow bound" true (fst buckets.(3) = infinity);
  Alcotest.(check int) "count" 7 (M.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 113.5 (M.Histogram.sum h)

let test_log_buckets () =
  let b = M.Histogram.log_buckets () in
  Alcotest.(check int) "default count" 36 (Array.length b);
  Alcotest.(check (float 1e-12)) "lo" 1e-6 b.(0);
  (* Three buckets per decade: the ratio of consecutive bounds is 10^(1/3). *)
  let ratio = b.(1) /. b.(0) in
  Alcotest.(check (float 1e-9)) "factor" (Float.pow 10. (1. /. 3.)) ratio;
  (* Three per decade from 1e-6: bound 27 sits at 1e-6 * 10^9 = 1 ks. *)
  Alcotest.(check (float 1e-3)) "1ks at index 27" 1e3 b.(27);
  Array.iteri
    (fun i bound -> if i > 0 then assert (bound > b.(i - 1)))
    b

(* --- snapshot / reset ----------------------------------------------------- *)

let test_snapshot_reset () =
  let r = M.create () in
  let c = M.counter ~registry:r ~help:"c" "c_total" in
  let g = M.gauge ~registry:r "g" in
  let fam v = M.counter_family ~registry:r "f_total" ~labels:[ "pe" ] [ v ] in
  M.Counter.add c 3;
  M.Gauge.set g 2.5;
  M.Counter.inc (fam "SPE0");
  M.Counter.inc (fam "SPE0");
  M.Counter.inc (fam "SPE1");
  let snap = M.snapshot r in
  Alcotest.(check (list string))
    "registration order" [ "c_total"; "g"; "f_total" ]
    (List.map (fun f -> f.M.name) snap);
  let f_fam = List.nth snap 2 in
  Alcotest.(check (list string)) "label names" [ "pe" ] f_fam.M.label_names;
  let sample labels =
    match List.assoc labels f_fam.M.samples with
    | M.Counter_v v -> v
    | _ -> Alcotest.fail "expected counter sample"
  in
  Alcotest.(check int) "SPE0" 2 (sample [ "SPE0" ]);
  Alcotest.(check int) "SPE1" 1 (sample [ "SPE1" ]);
  (match List.assoc [] (List.nth snap 0).M.samples with
  | M.Counter_v 3 -> ()
  | _ -> Alcotest.fail "c_total should be 3");
  (* Re-registration by name returns the live handle. *)
  M.Counter.inc (M.counter ~registry:r "c_total");
  Alcotest.(check int) "idempotent handle" 4 (M.Counter.value c);
  (* Reusing a name with another kind is an error. *)
  (match M.gauge ~registry:r "c_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  (* Reset zeroes values but keeps handles registered and live. *)
  M.reset r;
  Alcotest.(check int) "counter reset" 0 (M.Counter.value c);
  Alcotest.(check (float 0.)) "gauge reset" 0. (M.Gauge.value g);
  Alcotest.(check int) "family reset" 0 (M.Counter.value (fam "SPE0"));
  M.Counter.inc c;
  Alcotest.(check int) "live after reset" 1 (M.Counter.value c);
  Alcotest.(check int)
    "families survive reset" 3
    (List.length (M.snapshot r))

let test_multidomain_hammer () =
  (* Four domains hammer one counter, one gauge, one histogram and one
     shared family while the main domain snapshots concurrently: no
     update may be lost and registration must be safe from any domain. *)
  let r = M.create () in
  let c = M.counter ~registry:r "hammer_total" in
  let g = M.gauge ~registry:r "hammer_gauge" in
  let h = M.histogram ~registry:r ~buckets:[| 0.5 |] "hammer_hist" in
  let domains = 4 and per = 25_000 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              M.Counter.inc c;
              M.Gauge.add g 1.;
              M.Histogram.observe h (float_of_int (i land 1));
              if i land 1023 = 0 then
                (* concurrent (idempotent) registration *)
                M.Counter.inc
                  (M.counter_family ~registry:r "hammer_fam_total"
                     ~labels:[ "d" ]
                     [ string_of_int d ])
            done))
  in
  for _ = 1 to 50 do
    ignore (M.snapshot r)
  done;
  List.iter Domain.join ds;
  let total = domains * per in
  Alcotest.(check int) "no lost counter increment" total (M.Counter.value c);
  Alcotest.(check (float 0.)) "no lost gauge add" (float_of_int total)
    (M.Gauge.value g);
  Alcotest.(check int) "no lost observation" total (M.Histogram.count h);
  (* i land 1 alternates 1,0,...: half the observations are 1. *)
  Alcotest.(check (float 0.)) "histogram sum" (float_of_int (total / 2))
    (M.Histogram.sum h);
  List.iter
    (fun (_, i) ->
      Alcotest.(check int) "family child per domain" (per / 1024)
        (M.Counter.value
           (M.counter_family ~registry:r "hammer_fam_total" ~labels:[ "d" ]
              [ string_of_int i ])))
    (List.init domains (fun i -> ((), i)))

let test_export_parses () =
  let r = M.create () in
  let c = M.counter ~registry:r ~help:"with \"quotes\" and \\ back" "c_total" in
  M.Counter.inc c;
  M.Histogram.observe (M.histogram ~registry:r "h_seconds") 0.01;
  M.Gauge.set (M.gauge ~registry:r "g") Float.nan;
  let j = Json.parse (M.to_json r) in
  (match Json.member "families" j with
  | Some (Json.Arr fams) -> Alcotest.(check int) "3 families" 3 (List.length fams)
  | _ -> Alcotest.fail "families array missing");
  (* Prometheus text: one TYPE line per family, cumulative buckets. *)
  let prom = M.to_prometheus r in
  let contains needle =
    let nl = String.length needle and hl = String.length prom in
    let rec go i = i + nl <= hl && (String.sub prom i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      if not (contains needle) then Alcotest.failf "missing %S" needle)
    [ "# TYPE c_total counter"; "h_seconds_bucket{le=\"+Inf\"}"; "h_seconds_count 1" ]

(* --- event ordering under a fake clock ------------------------------------ *)

let test_event_ordering () =
  let clock = Ev.Clock.fake () in
  let sink = Ev.ring ~capacity:8 ~clock () in
  Alcotest.(check bool) "ring enabled" true (Ev.enabled sink);
  Alcotest.(check bool) "null disabled" false (Ev.enabled Ev.null);
  Ev.emit sink "a";
  Ev.emit sink "b";  (* same timestamp: emission order must win *)
  Ev.Clock.advance clock 1.5;
  Ev.emit sink "c";
  let evs = Ev.events sink in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ]
    (List.map (fun e -> e.Ev.name) evs);
  Alcotest.(check (list int)) "seq" [ 0; 1; 2 ]
    (List.map (fun e -> e.Ev.seq) evs);
  Alcotest.(check (list (float 0.))) "ts" [ 0.; 0.; 1.5 ]
    (List.map (fun e -> e.Ev.ts) evs);
  (* Emitting into the null sink is a no-op, not an error. *)
  Ev.emit Ev.null "ignored";
  Alcotest.(check int) "null stays empty" 0 (Ev.length Ev.null)

let test_ring_overwrite () =
  let clock = Ev.Clock.fake () in
  let sink = Ev.ring ~capacity:4 ~clock () in
  for i = 0 to 9 do
    Ev.emit sink (string_of_int i)
  done;
  Alcotest.(check int) "length capped" 4 (Ev.length sink);
  Alcotest.(check int) "dropped" 6 (Ev.dropped sink);
  Alcotest.(check (list string)) "keeps the newest, oldest first"
    [ "6"; "7"; "8"; "9" ]
    (List.map (fun e -> e.Ev.name) (Ev.events sink));
  Ev.clear sink;
  Alcotest.(check int) "clear" 0 (Ev.length sink)

(* --- Chrome trace JSON shape ---------------------------------------------- *)

let check_chrome_shape json_text ~expect_events =
  let j = Json.parse json_text in
  let evs =
    match Json.member "traceEvents" j with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  if expect_events then
    Alcotest.(check bool) "has events" true (List.length evs > 0);
  List.iter
    (fun e ->
      let ph =
        match Json.member "ph" e with
        | Some (Json.Str ph) -> ph
        | _ -> Alcotest.fail "ph missing"
      in
      (match Json.member "ts" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "ts missing");
      (match Json.member "pid" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "pid missing");
      match ph with
      | "X" -> (
          (* Complete events carry a non-negative duration. *)
          match Json.member "dur" e with
          | Some (Json.Num d) when d >= 0. -> ()
          | _ -> Alcotest.fail "X event without dur")
      | "i" | "C" | "M" -> ()
      | other -> Alcotest.failf "unexpected phase %S" other)
    evs;
  evs

let test_chrome_json_handmade () =
  let clock = Ev.Clock.fake () in
  let sink = Ev.ring ~clock () in
  Ev.emit sink ~cat:"compute" ~tid:2 ~phase:(Ev.Complete 0.25)
    ~args:[ ("k", Ev.Int 1); ("ok", Ev.Bool true) ]
    "slot";
  Ev.Clock.advance clock 0.5;
  Ev.emit sink ~phase:Ev.Instant "tick";
  Ev.emit sink ~phase:Ev.Counter ~args:[ ("v", Ev.Float 1.5) ] "queue";
  let evs =
    check_chrome_shape ~expect_events:true
      (Ev.to_chrome_json (Ev.thread_name_event ~tid:2 "SPE1" :: Ev.events sink))
  in
  Alcotest.(check int) "all four events" 4 (List.length evs);
  (* ts is rescaled to microseconds. *)
  let tss =
    List.filter_map
      (fun e ->
        match Json.member "ts" e with Some (Json.Num t) -> Some t | _ -> None)
      evs
  in
  Alcotest.(check bool) "microseconds" true (List.mem 500000. tss)

let test_chrome_json_from_simulation () =
  let rng = Support.Rng.create 11 in
  let g =
    Daggen.Generator.generate ~rng
      ~shape:
        { Daggen.Generator.n = 12; fat = 0.5; density = 0.4; regularity = 0.5; jump = 2 }
      ~costs:Daggen.Generator.default_costs
  in
  let platform = P.make ~n_ppe:1 ~n_spe:4 () in
  let mapping = Cellsched.Heuristics.greedy_cpu platform g in
  let trace = Simulator.Trace.create () in
  let sink = Ev.ring ~clock:(Ev.Clock.fake ()) () in
  let m = Simulator.Runtime.run ~trace ~sink platform g mapping ~instances:50 in
  Alcotest.(check int) "completed" 50 m.Simulator.Runtime.instances;
  let json = Simulator.Trace.to_chrome ~extra:(Ev.events sink) platform trace in
  let evs = check_chrome_shape ~expect_events:true json in
  let phases ph =
    List.length
      (List.filter (fun e -> Json.member "ph" e = Some (Json.Str ph)) evs)
  in
  (* One X span per recorded compute/transfer, metadata naming each PE
     lane, and counter samples merged from the runtime sink. *)
  Alcotest.(check int) "X = trace spans" (Simulator.Trace.length trace)
    (phases "X");
  Alcotest.(check int) "one lane name per PE" (P.n_pes platform) (phases "M");
  Alcotest.(check bool) "counter samples present" true (phases "C" > 0)

(* --- histogram quantiles --------------------------------------------------- *)

let test_histogram_quantile () =
  (* Hand-built non-cumulative buckets: 10 in (0,1], 10 in (1,2], none
     in (2,4], 5 overflow — 25 observations total. *)
  let buckets = [| (1., 10); (2., 10); (4., 0); (infinity, 5) |] in
  let q = M.histogram_quantile buckets in
  Alcotest.(check (float 1e-9)) "q0 at first lower edge" 0. (q 0.);
  Alcotest.(check (float 1e-9)) "q0.2 interpolates" 0.5 (q 0.2);
  Alcotest.(check (float 1e-9)) "median" 1.25 (q 0.5);
  Alcotest.(check (float 1e-9)) "q0.8 at bucket top" 2. (q 0.8);
  (* Ranks landing in the overflow bucket report its lower edge. *)
  Alcotest.(check (float 1e-9)) "q1 clamps to overflow lower edge" 4. (q 1.);
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (M.histogram_quantile [| (1., 0); (infinity, 0) |] 0.5));
  (match q (-0.1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative quantile accepted");
  (match q 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile above 1 accepted");
  (* Monotone in q — the property the bench's p50 <= p95 <= p99 rests on. *)
  let prev = ref neg_infinity in
  for i = 0 to 100 do
    let v = q (float_of_int i /. 100.) in
    if v < !prev then Alcotest.failf "quantile not monotone at %d%%" i;
    prev := v
  done;
  (* The live-histogram wrapper agrees with the bucket-level estimator. *)
  let r = M.create () in
  let h = M.histogram ~registry:r ~buckets:[| 1.; 2.; 4. |] "hq" in
  List.iter (M.Histogram.observe h) [ 0.5; 0.6; 1.5; 3.0 ];
  Alcotest.(check (float 1e-9))
    "wrapper matches buckets"
    (M.histogram_quantile (M.Histogram.buckets h) 0.5)
    (M.Histogram.quantile h 0.5)

(* --- Prometheus exposition under hostile labels and help ------------------- *)

let test_prometheus_hostile_labels () =
  let r = M.create () in
  let child =
    M.counter_family ~registry:r ~help:"bad \\ help\nsecond line"
      "hostile_total" ~labels:[ "who" ]
  in
  M.Counter.inc (child [ "a\"b\\c\nd" ]);
  M.Counter.inc (child [ "plain" ]);
  let prom = M.to_prometheus r in
  let count_sub needle =
    let nl = String.length needle and hl = String.length prom in
    let rec go i acc =
      if i + nl > hl then acc
      else go (i + 1) (if String.sub prom i nl = needle then acc + 1 else acc)
    in
    go 0 0
  in
  (* Label values escape backslash, double quote and newline. *)
  Alcotest.(check int) "escaped label value" 1
    (count_sub "hostile_total{who=\"a\\\"b\\\\c\\nd\"} 1");
  Alcotest.(check int) "plain sibling" 1
    (count_sub "hostile_total{who=\"plain\"} 1");
  (* HELP escapes backslash and newline but never the double quote. *)
  Alcotest.(check int) "escaped help" 1
    (count_sub "# HELP hostile_total bad \\\\ help\\nsecond line\n");
  (* TYPE and HELP appear once per family, not once per child. *)
  Alcotest.(check int) "one TYPE line" 1 (count_sub "# TYPE hostile_total");
  Alcotest.(check int) "one HELP line" 1 (count_sub "# HELP hostile_total");
  (* A raw newline in a label value must never produce a raw newline in
     the exposition — every line stays parseable. *)
  Alcotest.(check int) "no unescaped newline mid-sample" 0
    (count_sub "a\"b\\c\nd")

(* --- spans ----------------------------------------------------------------- *)

module Sp = Obs.Span

let test_span_identity () =
  let col = Sp.collector () in
  let root = Sp.root col ~trace:"t1" in
  let v =
    Sp.with_span root "request" (fun ctx ->
        Sp.with_span ctx ~attrs:[ ("n", Sp.Int 3) ] "solve" (fun ctx ->
            Sp.record ctx "leaf";
            17))
  in
  Alcotest.(check int) "value threaded through" 17 v;
  let spans = Sp.spans col in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  Alcotest.(check (list string)) "sorted parents first"
    [ "/request"; "/request/solve"; "/request/solve/leaf" ]
    (List.map (fun s -> s.Sp.path) spans);
  let by_path p = List.find (fun s -> s.Sp.path = p) spans in
  let req = by_path "/request" and solve = by_path "/request/solve" in
  Alcotest.(check bool) "root has parent 0" true (Int64.equal req.Sp.parent 0L);
  Alcotest.(check bool) "child parent is parent's id" true
    (Int64.equal solve.Sp.parent req.Sp.id);
  Alcotest.(check bool) "grandchild parent is child's id" true
    (Int64.equal (by_path "/request/solve/leaf").Sp.parent solve.Sp.id);
  Alcotest.(check bool) "ids never 0" true
    (List.for_all (fun s -> not (Int64.equal s.Sp.id 0L)) spans);
  (match solve.Sp.attrs with
  | [ ("n", Sp.Int 3) ] -> ()
  | _ -> Alcotest.fail "attrs lost");
  Alcotest.(check bool) "timestamps ordered" true
    (List.for_all (fun s -> s.Sp.t_stop >= s.Sp.t_start) spans);
  (* Identity is content, not allocation order: an identical second run
     produces the same ids; a different trace produces different ones. *)
  let ids_of trace =
    let c = Sp.collector () in
    Sp.with_span (Sp.root c ~trace) "request" (fun ctx ->
        Sp.with_span ctx "solve" (fun _ -> ()));
    List.map (fun s -> (s.Sp.path, s.Sp.id)) (Sp.spans c)
  in
  Alcotest.(check bool) "same trace, same ids" true
    (List.assoc "/request/solve" (ids_of "t1") = solve.Sp.id);
  Alcotest.(check bool) "different trace, different ids" true
    (List.assoc "/request/solve" (ids_of "t2") <> solve.Sp.id);
  (* The null context is free and inert. *)
  Alcotest.(check bool) "null inactive" false (Sp.active Sp.null);
  Alcotest.(check bool) "live ctx active" true (Sp.active root);
  Sp.with_span Sp.null "x" (fun ctx ->
      Alcotest.(check bool) "null child inactive" false (Sp.active ctx));
  Sp.record Sp.null "y";
  Alcotest.(check int) "count" 3 (Sp.count col);
  Sp.clear col;
  Alcotest.(check int) "clear empties" 0 (Sp.count col)

let test_span_exception () =
  let col = Sp.collector () in
  (match
     Sp.with_span (Sp.root col ~trace:"t") "boom" (fun _ -> failwith "x")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  match Sp.spans col with
  | [ s ] ->
      Alcotest.(check string) "span recorded" "/boom" s.Sp.path;
      Alcotest.(check bool) "raised attr" true
        (List.mem ("raised", Sp.Bool true) s.Sp.attrs)
  | _ -> Alcotest.fail "expected exactly the raised span"

let test_span_multidomain () =
  (* Four domains record under one collector through a shared context;
     the merged stream must be complete and well-parented, and its
     (path, id, parent) skeleton independent of interleaving. *)
  let col = Sp.collector () in
  Sp.with_span (Sp.root col ~trace:"md") "request" (fun ctx ->
      let ds =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to 24 do
                  Sp.with_span ctx
                    (Printf.sprintf "w%d:%d" d i)
                    (fun c -> Sp.record c "inner")
                done))
      in
      List.iter Domain.join ds);
  let spans = Sp.spans col in
  Alcotest.(check int) "all spans collected" 201 (List.length spans);
  let ids = List.map (fun s -> s.Sp.id) spans in
  Alcotest.(check bool) "well-parented" true
    (List.for_all
       (fun s -> Int64.equal s.Sp.parent 0L || List.mem s.Sp.parent ids)
       spans);
  let paths = List.map (fun s -> s.Sp.path) spans in
  Alcotest.(check bool) "merge point sorts by path" true
    (paths = List.sort compare paths)

let test_span_chrome_json () =
  let col = Sp.collector () in
  Sp.with_span (Sp.root col ~trace:"cj") "request" (fun ctx ->
      Sp.with_span ctx
        ~attrs:[ ("nodes", Sp.Int 7); ("gap", Sp.Float 0.05) ]
        "solve"
        (fun _ -> ()));
  let evs =
    check_chrome_shape ~expect_events:true
      (Sp.to_chrome_json (Sp.spans col))
  in
  Alcotest.(check int) "one event per span" 2 (List.length evs);
  let args e =
    match Json.member "args" e with
    | Some (Json.Obj kvs) -> kvs
    | _ -> Alcotest.fail "args missing"
  in
  Alcotest.(check bool) "every event carries its path and trace" true
    (List.for_all
       (fun e ->
         let a = args e in
         List.mem_assoc "path" a
         && List.assoc "trace" a = Json.Str "cj")
       evs);
  (* Timestamps are rebased: the earliest event starts at 0. *)
  let tss =
    List.filter_map
      (fun e ->
        match Json.member "ts" e with Some (Json.Num t) -> Some t | _ -> None)
      evs
  in
  Alcotest.(check (float 1e-6)) "rebased to zero" 0.
    (List.fold_left Float.min infinity tss);
  (* The flat rendering (the TRACE verb body) lists parents first. *)
  let flat = Sp.render_flat (Sp.spans col) in
  (match String.split_on_char '\n' flat with
  | first :: second :: _ ->
      Alcotest.(check bool) "parent line first" true
        (String.starts_with ~prefix:"span /request dur_ms=" first);
      Alcotest.(check bool) "child line second" true
        (String.starts_with ~prefix:"span /request/solve dur_ms=" second);
      Alcotest.(check bool) "attrs rendered" true
        (String.ends_with ~suffix:"nodes=7 gap=0.05" second)
  | _ -> Alcotest.fail "render_flat too short");
  (* The tree rendering indents two spaces per depth. *)
  (match String.split_on_char '\n' (Sp.render_tree (Sp.spans col)) with
  | first :: second :: _ ->
      Alcotest.(check bool) "root unindented" true
        (String.starts_with ~prefix:"request " first);
      Alcotest.(check bool) "child indented" true
        (String.starts_with ~prefix:"  solve " second)
  | _ -> Alcotest.fail "render_tree too short")

(* --- span-stream determinism across pool sizes ----------------------------- *)

(* The PR-8 contract: for the same request list, the merged span stream
   — ids, parentage, paths, names, attrs; timestamps excluded — is
   identical whether the batch runs sequentially or on pools of 2 or 4
   workers. Uses the portfolio strategy: its span set is structural
   (entrants by name), unlike the B&B phase-B subtree family whose task
   *set* is timing-dependent by the PR-4 contract. *)
let span_skeleton col =
  List.map
    (fun s -> (s.Sp.trace, s.Sp.path, s.Sp.id, s.Sp.parent, s.Sp.name, s.Sp.attrs))
    (Sp.spans col)

let spans_deterministic_across_pools =
  QCheck.Test.make ~count:5 ~name:"span stream identical at pools 1/2/4"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let requests =
        List.init 3 (fun i ->
            let rng = Support.Rng.create ((seed * 7) + i + 5_000_000) in
            let g =
              Daggen.Generator.generate ~rng
                ~shape:
                  { Daggen.Generator.n = 10 + i; fat = 0.5; density = 0.4;
                    regularity = 0.5; jump = 2 }
                ~costs:Daggen.Generator.default_costs
            in
            {
              Service.Request.label = Printf.sprintf "g%d" i;
              platform = P.make ~n_ppe:1 ~n_spe:4 ();
              graph = g;
              strategy = Service.Request.Portfolio { seed = 24301; restarts = 2 };
              deadline_ms = None;
              prio = 0;
            })
      in
      (* A duplicate of the first request exercises the in-batch
         duplicate path (no second solve span). *)
      let requests = requests @ [ List.hd requests ] in
      let run pool_size =
        let col = Sp.collector () in
        let span = Sp.root col ~trace:"batch" in
        let cache = Service.Cache.create () in
        (match pool_size with
        | 1 -> ignore (Service.Batch.run ~span ~cache requests)
        | n ->
            Par.Pool.with_pool ~size:n (fun pool ->
                ignore (Service.Batch.run ~span ~pool ~cache requests)));
        span_skeleton col
      in
      let seq = run 1 and p2 = run 2 and p4 = run 4 in
      if seq <> p2 then
        QCheck.Test.fail_reportf "span stream diverged between pool 1 and 2";
      if seq <> p4 then
        QCheck.Test.fail_reportf "span stream diverged between pool 1 and 4";
      (* Sanity: the stream is non-trivial and contains the batch root
         plus one solve child per distinct miss. *)
      if not (List.exists (fun (_, p, _, _, _, _) -> p = "/batch") seq) then
        QCheck.Test.fail_reportf "missing batch root span";
      let solves =
        List.filter
          (fun (_, p, _, _, name, _) ->
            String.starts_with ~prefix:"solve:" name
            && String.length p = String.length "/batch/solve:" + 12)
          seq
      in
      if List.length solves <> 3 then
        QCheck.Test.fail_reportf "expected 3 solve spans, got %d"
          (List.length solves);
      true)

(* --- transparency: metrics on = metrics off, bitwise ---------------------- *)

let with_metrics_on f =
  M.set_enabled true;
  Fun.protect ~finally:(fun () -> M.set_enabled false; M.reset M.default) f

let search_result platform g m0 =
  let m = Cellsched.Heuristics.local_search platform g m0 in
  let ev = Cellsched.Eval.create platform g m in
  (Cellsched.Mapping.to_array m, Int64.bits_of_float (Cellsched.Eval.period ev))

let metrics_transparent =
  QCheck.Test.make ~count:25 ~name:"enabling metrics changes no result"
    QCheck.(pair (int_bound 100_000) (int_range 6 16))
    (fun (seed, n) ->
      let n = max 6 n and seed = abs seed in
      let rng = Support.Rng.create (seed + 31_000_000) in
      let g =
        Daggen.Generator.generate ~rng
          ~shape:
            { Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.5; jump = 2 }
          ~costs:Daggen.Generator.default_costs
      in
      let platform = P.make ~n_ppe:1 ~n_spe:4 () in
      let m0 = Cellsched.Heuristics.greedy_mem platform g in
      let base_map, base_period = search_result platform g m0 in
      let on_map, on_period =
        with_metrics_on (fun () -> search_result platform g m0)
      in
      if base_map <> on_map then
        QCheck.Test.fail_reportf "local search diverged under metrics";
      if base_period <> on_period then
        QCheck.Test.fail_reportf "period bits diverged under metrics";
      (* The simulator too: counters and an event sink must not perturb
         the discrete-event timeline. *)
      let sim () =
        let r = Simulator.Runtime.run platform g m0 ~instances:60 in
        ( Array.map Int64.bits_of_float r.Simulator.Runtime.completion_times,
          r.Simulator.Runtime.transfers )
      in
      let base_sim = sim () in
      let on_sim =
        with_metrics_on (fun () ->
            let trace = Simulator.Trace.create () in
            let sink = Ev.ring ~clock:(Ev.Clock.fake ()) () in
            let r =
              Simulator.Runtime.run ~trace ~sink platform g m0 ~instances:60
            in
            ( Array.map Int64.bits_of_float r.Simulator.Runtime.completion_times,
              r.Simulator.Runtime.transfers ))
      in
      if base_sim <> on_sim then
        QCheck.Test.fail_reportf "simulation diverged under metrics/sink";
      true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket edges" `Quick
            test_histogram_buckets;
          Alcotest.test_case "log-scale default buckets" `Quick
            test_log_buckets;
          Alcotest.test_case "snapshot and reset" `Quick test_snapshot_reset;
          Alcotest.test_case "multi-domain hammer" `Quick
            test_multidomain_hammer;
          Alcotest.test_case "JSON and Prometheus exports" `Quick
            test_export_parses;
          Alcotest.test_case "histogram quantile estimation" `Quick
            test_histogram_quantile;
          Alcotest.test_case "Prometheus hostile labels and help" `Quick
            test_prometheus_hostile_labels;
        ] );
      ( "events",
        [
          Alcotest.test_case "fake-clock ordering" `Quick test_event_ordering;
          Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
          Alcotest.test_case "Chrome JSON shape (handmade)" `Quick
            test_chrome_json_handmade;
          Alcotest.test_case "Chrome JSON shape (simulation)" `Quick
            test_chrome_json_from_simulation;
        ] );
      ( "spans",
        [
          Alcotest.test_case "identity, parentage and contexts" `Quick
            test_span_identity;
          Alcotest.test_case "raised attribute on exception" `Quick
            test_span_exception;
          Alcotest.test_case "multi-domain collection" `Quick
            test_span_multidomain;
          Alcotest.test_case "Chrome JSON and renderings" `Quick
            test_span_chrome_json;
          qt spans_deterministic_across_pools;
        ] );
      ("transparency", [ qt metrics_transparent ]);
    ]
