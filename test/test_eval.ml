(* Tests for the incremental evaluation engine: bitwise agreement with
   the from-scratch Steady_state analysis after arbitrary move/swap
   replays, undo/probe purity, and the heuristics' repaired to-PPE DMA
   blind spot. *)

module P = Cell.Platform
module G = Streaming.Graph
module SS = Cellsched.Steady_state
module E = Cellsched.Eval

(* --- exact (bitwise) float comparison ----------------------------------- *)

let bits_eq_arrays name a b =
  if Array.length a <> Array.length b then
    QCheck.Test.fail_reportf "%s: length %d vs %d" name (Array.length a)
      (Array.length b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
        QCheck.Test.fail_reportf "%s.(%d): %.17g vs %.17g" name i x b.(i))
    a

let check_loads_equal (el : SS.loads) (sl : SS.loads) =
  bits_eq_arrays "compute" el.SS.compute sl.SS.compute;
  bits_eq_arrays "bytes_in" el.SS.bytes_in sl.SS.bytes_in;
  bits_eq_arrays "bytes_out" el.SS.bytes_out sl.SS.bytes_out;
  bits_eq_arrays "memory" el.SS.memory sl.SS.memory;
  bits_eq_arrays "link_out" el.SS.link_out sl.SS.link_out;
  bits_eq_arrays "link_in" el.SS.link_in sl.SS.link_in;
  if el.SS.dma_in <> sl.SS.dma_in then
    QCheck.Test.fail_reportf "dma_in differs";
  if el.SS.dma_to_ppe <> sl.SS.dma_to_ppe then
    QCheck.Test.fail_reportf "dma_to_ppe differs"

(* --- random instances ---------------------------------------------------- *)

let random_graph rng n =
  Daggen.Generator.generate ~rng
    ~shape:{ Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.5; jump = 2 }
    ~costs:Daggen.Generator.default_costs

(* A quarter of the cases run on a dual-Cell platform so the inter-Cell
   link rows (recomputed wholesale on colocation changes) are exercised. *)
let random_platform rng =
  if Support.Rng.int rng 4 = 0 then
    P.make ~n_ppe:2 ~n_spe:6 ~n_cells:2 ()
  else P.make ~n_ppe:1 ~n_spe:4 ()

let random_mapping rng platform g =
  let n = P.n_pes platform in
  Cellsched.Mapping.make platform g
    (Array.init (G.n_tasks g) (fun _ -> Support.Rng.int rng n))

(* Random move/swap replay through the journaled mutations. *)
let replay rng ev nops =
  let g = E.graph ev in
  let nk = G.n_tasks g in
  let npes = P.n_pes (E.platform ev) in
  for _ = 1 to nops do
    if Support.Rng.int rng 3 = 0 && nk >= 2 then begin
      let k1 = Support.Rng.int rng nk and k2 = Support.Rng.int rng nk in
      if k1 <> k2 then E.apply_swap ev k1 k2
    end
    else
      E.apply_move ev
        ~task:(Support.Rng.int rng nk)
        ~pe:(Support.Rng.int rng npes)
  done

(* --- the replay property -------------------------------------------------

   For every option combination: after a random sequence of moves and
   swaps, the engine's loads / period / violations are bitwise equal to a
   from-scratch Steady_state evaluation of the final mapping; undoing the
   whole journal restores the initial state bitwise. 4 combos x 60 cases
   = 240 random graphs. *)

let replay_case ~share ~tight (seed, n) =
  (* The qcheck shrinker can wander below the generator's range. *)
  let n = max 5 n and seed = abs seed in
  let salt = (if share then 1_000_000 else 0) + if tight then 2_000_000 else 0 in
  let rng = Support.Rng.create (seed + salt) in
  let platform = random_platform rng in
  let g = random_graph rng n in
  let m0 = random_mapping rng platform g in
  let options =
    E.make_options ~share_colocated_buffers:share ~tight_pipeline:tight ()
  in
  let scratch m =
    SS.loads ~share_colocated_buffers:share ~tight_pipeline:tight platform g m
  in
  let ev = E.create ~options platform g m0 in
  replay rng ev (5 + Support.Rng.int rng 30);
  let m = E.mapping ev in
  let sl = scratch m in
  check_loads_equal (E.loads ev) sl;
  if Int64.bits_of_float (E.period ev)
     <> Int64.bits_of_float (SS.period platform sl)
  then QCheck.Test.fail_reportf "period differs";
  if
    E.violations ev
    <> SS.violations ~share_colocated_buffers:share ~tight_pipeline:tight
         platform g m
  then QCheck.Test.fail_reportf "violations differ";
  if E.feasible ev <> (SS.violations_of_loads platform sl = []) then
    QCheck.Test.fail_reportf "feasible differs";
  (* Undo the full journal: bitwise back to the initial state. *)
  while E.undo_depth ev > 0 do
    E.undo ev
  done;
  check_loads_equal (E.loads ev) (scratch m0);
  true

let replay_matches_scratch ~share ~tight =
  QCheck.Test.make ~count:60
    ~name:
      (Printf.sprintf "replay = scratch (share=%b, tight=%b)" share tight)
    QCheck.(pair (int_bound 100_000) (int_range 5 20))
    (replay_case ~share ~tight)

(* --- probe purity -------------------------------------------------------- *)

let probe_is_pure =
  QCheck.Test.make ~count:40 ~name:"probe_move/probe_swap leave no trace"
    QCheck.(pair (int_bound 100_000) (int_range 5 15))
    (fun (seed, n) ->
      let n = max 5 n and seed = abs seed in
      let rng = Support.Rng.create (seed + 7_000_000) in
      let platform = random_platform rng in
      let g = random_graph rng n in
      let m0 = random_mapping rng platform g in
      let ev = E.create platform g m0 in
      let before = E.loads ev in
      let nk = G.n_tasks g and npes = P.n_pes platform in
      for _ = 1 to 20 do
        let k = Support.Rng.int rng nk in
        let pe = Support.Rng.int rng npes in
        let t, feas = E.probe_move ev ~task:k ~pe in
        (* The probed value is the scratch period of the mutated mapping. *)
        let arr = Cellsched.Mapping.to_array (E.mapping ev) in
        arr.(k) <- pe;
        let m' = Cellsched.Mapping.make platform g arr in
        let sl = SS.loads platform g m' in
        if Int64.bits_of_float t <> Int64.bits_of_float (SS.period platform sl)
        then QCheck.Test.fail_reportf "probe_move period differs";
        if feas <> (SS.violations_of_loads platform sl = []) then
          QCheck.Test.fail_reportf "probe_move feasibility differs";
        let k2 = Support.Rng.int rng nk in
        if k2 <> k then ignore (E.probe_swap ev k k2)
      done;
      check_loads_equal (E.loads ev) before;
      if E.undo_depth ev <> 0 then
        QCheck.Test.fail_reportf "probe left journal entries";
      true)

(* --- the heuristics' to-PPE DMA blind spot -------------------------------

   One SPE, a tight to-PPE DMA queue (2 slots), and a fan-out source S
   whose consumers carry buffers too large for the local store. The
   consumers are forced onto the PPE; if S stays on the SPE it needs one
   to-PPE slot per consumer (4 > 2). The old incremental bookkeeping
   documented this overflow as a known blind spot; the engine-backed
   heuristics must repair it (move S to the PPE) before returning. *)

let blind_spot_graph () =
  let mk ?(read = 0.) ?(write = 0.) name =
    Streaming.Task.make ~name ~w_ppe:1e-3 ~w_spe:1e-3 ~read_bytes:read
      ~write_bytes:write ()
  in
  let tasks =
    Array.init 9 (fun i ->
        if i = 0 then mk "S"
        else if i <= 4 then mk (Printf.sprintf "C%d" i)
        else mk (Printf.sprintf "Z%d" (i - 4)))
  in
  let small = 1024. and huge = 100_000. in
  let edges =
    List.init 4 (fun i -> (0, i + 1, small))
    @ List.init 4 (fun i -> (i + 1, i + 5, huge))
  in
  G.of_tasks tasks edges

let test_no_dma_to_ppe_violation () =
  let platform =
    P.make ~n_ppe:1 ~n_spe:1 ~max_dma_to_ppe:2 ~local_store:100_000
      ~code_size:0 ()
  in
  let g = blind_spot_graph () in
  let has_dma_to_ppe m =
    List.exists
      (function SS.Dma_to_ppe _ -> true | _ -> false)
      (SS.violations platform g m)
  in
  let strategies =
    [
      ("greedy-mem", Cellsched.Heuristics.greedy_mem);
      ("greedy-cpu", Cellsched.Heuristics.greedy_cpu);
      ("density-pack", Cellsched.Heuristics.density_pack);
      ("lp-round", Cellsched.Heuristics.lp_rounding ~improve:false);
    ]
  in
  List.iter
    (fun (name, strategy) ->
      let m = strategy platform g in
      Alcotest.(check bool)
        (name ^ " returns no to-PPE DMA violation")
        false (has_dma_to_ppe m))
    strategies

(* The repair is not vacuous: on this instance the unrepaired greedy
   choice (S on the SPE, consumers forced to the PPE) does overflow. *)
let test_blind_spot_is_real () =
  let platform =
    P.make ~n_ppe:1 ~n_spe:1 ~max_dma_to_ppe:2 ~local_store:100_000
      ~code_size:0 ()
  in
  let g = blind_spot_graph () in
  let unrepaired =
    Cellsched.Mapping.make platform g [| 1; 0; 0; 0; 0; 0; 0; 0; 0 |]
  in
  Alcotest.(check bool) "naive placement overflows" true
    (List.exists
       (function SS.Dma_to_ppe _ -> true | _ -> false)
       (SS.violations platform g unrepaired))

(* --- partial assignments match the branch-and-bound expectations -------- *)

let test_partial_assignment_consistency () =
  let platform = P.make ~n_ppe:1 ~n_spe:2 () in
  let rng = Support.Rng.create 12345 in
  let g = random_graph rng 8 in
  let ev = E.create_empty platform g in
  Alcotest.(check int) "nothing assigned" 0 (E.n_assigned ev);
  Alcotest.(check (float 0.)) "empty period" 0. (E.period ev);
  (* Assign everything in topological order; the complete state coincides
     with scratch. *)
  let order = G.topological_order g in
  Array.iter (fun k -> E.assign ev ~task:k ~pe:(k mod P.n_pes platform)) order;
  let m = E.mapping ev in
  check_loads_equal (E.loads ev) (SS.loads platform g m);
  (* Unassign half and reassign elsewhere: still consistent. *)
  for k = 0 to (G.n_tasks g / 2) - 1 do
    E.unassign ev ~task:k
  done;
  for k = 0 to (G.n_tasks g / 2) - 1 do
    E.assign ev ~task:k ~pe:((k + 1) mod P.n_pes platform)
  done;
  let m' = E.mapping ev in
  check_loads_equal (E.loads ev) (SS.loads platform g m')

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "eval"
    [
      ( "replay",
        [
          qt (replay_matches_scratch ~share:false ~tight:false);
          qt (replay_matches_scratch ~share:true ~tight:false);
          qt (replay_matches_scratch ~share:false ~tight:true);
          qt (replay_matches_scratch ~share:true ~tight:true);
        ] );
      ("probe", [ qt probe_is_pure ]);
      ( "blind-spot",
        [
          Alcotest.test_case "heuristics repair to-PPE overflow" `Quick
            test_no_dma_to_ppe_violation;
          Alcotest.test_case "unrepaired placement overflows" `Quick
            test_blind_spot_is_real;
        ] );
      ( "partial",
        [
          Alcotest.test_case "assign/unassign consistency" `Quick
            test_partial_assignment_consistency;
        ] );
    ]
