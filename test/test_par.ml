(* Tests for the domain pool (lib/par) and the determinism contract of
   the parallel searches: with the same seeds, the portfolio and the
   branch-and-bound must return bitwise the same mapping, period and
   steady-state loads on a pool of any size as they do sequentially. *)

module P = Cell.Platform
module G = Streaming.Graph
module SS = Cellsched.Steady_state
module M = Cellsched.Mapping
module H = Cellsched.Heuristics
module Search = Cellsched.Mapping_search
module Pf = Cellsched.Portfolio
module Inc = Cellsched.Incumbent
module R = Simulator.Runtime
module Pool = Par.Pool
module Q = Par.Spmc_queue

let pool_sizes = [ 1; 2; 4 ]
let bits = Int64.bits_of_float

(* ====================================================================== *)
(* SPMC work-stealing queue                                               *)
(* ====================================================================== *)

let test_spmc_fifo () =
  let q = Q.create ~size_pow:3 () in
  for i = 0 to 7 do
    Alcotest.(check bool) "push" true (Q.push q i)
  done;
  Alcotest.(check bool) "full ring refuses" false (Q.push q 8);
  Alcotest.(check int) "size" 8 (Q.size q);
  for i = 0 to 7 do
    Alcotest.(check (option int)) "pop order" (Some i) (Q.pop q)
  done;
  Alcotest.(check (option int)) "empty" None (Q.pop q);
  (* The ring is reusable after draining. *)
  Alcotest.(check bool) "push after drain" true (Q.push q 99);
  Alcotest.(check (option int)) "pop after drain" (Some 99) (Q.pop q)

let test_spmc_steal () =
  let victim = Q.create () and mine = Q.create () in
  for i = 0 to 9 do
    ignore (Q.push victim i)
  done;
  let moved = Q.steal victim ~into:mine in
  Alcotest.(check int) "steals just over half" 5 moved;
  Alcotest.(check int) "victim keeps the rest" 5 (Q.size victim);
  (* The thief gets the oldest elements, in order. *)
  for i = 0 to 4 do
    Alcotest.(check (option int)) "stolen order" (Some i) (Q.pop mine)
  done;
  Alcotest.(check (option int)) "victim resumes at 5" (Some 5) (Q.pop victim);
  Alcotest.(check int) "empty steal" 0 (Q.steal mine ~into:victim)

(* ====================================================================== *)
(* Pool unit tests                                                        *)
(* ====================================================================== *)

let test_zero_tasks () =
  Pool.with_pool ~size:2 (fun p ->
      Alcotest.(check int) "empty map" 0
        (Array.length (Pool.parallel_map p (fun x -> x) [||]));
      let hits = ref 0 in
      Pool.parallel_for p 0 (fun _ -> incr hits);
      Alcotest.(check int) "empty for" 0 !hits)

let rec tree_sum p depth =
  if depth = 0 then 1
  else begin
    let left = Pool.submit p (fun () -> tree_sum p (depth - 1)) in
    let right = tree_sum p (depth - 1) in
    right + Pool.await p left
  end

let test_single_worker () =
  (* A worker awaiting nested work must help, not deadlock, even when it
     is the only worker. *)
  Pool.with_pool ~size:1 (fun p ->
      let sq = Pool.parallel_map p (fun i -> i * i) (Array.init 50 Fun.id) in
      Alcotest.(check int) "map on one worker" (49 * 49) sq.(49);
      let total = Pool.await p (Pool.submit p (fun () -> tree_sum p 6)) in
      Alcotest.(check int) "nested on one worker" 64 total)

let test_nested_submit () =
  Pool.with_pool ~size:2 (fun p ->
      let total = Pool.await p (Pool.submit p (fun () -> tree_sum p 8)) in
      Alcotest.(check int) "tree sum" 256 total)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~size:2 (fun p ->
      (match
         Pool.parallel_map p
           (fun i -> if i mod 3 = 1 then raise (Boom i) else i)
           (Array.init 10 Fun.id)
       with
      | _ -> Alcotest.fail "parallel_map should re-raise"
      | exception Boom i ->
          Alcotest.(check int) "lowest-index error wins" 1 i);
      let pr = Pool.submit p (fun () -> raise (Boom 42)) in
      match Pool.await p pr with
      | _ -> Alcotest.fail "await should re-raise"
      | exception Boom i -> Alcotest.(check int) "await re-raises" 42 i)

(* The capture path with the owner {e helping}: the driver worker fills
   its own deque (one raiser among innocents) and then blocks in await,
   which runs and steals tasks. Whichever domain executes the raiser —
   owner helping or a stealing peer — the exception must land in its
   promise and re-raise at the await, leaving the pool fully usable. A
   finaliser then submits {e more} work while Boom is unwinding
   (re-entrant submit during unwind) and awaits it. Nothing may leak
   into the worker shield: [shielded] stays zero. *)
let test_stolen_raise_while_helping () =
  Pool.with_pool ~size:2 (fun p ->
      let driver =
        Pool.submit p (fun () ->
            let raiser = Pool.submit p (fun () -> raise (Boom 7)) in
            let innocents = Array.init 32 (fun i -> Pool.submit p (fun () -> i)) in
            let sum =
              Array.fold_left (fun a pr -> a + Pool.await p pr) 0 innocents
            in
            match Pool.await p raiser with
            | () -> Alcotest.fail "await of a raising task must re-raise"
            | exception Boom i ->
                let again = ref 0 in
                (try
                   Fun.protect
                     ~finally:(fun () ->
                       again := Pool.await p (Pool.submit p (fun () -> 21 + 21)))
                     (fun () -> raise (Boom i))
                 with Boom _ -> ());
                sum + !again)
      in
      Alcotest.(check int) "pool survives the unwind" (496 + 42)
        (Pool.await p driver);
      Alcotest.(check int) "no exception swallowed by the shield" 0
        (Array.fold_left
           (fun a (s : Pool.worker_stats) -> a + s.Pool.shielded)
           0 (Pool.stats p)))

let test_race () =
  Pool.with_pool ~size:2 (fun p ->
      let v = Pool.race p [ (fun ~cancelled:_ -> 1); (fun ~cancelled:_ -> 2) ] in
      Alcotest.(check bool) "a winner's value" true (v = 1 || v = 2);
      match
        Pool.race p
          [
            (fun ~cancelled:_ -> failwith "first");
            (fun ~cancelled:_ -> failwith "second");
          ]
      with
      | _ -> Alcotest.fail "all-failing race should raise"
      | exception Failure m ->
          Alcotest.(check string) "lowest-index error" "first" m)

let test_stealing_under_contention () =
  (* A worker fills its own deque with subtasks and then busy-spins
     without helping. It never pops, so every subtask can only leave its
     deque by being stolen by a peer. *)
  Pool.with_pool ~size:4 (fun p ->
      let n = 64 in
      let finished = Atomic.make 0 in
      let driver =
        Pool.submit p (fun () ->
            for _ = 1 to n do
              ignore (Pool.submit p (fun () -> Atomic.incr finished))
            done;
            let deadline = Unix.gettimeofday () +. 60. in
            while Atomic.get finished < n do
              if Unix.gettimeofday () > deadline then
                failwith "subtasks were never stolen";
              Domain.cpu_relax ()
            done)
      in
      Pool.await p driver;
      let stats = Pool.stats p in
      let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
      Alcotest.(check int) "every task ran exactly once" (n + 1)
        (sum (fun s -> s.Pool.executed));
      (* Re-steals of already-stolen tasks can push the count above n,
         never below. *)
      Alcotest.(check bool) "all subtasks were stolen" true
        (sum (fun s -> s.Pool.stolen) >= n))

let test_deque_overflow () =
  (* Ring of 4 slots: nested submissions overflow to the injector and
     must still all run. *)
  let p = Pool.create ~size:2 ~deque_pow:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let total =
        Pool.await p
          (Pool.submit p (fun () ->
               let promises = Array.init 64 (fun i -> Pool.submit p (fun () -> i)) in
               Array.fold_left (fun acc pr -> acc + Pool.await p pr) 0 promises))
      in
      Alcotest.(check int) "all overflowed tasks ran" (63 * 64 / 2) total)

let test_pool_stats_shape () =
  Pool.with_pool ~size:3 (fun p ->
      Alcotest.(check int) "size" 3 (Pool.size p);
      ignore (Pool.parallel_map p (fun i -> i + 1) (Array.init 32 Fun.id));
      let stats = Pool.stats p in
      Alcotest.(check int) "one stat row per worker" 3 (Array.length stats);
      let executed = Array.fold_left (fun a s -> a + s.Pool.executed) 0 stats in
      Alcotest.(check int) "executed counts every task" 32 executed)

(* ====================================================================== *)
(* Incumbent total order                                                  *)
(* ====================================================================== *)

let test_incumbent_tiebreak () =
  let a = [| 0; 1; 2 |] and b = [| 0; 2; 1 |] in
  let winner offers =
    let inc = Inc.create () in
    List.iter (fun arr -> ignore (Inc.offer inc ~period:1.0 arr)) offers;
    (Option.get (Inc.best inc)).Inc.arr
  in
  let w1 = winner [ a; b ] and w2 = winner [ b; a ] in
  Alcotest.(check bool) "winner independent of offer order" true (w1 = w2);
  let expected =
    if
      Int64.unsigned_compare
        (M.fingerprint_array a)
        (M.fingerprint_array b)
      <= 0
    then a
    else b
  in
  Alcotest.(check bool) "winner is the fingerprint minimum" true
    (w1 = expected);
  let inc = Inc.create () in
  Alcotest.(check bool) "first offer lands" true (Inc.offer inc ~period:1.0 a);
  Alcotest.(check bool) "worse period rejected" false
    (Inc.offer inc ~period:2.0 b);
  Alcotest.(check bool) "equal entry rejected" false
    (Inc.offer inc ~period:1.0 a);
  Alcotest.(check bool) "better period accepted" true
    (Inc.offer inc ~period:0.5 b);
  Alcotest.(check (float 0.)) "period reads the best" 0.5 (Inc.period inc)

(* ====================================================================== *)
(* B&B tie-break regression: equal-period optima                          *)
(* ====================================================================== *)

let test_bb_tiebreak_regression () =
  (* A symmetric diamond on 1 PPE + 2 identical SPEs has several optima
     of exactly equal period. Seeded with a deliberately poor incumbent
     and rel_gap = 0, the search must return the brute-force optimal
     period and the same mapping on every run and on every pool size. *)
  let t name = Streaming.Task.make ~name ~w_ppe:1e-3 ~w_spe:1e-3 () in
  let g =
    G.of_tasks
      [| t "src"; t "left"; t "right"; t "sink" |]
      [ (0, 1, 512.); (0, 2, 512.); (1, 3, 512.); (2, 3, 512.) ]
  in
  let platform = P.make ~n_ppe:1 ~n_spe:2 () in
  let n_pes = P.n_pes platform and nk = G.n_tasks g in
  let best_bf = ref infinity in
  let code_to_arr code =
    let arr = Array.make nk 0 in
    let c = ref code in
    for k = 0 to nk - 1 do
      arr.(k) <- !c mod n_pes;
      c := !c / n_pes
    done;
    arr
  in
  let total = int_of_float (float_of_int n_pes ** float_of_int nk) in
  for code = 0 to total - 1 do
    let m = M.make platform g (code_to_arr code) in
    if SS.feasible platform g m then begin
      let p = SS.period platform (SS.loads platform g m) in
      if p < !best_bf then best_bf := p
    end
  done;
  let options = { Search.default_options with rel_gap = 0. } in
  let incumbent = H.ppe_only platform g in
  let solve ?pool () = Search.solve ~options ~incumbent ?pool platform g in
  let r0 = solve () in
  Alcotest.(check bool) "period = brute-force optimum" true
    (bits r0.Search.period = bits !best_bf);
  let r1 = solve () in
  Alcotest.(check bool) "rerun returns the same mapping" true
    (M.to_array r1.Search.mapping = M.to_array r0.Search.mapping);
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun p ->
          let r = solve ~pool:p () in
          Alcotest.(check bool)
            (Printf.sprintf "pool=%d same mapping" size)
            true
            (M.to_array r.Search.mapping = M.to_array r0.Search.mapping);
          Alcotest.(check bool)
            (Printf.sprintf "pool=%d same period bits" size)
            true
            (bits r.Search.period = bits r0.Search.period)))
    pool_sizes

(* ====================================================================== *)
(* Determinism properties: parallel bitwise = sequential                  *)
(* ====================================================================== *)

let bits_eq_arrays name a b =
  if Array.length a <> Array.length b then
    QCheck.Test.fail_reportf "%s: length %d vs %d" name (Array.length a)
      (Array.length b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        QCheck.Test.fail_reportf "%s.(%d): %.17g vs %.17g" name i x b.(i))
    a

let check_loads_equal (a : SS.loads) (b : SS.loads) =
  bits_eq_arrays "compute" a.SS.compute b.SS.compute;
  bits_eq_arrays "bytes_in" a.SS.bytes_in b.SS.bytes_in;
  bits_eq_arrays "bytes_out" a.SS.bytes_out b.SS.bytes_out;
  bits_eq_arrays "memory" a.SS.memory b.SS.memory;
  bits_eq_arrays "link_out" a.SS.link_out b.SS.link_out;
  bits_eq_arrays "link_in" a.SS.link_in b.SS.link_in

let random_graph rng n =
  Daggen.Generator.generate ~rng
    ~shape:
      { Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.5; jump = 2 }
    ~costs:Daggen.Generator.default_costs

let random_platform rng =
  P.make ~n_ppe:1 ~n_spe:(2 + Support.Rng.int rng 3) ()

(* Each case solves sequentially, then re-solves on pools of 1, 2 and 4
   domains and demands bitwise-equal mapping, period and steady-state
   loads. 60 portfolio + 60 B&B cases x 3 pool sizes. *)

let portfolio_deterministic =
  QCheck.Test.make ~count:60
    ~name:"parallel portfolio bitwise = sequential (pools of 1/2/4)"
    QCheck.(pair (int_bound 1_000_000) (int_range 6 16))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let g = random_graph rng n in
      let platform = random_platform rng in
      let r0 = Pf.solve ~restarts:3 platform g in
      let a0 = M.to_array r0.Pf.best in
      let l0 = SS.loads platform g r0.Pf.best in
      List.iter
        (fun size ->
          Pool.with_pool ~size (fun p ->
              let r = Pf.solve ~pool:p ~restarts:3 platform g in
              if M.to_array r.Pf.best <> a0 then
                QCheck.Test.fail_reportf "pool=%d: mapping differs" size;
              if bits r.Pf.period <> bits r0.Pf.period then
                QCheck.Test.fail_reportf "pool=%d: period %.17g vs %.17g" size
                  r.Pf.period r0.Pf.period;
              check_loads_equal (SS.loads platform g r.Pf.best) l0))
        pool_sizes;
      true)

let bb_deterministic =
  (* A node budget (not a wall-clock limit) so early stopping is itself
     deterministic; counters like [nodes] are the one timing-dependent
     output and are deliberately not compared. [dive_nodes] is cut to 64
     so the parallel second phase — not just the sequential dive — does
     the real work on every instance that is not closed at the root. *)
  let options =
    {
      Search.default_options with
      max_nodes = 20_000;
      dive_nodes = 64;
      time_limit = 3600.;
    }
  in
  QCheck.Test.make ~count:60
    ~name:"parallel B&B bitwise = sequential (pools of 1/2/4)"
    QCheck.(pair (int_bound 1_000_000) (int_range 5 10))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let g = random_graph rng n in
      let platform = random_platform rng in
      let r0 = Search.solve ~options platform g in
      let a0 = M.to_array r0.Search.mapping in
      let l0 = SS.loads platform g r0.Search.mapping in
      List.iter
        (fun size ->
          Pool.with_pool ~size (fun p ->
              let r = Search.solve ~options ~pool:p platform g in
              if M.to_array r.Search.mapping <> a0 then
                QCheck.Test.fail_reportf "pool=%d: mapping differs" size;
              if bits r.Search.period <> bits r0.Search.period then
                QCheck.Test.fail_reportf "pool=%d: period %.17g vs %.17g" size
                  r.Search.period r0.Search.period;
              if bits r.Search.lower_bound <> bits r0.Search.lower_bound then
                QCheck.Test.fail_reportf "pool=%d: lower bound differs" size;
              if r.Search.optimal_within_gap <> r0.Search.optimal_within_gap
              then QCheck.Test.fail_reportf "pool=%d: optimality flag differs" size;
              check_loads_equal (SS.loads platform g r.Search.mapping) l0))
        pool_sizes;
      true)

(* ====================================================================== *)
(* Cross-layer: simulated steady period vs Steady_state prediction        *)
(* ====================================================================== *)

let no_overhead =
  {
    R.overhead_fraction = 0.;
    dma_setup_time = 0.;
    comm_cpu_time = 0.;
    peek_flush = true;
  }

let sim_matches_prediction =
  QCheck.Test.make ~count:30
    ~name:"simulator steady period tracks Steady_state prediction"
    QCheck.(pair (int_bound 1_000_000) (int_range 5 12))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let g = random_graph rng n in
      let platform = P.make ~n_ppe:1 ~n_spe:3 () in
      let m =
        match
          H.best_feasible platform g
            (H.standard_candidates ~with_lp:false platform g)
        with
        | Some (_, m) -> m
        | None -> H.ppe_only platform g
      in
      let predicted = SS.period platform (SS.loads platform g m) in
      let instances = 600 in
      let metrics = R.run ~options:no_overhead platform g m ~instances in
      let measured = 1. /. metrics.R.steady_throughput in
      (* The steady window spans the second half of the stream: allow the
         prediction to be off by one instance over that window plus a
         slack for DMA granularity, in either direction. (8% base slack:
         seed 297810 at n=10 measures 6.2% over on unchanged solver and
         simulator code — granularity alone can eat the old 5%.) *)
      let window = float_of_int (instances / 2) in
      let tol = predicted *. (0.08 +. (2. /. window)) in
      if measured > predicted +. tol then
        QCheck.Test.fail_reportf
          "simulated period %.6g exceeds prediction %.6g by more than %.2g"
          measured predicted tol;
      if measured < predicted -. tol then
        QCheck.Test.fail_reportf
          "simulated period %.6g beats prediction %.6g by more than %.2g \
           (prediction is a bound)"
          measured predicted tol;
      true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "par"
    [
      ( "spmc",
        [
          Alcotest.test_case "FIFO, full ring, reuse" `Quick test_spmc_fifo;
          Alcotest.test_case "steal takes the oldest half" `Quick
            test_spmc_steal;
        ] );
      ( "pool",
        [
          Alcotest.test_case "zero tasks" `Quick test_zero_tasks;
          Alcotest.test_case "single worker" `Quick test_single_worker;
          Alcotest.test_case "nested submit" `Quick test_nested_submit;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "stolen raise while owner helps" `Quick
            test_stolen_raise_while_helping;
          Alcotest.test_case "race" `Quick test_race;
          Alcotest.test_case "stealing under contention" `Quick
            test_stealing_under_contention;
          Alcotest.test_case "deque overflow falls back to injector" `Quick
            test_deque_overflow;
          Alcotest.test_case "stats" `Quick test_pool_stats_shape;
        ] );
      ( "incumbent",
        [
          Alcotest.test_case "strict total order tie-break" `Quick
            test_incumbent_tiebreak;
          Alcotest.test_case "B&B equal-optima regression" `Quick
            test_bb_tiebreak_regression;
        ] );
      ( "determinism",
        [ qt portfolio_deterministic; qt bb_deterministic ] );
      ("cross-layer", [ qt sim_matches_prediction ]);
    ]
