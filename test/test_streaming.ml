(* Tests for the application model: graphs, CCR, serialization, DOT. *)

let mk_task ?(peek = 0) ?(w_ppe = 1e-3) ?(w_spe = 2e-3) name =
  Streaming.Task.make ~name ~w_ppe ~w_spe ~peek ()

let diamond () =
  (* a -> b, a -> c, b -> d, c -> d *)
  let tasks = [| mk_task "a"; mk_task "b"; mk_task "c"; mk_task "d" |] in
  Streaming.Graph.of_tasks tasks
    [ (0, 1, 100.); (0, 2, 200.); (1, 3, 300.); (2, 3, 400.) ]

let test_construction () =
  let g = diamond () in
  Alcotest.(check int) "tasks" 4 (Streaming.Graph.n_tasks g);
  Alcotest.(check int) "edges" 4 (Streaming.Graph.n_edges g);
  Alcotest.(check (list int)) "succs of a" [ 1; 2 ] (Streaming.Graph.succs g 0);
  Alcotest.(check (list int)) "preds of d" [ 1; 2 ] (Streaming.Graph.preds g 3);
  Alcotest.(check (list int)) "sources" [ 0 ] (Streaming.Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Streaming.Graph.sinks g);
  Alcotest.(check int) "depth" 3 (Streaming.Graph.depth g);
  Alcotest.(check (float 1e-9)) "data" 1000. (Streaming.Graph.total_data_bytes g);
  Alcotest.(check int) "find" 2 (Streaming.Graph.find_task g "c")

let test_cycle_rejected () =
  let b = Streaming.Graph.builder () in
  let a = Streaming.Graph.add_task b (mk_task "a") in
  let c = Streaming.Graph.add_task b (mk_task "c") in
  Streaming.Graph.add_edge b ~src:a ~dst:c ~data_bytes:1.;
  Streaming.Graph.add_edge b ~src:c ~dst:a ~data_bytes:1.;
  Alcotest.check_raises "cycle"
    (Invalid_argument "Graph.build: the graph contains a cycle") (fun () ->
      ignore (Streaming.Graph.build b))

let test_duplicate_task_name () =
  let b = Streaming.Graph.builder () in
  ignore (Streaming.Graph.add_task b (mk_task "x"));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.add_task: duplicate name \"x\"") (fun () ->
      ignore (Streaming.Graph.add_task b (mk_task "x")))

let test_bad_edges () =
  let b = Streaming.Graph.builder () in
  let a = Streaming.Graph.add_task b (mk_task "a") in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Streaming.Graph.add_edge b ~src:a ~dst:a ~data_bytes:1.);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Graph.add_edge: unknown task id") (fun () ->
      Streaming.Graph.add_edge b ~src:a ~dst:7 ~data_bytes:1.)

let test_task_validation () =
  Alcotest.check_raises "negative cost" (Invalid_argument "Task.make: negative cost")
    (fun () ->
      ignore (Streaming.Task.make ~name:"t" ~w_ppe:(-1.) ~w_spe:1. ()));
  Alcotest.check_raises "negative peek" (Invalid_argument "Task.make: negative peek")
    (fun () ->
      ignore (Streaming.Task.make ~name:"t" ~w_ppe:1. ~w_spe:1. ~peek:(-1) ()))

let test_topological_order () =
  let g = diamond () in
  let order = Streaming.Graph.topological_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i k -> pos.(k) <- i) order;
  Array.iter
    (fun { Streaming.Graph.src; dst; _ } ->
      Alcotest.(check bool) "edge forward" true (pos.(src) < pos.(dst)))
    (Streaming.Graph.edges g)

let test_chain () =
  let g = Streaming.Graph.chain (Array.init 5 (fun i -> mk_task (string_of_int i)))
      ~data_bytes:42. in
  Alcotest.(check int) "edges" 4 (Streaming.Graph.n_edges g);
  Alcotest.(check int) "depth" 5 (Streaming.Graph.depth g)

let test_ccr_scale () =
  let g = diamond () in
  let g' = Streaming.Ccr.scale_to g ~target:2.0 in
  Alcotest.(check (float 1e-9)) "target reached" 2.0 (Streaming.Ccr.compute g');
  (* Work untouched. *)
  Alcotest.(check (float 1e-12)) "work"
    (Streaming.Graph.total_work g Cell.Platform.SPE)
    (Streaming.Graph.total_work g' Cell.Platform.SPE)

let test_ccr_no_data () =
  let g = Streaming.Graph.chain [| mk_task "a"; mk_task "b" |] ~data_bytes:0. in
  Alcotest.(check (float 0.)) "zero ccr" 0. (Streaming.Ccr.compute g);
  Alcotest.(check bool) "cannot rescale" true
    (try
       ignore (Streaming.Ccr.scale_to g ~target:1.);
       false
     with Invalid_argument _ -> true)

let test_serialize_roundtrip () =
  let g = diamond () in
  let s = Streaming.Serialize.to_string g in
  let g' = Streaming.Serialize.of_string s in
  Alcotest.(check int) "tasks" (Streaming.Graph.n_tasks g) (Streaming.Graph.n_tasks g');
  Alcotest.(check int) "edges" (Streaming.Graph.n_edges g) (Streaming.Graph.n_edges g');
  Alcotest.(check string) "stable" s (Streaming.Serialize.to_string g')

let test_serialize_errors () =
  let check_fails src =
    match Streaming.Serialize.of_string src with
    | exception Streaming.Serialize.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" src
  in
  check_fails "task";
  check_fails "task x wppe=1";
  check_fails "task x wppe=a wspe=1";
  check_fails "edge a b data=1";
  check_fails "frob x";
  check_fails "task x wppe=1 wspe=1 frob=2"

let test_serialize_comments () =
  let g =
    Streaming.Serialize.of_string
      "# header\n\ntask a wppe=1 wspe=2 # trailing\ntask b wppe=1 wspe=2\nedge a b data=5\n"
  in
  Alcotest.(check int) "tasks" 2 (Streaming.Graph.n_tasks g);
  Alcotest.(check (float 0.)) "data" 5.
    (Streaming.Graph.edge g 0).Streaming.Graph.data_bytes

let test_dot () =
  let dot = Streaming.Dot.to_string (diamond ()) in
  Alcotest.(check bool) "has digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let count_arrows s =
    List.length
      (List.filter (fun line ->
           let has sub =
             let rec find i =
               i + String.length sub <= String.length line
               && (String.sub line i (String.length sub) = sub || find (i + 1))
             in
             find 0
           in
           has "->")
         (String.split_on_char '\n' s))
  in
  Alcotest.(check int) "edges rendered" 4 (count_arrows dot)

(* Property: random daggen graphs round-trip through the text format. *)
let serialize_roundtrip_random =
  QCheck.Test.make ~count:50 ~name:"serialize roundtrips random graphs"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let shape =
        {
          Daggen.Generator.n = 1 + Support.Rng.int rng 30;
          fat = 0.2 +. Support.Rng.float rng 1.0;
          density = Support.Rng.float rng 1.0;
          regularity = Support.Rng.float rng 1.0;
          jump = 1 + Support.Rng.int rng 3;
        }
      in
      let g =
        Daggen.Generator.generate ~rng ~shape
          ~costs:Daggen.Generator.default_costs
      in
      let s = Streaming.Serialize.to_string g in
      let g' = Streaming.Serialize.of_string s in
      s = Streaming.Serialize.to_string g')

(* Stronger property — parse ∘ print = id structurally, with hostile
   task names mixed in. Pins the escaping bug the canonical-fingerprint
   work uncovered: names containing whitespace, '#', '=' or '%' used to
   be printed raw, corrupting the token stream on re-parse. *)
let graphs_equal a b =
  Streaming.Graph.n_tasks a = Streaming.Graph.n_tasks b
  && Streaming.Graph.n_edges a = Streaming.Graph.n_edges b
  && List.for_all
       (fun k -> Streaming.Graph.task a k = Streaming.Graph.task b k)
       (List.init (Streaming.Graph.n_tasks a) Fun.id)
  && List.for_all
       (fun e -> Streaming.Graph.edge a e = Streaming.Graph.edge b e)
       (List.init (Streaming.Graph.n_edges a) Fun.id)

let hostile_names =
  [|
    "a b"; "x#y"; "p=q"; "we%ird"; "tab\there"; "new\nline"; "%41";
    "  lead"; "trail  "; "#lead"; "100% weird = yes";
  |]

let serialize_parse_print_id =
  QCheck.Test.make ~count:60 ~name:"parse (print g) = g, hostile names included"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let shape =
        {
          Daggen.Generator.n = 1 + Support.Rng.int rng 25;
          fat = 0.2 +. Support.Rng.float rng 1.0;
          density = Support.Rng.float rng 1.0;
          regularity = Support.Rng.float rng 1.0;
          jump = 1 + Support.Rng.int rng 3;
        }
      in
      let g =
        Daggen.Generator.generate ~rng ~shape
          ~costs:Daggen.Generator.default_costs
      in
      (* Rename a random subset of tasks to hostile strings. *)
      let g =
        Streaming.Graph.map_tasks
          (fun k t ->
            if Support.Rng.bool rng then
              {
                t with
                Streaming.Task.name =
                  Printf.sprintf "%s_%d"
                    (Support.Rng.choose rng hostile_names)
                    k;
              }
            else t)
          g
      in
      let g' = Streaming.Serialize.of_string (Streaming.Serialize.to_string g) in
      graphs_equal g g')

let test_hostile_name_roundtrip () =
  let tasks =
    Array.mapi
      (fun i name -> mk_task ~w_ppe:(1e-3 *. float_of_int (i + 1)) name)
      hostile_names
  in
  let edges =
    List.init (Array.length tasks - 1) (fun k -> (k, k + 1, 64. +. float_of_int k))
  in
  let g = Streaming.Graph.of_tasks tasks edges in
  let g' = Streaming.Serialize.of_string (Streaming.Serialize.to_string g) in
  Alcotest.(check bool) "structural round-trip" true (graphs_equal g g');
  Array.iteri
    (fun i name ->
      Alcotest.(check string)
        "name preserved" name
        (Streaming.Graph.task g' i).Streaming.Task.name)
    hostile_names

let test_empty_name_rejected () =
  Alcotest.check_raises "empty name" (Invalid_argument "Task.make: empty name")
    (fun () -> ignore (Streaming.Task.make ~name:"" ~w_ppe:1. ~w_spe:1. ()))

let map_edges_preserves_structure =
  QCheck.Test.make ~count:50 ~name:"map_edges keeps topology"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let shape =
        { Daggen.Generator.n = 1 + Support.Rng.int rng 20; fat = 0.5;
          density = 0.5; regularity = 0.5; jump = 2 }
      in
      let g = Daggen.Generator.generate ~rng ~shape ~costs:Daggen.Generator.default_costs in
      let g' = Streaming.Graph.map_edges (fun _ e -> 2. *. e.Streaming.Graph.data_bytes) g in
      Streaming.Graph.n_edges g = Streaming.Graph.n_edges g'
      && Streaming.Graph.topological_order g = Streaming.Graph.topological_order g'
      && abs_float (Streaming.Graph.total_data_bytes g' -. (2. *. Streaming.Graph.total_data_bytes g)) < 1e-6)

let test_file_roundtrip () =
  let g = diamond () in
  let path = Filename.temp_file "cellstream" ".stream" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Streaming.Serialize.to_file g path;
      let g' = Streaming.Serialize.of_file path in
      Alcotest.(check string) "file roundtrip"
        (Streaming.Serialize.to_string g)
        (Streaming.Serialize.to_string g'))

let test_dot_file () =
  let path = Filename.temp_file "cellstream" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Streaming.Dot.to_file (diamond ()) path;
      let content = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check string) "same as to_string"
        (Streaming.Dot.to_string (diamond ()))
        content)

let test_map_tasks () =
  let g = diamond () in
  let g' =
    Streaming.Graph.map_tasks
      (fun _ t -> { t with Streaming.Task.w_ppe = 2. *. t.Streaming.Task.w_ppe })
      g
  in
  Alcotest.(check (float 1e-12)) "ppe work doubled"
    (2. *. Streaming.Graph.total_work g Cell.Platform.PPE)
    (Streaming.Graph.total_work g' Cell.Platform.PPE);
  Alcotest.(check (float 1e-12)) "spe work untouched"
    (Streaming.Graph.total_work g Cell.Platform.SPE)
    (Streaming.Graph.total_work g' Cell.Platform.SPE)

let test_graph_pp () =
  let rendered = Format.asprintf "%a" Streaming.Graph.pp (diamond ()) in
  Alcotest.(check bool) "mentions counts" true
    (String.length rendered > 0
    && String.split_on_char '4' rendered <> [ rendered ])

(* --- DSL ----------------------------------------------------------------- *)

let dsl_filter ?(out = 128.) name =
  Streaming.Dsl.filter ~name ~w_ppe:1e-3 ~w_spe:2e-3 ~out_bytes:out ()

let test_dsl_pipeline () =
  let g =
    Streaming.Dsl.(build (pipeline [ dsl_filter "a"; dsl_filter "b"; dsl_filter "c" ]))
  in
  Alcotest.(check int) "tasks" 3 (Streaming.Graph.n_tasks g);
  Alcotest.(check int) "edges" 2 (Streaming.Graph.n_edges g);
  Alcotest.(check int) "depth" 3 (Streaming.Graph.depth g)

let test_dsl_split_join () =
  let g =
    Streaming.Dsl.(
      build
        (pipeline
           [
             dsl_filter "src";
             duplicate 4 (dsl_filter ~out:64. "work");
             dsl_filter "join";
           ]))
  in
  (* src + 4 workers + join *)
  Alcotest.(check int) "tasks" 6 (Streaming.Graph.n_tasks g);
  (* src->work x4, work->join x4 *)
  Alcotest.(check int) "edges" 8 (Streaming.Graph.n_edges g);
  let join = Streaming.Graph.find_task g "join" in
  Alcotest.(check int) "join fan-in" 4
    (List.length (Streaming.Graph.preds g join))

let test_dsl_unique_names () =
  let g =
    Streaming.Dsl.(build (pipeline [ dsl_filter "x"; dsl_filter "x"; dsl_filter "x" ]))
  in
  Alcotest.(check int) "three tasks" 3 (Streaming.Graph.n_tasks g);
  (* find_task must locate the renamed instances. *)
  ignore (Streaming.Graph.find_task g "x");
  ignore (Streaming.Graph.find_task g "x_2");
  ignore (Streaming.Graph.find_task g "x_3")

let test_dsl_validation () =
  Alcotest.(check bool) "empty pipeline" true
    (try
       ignore (Streaming.Dsl.pipeline []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate 0" true
    (try
       ignore (Streaming.Dsl.duplicate 0 (dsl_filter "y"));
       false
     with Invalid_argument _ -> true)

let test_dsl_schedulable () =
  (* A DSL-built app flows through the whole stack. *)
  let g =
    Streaming.Dsl.(
      build
        (pipeline
           [
             dsl_filter ~out:2048. "reader";
             duplicate 3 (dsl_filter ~out:1024. "stage");
             dsl_filter ~out:0. "writer";
           ]))
  in
  let platform = Cell.Platform.qs22 ~n_spe:2 () in
  let r = Cellsched.Milp_solver.solve platform g in
  Alcotest.(check bool) "feasible" true
    (Cellsched.Steady_state.feasible platform g r.Cellsched.Milp_solver.mapping)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "streaming"
    [
      ( "graph",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "duplicate name" `Quick test_duplicate_task_name;
          Alcotest.test_case "bad edges" `Quick test_bad_edges;
          Alcotest.test_case "task validation" `Quick test_task_validation;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "chain" `Quick test_chain;
          qt map_edges_preserves_structure;
        ] );
      ( "ccr",
        [
          Alcotest.test_case "scale" `Quick test_ccr_scale;
          Alcotest.test_case "no data" `Quick test_ccr_no_data;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "errors" `Quick test_serialize_errors;
          Alcotest.test_case "comments" `Quick test_serialize_comments;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "hostile names round-trip" `Quick
            test_hostile_name_roundtrip;
          Alcotest.test_case "empty name rejected" `Quick
            test_empty_name_rejected;
          qt serialize_roundtrip_random;
          qt serialize_parse_print_id;
        ] );
      ( "dot",
        [
          Alcotest.test_case "render" `Quick test_dot;
          Alcotest.test_case "to_file" `Quick test_dot_file;
        ] );
      ( "misc",
        [
          Alcotest.test_case "map_tasks" `Quick test_map_tasks;
          Alcotest.test_case "graph pp" `Quick test_graph_pp;
        ] );
      ( "dsl",
        [
          Alcotest.test_case "pipeline" `Quick test_dsl_pipeline;
          Alcotest.test_case "split join" `Quick test_dsl_split_join;
          Alcotest.test_case "unique names" `Quick test_dsl_unique_names;
          Alcotest.test_case "validation" `Quick test_dsl_validation;
          Alcotest.test_case "schedulable end-to-end" `Quick test_dsl_schedulable;
        ] );
    ]
