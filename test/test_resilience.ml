(* Tests for the resilience subsystem: fault plans, fault-injecting
   simulation, and the online remapping controller. *)

module P = Cell.Platform
module G = Streaming.Graph
module SS = Cellsched.Steady_state
module R = Simulator.Runtime
module C = Resilience.Controller

let mk_task ?(peek = 0) ?(w_ppe = 1e-3) ?(w_spe = 1e-3) name =
  Streaming.Task.make ~name ~w_ppe ~w_spe ~peek ()

let no_overhead =
  {
    R.overhead_fraction = 0.;
    dma_setup_time = 0.;
    comm_cpu_time = 0.;
    peek_flush = true;
  }

let controller_options =
  { C.default_options with sim_options = no_overhead }

(* --- fault plans ----------------------------------------------------------- *)

let test_campaign_deterministic () =
  let platform = P.qs22 () in
  let plan seed =
    Fault.random_campaign
      ~rng:(Support.Rng.create seed)
      ~n_fail_stops:2 ~n_slowdowns:3 ~n_degrades:3 platform ~horizon:10.
  in
  Alcotest.(check bool) "same seed, same plan" true (plan 7 = plan 7);
  Alcotest.(check bool) "different seed, different plan" false
    (plan 7 = plan 8);
  Alcotest.(check int) "all faults drawn" 8 (List.length (plan 7))

let test_campaign_never_kills_ppe () =
  let platform = P.qs22 () in
  for seed = 0 to 20 do
    let plan =
      Fault.random_campaign
        ~rng:(Support.Rng.create seed)
        ~n_fail_stops:3 platform ~horizon:5.
    in
    List.iter
      (fun (f : Fault.fault) ->
        if f.Fault.kind = Fault.Fail_stop then
          Alcotest.(check bool) "fail-stop only on SPEs" true
            (P.is_spe platform f.Fault.pe))
      plan
  done

let test_validate_rejects () =
  let platform = P.qs22 () in
  let rejects plan =
    Alcotest.check_raises "rejected" (Invalid_argument "x") (fun () ->
        try Fault.validate platform plan
        with Invalid_argument _ -> raise (Invalid_argument "x"))
  in
  rejects [ Fault.fail_stop ~pe:99 ~at:1. ];
  rejects [ Fault.slowdown ~pe:1 ~factor:0.5 ~from_:0. ~until:1. ];
  rejects [ Fault.slowdown ~pe:1 ~factor:2. ~from_:1. ~until:1. ];
  rejects [ Fault.link_degrade ~pe:1 ~factor:2. ~from_:(-1.) ~until:1. ];
  (* Overlapping same-kind faults on one PE. *)
  rejects
    [
      Fault.slowdown ~pe:1 ~factor:2. ~from_:0. ~until:2.;
      Fault.slowdown ~pe:1 ~factor:3. ~from_:1. ~until:3.;
    ];
  (* Disjoint or different-kind faults are fine. *)
  Fault.validate platform
    [
      Fault.slowdown ~pe:1 ~factor:2. ~from_:0. ~until:1.;
      Fault.slowdown ~pe:1 ~factor:3. ~from_:2. ~until:3.;
      Fault.link_degrade ~pe:1 ~factor:2. ~from_:0. ~until:3.;
    ]

let test_shift_and_mask () =
  let plan =
    [
      Fault.fail_stop ~pe:2 ~at:1.;
      Fault.fail_stop ~pe:3 ~at:5.;
      Fault.slowdown ~pe:4 ~factor:2. ~from_:2. ~until:6.;
    ]
  in
  let shifted = Fault.shift 4. plan in
  (* The fired fail-stop is dropped, the future one moves to t=1, the
     straddling slowdown is clipped to [0, 2). *)
  Alcotest.(check int) "two faults left" 2 (List.length shifted);
  List.iter
    (fun (f : Fault.fault) ->
      match f.Fault.kind with
      | Fault.Fail_stop ->
          Alcotest.(check (float 1e-9)) "shifted onset" 1. f.Fault.start
      | Fault.Slowdown _ ->
          Alcotest.(check (float 1e-9)) "clipped onset" 0. f.Fault.start;
          Alcotest.(check (float 1e-9)) "clipped end" 2. f.Fault.finish
      | _ -> Alcotest.fail "unexpected kind")
    shifted;
  let masked =
    Fault.mask ~alive:(fun pe -> pe <> 3) ~remap:(fun pe -> pe - 1) shifted
  in
  Alcotest.(check int) "dead PE's fault dropped" 1 (List.length masked);
  Alcotest.(check int) "renumbered" 3 (List.hd masked).Fault.pe

(* --- fault-injecting simulation ------------------------------------------- *)

let chain2 () =
  G.of_tasks
    [| mk_task "a"; mk_task "b" |]
    [ (0, 1, 1024.) ]

let test_empty_plan_identical () =
  let g = Daggen.Presets.figure_2b () in
  let platform = P.qs22 ~n_spe:4 () in
  let mapping =
    match
      Cellsched.Heuristics.best_feasible platform g
        (Cellsched.Heuristics.standard_candidates ~with_lp:false platform g)
    with
    | Some (_, m) -> m
    | None -> Cellsched.Heuristics.ppe_only platform g
  in
  let plain = R.run platform g mapping ~instances:500 in
  let faulty = R.run_with_faults ~faults:[] platform g mapping ~instances:500 in
  Alcotest.(check bool) "not stalled" false faulty.R.stalled;
  Alcotest.(check int) "instances" plain.R.instances faulty.R.metrics.R.instances;
  Alcotest.(check (float 0.)) "makespan identical" plain.R.makespan
    faulty.R.metrics.R.makespan;
  Alcotest.(check (float 0.)) "steady identical" plain.R.steady_throughput
    faulty.R.metrics.R.steady_throughput;
  Alcotest.(check int) "transfers identical" plain.R.transfers
    faulty.R.metrics.R.transfers;
  Alcotest.(check (float 0.)) "bytes identical" plain.R.bytes_transferred
    faulty.R.metrics.R.bytes_transferred;
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "completion %d identical" i)
        t
        faulty.R.metrics.R.completion_times.(i))
    plain.R.completion_times;
  Array.iteri
    (fun pe b ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "pe_busy %d identical" pe)
        b faulty.R.metrics.R.pe_busy.(pe))
    plain.R.pe_busy

let test_slowdown_halves_throughput () =
  let g = chain2 () in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let mapping = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let healthy =
    R.run ~options:no_overhead platform g mapping ~instances:2000
  in
  (* Slow the SPE (the bottleneck peer) by 2x for the whole run. *)
  let faults = [ Fault.slowdown ~pe:1 ~factor:2. ~from_:0. ~until:1e9 ] in
  let slow =
    R.run_with_faults ~options:no_overhead ~faults platform g mapping
      ~instances:2000
  in
  Alcotest.(check bool) "completes" false slow.R.stalled;
  let ratio =
    slow.R.metrics.R.steady_throughput /. healthy.R.steady_throughput
  in
  Alcotest.(check bool)
    (Printf.sprintf "throughput halved (ratio %.3f)" ratio)
    true
    (ratio > 0.45 && ratio < 0.55)

let test_degrade_stretches_transfers () =
  (* Make the edge communication-bound so a degraded interface shows. *)
  let g =
    G.of_tasks
      [| mk_task ~w_ppe:1e-6 ~w_spe:1e-6 "a"; mk_task ~w_ppe:1e-6 ~w_spe:1e-6 "b" |]
      [ (0, 1, 64. *. 1024.) ]
  in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let mapping = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let healthy =
    R.run ~options:no_overhead platform g mapping ~instances:1000
  in
  let faults = [ Fault.link_degrade ~pe:1 ~factor:4. ~from_:0. ~until:1e9 ] in
  let slow =
    R.run_with_faults ~options:no_overhead ~faults platform g mapping
      ~instances:1000
  in
  let ratio =
    slow.R.metrics.R.steady_throughput /. healthy.R.steady_throughput
  in
  Alcotest.(check bool)
    (Printf.sprintf "transfer-bound throughput quartered (ratio %.3f)" ratio)
    true
    (ratio > 0.2 && ratio < 0.3)

let test_fail_stop_stalls () =
  let g = chain2 () in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let mapping = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let faults = [ Fault.fail_stop ~pe:1 ~at:0.05 ] in
  let r =
    R.run_with_faults ~options:no_overhead ~faults platform g mapping
      ~instances:2000
  in
  Alcotest.(check bool) "stalled" true r.R.stalled;
  Alcotest.(check bool) "PE 1 dead" false r.R.survivors.(1);
  Alcotest.(check bool) "PPE alive" true r.R.survivors.(0);
  Alcotest.(check bool) "some progress" true (r.R.completed > 0);
  Alcotest.(check bool) "incomplete" true (r.R.completed < 2000);
  Alcotest.(check bool) "stall after onset" true (r.R.stall_time >= 0.05)

let test_fault_on_idle_pe_harmless () =
  let g = chain2 () in
  let platform = P.qs22 ~n_spe:4 () in
  (* Everything on the PPE; kill an unused SPE. *)
  let mapping = Cellsched.Mapping.all_on_ppe platform g in
  let faults = [ Fault.fail_stop ~pe:3 ~at:0.01 ] in
  let r =
    R.run_with_faults ~options:no_overhead ~faults platform g mapping
      ~instances:500
  in
  Alcotest.(check bool) "completes" false r.R.stalled;
  let plain = R.run ~options:no_overhead platform g mapping ~instances:500 in
  Alcotest.(check (float 0.)) "makespan unchanged" plain.R.makespan
    r.R.metrics.R.makespan

let test_trace_fault_spans () =
  let g = chain2 () in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let mapping = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let trace = Simulator.Trace.create () in
  let faults = [ Fault.fail_stop ~pe:1 ~at:0.05 ] in
  ignore
    (R.run_with_faults ~options:no_overhead ~trace ~faults platform g mapping
       ~instances:1000);
  let fault_spans =
    List.filter
      (fun s -> s.Simulator.Trace.kind = `Fault)
      (Simulator.Trace.spans trace)
  in
  Alcotest.(check int) "one fault span" 1 (List.length fault_spans);
  let s = List.hd fault_spans in
  Alcotest.(check int) "on the failed PE" 1 s.Simulator.Trace.pe;
  Alcotest.(check (float 1e-9)) "at the onset" 0.05 s.Simulator.Trace.start;
  let chart = Simulator.Trace.gantt ~width:60 platform trace in
  Alcotest.(check bool) "gantt shows the incident" true
    (String.contains chart 'x')

(* --- recovery controller --------------------------------------------------- *)

let test_controller_no_faults () =
  let g = Daggen.Presets.figure_2b () in
  let platform = P.qs22 ~n_spe:4 () in
  let mapping =
    match
      Cellsched.Heuristics.best_feasible platform g
        (Cellsched.Heuristics.standard_candidates ~with_lp:false platform g)
    with
    | Some (_, m) -> m
    | None -> Cellsched.Heuristics.ppe_only platform g
  in
  let report =
    C.run ~options:controller_options ~faults:[] platform g mapping
      ~instances:800
  in
  Alcotest.(check bool) "recovered" true report.C.recovered;
  Alcotest.(check int) "no incidents" 0 (List.length report.C.incidents);
  Alcotest.(check int) "all done" 800 report.C.completed;
  let plain = R.run ~options:no_overhead platform g mapping ~instances:800 in
  Alcotest.(check (float 0.)) "same makespan as the plain simulator"
    plain.R.makespan report.C.makespan

let spe_with_tasks platform mapping =
  match
    List.find_opt
      (fun pe -> Cellsched.Mapping.tasks_on mapping pe <> [])
      (P.spes platform)
  with
  | Some pe -> pe
  | None -> Alcotest.fail "mapping uses no SPE"

let test_failover_end_to_end () =
  let g = Daggen.Presets.random_graph_1 () in
  let platform = P.qs22 () in
  let mapping =
    match
      Cellsched.Heuristics.best_feasible platform g
        (Cellsched.Heuristics.standard_candidates ~with_lp:true platform g)
    with
    | Some (_, m) -> m
    | None -> Alcotest.fail "no feasible mapping"
  in
  let n = 3000 in
  let victim = spe_with_tasks platform mapping in
  (* Fail mid-stream: a quarter of the way through the expected run. *)
  let period = SS.period platform (SS.loads platform g mapping) in
  let at = float_of_int n *. period /. 4. in
  let faults = [ Fault.fail_stop ~pe:victim ~at ] in
  let report =
    C.run ~options:controller_options ~faults platform g mapping ~instances:n
  in
  Alcotest.(check bool) "recovered" true report.C.recovered;
  Alcotest.(check int) "stream completed" n report.C.completed;
  Alcotest.(check int) "one incident" 1 (List.length report.C.incidents);
  let incident = List.hd report.C.incidents in
  Alcotest.(check bool) "names the victim" true
    (incident.C.failed_pes = [ victim ]);
  Alcotest.(check bool) "ordering" true
    (incident.C.stall_time <= incident.C.detection_time
    && incident.C.detection_time < incident.C.recovery_time);
  Alcotest.(check bool) "tasks migrated" true (incident.C.migrated_tasks > 0);
  (* Acceptance criterion: the measured post-recovery period matches the
     steady-state prediction on the surviving platform within 10%. *)
  let deviation =
    Float.abs (report.C.final_period -. incident.C.predicted_period)
    /. incident.C.predicted_period
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "degraded period %.6fs within 10%% of predicted %.6fs (deviation %.1f%%)"
       report.C.final_period incident.C.predicted_period (100. *. deviation))
    true (deviation < 0.10);
  (* Degraded-mode throughput cannot beat the healthy platform. *)
  Alcotest.(check bool) "degraded >= baseline period" true
    (incident.C.predicted_period >= report.C.baseline_period -. 1e-12);
  (* All completions are monotone across the incident. *)
  let mono = ref true in
  for i = 1 to n - 1 do
    if report.C.completion_times.(i) < report.C.completion_times.(i - 1) then
      mono := false
  done;
  Alcotest.(check bool) "global completion times monotone" true !mono

let test_double_failure () =
  let g = Daggen.Presets.random_graph_1 () in
  let platform = P.qs22 ~n_spe:4 () in
  let mapping =
    match
      Cellsched.Heuristics.best_feasible platform g
        (Cellsched.Heuristics.standard_candidates ~with_lp:false platform g)
    with
    | Some (_, m) -> m
    | None -> Alcotest.fail "no feasible mapping"
  in
  let n = 2000 in
  let period = SS.period platform (SS.loads platform g mapping) in
  let faults =
    [
      Fault.fail_stop ~pe:1 ~at:(float_of_int n *. period /. 5.);
      Fault.fail_stop ~pe:2 ~at:(float_of_int n *. period);
    ]
  in
  let report =
    C.run ~options:controller_options ~faults platform g mapping ~instances:n
  in
  Alcotest.(check bool) "recovered from both" true report.C.recovered;
  Alcotest.(check int) "stream completed" n report.C.completed;
  (* The second fail-stop lands long after the first recovery, so each
     failure gets its own detect/mask/remap incident. *)
  Alcotest.(check int) "one incident per failure" 2
    (List.length report.C.incidents);
  List.iter
    (fun (i : C.incident) ->
      Alcotest.(check int) "single victim per incident" 1
        (List.length i.C.failed_pes))
    report.C.incidents

let () =
  Alcotest.run "resilience"
    [
      ( "fault-plans",
        [
          Alcotest.test_case "campaign determinism" `Quick
            test_campaign_deterministic;
          Alcotest.test_case "campaign spares PPEs" `Quick
            test_campaign_never_kills_ppe;
          Alcotest.test_case "validation" `Quick test_validate_rejects;
          Alcotest.test_case "shift and mask" `Quick test_shift_and_mask;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "empty plan is byte-identical" `Quick
            test_empty_plan_identical;
          Alcotest.test_case "slowdown halves throughput" `Quick
            test_slowdown_halves_throughput;
          Alcotest.test_case "degraded link stretches transfers" `Quick
            test_degrade_stretches_transfers;
          Alcotest.test_case "fail-stop stalls the stream" `Quick
            test_fail_stop_stalls;
          Alcotest.test_case "fault on an idle PE is harmless" `Quick
            test_fault_on_idle_pe_harmless;
          Alcotest.test_case "trace records fault spans" `Quick
            test_trace_fault_spans;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "no faults, no incidents" `Quick
            test_controller_no_faults;
          Alcotest.test_case "SPE fail-stop end to end" `Quick
            test_failover_end_to_end;
          Alcotest.test_case "double failure" `Quick test_double_failure;
        ] );
    ]
