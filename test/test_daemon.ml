(* Tests for the scheduling daemon (lib/daemon): protocol round-trips
   and hostile-line handling, the bounded priority admission queue,
   engine-level request lifecycles (reject at the bound, hits bypassing
   admission, deadline-expired partials validated feasible), graceful-
   shutdown cache flushes with bitwise warm restarts, pool-vs-inline
   differential runs, and the two serve loops end to end (pipe fds and
   a forked Unix-domain-socket server, including SIGTERM). *)

module P = Cell.Platform
module G = Streaming.Graph
module M = Cellsched.Mapping
module Eval = Cellsched.Eval
module Req = Service.Request
module Cache = Service.Cache
module Batch = Service.Batch
module Proto = Daemon.Protocol
module Admission = Daemon.Admission
module Server = Daemon.Server

let random_graph rng n =
  Daggen.Generator.generate ~rng
    ~shape:{ Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.5; jump = 2 }
    ~costs:Daggen.Generator.default_costs

(* Named graphs resolved in memory: daemon tests never touch graph
   files. Unknown names raise Sys_error exactly like a missing file. *)
let graph_table =
  lazy
    (let rng = Support.Rng.create 11 in
     [ ("gA", random_graph rng 10); ("gB", random_graph rng 14);
       ("gC", random_graph rng 8) ])

let load_graph name =
  match List.assoc_opt name (Lazy.force graph_table) with
  | Some g -> g
  | None -> raise (Sys_error (name ^ ": no such graph"))

let graph name = load_graph name

(* A fast deterministic strategy for solver-touching tests. *)
let bb_attrs = "strategy=bb max-nodes=200"
let bb_strategy = Req.Bb { rel_gap = 0.05; max_nodes = 200 }

let request ?(label = "gA") ?(spes = 6) ?deadline_ms ?(prio = 0) () =
  {
    Req.label;
    platform = P.qs22 ~n_spe:spes ();
    graph = graph label;
    strategy = bb_strategy;
    deadline_ms;
    prio;
  }

let parse line =
  Proto.parse ~load_graph ~default_spes:8 ~default_strategy:bb_strategy 1 line

let config ?(bound = 8) ?(concurrency = 1) ?cache_path ?metrics_file
    ?(flush_period = 0.) () =
  {
    Server.default_config with
    Server.bound;
    concurrency;
    cache_path;
    metrics_file;
    flush_period;
    default_strategy = bb_strategy;
  }

type harness = {
  server : Server.t;
  out : Buffer.t;
  replies : Server.reply list ref;  (** Reverse arrival order. *)
}

let harness ?bound ?concurrency ?cache_path ?metrics_file () =
  let replies = ref [] in
  let server =
    Server.create
      ~on_reply:(fun r -> replies := r :: !replies)
      ~load_graph
      (config ?bound ?concurrency ?cache_path ?metrics_file ())
  in
  { server; out = Buffer.create 256; replies }

let feed h line = Server.handle_line h.server ~out:(Buffer.add_string h.out) line
let output h = Buffer.contents h.out

let reply_of h id =
  match List.find_opt (fun (r : Server.reply) -> r.Server.id = id) !(h.replies) with
  | Some r -> r
  | None -> Alcotest.failf "no reply for id %s" id

let with_metrics f =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was) f

let contains sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Ask the server for the span tree of [id] and parse the flat body into
   (path, rest-of-line) pairs, checking the BEGIN/END framing. *)
let trace_spans h id =
  Buffer.clear h.out;
  feed h (Printf.sprintf "TRACE %s" id);
  let body = output h in
  Alcotest.(check bool)
    (Printf.sprintf "trace %s framed" id)
    true
    (String.starts_with ~prefix:(Printf.sprintf "BEGIN trace %s\n" id) body
    && String.ends_with ~suffix:(Printf.sprintf "END trace %s\n" id) body);
  String.split_on_char '\n' body
  |> List.filter_map (fun line ->
         if String.starts_with ~prefix:"span " line then
           let rest = String.sub line 5 (String.length line - 5) in
           match String.index_opt rest ' ' with
           | Some i ->
               Some
                 ( String.sub rest 0 i,
                   String.sub rest i (String.length rest - i) )
           | None -> Some (rest, "")
         else None)

let check_well_parented spans =
  let paths = List.map fst spans in
  List.iter
    (fun p ->
      match String.rindex_opt p '/' with
      | Some 0 | None -> ()  (* a root like "/request" *)
      | Some i ->
          let parent = String.sub p 0 i in
          if not (List.mem parent paths) then
            Alcotest.failf "span %s has no parent %s in the trace" p parent)
    paths

(* ====================================================================== *)
(* Protocol: round-trips                                                  *)
(* ====================================================================== *)

let strategy_equal a b =
  match (a, b) with
  | ( Req.Portfolio { seed = s1; restarts = r1 },
      Req.Portfolio { seed = s2; restarts = r2 } ) -> s1 = s2 && r1 = r2
  | ( Req.Bb { rel_gap = g1; max_nodes = n1 },
      Req.Bb { rel_gap = g2; max_nodes = n2 } ) ->
      n1 = n2 && Int64.bits_of_float g1 = Int64.bits_of_float g2
  | _ -> false

let request_roundtrip =
  QCheck.Test.make ~count:200 ~name:"render_request -> parse is the identity"
    QCheck.(
      quad (int_range 0 8)
        (option (int_range 1 1_000_000))
        (pair bool (int_range (-3) 3))
        (option (int_range 1 5)))
    (fun (spes, deadline_us, (portfolio, prio), id_num) ->
      let label = [| "gA"; "gB"; "gC" |].(spes mod 3) in
      let strategy =
        if portfolio then Req.Portfolio { seed = 42 + spes; restarts = 2 + abs prio }
        else Req.Bb { rel_gap = 0.01 *. float_of_int (spes + 1); max_nodes = 500 }
      in
      let r =
        {
          Req.label;
          platform = P.qs22 ~n_spe:spes ();
          graph = graph label;
          strategy;
          deadline_ms = Option.map (fun us -> float_of_int us /. 1000.) deadline_us;
          prio;
        }
      in
      let id = Option.map (Printf.sprintf "req-%d") id_num in
      match parse (Proto.render_request ?id r) with
      | Proto.Command (Proto.Submit { id = id'; request }) ->
          id' = id && request.Req.label = r.Req.label
          && request.Req.platform = r.Req.platform
          && strategy_equal request.Req.strategy r.Req.strategy
          && request.Req.deadline_ms = r.Req.deadline_ms
          && request.Req.prio = r.Req.prio
      | _ -> QCheck.Test.fail_report "did not parse back to a request")

let test_parse_verbs () =
  let command = function
    | Proto.Command c -> c
    | _ -> Alcotest.fail "expected a command"
  in
  Alcotest.(check bool) "PING" true (command (parse "PING") = Proto.Ping);
  Alcotest.(check bool) "padded METRICS" true
    (command (parse "  METRICS  ") = Proto.Metrics);
  Alcotest.(check bool) "QUIT with CR" true
    (command (parse "QUIT\r") = Proto.Quit);
  Alcotest.(check bool) "blank" true (parse "" = Proto.Nothing);
  Alcotest.(check bool) "comment" true (parse "  # hello" = Proto.Nothing);
  (match parse "QUIT now" with
  | Proto.Malformed _ -> ()
  | _ -> Alcotest.fail "verb with arguments must be malformed");
  (* Verbs are case-sensitive: lowercase is a graph name. *)
  match parse "ping" with
  | Proto.Malformed _ -> ()
  | _ -> Alcotest.fail "lowercase ping should fail as a missing graph"

let test_parse_trace () =
  (match parse "TRACE r1" with
  | Proto.Command (Proto.Trace "r1") -> ()
  | _ -> Alcotest.fail "TRACE r1 must parse");
  (match parse "  TRACE job.7:a-b \r" with
  | Proto.Command (Proto.Trace "job.7:a-b") -> ()
  | _ -> Alcotest.fail "padded TRACE with a token id must parse");
  let malformed line =
    match parse line with
    | Proto.Malformed _ -> ()
    | _ -> Alcotest.failf "%S must be malformed" line
  in
  malformed "TRACE";
  malformed "TRACE a b";
  malformed "TRACE a/b";
  malformed (Printf.sprintf "TRACE %s" (String.make 65 'x'));
  (* Lowercase is a graph name, like the other verbs. *)
  malformed "trace r1";
  Alcotest.(check string) "trace framing" "BEGIN trace t\nbody\nEND trace t\n"
    (Proto.render_trace ~id:"t" "body\n")

let test_parse_hostile () =
  let malformed ?id line =
    match parse line with
    | Proto.Malformed m ->
        Alcotest.(check (option string))
          (Printf.sprintf "id echoed for %S" line)
          id m.id
    | Proto.Nothing -> Alcotest.failf "%S parsed as blank" line
    | Proto.Command _ -> Alcotest.failf "%S parsed as a command" line
  in
  malformed "gA spes=99";
  malformed "gA spes=";
  malformed "gA spes=six";
  malformed "gA strategy=magic";
  malformed "gA deadline=0";
  malformed "gA deadline=-3";
  malformed "gA deadline=nan";
  malformed "gA deadline=inf";
  malformed "gA prio=2.5";
  malformed "nosuch spes=4";
  malformed "gA seed=1";  (* portfolio-only attr under a bb default *)
  malformed ~id:"x1" "id=x1";  (* id without a request *)
  malformed ~id:"x1" "gA id=x1 id=x2";
  malformed ~id:"x1" "gA id=x1 spes=";
  malformed "gA id=";
  malformed "gA id=a/b";
  malformed (Printf.sprintf "gA id=%s" (String.make 65 'x'));
  malformed "gA stray";
  malformed "\xff\xfe garbage";
  (* Truncated frames must never crash the parser either. *)
  List.iter
    (fun line ->
      match parse line with
      | Proto.Nothing | Proto.Malformed _ -> ()
      | Proto.Command (Proto.Submit _) -> ()
      | Proto.Command _ -> Alcotest.failf "%S became a verb" line)
    [ "g"; "gA spe"; "gA spes=4 strat"; "METRIC"; "QUI" ]

let test_render_error_flattens () =
  Alcotest.(check string)
    "newlines flattened" "ERROR x a b c\n"
    (Proto.render_error ~id:"x" "a\nb\rc")

let test_reply_framing () =
  let r = request () in
  let cache = Cache.create () in
  let response =
    match Batch.run ~cache [ r ] with [ x ] -> x | _ -> assert false
  in
  Alcotest.(check string)
    "ok frame" ("BEGIN j7 ok\n" ^ Batch.render response ^ "END j7\n")
    (Proto.render_reply ~id:"j7" ~partial:false response);
  Alcotest.(check string)
    "partial frame" ("BEGIN j7 partial\n" ^ Batch.render response ^ "END j7\n")
    (Proto.render_reply ~id:"j7" ~partial:true response);
  Alcotest.(check string) "reject frame" "REJECT j7 overload\n"
    (Proto.render_reject ~id:"j7")

(* ====================================================================== *)
(* Admission queue                                                        *)
(* ====================================================================== *)

let test_admission_bound () =
  let q = Admission.create ~bound:3 in
  Alcotest.(check bool) "1" true (Admission.admit q ~prio:0 "a");
  Alcotest.(check bool) "2" true (Admission.admit q ~prio:0 "b");
  Alcotest.(check bool) "3" true (Admission.admit q ~prio:0 "c");
  Alcotest.(check bool) "over" false (Admission.admit q ~prio:9 "d");
  (* Dispatching does not free capacity: in-flight still counts. *)
  Alcotest.(check (option string)) "pop" (Some "a") (Admission.next q);
  Alcotest.(check int) "load" 3 (Admission.load q);
  Alcotest.(check bool) "still full" false (Admission.admit q ~prio:0 "d");
  Admission.finish q;
  Alcotest.(check bool) "freed" true (Admission.admit q ~prio:0 "d")

let test_admission_priority () =
  let q = Admission.create ~bound:8 in
  List.iter
    (fun (prio, name) -> assert (Admission.admit q ~prio name))
    [ (0, "a"); (5, "b"); (5, "c"); (1, "d"); (-2, "e") ];
  let order = List.init 5 (fun _ -> Option.get (Admission.next q)) in
  Alcotest.(check (list string))
    "priority order, FIFO within a level" [ "b"; "c"; "d"; "a"; "e" ] order;
  Alcotest.(check (option string)) "drained" None (Admission.next q)

(* Model-based property: against a naive reference (a plain list of
   (prio, seq) pairs), the queue's admit/next/finish must agree on
   every step of a random trace — acceptance exactly while
   pending + inflight < bound, pops exactly the (-prio, seq)
   lexicographic minimum, load always the model's. *)
let admission_lexicographic =
  QCheck.Test.make ~count:1000
    ~name:"admission: pops are (-prio, seq) lexicographic (random traces)"
    QCheck.(
      pair (int_range 1 5) (list_of_size Gen.(int_range 5 40) (int_range 0 9)))
    (fun (bound, ops) ->
      let q = Admission.create ~bound in
      let pending = ref [] in
      let inflight = ref 0 in
      let seq = ref 0 in
      let ok = ref true in
      let expect () =
        match !pending with
        | [] -> None
        | x :: rest ->
            Some
              (List.fold_left
                 (fun (bp, bs) (p, s) ->
                   if p > bp || (p = bp && s < bs) then (p, s) else (bp, bs))
                 x rest)
      in
      List.iter
        (fun op ->
          (if op <= 5 then (
             (* enqueue, prios -2..3 so levels collide and FIFO shows *)
             let prio = op - 2 in
             let accepted = Admission.admit q ~prio !seq in
             let should = List.length !pending + !inflight < bound in
             if accepted <> should then ok := false;
             if accepted then pending := (prio, !seq) :: !pending;
             incr seq)
           else if op <= 7 then
             match (Admission.next q, expect ()) with
             | None, None -> ()
             | Some v, Some ((_, s) as item) ->
                 if v <> s then ok := false;
                 pending := List.filter (fun it -> it <> item) !pending;
                 incr inflight
             | Some _, None | None, Some _ -> ok := false
           else if !inflight = 0 then
             match Admission.finish q with
             | exception Invalid_argument _ -> ()
             | () -> ok := false
           else (
             Admission.finish q;
             decr inflight));
          if Admission.load q <> List.length !pending + !inflight then
            ok := false)
        ops;
      !ok)

let test_admission_invalid () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Admission.create: non-positive bound")
    (fun () -> ignore (Admission.create ~bound:0));
  let q = Admission.create ~bound:1 in
  Alcotest.check_raises "finish on empty"
    (Invalid_argument "Admission.finish: nothing in flight") (fun () ->
      Admission.finish q)

(* ====================================================================== *)
(* Server engine                                                          *)
(* ====================================================================== *)

let submit h ?(attrs = bb_attrs) ~id label =
  feed h (Printf.sprintf "%s %s id=%s" label attrs id)

let test_reject_at_bound () =
  let h = harness ~bound:2 () in
  (* Three distinct misses before any dispatch: the third must be
     refused immediately and explicitly. *)
  submit h ~id:"r1" "gA";
  submit h ~id:"r2" "gB";
  submit h ~id:"r3" "gC";
  Alcotest.(check bool) "reject on the wire" true
    (String.ends_with ~suffix:"REJECT r3 overload\n" (output h));
  Alcotest.(check bool) "reject observed" true
    ((reply_of h "r3").Server.status = `Rejected);
  Server.drain h.server;
  let s = Server.stats h.server in
  Alcotest.(check int) "received" 3 s.Server.received;
  Alcotest.(check int) "accepted" 2 s.Server.accepted;
  Alcotest.(check int) "rejected" 1 s.Server.rejected;
  Alcotest.(check int) "every request replied" 3 s.Server.replies;
  Server.finish h.server

let test_hits_bypass_admission () =
  let h = harness ~bound:2 () in
  submit h ~id:"w" "gA";
  Server.drain h.server;
  (* Queue full of misses... *)
  submit h ~id:"m1" "gB";
  submit h ~id:"m2" "gC";
  (* ...yet the known request is answered inline, not rejected. *)
  Buffer.clear h.out;
  submit h ~id:"h1" "gA";
  Alcotest.(check bool) "hit served under overload" true
    (String.starts_with ~prefix:"BEGIN h1 ok\n" (output h));
  Alcotest.(check bool) "hit observed" true
    ((reply_of h "h1").Server.status = `Hit);
  (* And one more distinct miss is still refused. *)
  Buffer.clear h.out;
  submit h ~id:"m3" "gB" ~attrs:("spes=4 " ^ bb_attrs);
  Alcotest.(check bool) "distinct miss rejected" true
    (String.ends_with ~suffix:"REJECT m3 overload\n" (output h));
  Server.drain h.server;
  let s = Server.stats h.server in
  Alcotest.(check int) "hits" 1 s.Server.hits;
  Alcotest.(check int) "rejected" 1 s.Server.rejected;
  Server.finish h.server

let test_duplicate_becomes_hit_at_dispatch () =
  let h = harness () in
  (* Two identical misses queued in the same burst: the second must be
     answered from the cache entry the first one writes, not re-solved. *)
  submit h ~id:"d1" "gA";
  submit h ~id:"d2" "gA";
  Server.drain h.server;
  let s = Server.stats h.server in
  Alcotest.(check int) "one solve" 1 s.Server.solved;
  Alcotest.(check int) "one dispatch-time hit" 1 s.Server.hits;
  let b1 = Batch.render (Option.get (reply_of h "d1").Server.response)
  and b2 = Batch.render (Option.get (reply_of h "d2").Server.response) in
  let strip s =
    (* The source line differs (solver vs cache) by design. *)
    String.concat "\n"
      (List.filter
         (fun l -> not (String.starts_with ~prefix:"source:" l))
         (String.split_on_char '\n' s))
  in
  Alcotest.(check string) "same mapping bitwise" (strip b1) (strip b2);
  Server.finish h.server

let test_deadline_partial_feasible () =
  let h = harness () in
  (* A 1 us budget is always expired by dispatch time: the solver must
     cancel on its first check and return its seeded incumbent. *)
  feed h (Printf.sprintf "gB spes=6 %s deadline=0.001 id=p1" bb_attrs);
  Server.drain h.server;
  let reply = reply_of h "p1" in
  Alcotest.(check bool) "status partial" true (reply.Server.status = `Partial);
  Alcotest.(check bool) "framed partial" true
    (String.starts_with ~prefix:"BEGIN p1 partial\n" (output h));
  let response = Option.get reply.Server.response in
  Alcotest.(check bool) "feasible" true response.Batch.feasible;
  (* Validate the partial mapping end to end with the engine. *)
  let platform = P.qs22 ~n_spe:6 () in
  let ev =
    Eval.create platform (graph "gB")
      (M.make platform (graph "gB") response.Batch.assignment)
  in
  Alcotest.(check bool) "no violations" true (Eval.feasible ev);
  Alcotest.(check bool) "finite period" true (Float.is_finite (Eval.period ev));
  (* Timing-dependent results must never enter the deterministic cache. *)
  Alcotest.(check (option reject)) "not cached" None
    (Option.map ignore
       (Service.Shard.find (Server.shard h.server) response.Batch.fingerprint));
  let s = Server.stats h.server in
  Alcotest.(check int) "counted partial" 1 s.Server.partials;
  Alcotest.(check int) "not counted solved" 0 s.Server.solved;
  Server.finish h.server

let temp_file suffix =
  let path = Filename.temp_file "cellsched_daemon" suffix in
  Sys.remove path;
  path

let cleanup paths =
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths

let test_shutdown_flush_warm_restart () =
  let cache_path = temp_file ".json" in
  Fun.protect ~finally:(fun () -> cleanup [ cache_path; Cache.temp_path cache_path ])
    (fun () ->
      let h = harness ~cache_path () in
      submit h ~id:"a" "gA" ~attrs:("spes=6 " ^ bb_attrs);
      Server.drain h.server;
      let first = Option.get (reply_of h "a").Server.response in
      Alcotest.(check bool) "no flush yet (period 0)" false
        (Sys.file_exists cache_path);
      Server.shutdown h.server;
      Alcotest.(check bool) "flushed on shutdown" true
        (Sys.file_exists cache_path);
      (* A restarted daemon answers the same request from the warm
         cache, and the reply body is bitwise what batch would print. *)
      let h2 = harness ~cache_path () in
      Buffer.clear h2.out;
      submit h2 ~id:"a" "gA" ~attrs:("spes=6 " ^ bb_attrs);
      Alcotest.(check bool) "warm hit" true
        ((reply_of h2 "a").Server.status = `Hit);
      let batch_cache = Cache.load_file cache_path in
      let batch_hit =
        match Batch.run ~cache:batch_cache [ request () ] with
        | [ r ] -> r
        | _ -> assert false
      in
      Alcotest.(check bool) "batch sees a hit" true
        (batch_hit.Batch.source = Batch.Hit);
      Alcotest.(check string) "daemon reply = BEGIN + batch render + END"
        ("BEGIN a ok\n" ^ Batch.render batch_hit ^ "END a\n")
        (output h2);
      let hit = Option.get (reply_of h2 "a").Server.response in
      Alcotest.(check bool) "period bitwise across restart" true
        (Int64.bits_of_float first.Batch.period
        = Int64.bits_of_float hit.Batch.period);
      Alcotest.(check bool) "assignment equal across restart" true
        (first.Batch.assignment = hit.Batch.assignment);
      Server.finish h2.server)

let test_sharded_transcript_bitwise () =
  (* The same zipfian stream through an unsharded and a 4-shard server:
     whole reply transcripts must be byte-identical. Routing is a pure
     function of the fingerprint and the engine is single-threaded, so
     partitioning the cache may never change a single reply byte. *)
  let stream =
    Service.Workload.lines ~ids:true
      (Service.Workload.generate
         {
           Service.Workload.seed = 4242;
           requests = 40;
           skew = 1.1;
           graphs = List.map (fun n -> (n, graph n)) [ "gA"; "gB"; "gC" ];
           spes = [ 4; 6 ];
           strategies = [ bb_strategy ];
         })
  in
  let run shards =
    let statuses = ref [] in
    let server =
      Server.create
        ~on_reply:(fun (r : Server.reply) -> statuses := r.Server.status :: !statuses)
        ~load_graph
        { (config ~bound:64 ()) with Server.cache_shards = shards }
    in
    let out = Buffer.create 4096 in
    List.iter
      (fun line -> Server.handle_line server ~out:(Buffer.add_string out) line)
      stream;
    Server.drain server;
    Alcotest.(check int)
      (Printf.sprintf "shards=%d: every request replied" shards)
      40
      (List.length !statuses);
    if List.mem `Rejected !statuses then
      Alcotest.failf "shards=%d: rejection under an ample bound" shards;
    Buffer.contents out
  in
  Alcotest.(check string) "transcript bitwise at shards 1 vs 4" (run 1) (run 4)

let test_verbs_and_metrics () =
  with_metrics (fun () ->
      let metrics_file = temp_file ".prom" in
      Fun.protect ~finally:(fun () -> cleanup [ metrics_file ])
        (fun () ->
          let h = harness ~metrics_file () in
          feed h "PING";
          Alcotest.(check string) "pong" "PONG\n" (output h);
          Buffer.clear h.out;
          submit h ~id:"m" "gC";
          Server.drain h.server;
          Buffer.clear h.out;
          feed h "METRICS";
          let body = output h in
          Alcotest.(check bool) "framed" true
            (String.starts_with ~prefix:"BEGIN metrics\n" body
            && String.ends_with ~suffix:"END metrics\n" body);
          let contains sub s =
            let n = String.length s and m = String.length sub in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            go 0
          in
          List.iter
            (fun family ->
              Alcotest.(check bool) (family ^ " exported") true
                (contains family body))
            [
              "daemon_requests_total"; "daemon_accepted_total";
              "daemon_solved_total"; "daemon_inflight"; "daemon_reply_seconds";
            ];
          Buffer.clear h.out;
          feed h "QUIT";
          Alcotest.(check string) "bye" "BYE\n" (output h);
          Alcotest.(check bool) "quit requests shutdown" true
            (Server.shutdown_requested h.server);
          Server.shutdown h.server;
          Alcotest.(check bool) "metrics file written" true
            (Sys.file_exists metrics_file);
          let text = In_channel.with_open_bin metrics_file In_channel.input_all in
          Alcotest.(check bool) "metrics file has daemon families" true
            (contains "daemon_accepted_total" text)))

let test_trace_verb () =
  let h = harness () in
  submit h ~id:"t1" "gA";
  Server.drain h.server;
  (* A solved request's tree covers every serving stage, parents first. *)
  let spans = trace_spans h "t1" in
  check_well_parented spans;
  Alcotest.(check bool) "non-trivial tree" true (List.length spans >= 4);
  Alcotest.(check bool) "root span" true (List.mem_assoc "/request" spans);
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " stage present") true
        (List.mem_assoc ("/request/" ^ stage) spans))
    [ "queue"; "solve"; "reply" ];
  Alcotest.(check bool) "cache probe present" true
    (List.mem_assoc "/request/cache" spans
    || List.mem_assoc "/request/cache@dispatch" spans);
  let root = List.assoc "/request" spans in
  Alcotest.(check bool) "root status" true (contains "status=solved" root);
  Alcotest.(check bool) "root slo" true (contains "slo_met=true" root);
  List.iter
    (fun (path, rest) ->
      Alcotest.(check bool) (path ^ " has a duration") true
        (contains "dur_ms=" rest))
    spans;
  (* A hit's tree is just probe + reply under the root, marked as a hit. *)
  submit h ~id:"t2" "gA";
  let spans2 = trace_spans h "t2" in
  check_well_parented spans2;
  Alcotest.(check bool) "hit cache probe" true
    (List.mem_assoc "/request/cache" spans2);
  Alcotest.(check bool) "hit has no solve stage" false
    (List.mem_assoc "/request/solve" spans2);
  Alcotest.(check bool) "hit status" true
    (contains "status=hit" (List.assoc "/request" spans2));
  (* Unknown and evicted ids get a plain ERROR, not a frame. *)
  Buffer.clear h.out;
  feed h "TRACE nosuch";
  Alcotest.(check string) "unknown id"
    "ERROR nosuch unknown or evicted trace id\n" (output h);
  Server.finish h.server

let test_trace_deadline () =
  let h = harness () in
  (* The 1 us budget expires before dispatch: the trace must say which
     stage ate it — the solve span carries the deadline_hit marker. *)
  feed h (Printf.sprintf "gB spes=6 %s deadline=0.001 id=p9" bb_attrs);
  Server.drain h.server;
  let spans = trace_spans h "p9" in
  check_well_parented spans;
  let root = List.assoc "/request" spans in
  Alcotest.(check bool) "partial status on the root" true
    (contains "status=partial" root);
  Alcotest.(check bool) "slo missed on the root" true
    (contains "slo_met=false" root);
  let solve = List.assoc "/request/solve" spans in
  Alcotest.(check bool) "deadline hit on the solve stage" true
    (contains "deadline_hit=true" solve);
  Alcotest.(check bool) "solve marked partial" true
    (contains "partial=true" solve);
  Server.finish h.server

let test_slo_metrics () =
  with_metrics (fun () ->
      (* Zero the process-wide registry so the per-band counts below are
         exact; handles stay registered (reset keeps them live). *)
      Obs.Metrics.reset Obs.Metrics.default;
      let h = harness () in
      feed h (Printf.sprintf "gA spes=6 %s deadline=60000 prio=2 id=s1" bb_attrs);
      feed h (Printf.sprintf "gB spes=6 %s deadline=0.001 prio=-1 id=s2" bb_attrs);
      submit h ~id:"s3" "gC";  (* no deadline counts as met, normal band *)
      Server.drain h.server;
      Buffer.clear h.out;
      feed h "METRICS";
      let body = output h in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (sub ^ " present") true (contains sub body))
        [
          "daemon_slo_met_total{band=\"high\"} 1";
          "daemon_slo_met_total{band=\"normal\"} 1";
          "daemon_slo_missed_total{band=\"low\"} 1";
          "daemon_slo_missed_total{band=\"high\"} 0";
          "daemon_deadline_slack_ms_bucket";
          "daemon_stage_seconds_bucket{stage=\"solve\"";
          "daemon_stage_seconds_bucket{stage=\"queue\"";
          "daemon_stage_seconds_bucket{stage=\"reply\"";
        ];
      (* Slack observed only for the two finite deadlines. *)
      Alcotest.(check bool) "slack count is 2" true
        (contains "daemon_deadline_slack_ms_count 2" body);
      Server.finish h.server)

let test_pool_matches_inline () =
  let ids = [ "x1"; "x2"; "x3"; "x4" ] in
  let labels = [ "gA"; "gB"; "gC"; "gB" ] in
  let spes = [ 4; 5; 6; 7 ] in
  let run concurrency =
    let h = harness ~concurrency ~bound:8 () in
    List.iteri
      (fun i id ->
        feed h
          (Printf.sprintf "%s spes=%d %s id=%s" (List.nth labels i)
             (List.nth spes i) bb_attrs id))
      ids;
    Server.drain h.server;
    Server.finish h.server;
    List.map
      (fun id -> (id, Batch.render (Option.get (reply_of h id).Server.response)))
      ids
  in
  let inline = run 1 and pooled = run 2 in
  List.iter2
    (fun (id, a) (_, b) ->
      Alcotest.(check string) (id ^ " bitwise equal across pool sizes") a b)
    inline pooled

(* ====================================================================== *)
(* Serve loops                                                            *)
(* ====================================================================== *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let count_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else go (i + 1) (if String.sub s i m = sub then acc + 1 else acc)
  in
  go 0 0

let test_serve_pipe () =
  with_metrics (fun () ->
      let input_path = temp_file ".in" and output_path = temp_file ".out" in
      Fun.protect ~finally:(fun () -> cleanup [ input_path; output_path ])
        (fun () ->
          let lines =
            [
              "PING";
              Printf.sprintf "gA spes=5 %s id=e1" bb_attrs;
              Printf.sprintf "gA spes=5 %s id=e2" bb_attrs;  (* dup -> hit *)
              "broken line=";
              Printf.sprintf "gC spes=4 %s id=e3" bb_attrs;
            ]
          in
          Out_channel.with_open_bin input_path (fun oc ->
              List.iter (fun l -> output_string oc (l ^ "\n")) lines);
          let input = Unix.openfile input_path [ Unix.O_RDONLY ] 0 in
          let output =
            Unix.openfile output_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o600
          in
          let t =
            Fun.protect
              ~finally:(fun () -> Unix.close input; Unix.close output)
              (fun () ->
                Server.serve_fd ~load_graph (config ~bound:8 ()) ~input ~output)
          in
          let s = Server.stats t in
          Alcotest.(check int) "requests" 4 s.Server.received;
          Alcotest.(check int) "replies" 4 s.Server.replies;
          Alcotest.(check int) "hit" 1 s.Server.hits;
          Alcotest.(check int) "solved" 2 s.Server.solved;
          Alcotest.(check int) "error" 1 s.Server.errors;
          let out = read_file output_path in
          Alcotest.(check bool) "pong first" true
            (String.starts_with ~prefix:"PONG\n" out);
          Alcotest.(check int) "framed replies" 3 (count_sub "BEGIN e" out);
          Alcotest.(check int) "error reply" 1 (count_sub "ERROR " out)))

(* Drive a forked socket server: connect, run [dialogue], then stop the
   child with [stop] (QUIT or a signal) and return (captured bytes,
   child exit status). The child runs concurrency=1, so no domains are
   alive at fork time in that process. *)
let with_socket_server ?cache_path ~stop dialogue =
  let dir = temp_file ".d" in
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "daemon.sock" in
  let was = Obs.Metrics.enabled () in
  match Unix.fork () with
  | 0 ->
      (try ignore (Server.serve_socket ~load_graph (config ?cache_path ()) ~path)
       with _ -> ());
      Unix._exit 0
  | pid ->
      Obs.Metrics.set_enabled was;
      let result =
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
            (try Sys.remove path with Sys_error _ -> ());
            (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ()))
          (fun () ->
            let deadline = Unix.gettimeofday () +. 10. in
            while
              (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline
            do
              Unix.sleepf 0.02
            done;
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
              (fun () ->
                Unix.connect fd (Unix.ADDR_UNIX path);
                let send s =
                  ignore (Unix.write_substring fd s 0 (String.length s))
                in
                let buf = Buffer.create 1024 in
                let chunk = Bytes.create 4096 in
                let read_until pred =
                  let deadline = Unix.gettimeofday () +. 20. in
                  while
                    (not (pred (Buffer.contents buf)))
                    && Unix.gettimeofday () < deadline
                  do
                    match Unix.select [ fd ] [] [] 0.2 with
                    | [ _ ], _, _ -> (
                        match Unix.read fd chunk 0 (Bytes.length chunk) with
                        | 0 -> raise Exit
                        | n -> Buffer.add_subbytes buf chunk 0 n)
                    | _ -> ()
                  done;
                  if not (pred (Buffer.contents buf)) then
                    Alcotest.failf "socket dialogue timed out with %S"
                      (Buffer.contents buf)
                in
                dialogue ~send ~read_until;
                stop ~send ~pid;
                let _, status = Unix.waitpid [] pid in
                (Buffer.contents buf, status)))
      in
      result

let test_serve_socket_quit () =
  let captured, status =
    with_socket_server
      ~stop:(fun ~send ~pid:_ -> send "QUIT\n")
      (fun ~send ~read_until ->
        send "PING\n";
        send (Printf.sprintf "gA spes=4 %s id=s1\n" bb_attrs);
        read_until (fun s -> count_sub "END s1\n" s = 1))
  in
  Alcotest.(check bool) "clean exit" true (status = Unix.WEXITED 0);
  Alcotest.(check bool) "pong" true (String.starts_with ~prefix:"PONG\n" captured);
  Alcotest.(check int) "one ok frame" 1 (count_sub "BEGIN s1 ok\n" captured)

let test_serve_socket_sigterm_flush () =
  let cache_path = temp_file ".json" in
  Fun.protect ~finally:(fun () -> cleanup [ cache_path; Cache.temp_path cache_path ])
    (fun () ->
      let captured, status =
        with_socket_server ~cache_path
          ~stop:(fun ~send:_ ~pid -> Unix.kill pid Sys.sigterm)
          (fun ~send ~read_until ->
            send (Printf.sprintf "gB spes=5 %s id=k1\n" bb_attrs);
            read_until (fun s -> count_sub "END k1\n" s = 1))
      in
      Alcotest.(check bool) "clean exit on SIGTERM" true
        (status = Unix.WEXITED 0);
      (* The SIGTERM flush persisted the solve; a restarted daemon must
         serve it as a hit whose body is bitwise the reply we captured. *)
      Alcotest.(check bool) "cache flushed" true (Sys.file_exists cache_path);
      let h = harness ~cache_path () in
      Buffer.clear h.out;
      submit h ~id:"k1" "gB" ~attrs:(Printf.sprintf "spes=5 %s" bb_attrs);
      Alcotest.(check bool) "warm hit after SIGTERM restart" true
        ((reply_of h "k1").Server.status = `Hit);
      (* The batch render block between "BEGIN k1 ..." and "END k1". *)
      let extract s =
        let start =
          match String.index_opt s '\n' with
          | Some i -> i + 1
          | None -> Alcotest.fail "no frame"
        in
        let fin =
          let marker = "END k1\n" in
          let rec find i =
            if i + String.length marker > String.length s then
              Alcotest.fail "no END"
            else if String.sub s i (String.length marker) = marker then i
            else find (i + 1)
          in
          find start
        in
        String.sub s start (fin - start)
      in
      let live_body = extract captured in
      let hit_body = extract (output h) in
      let strip_source s =
        String.concat "\n"
          (List.filter
             (fun l -> not (String.starts_with ~prefix:"source:" l))
             (String.split_on_char '\n' s))
      in
      Alcotest.(check string) "bitwise identical mapping across restart"
        (strip_source live_body) (strip_source hit_body);
      Server.finish h.server)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "daemon"
    [
      ( "protocol",
        [
          qt request_roundtrip;
          Alcotest.test_case "verbs" `Quick test_parse_verbs;
          Alcotest.test_case "TRACE parse + framing" `Quick test_parse_trace;
          Alcotest.test_case "hostile lines" `Quick test_parse_hostile;
          Alcotest.test_case "error flattening" `Quick
            test_render_error_flattens;
          Alcotest.test_case "reply framing" `Quick test_reply_framing;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bound covers queued + in-flight" `Quick
            test_admission_bound;
          Alcotest.test_case "priority then FIFO" `Quick
            test_admission_priority;
          Alcotest.test_case "invalid arguments" `Quick test_admission_invalid;
          qt admission_lexicographic;
        ] );
      ( "engine",
        [
          Alcotest.test_case "reject at the bound" `Quick test_reject_at_bound;
          Alcotest.test_case "hits bypass admission" `Quick
            test_hits_bypass_admission;
          Alcotest.test_case "queued duplicate becomes a hit" `Quick
            test_duplicate_becomes_hit_at_dispatch;
          Alcotest.test_case "deadline expiry yields a feasible partial"
            `Quick test_deadline_partial_feasible;
          Alcotest.test_case "shutdown flush + bitwise warm restart" `Quick
            test_shutdown_flush_warm_restart;
          Alcotest.test_case "verbs + daemon_* metrics" `Quick
            test_verbs_and_metrics;
          Alcotest.test_case "TRACE returns the span tree" `Quick
            test_trace_verb;
          Alcotest.test_case "expired deadline shows up in the trace" `Quick
            test_trace_deadline;
          Alcotest.test_case "SLO accounting by priority band" `Quick
            test_slo_metrics;
          Alcotest.test_case "sharded cache keeps the transcript bitwise"
            `Quick test_sharded_transcript_bitwise;
        ] );
      (* Socket tests fork, and OCaml 5 forbids Unix.fork once any domain
         has ever been spawned in the process, so they must run before the
         pool differential test. *)
      ( "serve",
        [
          Alcotest.test_case "pipe fds end to end" `Quick test_serve_pipe;
          Alcotest.test_case "socket: PING/solve/QUIT" `Quick
            test_serve_socket_quit;
          Alcotest.test_case "socket: SIGTERM flushes, restart is bitwise"
            `Quick test_serve_socket_sigterm_flush;
        ] );
      ( "pool",
        [
          Alcotest.test_case "pool replies bitwise equal inline" `Quick
            test_pool_matches_inline;
        ] );
    ]
