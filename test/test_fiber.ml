(* Tests for the effects-based fiber layer (lib/par/fiber) and its
   integration through the serving stack: spawn/await/yield semantics,
   nested-await helping without deadlock, deterministic exception
   propagation, qcheck scheduler-interleaving properties (random
   spawn/await/yield DAGs bitwise identical at pools 1/2/4, Incumbent
   winners included), a 10k-fiber cache hammer against a 4-way shard,
   and the daemon-over-fibers contract: transcripts bitwise equal to
   the fiber-less daemon across pools and in-flight windows, with
   inline cache hits overtaking long dives. *)

module Pool = Par.Pool
module Fiber = Par.Fiber
module Incumbent = Cellsched.Incumbent
module P = Cell.Platform
module Req = Service.Request
module Cache = Service.Cache
module Shard = Service.Shard
module Server = Daemon.Server

let pool_sizes = [ 1; 2; 4 ]

exception Boom of int

(* ====================================================================== *)
(* Spawn / await / yield semantics                                        *)
(* ====================================================================== *)

let test_spawn_await () =
  Pool.with_pool ~size:2 (fun p ->
      (* external entry: run a root fiber from a non-pool domain *)
      let v = Fiber.run p (fun () -> 6 * 7) in
      Alcotest.(check int) "run returns the body's value" 42 v;
      (* inside a fiber, spawn needs no ~pool: Pool.self finds it *)
      let v =
        Fiber.run p (fun () ->
            let a = Fiber.spawn (fun () -> 40) in
            let b = Fiber.spawn (fun () -> 2) in
            Fiber.await a + Fiber.await b)
      in
      Alcotest.(check int) "default-pool children" 42 v);
  match Fiber.spawn (fun () -> ()) with
  | _ -> Alcotest.fail "spawn outside any pool must raise"
  | exception Invalid_argument _ -> ()

let test_await_resolved () =
  Pool.with_pool ~size:1 (fun p ->
      let f = Fiber.spawn ~pool:p (fun () -> 17) in
      Alcotest.(check int) "first await" 17 (Fiber.await f);
      (* a resolved fiber can be awaited again, from anywhere *)
      Alcotest.(check int) "second await (fast path)" 17 (Fiber.await f);
      Alcotest.(check int) "await inside a fiber"
        34
        (Fiber.run p (fun () -> Fiber.await f + Fiber.await f)))

(* Binary spawn tree: every interior fiber suspends on two children.
   1024 leaves exercise suspension depth and cross-domain resumption at
   every pool size. *)
let test_nested_tree () =
  let rec tree d = if d = 0 then 1 else
      let l = Fiber.spawn (fun () -> tree (d - 1)) in
      let r = tree (d - 1) in
      Fiber.await l + r
  in
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun p ->
          Alcotest.(check int)
            (Printf.sprintf "pool %d: 2^10 leaves" size)
            1024
            (Fiber.run p (fun () -> tree 10))))
    pool_sizes

(* A 300-deep await chain on a single domain: each level spawns a child
   and suspends on it. Coarse thunk nesting at this depth would stack
   300 helping frames; fibers park each level and run the child on a
   fresh task, so one worker drains the whole chain. *)
let test_deep_chain_one_domain () =
  Pool.with_pool ~size:1 (fun p ->
      let rec go d =
        if d = 0 then 0
        else 1 + Fiber.await (Fiber.spawn (fun () -> go (d - 1)))
      in
      Alcotest.(check int) "chain of 300 awaits" 300
        (Fiber.run p (fun () -> go 300)))

(* The two non-fiber await paths: a plain pool task helps (runs tasks
   while blocked); the main domain spin-waits. *)
let test_await_outside_fiber () =
  Pool.with_pool ~size:2 (fun p ->
      let f = Fiber.spawn ~pool:p (fun () -> 5) in
      Alcotest.(check int) "main-domain await" 5 (Fiber.await f);
      let task =
        Pool.submit p (fun () ->
            Fiber.await (Fiber.spawn (fun () -> 7)) + 1)
      in
      Alcotest.(check int) "pool-task await helps" 8 (Pool.await p task))

let test_yield_outside_fiber () =
  (* safe anywhere: should_stop hooks call it unconditionally *)
  Fiber.yield ();
  let tick = Fiber.yielder ~every:3 in
  tick (); tick (); tick (); tick ();
  (match Sys.opaque_identity (Fiber.yielder ~every:0) with
  | (_ : unit -> unit) -> Alcotest.fail "yielder ~every:0 must raise"
  | exception Invalid_argument _ -> ());
  Pool.with_pool ~size:1 (fun p ->
      Alcotest.(check int) "yield inside fibers, yielder ticking" 9
        (Fiber.run p (fun () ->
             let tick = Fiber.yielder ~every:2 in
             let acc = ref 0 in
             for i = 1 to 9 do
               tick ();
               acc := !acc + 1;
               ignore i
             done;
             !acc)))

(* 1000 fibers x 50 yields: every yield re-enqueues the continuation,
   so the counter must come back exact — no lost or duplicated
   resumptions under heavy rescheduling. *)
let test_yield_storm () =
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun p ->
          let counter = Atomic.make 0 in
          let total =
            Fiber.run p (fun () ->
                Fiber.parallel_map
                  (fun _ ->
                    let mine = ref 0 in
                    for _ = 1 to 50 do
                      Atomic.incr counter;
                      incr mine;
                      Fiber.yield ()
                    done;
                    !mine)
                  (Array.init 1000 Fun.id))
            |> Array.fold_left ( + ) 0
          in
          Alcotest.(check int)
            (Printf.sprintf "pool %d: per-fiber sums" size)
            50_000 total;
          Alcotest.(check int)
            (Printf.sprintf "pool %d: shared counter" size)
            50_000 (Atomic.get counter)))
    [ 1; 4 ]

(* Yield is what shares one domain between a spinner and the fiber it
   waits on: without the re-enqueue the spinner would monopolize the
   only worker and this test would spin its bound out. *)
let test_yield_shares_domain () =
  Pool.with_pool ~size:1 (fun p ->
      let spins =
        Fiber.run p (fun () ->
            let flag = Atomic.make false in
            let spinner =
              Fiber.spawn (fun () ->
                  let n = ref 0 in
                  while (not (Atomic.get flag)) && !n < 1_000_000 do
                    incr n;
                    Fiber.yield ()
                  done;
                  !n)
            in
            let setter = Fiber.spawn (fun () -> Atomic.set flag true) in
            Fiber.await setter;
            Fiber.await spinner)
      in
      Alcotest.(check bool)
        (Printf.sprintf "spinner saw the flag after %d yields" spins)
        true
        (spins < 1_000_000))

(* ====================================================================== *)
(* Exception propagation                                                  *)
(* ====================================================================== *)

let test_exception_chain () =
  Pool.with_pool ~size:2 (fun p ->
      (* leaf raises; every awaiting ancestor re-raises; the root run
         surfaces the original exception *)
      match
        Fiber.run p (fun () ->
            Fiber.await
              (Fiber.spawn (fun () ->
                   Fiber.await (Fiber.spawn (fun () -> raise (Boom 3))) + 1))
            + 1)
      with
      | _ -> Alcotest.fail "must re-raise through the chain"
      | exception Boom i -> Alcotest.(check int) "leaf exception at root" 3 i)

let test_parallel_map_determinism () =
  Pool.with_pool ~size:4 (fun p ->
      let squares =
        Fiber.run p (fun () ->
            Fiber.parallel_map (fun i -> i * i) (Array.init 64 Fun.id))
      in
      Alcotest.(check (array int)) "values in index order"
        (Array.init 64 (fun i -> i * i))
        squares;
      let completed = Atomic.make 0 in
      (match
         Fiber.run p (fun () ->
             Fiber.parallel_map
               (fun i ->
                 Atomic.incr completed;
                 if i mod 3 = 1 then raise (Boom i) else i)
               (Array.init 30 Fun.id))
       with
      | _ -> Alcotest.fail "must raise"
      | exception Boom i ->
          Alcotest.(check int) "lowest-index error wins" 1 i);
      Alcotest.(check int) "every fiber ran before the raise" 30
        (Atomic.get completed))

(* ====================================================================== *)
(* qcheck: random spawn/await/yield DAGs, bitwise across pool sizes       *)
(* ====================================================================== *)

(* One seeded DAG: node i awaits a seeded subset of nodes j < i (mixing
   their values into its own), yields a seeded number of times, may
   spawn-and-await a nested child, and may raise Boom i. Every decision
   is drawn before any fiber starts, so the value flow is a pure
   function of the seed — what the scheduler interleaves must not
   matter. Each non-raising node also offers a candidate to a shared
   Incumbent; its strict total order makes the winner a function of the
   candidate set alone. *)
type dag = {
  n : int;
  preds : int list array;  (* strictly smaller indices *)
  yields : int array;
  nested : bool array;
  raises : bool array;
}

let make_dag ~seed ~n ~fail =
  let rng = Support.Rng.create seed in
  {
    n;
    preds =
      Array.init n (fun i ->
          List.filter
            (fun _ -> Support.Rng.int rng 100 < 40)
            (List.init i Fun.id));
    yields = Array.init n (fun _ -> Support.Rng.int rng 3);
    nested = Array.init n (fun _ -> Support.Rng.int rng 100 < 30);
    raises =
      Array.init n (fun i ->
          fail && i > 0 && Support.Rng.int rng 100 < 15);
  }

let mix acc v = (acc lxor v) * 0x01000193 land 0x3FFFFFFF

(* Runs the DAG on a pool of [size]; returns per-node outcomes (value
   or exception text) and the Incumbent winner. *)
let run_dag dag ~size =
  Pool.with_pool ~size (fun p ->
      let inc = Incumbent.create () in
      let outcomes =
        Fiber.run p (fun () ->
            let fibers : int Fiber.t option array = Array.make dag.n None in
            for i = 0 to dag.n - 1 do
              fibers.(i) <-
                Some
                  (Fiber.spawn (fun () ->
                       let acc = ref (mix 0 (i + 1)) in
                       List.iter
                         (fun j ->
                           acc := mix !acc (Fiber.await (Option.get fibers.(j)));
                           if (i + j) land 1 = 0 then Fiber.yield ())
                         dag.preds.(i);
                       for _ = 1 to dag.yields.(i) do
                         Fiber.yield ()
                       done;
                       if dag.nested.(i) then begin
                         let c = Fiber.spawn (fun () -> mix !acc 0x5bd1e995) in
                         Fiber.yield ();
                         acc := mix !acc (Fiber.await c)
                       end;
                       if dag.raises.(i) then raise (Boom i);
                       let v = !acc in
                       ignore
                         (Incumbent.offer inc
                            ~period:(1e-3 +. (float_of_int (v land 0xFF) *. 1e-5))
                            [| i; v land 7 |]);
                       v))
            done;
            Array.init dag.n (fun i ->
                match Fiber.await (Option.get fibers.(i)) with
                | v -> Ok v
                | exception e -> Error (Printexc.to_string e)))
      in
      let winner =
        match Incumbent.best inc with
        | None -> None
        | Some e ->
            Some
              ( Int64.bits_of_float e.Incumbent.period,
                e.Incumbent.fp,
                Array.to_list e.Incumbent.arr )
      in
      (outcomes, winner))

let dag_deterministic =
  QCheck.Test.make ~count:120
    ~name:"random spawn/await/yield DAGs bitwise at pools 1/2/4"
    QCheck.(pair (int_bound 1_000_000) (int_range 4 24))
    (fun (seed, n) ->
      let dag = make_dag ~seed ~n ~fail:false in
      let r1 = run_dag dag ~size:1 in
      List.iter
        (fun size ->
          if run_dag dag ~size <> r1 then
            QCheck.Test.fail_reportf
              "pool=%d: results or incumbent differ (seed %d, n %d)" size seed
              n)
        [ 2; 4 ];
      true)

let dag_exceptions_deterministic =
  QCheck.Test.make ~count:60
    ~name:"leaf exceptions re-raise deterministically at any pool size"
    QCheck.(pair (int_bound 1_000_000) (int_range 4 16))
    (fun (seed, n) ->
      let dag = make_dag ~seed ~n ~fail:true in
      let r1 = run_dag dag ~size:1 in
      (* a raising node fails its awaiting ancestors in await order, so
         the full Ok/Error vector — not just the root — must agree *)
      List.iter
        (fun size ->
          if run_dag dag ~size <> r1 then
            QCheck.Test.fail_reportf
              "pool=%d: failure propagation differs (seed %d, n %d)" size seed
              n)
        [ 2; 4 ];
      true)

(* ====================================================================== *)
(* Stress: 10k fibers hammer a 4-way shard                                *)
(* ====================================================================== *)

let hex = "0123456789abcdef"
let random_fp rng = String.init 32 (fun _ -> hex.[Support.Rng.int rng 16])

let sample_entry ~fp =
  {
    Cache.fingerprint = fp;
    strategy = "portfolio:seed=1,restarts=2";
    canonical_assignment = [| 0; 1; 2; 1 |];
    period = 1.25e-3;
    feasible = true;
    throughput = 800.;
    bottleneck = "SPE1 interface (in)";
  }

let test_fiber_hammer () =
  let shards = 4 in
  let t = Shard.create ~shards ~max_entries:32 ~max_bytes:16384 () in
  let view = Shard.view t in
  let requests = 10_000 in
  (* 64 distinct problems, so fibers collide on fingerprints and the
     shards turn over their LRU budgets mid-storm *)
  let rng = Support.Rng.create 4242 in
  let population = Array.init 64 (fun _ -> random_fp rng) in
  let ops =
    Array.init requests (fun _ ->
        population.(Support.Rng.int rng (Array.length population)))
  in
  let hits = Atomic.make 0 and misses = Atomic.make 0 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  (* an out-of-pool prober snapshots every shard under its own lock
     while the storm runs: budgets must hold at every instant *)
  let prober =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          for i = 0 to shards - 1 do
            Shard.For_testing.with_shard t i (fun c ->
                if
                  Cache.length c > Cache.max_entries c
                  || Cache.bytes_used c > Cache.max_bytes c
                then Atomic.incr violations)
          done
        done)
  in
  Pool.with_pool ~size:4 (fun p ->
      ignore
        (Fiber.run p (fun () ->
             Fiber.parallel_map
               (fun fp ->
                 (* classify exactly once per request: hit or miss *)
                 (match view.Cache.probe fp with
                 | Some _ -> Atomic.incr hits
                 | None ->
                     Atomic.incr misses;
                     view.Cache.insert (sample_entry ~fp));
                 Fiber.yield ())
               ops)));
  Atomic.set stop true;
  Domain.join prober;
  Alcotest.(check int) "hits + misses = requests" requests
    (Atomic.get hits + Atomic.get misses);
  Alcotest.(check bool) "some of each under a 64-problem zipf-less mix" true
    (Atomic.get hits > 0 && Atomic.get misses > 0);
  Alcotest.(check int) "no budget violation observed mid-storm" 0
    (Atomic.get violations);
  Array.iteri
    (fun i (len, bytes) ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d within budget after the storm" i)
        true
        (len <= Shard.per_shard_entries t && bytes <= Shard.per_shard_bytes t))
    (Shard.shard_stats t)

(* ====================================================================== *)
(* Daemon over fibers                                                     *)
(* ====================================================================== *)

let random_graph rng n =
  Daggen.Generator.generate ~rng
    ~shape:
      { Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.5; jump = 2 }
    ~costs:Daggen.Generator.default_costs

let graph_table =
  lazy
    (let rng = Support.Rng.create 23 in
     [
       ("gA", random_graph rng 10);
       ("gB", random_graph rng 14);
       ("gC", random_graph rng 8);
     ])

let load_graph name =
  match List.assoc_opt name (Lazy.force graph_table) with
  | Some g -> g
  | None -> raise (Sys_error (name ^ ": no such graph"))

let bb_strategy = Req.Bb { rel_gap = 0.05; max_nodes = 200 }

type harness = {
  server : Server.t;
  out : Buffer.t;
  replies : Server.reply list ref;  (* reverse arrival order *)
}

let harness ?(fibers = false) ?(concurrency = 1) ?(max_inflight = 32)
    ?(strategy = bb_strategy) () =
  let replies = ref [] in
  let server =
    Server.create
      ~on_reply:(fun r -> replies := r :: !replies)
      ~load_graph
      {
        Server.default_config with
        Server.bound = 32;
        concurrency;
        fibers;
        max_inflight;
        flush_period = 0.;
        default_strategy = strategy;
      }
  in
  { server; out = Buffer.create 1024; replies }

let feed h line = Server.handle_line h.server ~out:(Buffer.add_string h.out) line
let output h = Buffer.contents h.out

let replied h id =
  List.exists (fun (r : Server.reply) -> r.Server.id = id) !(h.replies)

let grid_lines =
  [
    "gA spes=6 id=a";
    "gB spes=6 id=b";
    "gA spes=6 id=a2" (* duplicate of a: dispatch-time hit *);
    "gC spes=4 id=c";
    "gB spes=6 id=b2" (* duplicate of b *);
    "gA spes=4 id=d" (* same graph, distinct platform: a miss *);
  ]

let run_grid ~fibers ~concurrency ~max_inflight =
  let h = harness ~fibers ~concurrency ~max_inflight () in
  List.iter (feed h) grid_lines;
  Server.drain h.server;
  Server.finish h.server;
  (output h, Server.stats h.server)

(* The tentpole acceptance bar: the fiber daemon's transcript — reply
   bytes and order, duplicate classification included — is the
   sequential daemon's transcript, at every pool size and in-flight
   window. *)
let test_daemon_transcript_grid () =
  let reference, ref_stats = run_grid ~fibers:false ~concurrency:1 ~max_inflight:32 in
  Alcotest.(check bool) "reference transcript non-trivial" true
    (String.length reference > 200);
  Alcotest.(check int) "reference: both duplicates hit" 2 ref_stats.Server.hits;
  Alcotest.(check int) "reference: four solves" 4 ref_stats.Server.solved;
  List.iter
    (fun size ->
      List.iter
        (fun max_inflight ->
          let transcript, stats =
            run_grid ~fibers:true ~concurrency:size ~max_inflight
          in
          let label =
            Printf.sprintf "pool %d, max_inflight %d" size max_inflight
          in
          Alcotest.(check string)
            (label ^ ": transcript bitwise equal") reference transcript;
          Alcotest.(check int) (label ^ ": hits agree") ref_stats.Server.hits
            stats.Server.hits;
          Alcotest.(check int) (label ^ ": solved agree")
            ref_stats.Server.solved stats.Server.solved)
        [ 1; 4; 16 ])
    pool_sizes

(* The starvation fix, pinned on the transcript: with fibers the main
   loop never runs a solve, so a warm-cache hit submitted after a long
   dive replies inline — zero poll ticks — while the dive is still in
   flight. The fiber-less concurrency-1 daemon blocks its loop on the
   same dive, reversing the order. *)
let long_bb = Req.Bb { rel_gap = 0.; max_nodes = 4_000 }

let test_hit_overtakes_long_dive () =
  let h = harness ~fibers:true ~concurrency:1 ~max_inflight:4 ~strategy:long_bb () in
  (* warm the cache with gC *)
  feed h "gC spes=4 id=warm";
  Server.drain h.server;
  Alcotest.(check bool) "warmed" true (replied h "warm");
  (* a long dive: dispatched onto a fiber by the first poll *)
  feed h "gA spes=6 id=slow";
  Server.poll h.server;
  Alcotest.(check bool) "dive still in flight" false (replied h "slow");
  (* the hit replies inline, before any further poll *)
  feed h "gC spes=4 id=fast";
  Alcotest.(check bool) "hit replied with zero poll ticks" true
    (replied h "fast");
  Alcotest.(check bool) "dive still unreplied" false (replied h "slow");
  Server.drain h.server;
  Server.finish h.server;
  Alcotest.(check bool) "dive eventually replied" true (replied h "slow");
  let pos sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
    go 0
  in
  let transcript = output h in
  let fast = pos "BEGIN fast" transcript and slow = pos "BEGIN slow" transcript in
  Alcotest.(check bool) "transcript: fast before slow" true
    (fast >= 0 && slow >= 0 && fast < slow);
  (* contrast: the fiber-less daemon solves inline in poll, so the same
     driving sequence replies to the dive first *)
  let h = harness ~fibers:false ~concurrency:1 ~strategy:long_bb () in
  feed h "gC spes=4 id=warm";
  Server.drain h.server;
  feed h "gA spes=6 id=slow";
  Server.poll h.server;
  Alcotest.(check bool) "inline daemon finished the dive in poll" true
    (replied h "slow");
  feed h "gC spes=4 id=fast";
  Server.finish h.server;
  let transcript = output h in
  let fast = pos "BEGIN fast" transcript and slow = pos "BEGIN slow" transcript in
  Alcotest.(check bool) "transcript: slow before fast without fibers" true
    (fast >= 0 && slow >= 0 && slow < fast)

(* Queued duplicates under a wide-open in-flight window: one solve, the
   rest wait for its slot and then hit — never a second solve. *)
let test_fiber_duplicate_storm () =
  let h = harness ~fibers:true ~concurrency:2 ~max_inflight:16 () in
  for i = 1 to 8 do
    feed h (Printf.sprintf "gB spes=6 id=dup%d" i)
  done;
  Server.drain h.server;
  Server.finish h.server;
  let s = Server.stats h.server in
  Alcotest.(check int) "one solve" 1 s.Server.solved;
  Alcotest.(check int) "seven dispatch hits" 7 s.Server.hits;
  Alcotest.(check int) "every duplicate replied" 8 s.Server.replies;
  for i = 1 to 8 do
    Alcotest.(check bool) (Printf.sprintf "dup%d replied" i) true
      (replied h (Printf.sprintf "dup%d" i))
  done

(* Deadline-expired partials flow through the fiber sequencer like any
   other outcome — replied, tagged partial, never cached. *)
let test_fiber_deadline_partial () =
  let h = harness ~fibers:true ~concurrency:1 ~max_inflight:4 () in
  feed h "gB spes=6 deadline=0.001 id=p1";
  Server.drain h.server;
  Server.finish h.server;
  let r =
    match
      List.find_opt (fun (r : Server.reply) -> r.Server.id = "p1") !(h.replies)
    with
    | Some r -> r
    | None -> Alcotest.fail "no reply for p1"
  in
  Alcotest.(check bool) "partial status" true (r.Server.status = `Partial);
  let response = Option.get r.Server.response in
  Alcotest.(check bool) "feasible incumbent" true response.Service.Batch.feasible;
  Alcotest.(check (option reject)) "never cached" None
    (Option.map ignore
       (Shard.find (Server.shard h.server) response.Service.Batch.fingerprint));
  let s = Server.stats h.server in
  Alcotest.(check int) "counted partial" 1 s.Server.partials;
  Alcotest.(check int) "not counted solved" 0 s.Server.solved

(* ====================================================================== *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fiber"
    [
      ( "fiber",
        [
          Alcotest.test_case "spawn/await + default pool" `Quick test_spawn_await;
          Alcotest.test_case "await resolved (fast path)" `Quick
            test_await_resolved;
          Alcotest.test_case "nested spawn tree, pools 1/2/4" `Quick
            test_nested_tree;
          Alcotest.test_case "300-deep await chain on one domain" `Quick
            test_deep_chain_one_domain;
          Alcotest.test_case "await outside fibers helps/blocks" `Quick
            test_await_outside_fiber;
          Alcotest.test_case "yield no-op outside; yielder cadence" `Quick
            test_yield_outside_fiber;
          Alcotest.test_case "yield storm conservation" `Quick test_yield_storm;
          Alcotest.test_case "yield shares a single domain" `Quick
            test_yield_shares_domain;
          Alcotest.test_case "exception re-raises through await chain" `Quick
            test_exception_chain;
          Alcotest.test_case "parallel_map order + lowest-index error" `Quick
            test_parallel_map_determinism;
        ] );
      ( "determinism",
        [ qt dag_deterministic; qt dag_exceptions_deterministic ] );
      ( "stress",
        [ Alcotest.test_case "10k fibers vs 4-way shard" `Quick test_fiber_hammer ] );
      ( "daemon",
        [
          Alcotest.test_case "transcript bitwise grid" `Quick
            test_daemon_transcript_grid;
          Alcotest.test_case "hit overtakes a long dive" `Quick
            test_hit_overtakes_long_dive;
          Alcotest.test_case "duplicate storm: one solve" `Quick
            test_fiber_duplicate_storm;
          Alcotest.test_case "deadline partial over fibers" `Quick
            test_fiber_deadline_partial;
        ] );
    ]
