(* Tests for the service layer (lib/service): canonical fingerprint
   metamorphic properties, cache-hit bitwise equality with fresh
   solves, differential batched-vs-sequential runs, and persistence
   fault recovery. *)

module P = Cell.Platform
module G = Streaming.Graph
module T = Streaming.Task
module Canon = Streaming.Canonical
module M = Cellsched.Mapping
module SS = Cellsched.Steady_state
module Pf = Cellsched.Portfolio
module Search = Cellsched.Mapping_search
module Req = Service.Request
module Cache = Service.Cache
module Batch = Service.Batch
module Pool = Par.Pool

let bits = Int64.bits_of_float

(* Registration is idempotent by name, so the tests read the very
   counters the service bumps. *)
let svc_counter name = Obs.Metrics.counter name
let counter_value name = Obs.Metrics.Counter.value (svc_counter name)

let with_metrics f =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was) f

let random_graph ?(fat = 0.5) rng n =
  Daggen.Generator.generate ~rng
    ~shape:{ Daggen.Generator.n; fat; density = 0.4; regularity = 0.5; jump = 2 }
    ~costs:Daggen.Generator.default_costs

(* An isomorphic copy: tasks renamed and reordered by a random
   permutation, edge list shuffled. *)
let relabel rng g =
  let n = G.n_tasks g in
  let perm = Array.init n Fun.id in
  Support.Rng.shuffle rng perm;
  (* perm.(p) = old id of the task now at position p *)
  let pos = Array.make n 0 in
  Array.iteri (fun p old -> pos.(old) <- p) perm;
  let tasks =
    Array.init n (fun p ->
        { (G.task g perm.(p)) with T.name = Printf.sprintf "x%d" p })
  in
  let edges =
    Array.init (G.n_edges g) (fun e ->
        let { G.src; dst; data_bytes } = G.edge g e in
        (pos.(src), pos.(dst), data_bytes))
  in
  Support.Rng.shuffle rng edges;
  (G.of_tasks tasks (Array.to_list edges), pos)

(* ====================================================================== *)
(* Canonical fingerprint: metamorphic properties                          *)
(* ====================================================================== *)

let fingerprint_relabel_invariant =
  QCheck.Test.make ~count:120
    ~name:"canonical fingerprint invariant under relabeling + edge shuffles"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 24))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let g = random_graph rng n in
      let g', _ = relabel rng g in
      if Canon.to_string g <> Canon.to_string g' then
        QCheck.Test.fail_reportf "canonical forms differ:\n%s\nvs\n%s"
          (Canon.to_string g) (Canon.to_string g');
      Canon.fingerprint g = Canon.fingerprint g')

let test_fingerprint_distinct () =
  (* 100 random DAGs from distinct seeds: no two fingerprints collide
     (random float costs make accidental isomorphism negligible). *)
  let seen = Hashtbl.create 128 in
  for seed = 1 to 100 do
    let rng = Support.Rng.create seed in
    let n = 6 + Support.Rng.int rng 15 in
    let fp = Canon.fingerprint (random_graph rng n) in
    (match Hashtbl.find_opt seen fp with
    | Some other ->
        Alcotest.failf "seed %d collides with seed %d on %Lx" seed other fp
    | None -> ());
    Hashtbl.add seen fp seed
  done

let test_fingerprint_sensitivity () =
  (* The request key must see every input: graph, platform and solver
     options each perturb it. *)
  let rng = Support.Rng.create 7 in
  let g = random_graph rng 10 in
  let base =
    {
      Req.label = "base";
      platform = P.qs22 ();
      graph = g;
      strategy = Req.Portfolio { seed = 1; restarts = 3 };
      deadline_ms = None;
      prio = 0;
    }
  in
  let fp = Req.fingerprint base in
  Alcotest.(check int) "key width" 32 (String.length fp);
  Alcotest.(check bool) "label is not keyed" true
    (Req.fingerprint { base with Req.label = "other" } = fp);
  let differs what r = Alcotest.(check bool) what false (Req.fingerprint r = fp) in
  differs "platform changes the key" { base with Req.platform = P.qs22 ~n_spe:4 () };
  differs "seed changes the key"
    { base with Req.strategy = Req.Portfolio { seed = 2; restarts = 3 } };
  differs "restarts change the key"
    { base with Req.strategy = Req.Portfolio { seed = 1; restarts = 4 } };
  differs "strategy family changes the key"
    { base with Req.strategy = Req.Bb { rel_gap = 0.05; max_nodes = 1000 } };
  differs "graph changes the key"
    { base with Req.graph = random_graph (Support.Rng.create 8) 10 };
  (* An edge-size change alone (same topology) must also show. *)
  differs "edge data changes the key"
    { base with Req.graph = G.map_edges (fun _ e -> e.G.data_bytes +. 1.) g }

(* ====================================================================== *)
(* Cache hits bitwise-equal to fresh solves                               *)
(* ====================================================================== *)

let portfolio_strategy = Req.Portfolio { seed = 1234; restarts = 2 }

let request ?(label = "g") ?(strategy = portfolio_strategy) platform graph =
  { Req.label; platform; graph; strategy; deadline_ms = None; prio = 0 }

let hit_equals_fresh_portfolio =
  QCheck.Test.make ~count:40
    ~name:"cache hit bitwise = fresh portfolio solve (same seeds)"
    QCheck.(pair (int_bound 1_000_000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let g = random_graph rng n in
      let platform = P.make ~n_ppe:1 ~n_spe:(2 + Support.Rng.int rng 3) () in
      let req = request platform g in
      let cache = Cache.create () in
      let miss =
        match Batch.run ~cache [ req ] with [ r ] -> r | _ -> assert false
      in
      let hit =
        match Batch.run ~cache [ req ] with [ r ] -> r | _ -> assert false
      in
      if miss.Batch.source <> Batch.Solved then
        QCheck.Test.fail_reportf "first run should solve";
      if hit.Batch.source <> Batch.Hit then
        QCheck.Test.fail_reportf "second run should hit";
      let fresh = Pf.solve ~seed:1234 ~restarts:2 platform g in
      let fresh_arr = M.to_array fresh.Pf.best in
      if hit.Batch.assignment <> fresh_arr then
        QCheck.Test.fail_reportf "hit assignment differs from fresh solve";
      if bits hit.Batch.period <> bits fresh.Pf.period then
        QCheck.Test.fail_reportf "hit period %.17g vs fresh %.17g"
          hit.Batch.period fresh.Pf.period;
      if miss.Batch.assignment <> fresh_arr then
        QCheck.Test.fail_reportf "solve-path assignment differs from fresh solve";
      true)

let hit_equals_fresh_bb =
  let strategy = Req.Bb { rel_gap = 0.05; max_nodes = 20_000 } in
  QCheck.Test.make ~count:15
    ~name:"cache hit bitwise = fresh branch-and-bound solve"
    QCheck.(pair (int_bound 1_000_000) (int_range 4 9))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let g = random_graph rng n in
      let platform = P.make ~n_ppe:1 ~n_spe:(2 + Support.Rng.int rng 3) () in
      let req = request ~strategy platform g in
      let cache = Cache.create () in
      ignore (Batch.run ~cache [ req ]);
      let hit =
        match Batch.run ~cache [ req ] with [ r ] -> r | _ -> assert false
      in
      if hit.Batch.source <> Batch.Hit then
        QCheck.Test.fail_reportf "second run should hit";
      let options =
        {
          Search.default_options with
          rel_gap = 0.05;
          max_nodes = 20_000;
          time_limit = 3600.;
        }
      in
      let fresh = Search.solve ~options platform g in
      if hit.Batch.assignment <> M.to_array fresh.Search.mapping then
        QCheck.Test.fail_reportf "hit assignment differs from fresh B&B";
      if bits hit.Batch.period <> bits fresh.Search.period then
        QCheck.Test.fail_reportf "hit period %.17g vs fresh %.17g"
          hit.Batch.period fresh.Search.period;
      true)

let relabeled_hit_transports =
  QCheck.Test.make ~count:40
    ~name:"relabeled request hits and transports a valid mapping"
    QCheck.(pair (int_bound 1_000_000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let g = random_graph rng n in
      let platform = P.make ~n_ppe:1 ~n_spe:(2 + Support.Rng.int rng 3) () in
      let cache = Cache.create () in
      let solved =
        match Batch.run ~cache [ request platform g ] with
        | [ r ] -> r
        | _ -> assert false
      in
      let g', _ = relabel rng g in
      let resp =
        match Batch.run ~cache [ request ~label:"relabeled" platform g' ] with
        | [ r ] -> r
        | _ -> assert false
      in
      if resp.Batch.source <> Batch.Hit then
        QCheck.Test.fail_reportf "isomorphic request should hit the cache";
      (* The transported mapping is valid on the relabeled graph and
         achieves the same period there (up to summation-order ulps). *)
      let m = M.make platform g' resp.Batch.assignment in
      let p = SS.period platform (SS.loads platform g' m) in
      let tol = 1e-9 *. Float.abs solved.Batch.period in
      if Float.abs (p -. solved.Batch.period) > tol then
        QCheck.Test.fail_reportf
          "transported period %.17g vs solved %.17g (tol %.3g)" p
          solved.Batch.period tol;
      true)

(* ====================================================================== *)
(* Differential: batched (pools of 1/2/4) vs sequential per-request loop  *)
(* ====================================================================== *)

let differential_requests () =
  let platform = P.qs22 ~n_spe:4 () in
  let graph i = random_graph (Support.Rng.create (100 + i)) (6 + i) in
  let g0 = graph 0 and g1 = graph 1 and g2 = graph 2 and g3 = graph 3 in
  let relabeled_g1, _ = relabel (Support.Rng.create 999) g1 in
  [
    request ~label:"g0" platform g0;
    request ~label:"g1" platform g1;
    request ~label:"g0-dup" platform g0;
    request ~label:"g2" platform g2;
    request ~label:"g3-bb"
      ~strategy:(Req.Bb { rel_gap = 0.05; max_nodes = 5_000 })
      platform g3;
    request ~label:"g1-iso" platform relabeled_g1;
    request ~label:"g2-dup" platform g2;
    request ~label:"g0-spes"
      (P.qs22 ~n_spe:2 ())
      g0;
  ]

let render_all responses = String.concat "" (List.map Batch.render responses)

(* The rendered responses must not depend on how requests were batched
   or how many domains solved the misses — except for the label, which
   is deliberately per-request, so duplicates keep distinct labels. *)
let test_differential_batch () =
  with_metrics (fun () ->
      let requests = differential_requests () in
      let n = List.length requests in
      let hits0 = counter_value "svc_hits_total"
      and misses0 = counter_value "svc_misses_total" in
      let reference =
        let cache = Cache.create () in
        List.concat_map (fun r -> Batch.run ~cache [ r ]) requests
        |> render_all
      in
      let runs = ref 1 in
      List.iter
        (fun size ->
          Pool.with_pool ~size (fun pool ->
              let cache = Cache.create () in
              let out = render_all (Batch.run ~pool ~cache requests) in
              incr runs;
              Alcotest.(check string)
                (Printf.sprintf "pool=%d byte-identical to sequential loop" size)
                reference out))
        [ 1; 2; 4 ];
      let hits = counter_value "svc_hits_total" - hits0
      and misses = counter_value "svc_misses_total" - misses0 in
      Alcotest.(check int)
        "svc_hits + svc_misses = requests served" (!runs * n) (hits + misses);
      (* The duplicate, isomorphic-duplicate and repeated requests hit. *)
      Alcotest.(check int) "hits per run" (!runs * 3) hits)

(* ====================================================================== *)
(* Persistence                                                            *)
(* ====================================================================== *)

let sample_entry ?(fp = String.make 32 'a') ?(period = 1.25e-3) () =
  {
    Cache.fingerprint = fp;
    strategy = "portfolio:seed=1,restarts=2";
    canonical_assignment = [| 0; 1; 2; 1 |];
    period;
    feasible = true;
    throughput = 1. /. period;
    bottleneck = "SPE1 interface (in)";
  }

let temp_path () = Filename.temp_file "cellsched_cache" ".json"

let entry_testable =
  let pp ppf (e : Cache.entry) =
    Format.fprintf ppf "%s period=%h [%s]" e.Cache.fingerprint e.Cache.period
      (String.concat ","
         (Array.to_list (Array.map string_of_int e.Cache.canonical_assignment)))
  in
  Alcotest.testable pp (fun a b ->
      a.Cache.fingerprint = b.Cache.fingerprint
      && a.Cache.strategy = b.Cache.strategy
      && a.Cache.canonical_assignment = b.Cache.canonical_assignment
      && bits a.Cache.period = bits b.Cache.period
      && a.Cache.feasible = b.Cache.feasible
      && bits a.Cache.throughput = bits b.Cache.throughput
      && a.Cache.bottleneck = b.Cache.bottleneck)

let test_persistence_roundtrip () =
  let cache = Cache.create () in
  let e1 = sample_entry () in
  let e2 =
    sample_entry ~fp:(String.make 32 'b') ~period:(1. /. 3.) ()
  in
  let e3 =
    (* Non-finite periods must survive the trip (JSON has no inf). *)
    { (sample_entry ~fp:(String.make 32 'c') ()) with
      Cache.period = infinity; feasible = false; throughput = 0. }
  in
  List.iter (Cache.add cache) [ e1; e2; e3 ];
  ignore (Cache.find cache e1.Cache.fingerprint);
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Cache.save_file ~force:true cache path with
      | Ok () -> ()
      | Error m -> Alcotest.failf "save failed: %s" m);
      let back = Cache.load_file path in
      Alcotest.(check int) "entries survive" 3 (Cache.length back);
      Alcotest.(check (list entry_testable))
        "entries equal, LRU order preserved" (Cache.entries cache)
        (Cache.entries back))

let recovered_counter_after f =
  with_metrics (fun () ->
      let before = counter_value "svc_cache_recovered_total" in
      let cache = f () in
      (Cache.length cache, counter_value "svc_cache_recovered_total" - before))

(* First-occurrence string replacement (keeps the test free of str). *)
let replace ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "substring %S not found" sub
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let load_corrupt contents =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc contents);
      recovered_counter_after (fun () -> Cache.load_file path))

let test_persistence_faults () =
  let cache = Cache.create () in
  Cache.add cache (sample_entry ());
  Cache.add cache (sample_entry ~fp:(String.make 32 'b') ());
  let good = Cache.to_json_string cache in
  let check what (len, recovered) =
    Alcotest.(check int) (what ^ ": empty cache") 0 len;
    Alcotest.(check int) (what ^ ": recovered counter") 1 recovered
  in
  check "truncated"
    (load_corrupt (String.sub good 0 (String.length good / 2)));
  check "garbage" (load_corrupt "this is not json {{{");
  check "wrong version"
    (load_corrupt
       (replace ~sub:"\"cellsched_cache\":1" ~by:"\"cellsched_cache\":99" good));
  check "not a cache file" (load_corrupt "{\"some\":\"object\"}");
  (* A malformed entry poisons the whole file: recover empty. *)
  check "bad entry"
    (load_corrupt (replace ~sub:"\"feasible\":true" ~by:"\"feasible\":\"yes\"" good));
  (* Missing file: normal cold start, no recovery event. *)
  let len, recovered =
    recovered_counter_after (fun () -> Cache.load_file "/nonexistent/cache.json")
  in
  Alcotest.(check int) "missing file: empty" 0 len;
  Alcotest.(check int) "missing file: no recovery event" 0 recovered

let test_no_clobber () =
  let cache = Cache.create () in
  Cache.add cache (sample_entry ());
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* temp_file creates the file, so an unforced save must refuse. *)
      (match Cache.save_file cache path with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "save over an existing file must refuse");
      match Cache.save_file ~force:true cache path with
      | Ok () -> ()
      | Error m -> Alcotest.failf "forced save failed: %s" m)

let test_crash_window () =
  (* A flush killed mid-write must leave the previous complete snapshot
     intact: the bytes go to a sibling temp file, the rename never
     happens, and a reload sees every entry of the last good save. *)
  let cache = Cache.create () in
  Cache.add cache (sample_entry ());
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () ->
      Cache.For_testing.crash_after_bytes := None;
      Sys.remove path;
      try Sys.remove (Cache.temp_path path) with Sys_error _ -> ())
    (fun () ->
      (match Cache.save_file ~force:true cache path with
      | Ok () -> ()
      | Error m -> Alcotest.failf "first save failed: %s" m);
      let good = In_channel.with_open_bin path In_channel.input_all in
      Cache.add cache (sample_entry ~fp:(String.make 32 'b') ());
      Cache.For_testing.crash_after_bytes := Some 25;
      (match Cache.save_file ~force:true cache path with
      | Ok () -> Alcotest.fail "crashed flush reported success"
      | Error _ -> ());
      Cache.For_testing.crash_after_bytes := None;
      Alcotest.(check bool) "partial bytes went to the temp file" true
        (Sys.file_exists (Cache.temp_path path));
      Alcotest.(check string) "target file untouched by the crash" good
        (In_channel.with_open_bin path In_channel.input_all);
      let back = Cache.load_file path in
      Alcotest.(check int) "previous snapshot loads complete" 1
        (Cache.length back);
      (* The retry overwrites the stale temp file and lands atomically. *)
      (match Cache.save_file ~force:true cache path with
      | Ok () -> ()
      | Error m -> Alcotest.failf "retry failed: %s" m);
      Alcotest.(check bool) "temp file consumed by the rename" false
        (Sys.file_exists (Cache.temp_path path));
      Alcotest.(check int) "both entries land" 2
        (Cache.length (Cache.load_file path)))

let test_lru_eviction () =
  with_metrics (fun () ->
      let evictions0 = counter_value "svc_cache_evicted_total" in
      let cache = Cache.create ~max_entries:2 () in
      let fp c = String.make 32 c in
      Cache.add cache (sample_entry ~fp:(fp 'a') ());
      Cache.add cache (sample_entry ~fp:(fp 'b') ());
      (* Touch 'a' so 'b' is the LRU victim. *)
      ignore (Cache.find cache (fp 'a'));
      Cache.add cache (sample_entry ~fp:(fp 'c') ());
      Alcotest.(check int) "bounded" 2 (Cache.length cache);
      Alcotest.(check bool) "a kept (recently used)" true
        (Cache.find cache (fp 'a') <> None);
      Alcotest.(check bool) "b evicted" true (Cache.find cache (fp 'b') = None);
      Alcotest.(check bool) "c resident" true
        (Cache.find cache (fp 'c') <> None);
      Alcotest.(check int) "eviction counted" 1
        (counter_value "svc_cache_evicted_total" - evictions0);
      (* Byte bound: an entry bigger than the whole budget is dropped. *)
      let tiny = Cache.create ~max_bytes:64 () in
      Cache.add tiny (sample_entry ());
      Alcotest.(check int) "oversized entry dropped" 0 (Cache.length tiny))

let test_eviction_counter_ignores_overwrites () =
  (* Regression: [svc_cache_evicted_total] once counted update-in-place
     replacements as evictions, so an overwrite-heavy stream inflated
     the counter far past the number of entries that ever left the
     cache. Pin the distinction: overwrites never bump it, genuine LRU
     pressure bumps it exactly once per departed entry. *)
  with_metrics (fun () ->
      let evicted () = counter_value "svc_cache_evicted_total" in
      let fp c = String.make 32 c in
      let cache = Cache.create ~max_entries:4 () in
      let base = evicted () in
      (* 100 writes across 4 resident fingerprints: 96 overwrites. *)
      for round = 1 to 25 do
        List.iter
          (fun c ->
            Cache.add cache
              { (sample_entry ~fp:(fp c) ()) with Cache.period = float_of_int round })
          [ 'a'; 'b'; 'c'; 'd' ]
      done;
      Alcotest.(check int) "overwrite-heavy stream evicts nothing" 0
        (evicted () - base);
      Alcotest.(check int) "all four resident" 4 (Cache.length cache);
      (match Cache.find cache (fp 'a') with
      | Some e -> Alcotest.(check (float 0.)) "last write won" 25. e.Cache.period
      | None -> Alcotest.fail "overwritten entry vanished");
      (* Now genuine pressure: 3 new fingerprints through a 4-slot cache
         displace exactly 3 residents, overwrites still free. *)
      List.iter
        (fun c -> Cache.add cache (sample_entry ~fp:(fp c) ()))
        [ 'e'; 'f'; 'g' ];
      Alcotest.(check int) "one eviction per departed entry" 3
        (evicted () - base);
      Cache.add cache (sample_entry ~fp:(fp 'g') ());
      Alcotest.(check int) "post-pressure overwrite still free" 3
        (evicted () - base))

let test_transport_reject_falls_back () =
  with_metrics (fun () ->
      let rng = Support.Rng.create 5 in
      let g = random_graph rng 8 in
      let platform = P.qs22 ~n_spe:4 () in
      let req = request platform g in
      let cache = Cache.create () in
      (* Poison the cache under the request's own fingerprint with a
         wrong-arity assignment: the hit must be rejected and re-solved. *)
      Cache.add cache
        {
          (sample_entry ~fp:(Req.fingerprint req) ()) with
          Cache.canonical_assignment = [| 0 |];
        };
      let rejects0 = counter_value "svc_transport_rejects_total" in
      let resp =
        match Batch.run ~cache [ req ] with [ r ] -> r | _ -> assert false
      in
      Alcotest.(check bool) "fell back to a solve" true
        (resp.Batch.source = Batch.Solved);
      Alcotest.(check int) "reject counted" 1
        (counter_value "svc_transport_rejects_total" - rejects0);
      let fresh = Pf.solve ~seed:1234 ~restarts:2 platform g in
      Alcotest.(check bool) "fallback result = fresh solve" true
        (resp.Batch.assignment = M.to_array fresh.Pf.best))

(* ====================================================================== *)
(* Request-file parsing                                                   *)
(* ====================================================================== *)

let test_parse_line () =
  let rng = Support.Rng.create 3 in
  let g = random_graph rng 6 in
  let load_graph name =
    Alcotest.(check string) "file forwarded" "g.graph" name;
    g
  in
  (match Req.parse_line ~load_graph 1 "g.graph spes=4 strategy=portfolio seed=7" with
  | Some r ->
      Alcotest.(check int) "spes" 4 r.Req.platform.P.n_spe;
      (match r.Req.strategy with
      | Req.Portfolio { seed; restarts } ->
          Alcotest.(check int) "seed" 7 seed;
          Alcotest.(check int) "default restarts" Pf.default_restarts restarts
      | _ -> Alcotest.fail "expected portfolio")
  | None -> Alcotest.fail "line should parse");
  (match Req.parse_line ~load_graph:(fun _ -> g) 2 "g strategy=bb max-nodes=99" with
  | Some { Req.strategy = Req.Bb { max_nodes; _ }; _ } ->
      Alcotest.(check int) "max-nodes" 99 max_nodes
  | _ -> Alcotest.fail "expected bb");
  Alcotest.(check bool) "comment skipped" true
    (Req.parse_line ~load_graph:(fun _ -> g) 3 "  # comment" = None);
  Alcotest.(check bool) "blank skipped" true
    (Req.parse_line ~load_graph:(fun _ -> g) 4 "" = None);
  (match Req.parse_line ~load_graph:(fun _ -> g) 5 "g seed=notanint" with
  | exception Failure m ->
      Alcotest.(check bool) "line number in error" true
        (String.length m >= 6 && String.sub m 0 6 = "line 5")
  | _ -> Alcotest.fail "malformed line should fail");
  match Req.parse_line ~load_graph:(fun _ -> g) 6 "g strategy=bb seed=1" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "seed= under bb should fail"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "service"
    [
      ( "fingerprint",
        [
          qt fingerprint_relabel_invariant;
          Alcotest.test_case "100 distinct DAGs, no collision" `Quick
            test_fingerprint_distinct;
          Alcotest.test_case "key sensitivity" `Quick
            test_fingerprint_sensitivity;
        ] );
      ( "cache-hit equivalence",
        [
          qt hit_equals_fresh_portfolio;
          qt hit_equals_fresh_bb;
          qt relabeled_hit_transports;
        ] );
      ( "differential",
        [ Alcotest.test_case "batched = sequential loop" `Quick
            test_differential_batch ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_persistence_roundtrip;
          Alcotest.test_case "fault recovery" `Quick test_persistence_faults;
          Alcotest.test_case "no-clobber / --force" `Quick test_no_clobber;
          Alcotest.test_case "crash mid-flush keeps the last snapshot" `Quick
            test_crash_window;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction + bounds" `Quick test_lru_eviction;
          Alcotest.test_case "eviction counter ignores overwrites" `Quick
            test_eviction_counter_ignores_overwrites;
          Alcotest.test_case "transport reject falls back" `Quick
            test_transport_reject_falls_back;
        ] );
      ("requests", [ Alcotest.test_case "parse_line" `Quick test_parse_line ]);
    ]
