(* Tests for the LP/MILP substrate: simplex against hand-checked instances
   and a brute-force vertex-enumeration oracle; branch & bound against
   exhaustive grid search. *)

let check_float = Alcotest.(check (float 1e-6))

let solve_opt problem =
  match Lp.Simplex.solve problem with
  | Lp.Simplex.Optimal sol -> sol
  | Lp.Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"

(* --- hand-checked simplex instances ------------------------------------ *)

let test_basic_max () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p "x" in
  let y = Lp.Problem.add_var p "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 1.) ]) Lp.Problem.Le 4.;
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 3.) ]) Lp.Problem.Le 6.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Lp.Expr.of_list [ (x, 3.); (y, 2.) ]);
  let sol = solve_opt p in
  check_float "objective" 12. sol.Lp.Simplex.objective;
  check_float "x" 4. sol.Lp.Simplex.x.(x);
  check_float "y" 0. sol.Lp.Simplex.x.(y)

let test_basic_min_with_ge () =
  (* min 2x + 3y st x + y >= 10, x <= 6, y <= 8 -> x=6,y=4, obj 24. *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~ub:6. "x" in
  let y = Lp.Problem.add_var p ~ub:8. "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 1.) ]) Lp.Problem.Ge 10.;
  Lp.Problem.set_objective p Lp.Problem.Minimize
    (Lp.Expr.of_list [ (x, 2.); (y, 3.) ]);
  let sol = solve_opt p in
  check_float "objective" 24. sol.Lp.Simplex.objective

let test_equality () =
  (* min x + y st x + 2y = 6, x - y = 0 -> x = y = 2, obj 4. *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p "x" in
  let y = Lp.Problem.add_var p "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 2.) ]) Lp.Problem.Eq 6.;
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, -1.) ]) Lp.Problem.Eq 0.;
  Lp.Problem.set_objective p Lp.Problem.Minimize
    (Lp.Expr.of_list [ (x, 1.); (y, 1.) ]);
  let sol = solve_opt p in
  check_float "objective" 4. sol.Lp.Simplex.objective;
  check_float "x" 2. sol.Lp.Simplex.x.(x)

let test_free_variable () =
  (* min y st y >= x - 4, y >= -x, x free -> x = 2, y = -2. *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~lb:neg_infinity "x" in
  let y = Lp.Problem.add_var p ~lb:neg_infinity "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (y, 1.); (x, -1.) ]) Lp.Problem.Ge (-4.);
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (y, 1.); (x, 1.) ]) Lp.Problem.Ge 0.;
  Lp.Problem.set_objective p Lp.Problem.Minimize (Lp.Expr.term y);
  let sol = solve_opt p in
  check_float "objective" (-2.) sol.Lp.Simplex.objective

let test_infeasible () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~ub:1. "x" in
  Lp.Problem.add_constr p (Lp.Expr.term x) Lp.Problem.Ge 2.;
  Lp.Problem.set_objective p Lp.Problem.Minimize (Lp.Expr.term x);
  match Lp.Simplex.solve p with
  | Lp.Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p "x" in
  let y = Lp.Problem.add_var p "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, -1.) ]) Lp.Problem.Le 1.;
  Lp.Problem.set_objective p Lp.Problem.Maximize (Lp.Expr.term x);
  match Lp.Simplex.solve p with
  | Lp.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_bound_override () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~ub:10. "x" in
  Lp.Problem.set_objective p Lp.Problem.Maximize (Lp.Expr.term x);
  let lb = [| 0. |] and ub = [| 3.5 |] in
  (match Lp.Simplex.solve ~lb ~ub p with
  | Lp.Simplex.Optimal sol -> check_float "override" 3.5 sol.Lp.Simplex.objective
  | _ -> Alcotest.fail "expected optimal");
  (* Original problem untouched. *)
  let sol = solve_opt p in
  check_float "original" 10. sol.Lp.Simplex.objective

let test_degenerate () =
  (* Classic degenerate LP; must terminate and find the optimum. *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p "x" in
  let y = Lp.Problem.add_var p "y" in
  let z = Lp.Problem.add_var p "z" in
  Lp.Problem.add_constr p
    (Lp.Expr.of_list [ (x, 0.5); (y, -5.5); (z, -2.5) ])
    Lp.Problem.Le 0.;
  Lp.Problem.add_constr p
    (Lp.Expr.of_list [ (x, 0.5); (y, -1.5); (z, -0.5) ])
    Lp.Problem.Le 0.;
  Lp.Problem.add_constr p (Lp.Expr.term x) Lp.Problem.Le 1.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Lp.Expr.of_list [ (x, 10.); (y, -57.); (z, -9.) ]);
  match Lp.Simplex.solve p with
  | Lp.Simplex.Optimal sol ->
      Alcotest.(check bool)
        "objective positive" true
        (sol.Lp.Simplex.objective > 0.)
  | _ -> Alcotest.fail "expected optimal"

(* --- brute-force LP oracle --------------------------------------------- *)

(* Solve a k x k linear system by Gaussian elimination with partial
   pivoting; returns None for (near-)singular systems. *)
let gauss_solve a b =
  let k = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  let ok = ref true in
  for col = 0 to k - 1 do
    if !ok then begin
      let pivot = ref col in
      for row = col + 1 to k - 1 do
        if abs_float a.(row).(col) > abs_float a.(!pivot).(col) then pivot := row
      done;
      if abs_float a.(!pivot).(col) < 1e-9 then ok := false
      else begin
        let tmp = a.(col) in
        a.(col) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tb = b.(col) in
        b.(col) <- b.(!pivot);
        b.(!pivot) <- tb;
        for row = 0 to k - 1 do
          if row <> col then begin
            let f = a.(row).(col) /. a.(col).(col) in
            for c = col to k - 1 do
              a.(row).(c) <- a.(row).(c) -. (f *. a.(col).(c))
            done;
            b.(row) <- b.(row) -. (f *. b.(col))
          end
        done
      end
    end
  done;
  if not !ok then None
  else Some (Array.init k (fun i -> b.(i) /. a.(i).(i)))

(* All size-k subsets of [0..n-1]. *)
let rec subsets k from n =
  if k = 0 then [ [] ]
  else if from >= n then []
  else
    List.map (fun s -> from :: s) (subsets (k - 1) (from + 1) n)
    @ subsets k (from + 1) n

(* Enumerate candidate vertices of {x in box | rows} and return the best
   objective, or None if no feasible vertex exists. *)
let brute_force_lp ~n ~rows ~lb ~ub ~obj ~maximize =
  (* Hyperplanes: each row as equality, each bound as equality. *)
  let planes =
    List.concat
      [
        List.map (fun (coeffs, rhs) -> (coeffs, rhs)) rows;
        List.init n (fun v ->
            (Array.init n (fun i -> if i = v then 1. else 0.), lb.(v)));
        List.init n (fun v ->
            (Array.init n (fun i -> if i = v then 1. else 0.), ub.(v)));
      ]
  in
  let planes = Array.of_list planes in
  let np = Array.length planes in
  let feasible x =
    let ok = ref true in
    List.iter
      (fun (coeffs, rhs) ->
        let lhs = ref 0. in
        Array.iteri (fun i c -> lhs := !lhs +. (c *. x.(i))) coeffs;
        if !lhs > rhs +. 1e-6 then ok := false)
      rows;
    Array.iteri
      (fun i v -> if v < lb.(i) -. 1e-6 || v > ub.(i) +. 1e-6 then ok := false)
      x;
    !ok
  in
  let best = ref None in
  let try_active active =
    let a = Array.of_list (List.map (fun i -> fst planes.(i)) active) in
    let b = Array.of_list (List.map (fun i -> snd planes.(i)) active) in
    match gauss_solve a b with
    | None -> ()
    | Some x ->
        if feasible x then begin
          let value = ref 0. in
          Array.iteri (fun i c -> value := !value +. (c *. x.(i))) obj;
          match !best with
          | None -> best := Some !value
          | Some b ->
              if (maximize && !value > b) || ((not maximize) && !value < b)
              then best := Some !value
        end
  in
  List.iter try_active (subsets n 0 np);
  !best

let random_lp_agrees_with_brute_force =
  QCheck.Test.make ~count:150 ~name:"simplex agrees with vertex enumeration"
    QCheck.(
      triple (int_bound 1000) (int_range 1 3) (int_range 0 4))
    (fun (seed, n, m) ->
      let rng = Support.Rng.create (seed + (n * 7919) + (m * 104729)) in
      let lb = Array.init n (fun _ -> Support.Rng.float_in rng (-5.) 0.) in
      let ub = Array.init n (fun _ -> Support.Rng.float_in rng 0.5 6.) in
      let rows =
        List.init m (fun _ ->
            let coeffs =
              Array.init n (fun _ -> Support.Rng.float_in rng (-3.) 3.)
            in
            let rhs = Support.Rng.float_in rng (-4.) 8. in
            (coeffs, rhs))
      in
      let obj = Array.init n (fun _ -> Support.Rng.float_in rng (-2.) 2.) in
      let maximize = Support.Rng.bool rng in
      let p = Lp.Problem.create () in
      let vars =
        Array.init n (fun v ->
            Lp.Problem.add_var p ~lb:lb.(v) ~ub:ub.(v) (Printf.sprintf "x%d" v))
      in
      List.iter
        (fun (coeffs, rhs) ->
          let expr =
            Lp.Expr.of_list
              (List.init n (fun v -> (vars.(v), coeffs.(v))))
          in
          Lp.Problem.add_constr p expr Lp.Problem.Le rhs)
        rows;
      Lp.Problem.set_objective p
        (if maximize then Lp.Problem.Maximize else Lp.Problem.Minimize)
        (Lp.Expr.of_list (List.init n (fun v -> (vars.(v), obj.(v)))));
      let expected = brute_force_lp ~n ~rows ~lb ~ub ~obj ~maximize in
      match (Lp.Simplex.solve p, expected) with
      | Lp.Simplex.Optimal sol, Some best ->
          (match Lp.Problem.check_feasible p sol.Lp.Simplex.x with
          | Ok () -> ()
          | Error msg -> QCheck.Test.fail_reportf "solution infeasible: %s" msg);
          if abs_float (sol.Lp.Simplex.objective -. best) > 1e-5 then
            QCheck.Test.fail_reportf "objective %g, brute force %g"
              sol.Lp.Simplex.objective best
          else true
      | Lp.Simplex.Infeasible, None -> true
      | Lp.Simplex.Optimal sol, None ->
          QCheck.Test.fail_reportf "simplex optimal (%g), oracle infeasible"
            sol.Lp.Simplex.objective
      | Lp.Simplex.Infeasible, Some best ->
          QCheck.Test.fail_reportf "simplex infeasible, oracle %g" best
      | Lp.Simplex.Unbounded, _ ->
          QCheck.Test.fail_reportf "unexpected unbounded on a box-bounded LP")

(* --- branch & bound ----------------------------------------------------- *)

let test_knapsack () =
  (* max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a=1,c=1: 17;
     b+c = 17+... check: b,c = 20 with weight 6: better! *)
  let p = Lp.Problem.create () in
  let a = Lp.Problem.binary p "a" in
  let b = Lp.Problem.binary p "b" in
  let c = Lp.Problem.binary p "c" in
  Lp.Problem.add_constr p
    (Lp.Expr.of_list [ (a, 3.); (b, 4.); (c, 2.) ])
    Lp.Problem.Le 6.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Lp.Expr.of_list [ (a, 10.); (b, 13.); (c, 7.) ]);
  let out = Lp.Branch_bound.solve p in
  Alcotest.(check bool) "optimal" true (out.Lp.Branch_bound.status = Lp.Branch_bound.Optimal);
  match out.Lp.Branch_bound.best with
  | Some sol -> check_float "objective" 20. sol.Lp.Simplex.objective
  | None -> Alcotest.fail "no incumbent"

let test_integer_rounding_matters () =
  (* max x st 2x <= 5, x integer -> 2 (LP gives 2.5). *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~kind:Lp.Problem.Integer ~ub:10. "x" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 2.) ]) Lp.Problem.Le 5.;
  Lp.Problem.set_objective p Lp.Problem.Maximize (Lp.Expr.term x);
  let out = Lp.Branch_bound.solve p in
  match out.Lp.Branch_bound.best with
  | Some sol -> check_float "objective" 2. sol.Lp.Simplex.objective
  | None -> Alcotest.fail "no incumbent"

let test_mip_infeasible () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.binary p "x" in
  let y = Lp.Problem.binary p "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 1.) ]) Lp.Problem.Ge 3.;
  Lp.Problem.set_objective p Lp.Problem.Minimize (Lp.Expr.term x);
  let out = Lp.Branch_bound.solve p in
  Alcotest.(check bool) "infeasible" true
    (out.Lp.Branch_bound.status = Lp.Branch_bound.Infeasible)

(* Exhaustive oracle over the integer grid. *)
let brute_force_mip ~n ~ubounds ~rows ~obj ~maximize =
  let best = ref None in
  let x = Array.make n 0 in
  let rec enumerate v =
    if v = n then begin
      let feasible =
        List.for_all
          (fun (coeffs, rel, rhs) ->
            let lhs = ref 0. in
            Array.iteri
              (fun i c -> lhs := !lhs +. (c *. float_of_int x.(i)))
              coeffs;
            match rel with
            | Lp.Problem.Le -> !lhs <= rhs +. 1e-9
            | Lp.Problem.Ge -> !lhs >= rhs -. 1e-9
            | Lp.Problem.Eq -> abs_float (!lhs -. rhs) <= 1e-9)
          rows
      in
      if feasible then begin
        let value = ref 0. in
        Array.iteri (fun i c -> value := !value +. (c *. float_of_int x.(i))) obj;
        match !best with
        | None -> best := Some !value
        | Some b ->
            if (maximize && !value > b) || ((not maximize) && !value < b) then
              best := Some !value
      end
    end
    else
      for value = 0 to ubounds.(v) do
        x.(v) <- value;
        enumerate (v + 1)
      done
  in
  enumerate 0;
  !best

let random_mip_agrees_with_enumeration =
  QCheck.Test.make ~count:100 ~name:"branch&bound agrees with grid search"
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, n) ->
      let rng = Support.Rng.create ((seed * 31) + n) in
      let ubounds = Array.init n (fun _ -> Support.Rng.int_in rng 1 3) in
      let m = Support.Rng.int_in rng 1 3 in
      let rows =
        List.init m (fun _ ->
            let coeffs =
              Array.init n (fun _ -> float_of_int (Support.Rng.int_in rng (-3) 4))
            in
            let rhs = float_of_int (Support.Rng.int_in rng 0 8) in
            (coeffs, Lp.Problem.Le, rhs))
      in
      let obj =
        Array.init n (fun _ -> float_of_int (Support.Rng.int_in rng (-5) 5))
      in
      let maximize = Support.Rng.bool rng in
      let p = Lp.Problem.create () in
      let vars =
        Array.init n (fun v ->
            Lp.Problem.add_var p ~kind:Lp.Problem.Integer
              ~ub:(float_of_int ubounds.(v))
              (Printf.sprintf "x%d" v))
      in
      List.iter
        (fun (coeffs, rel, rhs) ->
          let expr =
            Lp.Expr.of_list (List.init n (fun v -> (vars.(v), coeffs.(v))))
          in
          Lp.Problem.add_constr p expr rel rhs)
        rows;
      Lp.Problem.set_objective p
        (if maximize then Lp.Problem.Maximize else Lp.Problem.Minimize)
        (Lp.Expr.of_list (List.init n (fun v -> (vars.(v), obj.(v)))));
      let out = Lp.Branch_bound.solve p in
      let expected = brute_force_mip ~n ~ubounds ~rows ~obj ~maximize in
      match (out.Lp.Branch_bound.best, expected) with
      | Some sol, Some best ->
          if abs_float (sol.Lp.Simplex.objective -. best) > 1e-6 then
            QCheck.Test.fail_reportf "bb %g, grid %g" sol.Lp.Simplex.objective
              best
          else true
      | None, None -> true
      | Some sol, None ->
          QCheck.Test.fail_reportf "bb found %g, grid infeasible"
            sol.Lp.Simplex.objective
      | None, Some best -> QCheck.Test.fail_reportf "bb none, grid %g" best)

(* Dual-simplex warm starts: a child solve from the parent basis must
   return bitwise the same objective as a cold two-phase solve, and a
   primal-feasible point, across random chains of child bound flips —
   the exact access pattern of {!Lp.Branch_bound}. Chains include
   degenerate children (a variable fixed, [lb = ub]) and infeasible
   children (both paths must agree on [Infeas]). 150 cases x up to 5
   flips each gives several hundred warm solves per run. *)
let random_warm_equals_cold =
  QCheck.Test.make ~count:150 ~name:"dual warm start bitwise equals cold"
    QCheck.(triple (int_bound 100_000) (int_range 2 5) (int_range 1 5))
    (fun (seed, n, m) ->
      let rng = Support.Rng.create (seed + (n * 7919) + (m * 104729)) in
      let lb = Array.init n (fun _ -> Support.Rng.float_in rng (-5.) 0.) in
      let ub = Array.init n (fun _ -> Support.Rng.float_in rng 0.5 6.) in
      let p = Lp.Problem.create () in
      let vars =
        Array.init n (fun v ->
            Lp.Problem.add_var p ~lb:lb.(v) ~ub:ub.(v) (Printf.sprintf "x%d" v))
      in
      for _ = 1 to m do
        let coeffs = Array.init n (fun _ -> Support.Rng.float_in rng (-3.) 3.) in
        let rhs = Support.Rng.float_in rng (-4.) 8. in
        Lp.Problem.add_constr p
          (Lp.Expr.of_list (List.init n (fun v -> (vars.(v), coeffs.(v)))))
          Lp.Problem.Le rhs
      done;
      Lp.Problem.set_objective p
        (if Support.Rng.bool rng then Lp.Problem.Maximize
         else Lp.Problem.Minimize)
        (Lp.Expr.of_list
           (List.init n (fun v -> (vars.(v), Support.Rng.float_in rng (-2.) 2.))));
      match Lp.Simplex.solve_detailed p with
      | Lp.Simplex.Infeas | Lp.Simplex.Unbound -> true (* no root, no children *)
      | Lp.Simplex.Opt root ->
          let basis = ref root.Lp.Simplex.sbasis in
          (try
             for _ = 1 to 5 do
               let v = Support.Rng.int_in rng 0 (n - 1) in
               (match Support.Rng.int_in rng 0 3 with
               | 0 -> ub.(v) <- Support.Rng.float_in rng lb.(v) ub.(v)
               | 1 -> lb.(v) <- Support.Rng.float_in rng lb.(v) ub.(v)
               | 2 ->
                   (* Degenerate child: the variable is fixed. *)
                   let x = Support.Rng.float_in rng lb.(v) ub.(v) in
                   lb.(v) <- x;
                   ub.(v) <- x
               | _ ->
                   (* Aggressive fixing at the box corner; with Ge-like
                      rows in the mix this is how children go infeasible. *)
                   ub.(v) <- lb.(v));
               let warm = Lp.Simplex.solve_detailed ~lb ~ub ~warm:!basis p in
               let cold = Lp.Simplex.solve_detailed ~lb ~ub p in
               match (warm, cold) with
               | Lp.Simplex.Opt w, Lp.Simplex.Opt c ->
                   let wo = w.Lp.Simplex.sol.Lp.Simplex.objective
                   and co = c.Lp.Simplex.sol.Lp.Simplex.objective in
                   (* Same final basis: the point is extracted from the
                      same factorization, so the answers must be bitwise
                      identical. Different (alternative-optimal) bases:
                      the objectives still agree to round-off. *)
                   if w.Lp.Simplex.sbasis = c.Lp.Simplex.sbasis then begin
                     if Int64.bits_of_float wo <> Int64.bits_of_float co then
                       QCheck.Test.fail_reportf
                         "same basis, warm objective %.17g /= cold %.17g" wo co
                   end
                   else if
                     abs_float (wo -. co)
                     > 1e-9 *. Float.max 1. (abs_float co)
                   then
                     QCheck.Test.fail_reportf
                       "warm objective %.17g far from cold %.17g" wo co;
                   (* Basis feasibility of the warm answer: inside the
                      child box (and hence the original problem box). *)
                   Array.iteri
                     (fun i x ->
                       if x < lb.(i) -. 1e-7 || x > ub.(i) +. 1e-7 then
                         QCheck.Test.fail_reportf
                           "warm x%d = %.17g outside [%g, %g]" i x lb.(i)
                           ub.(i))
                     w.Lp.Simplex.sol.Lp.Simplex.x;
                   (match
                      Lp.Problem.check_feasible p w.Lp.Simplex.sol.Lp.Simplex.x
                    with
                   | Ok () -> ()
                   | Error msg ->
                       QCheck.Test.fail_reportf "warm point infeasible: %s" msg);
                   basis := w.Lp.Simplex.sbasis
               | Lp.Simplex.Infeas, Lp.Simplex.Infeas -> raise Exit
               | Lp.Simplex.Unbound, Lp.Simplex.Unbound -> raise Exit
               | _ ->
                   QCheck.Test.fail_reportf
                     "warm/cold status mismatch after a bound flip"
             done
           with Exit -> ());
          true)

let solve_detailed_opt ?lb ?ub ?warm p =
  match Lp.Simplex.solve_detailed ?lb ?ub ?warm p with
  | Lp.Simplex.Opt s -> s
  | Lp.Simplex.Infeas -> Alcotest.fail "unexpected Infeas"
  | Lp.Simplex.Unbound -> Alcotest.fail "unexpected Unbound"

let test_warm_degenerate_child () =
  (* Fix a variable exactly at its fractional parent-optimal value: the
     parent basis is still optimal, the dual repair does zero pivots, and
     the answer must be bitwise the cold one. *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~lb:0. ~ub:4. "x" in
  let y = Lp.Problem.add_var p ~lb:0. ~ub:4. "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 2.); (y, 1.) ]) Lp.Problem.Le 5.;
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 3.) ]) Lp.Problem.Le 6.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Lp.Expr.of_list [ (x, 3.); (y, 2.) ]);
  let root = solve_detailed_opt p in
  let xv = root.Lp.Simplex.sol.Lp.Simplex.x.(0) in
  let lb = [| xv; 0. |] and ub = [| xv; 4. |] in
  let w = solve_detailed_opt ~lb ~ub ~warm:root.Lp.Simplex.sbasis p in
  let c = solve_detailed_opt ~lb ~ub p in
  Alcotest.(check bool)
    "degenerate child bitwise" true
    (Int64.bits_of_float w.Lp.Simplex.sol.Lp.Simplex.objective
    = Int64.bits_of_float c.Lp.Simplex.sol.Lp.Simplex.objective)

let test_warm_infeasible_child () =
  (* The child box contradicts a covering row: the dual phase must prove
     infeasibility exactly like the cold two-phase solve. *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~lb:0. ~ub:1. "x" in
  let y = Lp.Problem.add_var p ~lb:0. ~ub:1. "y" in
  (* x + y >= 1.5, written as -x - y <= -1.5. *)
  Lp.Problem.add_constr p
    (Lp.Expr.of_list [ (x, -1.); (y, -1.) ])
    Lp.Problem.Le (-1.5);
  Lp.Problem.set_objective p Lp.Problem.Minimize
    (Lp.Expr.of_list [ (x, 1.); (y, 2.) ]);
  let root = solve_detailed_opt p in
  let lb = [| 0.; 0. |] and ub = [| 0.25; 1. |] in
  (match Lp.Simplex.solve_detailed ~lb ~ub ~warm:root.Lp.Simplex.sbasis p with
  | Lp.Simplex.Infeas -> ()
  | Lp.Simplex.Opt _ | Lp.Simplex.Unbound ->
      Alcotest.fail "warm child not proven infeasible");
  match Lp.Simplex.solve_detailed ~lb ~ub p with
  | Lp.Simplex.Infeas -> ()
  | Lp.Simplex.Opt _ | Lp.Simplex.Unbound ->
      Alcotest.fail "cold child not proven infeasible"

let test_warm_start_and_gap () =
  (* Seeding with the optimum and allowing a generous gap must terminate
     immediately with that incumbent. *)
  let p = Lp.Problem.create () in
  let a = Lp.Problem.binary p "a" in
  let b = Lp.Problem.binary p "b" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (a, 2.); (b, 3.) ]) Lp.Problem.Le 4.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Lp.Expr.of_list [ (a, 5.); (b, 6.) ]);
  let warm = [| 1.; 0. |] in
  let options = { Lp.Branch_bound.default_options with rel_gap = 0.5 } in
  let out = Lp.Branch_bound.solve ~options ~warm_start:warm p in
  (match out.Lp.Branch_bound.best with
  | Some sol -> Alcotest.(check bool) "at least warm" true (sol.Lp.Simplex.objective >= 5. -. 1e-9)
  | None -> Alcotest.fail "no incumbent");
  Alcotest.(check bool) "gap achieved" true (out.Lp.Branch_bound.gap <= 0.5 +. 1e-9)

let test_boxed_flip () =
  (* Optimum requires a nonbasic variable to flip between its two finite
     bounds. *)
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~lb:1. ~ub:3. "x" in
  let y = Lp.Problem.add_var p ~lb:1. ~ub:3. "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 1.) ]) Lp.Problem.Le 5.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Lp.Expr.of_list [ (x, 1.); (y, 1.) ]);
  let sol = solve_opt p in
  check_float "objective" 5. sol.Lp.Simplex.objective

let test_negative_bounds () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~lb:(-5.) ~ub:(-1.) "x" in
  Lp.Problem.set_objective p Lp.Problem.Minimize (Lp.Expr.term x);
  let sol = solve_opt p in
  check_float "objective" (-5.) sol.Lp.Simplex.objective;
  Lp.Problem.set_objective p Lp.Problem.Maximize (Lp.Expr.term x);
  let sol = solve_opt p in
  check_float "objective" (-1.) sol.Lp.Simplex.objective

let test_check_feasible_reports () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.binary p "x" in
  Lp.Problem.add_constr p (Lp.Expr.term x) Lp.Problem.Le 0.5;
  (match Lp.Problem.check_feasible p [| 1. |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "violation not reported");
  (match Lp.Problem.check_feasible p [| 0.3 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-integrality not reported");
  match Lp.Problem.check_feasible p [| 0. |] with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "false violation: %s" msg

let test_node_limit () =
  (* A 20-item knapsack with a 1-node budget: must return quickly with a
     valid bound and status Feasible/Unknown, never Optimal by accident. *)
  let p = Lp.Problem.create () in
  let rng = Support.Rng.create 77 in
  let vars = Array.init 20 (fun i -> Lp.Problem.binary p (Printf.sprintf "x%d" i)) in
  let weights = Array.map (fun _ -> float_of_int (Support.Rng.int_in rng 1 9)) vars in
  let values = Array.map (fun _ -> float_of_int (Support.Rng.int_in rng 1 9)) vars in
  Lp.Problem.add_constr p
    (Lp.Expr.of_list (Array.to_list (Array.mapi (fun i v -> (v, weights.(i))) vars)))
    Lp.Problem.Le 30.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Lp.Expr.of_list (Array.to_list (Array.mapi (fun i v -> (v, values.(i))) vars)));
  let options = { Lp.Branch_bound.default_options with max_nodes = 1 } in
  let out = Lp.Branch_bound.solve ~options p in
  (match out.Lp.Branch_bound.status with
  | Lp.Branch_bound.Feasible | Lp.Branch_bound.Unknown
  | Lp.Branch_bound.Optimal (* possible if the root LP is integral *) -> ()
  | _ -> Alcotest.fail "unexpected status");
  (match out.Lp.Branch_bound.best with
  | Some sol ->
      Alcotest.(check bool) "bound dominates incumbent" true
        (out.Lp.Branch_bound.bound >= sol.Lp.Simplex.objective -. 1e-9)
  | None -> ())

let test_warm_start_out_of_bounds_ignored () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.binary p "x" in
  Lp.Problem.set_objective p Lp.Problem.Maximize (Lp.Expr.term x);
  (* Warm start proposing x = 7 is out of bounds: must be ignored, not
     crash, and the solver still finds the optimum. *)
  let out = Lp.Branch_bound.solve ~warm_start:[| 7. |] p in
  match out.Lp.Branch_bound.best with
  | Some sol -> check_float "objective" 1. sol.Lp.Simplex.objective
  | None -> Alcotest.fail "no incumbent"

let test_problem_pp () =
  let p = Lp.Problem.create ~name:"demo" () in
  let x = Lp.Problem.add_var p "speed" in
  Lp.Problem.add_constr p ~name:"cap" (Lp.Expr.term x) Lp.Problem.Le 3.;
  Lp.Problem.set_objective p Lp.Problem.Maximize (Lp.Expr.term x);
  let rendered = Format.asprintf "%a" Lp.Problem.pp p in
  let contains needle =
    let n = String.length needle and h = String.length rendered in
    let rec scan i = i + n <= h && (String.sub rendered i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions variable" true (contains "speed");
  Alcotest.(check bool) "mentions constraint" true (contains "cap")

let test_expr_algebra () =
  let e1 = Lp.Expr.of_list [ (0, 1.); (2, 2.); (0, 3.) ] in
  Alcotest.(check (float 0.)) "combined" 4. (Lp.Expr.coeff e1 0);
  let e2 = Lp.Expr.sub e1 (Lp.Expr.term ~coeff:2. 2) in
  Alcotest.(check (float 0.)) "cancelled" 0. (Lp.Expr.coeff e2 2);
  Alcotest.(check int) "terms" 1 (Lp.Expr.n_terms e2);
  let v = Lp.Expr.eval (fun v -> float_of_int v +. 1.) e1 in
  Alcotest.(check (float 1e-9)) "eval" 10. v

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic max" `Quick test_basic_max;
          Alcotest.test_case "min with ge" `Quick test_basic_min_with_ge;
          Alcotest.test_case "equalities" `Quick test_equality;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "bound override" `Quick test_bound_override;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "bound flip" `Quick test_boxed_flip;
          Alcotest.test_case "negative bounds" `Quick test_negative_bounds;
          qt random_lp_agrees_with_brute_force;
          Alcotest.test_case "warm degenerate child" `Quick
            test_warm_degenerate_child;
          Alcotest.test_case "warm infeasible child" `Quick
            test_warm_infeasible_child;
          qt random_warm_equals_cold;
        ] );
      ( "branch-bound",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "integer rounding" `Quick test_integer_rounding_matters;
          Alcotest.test_case "infeasible mip" `Quick test_mip_infeasible;
          Alcotest.test_case "warm start and gap" `Quick test_warm_start_and_gap;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          Alcotest.test_case "bad warm start ignored" `Quick test_warm_start_out_of_bounds_ignored;
          qt random_mip_agrees_with_enumeration;
        ] );
      ( "problem",
        [
          Alcotest.test_case "check_feasible" `Quick test_check_feasible_reports;
          Alcotest.test_case "pp" `Quick test_problem_pp;
        ] );
      ("expr", [ Alcotest.test_case "algebra" `Quick test_expr_algebra ]);
    ]
