(* Contention-hammer suite for the fleet-scale traffic layer
   (lib/service/shard + lib/service/workload).

   The claims pinned here are the ones the sharded cache is sold on:

   (a) replies are bitwise identical to a single cache for the same
       workload seed, at shard counts 1/2/4/8 and pool sizes 1/2/4;
   (b) hit + miss counters exactly equal the request count even when
       concurrent domains storm the map with duplicate fingerprints;
   (c) per-shard LRU budgets are never exceeded, probed mid-hammer
       through the [Shard.For_testing.with_shard] hook;
   (d) a flush killed mid-write leaves every shard file loadable, with
       [svc_cache_recovered_total] accounting for anything lost.

   Plus the workload generator's own contracts (determinism, zipf
   concentration, request-line round-trip) and the shard map's
   persistence migration + stale-file cleanup. *)

module G = Streaming.Graph
module Req = Service.Request
module Cache = Service.Cache
module Shard = Service.Shard
module Batch = Service.Batch
module Wl = Service.Workload
module Pool = Par.Pool

let counter_value name = Obs.Metrics.Counter.value (Obs.Metrics.counter name)

let with_metrics f =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was) f

let random_graph rng n =
  Daggen.Generator.generate ~rng
    ~shape:
      { Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.5;
        jump = 2 }
    ~costs:Daggen.Generator.default_costs

(* Shared small population: 4 graphs x 2 SPE counts x 1 cheap portfolio
   strategy = 8 distinct problems, small enough that the full
   shards-x-pools hammer matrix solves in seconds. *)
let graphs =
  let rng = Support.Rng.create 1905 in
  List.map (fun name -> (name, random_graph rng 6)) [ "gA"; "gB"; "gC"; "gD" ]

let spec ?(seed = 42) ?(requests = 120) ?(skew = 1.1) () =
  {
    Wl.seed;
    requests;
    skew;
    graphs;
    spes = [ 2; 4 ];
    strategies = [ Req.Portfolio { seed = 1234; restarts = 1 } ];
  }

let hex = "0123456789abcdef"
let random_fp rng = String.init 32 (fun _ -> hex.[Support.Rng.int rng 16])

let sample_entry ?(fp = String.make 32 'a') ?(period = 1.25e-3) () =
  {
    Cache.fingerprint = fp;
    strategy = "portfolio:seed=1,restarts=2";
    canonical_assignment = [| 0; 1; 2; 1 |];
    period;
    feasible = true;
    throughput = 1. /. period;
    bottleneck = "SPE1 interface (in)";
  }

(* ====================================================================== *)
(* Workload generator                                                     *)
(* ====================================================================== *)

let test_workload_determinism () =
  let s = spec () in
  let a = Wl.lines (Wl.generate s) in
  Alcotest.(check (list string)) "equal specs, byte-equal streams" a
    (Wl.lines (Wl.generate s));
  Alcotest.(check bool) "different seed, different stream" false
    (a = Wl.lines (Wl.generate { s with Wl.seed = 43 }));
  (* The seed permutes popularity ranks; it never changes which distinct
     problems exist. *)
  let fps s =
    Wl.population s |> Array.map Req.fingerprint |> Array.to_list
    |> List.sort compare
  in
  Alcotest.(check (list string)) "population is seed-permuted, not resampled"
    (fps s)
    (fps { s with Wl.seed = 43 });
  Alcotest.(check int) "population = graphs x spes x strategies" 8
    (Array.length (Wl.population s))

let test_workload_skew () =
  let hottest skew =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun r ->
        let fp = Req.fingerprint r in
        Hashtbl.replace tbl fp (1 + Option.value ~default:0 (Hashtbl.find_opt tbl fp)))
      (Wl.generate (spec ~requests:400 ~skew ()));
    Hashtbl.fold (fun _ n acc -> max n acc) tbl 0
  in
  Alcotest.(check bool) "higher skew concentrates traffic" true
    (hottest 1.6 > hottest 0.);
  (* A uniform 400-request stream over 8 problems touches all of them
     (deterministic seed, so this is a fixed fact, not a probability). *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun r -> Hashtbl.replace seen (Req.fingerprint r) ())
    (Wl.generate (spec ~requests:400 ~skew:0. ()));
  Alcotest.(check int) "uniform stream covers the population" 8
    (Hashtbl.length seen)

let test_workload_roundtrip () =
  (* Every rendered line must parse back onto the same fingerprint —
     that is what makes the CLI [workload] output a faithful replay of
     the in-process stream, for both strategy families. *)
  let s =
    {
      (spec ()) with
      Wl.strategies =
        [
          Req.Portfolio { seed = 7; restarts = 2 };
          Req.Bb { rel_gap = 0.05; max_nodes = 123 };
        ];
    }
  in
  let load_graph name = List.assoc name graphs in
  Array.iter
    (fun r ->
      let line = Wl.line r in
      match Req.parse_line ~load_graph 1 line with
      | Some back ->
          Alcotest.(check string)
            ("round-trip: " ^ line)
            (Req.fingerprint r) (Req.fingerprint back)
      | None -> Alcotest.failf "line did not parse: %s" line)
    (Wl.population s);
  (* A label that would corrupt the line grammar refuses loudly. *)
  let bad = { (Wl.population s).(0) with Req.label = "has space" } in
  (match Wl.line bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "token-unsafe label must refuse");
  (* [~ids] prefixes the daemon framing ids in arrival order. *)
  Wl.lines ~ids:true (Wl.generate (spec ~requests:3 ()))
  |> List.iteri (fun i l ->
         Alcotest.(check bool)
           (Printf.sprintf "id prefix on line %d" i)
           true
           (String.starts_with ~prefix:(Printf.sprintf "id=r%d " i) l))

let test_workload_split () =
  let stream = Wl.generate (spec ~requests:31 ()) in
  let parts = Wl.split ~domains:4 stream in
  Alcotest.(check int) "4 parts" 4 (Array.length parts);
  Alcotest.(check int) "no request lost" 31
    (Array.fold_left (fun acc p -> acc + Array.length p) 0 parts);
  Array.iteri
    (fun d part ->
      Array.iteri
        (fun j r ->
          Alcotest.(check string) "round-robin arrival order"
            (Req.fingerprint stream.(d + (4 * j)))
            (Req.fingerprint r))
        part)
    parts

(* ====================================================================== *)
(* Shard routing and budgets                                              *)
(* ====================================================================== *)

let test_routing () =
  let t = Shard.create ~shards:8 () in
  let rng = Support.Rng.create 99 in
  let counts = Array.make 8 0 in
  for _ = 1 to 2000 do
    let fp = random_fp rng in
    let i = Shard.shard_of_fingerprint t fp in
    if i < 0 || i >= 8 then Alcotest.failf "shard %d out of range" i;
    if i <> Shard.shard_of_fingerprint t fp then
      Alcotest.fail "routing must be a pure function of the fingerprint";
    counts.(i) <- counts.(i) + 1
  done;
  (* FNV-1a spreads even adversarially-similar keys; demand each shard
     get at least a quarter of its fair share of 2000 random digests. *)
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d gets traffic (%d)" i n)
        true
        (n > 2000 / 8 / 4))
    counts

let test_budget_split () =
  let t = Shard.create ~shards:4 ~max_entries:10 ~max_bytes:4096 () in
  Alcotest.(check int) "entry budget split (remainder dropped)" 2
    (Shard.per_shard_entries t);
  Alcotest.(check int) "byte budget split" 1024 (Shard.per_shard_bytes t);
  (* Degenerate split still leaves each shard able to hold something. *)
  let tiny = Shard.create ~shards:8 ~max_entries:4 () in
  Alcotest.(check int) "per-shard floor of one entry" 1
    (Shard.per_shard_entries tiny);
  List.iter
    (fun shards ->
      match Shard.create ~shards () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "shard count %d must refuse" shards)
    [ 0; -1; Shard.max_shards + 1 ]

(* ====================================================================== *)
(* (a) Bitwise identity across shard counts and pool sizes                *)
(* ====================================================================== *)

let render_all responses = String.concat "\n" (List.map Batch.render responses)

let serve_reference requests =
  render_all (Batch.run ~cache:(Cache.create ()) requests)

let serve_sharded ~shards ~pool_size requests =
  let shard = Shard.create ~shards ~max_entries:256 () in
  let view = Shard.view shard in
  if pool_size = 1 then render_all (Batch.run_view ~view requests)
  else
    let pool = Pool.create ~size:pool_size () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> render_all (Batch.run_view ~pool ~view requests))

let test_bitwise_grid () =
  (* The full published matrix: one zipfian stream, served through a
     single plain cache and through every shards x pool combination the
     issue names. Whole rendered transcripts compare byte-for-byte. *)
  let requests = Array.to_list (Wl.generate (spec ~requests:60 ())) in
  let reference = serve_reference requests in
  List.iter
    (fun shards ->
      List.iter
        (fun pool_size ->
          Alcotest.(check string)
            (Printf.sprintf "shards=%d pool=%d" shards pool_size)
            reference
            (serve_sharded ~shards ~pool_size requests))
        [ 1; 2; 4 ])
    [ 1; 2; 4; 8 ]

let bitwise_random_seeds =
  QCheck.Test.make ~count:5 ~name:"sharded = single cache (random seeds)"
    QCheck.(
      triple (int_bound 10_000) (oneofl [ 1; 2; 4; 8 ]) (oneofl [ 1; 2; 4 ]))
    (fun (seed, shards, pool_size) ->
      let requests =
        Array.to_list (Wl.generate (spec ~seed ~requests:40 ()))
      in
      String.equal (serve_reference requests)
        (serve_sharded ~shards ~pool_size requests))

(* ====================================================================== *)
(* (b) Counter conservation under a concurrent duplicate storm            *)
(* ====================================================================== *)

let test_counter_conservation () =
  with_metrics (fun () ->
      let stream = Wl.generate (spec ~requests:200 ~skew:1.3 ()) in
      let parts = Wl.split ~domains:4 stream in
      let shard = Shard.create ~shards:4 () in
      let view = Shard.view shard in
      let req0 = counter_value "svc_requests_total"
      and hit0 = counter_value "svc_hits_total"
      and miss0 = counter_value "svc_misses_total" in
      let domains =
        Array.map
          (fun part ->
            Domain.spawn (fun () -> Batch.run_view ~view (Array.to_list part)))
          parts
      in
      let responses = Array.to_list domains |> List.concat_map Domain.join in
      Alcotest.(check int) "every request classified exactly once" 200
        (counter_value "svc_requests_total" - req0);
      (* The conservation law: a request is a hit or a miss, never both,
         never neither — even when two domains race to solve the same
         fingerprint. *)
      Alcotest.(check int) "hits + misses = requests" 200
        (counter_value "svc_hits_total" - hit0
        + (counter_value "svc_misses_total" - miss0));
      Alcotest.(check int) "every reply delivered" 200 (List.length responses);
      (* Duplicate fingerprints must agree bitwise wherever they were
         answered: racing solves are deterministic, so the period bits
         are the same whichever domain's insert won. *)
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun r ->
          let bits = Int64.bits_of_float r.Batch.period in
          match Hashtbl.find_opt tbl r.Batch.fingerprint with
          | None -> Hashtbl.add tbl r.Batch.fingerprint bits
          | Some b ->
              if not (Int64.equal b bits) then
                Alcotest.failf "duplicate replies differ for %s"
                  r.Batch.fingerprint)
        responses)

(* ====================================================================== *)
(* (c) Per-shard budgets hold mid-hammer                                  *)
(* ====================================================================== *)

let test_budget_invariant_mid_hammer () =
  let shards = 4 in
  let t = Shard.create ~shards ~max_entries:16 ~max_bytes:8192 () in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  (* A dedicated prober races the writers, snapshotting each shard under
     its own lock: any moment the LRU bound is breached is caught, not
     just the post-hammer steady state. *)
  let prober =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          for i = 0 to shards - 1 do
            Shard.For_testing.with_shard t i (fun c ->
                if
                  Cache.length c > Cache.max_entries c
                  || Cache.bytes_used c > Cache.max_bytes c
                then Atomic.incr violations)
          done
        done)
  in
  let writers =
    Array.init 3 (fun d ->
        Domain.spawn (fun () ->
            let rng = Support.Rng.create (1000 + d) in
            for _ = 1 to 3000 do
              let fp = random_fp rng in
              Shard.add t (sample_entry ~fp ());
              ignore (Shard.find t fp)
            done))
  in
  Array.iter Domain.join writers;
  Atomic.set stop true;
  Domain.join prober;
  Alcotest.(check int) "no budget violation observed mid-hammer" 0
    (Atomic.get violations);
  Array.iteri
    (fun i (len, bytes) ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d within budget after the storm" i)
        true
        (len <= Shard.per_shard_entries t && bytes <= Shard.per_shard_bytes t))
    (Array.to_list (Shard.shard_stats t) |> Array.of_list);
  Alcotest.(check bool) "map total within the undivided budget" true
    (Shard.length t <= 16 && Shard.bytes_used t <= 8192)

(* ====================================================================== *)
(* (d) Crash-mid-flush recovery, migration, stale-file cleanup            *)
(* ====================================================================== *)

let temp_base () =
  let path = Filename.temp_file "cellshard" ".json" in
  Sys.remove path;
  path

let cleanup path =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (path :: Cache.temp_path path
    :: List.concat_map
         (fun i ->
           let s = Printf.sprintf "%s.shard%d" path i in
           [ s; Cache.temp_path s ])
         (List.init 16 Fun.id))

let populate t rng n =
  List.init n (fun i ->
      let fp = random_fp rng in
      Shard.add t (sample_entry ~fp ~period:(1e-3 +. (1e-5 *. float_of_int i)) ());
      fp)

let test_crash_recovery () =
  with_metrics (fun () ->
      let path = temp_base () in
      Fun.protect
        ~finally:(fun () ->
          Cache.For_testing.crash_after_bytes := None;
          cleanup path)
        (fun () ->
          let rng = Support.Rng.create 7 in
          let t = Shard.create ~shards:4 () in
          let fps = populate t rng 32 in
          (match Shard.save_files ~force:true t path with
          | Ok () -> ()
          | Error m -> Alcotest.failf "baseline save failed: %s" m);
          let snapshot i =
            In_channel.with_open_bin
              (Printf.sprintf "%s.shard%d" path i)
              In_channel.input_all
          in
          let before = List.init 4 snapshot in
          (* Kill the flush mid-write of the first shard file: the bytes
             go to a sibling temp file, no rename happens, and the save
             reports the failure instead of lying. *)
          ignore (populate t rng 4);
          Cache.For_testing.crash_after_bytes := Some 25;
          (match Shard.save_files ~force:true t path with
          | Ok () -> Alcotest.fail "crashed flush reported success"
          | Error _ -> ());
          Cache.For_testing.crash_after_bytes := None;
          List.iteri
            (fun i good ->
              Alcotest.(check string)
                (Printf.sprintf "shard %d file untouched by the crash" i)
                good (snapshot i))
            before;
          (* Every shard is loadable and the previous complete snapshot
             comes back whole — no recovery event, nothing was torn. *)
          let r0 = counter_value "svc_cache_recovered_total" in
          let back = Shard.load_files ~shards:4 path in
          Alcotest.(check int) "previous snapshot loads complete" 32
            (Shard.length back);
          Alcotest.(check int) "clean files, no recovery event" 0
            (counter_value "svc_cache_recovered_total" - r0);
          List.iter
            (fun fp ->
              if Shard.find back fp = None then
                Alcotest.failf "entry %s lost across the crash" fp)
            fps;
          (* Now actually corrupt one shard file (a torn disk, not a
             torn write): that shard recovers to empty and is counted;
             the other three load untouched. *)
          let victim = Printf.sprintf "%s.shard2" path in
          let good = In_channel.with_open_bin victim In_channel.input_all in
          Out_channel.with_open_bin victim (fun oc ->
              Out_channel.output_string oc
                (String.sub good 0 (String.length good / 2)));
          let lost =
            List.length
              (List.filter
                 (fun fp -> Shard.shard_of_fingerprint t fp = 2)
                 fps)
          in
          let r1 = counter_value "svc_cache_recovered_total" in
          let after = Shard.load_files ~shards:4 path in
          Alcotest.(check int) "exactly one recovery event" 1
            (counter_value "svc_cache_recovered_total" - r1);
          Alcotest.(check int) "only the corrupt shard's entries lost"
            (32 - lost) (Shard.length after);
          Alcotest.(check bool) "something was actually at stake" true
            (lost > 0)))

let test_migration_and_stale_cleanup () =
  let path = temp_base () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let rng = Support.Rng.create 11 in
      let t4 = Shard.create ~shards:4 () in
      let fps = populate t4 rng 20 in
      (match Shard.save_files ~force:true t4 path with
      | Ok () -> ()
      | Error m -> Alcotest.failf "save failed: %s" m);
      let exists i = Sys.file_exists (Printf.sprintf "%s.shard%d" path i) in
      List.iter
        (fun i ->
          Alcotest.(check bool) (Printf.sprintf "shard%d written" i) true
            (exists i))
        [ 0; 1; 2; 3 ];
      (* Shrink 4 -> 2: every entry re-routes by its own fingerprint. *)
      let t2 = Shard.load_files ~shards:2 path in
      Alcotest.(check int) "4 files load into 2 shards" 20 (Shard.length t2);
      List.iter
        (fun fp ->
          if Shard.find t2 fp = None then
            Alcotest.failf "entry %s lost in 4->2 migration" fp)
        fps;
      (match Shard.save_files ~force:true t2 path with
      | Ok () -> ()
      | Error m -> Alcotest.failf "2-shard save failed: %s" m);
      Alcotest.(check bool) "stale shard2/3 files removed" false
        (exists 2 || exists 3);
      (* Collapse to 1: the plain historical filename comes back and no
         .shardN file survives to shadow it. *)
      let t1 = Shard.load_files path in
      Alcotest.(check int) "2 files load into 1 shard" 20 (Shard.length t1);
      (match Shard.save_files ~force:true t1 path with
      | Ok () -> ()
      | Error m -> Alcotest.failf "1-shard save failed: %s" m);
      Alcotest.(check bool) "plain file written" true (Sys.file_exists path);
      Alcotest.(check bool) "no shard file shadows it" false
        (exists 0 || exists 1);
      (* Legacy single file into a freshly sharded daemon. *)
      let t8 = Shard.load_files ~shards:8 path in
      Alcotest.(check int) "legacy file loads into 8 shards" 20
        (Shard.length t8);
      List.iter
        (fun fp ->
          if Shard.find t8 fp = None then
            Alcotest.failf "entry %s lost in legacy migration" fp)
        fps)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "traffic"
    [
      ( "workload",
        [
          Alcotest.test_case "seeded determinism" `Quick
            test_workload_determinism;
          Alcotest.test_case "zipf skew concentrates" `Quick test_workload_skew;
          Alcotest.test_case "line round-trip" `Quick test_workload_roundtrip;
          Alcotest.test_case "round-robin split" `Quick test_workload_split;
        ] );
      ( "shard map",
        [
          Alcotest.test_case "routing: pure, in-range, spread" `Quick
            test_routing;
          Alcotest.test_case "budget split + validation" `Quick
            test_budget_split;
        ] );
      ( "hammer",
        [
          Alcotest.test_case "bitwise identity: shards x pools grid" `Quick
            test_bitwise_grid;
          qt bitwise_random_seeds;
          Alcotest.test_case "counter conservation under duplicate storm"
            `Quick test_counter_conservation;
          Alcotest.test_case "per-shard budgets hold mid-hammer" `Quick
            test_budget_invariant_mid_hammer;
        ] );
      ( "crash + migration",
        [
          Alcotest.test_case "kill mid-flush leaves every shard loadable"
            `Quick test_crash_recovery;
          Alcotest.test_case "shard-count migration + stale cleanup" `Quick
            test_migration_and_stale_cleanup;
        ] );
    ]
