examples/dual_cell.ml: Array Cell Cellsched Daggen List Printf Simulator Support
