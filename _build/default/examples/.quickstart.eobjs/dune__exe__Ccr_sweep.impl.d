examples/ccr_sweep.ml: Cell Cellsched Daggen List Printf Streaming Support
