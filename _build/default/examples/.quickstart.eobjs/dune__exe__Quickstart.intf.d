examples/quickstart.mli:
