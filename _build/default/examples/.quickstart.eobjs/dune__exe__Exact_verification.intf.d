examples/exact_verification.mli:
