examples/ccr_sweep.mli:
