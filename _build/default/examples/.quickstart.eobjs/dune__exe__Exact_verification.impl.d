examples/exact_verification.ml: Cell Cellsched Daggen Format Lp Printf Rational
