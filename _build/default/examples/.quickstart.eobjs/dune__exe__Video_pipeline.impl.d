examples/video_pipeline.ml: Cell Cellsched Format List Printf Simulator Streaming Support
