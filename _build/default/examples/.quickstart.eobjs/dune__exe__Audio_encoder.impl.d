examples/audio_encoder.ml: Cell Cellsched Daggen Format List Printf Simulator Streaming Support
