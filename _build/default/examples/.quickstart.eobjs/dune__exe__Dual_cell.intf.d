examples/dual_cell.mli:
