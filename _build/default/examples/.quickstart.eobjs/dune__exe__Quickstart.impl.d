examples/quickstart.ml: Cell Cellsched Format Simulator Streaming
