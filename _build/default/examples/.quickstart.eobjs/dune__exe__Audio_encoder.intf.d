examples/audio_encoder.mli:
