(* The paper's §7 future work: deploying on both Cells of an IBM QS22.

   This example maps the 94-task graph on one Cell, on a contention-free
   ("flat") dual-Cell model, and on the realistic model where cross-Cell
   traffic shares the coherent BIF interface — then prints an ASCII Gantt
   chart of the steady state on the realistic platform.

   Run with: dune exec examples/dual_cell.exe *)

let example_options =
  { Cellsched.Milp_solver.default_options with time_limit = 10. }

module SS = Cellsched.Steady_state

let () =
  let g = Daggen.Presets.random_graph_2 () in
  let platforms =
    [
      ("single Cell (QS22)", Cell.Platform.qs22 ());
      ("dual Cell, flat", Cell.Platform.qs22_dual ~flat:true ());
      ("dual Cell, BIF contention", Cell.Platform.qs22_dual ());
    ]
  in
  let table =
    Support.Table.create
      [ "platform"; "predicted/s"; "simulated/s"; "cross-cell kB/instance" ]
  in
  let keep = ref None in
  List.iter
    (fun (name, platform) ->
      let r = Cellsched.Milp_solver.solve ~options:example_options platform g in
      let mapping = r.Cellsched.Milp_solver.mapping in
      let l = SS.loads platform g mapping in
      let cross = Array.fold_left ( +. ) 0. l.SS.link_out /. 1024. in
      let metrics = Simulator.Runtime.run platform g mapping ~instances:3000 in
      if Cell.Platform.(platform.n_cells) > 1 then
        keep := Some (platform, mapping);
      Support.Table.add_row table
        [
          name;
          Printf.sprintf "%.1f" r.Cellsched.Milp_solver.throughput;
          Printf.sprintf "%.1f" metrics.Simulator.Runtime.steady_throughput;
          Printf.sprintf "%.1f" cross;
        ])
    platforms;
  Support.Table.print table;
  match !keep with
  | None -> ()
  | Some (platform, mapping) ->
      let trace = Simulator.Trace.create () in
      let metrics =
        Simulator.Runtime.run ~trace platform g mapping ~instances:500
      in
      let mid = metrics.Simulator.Runtime.makespan /. 2. in
      let span = metrics.Simulator.Runtime.makespan /. 100. in
      print_newline ();
      print_endline "steady-state window on the contended dual-Cell platform:";
      print_string
        (Simulator.Trace.gantt ~from_time:mid ~to_time:(mid +. span) platform
           trace)
