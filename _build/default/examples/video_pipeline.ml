(* A complex branching video pipeline in the style of the paper's Fig. 2(b):
   a decoder fans out to parallel analysis branches (motion estimation,
   color grading, sharpening) that are fused and re-encoded. Tasks carry
   peek to model motion estimation looking at future frames.

   The example shows how throughput degrades as frame payloads grow (the
   communication-to-computation ratio rises) and how the optimal mapping
   reacts by pulling tasks back onto the PPE — the paper's Fig. 8 story on
   a concrete application.

   Run with: dune exec examples/video_pipeline.exe *)

let example_options =
  { Cellsched.Milp_solver.default_options with time_limit = 10. }

module SS = Cellsched.Steady_state

let pipeline () =
  let b = Streaming.Graph.builder () in
  let task ?peek ?read_bytes ?write_bytes name w_ppe w_spe =
    Streaming.Graph.add_task b
      (Streaming.Task.make ?peek ?read_bytes ?write_bytes ~name
         ~w_ppe:(w_ppe *. 1e-3) ~w_spe:(w_spe *. 1e-3) ())
  in
  let frame = 8192. in
  let decode = task ~read_bytes:frame "decode" 1.8 2.6 in
  let luma = task "split_luma" 0.6 0.3 in
  let chroma = task "split_chroma" 0.6 0.3 in
  (* Motion estimation peeks two frames ahead. *)
  let motion = task ~peek:2 "motion_estimate" 4.0 1.6 in
  let grade = task "color_grade" 2.2 0.9 in
  let sharpen = task "sharpen" 1.8 0.7 in
  let denoise = task "denoise" 2.4 1.0 in
  let fuse = task "fuse" 1.2 1.5 in
  let encode = task ~peek:1 ~write_bytes:(frame /. 4.) "encode" 3.2 3.8 in
  let edge src dst bytes = Streaming.Graph.add_edge b ~src ~dst ~data_bytes:bytes in
  edge decode luma frame;
  edge decode chroma (frame /. 2.);
  edge luma motion (frame /. 2.);
  edge luma sharpen (frame /. 2.);
  edge chroma grade (frame /. 2.);
  edge chroma denoise (frame /. 4.);
  edge motion fuse (frame /. 8.);
  edge grade fuse (frame /. 2.);
  edge sharpen fuse (frame /. 2.);
  edge denoise fuse (frame /. 4.);
  edge fuse encode frame;
  edge decode encode (frame /. 8.);
  Streaming.Graph.build b

let () =
  let g0 = pipeline () in
  let platform = Cell.Platform.qs22 () in
  Format.printf "Video pipeline:@.%a@.@." Streaming.Graph.pp g0;
  Format.printf "base CCR: %.3f@.@." (Streaming.Ccr.compute g0);
  let table =
    Support.Table.create
      [ "CCR"; "LP predicted/s"; "LP simulated/s"; "speed-up"; "tasks on PPE" ]
  in
  let ccrs = [ 0.4; 0.775; 1.2; 1.9; 2.8; 4.6 ] in
  List.iter
    (fun ccr ->
      let g = Streaming.Ccr.scale_to g0 ~target:ccr in
      let r = Cellsched.Milp_solver.solve ~options:example_options platform g in
      let mapping = r.Cellsched.Milp_solver.mapping in
      let base = SS.throughput platform g (Cellsched.Heuristics.ppe_only platform g) in
      let simulated =
        (Simulator.Runtime.run platform g mapping ~instances:4000)
          .Simulator.Runtime.steady_throughput
      in
      let on_ppe = List.length (Cellsched.Mapping.tasks_on mapping 0) in
      Support.Table.add_row table
        [
          Printf.sprintf "%.3f" ccr;
          Printf.sprintf "%.1f" r.Cellsched.Milp_solver.throughput;
          Printf.sprintf "%.1f" simulated;
          Printf.sprintf "%.2f" (r.Cellsched.Milp_solver.throughput /. base);
          string_of_int on_ppe;
        ])
    ccrs;
  Support.Table.print table;
  print_endline
    "\nAs the CCR grows, buffers outgrow the SPE local stores and the\n\
     optimal mapping concentrates tasks on the PPE (paper section 6.4.3)."
