(* The "real audio encoder" of the paper's abstract: an MP2-style encoder
   (framer, polyphase filterbank, psychoacoustic model with one frame of
   look-ahead, bit allocation, quantizers, bitstream packer).

   The example compares every mapping strategy on this application, prints
   where the winning mapping places each stage, and verifies the prediction
   in the simulator.

   Run with: dune exec examples/audio_encoder.exe *)

let example_options =
  { Cellsched.Milp_solver.default_options with time_limit = 10. }

module SS = Cellsched.Steady_state

let () =
  let graph = Daggen.Presets.audio_encoder () in
  let platform = Cell.Platform.qs22 () in
  Format.printf "MP2-style audio encoder:@.%a@.@." Streaming.Graph.pp graph;

  (* Every strategy, predicted and simulated. *)
  let strategies =
    Cellsched.Heuristics.standard_candidates ~with_lp:true platform graph
    @ [
        ( "milp",
          (Cellsched.Milp_solver.solve ~options:example_options platform graph).Cellsched.Milp_solver.mapping );
      ]
  in
  let table =
    Support.Table.create
      [ "strategy"; "feasible"; "predicted/s"; "simulated/s"; "speed-up" ]
  in
  let base =
    SS.throughput platform graph (Cellsched.Heuristics.ppe_only platform graph)
  in
  let best = ref None in
  List.iter
    (fun (name, mapping) ->
      let feasible = SS.feasible platform graph mapping in
      let predicted = SS.throughput platform graph mapping in
      let simulated =
        if
          (* DMA-model violations still run; only local-store overflow
             cannot. *)
          List.for_all
            (function SS.Memory _ -> false | _ -> true)
            (SS.violations platform graph mapping)
        then
          (Simulator.Runtime.run platform graph mapping ~instances:4000)
            .Simulator.Runtime.steady_throughput
        else nan
      in
      if feasible then begin
        match !best with
        | Some (_, _, p) when p >= predicted -> ()
        | _ -> best := Some (name, mapping, predicted)
      end;
      Support.Table.add_row table
        [
          name;
          string_of_bool feasible;
          Printf.sprintf "%.1f" predicted;
          Printf.sprintf "%.1f" simulated;
          Printf.sprintf "%.2f" (predicted /. base);
        ])
    strategies;
  Support.Table.print table;
  match !best with
  | None -> print_endline "no feasible mapping found (unexpected)"
  | Some (name, mapping, _) ->
      Format.printf "@.best mapping (%s):@.%a@." name
        (Cellsched.Mapping.pp platform graph)
        mapping
