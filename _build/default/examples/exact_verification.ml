(* Exact certification of solver output.

   The simplex and the mapping search run in floating point; this example
   shows how to certify their answers in exact rational arithmetic: build
   the paper's MILP for an application, encode the computed mapping as a
   full assignment, and verify every constraint with no floating-point
   summation at all (floats are dyadic rationals, so the check is exact).

   Run with: dune exec examples/exact_verification.exe *)

let example_options =
  { Cellsched.Milp_solver.default_options with time_limit = 10. }

module Q = Rational.Rat

let () =
  let graph = Daggen.Presets.audio_encoder () in
  let platform = Cell.Platform.qs22 () in
  let result = Cellsched.Milp_solver.solve ~options:example_options platform graph in
  Format.printf "mapping found: period %.6f s (throughput %.1f inst/s)@."
    result.Cellsched.Milp_solver.period result.Cellsched.Milp_solver.throughput;

  (* Certify against the paper's own (1a)-(1k) formulation. *)
  let formulation = Cellsched.Milp_formulation.build_full platform graph in
  let assignment =
    formulation.Cellsched.Milp_formulation.encode
      result.Cellsched.Milp_solver.mapping
  in
  let report =
    Lp.Certify.analyze formulation.Cellsched.Milp_formulation.problem assignment
  in
  Format.printf "exact worst violation: %s%s@."
    (Q.to_string report.Lp.Certify.max_violation)
    (match report.Lp.Certify.worst with
    | Some name -> " (row " ^ name ^ ")"
    | None -> "");
  Format.printf "exact objective (period): %s s@."
    (Q.to_string report.Lp.Certify.objective);
  Format.printf "all binaries exactly integral: %b@." report.Lp.Certify.integral;
  match
    Lp.Certify.check formulation.Cellsched.Milp_formulation.problem assignment
  with
  | Ok () ->
      print_endline
        "certified: the mapping satisfies constraints (1a)-(1k) within 1e-6, \
         exactly."
  | Error msg -> Printf.printf "certification FAILED: %s\n" msg
