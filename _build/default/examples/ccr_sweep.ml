(* Small-scale reproduction of the paper's Fig. 8 on one graph: the
   speed-up of the LP mapping as a function of the CCR, with all mapping
   strategies shown for comparison.

   Run with: dune exec examples/ccr_sweep.exe *)

let example_options =
  { Cellsched.Milp_solver.default_options with time_limit = 10. }

module SS = Cellsched.Steady_state

let () =
  let platform = Cell.Platform.qs22 () in
  let table =
    Support.Table.create
      [ "CCR"; "greedy-mem"; "greedy-cpu"; "density-pack"; "LP" ]
  in
  List.iter
    (fun ccr ->
      let g = Daggen.Presets.random_graph_1 ~ccr () in
      let base = SS.throughput platform g (Cellsched.Heuristics.ppe_only platform g) in
      let speedup m =
        if SS.feasible platform g m then SS.throughput platform g m /. base
        else nan
      in
      let lp = (Cellsched.Milp_solver.solve ~options:example_options platform g).Cellsched.Milp_solver.mapping in
      Support.Table.add_row table
        [
          Printf.sprintf "%.3f" ccr;
          Printf.sprintf "%.2f" (speedup (Cellsched.Heuristics.greedy_mem platform g));
          Printf.sprintf "%.2f" (speedup (Cellsched.Heuristics.greedy_cpu platform g));
          Printf.sprintf "%.2f" (speedup (Cellsched.Heuristics.density_pack platform g));
          Printf.sprintf "%.2f" (speedup lp);
        ])
    Streaming.Ccr.paper_ccrs;
  Support.Table.print table;
  print_endline
    "\nThe LP mapping dominates at every CCR and every strategy converges\n\
     to the PPE-only mapping as communication overwhelms the local stores."
