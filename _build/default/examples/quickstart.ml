(* Quickstart: the two-filter pipeline of the paper's Fig. 2(a), end to end.

   1. describe a streaming application as a task graph;
   2. model the Cell platform;
   3. compute a throughput-optimal mapping with the MILP solver;
   4. inspect the induced periodic schedule;
   5. run the stream in the simulator and compare with the prediction.

   Run with: dune exec examples/quickstart.exe *)

let example_options =
  { Cellsched.Milp_solver.default_options with time_limit = 10. }

let () =
  (* A video stream passes through two filters. Costs are seconds per
     instance; filters vectorize well, so they are faster on SPEs. *)
  let filter1 =
    Streaming.Task.make ~name:"filter1" ~w_ppe:2.5e-3 ~w_spe:1.2e-3
      ~read_bytes:16384. ()
  in
  let filter2 =
    Streaming.Task.make ~name:"filter2" ~w_ppe:2.5e-3 ~w_spe:1.2e-3
      ~write_bytes:16384. ()
  in
  let graph = Streaming.Graph.chain [| filter1; filter2 |] ~data_bytes:16384. in
  Format.printf "Application:@.%a@.@." Streaming.Graph.pp graph;

  (* A single Cell processor as found in the IBM QS22 (1 PPE + 8 SPEs). *)
  let platform = Cell.Platform.qs22 () in
  Format.printf "Platform:@.%a@.@." Cell.Platform.pp platform;

  (* Throughput-optimal mapping (paper Section 5). *)
  let result = Cellsched.Milp_solver.solve ~options:example_options platform graph in
  Format.printf "Optimal mapping:@.%a@."
    (Cellsched.Mapping.pp platform graph)
    result.Cellsched.Milp_solver.mapping;
  Format.printf "predicted period %.4f ms -> %.1f instances/s@.@."
    (result.Cellsched.Milp_solver.period *. 1e3)
    result.Cellsched.Milp_solver.throughput;

  (* The induced periodic schedule (paper Fig. 3). *)
  let schedule =
    Cellsched.Schedule.build platform graph result.Cellsched.Milp_solver.mapping
  in
  Format.printf "%a@."
    (fun ppf () -> Cellsched.Schedule.pp_period schedule graph platform 3 ppf ())
    ();

  (* Stream 5000 instances through the simulated Cell. *)
  let metrics =
    Simulator.Runtime.run platform graph result.Cellsched.Milp_solver.mapping
      ~instances:5000
  in
  Format.printf
    "@.simulated: %.1f instances/s steady state (%.1f%% of the prediction), \
     %d transfers, %.1f kB moved@."
    metrics.Simulator.Runtime.steady_throughput
    (100.
    *. metrics.Simulator.Runtime.steady_throughput
    /. result.Cellsched.Milp_solver.throughput)
    metrics.Simulator.Runtime.transfers
    (metrics.Simulator.Runtime.bytes_transferred /. 1024.)
