bench/experiments.ml: Analyze Array Bechamel Benchmark Cell Cellsched Daggen Float Hashtbl List Lp Measure Printf Simulator Staged Streaming Support Test Time Toolkit
