bench/main.mli:
