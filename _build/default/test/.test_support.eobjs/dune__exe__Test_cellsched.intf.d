test/test_cellsched.mli:
