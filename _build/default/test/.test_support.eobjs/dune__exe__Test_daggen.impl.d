test/test_daggen.ml: Alcotest Array Daggen Fun List Printf QCheck QCheck_alcotest Streaming String Support
