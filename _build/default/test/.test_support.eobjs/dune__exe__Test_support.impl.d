test/test_support.ml: Alcotest Array Float Fun Int List QCheck QCheck_alcotest Support
