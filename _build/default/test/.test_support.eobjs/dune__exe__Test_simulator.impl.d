test/test_simulator.ml: Alcotest Array Cell Cellsched Daggen List Printf QCheck QCheck_alcotest Simulator Streaming String Support
