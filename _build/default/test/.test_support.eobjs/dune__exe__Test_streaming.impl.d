test/test_streaming.ml: Alcotest Array Cell Cellsched Daggen Filename Format Fun In_channel List QCheck QCheck_alcotest Streaming String Support Sys
