test/test_cell.ml: Alcotest Cell List
