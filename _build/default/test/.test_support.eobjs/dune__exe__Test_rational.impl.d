test/test_rational.ml: Alcotest Array Float Gen List Lp Printf QCheck QCheck_alcotest Rational Support
