test/test_integration.ml: Alcotest Array Cell Cellsched Daggen Float List Lp QCheck QCheck_alcotest Simulator Streaming Support
