test/test_lp.ml: Alcotest Array Format List Lp Printf QCheck QCheck_alcotest String Support
