test/test_cellsched.ml: Alcotest Array Cell Cellsched Daggen Float Format List Lp Printf QCheck QCheck_alcotest Streaming String Support
