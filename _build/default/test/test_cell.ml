(* Tests for the Cell platform model. *)

module P = Cell.Platform

let test_qs22 () =
  let p = P.qs22 () in
  Alcotest.(check int) "pes" 9 (P.n_pes p);
  Alcotest.(check int) "ppes" 1 (List.length (P.ppes p));
  Alcotest.(check int) "spes" 8 (List.length (P.spes p));
  Alcotest.(check bool) "pe0 is ppe" true (P.is_ppe p 0);
  Alcotest.(check bool) "pe1 is spe" true (P.is_spe p 1);
  Alcotest.(check string) "ppe name" "PPE0" (P.pe_name p 0);
  Alcotest.(check string) "spe name" "SPE0" (P.pe_name p 1);
  Alcotest.(check int) "memory budget" ((256 - 64) * 1024) (P.spe_memory_budget p);
  Alcotest.(check int) "dma in" 16 p.P.max_dma_in;
  Alcotest.(check int) "dma to ppe" 8 p.P.max_dma_to_ppe

let test_ps3 () =
  let p = P.ps3 () in
  Alcotest.(check int) "six spes" 6 (List.length (P.spes p));
  Alcotest.(check bool) "seven rejected" true
    (try
       ignore (P.ps3 ~n_spe:7 ());
       false
     with Invalid_argument _ -> true)

let test_dual () =
  let p = P.qs22_dual () in
  Alcotest.(check int) "two ppes" 2 (List.length (P.ppes p));
  Alcotest.(check int) "sixteen spes" 16 (List.length (P.spes p));
  Alcotest.(check (list int)) "spe indices start after ppes" [ 2; 3 ]
    (List.filteri (fun i _ -> i < 2) (P.spes p));
  Alcotest.(check int) "two cells" 2 p.P.n_cells;
  (* Partition: PPE0 and SPE0-7 on cell 0; PPE1 and SPE8-15 on cell 1. *)
  Alcotest.(check int) "ppe0 cell" 0 (P.cell_of p 0);
  Alcotest.(check int) "ppe1 cell" 1 (P.cell_of p 1);
  Alcotest.(check int) "spe0 cell" 0 (P.cell_of p 2);
  Alcotest.(check int) "spe7 cell" 0 (P.cell_of p 9);
  Alcotest.(check int) "spe8 cell" 1 (P.cell_of p 10);
  Alcotest.(check int) "spe15 cell" 1 (P.cell_of p 17);
  let flat = P.qs22_dual ~flat:true () in
  Alcotest.(check int) "flat has one cell" 1 flat.P.n_cells;
  Alcotest.(check bool) "uneven partition rejected" true
    (try
       ignore (P.make ~n_ppe:1 ~n_spe:8 ~n_cells:2 ());
       false
     with Invalid_argument _ -> true)

let test_validation () =
  let rejected f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "no ppe" true (rejected (fun () -> P.make ~n_ppe:0 ()));
  Alcotest.(check bool) "negative spe" true
    (rejected (fun () -> P.make ~n_spe:(-1) ()));
  Alcotest.(check bool) "zero bw" true (rejected (fun () -> P.make ~bw:0. ()));
  Alcotest.(check bool) "code > store" true
    (rejected (fun () -> P.make ~local_store:1024 ~code_size:2048 ()));
  Alcotest.(check bool) "bad speedup" true
    (rejected (fun () -> P.make ~ppe_speedup:0. ()));
  Alcotest.(check bool) "pe index" true
    (rejected (fun () -> P.pe_class (P.qs22 ()) 9))

let test_nine_spes_rejected () =
  Alcotest.(check bool) "nine" true
    (try
       ignore (P.qs22 ~n_spe:9 ());
       false
     with Invalid_argument _ -> true)

let test_zero_spe_platform () =
  let p = P.qs22 ~n_spe:0 () in
  Alcotest.(check int) "one pe" 1 (P.n_pes p);
  Alcotest.(check (list int)) "no spes" [] (P.spes p)

let () =
  Alcotest.run "cell"
    [
      ( "platform",
        [
          Alcotest.test_case "qs22" `Quick test_qs22;
          Alcotest.test_case "ps3" `Quick test_ps3;
          Alcotest.test_case "dual" `Quick test_dual;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "nine spes rejected" `Quick test_nine_spes_rejected;
          Alcotest.test_case "zero-spe platform" `Quick test_zero_spe_platform;
        ] );
    ]
