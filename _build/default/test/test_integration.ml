(* End-to-end integration properties across the whole stack: random
   applications flow through generation, serialization, every mapping
   strategy, the MILP solver, the schedule view and the simulator, with a
   battery of cross-module invariants checked at each step. *)

module P = Cell.Platform
module G = Streaming.Graph
module SS = Cellsched.Steady_state

let random_setup seed =
  let rng = Support.Rng.create seed in
  let n = 4 + Support.Rng.int rng 16 in
  let shape =
    {
      Daggen.Generator.n;
      fat = 0.3 +. Support.Rng.float rng 0.8;
      density = 0.2 +. Support.Rng.float rng 0.5;
      regularity = 0.5;
      jump = 1 + Support.Rng.int rng 2;
    }
  in
  let g = Daggen.Generator.generate ~rng ~shape ~costs:Daggen.Generator.default_costs in
  let ccr = 0.4 +. Support.Rng.float rng 2.0 in
  let g = Streaming.Ccr.scale_to g ~target:ccr in
  let n_spe = 1 + Support.Rng.int rng 6 in
  (g, P.qs22 ~n_spe ())

let full_stack =
  QCheck.Test.make ~count:15 ~name:"full stack invariants on random apps"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g, platform = random_setup seed in
      (* 1. Serialization round-trips. *)
      let s = Streaming.Serialize.to_string g in
      if Streaming.Serialize.to_string (Streaming.Serialize.of_string s) <> s
      then QCheck.Test.fail_reportf "serialize roundtrip broke"
      else begin
        (* 2. Solver beats (or ties) every feasible heuristic. *)
        let options =
          { Cellsched.Milp_solver.default_options with time_limit = 5. }
        in
        let r = Cellsched.Milp_solver.solve ~options platform g in
        let solver_period = r.Cellsched.Milp_solver.period in
        let heuristic_ok =
          List.for_all
            (fun (name, m) ->
              (not (SS.feasible platform g m))
              || solver_period
                 <= SS.period platform (SS.loads platform g m) +. 1e-9
              ||
              (QCheck.Test.fail_reportf "solver (%g) worse than %s" solver_period name))
            (Cellsched.Heuristics.standard_candidates ~with_lp:false platform g)
        in
        (* 3. The solver's bound is consistent. *)
        if r.Cellsched.Milp_solver.lower_bound > solver_period +. 1e-9 then
          QCheck.Test.fail_reportf "bound above the incumbent"
        else if not (SS.feasible platform g r.Cellsched.Milp_solver.mapping) then
          QCheck.Test.fail_reportf "solver mapping infeasible"
        else begin
          (* 4. Simulation completes and respects the analytic bound. *)
          let metrics =
            Simulator.Runtime.run platform g r.Cellsched.Milp_solver.mapping
              ~instances:400
          in
          if metrics.Simulator.Runtime.instances <> 400 then
            QCheck.Test.fail_reportf "simulation incomplete"
          else if
            metrics.Simulator.Runtime.steady_throughput
            > (1.02 *. r.Cellsched.Milp_solver.throughput) +. 1e-9
          then
            QCheck.Test.fail_reportf "simulated %g beats the bound %g"
              metrics.Simulator.Runtime.steady_throughput
              r.Cellsched.Milp_solver.throughput
          else begin
            (* 5. Schedule view consistent with the analysis. *)
            let sched =
              Cellsched.Schedule.build platform g r.Cellsched.Milp_solver.mapping
            in
            let warm = Cellsched.Schedule.warmup_periods sched in
            let acts = Cellsched.Schedule.activities sched warm in
            if List.length acts <> G.n_tasks g then
              QCheck.Test.fail_reportf "not all tasks active after warmup"
            else heuristic_ok
          end
        end
      end)

let multi_cell_stack =
  QCheck.Test.make ~count:8 ~name:"dual-cell invariants on random apps"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g, _ = random_setup (seed + 31) in
      let platform = P.qs22_dual () in
      let options =
        { Cellsched.Milp_solver.default_options with time_limit = 5. }
      in
      let r = Cellsched.Milp_solver.solve ~options platform g in
      let m = r.Cellsched.Milp_solver.mapping in
      if not (SS.feasible platform g m) then
        QCheck.Test.fail_reportf "dual-cell mapping infeasible"
      else begin
        (* The analytic period accounts for link traffic exactly. *)
        let l = SS.loads platform g m in
        let link_t =
          Float.max
            (Float.max l.SS.link_out.(0) l.SS.link_out.(1)
            /. platform.P.inter_cell_bw)
            (Float.max l.SS.link_in.(0) l.SS.link_in.(1)
            /. platform.P.inter_cell_bw)
        in
        if SS.period platform l < link_t -. 1e-12 then
          QCheck.Test.fail_reportf "period below the link time"
        else begin
          let metrics = Simulator.Runtime.run platform g m ~instances:300 in
          metrics.Simulator.Runtime.instances = 300
          && metrics.Simulator.Runtime.steady_throughput
             <= (1.02 /. SS.period platform l) +. 1e-9
        end
      end)

let exact_certification_end_to_end =
  QCheck.Test.make ~count:8 ~name:"solver mappings certify exactly vs the MILP"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g, platform = random_setup (seed + 77) in
      let options =
        { Cellsched.Milp_solver.default_options with time_limit = 5. }
      in
      let r = Cellsched.Milp_solver.solve ~options platform g in
      let f = Cellsched.Milp_formulation.build_compact platform g in
      let x = f.Cellsched.Milp_formulation.encode r.Cellsched.Milp_solver.mapping in
      match Lp.Certify.check f.Cellsched.Milp_formulation.problem x with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "certification failed: %s" msg)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "integration"
    [
      ( "stack",
        [ qt full_stack; qt multi_cell_stack; qt exact_certification_end_to_end ] );
    ]
