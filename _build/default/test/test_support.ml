(* Tests for the support library: PRNG, binary heap, table printer. *)

let test_rng_determinism () =
  let a = Support.Rng.create 7 and b = Support.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Support.Rng.int64 a) (Support.Rng.int64 b)
  done;
  let c = Support.Rng.create 8 in
  Alcotest.(check bool) "different seed differs" true
    (Support.Rng.int64 (Support.Rng.create 7) <> Support.Rng.int64 c)

let test_rng_copy () =
  let a = Support.Rng.create 42 in
  ignore (Support.Rng.int64 a);
  let b = Support.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Support.Rng.int64 a)
    (Support.Rng.int64 b)

let rng_int_in_range =
  QCheck.Test.make ~count:500 ~name:"Rng.int stays in range"
    QCheck.(pair (int_bound 10_000) (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let v = Support.Rng.int rng n in
      v >= 0 && v < n)

let rng_float_in_range =
  QCheck.Test.make ~count:500 ~name:"Rng.float_in stays in range"
    QCheck.(triple (int_bound 10_000) (float_bound_exclusive 100.) (float_bound_exclusive 100.))
    (fun (seed, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      QCheck.assume (hi > lo);
      let rng = Support.Rng.create seed in
      let v = Support.Rng.float_in rng lo hi in
      v >= lo && v < hi)

let test_rng_uniformity () =
  (* Coarse sanity: mean of 10_000 draws of int 10 should be close to 4.5. *)
  let rng = Support.Rng.create 99 in
  let sum = ref 0 in
  for _ = 1 to 10_000 do
    sum := !sum + Support.Rng.int rng 10
  done;
  let mean = float_of_int !sum /. 10_000. in
  Alcotest.(check bool) "mean near 4.5" true (mean > 4.3 && mean < 4.7)

let test_shuffle_is_permutation () =
  let rng = Support.Rng.create 5 in
  let a = Array.init 100 Fun.id in
  Support.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_rng_split_independence () =
  let a = Support.Rng.create 5 in
  let b = Support.Rng.split a in
  (* The split stream differs from the parent's continuation. *)
  let xs = List.init 20 (fun _ -> Support.Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Support.Rng.int64 b) in
  Alcotest.(check bool) "independent streams" true (xs <> ys)

let test_rng_choose () =
  let rng = Support.Rng.create 9 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (Array.mem (Support.Rng.choose rng a) a)
  done;
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Support.Rng.choose rng [||]);
       false
     with Invalid_argument _ -> true)

module Int_heap = Support.Binary_heap.Make (Int)

let test_heap_basic () =
  let h = Int_heap.create () in
  List.iter (Int_heap.add h) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check int) "min" 1 (Int_heap.min_elt h);
  Alcotest.(check int) "pop" 1 (Int_heap.pop_min h);
  Alcotest.(check int) "next" 3 (Int_heap.pop_min h);
  Alcotest.(check int) "length" 3 (Int_heap.length h)

let test_heap_empty () =
  let h = Int_heap.create () in
  Alcotest.check_raises "empty pop" Not_found (fun () ->
      ignore (Int_heap.pop_min h))

let heap_sorts =
  QCheck.Test.make ~count:200 ~name:"heap drains in sorted order"
    QCheck.(list int)
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.add h) xs;
      let drained = Int_heap.to_sorted_list h in
      drained = List.sort compare xs
      && Int_heap.length h = List.length xs (* non-destructive *))

let test_table () =
  let t = Support.Table.create [ "name"; "value" ] in
  Support.Table.add_row t [ "alpha"; "1" ];
  Support.Table.add_float_row t ~precision:2 "beta" [ 3.14159 ];
  let csv = Support.Table.to_csv t in
  Alcotest.(check string) "csv" "name,value\nalpha,1\nbeta,3.14" csv

let test_table_escaping () =
  let t = Support.Table.create [ "a" ] in
  Support.Table.add_row t [ "x,y" ];
  Alcotest.(check string) "escaped" "a\n\"x,y\"" (Support.Table.to_csv t)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "support"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "choose" `Quick test_rng_choose;
          qt rng_int_in_range;
          qt rng_float_in_range;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          qt heap_sorts;
        ] );
      ( "table",
        [
          Alcotest.test_case "csv" `Quick test_table;
          Alcotest.test_case "escaping" `Quick test_table_escaping;
        ] );
    ]
