(* Tests for the core contribution: mappings, steady-state analysis, MILP
   formulations and solvers, heuristics, NP-completeness reduction. *)

module P = Cell.Platform
module G = Streaming.Graph
module SS = Cellsched.Steady_state

let mk_task ?(peek = 0) ?(w_ppe = 1e-3) ?(w_spe = 2e-3) ?(read = 0.)
    ?(write = 0.) name =
  Streaming.Task.make ~name ~w_ppe ~w_spe ~peek ~read_bytes:read
    ~write_bytes:write ()

(* The paper's Figure 3 example: T1 -> T2 (D12), T1 -> T3 (D13),
   peek1 = peek2 = 0, peek3 = 1; T1 on PE1, T2 and T3 on PE2. *)
let figure3 () =
  let tasks =
    [| mk_task "T1"; mk_task "T2"; mk_task ~peek:1 "T3" |]
  in
  G.of_tasks tasks [ (0, 1, 1024.); (0, 2, 2048.) ]

let platform2 () = P.make ~n_ppe:1 ~n_spe:1 ()

(* --- mapping ------------------------------------------------------------ *)

let test_mapping_basics () =
  let g = figure3 () in
  let platform = platform2 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1; 1 |] in
  Alcotest.(check int) "pe of T1" 0 (Cellsched.Mapping.pe m 0);
  Alcotest.(check (list int)) "tasks on SPE0" [ 1; 2 ]
    (Cellsched.Mapping.tasks_on m 1);
  Alcotest.(check (list int)) "used" [ 0; 1 ] (Cellsched.Mapping.used_pes m);
  Alcotest.(check bool) "remote edge" true
    (Cellsched.Mapping.is_remote m (G.edge g 0));
  let m2 = Cellsched.Mapping.all_on_ppe platform g in
  Alcotest.(check bool) "local edge" false
    (Cellsched.Mapping.is_remote m2 (G.edge g 0))

let test_mapping_validation () =
  let g = figure3 () in
  let platform = platform2 () in
  Alcotest.check_raises "arity" (Invalid_argument "Mapping.make: arity mismatch with the graph")
    (fun () -> ignore (Cellsched.Mapping.make platform g [| 0; 1 |]));
  Alcotest.check_raises "range" (Invalid_argument "Mapping.make: PE index out of range")
    (fun () -> ignore (Cellsched.Mapping.make platform g [| 0; 1; 5 |]))

(* --- steady state ------------------------------------------------------- *)

let test_first_periods_figure3 () =
  let g = figure3 () in
  let fp = SS.first_periods g in
  (* Paper formula: fp(T1) = 0; fp(T2) = 0 + peek2 + 2 = 2;
     fp(T3) = 0 + peek3 + 2 = 3. (The prose of §4.2 quotes 4 for T3, but
     the displayed recurrence yields 3; we implement the recurrence.) *)
  Alcotest.(check (array int)) "first periods" [| 0; 2; 3 |] fp

let test_first_periods_with_mapping () =
  let g = figure3 () in
  let platform = platform2 () in
  (* All tasks on the same PE: the communication period disappears. *)
  let m = Cellsched.Mapping.all_on_ppe platform g in
  let fp = SS.first_periods ~mapping:m g in
  Alcotest.(check (array int)) "colocated" [| 0; 1; 2 |] fp

let test_buffer_sizes () =
  let g = figure3 () in
  let fp = SS.first_periods g in
  let buff = SS.buffer_sizes ~first_periods:fp g in
  Alcotest.(check (float 0.)) "buff 1->2" (1024. *. 2.) buff.(0);
  Alcotest.(check (float 0.)) "buff 1->3" (2048. *. 3.) buff.(1)

let test_loads_and_period () =
  let g = figure3 () in
  let platform = platform2 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1; 1 |] in
  let l = SS.loads platform g m in
  (* PPE0 computes T1 (w_ppe = 1 ms); SPE0 computes T2 and T3 (2 ms each). *)
  Alcotest.(check (float 1e-9)) "ppe compute" 1e-3 l.SS.compute.(0);
  Alcotest.(check (float 1e-9)) "spe compute" 4e-3 l.SS.compute.(1);
  (* Both edges are remote: 3 kB leave PPE0, 3 kB enter SPE0. *)
  Alcotest.(check (float 1e-9)) "ppe out" 3072. l.SS.bytes_out.(0);
  Alcotest.(check (float 1e-9)) "spe in" 3072. l.SS.bytes_in.(1);
  Alcotest.(check int) "spe dma in" 2 l.SS.dma_in.(1);
  (* SPE memory holds both in-buffers. *)
  Alcotest.(check (float 1e-9)) "spe memory" ((1024. *. 2.) +. (2048. *. 3.))
    l.SS.memory.(1);
  (* Compute dominates on this platform. *)
  Alcotest.(check (float 1e-12)) "period" 4e-3 (SS.period platform l);
  Alcotest.(check (float 1e-6)) "throughput" 250. (SS.throughput platform g m)

let test_memory_violation () =
  let big = 300. *. 1024. in
  let tasks = [| mk_task "a"; mk_task "b" |] in
  let g = G.of_tasks tasks [ (0, 1, big) ] in
  let platform = platform2 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  match SS.violations platform g m with
  | [ SS.Memory { pe = 1; _ } ] -> ()
  | v ->
      Alcotest.failf "expected a memory violation, got %d violations"
        (List.length v)

let test_dma_violations () =
  (* 17 producers on PPE feeding one SPE-hosted consumer: dma_in break. *)
  let producers = Array.init 17 (fun i -> mk_task (Printf.sprintf "p%d" i)) in
  let tasks = Array.append producers [| mk_task "sink" |] in
  let edges = List.init 17 (fun i -> (i, 17, 16.)) in
  let g = G.of_tasks tasks edges in
  let platform = platform2 () in
  let assignment = Array.make 18 0 in
  assignment.(17) <- 1;
  let m = Cellsched.Mapping.make platform g assignment in
  Alcotest.(check bool) "dma_in violated" true
    (List.exists (function SS.Dma_in _ -> true | _ -> false)
       (SS.violations platform g m));
  (* 9 SPE-hosted producers feeding PPE tasks: to-PPE break. *)
  let producers = Array.init 9 (fun i -> mk_task (Printf.sprintf "p%d" i)) in
  let consumers = Array.init 9 (fun i -> mk_task (Printf.sprintf "c%d" i)) in
  let g = G.of_tasks (Array.append producers consumers)
      (List.init 9 (fun i -> (i, 9 + i, 16.))) in
  let assignment = Array.init 18 (fun i -> if i < 9 then 1 else 0) in
  let m = Cellsched.Mapping.make platform g assignment in
  Alcotest.(check bool) "dma_to_ppe violated" true
    (List.exists (function SS.Dma_to_ppe _ -> true | _ -> false)
       (SS.violations platform g m))

let test_buffer_sharing_option () =
  let g = figure3 () in
  let platform = platform2 () in
  (* Everything on the SPE: colocated edges count once when sharing. *)
  let m = Cellsched.Mapping.all_on platform g 1 in
  let base = (SS.loads platform g m).SS.memory.(1) in
  let shared =
    (SS.loads ~share_colocated_buffers:true platform g m).SS.memory.(1)
  in
  Alcotest.(check (float 1e-9)) "sharing halves colocated buffers" (base /. 2.) shared

let test_tight_pipeline_option () =
  let g = figure3 () in
  let platform = platform2 () in
  let m = Cellsched.Mapping.all_on platform g 1 in
  let base = (SS.loads platform g m).SS.memory.(1) in
  let tight = (SS.loads ~tight_pipeline:true platform g m).SS.memory.(1) in
  Alcotest.(check bool) "tight pipeline shrinks buffers" true (tight < base)

let test_achieves () =
  let g = figure3 () in
  let platform = platform2 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1; 1 |] in
  Alcotest.(check bool) "achieves its throughput" true
    (SS.achieves platform g m (SS.throughput platform g m));
  Alcotest.(check bool) "not more" false
    (SS.achieves platform g m (SS.throughput platform g m *. 1.01))

let test_interface_bound_period () =
  (* Tiny bandwidth platform: communication dominates the period. *)
  let platform = P.make ~n_ppe:1 ~n_spe:1 ~bw:1024. () in
  let tasks = [| mk_task "a"; mk_task "b" |] in
  let g = G.of_tasks tasks [ (0, 1, 512.) ] in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  (* 512 B at 1 kB/s: 0.5 s per instance through each interface. *)
  Alcotest.(check (float 1e-9)) "comm-bound period" 0.5
    (SS.period platform (SS.loads platform g m))

let test_inter_cell_link () =
  (* Two tasks on different cells of a dual-Cell platform with a tiny BIF:
     the link dominates the period. *)
  let platform =
    P.make ~n_ppe:2 ~n_spe:2 ~n_cells:2 ~inter_cell_bw:1024. ()
  in
  let tasks = [| mk_task "a"; mk_task "b" |] in
  let g = G.of_tasks tasks [ (0, 1, 512.) ] in
  (* PE 0 = PPE0 (cell 0), PE 1 = PPE1 (cell 1). *)
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let l = SS.loads platform g m in
  Alcotest.(check (float 1e-9)) "link out of cell 0" 512. l.SS.link_out.(0);
  Alcotest.(check (float 1e-9)) "link into cell 1" 512. l.SS.link_in.(1);
  (* 512 B over a 1 kB/s link: 0.5 s, far above the compute times. *)
  Alcotest.(check (float 1e-9)) "link-bound period" 0.5 (SS.period platform l);
  (* Same-cell placement avoids the link entirely. *)
  let m2 = Cellsched.Mapping.make platform g [| 0; 2 |] in
  let l2 = SS.loads platform g m2 in
  Alcotest.(check (float 1e-9)) "no link traffic" 0. l2.SS.link_out.(0)

let test_milp_avoids_slow_link () =
  (* With a pathologically slow BIF, the solver must colocate the chain on
     one cell even when that unbalances compute. *)
  let platform =
    P.make ~n_ppe:2 ~n_spe:2 ~n_cells:2 ~inter_cell_bw:10. ()
  in
  let tasks =
    Array.init 4 (fun i -> mk_task ~w_ppe:1e-3 ~w_spe:1e-3 (Printf.sprintf "t%d" i))
  in
  let g = Streaming.Graph.chain tasks ~data_bytes:1000. in
  let options =
    { Cellsched.Milp_solver.default_options with rel_gap = 0.; engine = Cellsched.Milp_solver.Exact }
  in
  let r = Cellsched.Milp_solver.solve ~options platform g in
  let m = r.Cellsched.Milp_solver.mapping in
  let cells =
    List.sort_uniq compare
      (List.init 4 (fun k -> P.cell_of platform (Cellsched.Mapping.pe m k)))
  in
  Alcotest.(check (list int)) "single cell used" [ List.hd cells ] cells

(* --- heuristics ---------------------------------------------------------- *)

let qs8 () = P.qs22 ()

let test_heuristics_feasible_on_presets () =
  let platform = qs8 () in
  List.iter
    (fun (name, g) ->
      let gm = Cellsched.Heuristics.greedy_mem platform g in
      let gc = Cellsched.Heuristics.greedy_cpu platform g in
      let memory_ok m =
        List.for_all
          (function SS.Memory _ -> false | _ -> true)
          (SS.violations platform g m)
      in
      Alcotest.(check bool) (name ^ " greedy-mem memory ok") true (memory_ok gm);
      Alcotest.(check bool) (name ^ " greedy-cpu memory ok") true (memory_ok gc))
    (Daggen.Presets.all_random ())

let test_ppe_only_always_feasible () =
  let platform = qs8 () in
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) name true
        (SS.feasible platform g (Cellsched.Heuristics.ppe_only platform g)))
    (Daggen.Presets.all_random ())

let test_local_search_improves () =
  let platform = qs8 () in
  let g = Daggen.Presets.random_graph_1 () in
  let start = Cellsched.Heuristics.ppe_only platform g in
  let improved = Cellsched.Heuristics.local_search platform g start in
  Alcotest.(check bool) "feasible" true (SS.feasible platform g improved);
  Alcotest.(check bool) "no worse" true
    (SS.throughput platform g improved >= SS.throughput platform g start -. 1e-9)

(* --- MILP formulations and solvers --------------------------------------- *)

let small_random_graph seed n =
  let rng = Support.Rng.create seed in
  let shape =
    { Daggen.Generator.n; fat = 0.6; density = 0.5; regularity = 0.5; jump = 2 }
  in
  Daggen.Generator.generate ~rng ~shape ~costs:Daggen.Generator.default_costs

(* Brute force: enumerate all mappings of [g] on [platform], return the
   optimal feasible period. *)
let brute_force_period platform g =
  let n = P.n_pes platform in
  let nk = G.n_tasks g in
  let assignment = Array.make nk 0 in
  let best = ref infinity in
  let rec enumerate k =
    if k = nk then begin
      let m = Cellsched.Mapping.make platform g assignment in
      if SS.feasible platform g m then
        best := Float.min !best (SS.period platform (SS.loads platform g m))
    end
    else
      for pe = 0 to n - 1 do
        assignment.(k) <- pe;
        enumerate (k + 1)
      done
  in
  enumerate 0;
  !best

let exact_solver_matches_brute_force =
  QCheck.Test.make ~count:12 ~name:"exact MILP matches brute force"
    QCheck.(pair (int_bound 10_000) (int_range 3 7))
    (fun (seed, n) ->
      let platform = P.make ~n_ppe:1 ~n_spe:2 () in
      let g = small_random_graph seed n in
      let expected = brute_force_period platform g in
      let options =
        { Cellsched.Milp_solver.default_options with rel_gap = 0.; engine = Cellsched.Milp_solver.Exact }
      in
      let r = Cellsched.Milp_solver.solve ~options platform g in
      if abs_float (r.Cellsched.Milp_solver.period -. expected) > 1e-9 *. expected +. 1e-12 then
        QCheck.Test.fail_reportf "solver %g vs brute force %g"
          r.Cellsched.Milp_solver.period expected
      else true)

let search_solver_matches_brute_force =
  QCheck.Test.make ~count:12 ~name:"search engine matches brute force (gap 0)"
    QCheck.(pair (int_bound 10_000) (int_range 3 7))
    (fun (seed, n) ->
      let platform = P.make ~n_ppe:1 ~n_spe:2 () in
      let g = small_random_graph (seed + 500) n in
      let expected = brute_force_period platform g in
      let options =
        { Cellsched.Milp_solver.default_options with rel_gap = 0.; engine = Cellsched.Milp_solver.Search }
      in
      let r = Cellsched.Milp_solver.solve ~options platform g in
      if abs_float (r.Cellsched.Milp_solver.period -. expected) > 1e-9 *. expected +. 1e-12 then
        QCheck.Test.fail_reportf "search %g vs brute force %g"
          r.Cellsched.Milp_solver.period expected
      else true)

let formulations_agree =
  QCheck.Test.make ~count:8 ~name:"full and compact formulations have equal optima"
    QCheck.(pair (int_bound 10_000) (int_range 3 5))
    (fun (seed, n) ->
      let platform = P.make ~n_ppe:1 ~n_spe:1 () in
      let g = small_random_graph (seed + 900) n in
      let solve build =
        let f = build platform g in
        let outcome =
          Lp.Branch_bound.solve
            ~options:{ Lp.Branch_bound.default_options with rel_gap = 0. }
            f.Cellsched.Milp_formulation.problem
        in
        match outcome.Lp.Branch_bound.best with
        | Some sol -> Some sol.Lp.Simplex.objective
        | None -> None
      in
      let full = solve (Cellsched.Milp_formulation.build_full ?integral_beta:None ?share_colocated_buffers:None) in
      let compact = solve (Cellsched.Milp_formulation.build_compact ?share_colocated_buffers:None) in
      match (full, compact) with
      | Some a, Some b ->
          if abs_float (a -. b) > 1e-7 *. Float.max 1. (abs_float a) then
            QCheck.Test.fail_reportf "full %g vs compact %g" a b
          else true
      | None, None -> true
      | Some a, None -> QCheck.Test.fail_reportf "full %g, compact none" a
      | None, Some b -> QCheck.Test.fail_reportf "full none, compact %g" b)

let milp_beats_heuristics =
  QCheck.Test.make ~count:8 ~name:"MILP mapping at least as good as heuristics"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let platform = P.qs22 ~n_spe:4 () in
      let g = small_random_graph (seed + 1300) 12 in
      let r = Cellsched.Milp_solver.solve platform g in
      let heuristic_periods =
        List.filter_map
          (fun (_, m) ->
            if SS.feasible platform g m then
              Some (SS.period platform (SS.loads platform g m))
            else None)
          (Cellsched.Heuristics.standard_candidates ~with_lp:false platform g)
      in
      List.for_all
        (fun t -> r.Cellsched.Milp_solver.period <= t +. 1e-9)
        heuristic_periods
      && SS.feasible platform g r.Cellsched.Milp_solver.mapping
      && r.Cellsched.Milp_solver.lower_bound
         <= r.Cellsched.Milp_solver.period +. 1e-9)

let test_solver_on_paper_graph () =
  (* End-to-end on the real 50-task instance: terminates, feasible, beats
     every heuristic, and reports a consistent bound. *)
  let platform = qs8 () in
  let g = Daggen.Presets.random_graph_1 () in
  let options =
    { Cellsched.Milp_solver.default_options with time_limit = 10. }
  in
  let r = Cellsched.Milp_solver.solve ~options platform g in
  Alcotest.(check bool) "feasible" true
    (SS.feasible platform g r.Cellsched.Milp_solver.mapping);
  Alcotest.(check bool) "bound <= period" true
    (r.Cellsched.Milp_solver.lower_bound <= r.Cellsched.Milp_solver.period +. 1e-12);
  let gm = Cellsched.Heuristics.greedy_mem platform g in
  if SS.feasible platform g gm then
    Alcotest.(check bool) "beats greedy-mem" true
      (r.Cellsched.Milp_solver.throughput >= SS.throughput platform g gm -. 1e-9)

(* --- warm start / decode round trip -------------------------------------- *)

let warm_start_roundtrip =
  QCheck.Test.make ~count:20 ~name:"warm start encodes and decodes mappings"
    QCheck.(pair (int_bound 10_000) (int_range 2 8))
    (fun (seed, n) ->
      let platform = P.make ~n_ppe:1 ~n_spe:3 () in
      let g = small_random_graph (seed + 2100) n in
      let rng = Support.Rng.create seed in
      let m = Cellsched.Heuristics.random ~rng platform g in
      let f = Cellsched.Milp_formulation.build_compact platform g in
      let x = Cellsched.Milp_formulation.warm_start f platform g m in
      let m' = Cellsched.Milp_formulation.mapping_of_solution f platform g x in
      Cellsched.Mapping.equal m m')

let test_bottleneck () =
  let g = figure3 () in
  let platform = platform2 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1; 1 |] in
  (match SS.bottleneck platform (SS.loads platform g m) with
  | SS.Compute 1, t -> Alcotest.(check (float 1e-12)) "spe compute" 4e-3 t
  | r, _ ->
      Alcotest.failf "unexpected bottleneck: %s"
        (Format.asprintf "%a" (SS.pp_resource platform) r));
  (* Comm-bound variant. *)
  let tiny_bw = P.make ~n_ppe:1 ~n_spe:1 ~bw:1024. () in
  match SS.bottleneck tiny_bw (SS.loads tiny_bw g m) with
  | (SS.Interface_in _ | SS.Interface_out _), _ -> ()
  | r, _ ->
      Alcotest.failf "expected an interface bottleneck, got %s"
        (Format.asprintf "%a" (SS.pp_resource tiny_bw) r)

let test_ppe_speedup_scaling () =
  (* A 2x-faster PPE halves the PPE compute load. *)
  let g = figure3 () in
  let fast = P.make ~n_ppe:1 ~n_spe:1 ~ppe_speedup:2.0 () in
  let slow = platform2 () in
  let m = Cellsched.Mapping.all_on_ppe slow g in
  let lf = SS.loads fast g (Cellsched.Mapping.all_on_ppe fast g) in
  let ls = SS.loads slow g m in
  Alcotest.(check (float 1e-12)) "halved" (ls.SS.compute.(0) /. 2.) lf.SS.compute.(0)

let test_mapping_pp () =
  let g = figure3 () in
  let platform = platform2 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1; 1 |] in
  let rendered = Format.asprintf "%a" (Cellsched.Mapping.pp platform g) m in
  let contains needle =
    let n = String.length needle and h = String.length rendered in
    let rec scan i = i + n <= h && (String.sub rendered i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "shows PPE0" true (contains "PPE0: T1");
  Alcotest.(check bool) "shows SPE0" true (contains "SPE0: T2 T3")

let test_zero_spe_solver () =
  (* With no SPEs the only mapping is PPE-only, and the solver proves it. *)
  let platform = P.qs22 ~n_spe:0 () in
  let g = Daggen.Presets.figure_2b () in
  let r = Cellsched.Milp_solver.solve platform g in
  Alcotest.(check bool) "everything on ppe" true
    (Cellsched.Mapping.equal r.Cellsched.Milp_solver.mapping
       (Cellsched.Heuristics.ppe_only platform g));
  Alcotest.(check (float 1e-9)) "period is the ppe work"
    (Streaming.Graph.total_work g Cell.Platform.PPE)
    r.Cellsched.Milp_solver.period

let test_chain_dp_single_task () =
  let g = G.of_tasks [| mk_task "only" |] [] in
  let platform = platform2 () in
  Alcotest.(check bool) "single task is a chain" true (Cellsched.Chain_dp.is_chain g);
  match Cellsched.Chain_dp.solve platform g with
  | Some m -> Alcotest.(check bool) "feasible" true (SS.feasible platform g m)
  | None -> Alcotest.fail "unsolved"

(* --- chain interval DP ---------------------------------------------------- *)

let test_chain_dp_detects_chains () =
  let chain = Daggen.Presets.random_graph_3 () in
  Alcotest.(check bool) "chain detected" true (Cellsched.Chain_dp.is_chain chain);
  let dag = Daggen.Presets.figure_2b () in
  Alcotest.(check bool) "dag rejected" false (Cellsched.Chain_dp.is_chain dag);
  let platform = qs8 () in
  Alcotest.(check bool) "solve returns none on dags" true
    (Cellsched.Chain_dp.solve platform dag = None)

let test_chain_dp_feasible_and_strong () =
  let platform = qs8 () in
  let g = Daggen.Presets.random_graph_3 () in
  match Cellsched.Chain_dp.solve platform g with
  | None -> Alcotest.fail "chain not solved"
  | Some m ->
      Alcotest.(check bool) "feasible" true (SS.feasible platform g m);
      let thr = SS.throughput platform g m in
      let ppe = SS.throughput platform g (Cellsched.Heuristics.ppe_only platform g) in
      Alcotest.(check bool) "beats ppe-only" true (thr >= ppe -. 1e-9)

let chain_dp_never_beats_brute_force =
  QCheck.Test.make ~count:12 ~name:"interval DP is valid (>= global optimum period)"
    QCheck.(pair (int_bound 10_000) (int_range 2 7))
    (fun (seed, n) ->
      let rng = Support.Rng.create (seed + 7000) in
      let g =
        Daggen.Generator.generate_chain ~rng ~n ~costs:Daggen.Generator.default_costs
      in
      let platform = P.make ~n_ppe:1 ~n_spe:2 () in
      match Cellsched.Chain_dp.solve platform g with
      | None -> QCheck.Test.fail_reportf "chain not recognized"
      | Some m ->
          if not (SS.feasible platform g m) then
            QCheck.Test.fail_reportf "infeasible mapping"
          else begin
            let period = SS.period platform (SS.loads platform g m) in
            let optimum = brute_force_period platform g in
            (* Interval mappings are a restriction: never better than the
               global optimum, and never worse than PPE-only. *)
            let ppe_only =
              SS.period platform
                (SS.loads platform g (Cellsched.Heuristics.ppe_only platform g))
            in
            if period < optimum -. 1e-9 then
              QCheck.Test.fail_reportf "beats the optimum?! %g < %g" period optimum
            else if period > ppe_only +. 1e-9 then
              QCheck.Test.fail_reportf "worse than PPE-only: %g > %g" period ppe_only
            else true
          end)

let shared_solver_respects_shared_memory =
  QCheck.Test.make ~count:10
    ~name:"search with buffer sharing stays feasible under the shared model"
    QCheck.(int_bound 10_000)
    (fun seed ->
      (* Memory-tight platform so the sharing actually matters. *)
      let platform = P.make ~n_ppe:1 ~n_spe:3 ~local_store:(96 * 1024) () in
      let g = small_random_graph (seed + 6100) 14 in
      let options =
        {
          Cellsched.Milp_solver.default_options with
          time_limit = 3.;
          engine = Cellsched.Milp_solver.Search;
          share_colocated_buffers = true;
        }
      in
      let r = Cellsched.Milp_solver.solve ~options platform g in
      if
        not
          (SS.feasible ~share_colocated_buffers:true platform g
             r.Cellsched.Milp_solver.mapping)
      then QCheck.Test.fail_reportf "mapping overflows the shared-model budget"
      else begin
        (* The reported period must match the shared-model analysis. *)
        let t =
          SS.period platform
            (SS.loads ~share_colocated_buffers:true platform g
               r.Cellsched.Milp_solver.mapping)
        in
        abs_float (t -. r.Cellsched.Milp_solver.period) <= 1e-12 *. Float.max 1. t
      end)

let encoded_mappings_certify_exactly =
  QCheck.Test.make ~count:20
    ~name:"encoded mappings satisfy both MILPs (exact certification)"
    QCheck.(pair (int_bound 10_000) (int_range 2 8))
    (fun (seed, n) ->
      let platform = P.make ~n_ppe:1 ~n_spe:2 () in
      let g = small_random_graph (seed + 4200) n in
      let rng = Support.Rng.create (seed + 1) in
      (* A feasible mapping: fall back to PPE-only if the random one is
         infeasible. *)
      let m =
        let candidate = Cellsched.Heuristics.random ~rng platform g in
        if SS.feasible platform g candidate then candidate
        else Cellsched.Heuristics.ppe_only platform g
      in
      let check build label =
        let f = build platform g in
        let x = f.Cellsched.Milp_formulation.encode m in
        match Lp.Certify.check f.Cellsched.Milp_formulation.problem x with
        | Ok () -> true
        | Error msg -> QCheck.Test.fail_reportf "%s: %s" label msg
      in
      check
        (fun p g -> Cellsched.Milp_formulation.build_compact p g)
        "compact"
      && check
           (fun p g -> Cellsched.Milp_formulation.build_full p g)
           "full"
      && check
           (fun p g ->
             Cellsched.Milp_formulation.build_compact
               ~share_colocated_buffers:true p g)
           "compact+sharing")

(* Oracle: enumerate every mapping that places at most [n_spe] disjoint
   contiguous intervals of the chain on distinct SPEs (rest on the PPE) and
   return the minimal DP-model cost: max(PPE work, per-interval SPE work),
   with every interval's buffer footprint within the local store. *)
let interval_oracle platform g =
  let n = Streaming.Graph.n_tasks g in
  let order =
    (* Chain order = topological order for a chain. *)
    Streaming.Graph.topological_order g
  in
  let w_ppe k = (Streaming.Graph.task g k).Streaming.Task.w_ppe in
  let w_spe k = (Streaming.Graph.task g k).Streaming.Task.w_spe in
  let fp = SS.first_periods g in
  let buff = SS.buffer_sizes ~first_periods:fp g in
  let mem k =
    let sum = List.fold_left (fun acc e -> acc +. buff.(e)) 0. in
    sum (Streaming.Graph.out_edges g k) +. sum (Streaming.Graph.in_edges g k)
  in
  let budget = float_of_int (P.spe_memory_budget platform) in
  let n_spe = List.length (P.spes platform) in
  let best = ref infinity in
  (* intervals: list of (start, stop) inclusive positions, disjoint,
     increasing. Enumerate recursively. *)
  let rec enumerate from intervals count =
    (* Evaluate the current interval set. *)
    let on_spe = Array.make n false in
    let ok = ref true in
    let spe_max = ref 0. in
    List.iter
      (fun (a, b) ->
        let work = ref 0. and m = ref 0. in
        for pos = a to b do
          on_spe.(pos) <- true;
          work := !work +. w_spe order.(pos);
          m := !m +. mem order.(pos)
        done;
        if !m > budget +. 1e-9 then ok := false;
        spe_max := Float.max !spe_max !work)
      intervals;
    if !ok then begin
      let ppe = ref 0. in
      for pos = 0 to n - 1 do
        if not on_spe.(pos) then ppe := !ppe +. w_ppe order.(pos)
      done;
      best := Float.min !best (Float.max !ppe !spe_max)
    end;
    if count < n_spe then
      for a = from to n - 1 do
        for b = a to n - 1 do
          enumerate (b + 2) ((a, b) :: intervals) (count + 1)
        done
      done
  in
  enumerate 0 [] 0;
  !best

let chain_dp_matches_interval_oracle =
  QCheck.Test.make ~count:15 ~name:"chain DP is optimal among interval mappings"
    QCheck.(pair (int_bound 10_000) (int_range 2 6))
    (fun (seed, n) ->
      let rng = Support.Rng.create (seed + 8800) in
      let g =
        Daggen.Generator.generate_chain ~rng ~n ~costs:Daggen.Generator.default_costs
      in
      let platform = P.make ~n_ppe:1 ~n_spe:2 () in
      match Cellsched.Chain_dp.solve platform g with
      | None -> QCheck.Test.fail_reportf "chain not recognized"
      | Some m ->
          (* Cost of the DP's mapping under the DP model. *)
          let w k cls = Streaming.Task.w (Streaming.Graph.task g k) cls in
          let ppe = ref 0. and spe = Array.make (P.n_pes platform) 0. in
          for k = 0 to n - 1 do
            let pe = Cellsched.Mapping.pe m k in
            if P.is_ppe platform pe then ppe := !ppe +. w k Cell.Platform.PPE
            else spe.(pe) <- spe.(pe) +. w k Cell.Platform.SPE
          done;
          let cost = Array.fold_left Float.max !ppe spe in
          let oracle = interval_oracle platform g in
          if cost > oracle +. 1e-9 then
            QCheck.Test.fail_reportf "DP cost %g, interval oracle %g" cost oracle
          else true)

(* --- NP-completeness reduction ------------------------------------------ *)

let test_np_reduction_exhaustive () =
  (* All allocations of all small instances: the two feasibility notions
     coincide (Theorem 1). *)
  let rng = Support.Rng.create 11 in
  for _ = 1 to 40 do
    let n = 1 + Support.Rng.int rng 5 in
    let lengths =
      Array.init n (fun _ ->
          ( Support.Rng.float_in rng 0.1 2.0,
            Support.Rng.float_in rng 0.1 2.0 ))
    in
    let bound = Support.Rng.float_in rng 0.5 4.0 in
    let inst = { Cellsched.Np_reduction.lengths; bound } in
    let allocation = Array.make n 0 in
    let rec enumerate k =
      if k = n then begin
        let direct = Cellsched.Np_reduction.mms_feasible inst allocation in
        let via_cell = Cellsched.Np_reduction.cell_feasible inst allocation in
        if direct <> via_cell then
          Alcotest.failf "reduction mismatch: direct=%b cell=%b" direct via_cell
      end
      else begin
        allocation.(k) <- 0;
        enumerate (k + 1);
        allocation.(k) <- 1;
        enumerate (k + 1)
      end
    in
    enumerate 0
  done

let test_np_reduction_mapping_roundtrip () =
  let inst =
    { Cellsched.Np_reduction.lengths = [| (1., 2.); (3., 1.) |]; bound = 3. }
  in
  let allocation = [| 0; 1 |] in
  let _, mapping = Cellsched.Np_reduction.mapping_of_allocation inst allocation in
  Alcotest.(check (array int)) "roundtrip" allocation
    (Cellsched.Np_reduction.allocation_of_mapping mapping)

(* --- replication (paper 3.1 general mappings) ----------------------------- *)

let test_replication_degenerate () =
  let g = figure3 () in
  let platform = platform2 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1; 1 |] in
  let r = Cellsched.Replication.of_mapping platform g m in
  let a = SS.loads platform g m in
  let b = Cellsched.Replication.loads platform g r in
  Alcotest.(check (array (float 1e-9))) "compute" a.SS.compute b.SS.compute;
  Alcotest.(check (array (float 1e-9))) "in" a.SS.bytes_in b.SS.bytes_in;
  Alcotest.(check (array (float 1e-9))) "out" a.SS.bytes_out b.SS.bytes_out;
  Alcotest.(check (array (float 1e-9))) "memory" a.SS.memory b.SS.memory

let test_replication_validation () =
  let g = figure3 () in
  let platform = platform2 () in
  let rejected spec =
    try
      ignore (Cellsched.Replication.make platform g spec);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true (rejected [| []; [ 0 ]; [ 1 ] |]);
  Alcotest.(check bool) "dup" true (rejected [| [ 0; 0 ]; [ 0 ]; [ 1 ] |]);
  Alcotest.(check bool) "range" true (rejected [| [ 9 ]; [ 0 ]; [ 1 ] |]);
  let stateful =
    G.of_tasks
      [| { (mk_task "s") with Streaming.Task.stateful = true }; mk_task "t" |]
      [ (0, 1, 10.) ]
  in
  Alcotest.(check bool) "stateful" true
    (try
       ignore (Cellsched.Replication.make platform stateful [| [ 0; 1 ]; [ 0 ] |]);
       false
     with Invalid_argument _ -> true)

let test_replication_splits_compute () =
  let g = G.of_tasks [| mk_task ~w_spe:4e-3 "solo" |] [] in
  let platform = P.make ~n_ppe:1 ~n_spe:2 () in
  let r = Cellsched.Replication.make platform g [| [ 1; 2 ] |] in
  let l = Cellsched.Replication.loads platform g r in
  Alcotest.(check (float 1e-9)) "half each" 2e-3 l.SS.compute.(1);
  Alcotest.(check (float 1e-9)) "half each" 2e-3 l.SS.compute.(2)

let test_replication_peek_duplication () =
  (* Producer feeds a peek-1 consumer replicated on two SPEs: every data
     instance must reach both replicas (the paper's argument against
     replicating peeking tasks). *)
  let g =
    G.of_tasks [| mk_task "prod"; mk_task ~peek:1 "cons" |] [ (0, 1, 1000.) ]
  in
  let platform = P.make ~n_ppe:1 ~n_spe:2 () in
  let r = Cellsched.Replication.make platform g [| [ 0 ]; [ 1; 2 ] |] in
  Alcotest.(check (float 1e-9)) "two remote copies" 2.
    (Cellsched.Replication.duplication_factor g r 0);
  (* Without peek, round-robin ships exactly one copy per instance. *)
  let g' = G.of_tasks [| mk_task "prod"; mk_task "cons" |] [ (0, 1, 1000.) ] in
  let r' = Cellsched.Replication.make platform g' [| [ 0 ]; [ 1; 2 ] |] in
  Alcotest.(check (float 1e-9)) "one copy" 1.
    (Cellsched.Replication.duplication_factor g' r' 0)

let test_replication_colocated_copies_free () =
  let g = G.of_tasks [| mk_task "prod"; mk_task "cons" |] [ (0, 1, 1000.) ] in
  let platform = P.make ~n_ppe:1 ~n_spe:2 () in
  (* Producer and consumer share the replica pattern: always colocated. *)
  let r = Cellsched.Replication.make platform g [| [ 1; 2 ]; [ 1; 2 ] |] in
  Alcotest.(check (float 1e-9)) "no remote copies" 0.
    (Cellsched.Replication.duplication_factor g r 0)

(* --- schedule ------------------------------------------------------------ *)

let test_schedule () =
  let g = figure3 () in
  let platform = platform2 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1; 1 |] in
  let sched = Cellsched.Schedule.build platform g m in
  Alcotest.(check int) "warmup" 3 (Cellsched.Schedule.warmup_periods sched);
  Alcotest.(check int) "fp T3" 3 (Cellsched.Schedule.first_period sched 2);
  (* Period 0: only T1, instance 0. *)
  (match Cellsched.Schedule.activities sched 0 with
  | [ { Cellsched.Schedule.task = 0; instance = 0 } ] -> ()
  | acts -> Alcotest.failf "period 0 has %d activities" (List.length acts));
  (* Period 3: T1[3], T2[1], T3[0]. *)
  let acts = Cellsched.Schedule.activities sched 3 in
  Alcotest.(check int) "period 3 activities" 3 (List.length acts);
  List.iter
    (fun { Cellsched.Schedule.task; instance } ->
      let expected = match task with 0 -> 3 | 1 -> 1 | 2 -> 0 | _ -> -1 in
      Alcotest.(check int) "instance" expected instance)
    acts;
  (* Transfers during period 1: D(T1,-) instance 0 on both edges. *)
  let tr = Cellsched.Schedule.transfers sched 1 in
  Alcotest.(check int) "transfers" 2 (List.length tr);
  List.iter
    (fun { Cellsched.Schedule.instance; src_pe; dst_pe; _ } ->
      Alcotest.(check int) "instance 0" 0 instance;
      Alcotest.(check int) "from PPE" 0 src_pe;
      Alcotest.(check int) "to SPE" 1 dst_pe)
    tr;
  Alcotest.(check int) "latency" 4 (Cellsched.Schedule.instance_latency sched)

let first_periods_monotone =
  QCheck.Test.make ~count:60 ~name:"firstPeriod increases along edges"
    QCheck.(pair (int_bound 10_000) (int_range 2 40))
    (fun (seed, n) ->
      let g = small_random_graph (seed + 3000) n in
      let fp = SS.first_periods g in
      Array.for_all
        (fun { G.src; dst; _ } -> fp.(dst) >= fp.(src) + 2)
        (G.edges g))

let period_equals_max_resource =
  QCheck.Test.make ~count:60 ~name:"period is the max resource occupation"
    QCheck.(pair (int_bound 10_000) (int_range 2 30))
    (fun (seed, n) ->
      let platform = P.qs22 ~n_spe:4 () in
      let g = small_random_graph (seed + 4000) n in
      let rng = Support.Rng.create (seed * 3) in
      let m = Cellsched.Heuristics.random ~rng platform g in
      let l = SS.loads platform g m in
      let period = SS.period platform l in
      let ok = ref true in
      for pe = 0 to P.n_pes platform - 1 do
        if l.SS.compute.(pe) > period +. 1e-12 then ok := false;
        if l.SS.bytes_in.(pe) /. platform.P.bw > period +. 1e-12 then ok := false;
        if l.SS.bytes_out.(pe) /. platform.P.bw > period +. 1e-12 then ok := false
      done;
      !ok && period >= 0.)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "cellsched"
    [
      ( "mapping",
        [
          Alcotest.test_case "basics" `Quick test_mapping_basics;
          Alcotest.test_case "validation" `Quick test_mapping_validation;
        ] );
      ( "steady-state",
        [
          Alcotest.test_case "firstPeriod (fig 3)" `Quick test_first_periods_figure3;
          Alcotest.test_case "firstPeriod with mapping" `Quick test_first_periods_with_mapping;
          Alcotest.test_case "buffer sizes" `Quick test_buffer_sizes;
          Alcotest.test_case "loads and period" `Quick test_loads_and_period;
          Alcotest.test_case "memory violation" `Quick test_memory_violation;
          Alcotest.test_case "dma violations" `Quick test_dma_violations;
          Alcotest.test_case "buffer sharing" `Quick test_buffer_sharing_option;
          Alcotest.test_case "tight pipeline" `Quick test_tight_pipeline_option;
          Alcotest.test_case "achieves" `Quick test_achieves;
          Alcotest.test_case "interface-bound period" `Quick test_interface_bound_period;
          Alcotest.test_case "bottleneck" `Quick test_bottleneck;
          Alcotest.test_case "ppe speedup" `Quick test_ppe_speedup_scaling;
          Alcotest.test_case "inter-cell link" `Quick test_inter_cell_link;
          Alcotest.test_case "milp avoids slow link" `Quick test_milp_avoids_slow_link;
          qt first_periods_monotone;
          qt period_equals_max_resource;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "mapping pp" `Quick test_mapping_pp;
          Alcotest.test_case "zero-spe solver" `Quick test_zero_spe_solver;
          Alcotest.test_case "memory-safe on presets" `Quick test_heuristics_feasible_on_presets;
          Alcotest.test_case "ppe-only feasible" `Quick test_ppe_only_always_feasible;
          Alcotest.test_case "local search improves" `Quick test_local_search_improves;
        ] );
      ( "milp",
        [
          qt exact_solver_matches_brute_force;
          qt search_solver_matches_brute_force;
          qt formulations_agree;
          qt milp_beats_heuristics;
          qt warm_start_roundtrip;
          qt shared_solver_respects_shared_memory;
          qt encoded_mappings_certify_exactly;
          Alcotest.test_case "paper graph end-to-end" `Slow test_solver_on_paper_graph;
        ] );
      ( "chain-dp",
        [
          Alcotest.test_case "chain detection" `Quick test_chain_dp_detects_chains;
          Alcotest.test_case "single task" `Quick test_chain_dp_single_task;
          Alcotest.test_case "feasible and strong" `Quick test_chain_dp_feasible_and_strong;
          qt chain_dp_never_beats_brute_force;
          qt chain_dp_matches_interval_oracle;
        ] );
      ( "np-reduction",
        [
          Alcotest.test_case "exhaustive equivalence" `Quick test_np_reduction_exhaustive;
          Alcotest.test_case "mapping roundtrip" `Quick test_np_reduction_mapping_roundtrip;
        ] );
      ( "replication",
        [
          Alcotest.test_case "degenerate equals steady-state" `Quick test_replication_degenerate;
          Alcotest.test_case "validation" `Quick test_replication_validation;
          Alcotest.test_case "splits compute" `Quick test_replication_splits_compute;
          Alcotest.test_case "peek duplication" `Quick test_replication_peek_duplication;
          Alcotest.test_case "colocated copies free" `Quick test_replication_colocated_copies_free;
        ] );
      ("schedule", [ Alcotest.test_case "figure 3" `Quick test_schedule ]);
    ]
