(* Tests for the DagGen-style generator and the paper's preset graphs. *)

let default_shape n =
  { Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.6; jump = 2 }

let gen ?(seed = 1) shape =
  let rng = Support.Rng.create seed in
  Daggen.Generator.generate ~rng ~shape ~costs:Daggen.Generator.default_costs

let test_task_count () =
  List.iter
    (fun n ->
      let g = gen (default_shape n) in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) n (Streaming.Graph.n_tasks g))
    [ 1; 2; 10; 50; 94 ]

let test_determinism () =
  let a = gen ~seed:7 (default_shape 40) in
  let b = gen ~seed:7 (default_shape 40) in
  Alcotest.(check string) "same graph"
    (Streaming.Serialize.to_string a)
    (Streaming.Serialize.to_string b);
  let c = gen ~seed:8 (default_shape 40) in
  Alcotest.(check bool) "different seed" true
    (Streaming.Serialize.to_string a <> Streaming.Serialize.to_string c)

let test_connectivity () =
  (* Every non-first-layer task has at least one predecessor. *)
  let g = gen (default_shape 60) in
  let sources = Streaming.Graph.sources g in
  let first_layer =
    List.filter
      (fun k ->
        let name = (Streaming.Graph.task g k).Streaming.Task.name in
        String.length name > 3 && String.sub name 0 3 = "T0_")
      (List.init (Streaming.Graph.n_tasks g) Fun.id)
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) "source is in first layer" true (List.mem k first_layer))
    sources

let test_invalid_shapes () =
  let bad shape =
    match gen shape with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected rejection"
  in
  bad { (default_shape 0) with Daggen.Generator.n = 0 };
  bad { (default_shape 5) with Daggen.Generator.fat = 0. };
  bad { (default_shape 5) with Daggen.Generator.density = 1.5 };
  bad { (default_shape 5) with Daggen.Generator.regularity = -0.1 };
  bad { (default_shape 5) with Daggen.Generator.jump = 0 }

let test_chain_generator () =
  let rng = Support.Rng.create 3 in
  let g = Daggen.Generator.generate_chain ~rng ~n:50 ~costs:Daggen.Generator.default_costs in
  Alcotest.(check int) "tasks" 50 (Streaming.Graph.n_tasks g);
  Alcotest.(check int) "edges" 49 (Streaming.Graph.n_edges g);
  Alcotest.(check int) "depth" 50 (Streaming.Graph.depth g)

let test_memory_io () =
  let g = gen (default_shape 40) in
  let has_read =
    List.exists
      (fun k -> (Streaming.Graph.task g k).Streaming.Task.read_bytes > 0.)
      (Streaming.Graph.sources g)
  in
  let has_write =
    List.exists
      (fun k -> (Streaming.Graph.task g k).Streaming.Task.write_bytes > 0.)
      (Streaming.Graph.sinks g)
  in
  Alcotest.(check bool) "sources read" true has_read;
  Alcotest.(check bool) "sinks write" true has_write

let check_preset name g expected_tasks =
  Alcotest.(check int) (name ^ " tasks") expected_tasks (Streaming.Graph.n_tasks g);
  Alcotest.(check (float 1e-6)) (name ^ " ccr") 0.775 (Streaming.Ccr.compute g)

let test_presets () =
  check_preset "graph1" (Daggen.Presets.random_graph_1 ()) 50;
  check_preset "graph2" (Daggen.Presets.random_graph_2 ()) 94;
  check_preset "graph3" (Daggen.Presets.random_graph_3 ()) 50;
  Alcotest.(check int) "graph3 is a chain" 49
    (Streaming.Graph.n_edges (Daggen.Presets.random_graph_3 ()));
  Alcotest.(check int) "ccr variant"
    (Streaming.Graph.n_edges (Daggen.Presets.random_graph_1 ()))
    (Streaming.Graph.n_edges (Daggen.Presets.random_graph_1 ~ccr:4.6 ()))

let test_figure_graphs () =
  let g = Daggen.Presets.two_filter_chain () in
  Alcotest.(check int) "two filters" 2 (Streaming.Graph.n_tasks g);
  let g = Daggen.Presets.figure_2b () in
  Alcotest.(check int) "nine tasks" 9 (Streaming.Graph.n_tasks g);
  Alcotest.(check int) "depth" 5 (Streaming.Graph.depth g)

let test_audio_encoder () =
  let g = Daggen.Presets.audio_encoder () in
  (* framer + 8 filterbanks + psycho + bitalloc + 8 quantizers + packer *)
  Alcotest.(check int) "tasks" 20 (Streaming.Graph.n_tasks g);
  let psycho = Streaming.Graph.find_task g "psycho_model" in
  Alcotest.(check int) "psycho peeks" 1
    (Streaming.Graph.task g psycho).Streaming.Task.peek;
  Alcotest.(check (list int)) "single source"
    [ Streaming.Graph.find_task g "framer" ]
    (Streaming.Graph.sources g);
  Alcotest.(check (list int)) "single sink"
    [ Streaming.Graph.find_task g "bitstream_pack" ]
    (Streaming.Graph.sinks g)

let generated_graphs_are_dags =
  QCheck.Test.make ~count:100 ~name:"generated graphs are valid DAGs"
    QCheck.(pair (int_bound 100_000) (int_range 1 60))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let fat = 0.2 +. Support.Rng.float rng 1.5 in
      let density = Support.Rng.float rng 1.0 in
      let regularity = Support.Rng.float rng 1.0 in
      let jump = 1 + Support.Rng.int rng 4 in
      let g =
        Daggen.Generator.generate ~rng
          ~shape:{ Daggen.Generator.n; fat; density; regularity; jump }
          ~costs:Daggen.Generator.default_costs
      in
      (* Building validates acyclicity; check edge directions w.r.t. topo. *)
      let order = Streaming.Graph.topological_order g in
      let pos = Array.make n 0 in
      Array.iteri (fun i k -> pos.(k) <- i) order;
      Array.for_all
        (fun { Streaming.Graph.src; dst; _ } -> pos.(src) < pos.(dst))
        (Streaming.Graph.edges g)
      && Streaming.Graph.n_tasks g = n)

let costs_within_ranges =
  QCheck.Test.make ~count:50 ~name:"sampled costs respect configured ranges"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let costs = Daggen.Generator.default_costs in
      let g = Daggen.Generator.generate ~rng ~shape:(default_shape 30) ~costs in
      let lo, hi = costs.Daggen.Generator.w_spe_range in
      let rlo, rhi = costs.Daggen.Generator.ppe_ratio_range in
      Array.for_all
        (fun (t : Streaming.Task.t) ->
          t.Streaming.Task.w_spe >= lo
          && t.Streaming.Task.w_spe <= hi
          && t.Streaming.Task.w_ppe >= t.Streaming.Task.w_spe *. rlo -. 1e-12
          && t.Streaming.Task.w_ppe <= t.Streaming.Task.w_spe *. rhi +. 1e-12)
        (Streaming.Graph.tasks g))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "daggen"
    [
      ( "generator",
        [
          Alcotest.test_case "task count" `Quick test_task_count;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "invalid shapes" `Quick test_invalid_shapes;
          Alcotest.test_case "chain" `Quick test_chain_generator;
          Alcotest.test_case "memory io" `Quick test_memory_io;
          qt generated_graphs_are_dags;
          qt costs_within_ranges;
        ] );
      ( "presets",
        [
          Alcotest.test_case "paper graphs" `Quick test_presets;
          Alcotest.test_case "figure graphs" `Quick test_figure_graphs;
          Alcotest.test_case "audio encoder" `Quick test_audio_encoder;
        ] );
    ]
