(* Tests for the arbitrary-precision integers, exact rationals, and the
   exact LP certification layer built on them. *)

module B = Rational.Bigint
module Q = Rational.Rat

(* --- bigint -------------------------------------------------------------- *)

let test_bigint_basics () =
  Alcotest.(check string) "zero" "0" (B.to_string B.zero);
  Alcotest.(check string) "of_int" "123456789" (B.to_string (B.of_int 123456789));
  Alcotest.(check string) "negative" "-42" (B.to_string (B.of_int (-42)));
  Alcotest.(check (option int)) "roundtrip" (Some 987654321)
    (B.to_int_opt (B.of_int 987654321));
  Alcotest.(check (option int)) "max_int" (Some max_int)
    (B.to_int_opt (B.of_int max_int))

let test_bigint_strings () =
  let s = "123456789012345678901234567890" in
  Alcotest.(check string) "parse/print" s (B.to_string (B.of_string s));
  Alcotest.(check string) "negative" ("-" ^ s) (B.to_string (B.of_string ("-" ^ s)));
  Alcotest.(check (option int)) "too big" None (B.to_int_opt (B.of_string s));
  Alcotest.(check bool) "bad input rejected" true
    (try
       ignore (B.of_string "12x4");
       false
     with Invalid_argument _ -> true)

let test_bigint_factorial () =
  (* 30! is a classic cross-check value. *)
  let rec fact acc i =
    if i = 0 then acc else fact (B.mul acc (B.of_int i)) (i - 1)
  in
  Alcotest.(check string) "30!" "265252859812191058636308480000000"
    (B.to_string (fact B.one 30))

let test_bigint_shift () =
  Alcotest.(check string) "1 << 100" "1267650600228229401496703205376"
    (B.to_string (B.shift_left B.one 100));
  Alcotest.(check string) "3 << 31" (string_of_int (3 * 2147483648))
    (B.to_string (B.shift_left (B.of_int 3) 31))

let test_bigint_division_cases () =
  let check_div a b =
    let q, r = B.divmod (B.of_string a) (B.of_string b) in
    let recomposed = B.add (B.mul q (B.of_string b)) r in
    Alcotest.(check string) (a ^ " = q*" ^ b ^ " + r") a (B.to_string recomposed);
    Alcotest.(check bool) "0 <= r" true (B.sign r >= 0);
    Alcotest.(check bool) "r < |b|" true
      (B.compare r (B.abs (B.of_string b)) < 0)
  in
  check_div "1000000000000000000000" "7";
  check_div "-1000000000000000000000" "7";
  check_div "1000000000000000000000" "-7";
  check_div "-1000000000000000000000" "-7";
  check_div "5" "100000000000000000000";
  Alcotest.check_raises "by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let int_pairs = QCheck.(pair (int_range (-1_000_000) 1_000_000) (int_range (-1_000_000) 1_000_000))

let bigint_matches_native_arith =
  QCheck.Test.make ~count:500 ~name:"bigint add/sub/mul match native ints"
    int_pairs
    (fun (a, b) ->
      let ba = B.of_int a and bb = B.of_int b in
      B.to_int_opt (B.add ba bb) = Some (a + b)
      && B.to_int_opt (B.sub ba bb) = Some (a - b)
      && B.to_int_opt (B.mul ba bb) = Some (a * b)
      && B.compare ba bb = compare a b)

let bigint_divmod_identity =
  QCheck.Test.make ~count:500 ~name:"bigint divmod identity on big operands"
    QCheck.(pair (list_of_size Gen.(1 -- 6) (int_bound 1_000_000)) (int_range 1 1_000_000))
    (fun (chunks, b) ->
      (* Build a big number from chunks: a = sum chunk_i * (10^6)^i. *)
      let base = B.of_int 1_000_000 in
      let a =
        List.fold_left (fun acc c -> B.add (B.mul acc base) (B.of_int c)) B.zero chunks
      in
      let bb = B.of_int b in
      let q, r = B.divmod a bb in
      B.equal a (B.add (B.mul q bb) r)
      && B.sign r >= 0
      && B.compare r bb < 0)

let bigint_gcd_properties =
  QCheck.Test.make ~count:300 ~name:"gcd divides both and is maximal-ish"
    int_pairs
    (fun (a, b) ->
      let g = B.gcd (B.of_int a) (B.of_int b) in
      if a = 0 && b = 0 then B.sign g = 0
      else begin
        let divides x =
          B.sign x = 0 || B.sign (snd (B.divmod x g)) = 0
        in
        B.sign g > 0 && divides (B.of_int a) && divides (B.of_int b)
      end)

(* --- rationals ----------------------------------------------------------- *)

let qt_eq = Alcotest.testable (fun ppf q -> Q.pp ppf q) Q.equal

let test_rat_basics () =
  Alcotest.check qt_eq "1/2 + 1/3" (Q.of_ints 5 6)
    (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check qt_eq "normalization" (Q.of_ints 1 2) (Q.of_ints (-3) (-6));
  Alcotest.(check string) "printing" "-2/3" (Q.to_string (Q.of_ints 2 (-3)));
  Alcotest.(check string) "integer printing" "7" (Q.to_string (Q.of_int 7));
  Alcotest.(check bool) "is_integer" true (Q.is_integer (Q.of_ints 14 2));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Q.of_ints 1 0))

let test_rat_of_float_exact () =
  (* Floats are dyadic rationals: 0.1 is NOT 1/10. *)
  Alcotest.(check bool) "0.1 <> 1/10" false (Q.equal (Q.of_float 0.1) (Q.of_ints 1 10));
  Alcotest.check qt_eq "0.5" (Q.of_ints 1 2) (Q.of_float 0.5);
  Alcotest.check qt_eq "-0.75" (Q.of_ints (-3) 4) (Q.of_float (-0.75));
  Alcotest.check qt_eq "2^60" (Q.make (B.shift_left B.one 60) B.one)
    (Q.of_float 1.152921504606846976e18);
  Alcotest.(check bool) "nan rejected" true
    (try
       ignore (Q.of_float Float.nan);
       false
     with Invalid_argument _ -> true)

let rat_of_float_roundtrips =
  QCheck.Test.make ~count:500 ~name:"to_float (of_float x) = x exactly"
    QCheck.(float_bound_exclusive 1e12)
    (fun x ->
      let x = x -. 5e11 in
      QCheck.assume (Float.is_finite x);
      Float.equal (Q.to_float (Q.of_float x)) x)

let rat_field_properties =
  QCheck.Test.make ~count:300 ~name:"rational field laws"
    QCheck.(triple (pair small_int small_nat) (pair small_int small_nat) (pair small_int small_nat))
    (fun ((an, ad), (bn, bd), (cn, cd)) ->
      let q n d = Q.of_ints n (d + 1) in
      let a = q an ad and b = q bn bd and c = q cn cd in
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.mul a b) (Q.mul b a)
      && Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))
      && Q.equal (Q.mul (Q.mul a b) c) (Q.mul a (Q.mul b c))
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.sub a a) Q.zero
      && (Q.sign a = 0 || Q.equal (Q.div a a) Q.one))

let rat_compare_matches_float =
  QCheck.Test.make ~count:300 ~name:"rational compare agrees with floats"
    QCheck.(pair (pair small_int small_nat) (pair small_int small_nat))
    (fun ((an, ad), (bn, bd)) ->
      let a = Q.of_ints an (ad + 1) and b = Q.of_ints bn (bd + 1) in
      let fa = float_of_int an /. float_of_int (ad + 1) in
      let fb = float_of_int bn /. float_of_int (bd + 1) in
      QCheck.assume (abs_float (fa -. fb) > 1e-9);
      compare fa fb = Q.compare a b)

(* --- exact certification -------------------------------------------------- *)

let test_certify_simplex_solution () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p "x" in
  let y = Lp.Problem.add_var p "y" in
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 1.) ]) Lp.Problem.Le 4.;
  Lp.Problem.add_constr p (Lp.Expr.of_list [ (x, 1.); (y, 3.) ]) Lp.Problem.Le 6.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Lp.Expr.of_list [ (x, 3.); (y, 2.) ]);
  match Lp.Simplex.solve p with
  | Lp.Simplex.Optimal sol ->
      let report = Lp.Certify.analyze p sol.Lp.Simplex.x in
      Alcotest.(check bool) "exactly feasible" true
        (Q.compare report.Lp.Certify.max_violation (Q.of_ints 1 1_000_000) <= 0);
      Alcotest.check qt_eq "exact objective" (Q.of_int 12)
        report.Lp.Certify.objective;
      (match Lp.Certify.check p sol.Lp.Simplex.x with
      | Ok () -> ()
      | Error m -> Alcotest.failf "certification failed: %s" m)
  | _ -> Alcotest.fail "expected optimal"

let test_certify_detects_violation () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var p ~ub:1. "x" in
  Lp.Problem.add_constr p ~name:"cap" (Lp.Expr.term ~coeff:2. x) Lp.Problem.Le 1.;
  let report = Lp.Certify.analyze p [| 1. |] in
  Alcotest.check qt_eq "exact violation 1" Q.one report.Lp.Certify.max_violation;
  Alcotest.(check (option string)) "names the row" (Some "cap")
    report.Lp.Certify.worst;
  match Lp.Certify.check p [| 1. |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "violation not detected"

let test_certify_integrality () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.binary p "x" in
  Lp.Problem.set_objective p Lp.Problem.Maximize (Lp.Expr.term x);
  let report = Lp.Certify.analyze p [| 0.5 |] in
  Alcotest.(check bool) "not integral" false report.Lp.Certify.integral;
  (match Lp.Certify.check p [| 0.5 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fractional binary accepted");
  let report = Lp.Certify.analyze p [| 1. |] in
  Alcotest.(check bool) "integral" true report.Lp.Certify.integral

let certified_simplex_solutions =
  QCheck.Test.make ~count:60 ~name:"random LP optima certify exactly"
    QCheck.(pair (int_bound 100_000) (int_range 1 4))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let p = Lp.Problem.create () in
      let vars =
        Array.init n (fun v ->
            Lp.Problem.add_var p ~lb:0. ~ub:(Support.Rng.float_in rng 1. 10.)
              (Printf.sprintf "x%d" v))
      in
      for _ = 1 to Support.Rng.int_in rng 1 4 do
        let expr =
          Lp.Expr.of_list
            (Array.to_list
               (Array.map (fun v -> (v, Support.Rng.float_in rng (-2.) 3.)) vars))
        in
        Lp.Problem.add_constr p expr Lp.Problem.Le (Support.Rng.float_in rng 0.5 8.)
      done;
      Lp.Problem.set_objective p Lp.Problem.Maximize
        (Lp.Expr.of_list
           (Array.to_list (Array.map (fun v -> (v, Support.Rng.float_in rng 0. 2.)) vars)));
      match Lp.Simplex.solve p with
      | Lp.Simplex.Optimal sol -> (
          match Lp.Certify.check p sol.Lp.Simplex.x with
          | Ok () -> true
          | Error m -> QCheck.Test.fail_reportf "certification failed: %s" m)
      | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> true)

let certified_medium_lps =
  QCheck.Test.make ~count:10 ~name:"medium random LPs certify exactly"
    QCheck.(int_bound 100_000)
    (fun seed ->
      (* 40 variables, 25 rows, mixed relations and badly scaled
         coefficients: stresses the simplex numerics, and the exact
         certifier is the referee. *)
      let rng = Support.Rng.create (seed + 9) in
      let p = Lp.Problem.create () in
      let n = 40 in
      let vars =
        Array.init n (fun v ->
            Lp.Problem.add_var p ~lb:0. ~ub:(Support.Rng.float_in rng 1. 20.)
              (Printf.sprintf "x%d" v))
      in
      for c = 0 to 24 do
        let scale = if c mod 5 = 0 then 1e6 else 1. in
        let terms =
          Array.to_list
            (Array.map
               (fun v ->
                 if Support.Rng.bernoulli rng 0.3 then
                   (v, scale *. Support.Rng.float_in rng (-2.) 3.)
                 else (v, 0.))
               vars)
        in
        let expr = Lp.Expr.of_list (List.filter (fun (_, c) -> c <> 0.) terms) in
        if not (Lp.Expr.is_zero expr) then
          Lp.Problem.add_constr p expr Lp.Problem.Le
            (scale *. Support.Rng.float_in rng 1. 30.)
      done;
      Lp.Problem.set_objective p Lp.Problem.Maximize
        (Lp.Expr.of_list
           (Array.to_list
              (Array.map (fun v -> (v, Support.Rng.float_in rng 0. 2.)) vars)));
      match Lp.Simplex.solve p with
      | Lp.Simplex.Optimal sol -> (
          match
            Lp.Certify.check ~tol:(Q.of_ints 1 100_000) p sol.Lp.Simplex.x
          with
          | Ok () -> true
          | Error m -> QCheck.Test.fail_reportf "certification failed: %s" m)
      | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> true
      | exception Failure m -> QCheck.Test.fail_reportf "simplex failure: %s" m)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "rational"
    [
      ( "bigint",
        [
          Alcotest.test_case "basics" `Quick test_bigint_basics;
          Alcotest.test_case "strings" `Quick test_bigint_strings;
          Alcotest.test_case "factorial" `Quick test_bigint_factorial;
          Alcotest.test_case "shift" `Quick test_bigint_shift;
          Alcotest.test_case "division cases" `Quick test_bigint_division_cases;
          qt bigint_matches_native_arith;
          qt bigint_divmod_identity;
          qt bigint_gcd_properties;
        ] );
      ( "rat",
        [
          Alcotest.test_case "basics" `Quick test_rat_basics;
          Alcotest.test_case "of_float exact" `Quick test_rat_of_float_exact;
          qt rat_of_float_roundtrips;
          qt rat_field_properties;
          qt rat_compare_matches_float;
        ] );
      ( "certify",
        [
          Alcotest.test_case "simplex solution" `Quick test_certify_simplex_solution;
          Alcotest.test_case "detects violation" `Quick test_certify_detects_violation;
          Alcotest.test_case "integrality" `Quick test_certify_integrality;
          qt certified_simplex_solutions;
          qt certified_medium_lps;
        ] );
    ]
