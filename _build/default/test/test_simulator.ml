(* Tests for the discrete-event Cell simulator. *)

module P = Cell.Platform
module G = Streaming.Graph
module SS = Cellsched.Steady_state
module R = Simulator.Runtime

let mk_task ?(peek = 0) ?(w_ppe = 1e-3) ?(w_spe = 2e-3) name =
  Streaming.Task.make ~name ~w_ppe ~w_spe ~peek ()

let no_overhead =
  {
    R.overhead_fraction = 0.;
    dma_setup_time = 0.;
    comm_cpu_time = 0.;
    peek_flush = true;
  }

let test_single_task () =
  let g = G.of_tasks [| mk_task ~w_ppe:1e-3 "only" |] [] in
  let platform = P.make ~n_ppe:1 ~n_spe:0 () in
  let m = Cellsched.Mapping.all_on_ppe platform g in
  let metrics = R.run ~options:no_overhead platform g m ~instances:100 in
  Alcotest.(check int) "instances" 100 metrics.R.instances;
  Alcotest.(check (float 1e-9)) "makespan = n * w" 0.1 metrics.R.makespan;
  Alcotest.(check (float 1e-3)) "throughput" 1000. metrics.R.steady_throughput

let test_chain_pipeline () =
  (* Two 1 ms tasks on two PEs: steady state must pipeline at ~1000/s, not
     serialize at 500/s. *)
  let g =
    G.of_tasks [| mk_task ~w_ppe:1e-3 ~w_spe:1e-3 "a"; mk_task ~w_ppe:1e-3 ~w_spe:1e-3 "b" |]
      [ (0, 1, 1024.) ]
  in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let metrics = R.run ~options:no_overhead platform g m ~instances:2000 in
  let predicted = SS.throughput platform g m in
  Alcotest.(check bool) "pipelines" true
    (metrics.R.steady_throughput > 0.9 *. predicted);
  Alcotest.(check bool) "does not exceed the bound" true
    (metrics.R.steady_throughput <= 1.02 *. predicted)

let test_overhead_gap () =
  (* With the default 5% overhead, steady state lands near 95% of the
     prediction — the paper's §6.4.1 observation. *)
  let g = Daggen.Presets.figure_2b () in
  let platform = P.qs22 ~n_spe:4 () in
  let r = Cellsched.Milp_solver.solve platform g in
  let metrics =
    R.run platform g r.Cellsched.Milp_solver.mapping ~instances:3000
  in
  let ratio =
    metrics.R.steady_throughput /. r.Cellsched.Milp_solver.throughput
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in [0.85, 1.0]" ratio)
    true
    (ratio > 0.85 && ratio <= 1.0 +. 1e-9)

let test_completion_times_monotone () =
  let g = Daggen.Presets.two_filter_chain () in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let metrics = R.run platform g m ~instances:500 in
  let ok = ref true in
  for i = 1 to 499 do
    if metrics.R.completion_times.(i) < metrics.R.completion_times.(i - 1) then
      ok := false
  done;
  Alcotest.(check bool) "monotone" true !ok

let test_ramp_up () =
  (* Cumulative throughput rises towards the steady plateau (Fig. 6). *)
  let g = Daggen.Presets.random_graph_1 () in
  let platform = P.qs22 () in
  let m = Cellsched.Heuristics.density_pack platform g in
  let m = if SS.feasible platform g m then m else Cellsched.Heuristics.ppe_only platform g in
  let metrics = R.run platform g m ~instances:4000 in
  let curve = R.throughput_curve metrics ~points:20 in
  let early = snd (List.nth curve 0) in
  let late = snd (List.nth curve (List.length curve - 1)) in
  Alcotest.(check bool) "ramps up" true (late > early);
  Alcotest.(check bool) "approaches steady" true
    (late > 0.8 *. metrics.R.steady_throughput)

let test_peek_stream_flush () =
  (* A peek=2 consumer still finishes a finite stream. *)
  let g =
    G.of_tasks [| mk_task "src"; mk_task ~peek:2 "snk" |] [ (0, 1, 64.) ]
  in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let metrics = R.run platform g m ~instances:50 in
  Alcotest.(check int) "all done" 50 metrics.R.instances

let test_memory_rejection () =
  let g =
    G.of_tasks [| mk_task "a"; mk_task "b" |] [ (0, 1, 300. *. 1024.) ]
  in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (R.run platform g m ~instances:10);
       false
     with Invalid_argument _ -> true)

let test_dma_pressure_still_runs () =
  (* 20 PPE producers feeding one SPE consumer exceed the 16-slot model
     constraint; the runtime must still finish by queuing transfers. *)
  let producers = Array.init 20 (fun i -> mk_task (Printf.sprintf "p%d" i)) in
  let tasks = Array.append producers [| mk_task "sink" |] in
  let g = G.of_tasks tasks (List.init 20 (fun i -> (i, 20, 64.))) in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let assignment = Array.make 21 0 in
  assignment.(20) <- 1;
  let m = Cellsched.Mapping.make platform g assignment in
  Alcotest.(check bool) "model flags dma" true
    (List.exists (function SS.Dma_in _ -> true | _ -> false)
       (SS.violations platform g m));
  let metrics = R.run platform g m ~instances:50 in
  Alcotest.(check int) "completes anyway" 50 metrics.R.instances

let test_transfers_counted () =
  let g = Daggen.Presets.figure_2b () in
  (* Roomy local store: the alternating mapping is deliberately bad. *)
  let platform = P.make ~n_ppe:1 ~n_spe:1 ~local_store:(2 * 1024 * 1024) () in
  (* Alternate tasks between the two PEs: every edge is remote. *)
  let assignment = Array.init (G.n_tasks g) (fun k -> k mod 2) in
  let m = Cellsched.Mapping.make platform g assignment in
  let remote_edges =
    Array.to_list (G.edges g)
    |> List.filter (fun e -> Cellsched.Mapping.is_remote m e)
    |> List.length
  in
  let n = 100 in
  let metrics = R.run platform g m ~instances:n in
  Alcotest.(check int) "one transfer per remote edge per instance"
    (remote_edges * n) metrics.R.transfers

let test_colocated_needs_no_transfers () =
  let g = Daggen.Presets.figure_2b () in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let m = Cellsched.Mapping.all_on_ppe platform g in
  let metrics = R.run platform g m ~instances:100 in
  Alcotest.(check int) "no transfers" 0 metrics.R.transfers;
  Alcotest.(check (float 1e-6)) "no bytes" 0. metrics.R.bytes_transferred

let test_throughput_curve_shape () =
  let g = Daggen.Presets.two_filter_chain () in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let metrics = R.run platform g m ~instances:1000 in
  let curve = R.throughput_curve metrics ~points:10 in
  Alcotest.(check bool) "enough points" true (List.length curve >= 10);
  let last_i, _ = List.nth curve (List.length curve - 1) in
  Alcotest.(check int) "ends at the stream end" 1000 last_i

(* Property: for random graphs and feasible mappings, the simulation
   completes and never beats the steady-state bound. *)
let simulation_respects_bound =
  QCheck.Test.make ~count:25 ~name:"simulated throughput <= predicted bound"
    QCheck.(pair (int_bound 10_000) (int_range 2 20))
    (fun (seed, n) ->
      let rng = Support.Rng.create seed in
      let shape =
        { Daggen.Generator.n; fat = 0.5; density = 0.4; regularity = 0.5; jump = 2 }
      in
      let g = Daggen.Generator.generate ~rng ~shape ~costs:Daggen.Generator.default_costs in
      let platform = P.qs22 ~n_spe:3 () in
      let m =
        match
          Cellsched.Heuristics.best_feasible platform g
            (Cellsched.Heuristics.standard_candidates ~with_lp:false platform g)
        with
        | Some (_, m) -> m
        | None -> Cellsched.Heuristics.ppe_only platform g
      in
      let metrics = R.run ~options:no_overhead platform g m ~instances:600 in
      let predicted = SS.throughput platform g m in
      if metrics.R.instances <> 600 then
        QCheck.Test.fail_reportf "incomplete: %d" metrics.R.instances
      else if metrics.R.steady_throughput > predicted *. 1.02 then
        QCheck.Test.fail_reportf "sim %g exceeds bound %g"
          metrics.R.steady_throughput predicted
      else true)

let engine_orders_events =
  QCheck.Test.make ~count:100 ~name:"engine pops events in time order"
    QCheck.(list (float_bound_exclusive 100.))
    (fun times ->
      let e = Simulator.Engine.create () in
      List.iter (fun t -> Simulator.Engine.schedule e t ()) times;
      let rec drain last acc =
        match Simulator.Engine.next e with
        | None -> List.rev acc
        | Some (t, ()) ->
            if t < last then raise Exit;
            drain t (t :: acc)
      in
      match drain neg_infinity [] with
      | popped -> List.length popped = List.length times
      | exception Exit -> false)

let test_zero_spe_run () =
  let g = Daggen.Presets.figure_2b () in
  let platform = P.qs22 ~n_spe:0 () in
  let m = Cellsched.Heuristics.ppe_only platform g in
  let metrics = R.run ~options:no_overhead platform g m ~instances:200 in
  (* Single PE: the period is exactly the total PPE work. *)
  let expected = 1. /. Streaming.Graph.total_work g P.PPE in
  Alcotest.(check bool) "close to serial rate" true
    (abs_float (metrics.R.steady_throughput -. expected) < 0.02 *. expected)

let test_bandwidth_bound_pipeline () =
  (* Tiny interface bandwidth: the link, not compute, paces the stream. *)
  let platform = P.make ~n_ppe:1 ~n_spe:1 ~bw:100_000. () in
  let g =
    G.of_tasks
      [| mk_task ~w_ppe:1e-5 ~w_spe:1e-5 "a"; mk_task ~w_ppe:1e-5 ~w_spe:1e-5 "b" |]
      [ (0, 1, 1000.) ]
  in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let metrics = R.run ~options:no_overhead platform g m ~instances:400 in
  (* 1000 B at 100 kB/s = 10 ms per instance. *)
  Alcotest.(check bool) "paced by the interface" true
    (metrics.R.steady_throughput < 105. && metrics.R.steady_throughput > 80.)

let test_inter_cell_link_paces () =
  (* Cross-cell chain with a slow BIF: throughput limited by the link. *)
  let platform =
    P.make ~n_ppe:2 ~n_spe:2 ~n_cells:2 ~inter_cell_bw:100_000. ()
  in
  let g =
    G.of_tasks
      [| mk_task ~w_ppe:1e-5 ~w_spe:1e-5 "a"; mk_task ~w_ppe:1e-5 ~w_spe:1e-5 "b" |]
      [ (0, 1, 1000.) ]
  in
  (* PPE0 (cell 0) -> PPE1 (cell 1). *)
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let metrics = R.run ~options:no_overhead platform g m ~instances:400 in
  let predicted = Cellsched.Steady_state.throughput platform g m in
  Alcotest.(check bool) "predicted is link-bound (100/s)" true
    (abs_float (predicted -. 100.) < 1e-6);
  Alcotest.(check bool) "simulation respects it" true
    (metrics.R.steady_throughput <= predicted *. 1.02
    && metrics.R.steady_throughput > 0.8 *. predicted)

(* --- trace ----------------------------------------------------------------- *)

let test_trace_records () =
  let g = Daggen.Presets.two_filter_chain () in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let trace = Simulator.Trace.create () in
  let n = 50 in
  let metrics = R.run ~trace platform g m ~instances:n in
  let spans = Simulator.Trace.spans trace in
  let computes =
    List.length (List.filter (fun s -> s.Simulator.Trace.kind = `Compute) spans)
  in
  let transfers =
    List.length (List.filter (fun s -> s.Simulator.Trace.kind = `Transfer) spans)
  in
  Alcotest.(check int) "one compute span per task instance" (2 * n) computes;
  Alcotest.(check int) "one transfer span per remote instance" n transfers;
  List.iter
    (fun s ->
      Alcotest.(check bool) "well-formed span" true
        (s.Simulator.Trace.finish >= s.Simulator.Trace.start))
    spans;
  let busy =
    Simulator.Trace.busy_fraction trace ~n_pes:2
      ~horizon:metrics.R.makespan
  in
  Array.iter
    (fun f -> Alcotest.(check bool) "busy fraction sane" true (f >= 0. && f <= 1.01))
    busy

let test_trace_gantt () =
  let g = Daggen.Presets.two_filter_chain () in
  let platform = P.make ~n_ppe:1 ~n_spe:1 () in
  let m = Cellsched.Mapping.make platform g [| 0; 1 |] in
  let trace = Simulator.Trace.create () in
  ignore (R.run ~trace platform g m ~instances:50);
  let chart = Simulator.Trace.gantt ~width:60 platform trace in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "names PEs" true (contains "PPE0" chart && contains "SPE0" chart);
  Alcotest.(check bool) "shows compute" true (contains "#" chart);
  let svg = Simulator.Trace.to_svg platform trace in
  Alcotest.(check bool) "svg" true (contains "<svg" svg && contains "</svg>" svg)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "simulator"
    [
      ( "runtime",
        [
          Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "chain pipelines" `Quick test_chain_pipeline;
          Alcotest.test_case "overhead gap ~5%" `Quick test_overhead_gap;
          Alcotest.test_case "monotone completions" `Quick test_completion_times_monotone;
          Alcotest.test_case "ramp up" `Quick test_ramp_up;
          Alcotest.test_case "peek flush" `Quick test_peek_stream_flush;
          Alcotest.test_case "memory rejection" `Quick test_memory_rejection;
          Alcotest.test_case "dma pressure runs" `Quick test_dma_pressure_still_runs;
          Alcotest.test_case "transfer counting" `Quick test_transfers_counted;
          Alcotest.test_case "colocated no transfers" `Quick test_colocated_needs_no_transfers;
          Alcotest.test_case "throughput curve" `Quick test_throughput_curve_shape;
          Alcotest.test_case "zero-spe run" `Quick test_zero_spe_run;
          Alcotest.test_case "bandwidth bound" `Quick test_bandwidth_bound_pipeline;
          Alcotest.test_case "inter-cell link paces" `Quick test_inter_cell_link_paces;
          qt simulation_respects_bound;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records spans" `Quick test_trace_records;
          Alcotest.test_case "gantt and svg" `Quick test_trace_gantt;
        ] );
      ("engine", [ qt engine_orders_events ]);
    ]
