(** Generic discrete-event simulation core: a time-ordered event queue with
    stable FIFO ordering among simultaneous events. *)

type 'a t

val create : unit -> 'a t

val now : 'a t -> float
(** Current simulation time (time of the last dispatched event). *)

val schedule : 'a t -> float -> 'a -> unit
(** [schedule t time event] enqueues [event]; [time] must not precede
    {!now}. @raise Invalid_argument on events in the past. *)

val next : 'a t -> (float * 'a) option
(** Pop the earliest event (FIFO among ties) and advance the clock. *)

val is_empty : 'a t -> bool
val pending : 'a t -> int
