lib/simulator/engine.mli:
