lib/simulator/engine.ml: Float Hashtbl Support
