lib/simulator/runtime.ml: Array Cell Cellsched Engine Float Format List Printf Streaming Trace
