lib/simulator/runtime.mli: Cell Cellsched Streaming Trace
