lib/simulator/trace.mli: Cell
