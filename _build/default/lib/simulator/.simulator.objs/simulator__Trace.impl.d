lib/simulator/trace.ml: Array Buffer Bytes Cell Float List Printf
