type 'a entry = { time : float; seq : int; payload : 'a }

module Heap = Support.Binary_heap.Make (struct
  type t = unit entry

  let compare a b =
    match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c
end)

(* The heap is monomorphic over unit; we keep payloads in a side table
   indexed by sequence number to stay simple and allocation-light. *)
type 'a t = {
  heap : Heap.t;
  payloads : (int, 'a) Hashtbl.t;
  mutable seq : int;
  mutable clock : float;
}

let create () =
  { heap = Heap.create (); payloads = Hashtbl.create 64; seq = 0; clock = 0. }

let now t = t.clock

let schedule t time payload =
  if time < t.clock -. 1e-12 then
    invalid_arg "Engine.schedule: event in the past";
  let seq = t.seq in
  t.seq <- seq + 1;
  Hashtbl.replace t.payloads seq payload;
  Heap.add t.heap { time = Float.max time t.clock; seq; payload = () }

let next t =
  if Heap.is_empty t.heap then None
  else begin
    let { time; seq; _ } = Heap.pop_min t.heap in
    t.clock <- time;
    let payload = Hashtbl.find t.payloads seq in
    Hashtbl.remove t.payloads seq;
    Some (time, payload)
  end

let is_empty t = Heap.is_empty t.heap
let pending t = Heap.length t.heap
