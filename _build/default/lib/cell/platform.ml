type pe_class = PPE | SPE

type t = {
  n_ppe : int;
  n_spe : int;
  bw : float;
  eib_bw : float;
  local_store : int;
  code_size : int;
  max_dma_in : int;
  max_dma_to_ppe : int;
  ppe_speedup : float;
  n_cells : int;
  inter_cell_bw : float;
}

let gib = 1024. *. 1024. *. 1024.
let kib = 1024

let make ?(n_ppe = 1) ?(n_spe = 8) ?(bw = 25. *. gib) ?(eib_bw = 200. *. gib)
    ?(local_store = 256 * kib) ?(code_size = 64 * kib) ?(max_dma_in = 16)
    ?(max_dma_to_ppe = 8) ?(ppe_speedup = 1.0) ?(n_cells = 1)
    ?(inter_cell_bw = 20. *. gib) () =
  if n_ppe < 1 then invalid_arg "Platform.make: need at least one PPE";
  if n_spe < 0 then invalid_arg "Platform.make: negative SPE count";
  if bw <= 0. || eib_bw <= 0. then invalid_arg "Platform.make: bandwidth";
  if local_store <= 0 then invalid_arg "Platform.make: local store";
  if code_size < 0 || code_size > local_store then
    invalid_arg "Platform.make: code size exceeds local store";
  if max_dma_in < 0 || max_dma_to_ppe < 0 then
    invalid_arg "Platform.make: DMA limits";
  if ppe_speedup <= 0. then invalid_arg "Platform.make: ppe_speedup";
  if n_cells < 1 then invalid_arg "Platform.make: n_cells";
  if inter_cell_bw <= 0. then invalid_arg "Platform.make: inter_cell_bw";
  if n_cells > 1 && (n_ppe mod n_cells <> 0 || n_spe mod n_cells <> 0) then
    invalid_arg "Platform.make: PEs must divide evenly across cells";
  {
    n_ppe;
    n_spe;
    bw;
    eib_bw;
    local_store;
    code_size;
    max_dma_in;
    max_dma_to_ppe;
    ppe_speedup;
    n_cells;
    inter_cell_bw;
  }

let qs22 ?(n_spe = 8) () =
  if n_spe > 8 then invalid_arg "Platform.qs22: at most 8 SPEs per Cell";
  make ~n_ppe:1 ~n_spe ()

let qs22_dual ?(n_spe = 16) ?(flat = false) () =
  if n_spe > 16 then invalid_arg "Platform.qs22_dual: at most 16 SPEs";
  (* Both Cells of a QS22. The coherent inter-Cell interface (BIF) is a
     shared contention point for cross-Cell traffic unless [flat]. *)
  if flat then make ~n_ppe:2 ~n_spe ()
  else make ~n_ppe:2 ~n_spe ~n_cells:2 ()

let ps3 ?(n_spe = 6) () =
  if n_spe > 6 then invalid_arg "Platform.ps3: at most 6 usable SPEs";
  make ~n_ppe:1 ~n_spe ()

let n_pes t = t.n_ppe + t.n_spe

let pe_class t i =
  if i < 0 || i >= n_pes t then invalid_arg "Platform.pe_class: index";
  if i < t.n_ppe then PPE else SPE

let is_spe t i = pe_class t i = SPE
let is_ppe t i = pe_class t i = PPE
let ppes t = List.init t.n_ppe Fun.id
let spes t = List.init t.n_spe (fun s -> t.n_ppe + s)
let spe_memory_budget t = t.local_store - t.code_size

let cell_of t i =
  if t.n_cells = 1 then 0
  else begin
    match pe_class t i with
    | PPE -> i * t.n_cells / t.n_ppe
    | SPE -> (i - t.n_ppe) * t.n_cells / t.n_spe
  end

let pe_name t i =
  match pe_class t i with
  | PPE -> Printf.sprintf "PPE%d" i
  | SPE -> Printf.sprintf "SPE%d" (i - t.n_ppe)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Cell platform: %d PPE + %d SPE@,\
     interface bw: %.1f GB/s each direction, EIB %.1f GB/s@,\
     local store: %d kB (%d kB code, %d kB buffers)@,\
     DMA limits: %d incoming, %d to-PPE per SPE@]"
    t.n_ppe t.n_spe
    (t.bw /. gib)
    (t.eib_bw /. gib)
    (t.local_store / 1024)
    (t.code_size / 1024)
    (spe_memory_budget t / 1024)
    t.max_dma_in t.max_dma_to_ppe
