(** Model of the STI Cell BE processor (paper §2.1).

    A platform is a set of processing elements (PEs): [nP] PPE cores followed
    by [nS] SPE cores, indexed [0 .. nP + nS - 1] exactly as in the paper
    (PPEs first). Each PE owns a bidirectional communication interface of
    bandwidth [bw] bytes/s in each direction (bounded-multiport model); SPEs
    additionally have a local store of [local_store] bytes of which
    [code_size] bytes are consumed by the replicated application code, a DMA
    queue of [max_dma_in] concurrent incoming transfers and a separate queue
    of [max_dma_to_ppe] concurrent transfers towards PPEs. *)

type pe_class =
  | PPE  (** Power Processing Element: general-purpose, accesses main memory. *)
  | SPE  (** Synergistic Processing Element: vector core with a local store. *)

type t = private {
  n_ppe : int;  (** Number of PPE cores ([nP] in the paper). *)
  n_spe : int;  (** Number of SPE cores ([nS]). *)
  bw : float;  (** Per-interface bandwidth, bytes per second, each direction. *)
  eib_bw : float;  (** Aggregated EIB ring bandwidth (informational). *)
  local_store : int;  (** SPE local store size [LS], bytes. *)
  code_size : int;  (** Bytes of local store consumed by replicated code. *)
  max_dma_in : int;  (** Max concurrent incoming DMA transfers per SPE. *)
  max_dma_to_ppe : int;  (** Max concurrent SPE-to-PPE DMA transfers. *)
  ppe_speedup : float;
      (** Multiplier applied to PPE task durations (1.0 = nominal); lets
          experiments scale the relative PPE/SPE speeds. *)
  n_cells : int;
      (** Number of Cell chips; PEs are partitioned evenly (PPEs and SPEs
          separately, in index order). 1 for a single processor. *)
  inter_cell_bw : float;
      (** Bandwidth of the coherent inter-Cell interface (BIF), bytes/s in
          each direction per cell; only meaningful when [n_cells > 1]. *)
}

val make :
  ?n_ppe:int ->
  ?n_spe:int ->
  ?bw:float ->
  ?eib_bw:float ->
  ?local_store:int ->
  ?code_size:int ->
  ?max_dma_in:int ->
  ?max_dma_to_ppe:int ->
  ?ppe_speedup:float ->
  ?n_cells:int ->
  ?inter_cell_bw:float ->
  unit ->
  t
(** Build a platform; defaults are the QS22 single-Cell values below.
    @raise Invalid_argument on non-positive core counts or bandwidths, or if
    [code_size > local_store]. *)

val qs22 : ?n_spe:int -> unit -> t
(** IBM QS22 restricted to a single Cell (paper §6): 1 PPE, [n_spe] SPEs
    (default 8), 25 GB/s interfaces, 200 GB/s EIB, 256 kB local store. *)

val qs22_dual : ?n_spe:int -> ?flat:bool -> unit -> t
(** Both Cell processors of a QS22 (2 PPEs, up to 16 SPEs) — the
    multi-Cell extension the paper lists as future work (S7). By default
    the coherent inter-Cell interface (BIF, ~20 GB/s each direction) is a
    shared contention point for cross-Cell traffic; pass [~flat:true] for
    the optimistic contention-free model. *)

val ps3 : ?n_spe:int -> unit -> t
(** Sony PlayStation 3: identical except only up to 6 usable SPEs. *)

val n_pes : t -> int
(** Total number of processing elements [n = nP + nS]. *)

val pe_class : t -> int -> pe_class
(** Class of PE [i]; PPEs occupy indices [0 .. nP-1].
    @raise Invalid_argument if the index is out of range. *)

val is_spe : t -> int -> bool
val is_ppe : t -> int -> bool

val ppes : t -> int list
(** Indices of the PPE cores, in increasing order. *)

val spes : t -> int list
(** Indices of the SPE cores, in increasing order. *)

val spe_memory_budget : t -> int
(** Bytes of local store available for stream buffers: [LS - code]. *)

val cell_of : t -> int -> int
(** Cell chip hosting PE [i] (0 when [n_cells = 1]). *)

val pe_name : t -> int -> string
(** Human-readable name, e.g. ["PPE0"] or ["SPE3"]. *)

val pp : Format.formatter -> t -> unit
(** Summary printer. *)
