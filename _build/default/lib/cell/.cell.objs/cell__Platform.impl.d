lib/cell/platform.ml: Format Fun List Printf
