lib/cell/platform.mli: Format
