(* Splitmix64: fast, high-quality, trivially seedable. Reference:
   Steele, Lea, Flood, "Fast splittable pseudorandom number generators". *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    let v = r mod n in
    if r - v + (n - 1) < 0 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let split t =
  let seed = int64 t in
  { state = mix seed }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
