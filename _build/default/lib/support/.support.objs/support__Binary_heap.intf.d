lib/support/binary_heap.mli:
