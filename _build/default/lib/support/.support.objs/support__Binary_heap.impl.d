lib/support/binary_heap.ml: Array List
