lib/support/table.ml: Array List Printf String
