lib/support/rng.mli:
