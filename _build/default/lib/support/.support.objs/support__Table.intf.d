lib/support/table.mli:
