type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_float_row t ?(precision = 3) label xs =
  add_row t (label :: List.map (Printf.sprintf "%.*f" precision) xs)

let columns t = List.rev t.rows |> fun rows -> t.headers :: rows

let print ?(oc = stdout) t =
  let rows = columns t in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 rows in
  let pad r =
    let extra = ncols - List.length r in
    if extra <= 0 then r else r @ List.init extra (fun _ -> "")
  in
  let rows = List.map pad rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure rows;
  let render row =
    let cells = List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row in
    output_string oc ("  " ^ String.concat "  " cells ^ "\n")
  in
  (match rows with
  | header :: body ->
      render header;
      let total = Array.fold_left (fun acc w -> acc + w + 2) 2 widths in
      output_string oc (String.make total '-' ^ "\n");
      List.iter render body
  | [] -> ());
  flush oc

let to_csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  columns t
  |> List.map (fun row -> String.concat "," (List.map escape row))
  |> String.concat "\n"
