(** Minimal aligned-console-table printer used by the benchmark harness and
    the examples to report figure/table series. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; extra/missing cells are padded. *)

val add_float_row : t -> ?precision:int -> string -> float list -> unit
(** [add_float_row t label xs] appends [label :: printed xs]. *)

val print : ?oc:out_channel -> t -> unit
(** Render with aligned columns. *)

val to_csv : t -> string
(** CSV rendering (headers + rows). *)
