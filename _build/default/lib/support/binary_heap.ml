module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) = struct
  type t = { mutable data : E.t array; mutable size : int }

  let create ?(capacity = 16) () =
    ignore capacity;
    { data = [||]; size = 0 }

  let length h = h.size
  let is_empty h = h.size = 0

  let grow h x =
    let n = Array.length h.data in
    if h.size = n then begin
      let cap = if n = 0 then 16 else 2 * n in
      let data = Array.make cap x in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if E.compare h.data.(i) h.data.(parent) < 0 then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && E.compare h.data.(l) h.data.(!smallest) < 0 then
      smallest := l;
    if r < h.size && E.compare h.data.(r) h.data.(!smallest) < 0 then
      smallest := r;
    if !smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(!smallest);
      h.data.(!smallest) <- tmp;
      sift_down h !smallest
    end

  let add h x =
    grow h x;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let min_elt h = if h.size = 0 then raise Not_found else h.data.(0)

  let pop_min h =
    if h.size = 0 then raise Not_found;
    let root = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    root

  let clear h = h.size <- 0

  let iter f h =
    for i = 0 to h.size - 1 do
      f h.data.(i)
    done

  let to_sorted_list h =
    let copy = { data = Array.sub h.data 0 h.size; size = h.size } in
    let rec drain acc =
      if is_empty copy then List.rev acc else drain (pop_min copy :: acc)
    in
    drain []
end
