(** Imperative binary min-heap, used as the event queue of the discrete-event
    simulator and as the open list of branch-and-bound searches. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh empty heap. *)

  val length : t -> int
  val is_empty : t -> bool

  val add : t -> E.t -> unit
  (** Insert an element; O(log n). *)

  val min_elt : t -> E.t
  (** Smallest element. @raise Not_found if empty. *)

  val pop_min : t -> E.t
  (** Remove and return the smallest element. @raise Not_found if empty. *)

  val clear : t -> unit

  val iter : (E.t -> unit) -> t -> unit
  (** Iterate in unspecified order. *)

  val to_sorted_list : t -> E.t list
  (** Non-destructive: elements in increasing order. *)
end
