(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of the reproduction (DAG generation, cost
    sampling, property tests that need their own stream) uses this generator
    so that experiments are exactly reproducible from a printed seed. *)

type t
(** Mutable PRNG state. *)

val create : int -> t
(** [create seed] returns a fresh generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 30 uniform random bits, like [Random.bits]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t]; used to give sub-components their own stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
