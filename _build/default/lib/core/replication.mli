(** Analysis of {e general} mappings with task replication (paper §3.1).

    The paper considers, and rejects, the general scheme where different
    instances of one task run on different PEs (round-robin over a replica
    set): it improves raw compute balance but needs complex flow control,
    larger buffers, and — decisively — duplicates communication whenever a
    task with [peek > 0] is replicated, since every replica must receive
    all instances in its look-ahead window. This module makes that
    trade-off quantitative: it computes the steady-state resource loads of
    a replicated mapping under round-robin instance distribution, with the
    exact per-edge duplication factor evaluated over one
    [lcm(r_src, r_dst)] hyper-period.

    The analysis mirrors {!Steady_state}; it exists to let users (and the
    ablation benchmarks) verify the paper's §3.1 design decision on their
    own applications. Stateful tasks cannot be replicated. *)

type t
(** A replicated mapping: each task owns a non-empty list of distinct PEs
    and processes instance [i] on replica [i mod r]. *)

val make : Cell.Platform.t -> Streaming.Graph.t -> int list array -> t
(** @raise Invalid_argument on arity mismatch, empty or duplicated replica
    lists, out-of-range PEs, or replicated stateful tasks. *)

val of_mapping : Cell.Platform.t -> Streaming.Graph.t -> Mapping.t -> t
(** Degenerate replication (one replica per task): same loads as
    {!Steady_state.loads}. *)

val replicas : t -> int -> int list

val loads : Cell.Platform.t -> Streaming.Graph.t -> t -> Steady_state.loads
(** Per-PE resource usage per period: compute split evenly across replicas;
    every data instance shipped from its producing replica to each
    distinct consuming replica of its look-ahead window (local copies are
    free); buffers allocated in full on every replica (the conservative
    model the paper assumes when arguing buffers grow). *)

val period : Cell.Platform.t -> Streaming.Graph.t -> t -> float
val throughput : Cell.Platform.t -> Streaming.Graph.t -> t -> float

val violations :
  Cell.Platform.t -> Streaming.Graph.t -> t -> Steady_state.violation list
(** Memory and DMA checks under the replicated model (DMA counts one slot
    per distinct remote producer-replica/consumer-replica pair). *)

val duplication_factor : Streaming.Graph.t -> t -> int -> float
(** Average number of {e remote} copies of one instance of the given edge
    per period — 0 when producer and consumer replicas always coincide,
    above 1 when peeking forces duplication. *)
