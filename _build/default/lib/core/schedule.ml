module G = Streaming.Graph
module P = Cell.Platform

type activity = { task : int; instance : int }
type transfer = { edge : int; src_pe : int; dst_pe : int; instance : int }

type t = {
  platform : P.t;
  g : G.t;
  mapping : Mapping.t;
  fp : int array;
  period_seconds : float;
}

let build platform g mapping =
  let fp = Steady_state.first_periods g in
  let period_seconds =
    Steady_state.period platform (Steady_state.loads platform g mapping)
  in
  { platform; g; mapping; fp; period_seconds }

let period t = t.period_seconds
let throughput t = if t.period_seconds > 0. then 1. /. t.period_seconds else infinity
let first_period t k = t.fp.(k)
let warmup_periods t = Array.fold_left max 0 t.fp

let activities t p =
  if p < 0 then invalid_arg "Schedule.activities: negative period";
  List.filter_map
    (fun k ->
      if t.fp.(k) <= p then Some { task = k; instance = p - t.fp.(k) } else None)
    (List.init (G.n_tasks t.g) Fun.id)

let transfers t p =
  if p < 0 then invalid_arg "Schedule.transfers: negative period";
  List.filter_map
    (fun e ->
      let { G.src; dst; _ } = G.edge t.g e in
      let src_pe = Mapping.pe t.mapping src in
      let dst_pe = Mapping.pe t.mapping dst in
      (* The result of the instance computed by the source in period p-1 is
         in flight during period p, provided the source was active then. *)
      let instance = p - 1 - t.fp.(src) in
      if src_pe <> dst_pe && instance >= 0 then
        Some { edge = e; src_pe; dst_pe; instance }
      else None)
    (List.init (G.n_edges t.g) Fun.id)

let instance_latency t =
  let sinks = G.sinks t.g in
  List.fold_left (fun acc k -> max acc (t.fp.(k) + 1)) 0 sinks

let pp_period t g platform p ppf () =
  Format.fprintf ppf "@[<v>period %d (T = %.6fs):@," p t.period_seconds;
  let by_pe = Hashtbl.create 8 in
  List.iter
    (fun { task; instance } ->
      let pe = Mapping.pe t.mapping task in
      let cur = try Hashtbl.find by_pe pe with Not_found -> [] in
      Hashtbl.replace by_pe pe ((task, instance) :: cur))
    (activities t p);
  for pe = 0 to P.n_pes platform - 1 do
    match Hashtbl.find_opt by_pe pe with
    | None -> ()
    | Some items ->
        let render (task, instance) =
          Printf.sprintf "%s[%d]" (G.task g task).Streaming.Task.name instance
        in
        Format.fprintf ppf "  %s: %s@,"
          (P.pe_name platform pe)
          (String.concat " " (List.rev_map render items))
  done;
  let render_transfer { edge; src_pe; dst_pe; instance } =
    let { G.src; dst; _ } = G.edge g edge in
    Format.fprintf ppf "  %s -> %s: D(%s,%s)[%d]@,"
      (P.pe_name platform src_pe)
      (P.pe_name platform dst_pe)
      (G.task g src).Streaming.Task.name
      (G.task g dst).Streaming.Task.name instance
  in
  List.iter render_transfer (transfers t p);
  Format.fprintf ppf "@]"
