(** Mixed-integer linear programs for throughput-optimal mapping (paper §5).

    Two equivalent formulations are provided.

    {b Full} ([build_full]) is the paper's Linear Program (1) verbatim:
    binaries [alpha_i^k] (task k on PE i), transfer variables
    [beta_{i,j}^{k,l}] (data D_{k,l} sent from PE i to PE j) and the period
    [T], under constraints (1a)–(1k). Because every data is single-sourced
    ((1c)/(1d)) and all loads are minimized, the [beta] take integral
    values whenever the [alpha] are integral, so they are declared
    continuous by default and branching happens on [alpha] only — exactly
    how CPLEX treats the paper's model. Pass [~integral_beta:true] to force
    integer [beta] (used by equivalence tests).

    {b Compact} ([build_compact]) replaces the O(n²·E) [beta] family with
    O(n·E) difference-linearized indicators: per edge e = (k,l) and PE i,
    [out_i^e >= alpha_i^k - alpha_i^l], [in_i^e >= alpha_i^l - alpha_i^k],
    and for the SPE-to-PPE DMA cap [gamma_i^e >= alpha_i^k + sum_{j in
    PPEs} alpha_j^l - 1]. For integral [alpha] these aggregates equal the
    [beta] aggregates, so both programs have the same optimal throughput
    (asserted by the test suite); the compact one is much faster to solve.

    Both accept [~share_colocated_buffers:true], modelling the §7 memory
    optimization: an edge with both endpoints on the same SPE needs one
    buffer, not two. *)

type t = {
  problem : Lp.Problem.t;
  t_var : Lp.Problem.var;  (** The period [T] (the minimized objective). *)
  alpha : Lp.Problem.var array array;  (** [alpha.(k).(i)]: task k on PE i. *)
  encode : Mapping.t -> float array;
      (** Full assignment realizing a mapping: [alpha] from the mapping,
          every auxiliary transfer variable at its induced value, and [T]
          at the mapping's period. The result satisfies the program (e.g.
          for {!Lp.Certify.check}). *)
}

val build_full :
  ?integral_beta:bool ->
  ?share_colocated_buffers:bool ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  t

val build_compact :
  ?share_colocated_buffers:bool -> Cell.Platform.t -> Streaming.Graph.t -> t

val warm_start : t -> Cell.Platform.t -> Streaming.Graph.t -> Mapping.t -> float array
(** Assignment vector seeding {!Lp.Branch_bound.solve}: the [alpha] encode
    the given mapping (auxiliary variables are left for the LP to settle;
    use [t.encode] for a fully-valued assignment). *)

val mapping_of_solution :
  t -> Cell.Platform.t -> Streaming.Graph.t -> float array -> Mapping.t
(** Decode a solver assignment: each task goes to its argmax [alpha]. *)
