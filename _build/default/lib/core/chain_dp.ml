module G = Streaming.Graph
module P = Cell.Platform

let chain_order g =
  (* Follow the unique successor chain from the unique source. *)
  match G.sources g with
  | [ source ] ->
      let n = G.n_tasks g in
      let rec follow k acc count =
        if count > n then None
        else
          match G.succs g k with
          | [] -> Some (List.rev (k :: acc))
          | [ next ] -> follow next (k :: acc) (count + 1)
          | _ :: _ :: _ -> None
      in
      (match follow source [] 1 with
      | Some order when List.length order = n ->
          if List.for_all (fun k -> List.length (G.preds g k) <= 1) order then
            Some (Array.of_list order)
          else None
      | _ -> None)
  | _ -> None

let is_chain g = G.n_tasks g > 0 && chain_order g <> None

(* DP feasibility check for a candidate period [t]: minimum PPE work of the
   whole chain using at most [max_intervals] SPE intervals, each interval
   respecting compute <= t and memory <= budget. Returns the optimal
   choices for reconstruction. *)
type choice = On_ppe | Interval_from of int

let dp_run ~w_ppe ~w_spe ~mem ~budget ~max_intervals t =
  let n = Array.length w_ppe in
  let inf = infinity in
  (* dp.(i).(s): min PPE work of the first i tasks using s intervals. *)
  let dp = Array.make_matrix (n + 1) (max_intervals + 1) inf in
  let choices = Array.make_matrix (n + 1) (max_intervals + 1) On_ppe in
  for s = 0 to max_intervals do
    dp.(0).(s) <- 0.
  done;
  for i = 0 to n - 1 do
    for s = 0 to max_intervals do
      if dp.(i).(s) < inf then begin
        (* Task i on the PPE. *)
        let ppe = dp.(i).(s) +. w_ppe.(i) in
        if ppe < dp.(i + 1).(s) then begin
          dp.(i + 1).(s) <- ppe;
          choices.(i + 1).(s) <- On_ppe
        end;
        (* An SPE interval [i .. j-1]. *)
        if s < max_intervals then begin
          let work = ref 0. and memory = ref 0. in
          let j = ref i in
          let continue_ = ref true in
          while !continue_ && !j < n do
            work := !work +. w_spe.(!j);
            memory := !memory +. mem.(!j);
            if !work <= t +. 1e-12 && !memory <= budget +. 1e-9 then begin
              incr j;
              if dp.(i).(s) < dp.(!j).(s + 1) then begin
                dp.(!j).(s + 1) <- dp.(i).(s);
                choices.(!j).(s + 1) <- Interval_from i
              end
            end
            else continue_ := false
          done
        end
      end
    done
  done;
  (dp, choices)

let reconstruct ~choices ~order ~spes assignment best_s n =
  let rec walk i s spe_idx =
    if i > 0 then
      match choices.(i).(s) with
      | On_ppe ->
          assignment.(order.(i - 1)) <- 0;
          walk (i - 1) s spe_idx
      | Interval_from start ->
          let spe = List.nth spes spe_idx in
          for pos = start to i - 1 do
            assignment.(order.(pos)) <- spe
          done;
          walk start (s - 1) (spe_idx + 1)
  in
  walk n best_s 0

let solve platform g =
  match chain_order g with
  | None -> None
  | Some order ->
      let n = Array.length order in
      let fp = Steady_state.first_periods g in
      let buff = Steady_state.buffer_sizes ~first_periods:fp g in
      let task_mem k =
        let sum = List.fold_left (fun acc e -> acc +. buff.(e)) 0. in
        sum (G.out_edges g k) +. sum (G.in_edges g k)
      in
      let w_ppe =
        Array.map
          (fun k -> (G.task g k).Streaming.Task.w_ppe /. platform.P.ppe_speedup)
          order
      in
      let w_spe = Array.map (fun k -> (G.task g k).Streaming.Task.w_spe) order in
      let mem = Array.map task_mem order in
      let budget = float_of_int (P.spe_memory_budget platform) in
      let max_intervals = List.length (P.spes platform) in
      let spes = P.spes platform in
      let feasible t =
        let dp, _ = dp_run ~w_ppe ~w_spe ~mem ~budget ~max_intervals t in
        Array.exists (fun v -> v <= t +. 1e-12) dp.(n)
      in
      (* The PPE-only mapping is always feasible, so the optimum lies in
         (0, sum w_ppe]. *)
      let hi = ref (Array.fold_left ( +. ) 0. w_ppe) in
      let lo = ref 0. in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if feasible mid then hi := mid else lo := mid
      done;
      let t = !hi in
      let dp, choices = dp_run ~w_ppe ~w_spe ~mem ~budget ~max_intervals t in
      let best_s = ref 0 in
      for s = 0 to max_intervals do
        if dp.(n).(s) <= t +. 1e-12 && dp.(n).(!best_s) > dp.(n).(s) then
          best_s := s
      done;
      if dp.(n).(!best_s) > t +. 1e-12 then
        (* Numerical corner: fall back to PPE-only. *)
        Some (Mapping.all_on_ppe platform g)
      else begin
        let assignment = Array.make n 0 in
        reconstruct ~choices ~order ~spes assignment !best_s n;
        Some (Mapping.make platform g assignment)
      end
