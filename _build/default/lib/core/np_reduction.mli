(** Executable version of the paper's NP-completeness argument (§3.2,
    Theorem 1): Minimum Multiprocessor Scheduling on two machines reduces
    to Cell-Mapping.

    An instance of the source problem is a set of tasks with per-machine
    lengths and a makespan bound [b]; the reduction builds a streaming
    chain with zero-size data, one PPE and one SPE, and throughput bound
    [1/b]. The test suite uses this module to check both directions of the
    equivalence on exhaustively enumerated small instances. *)

type mms_instance = {
  lengths : (float * float) array;
      (** [lengths.(k) = (l1, l2)]: duration of task k on machine 1/2. *)
  bound : float;  (** Makespan bound [B']. *)
}

val to_cell_instance :
  mms_instance -> Cell.Platform.t * Streaming.Graph.t * float
(** The Cell-Mapping instance [(platform, chain graph, throughput bound)]
    of the proof: machine 1 becomes the PPE, machine 2 the SPE. *)

val mapping_of_allocation : mms_instance -> int array -> Cell.Platform.t * Mapping.t
(** Encode a machine allocation ([0] = machine 1, [1] = machine 2) as a
    mapping of the reduced instance. *)

val allocation_of_mapping : Mapping.t -> int array
(** Decode back; inverse of {!mapping_of_allocation}. *)

val mms_feasible : mms_instance -> int array -> bool
(** Direct check: does the allocation meet the makespan bound? *)

val cell_feasible : mms_instance -> int array -> bool
(** Check through the reduction: does the encoded mapping achieve the
    reduced throughput bound ({!Steady_state.achieves})? Theorem 1 states
    this equals {!mms_feasible}. *)
