(** Explicit periodic steady-state schedule (paper §3.1, Fig. 3).

    Given a mapping, the schedule is periodic with period [T]: after an
    initialization phase, during period [p] the PE in charge of task [T_k]
    processes instance [p - firstPeriod(T_k)] while the data of
    neighbouring instances is in flight. This module materializes that
    object: what every PE computes and what every edge carries during an
    arbitrary period — useful for inspection, for driving a runtime, and
    for the paper's Fig. 3-style renderings. *)

type activity = {
  task : int;
  instance : int;  (** Instance processed during the queried period. *)
}

type transfer = {
  edge : int;
  src_pe : int;
  dst_pe : int;
  instance : int;  (** Instance of the data in flight during the period. *)
}

type t

val build : Cell.Platform.t -> Streaming.Graph.t -> Mapping.t -> t
(** Analyze the mapping; uses the paper's mapping-independent
    [firstPeriod]. *)

val period : t -> float
(** Duration [T] of one period (seconds). *)

val throughput : t -> float

val first_period : t -> int -> int
(** [firstPeriod T_k]. *)

val warmup_periods : t -> int
(** Number of periods before every task is active (max [firstPeriod]). *)

val activities : t -> int -> activity list
(** [activities t p]: what runs during period [p >= 0], tasks whose
    [firstPeriod <= p], with the instance each processes. *)

val transfers : t -> int -> transfer list
(** Remote data in flight during period [p]: the result of instance
    [p - firstPeriod(src) - peek-adjusted offset] produced during the
    previous period by each remote edge's source, when available. *)

val instance_latency : t -> int
(** Pipeline depth in periods: number of periods between a source instance
    entering and the same instance leaving the last task. *)

val pp_period : t -> Streaming.Graph.t -> Cell.Platform.t -> int ->
  Format.formatter -> unit -> unit
(** Render one period like the paper's Fig. 3(b). *)
