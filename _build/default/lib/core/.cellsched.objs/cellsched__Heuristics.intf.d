lib/core/heuristics.mli: Cell Mapping Streaming Support
