lib/core/schedule.ml: Array Cell Format Fun Hashtbl List Mapping Printf Steady_state Streaming String
