lib/core/np_reduction.ml: Array Cell Mapping Printf Steady_state Streaming
