lib/core/milp_solver.ml: Cell Float Heuristics Lp Mapping Mapping_search Milp_formulation Steady_state Streaming Unix
