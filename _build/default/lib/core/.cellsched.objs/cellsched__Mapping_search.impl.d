lib/core/mapping_search.ml: Array Cell Float Fun Heuristics List Mapping Steady_state Streaming Unix
