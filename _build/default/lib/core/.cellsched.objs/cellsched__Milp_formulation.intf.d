lib/core/milp_formulation.mli: Cell Lp Mapping Streaming
