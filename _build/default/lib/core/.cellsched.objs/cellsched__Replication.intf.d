lib/core/replication.mli: Cell Mapping Steady_state Streaming
