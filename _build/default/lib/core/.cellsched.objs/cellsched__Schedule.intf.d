lib/core/schedule.mli: Cell Format Mapping Streaming
