lib/core/np_reduction.mli: Cell Mapping Streaming
