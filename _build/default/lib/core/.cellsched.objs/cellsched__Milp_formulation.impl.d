lib/core/milp_formulation.ml: Array Cell Fun List Lp Mapping Printf Steady_state Streaming
