lib/core/replication.ml: Array Cell Fun Hashtbl List Mapping Steady_state Streaming
