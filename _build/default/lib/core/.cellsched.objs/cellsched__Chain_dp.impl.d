lib/core/chain_dp.ml: Array Cell List Mapping Steady_state Streaming
