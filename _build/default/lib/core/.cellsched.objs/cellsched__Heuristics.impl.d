lib/core/heuristics.ml: Array Cell Chain_dp Fun List Lp Mapping Milp_formulation Steady_state Streaming Support
