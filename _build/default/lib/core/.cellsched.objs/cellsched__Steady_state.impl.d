lib/core/steady_state.ml: Array Cell Float Format Fun List Mapping Streaming
