lib/core/mapping.ml: Array Cell Format Fun List Streaming String
