lib/core/steady_state.mli: Cell Format Mapping Streaming
