lib/core/chain_dp.mli: Cell Mapping Streaming
