lib/core/mapping_search.mli: Cell Mapping Streaming
