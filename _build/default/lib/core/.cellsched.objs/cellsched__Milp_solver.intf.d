lib/core/milp_solver.mli: Cell Mapping Streaming
