module G = Streaming.Graph
module P = Cell.Platform

let ppe_only platform g = Mapping.all_on_ppe platform g

(* Incremental placement state shared by the greedy strategies: per-PE
   compute load, SPE memory footprint and DMA counters, maintained while
   tasks are placed in topological order (so a task's predecessors are
   always placed before it). *)
type state = {
  platform : P.t;
  g : G.t;
  buff : float array;  (* per-edge buffer bytes *)
  assignment : int array;  (* -1 = not placed yet *)
  compute : float array;
  memory : float array;
  dma_in : int array;
  dma_to_ppe : int array;
}

let make_state platform g =
  let fp = Steady_state.first_periods g in
  {
    platform;
    g;
    buff = Steady_state.buffer_sizes ~first_periods:fp g;
    assignment = Array.make (G.n_tasks g) (-1);
    compute = Array.make (P.n_pes platform) 0.;
    memory = Array.make (P.n_pes platform) 0.;
    dma_in = Array.make (P.n_pes platform) 0;
    dma_to_ppe = Array.make (P.n_pes platform) 0;
  }

let task_buffer_bytes st k =
  let sum = List.fold_left (fun acc e -> acc +. st.buff.(e)) 0. in
  sum (G.out_edges st.g k) +. sum (G.in_edges st.g k)

(* Number of in-edges of [k] whose (already placed) producer is remote. *)
let remote_in_edges st k pe =
  List.length
    (List.filter
       (fun e ->
         let src = (G.edge st.g e).G.src in
         st.assignment.(src) >= 0 && st.assignment.(src) <> pe)
       (G.in_edges st.g k))

(* Predecessor SPEs that would gain a to-PPE transfer if [k] lands on a
   PPE. *)
let spe_preds st k =
  List.filter_map
    (fun e ->
      let src = (G.edge st.g e).G.src in
      let pe = st.assignment.(src) in
      if pe >= 0 && P.is_spe st.platform pe then Some pe else None)
    (G.in_edges st.g k)

let can_place st k pe =
  if P.is_spe st.platform pe then begin
    let budget = float_of_int (P.spe_memory_budget st.platform) in
    st.memory.(pe) +. task_buffer_bytes st k <= budget
    && st.dma_in.(pe) + remote_in_edges st k pe <= st.platform.P.max_dma_in
  end
  else
    (* A PPE placement consumes a to-PPE DMA slot on every remote SPE
       predecessor. *)
    List.for_all
      (fun spe -> st.dma_to_ppe.(spe) + 1 <= st.platform.P.max_dma_to_ppe)
      (spe_preds st k)

let place st k pe =
  st.assignment.(k) <- pe;
  let cls = P.pe_class st.platform pe in
  let w = Streaming.Task.w (G.task st.g k) cls in
  let w = if cls = P.PPE then w /. st.platform.P.ppe_speedup else w in
  st.compute.(pe) <- st.compute.(pe) +. w;
  if P.is_spe st.platform pe then
    st.memory.(pe) <- st.memory.(pe) +. task_buffer_bytes st k;
  let account_in e =
    let src = (G.edge st.g e).G.src in
    let src_pe = st.assignment.(src) in
    if src_pe >= 0 && src_pe <> pe then begin
      if P.is_spe st.platform pe then st.dma_in.(pe) <- st.dma_in.(pe) + 1;
      if P.is_spe st.platform src_pe && P.is_ppe st.platform pe then
        st.dma_to_ppe.(src_pe) <- st.dma_to_ppe.(src_pe) + 1
    end
  in
  List.iter account_in (G.in_edges st.g k)

let finish st =
  Mapping.make st.platform st.g
    (Array.map (fun pe -> if pe < 0 then 0 else pe) st.assignment)

let greedy_generic ~choose platform g =
  let st = make_state platform g in
  let order = G.topological_order g in
  let handle k =
    match choose st k with
    | Some pe -> place st k pe
    | None -> place st k 0
  in
  Array.iter handle order;
  finish st

let greedy_mem platform g =
  let choose st k =
    let candidates = List.filter (can_place st k) (P.spes st.platform) in
    match candidates with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left
             (fun best pe -> if st.memory.(pe) < st.memory.(best) then pe else best)
             first rest)
  in
  greedy_generic ~choose platform g

let greedy_cpu platform g =
  let choose st k =
    let load pe =
      let cls = P.pe_class st.platform pe in
      let w = Streaming.Task.w (G.task st.g k) cls in
      let w = if cls = P.PPE then w /. st.platform.P.ppe_speedup else w in
      st.compute.(pe) +. w
    in
    let candidates =
      List.filter (can_place st k)
        (List.init (P.n_pes st.platform) Fun.id)
    in
    match candidates with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left
             (fun best pe -> if load pe < load best then pe else best)
             first rest)
  in
  greedy_generic ~choose platform g

(* Offload tasks to SPEs by decreasing value density w_ppe / memory
   footprint: the optimal structure when the SPE local stores are the
   binding resource (the usual regime on the Cell; cf. the paper's
   observation that SPE memory dominates the mapping problem). *)
let density_pack platform g =
  let st = make_state platform g in
  let nk = G.n_tasks g in
  let w_ppe k =
    (G.task g k).Streaming.Task.w_ppe /. platform.P.ppe_speedup
  in
  let density k =
    let mem = task_buffer_bytes st k in
    if mem <= 0. then infinity else w_ppe k /. mem
  in
  let by_density = Array.init nk Fun.id in
  Array.sort (fun a b -> compare (density b) (density a)) by_density;
  let budget = float_of_int (P.spe_memory_budget platform) in
  let spes = Array.of_list (P.spes platform) in
  let place_spe k =
    (* Least-loaded (compute) SPE with room for the buffers. *)
    let best = ref (-1) in
    Array.iter
      (fun pe ->
        if st.memory.(pe) +. task_buffer_bytes st k <= budget then
          match !best with
          | -1 -> best := pe
          | b -> if st.compute.(pe) < st.compute.(b) then best := pe)
      spes;
    !best
  in
  Array.iter
    (fun k ->
      match place_spe k with
      | -1 -> st.assignment.(k) <- 0
      | pe ->
          st.assignment.(k) <- pe;
          st.memory.(pe) <- st.memory.(pe) +. task_buffer_bytes st k;
          st.compute.(pe) <-
            st.compute.(pe) +. (G.task g k).Streaming.Task.w_spe)
    by_density;
  finish st

let random ~rng platform g =
  let n = P.n_pes platform in
  Mapping.make platform g
    (Array.init (G.n_tasks g) (fun _ -> Support.Rng.int rng n))

let local_search ?(max_passes = 50) platform g mapping =
  let assignment = Mapping.to_array mapping in
  let n = P.n_pes platform in
  let best_period =
    ref
      (Steady_state.period platform
         (Steady_state.loads platform g (Mapping.make platform g assignment)))
  in
  let eval () =
    let candidate = Mapping.make platform g assignment in
    if Steady_state.feasible platform g candidate then
      Some (Steady_state.period platform (Steady_state.loads platform g candidate))
    else None
  in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    (* Single-task moves. *)
    for k = 0 to G.n_tasks g - 1 do
      let home = assignment.(k) in
      let best_move = ref None in
      for pe = 0 to n - 1 do
        if pe <> home then begin
          assignment.(k) <- pe;
          match eval () with
          | Some t when t < !best_period -. 1e-12 ->
              best_period := t;
              best_move := Some pe
          | _ -> ()
        end
      done;
      assignment.(k) <- (match !best_move with Some pe -> improved := true; pe | None -> home)
    done;
    (* Pairwise swaps: essential when the local stores are full, where no
       single move is feasible but exchanging tasks is. *)
    for k1 = 0 to G.n_tasks g - 1 do
      for k2 = k1 + 1 to G.n_tasks g - 1 do
        if assignment.(k1) <> assignment.(k2) then begin
          let p1 = assignment.(k1) and p2 = assignment.(k2) in
          assignment.(k1) <- p2;
          assignment.(k2) <- p1;
          match eval () with
          | Some t when t < !best_period -. 1e-12 ->
              best_period := t;
              improved := true
          | _ ->
              assignment.(k1) <- p1;
              assignment.(k2) <- p2
        end
      done
    done
  done;
  Mapping.make platform g assignment

(* The dense-inverse simplex degrades on very large LPs; past this row
   count the rounding falls back to the density heuristic. *)
let lp_rounding_row_limit = 2000

let lp_rounding ?(improve = true) platform g =
  let formulation = Milp_formulation.build_compact platform g in
  let fallback () =
    let m = density_pack platform g in
    if Steady_state.feasible platform g m then m else greedy_mem platform g
  in
  if Lp.Problem.n_constrs formulation.Milp_formulation.problem > lp_rounding_row_limit
  then fallback ()
  else
  match Lp.Simplex.solve formulation.Milp_formulation.problem with
  | exception Failure _ -> fallback ()
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> fallback ()
  | Lp.Simplex.Optimal sol ->
      let alpha = formulation.Milp_formulation.alpha in
      let st = make_state platform g in
      let order = G.topological_order g in
      let handle k =
        (* PEs by decreasing fractional alpha, filtered by feasibility. *)
        let ranked =
          List.sort
            (fun a b -> compare sol.Lp.Simplex.x.(alpha.(k).(b)) sol.Lp.Simplex.x.(alpha.(k).(a)))
            (List.init (P.n_pes platform) Fun.id)
        in
        match List.find_opt (can_place st k) ranked with
        | Some pe -> place st k pe
        | None -> place st k 0
      in
      Array.iter handle order;
      let mapping = finish st in
      if improve && Steady_state.feasible platform g mapping then
        local_search platform g mapping
      else mapping

let best_feasible platform g candidates =
  let feasible =
    List.filter (fun (_, m) -> Steady_state.feasible platform g m) candidates
  in
  let throughput (_, m) = Steady_state.throughput platform g m in
  match feasible with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best c -> if throughput c > throughput best then c else best)
           first rest)

let standard_candidates ?(with_lp = true) platform g =
  let base =
    [
      ("ppe-only", ppe_only platform g);
      ("greedy-mem", greedy_mem platform g);
      ("greedy-cpu", greedy_cpu platform g);
      ("density-pack", density_pack platform g);
    ]
  in
  let base =
    match Chain_dp.solve platform g with
    | Some m -> base @ [ ("chain-dp", m) ]
    | None -> base
  in
  if with_lp then base @ [ ("lp-round", lp_rounding platform g) ] else base
