type mms_instance = { lengths : (float * float) array; bound : float }

(* The reduction neutralizes every Cell-specific constraint that the proof
   ignores: data sizes are zero, so buffers, bandwidth and DMA counts are
   all trivially satisfied. *)
let to_cell_instance inst =
  let platform = Cell.Platform.make ~n_ppe:1 ~n_spe:1 () in
  let tasks =
    Array.mapi
      (fun k (l1, l2) ->
        Streaming.Task.make
          ~name:(Printf.sprintf "T%d" (k + 1))
          ~w_ppe:l1 ~w_spe:l2 ())
      inst.lengths
  in
  let graph = Streaming.Graph.chain tasks ~data_bytes:0. in
  (platform, graph, 1. /. inst.bound)

let mapping_of_allocation inst allocation =
  let platform, graph, _ = to_cell_instance inst in
  if Array.length allocation <> Array.length inst.lengths then
    invalid_arg "Np_reduction.mapping_of_allocation: arity";
  let assignment =
    Array.map
      (function
        | 0 -> 0  (* machine 1 -> PPE0 *)
        | 1 -> 1  (* machine 2 -> SPE0 *)
        | _ -> invalid_arg "Np_reduction.mapping_of_allocation: machine id")
      allocation
  in
  (platform, Mapping.make platform graph assignment)

let allocation_of_mapping mapping =
  Array.init (Mapping.n_tasks mapping) (fun k -> Mapping.pe mapping k)

let mms_feasible inst allocation =
  let m1 = ref 0. and m2 = ref 0. in
  Array.iteri
    (fun k machine ->
      let l1, l2 = inst.lengths.(k) in
      if machine = 0 then m1 := !m1 +. l1 else m2 := !m2 +. l2)
    allocation;
  !m1 <= inst.bound +. 1e-12 && !m2 <= inst.bound +. 1e-12

let cell_feasible inst allocation =
  let _, graph, rho = to_cell_instance inst in
  let platform, mapping = mapping_of_allocation inst allocation in
  Steady_state.achieves platform graph mapping rho
