(** Interval dynamic programming for chain applications.

    The paper's NP-completeness proof (§3.2) reduces from scheduling a
    {e chain} of tasks, and its third experimental graph is a 50-task
    chain. For chains, a classical structure applies: map at most one
    {e contiguous interval} of the chain to each SPE and leave the rest on
    the PPE. Among interval mappings the optimum can be found in polynomial
    time by a binary search on the period combined with a DP that, for a
    candidate period [T], finds the minimum PPE work achievable with at
    most [nS] intervals whose SPE work and local-store footprint both fit.

    Interval mappings also minimize cut edges (at most two remote edges per
    SPE), which is why they behave well under the Cell's DMA limits. The
    result is not guaranteed optimal among {e all} mappings, but it is a
    strong polynomial-time baseline for chains — one of the "involved
    heuristics" the paper's conclusion calls for. *)

val is_chain : Streaming.Graph.t -> bool
(** True when every task has at most one predecessor and one successor and
    the graph is connected as a single path. *)

val solve : Cell.Platform.t -> Streaming.Graph.t -> Mapping.t option
(** Best interval mapping of a chain; [None] if the graph is not a chain.
    The returned mapping is feasible (memory and DMA limits hold). *)
