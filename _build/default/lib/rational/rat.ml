module B = Bigint

(* Invariant: den > 0, gcd(|num|, den) = 1, zero is 0/1. *)
type t = { n : B.t; d : B.t }

let normalize n d =
  if B.sign d = 0 then raise Division_by_zero;
  let n, d = if B.sign d < 0 then (B.neg n, B.neg d) else (n, d) in
  if B.sign n = 0 then { n = B.zero; d = B.one }
  else begin
    let g = B.gcd n d in
    if B.equal g B.one then { n; d }
    else { n = fst (B.divmod n g); d = fst (B.divmod d g) }
  end

let make n d = normalize n d
let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let of_int i = { n = B.of_int i; d = B.one }
let of_ints n d = normalize (B.of_int n) (B.of_int d)

let of_float x =
  match Float.classify_float x with
  | FP_nan | FP_infinite -> invalid_arg "Rat.of_float: not finite"
  | FP_zero -> zero
  | FP_normal | FP_subnormal ->
      (* x = m * 2^(e-53) with m an integer of at most 53 bits. *)
      let m, e = Float.frexp x in
      let mant = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
      let exp = e - 53 in
      if exp >= 0 then { n = B.shift_left (B.of_int mant) exp; d = B.one }
      else normalize (B.of_int mant) (B.shift_left B.one (-exp))

let to_float t =
  (* Euclidean division gives n = q*d + r with 0 <= r < d, so the value is
     q + r/d with a non-negative fraction, correct for negatives too. *)
  let q, r = B.divmod t.n t.d in
  let qf =
    match B.to_int_opt q with
    | Some i -> float_of_int i
    | None -> float_of_string (B.to_string q)
  in
  if B.sign r = 0 then qf
  else begin
    let scaled = fst (B.divmod (B.shift_left r 53) t.d) in
    match B.to_int_opt scaled with
    | Some i -> qf +. Float.ldexp (float_of_int i) (-53)
    | None -> qf
  end

let num t = t.n
let den t = t.d

let add a b =
  normalize (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)

let neg a = { a with n = B.neg a.n }
let sub a b = add a (neg b)
let mul a b = normalize (B.mul a.n b.n) (B.mul a.d b.d)
let inv a = normalize a.d a.n
let div a b = mul a (inv b)
let abs a = { a with n = B.abs a.n }
let sign a = B.sign a.n

let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer t = B.equal t.d B.one

let to_string t =
  if is_integer t then B.to_string t.n
  else B.to_string t.n ^ "/" ^ B.to_string t.d

let pp ppf t = Format.pp_print_string ppf (to_string t)
