(** Arbitrary-precision signed integers, written from scratch (no zarith in
    the sealed environment). Sign-magnitude representation over base-2^30
    limbs; operations are schoolbook (quadratic multiplication and long
    division), which is ample for the certification workloads of
    {!Rat} / {!Lp.Certify}. All values are immutable and normalized (no
    leading zero limbs, no negative zero). *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int_opt : t -> int option
(** [None] when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Decimal, with an optional leading ['-'].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val neg : t -> t
val abs : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: [divmod a b = (q, r)] with [a = q*b + r] and
    [0 <= r < |b|]. @raise Division_by_zero. *)

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val shift_left : t -> int -> t
(** Multiplication by [2^k], [k >= 0]. *)

val pp : Format.formatter -> t -> unit
