(** Exact rational arithmetic over {!Bigint}.

    Values are kept normalized: positive denominator, numerator and
    denominator coprime, zero represented as [0/1]. Because IEEE floats
    are dyadic rationals, {!of_float} is {e exact}: it converts the float
    bit pattern, not a decimal approximation — which is what makes exact
    certification of floating-point solver output possible
    ({!Lp.Certify}). *)

type t

val zero : t
val one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den]; @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den]. *)

val of_float : float -> t
(** Exact value of a finite float. @raise Invalid_argument on NaN or
    infinities. *)

val to_float : t -> float
(** Nearest float (may round). *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool

val to_string : t -> string
(** ["num/den"], or just ["num"] for integers. *)

val pp : Format.formatter -> t -> unit
