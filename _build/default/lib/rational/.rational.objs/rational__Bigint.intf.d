lib/rational/bigint.mli: Format
