lib/rational/rat.mli: Bigint Format
