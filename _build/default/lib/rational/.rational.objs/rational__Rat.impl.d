lib/rational/rat.ml: Bigint Float Format Int64
