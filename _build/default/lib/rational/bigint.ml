(* Sign-magnitude, little-endian limbs in base 2^30. Invariants: [mag] has
   no trailing (most-significant) zero limbs; [sign = 0] iff [mag] is
   empty. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int x =
  if x = 0 then zero
  else begin
    let sign = if x > 0 then 1 else -1 in
    (* min_int's magnitude overflows [abs]; go through the absolute value
       limb by limb using negative arithmetic. *)
    let rec limbs acc v =
      if v = 0 then List.rev acc
      else limbs ((-(v mod base)) :: acc) (v / base)
    in
    let v = if x > 0 then -x else x in
    normalize sign (Array.of_list (limbs [] v))
  end

let one = of_int 1
let minus_one = of_int (-1)

let sign t = t.sign
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec scan i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else scan (i - 1)
    in
    scan (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + if i < lb then b.(i) else 0
    in
    out.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  out

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  out

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        (* ai, b_j < 2^30, product < 2^60: fits a 63-bit int. *)
        let v = out.(i + j) + (ai * b.mag.(j)) + !carry in
        out.(i + j) <- v land mask;
        carry := v lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land mask;
        carry := v lsr base_bits;
        incr k
      done
    done;
    normalize (a.sign * b.sign) out
  end

let nbits mag =
  let n = Array.length mag in
  if n = 0 then 0
  else begin
    let top = mag.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * base_bits) + width 1
  end

let bit mag i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length mag then 0 else (mag.(limb) lsr off) land 1

(* Binary long division on magnitudes: a = q*b + r, 0 <= r < b (b <> 0).
   Invariant: r < b before each bit is pushed, so r always fits in
   [length b + 1] limbs. *)
let divmod_mag a b =
  let total = nbits a in
  let nq = max 1 ((total + base_bits - 1) / base_bits) in
  let q = Array.make nq 0 in
  let lb = Array.length b in
  let r = Array.make (lb + 1) 0 in
  (* r <- 2r + bit *)
  let push_bit bv =
    let carry = ref bv in
    for i = 0 to lb do
      let v = (r.(i) lsl 1) lor !carry in
      r.(i) <- v land mask;
      carry := v lsr base_bits
    done
  in
  let r_ge_b () =
    if r.(lb) <> 0 then true
    else begin
      let rec scan i =
        if i < 0 then true
        else if r.(i) <> b.(i) then r.(i) > b.(i)
        else scan (i - 1)
      in
      scan (lb - 1)
    end
  in
  let subtract_b () =
    let borrow = ref 0 in
    for i = 0 to lb do
      let d = r.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done
  in
  for i = total - 1 downto 0 do
    push_bit (bit a i);
    if r_ge_b () then begin
      subtract_b ();
      q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    end
  done;
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q_abs = normalize 1 qm and r_abs = normalize 1 rm in
    if a.sign > 0 then
      ((if b.sign > 0 then q_abs else neg q_abs), r_abs)
    else if r_abs.sign = 0 then
      ((if b.sign > 0 then neg q_abs else q_abs), zero)
    else begin
      let q1 = add q_abs one in
      ( (if b.sign > 0 then neg q1 else q1),
        normalize 1 (sub_mag (abs b).mag r_abs.mag) )
    end
  end

let rec gcd a b =
  let a = abs a and b = abs b in
  if b.sign = 0 then a else gcd b (snd (divmod a b))

let shift_left t k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if t.sign = 0 || k = 0 then t
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length t.mag in
    let out = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = t.mag.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land mask);
      out.(i + limb_shift + 1) <- v lsr base_bits
    done;
    normalize t.sign out
  end

let to_int_opt t =
  (* Accumulate and watch for overflow. *)
  let rec go acc i =
    if i < 0 then Some (if t.sign < 0 then -acc else acc)
    else begin
      let shifted = acc * base in
      if shifted / base <> acc || shifted < 0 then None
      else begin
        let v = shifted + t.mag.(i) in
        if v < 0 then None else go v (i - 1)
      end
    end
  in
  if t.sign = 0 then Some 0 else go 0 (Array.length t.mag - 1)

let ten9 = of_int 1_000_000_000

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let rec chunks acc v =
      if v.sign = 0 then acc
      else begin
        let q, r = divmod v ten9 in
        let digits = match to_int_opt r with Some d -> d | None -> assert false in
        chunks (digits :: acc) q
      end
    in
    match chunks [] (abs t) with
    | [] -> "0"
    | first :: rest ->
        let buf = Buffer.create 32 in
        if t.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%09d" d)) rest;
        Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative then 1 else 0 in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to n - 1 do
    match s.[i] with
    | '0' .. '9' ->
        acc := add (mul !acc ten) (of_int (Char.code s.[i] - Char.code '0'))
    | _ -> invalid_arg "Bigint.of_string: invalid character"
  done;
  if negative then neg !acc else !acc

let pp ppf t = Format.pp_print_string ppf (to_string t)
