(** Exact certification of floating-point solver output.

    The simplex and branch & bound work in floating point; this module
    re-checks their answers in {e exact rational arithmetic}
    ({!Rational.Rat}), exploiting the fact that every float is a dyadic
    rational. Given the exact data of a {!Problem} (its float coefficients
    taken at face value) and a solution vector, it computes the exact
    worst violation over all bounds and constraints and the exact
    objective — so a user can certify "this solution is feasible within
    exactly 10^-6" without trusting any floating-point summation. *)

type report = {
  max_violation : Rational.Rat.t;
      (** Exact worst violation over bounds and constraints (0 when truly
          feasible); each row's violation is measured in its own units. *)
  worst : string option;  (** Name of the worst row/variable, if any. *)
  objective : Rational.Rat.t;  (** Exact objective value. *)
  integral : bool;
      (** Whether every [Integer] variable holds an exactly integral
          value. *)
}

val analyze : Problem.t -> float array -> report
(** @raise Invalid_argument on an assignment of the wrong arity. *)

val check : ?tol:Rational.Rat.t -> Problem.t -> float array -> (unit, string) result
(** [Ok] when the exact worst violation is at most [tol] (default
    [1/10^6]) {e and} integer variables are within [tol] of integers. *)
