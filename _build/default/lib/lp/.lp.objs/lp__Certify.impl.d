lib/lp/certify.ml: Array Expr List Printf Problem Rational
