lib/lp/expr.mli: Format
