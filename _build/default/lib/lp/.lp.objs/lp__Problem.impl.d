lib/lp/problem.ml: Array Expr Float Format Fun List Printf
