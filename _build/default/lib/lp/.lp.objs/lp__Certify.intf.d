lib/lp/certify.mli: Problem Rational
