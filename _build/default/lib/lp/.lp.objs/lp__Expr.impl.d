lib/lp/expr.ml: Format List
