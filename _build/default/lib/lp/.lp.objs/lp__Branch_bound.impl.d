lib/lp/branch_bound.ml: Array Float List Option Problem Simplex Support Unix
