lib/lp/problem.mli: Expr Format
