lib/lp/simplex.ml: Array Expr Float List Problem
