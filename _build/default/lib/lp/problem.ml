type var = int
type kind = Continuous | Integer
type rel = Le | Ge | Eq
type sense = Minimize | Maximize
type constr = { cname : string; expr : Expr.t; rel : rel; rhs : float }

type vinfo = { vname : string; vkind : kind; lb : float; ub : float }

type t = {
  pname : string;
  mutable vars : vinfo array;
  mutable nv : int;
  mutable constrs : constr list;  (* reversed *)
  mutable nc : int;
  mutable obj_sense : sense;
  mutable obj : Expr.t;
}

let create ?(name = "lp") () =
  {
    pname = name;
    vars = [||];
    nv = 0;
    constrs = [];
    nc = 0;
    obj_sense = Minimize;
    obj = Expr.zero;
  }

let grow t =
  let cap = Array.length t.vars in
  if t.nv = cap then begin
    let dummy = { vname = ""; vkind = Continuous; lb = 0.; ub = 0. } in
    let vars = Array.make (max 16 (2 * cap)) dummy in
    Array.blit t.vars 0 vars 0 t.nv;
    t.vars <- vars
  end

let add_var t ?(kind = Continuous) ?(lb = 0.) ?(ub = infinity) vname =
  if lb > ub then invalid_arg "Problem.add_var: lb > ub";
  grow t;
  let v = t.nv in
  t.vars.(v) <- { vname; vkind = kind; lb; ub };
  t.nv <- v + 1;
  v

let binary t name = add_var t ~kind:Integer ~lb:0. ~ub:1. name

let add_constr t ?name expr rel rhs =
  if Expr.max_var expr >= t.nv then
    invalid_arg "Problem.add_constr: expression uses an unknown variable";
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" t.nc
  in
  t.constrs <- { cname; expr; rel; rhs } :: t.constrs;
  t.nc <- t.nc + 1

let set_objective t sense expr =
  if Expr.max_var expr >= t.nv then
    invalid_arg "Problem.set_objective: expression uses an unknown variable";
  t.obj_sense <- sense;
  t.obj <- expr

let name t = t.pname
let n_vars t = t.nv
let n_constrs t = t.nc

let check_var t v =
  if v < 0 || v >= t.nv then invalid_arg "Problem: variable out of range"

let var_name t v =
  check_var t v;
  t.vars.(v).vname

let var_kind t v =
  check_var t v;
  t.vars.(v).vkind

let lower_bound t v =
  check_var t v;
  t.vars.(v).lb

let upper_bound t v =
  check_var t v;
  t.vars.(v).ub

let bounds_arrays t =
  ( Array.init t.nv (fun v -> t.vars.(v).lb),
    Array.init t.nv (fun v -> t.vars.(v).ub) )

let integer_vars t =
  List.filter
    (fun v -> t.vars.(v).vkind = Integer)
    (List.init t.nv Fun.id)

let constraints t = Array.of_list (List.rev t.constrs)
let objective t = (t.obj_sense, t.obj)

let eval_objective t x = Expr.eval (fun v -> x.(v)) t.obj

let check_feasible ?(tol = 1e-6) ?(check_integrality = true) t x =
  if Array.length x <> t.nv then Error "assignment has wrong arity"
  else begin
    let problem = ref None in
    let note msg = if !problem = None then problem := Some msg in
    for v = 0 to t.nv - 1 do
      let { vname; vkind; lb; ub } = t.vars.(v) in
      let scale = Float.max 1. (Float.max (abs_float lb) (abs_float ub)) in
      if x.(v) < lb -. (tol *. scale) || x.(v) > ub +. (tol *. scale) then
        note
          (Printf.sprintf "variable %s = %g outside [%g, %g]" vname x.(v) lb ub);
      if
        check_integrality && vkind = Integer
        && abs_float (x.(v) -. Float.round x.(v)) > tol
      then
        note (Printf.sprintf "variable %s = %g not integral" vname x.(v))
    done;
    let check_constr { cname; expr; rel; rhs } =
      let lhs = Expr.eval (fun v -> x.(v)) expr in
      let scale =
        List.fold_left
          (fun acc (v, c) -> acc +. abs_float (c *. x.(v)))
          (abs_float rhs) (Expr.to_list expr)
      in
      let slack = tol *. Float.max 1. scale in
      let ok =
        match rel with
        | Le -> lhs <= rhs +. slack
        | Ge -> lhs >= rhs -. slack
        | Eq -> abs_float (lhs -. rhs) <= slack
      in
      if not ok then
        note
          (Printf.sprintf "constraint %s violated: lhs=%g rhs=%g" cname lhs rhs)
    in
    List.iter check_constr (List.rev t.constrs);
    match !problem with None -> Ok () | Some msg -> Error msg
  end

let pp ppf t =
  let pp_var ppf v = Format.pp_print_string ppf t.vars.(v).vname in
  let sense = match t.obj_sense with Minimize -> "minimize" | Maximize -> "maximize" in
  Format.fprintf ppf "@[<v>%s: %s %a@," t.pname sense (Expr.pp pp_var) t.obj;
  let pp_rel ppf = function
    | Le -> Format.pp_print_string ppf "<="
    | Ge -> Format.pp_print_string ppf ">="
    | Eq -> Format.pp_print_string ppf "="
  in
  let pp_constr { cname; expr; rel; rhs } =
    Format.fprintf ppf "  %s: %a %a %g@," cname (Expr.pp pp_var) expr pp_rel rel
      rhs
  in
  List.iter pp_constr (List.rev t.constrs);
  for v = 0 to t.nv - 1 do
    let { vname; vkind; lb; ub } = t.vars.(v) in
    Format.fprintf ppf "  %s in [%g, %g]%s@," vname lb ub
      (match vkind with Integer -> " integer" | Continuous -> "")
  done;
  Format.fprintf ppf "@]"
