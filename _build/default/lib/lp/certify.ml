module Q = Rational.Rat

type report = {
  max_violation : Q.t;
  worst : string option;
  objective : Q.t;
  integral : bool;
}

(* Exact value of an expression under the assignment. *)
let eval_exact expr x =
  List.fold_left
    (fun acc (v, c) -> Q.add acc (Q.mul (Q.of_float c) (Q.of_float x.(v))))
    Q.zero (Expr.to_list expr)

let nearest_integer q =
  (* round(q) as an exact rational: floor(q + 1/2). *)
  let half = Q.of_ints 1 2 in
  let shifted = Q.add q half in
  let fl =
    let n = Q.num shifted and d = Q.den shifted in
    fst (Rational.Bigint.divmod n d)
  in
  Q.make fl Rational.Bigint.one

let analyze problem x =
  if Array.length x <> Problem.n_vars problem then
    invalid_arg "Certify.analyze: assignment has wrong arity";
  let worst_violation = ref Q.zero in
  let worst_name = ref None in
  let consider name v =
    if Q.compare v !worst_violation > 0 then begin
      worst_violation := v;
      worst_name := Some name
    end
  in
  for v = 0 to Problem.n_vars problem - 1 do
    let xv = Q.of_float x.(v) in
    let lb = Problem.lower_bound problem v in
    let ub = Problem.upper_bound problem v in
    if lb > neg_infinity then
      consider (Problem.var_name problem v) (Q.sub (Q.of_float lb) xv);
    if ub < infinity then
      consider (Problem.var_name problem v) (Q.sub xv (Q.of_float ub))
  done;
  Array.iter
    (fun { Problem.cname; expr; rel; rhs } ->
      let lhs = eval_exact expr x in
      let rhs = Q.of_float rhs in
      match rel with
      | Problem.Le -> consider cname (Q.sub lhs rhs)
      | Problem.Ge -> consider cname (Q.sub rhs lhs)
      | Problem.Eq -> consider cname (Q.abs (Q.sub lhs rhs)))
    (Problem.constraints problem);
  let _, obj = Problem.objective problem in
  let integral =
    List.for_all
      (fun v ->
        let xv = Q.of_float x.(v) in
        Q.equal xv (nearest_integer xv))
      (Problem.integer_vars problem)
  in
  {
    max_violation = !worst_violation;
    worst = !worst_name;
    objective = eval_exact obj x;
    integral;
  }

let default_tol = Q.of_ints 1 1_000_000

let check ?(tol = default_tol) problem x =
  let report = analyze problem x in
  if Q.compare report.max_violation tol > 0 then
    Error
      (Printf.sprintf "violation %s > tolerance %s%s"
         (Q.to_string report.max_violation)
         (Q.to_string tol)
         (match report.worst with
         | Some name -> " at " ^ name
         | None -> ""))
  else begin
    let bad_integer =
      List.find_opt
        (fun v ->
          let xv = Q.of_float x.(v) in
          Q.compare (Q.abs (Q.sub xv (nearest_integer xv))) tol > 0)
        (Problem.integer_vars problem)
    in
    match bad_integer with
    | Some v ->
        Error
          (Printf.sprintf "variable %s = %g not integral within tolerance"
             (Problem.var_name problem v)
             x.(v))
    | None -> Ok ()
  end
