(* Invariant: strictly increasing variable indices, non-zero coefficients. *)
type t = (int * float) list

let zero = []

let term ?(coeff = 1.) v =
  if v < 0 then invalid_arg "Expr.term: negative variable index";
  if coeff = 0. then [] else [ (v, coeff) ]

let of_list terms =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) terms in
  let rec combine = function
    | (v, c) :: (v', c') :: rest when v = v' -> combine ((v, c +. c') :: rest)
    | (v, c) :: rest ->
        if v < 0 then invalid_arg "Expr.of_list: negative variable index";
        if c = 0. then combine rest else (v, c) :: combine rest
    | [] -> []
  in
  combine sorted

let to_list t = t

(* Merge of two sorted term lists. *)
let rec add a b =
  match (a, b) with
  | [], e | e, [] -> e
  | (v, c) :: ra, (v', c') :: rb ->
      if v < v' then (v, c) :: add ra b
      else if v > v' then (v', c') :: add a rb
      else begin
        let s = c +. c' in
        if s = 0. then add ra rb else (v, s) :: add ra rb
      end

let scale k t = if k = 0. then [] else List.map (fun (v, c) -> (v, k *. c)) t
let neg t = scale (-1.) t
let sub a b = add a (neg b)
let sum ts = List.fold_left add zero ts

let coeff t v =
  match List.assoc_opt v t with Some c -> c | None -> 0.

let is_zero t = t = []
let n_terms = List.length

let eval f t = List.fold_left (fun acc (v, c) -> acc +. (c *. f v)) 0. t

let max_var t = List.fold_left (fun acc (v, _) -> max acc v) (-1) t

let pp pp_var ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "0"
  | (v0, c0) :: rest ->
      let print_term ~first (v, c) =
        if first then
          if c = 1. then Format.fprintf ppf "%a" pp_var v
          else Format.fprintf ppf "%g %a" c pp_var v
        else if c >= 0. then
          if c = 1. then Format.fprintf ppf " + %a" pp_var v
          else Format.fprintf ppf " + %g %a" c pp_var v
        else if c = -1. then Format.fprintf ppf " - %a" pp_var v
        else Format.fprintf ppf " - %g %a" (-.c) pp_var v
      in
      print_term ~first:true (v0, c0);
      List.iter (print_term ~first:false) rest
