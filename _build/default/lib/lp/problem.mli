(** Mixed-integer linear program builder.

    A problem is a mutable collection of bounded variables (continuous or
    integer), linear constraints and one objective. Variables are dense
    integer handles usable directly in {!Expr}. Solvers ({!Simplex},
    {!Branch_bound}) consume problems read-only. *)

type t

type var = int

type kind =
  | Continuous
  | Integer  (** Integrality enforced by {!Branch_bound} (relaxed by {!Simplex}). *)

type rel = Le | Ge | Eq

type sense = Minimize | Maximize

type constr = { cname : string; expr : Expr.t; rel : rel; rhs : float }

val create : ?name:string -> unit -> t

val add_var :
  t -> ?kind:kind -> ?lb:float -> ?ub:float -> string -> var
(** Fresh variable. Defaults: continuous, [lb = 0.], [ub = infinity].
    Use [neg_infinity]/[infinity] for free variables.
    @raise Invalid_argument if [lb > ub]. *)

val binary : t -> string -> var
(** Integer variable with bounds [0, 1]. *)

val add_constr : t -> ?name:string -> Expr.t -> rel -> float -> unit
(** Add the constraint [expr rel rhs].
    @raise Invalid_argument if the expression mentions unknown variables. *)

val set_objective : t -> sense -> Expr.t -> unit
(** Replace the objective (default: minimize 0). *)

(** {1 Read-only access (for solvers)} *)

val name : t -> string
val n_vars : t -> int
val n_constrs : t -> int
val var_name : t -> var -> string
val var_kind : t -> var -> kind
val lower_bound : t -> var -> float
val upper_bound : t -> var -> float
val bounds_arrays : t -> float array * float array
(** Fresh copies of the (lb, ub) arrays. *)

val integer_vars : t -> var list
(** Variables with [Integer] kind, increasing order. *)

val constraints : t -> constr array
(** Constraints in insertion order (fresh array, shared constraint values). *)

val objective : t -> sense * Expr.t

val eval_objective : t -> float array -> float
(** Objective value under an assignment. *)

val check_feasible :
  ?tol:float -> ?check_integrality:bool -> t -> float array -> (unit, string) result
(** Verify bounds, integrality and every constraint under an assignment;
    [Error] carries a description of the first violation. [tol] defaults to
    [1e-6] and scales with the magnitude of each row; pass
    [~check_integrality:false] to validate LP-relaxation solutions. *)

val pp : Format.formatter -> t -> unit
(** Human-readable LP listing. *)
