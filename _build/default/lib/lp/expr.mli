(** Linear expressions over integer-indexed variables.

    An expression is a normalized sparse list of [(variable, coefficient)]
    terms: variables are strictly increasing and coefficients non-zero.
    Expressions are immutable; all operations return fresh values. *)

type t

val zero : t

val term : ?coeff:float -> int -> t
(** [term ~coeff v] is [coeff * x_v] (default coefficient 1). *)

val of_list : (int * float) list -> t
(** Normalize an arbitrary term list (duplicates summed, zeros dropped). *)

val to_list : t -> (int * float) list
(** Terms with increasing variable index and non-zero coefficients. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

val sum : t list -> t
(** Sum of many expressions (linear-time merge). *)

val coeff : t -> int -> float
(** Coefficient of a variable (0 if absent). *)

val is_zero : t -> bool
val n_terms : t -> int

val eval : (int -> float) -> t -> float
(** Evaluate under a variable assignment. *)

val max_var : t -> int
(** Largest variable index used, -1 for {!zero}. *)

val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** Pretty-print with a variable printer. *)
