(** Linear-programming solver: revised simplex with bounded variables.

    Integrality of [Integer] variables is ignored (LP relaxation); use
    {!Branch_bound} for mixed-integer problems. The implementation is a
    two-phase bounded-variable revised simplex maintaining a dense basis
    inverse with rank-1 updates, Dantzig pricing with a Bland's-rule
    fallback against cycling, and periodic recomputation of the basic
    values for numerical hygiene. *)

type solution = {
  x : float array;  (** One value per problem variable. *)
  objective : float;  (** Objective in the problem's original sense. *)
  iterations : int;
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded

type stats = { mutable solves : int; mutable total_iterations : int }

val stats : stats
(** Global counters (for benchmarks/diagnostics). *)

val solve : ?lb:float array -> ?ub:float array -> Problem.t -> result
(** Solve the LP relaxation. [lb]/[ub], when given, override the problem's
    variable bounds (arrays of length [Problem.n_vars]); this is how
    {!Branch_bound} explores its tree without mutating the problem.
    @raise Invalid_argument on override arrays of the wrong length or with
    [lb > ub] entries. *)
