(** Combinator DSL for assembling streaming applications, in the spirit of
    the StreamIt language the paper discusses (§1): applications are built
    from filters composed into pipelines and split/joins, and compile to a
    plain {!Graph.t}.

    A fragment has a set of dangling output ports; composition wires every
    upstream port into the next stage. Filter names are made unique
    automatically ([name], [name_2], ...), so fragments can be duplicated
    freely:

    {[
      let app =
        Dsl.(
          build
            (pipeline
               [
                 filter ~name:"framer" ~w_ppe:4e-4 ~w_spe:6e-4
                   ~out_bytes:4608. ();
                 duplicate 8
                   (filter ~name:"fb" ~w_ppe:4e-3 ~w_spe:1.4e-3
                      ~out_bytes:576. ());
                 filter ~name:"pack" ~w_ppe:1.1e-3 ~w_spe:2.6e-3
                   ~out_bytes:0. ();
               ]))
    ]} *)

type t
(** An application fragment. *)

val filter :
  ?peek:int ->
  ?stateful:bool ->
  ?read_bytes:float ->
  ?write_bytes:float ->
  name:string ->
  w_ppe:float ->
  w_spe:float ->
  out_bytes:float ->
  unit ->
  t
(** A single task consuming every upstream port and producing [out_bytes]
    per instance on its output port. *)

val pipeline : t list -> t
(** Sequential composition; the outputs of each stage feed the next.
    @raise Invalid_argument on an empty list. *)

val split_join : t list -> t
(** Parallel composition (duplicate semantics): every branch receives all
    upstream ports; the fragment's outputs are the concatenation of the
    branch outputs. Typically followed by a joining {!filter}.
    @raise Invalid_argument on an empty list. *)

val duplicate : int -> t -> t
(** [duplicate n fragment] is {!split_join} of [n] copies; names are made
    unique per copy. @raise Invalid_argument if [n < 1]. *)

val build : t -> Graph.t
(** Compile a closed application (the fragment's first stage takes no
    input; remaining dangling outputs are allowed and become sinks). *)
