(** Streaming application graph (paper §2.2): a directed acyclic graph whose
    nodes are {!Task.t} and whose edges [D_{k,l}] carry a per-instance data
    volume in bytes. Task and edge identifiers are dense integers assigned
    at construction; tasks are kept in insertion order. *)

type edge = {
  src : int;  (** Producer task id [k]. *)
  dst : int;  (** Consumer task id [l]. *)
  data_bytes : float;  (** Size of one instance of [D_{k,l}], in bytes. *)
}

type t

(** {1 Construction} *)

type builder

val builder : unit -> builder

val add_task : builder -> Task.t -> int
(** Register a task and return its id. Task names must be unique. *)

val add_edge : builder -> src:int -> dst:int -> data_bytes:float -> unit
(** Register the dependency [D_{src,dst}].
    @raise Invalid_argument on unknown ids, self-loops, negative sizes or
    duplicate edges. *)

val build : builder -> t
(** Freeze the builder.
    @raise Invalid_argument if the graph contains a directed cycle. *)

val of_tasks : Task.t array -> (int * int * float) list -> t
(** [of_tasks tasks edges] builds a graph in one call; edges are
    [(src, dst, data_bytes)] triples. *)

val chain : Task.t array -> data_bytes:float -> t
(** Linear chain [T0 -> T1 -> ...] with uniform edge size. *)

(** {1 Accessors} *)

val n_tasks : t -> int
val n_edges : t -> int

val task : t -> int -> Task.t
(** @raise Invalid_argument on out-of-range ids. *)

val edge : t -> int -> edge
val tasks : t -> Task.t array
val edges : t -> edge array

val find_task : t -> string -> int
(** Task id by name. @raise Not_found if absent. *)

val out_edges : t -> int -> int list
(** Ids of the edges leaving a task, in insertion order. *)

val in_edges : t -> int -> int list
(** Ids of the edges entering a task. *)

val succs : t -> int -> int list
(** Successor task ids. *)

val preds : t -> int -> int list
(** Predecessor task ids. *)

val sources : t -> int list
(** Tasks with no predecessor. *)

val sinks : t -> int list
(** Tasks with no successor. *)

val topological_order : t -> int array
(** Task ids in a topological order (sources first); stable w.r.t. ids. *)

val depth : t -> int
(** Number of tasks on a longest directed path (0 for the empty graph). *)

(** {1 Aggregate measures} *)

val total_work : t -> Cell.Platform.pe_class -> float
(** Sum of per-instance computation times on the given PE class. *)

val total_data_bytes : t -> float
(** Sum of edge volumes (one instance). *)

val total_memory_bytes : t -> float
(** Sum of per-instance main-memory reads and writes. *)

val map_tasks : (int -> Task.t -> Task.t) -> t -> t
(** Rebuild the graph with transformed tasks (same edges). *)

val map_edges : (int -> edge -> float) -> t -> t
(** Rebuild the graph with rescaled edge volumes. *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary. *)
