(** Communication-to-computation ratio (paper §6.2).

    The paper defines the CCR of a scenario as "the total number of
    transferred elements divided by the number of operations on these
    elements". Elements are bytes here, and the number of operations a task
    performs on its stream elements is proportional to its SPE computation
    time: [ops = w_spe * ops_per_second].

    The proportionality constant [ops_per_second] is calibrated so that the
    paper's CCR range (0.775 computation-intensive … 4.6 communication-
    intensive) spans the same regimes as on the hardware: at CCR 0.775 a
    50-task graph carries edges of a few kB — SPE local stores can hold
    several tasks' buffers, computation dominates — while at the 6x larger
    CCR 4.6 task buffer footprints approach the 192 kB local-store budget
    and most tasks are forced onto the PPE. This matches §6.4.3: at high CCR "the best policy
    is to map all tasks to the PPE". *)

val ops_per_second : float
(** Calibrated element-operations per second of SPE compute time
    (9.0e6; see above). *)

val compute : ?ops_rate:float -> Graph.t -> float
(** CCR of a graph: (edge bytes + memory traffic bytes) per instance divided
    by element-operations per instance. Returns [0.] for a graph with no
    computation. *)

val scale_to : ?ops_rate:float -> Graph.t -> target:float -> Graph.t
(** [scale_to g ~target] rescales every edge volume and every task's memory
    traffic by the unique factor making [compute g' = target].
    @raise Invalid_argument if [target < 0], or if the graph transfers no
    data (no finite scaling can change its CCR). *)

val paper_ccrs : float list
(** The six CCR values used for the paper's experiment variants, spanning
    0.775 to 4.6. *)
