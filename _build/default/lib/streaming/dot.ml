let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let to_string ?(name = "stream") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box];\n";
  for k = 0 to Graph.n_tasks g - 1 do
    let t = Graph.task g k in
    Buffer.add_string buf
      (Printf.sprintf
         "  t%d [label=\"%s\\nppe: %.3g spe: %.3g\\npeek: %d\\n%s\"];\n" k
         (escape t.Task.name) t.Task.w_ppe t.Task.w_spe t.Task.peek
         (if t.Task.stateful then "stateful" else "stateless"))
  done;
  for e = 0 to Graph.n_edges g - 1 do
    let { Graph.src; dst; data_bytes } = Graph.edge g e in
    Buffer.add_string buf
      (Printf.sprintf "  t%d -> t%d [label=\"%.0f B\"];\n" src dst data_bytes)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name g))
