(* Calibration: at CCR 0.775 a 50-task graph with ~100 edges should carry
   ~3.5 kB per edge, so that a task's buffers weigh a few tens of kB and an
   SPE local store holds a handful of tasks (computation-bound regime); the
   6x higher CCR variants then push single tasks past the local-store
   budget (communication-bound regime, everything on the PPE), matching the
   paper's two extremes. bytes/edge = ccr * rate * total_w_spe / n_edges. *)
let ops_per_second = 9.0e6

let compute ?(ops_rate = ops_per_second) g =
  let comp = Graph.total_work g Cell.Platform.SPE in
  if comp <= 0. then 0.
  else (Graph.total_data_bytes g +. Graph.total_memory_bytes g) /. (comp *. ops_rate)

let scale_to ?(ops_rate = ops_per_second) g ~target =
  if target < 0. then invalid_arg "Ccr.scale_to: negative target";
  let current = compute ~ops_rate g in
  if current <= 0. then
    invalid_arg "Ccr.scale_to: graph transfers no data, cannot rescale";
  let factor = target /. current in
  let g = Graph.map_edges (fun _ e -> e.Graph.data_bytes *. factor) g in
  let scale_task _ (t : Task.t) =
    {
      t with
      Task.read_bytes = t.Task.read_bytes *. factor;
      write_bytes = t.Task.write_bytes *. factor;
    }
  in
  Graph.map_tasks scale_task g

let paper_ccrs = [ 0.775; 1.2; 1.9; 2.8; 3.7; 4.6 ]
