lib/streaming/graph.mli: Cell Format Task
