lib/streaming/dot.ml: Buffer Fun Graph Printf String Task
