lib/streaming/dsl.mli: Graph
