lib/streaming/ccr.mli: Graph
