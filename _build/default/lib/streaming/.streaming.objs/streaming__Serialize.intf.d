lib/streaming/serialize.mli: Graph
