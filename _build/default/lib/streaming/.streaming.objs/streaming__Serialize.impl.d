lib/streaming/serialize.ml: Buffer Fun Graph Hashtbl In_channel List Printf String Task
