lib/streaming/dsl.ml: Graph Hashtbl List Printf Task
