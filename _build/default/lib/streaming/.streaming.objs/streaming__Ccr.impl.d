lib/streaming/ccr.ml: Cell Graph Task
