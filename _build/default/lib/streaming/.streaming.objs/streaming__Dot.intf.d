lib/streaming/dot.mli: Graph
