lib/streaming/task.ml: Cell Format Printf
