lib/streaming/graph.ml: Array Cell Format Fun Hashtbl Int List Printf String Support Task
