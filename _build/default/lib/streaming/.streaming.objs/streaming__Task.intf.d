lib/streaming/task.mli: Cell Format
