(** Graphviz export of application graphs, mimicking the node labels of the
    paper's Figure 5 (name, costs, peek, stateful flag). *)

val to_string : ?name:string -> Graph.t -> string
(** DOT source for the graph. *)

val to_file : ?name:string -> Graph.t -> string -> unit
(** Write the DOT source to a file path. *)
