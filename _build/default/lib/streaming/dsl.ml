type port = { src : int; bytes : float }

type context = { builder : Graph.builder; names : (string, int) Hashtbl.t }

(* A fragment consumes the upstream ports and returns its output ports. *)
type t = context -> port list -> port list

let unique_name ctx base =
  match Hashtbl.find_opt ctx.names base with
  | None ->
      Hashtbl.replace ctx.names base 1;
      base
  | Some n ->
      Hashtbl.replace ctx.names base (n + 1);
      Printf.sprintf "%s_%d" base (n + 1)

let filter ?peek ?stateful ?read_bytes ?write_bytes ~name ~w_ppe ~w_spe
    ~out_bytes () : t =
 fun ctx inputs ->
  let task =
    Task.make ?peek ?stateful ?read_bytes ?write_bytes
      ~name:(unique_name ctx name) ~w_ppe ~w_spe ()
  in
  let id = Graph.add_task ctx.builder task in
  List.iter
    (fun { src; bytes } ->
      Graph.add_edge ctx.builder ~src ~dst:id ~data_bytes:bytes)
    inputs;
  [ { src = id; bytes = out_bytes } ]

let pipeline stages : t =
  if stages = [] then invalid_arg "Dsl.pipeline: empty";
  fun ctx inputs ->
    List.fold_left (fun ports stage -> stage ctx ports) inputs stages

let split_join branches : t =
  if branches = [] then invalid_arg "Dsl.split_join: empty";
  fun ctx inputs ->
    List.concat_map (fun branch -> branch ctx inputs) branches

let duplicate n fragment : t =
  if n < 1 then invalid_arg "Dsl.duplicate: need at least one copy";
  split_join (List.init n (fun _ -> fragment))

let build fragment =
  let ctx = { builder = Graph.builder (); names = Hashtbl.create 16 } in
  let (_ : port list) = fragment ctx [] in
  Graph.build ctx.builder
