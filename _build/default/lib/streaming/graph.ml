type edge = { src : int; dst : int; data_bytes : float }

type t = {
  tasks : Task.t array;
  edges : edge array;
  out_edges : int list array;  (* edge ids leaving each task *)
  in_edges : int list array;  (* edge ids entering each task *)
  topo : int array;  (* task ids, topologically sorted *)
}

type builder = {
  mutable btasks : Task.t list;  (* reversed *)
  mutable bn : int;
  names : (string, int) Hashtbl.t;
  mutable bedges : edge list;  (* reversed *)
  seen_edges : (int * int, unit) Hashtbl.t;
}

let builder () =
  {
    btasks = [];
    bn = 0;
    names = Hashtbl.create 16;
    bedges = [];
    seen_edges = Hashtbl.create 16;
  }

let add_task b (task : Task.t) =
  if Hashtbl.mem b.names task.name then
    invalid_arg (Printf.sprintf "Graph.add_task: duplicate name %S" task.name);
  let id = b.bn in
  Hashtbl.add b.names task.name id;
  b.btasks <- task :: b.btasks;
  b.bn <- id + 1;
  id

let add_edge b ~src ~dst ~data_bytes =
  if src < 0 || src >= b.bn || dst < 0 || dst >= b.bn then
    invalid_arg "Graph.add_edge: unknown task id";
  if src = dst then invalid_arg "Graph.add_edge: self-loop";
  if data_bytes < 0. then invalid_arg "Graph.add_edge: negative data size";
  if Hashtbl.mem b.seen_edges (src, dst) then
    invalid_arg "Graph.add_edge: duplicate edge";
  Hashtbl.add b.seen_edges (src, dst) ();
  b.bedges <- { src; dst; data_bytes } :: b.bedges

(* Kahn's algorithm; raises if a cycle remains. *)
let topo_sort n in_edges out_edges (edges : edge array) =
  let indeg = Array.make n 0 in
  Array.iteri (fun v es -> indeg.(v) <- List.length es) in_edges;
  let module H = Support.Binary_heap.Make (Int) in
  let ready = H.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then H.add ready v
  done;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (H.is_empty ready) do
    let v = H.pop_min ready in
    order.(!filled) <- v;
    incr filled;
    let relax e =
      let w = edges.(e).dst in
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then H.add ready w
    in
    List.iter relax out_edges.(v)
  done;
  if !filled <> n then invalid_arg "Graph.build: the graph contains a cycle";
  order

let build b =
  let tasks = Array.of_list (List.rev b.btasks) in
  let edges = Array.of_list (List.rev b.bedges) in
  let n = Array.length tasks in
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  let record e (edge : edge) =
    out_edges.(edge.src) <- e :: out_edges.(edge.src);
    in_edges.(edge.dst) <- e :: in_edges.(edge.dst)
  in
  Array.iteri record edges;
  Array.iteri (fun v es -> out_edges.(v) <- List.rev es) out_edges;
  Array.iteri (fun v es -> in_edges.(v) <- List.rev es) in_edges;
  let topo = topo_sort n in_edges out_edges edges in
  { tasks; edges; out_edges; in_edges; topo }

let of_tasks tasks edge_list =
  let b = builder () in
  Array.iter (fun t -> ignore (add_task b t)) tasks;
  List.iter (fun (src, dst, data_bytes) -> add_edge b ~src ~dst ~data_bytes) edge_list;
  build b

let chain tasks ~data_bytes =
  let n = Array.length tasks in
  let edge_list = List.init (max 0 (n - 1)) (fun k -> (k, k + 1, data_bytes)) in
  of_tasks tasks edge_list

let n_tasks g = Array.length g.tasks
let n_edges g = Array.length g.edges

let task g k =
  if k < 0 || k >= n_tasks g then invalid_arg "Graph.task: id out of range";
  g.tasks.(k)

let edge g e =
  if e < 0 || e >= n_edges g then invalid_arg "Graph.edge: id out of range";
  g.edges.(e)

let tasks g = Array.copy g.tasks
let edges g = Array.copy g.edges

let find_task g name =
  let rec scan k =
    if k >= n_tasks g then raise Not_found
    else if String.equal g.tasks.(k).Task.name name then k
    else scan (k + 1)
  in
  scan 0

let out_edges g k = g.out_edges.(k)
let in_edges g k = g.in_edges.(k)
let succs g k = List.map (fun e -> g.edges.(e).dst) g.out_edges.(k)
let preds g k = List.map (fun e -> g.edges.(e).src) g.in_edges.(k)

let sources g =
  List.filter (fun k -> g.in_edges.(k) = []) (List.init (n_tasks g) Fun.id)

let sinks g =
  List.filter (fun k -> g.out_edges.(k) = []) (List.init (n_tasks g) Fun.id)

let topological_order g = Array.copy g.topo

let depth g =
  if n_tasks g = 0 then 0
  else begin
    let level = Array.make (n_tasks g) 1 in
    let relax k =
      let bump e =
        let { src; dst; _ } = g.edges.(e) in
        if level.(src) + 1 > level.(dst) then level.(dst) <- level.(src) + 1
      in
      List.iter bump g.out_edges.(k)
    in
    Array.iter relax g.topo;
    Array.fold_left max 0 level
  end

let total_work g cls =
  Array.fold_left (fun acc t -> acc +. Task.w t cls) 0. g.tasks

let total_data_bytes g =
  Array.fold_left (fun acc e -> acc +. e.data_bytes) 0. g.edges

let total_memory_bytes g =
  Array.fold_left
    (fun acc (t : Task.t) -> acc +. t.read_bytes +. t.write_bytes)
    0. g.tasks

let map_tasks f g =
  {
    g with
    tasks = Array.mapi f g.tasks;
  }

let map_edges f g =
  {
    g with
    edges = Array.mapi (fun e edge -> { edge with data_bytes = f e edge }) g.edges;
  }

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d tasks, %d edges, depth %d@," (n_tasks g)
    (n_edges g) (depth g);
  Format.fprintf ppf "total work: PPE %.4gs, SPE %.4gs; data %.4g B/instance@]"
    (total_work g Cell.Platform.PPE)
    (total_work g Cell.Platform.SPE)
    (total_data_bytes g)
