(** Description of a single streaming task (paper §2.2).

    A task processes one instance of the stream per period. Computation
    costs follow the unrelated-machine model: [w_ppe] and [w_spe] are the
    seconds needed by a PPE (resp. an SPE) to process one instance, and
    neither dominates the other in general. [peek] is the number of
    {e following} instances of every input data the task must hold before
    processing instance [i] (e.g. video encoders reading the next frames).
    [read_bytes]/[write_bytes] are per-instance main-memory traffic, which
    consumes interface bandwidth exactly like inter-task data. *)

type t = {
  name : string;
  w_ppe : float;  (** Seconds per instance on a PPE. *)
  w_spe : float;  (** Seconds per instance on an SPE. *)
  peek : int;  (** Look-ahead depth on every input data (>= 0). *)
  stateful : bool;
      (** Stateful tasks carry state between instances; informational for
          the runtime (a stateful task can never be replicated), recorded
          because the paper's DagGen graphs carry the flag. *)
  read_bytes : float;  (** Per-instance bytes read from main memory. *)
  write_bytes : float;  (** Per-instance bytes written to main memory. *)
}

val make :
  ?peek:int ->
  ?stateful:bool ->
  ?read_bytes:float ->
  ?write_bytes:float ->
  name:string ->
  w_ppe:float ->
  w_spe:float ->
  unit ->
  t
(** Smart constructor.
    @raise Invalid_argument on negative costs, peek or memory traffic. *)

val w : t -> Cell.Platform.pe_class -> float
(** Cost of the task on a PE of the given class. *)

val pp : Format.formatter -> t -> unit
