let graph ~seed ~ccr ~shape =
  let rng = Support.Rng.create seed in
  let g = Generator.generate ~rng ~shape ~costs:Generator.default_costs in
  Streaming.Ccr.scale_to g ~target:ccr

let random_graph_1 ?(seed = 42) ?(ccr = 0.775) () =
  graph ~seed ~ccr
    ~shape:{ Generator.n = 50; fat = 0.25; density = 0.3; regularity = 0.7; jump = 2 }

let random_graph_2 ?(seed = 43) ?(ccr = 0.775) () =
  graph ~seed ~ccr
    ~shape:{ Generator.n = 94; fat = 0.5; density = 0.25; regularity = 0.6; jump = 2 }

let random_graph_3 ?(seed = 44) ?(ccr = 0.775) () =
  let rng = Support.Rng.create seed in
  let g = Generator.generate_chain ~rng ~n:50 ~costs:Generator.default_costs in
  Streaming.Ccr.scale_to g ~target:ccr

let all_random ?seed ?ccr () =
  [
    ("random graph 1", random_graph_1 ?seed ?ccr ());
    ("random graph 2", random_graph_2 ?seed ?ccr ());
    ("random graph 3", random_graph_3 ?seed ?ccr ());
  ]

let kb = 1024.

let two_filter_chain () =
  let filter name =
    Streaming.Task.make ~name ~w_ppe:2.5e-3 ~w_spe:1.2e-3 ()
  in
  let t1 = { (filter "filter1") with Streaming.Task.read_bytes = 16. *. kb } in
  let t2 = { (filter "filter2") with Streaming.Task.write_bytes = 16. *. kb } in
  Streaming.Graph.chain [| t1; t2 |] ~data_bytes:(16. *. kb)

let figure_2b () =
  let t ?(peek = 0) name w_ppe w_spe =
    Streaming.Task.make ~name ~w_ppe:(w_ppe *. 1e-3) ~w_spe:(w_spe *. 1e-3) ~peek ()
  in
  let tasks =
    [|
      { (t "T1" 1.0 1.8) with Streaming.Task.read_bytes = 8. *. kb };
      t "T2" 2.0 1.0;
      t "T3" 1.5 0.8;
      t "T4" 2.5 1.2;
      t ~peek:1 "T5" 1.2 0.7;
      t "T6" 1.8 0.9;
      t "T7" 2.2 1.1;
      t "T8" 1.4 2.8;
      { (t "T9" 1.0 2.0) with Streaming.Task.write_bytes = 4. *. kb };
    |]
  in
  let e data_kb (src, dst) = (src, dst, data_kb *. kb) in
  let edges =
    List.map (e 12.)
      [ (0, 1); (0, 2); (0, 3); (1, 4); (1, 5); (2, 5); (2, 6); (3, 6) ]
    @ List.map (e 8.) [ (4, 7); (5, 7); (6, 8); (7, 8) ]
  in
  Streaming.Graph.of_tasks tasks edges

let audio_encoder () =
  let b = Streaming.Graph.builder () in
  let add = Streaming.Graph.add_task b in
  let task ?peek ?stateful ?read_bytes ?write_bytes name w_ppe w_spe =
    add
      (Streaming.Task.make ?peek ?stateful ?read_bytes ?write_bytes ~name
         ~w_ppe:(w_ppe *. 1e-3) ~w_spe:(w_spe *. 1e-3) ())
  in
  (* 1152-sample stereo frame: 4608 B of 32-bit PCM per channel pair. *)
  let frame_bytes = 4608. in
  let framer = task ~read_bytes:frame_bytes "framer" 0.4 0.6 in
  let groups = 8 in
  let filterbank =
    List.init groups (fun i ->
        (* Polyphase subband analysis vectorizes well: SPE-friendly. *)
        task (Printf.sprintf "filterbank%d" i) 4.0 1.4)
  in
  (* The psychoacoustic model inspects the next frame too: peek = 1. *)
  let psycho = task ~peek:1 "psycho_model" 3.2 4.8 in
  let bitalloc = task ~stateful:true "bit_alloc" 0.9 1.8 in
  let quantizers =
    List.init groups (fun i -> task (Printf.sprintf "quantize%d" i) 1.6 0.6)
  in
  let packer =
    task ~stateful:true ~write_bytes:1044. "bitstream_pack" 1.1 2.6
  in
  let edge src dst data_bytes = Streaming.Graph.add_edge b ~src ~dst ~data_bytes in
  List.iter (fun fb -> edge framer fb (frame_bytes /. float_of_int groups)) filterbank;
  edge framer psycho frame_bytes;
  edge psycho bitalloc 512.;
  List.iter2
    (fun fb q ->
      edge fb q (1152. /. float_of_int groups *. 4.);
      edge bitalloc q 64.)
    filterbank quantizers;
  List.iter (fun q -> edge q packer 432.) quantizers;
  Streaming.Graph.build b
