type shape = {
  n : int;
  fat : float;
  density : float;
  regularity : float;
  jump : int;
}

type costs = {
  w_spe_range : float * float;
  ppe_ratio_range : float * float;
  data_bytes_range : float * float;
  peek_weights : (int * float) list;
  stateful_prob : float;
  memory_io_bytes : float * float;
}

let default_costs =
  {
    w_spe_range = (1e-3, 4e-3);
    ppe_ratio_range = (0.5, 2.0);
    data_bytes_range = (512., 32768.);
    peek_weights = [ (0, 0.6); (1, 0.3); (2, 0.1) ];
    stateful_prob = 0.25;
    memory_io_bytes = (1024., 8192.);
  }

let check_shape s =
  if s.n < 1 then invalid_arg "Daggen: n must be >= 1";
  if s.fat <= 0. then invalid_arg "Daggen: fat must be positive";
  if s.density < 0. || s.density > 1. then invalid_arg "Daggen: density in [0,1]";
  if s.regularity < 0. || s.regularity > 1. then
    invalid_arg "Daggen: regularity in [0,1]";
  if s.jump < 1 then invalid_arg "Daggen: jump must be >= 1"

let sample_range rng (lo, hi) =
  if lo > hi then invalid_arg "Daggen: empty range";
  if lo = hi then lo else Support.Rng.float_in rng lo hi

(* Log-uniform sample: heavy spread of data volumes, so that the value
   density (work per byte of buffer) varies widely across tasks -- the
   regime where the choice of which tasks to offload matters. *)
let sample_log_range rng (lo, hi) =
  if lo > hi || lo <= 0. then invalid_arg "Daggen: bad log range";
  if lo = hi then lo
  else exp (Support.Rng.float_in rng (log lo) (log hi))

let sample_peek rng weights =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weights in
  if total <= 0. then 0
  else begin
    let x = Support.Rng.float rng total in
    let rec pick acc = function
      | [] -> 0
      | [ (v, _) ] -> v
      | (v, w) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
    in
    pick 0. weights
  end

let sample_task rng costs ~name =
  let w_spe = sample_range rng costs.w_spe_range in
  let ratio = sample_range rng costs.ppe_ratio_range in
  Streaming.Task.make ~name ~w_ppe:(w_spe *. ratio) ~w_spe
    ~peek:(sample_peek rng costs.peek_weights)
    ~stateful:(Support.Rng.bernoulli rng costs.stateful_prob)
    ()

(* Partition n tasks into layers whose widths fluctuate around
   [fat * sqrt n] according to [regularity]. *)
let layer_widths rng shape =
  let ideal = Float.max 1. (shape.fat *. sqrt (float_of_int shape.n)) in
  let rec cut remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let spread = 1. -. shape.regularity in
      let factor = Support.Rng.float_in rng (1. -. spread) (1. +. spread) in
      let width = max 1 (int_of_float (Float.round (ideal *. factor))) in
      let width = min width remaining in
      cut (remaining - width) (width :: acc)
    end
  in
  cut shape.n []

let add_memory_io rng costs g =
  let sources = Streaming.Graph.sources g and sinks = Streaming.Graph.sinks g in
  let amend k (t : Streaming.Task.t) =
    let read_bytes =
      if List.mem k sources then sample_range rng costs.memory_io_bytes else 0.
    in
    let write_bytes =
      if List.mem k sinks then sample_range rng costs.memory_io_bytes else 0.
    in
    { t with Streaming.Task.read_bytes; write_bytes }
  in
  Streaming.Graph.map_tasks amend g

let generate ~rng ~shape ~costs =
  check_shape shape;
  let widths = layer_widths rng shape in
  let b = Streaming.Graph.builder () in
  (* layers.(i) is the array of task ids in layer i. *)
  let layers =
    List.mapi
      (fun layer width ->
        Array.init width (fun pos ->
            let name = Printf.sprintf "T%d_%d" layer pos in
            Streaming.Graph.add_task b (sample_task rng costs ~name)))
      widths
    |> Array.of_list
  in
  let data () = sample_log_range rng costs.data_bytes_range in
  for layer = 1 to Array.length layers - 1 do
    let candidates_layers =
      List.init (min shape.jump layer) (fun d -> layers.(layer - 1 - d))
    in
    let connect dst =
      let connected = ref false in
      let try_edge src =
        if Support.Rng.bernoulli rng shape.density then begin
          Streaming.Graph.add_edge b ~src ~dst ~data_bytes:(data ());
          connected := true
        end
      in
      List.iter (fun srcs -> Array.iter try_edge srcs) candidates_layers;
      if not !connected then begin
        (* Guarantee at least one predecessor from the previous layer. *)
        let src = Support.Rng.choose rng layers.(layer - 1) in
        Streaming.Graph.add_edge b ~src ~dst ~data_bytes:(data ())
      end
    in
    Array.iter connect layers.(layer)
  done;
  add_memory_io rng costs (Streaming.Graph.build b)

let generate_chain ~rng ~n ~costs =
  if n < 1 then invalid_arg "Daggen.generate_chain: n must be >= 1";
  let b = Streaming.Graph.builder () in
  let ids =
    Array.init n (fun k ->
        let name = Printf.sprintf "T%d" k in
        Streaming.Graph.add_task b (sample_task rng costs ~name))
  in
  for k = 0 to n - 2 do
    Streaming.Graph.add_edge b ~src:ids.(k) ~dst:ids.(k + 1)
      ~data_bytes:(sample_log_range rng costs.data_bytes_range)
  done;
  add_memory_io rng costs (Streaming.Graph.build b)
