(** Random task-graph generation in the style of Suter's DagGen tool, which
    the paper uses for its three experimental graphs (§6.2).

    Graphs are built layer by layer. [fat] controls the width of the layers
    (ideal width is [fat * sqrt n]); [regularity] in [0,1] controls how much
    layer widths fluctuate around the ideal; [density] is the probability of
    an edge between a task and a candidate predecessor; [jump] is how many
    layers back an edge may reach. Every non-source task receives at least
    one predecessor from the previous layer, so the graph is connected from
    layer to layer. All randomness flows through the given {!Support.Rng.t},
    making generation reproducible from a seed. *)

type shape = {
  n : int;  (** Number of tasks (>= 1). *)
  fat : float;  (** Width factor, > 0; small = chain-like, large = wide. *)
  density : float;  (** Edge probability in [0,1]. *)
  regularity : float;  (** Layer-width regularity in [0,1]; 1 = uniform. *)
  jump : int;  (** Max layer distance of an edge, >= 1. *)
}

type costs = {
  w_spe_range : float * float;  (** SPE seconds per instance, uniform. *)
  ppe_ratio_range : float * float;
      (** [w_ppe = w_spe * ratio], ratio uniform in this range (unrelated
          machines: both < 1 and > 1 values appear). *)
  data_bytes_range : float * float;
      (** Edge volume before CCR scaling; sampled log-uniformly. *)
  peek_weights : (int * float) list;
      (** Discrete distribution of the peek depth, e.g.
          [[ (0, 0.6); (1, 0.3); (2, 0.1) ]]. *)
  stateful_prob : float;  (** Probability that a task is stateful. *)
  memory_io_bytes : float * float;
      (** Range of per-instance main-memory traffic: sources read, sinks
          write, a volume drawn from this range. *)
}

val default_costs : costs
(** Calibrated as discussed in {!Streaming.Ccr}: [w_spe] in 2–8 ms,
    PPE/SPE ratio in 0.5–2.0, edges 0.5–32 kB log-uniform, peeks mostly 0. *)

val generate : rng:Support.Rng.t -> shape:shape -> costs:costs -> Streaming.Graph.t
(** Generate a random streaming application.
    @raise Invalid_argument on malformed parameters. *)

val generate_chain : rng:Support.Rng.t -> n:int -> costs:costs -> Streaming.Graph.t
(** Linear chain of [n] tasks with random costs (the paper's third graph is
    "a simple chain graph with 50 tasks"). *)
