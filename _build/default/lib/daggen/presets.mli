(** The concrete applications used in the paper's experiments (§6.2) and an
    MP2-style audio encoder standing in for the "real audio encoder" of the
    abstract. Each graph is deterministic given the seed, defaults matching
    the benchmark harness. Graphs are produced at CCR 0.775 (the paper's
    computation-intensive setting); rescale with {!Streaming.Ccr.scale_to}
    for the other variants. *)

val random_graph_1 : ?seed:int -> ?ccr:float -> unit -> Streaming.Graph.t
(** 50-task narrow DAG (paper Fig. 5(a)): mostly sequential with short
    parallel sections. *)

val random_graph_2 : ?seed:int -> ?ccr:float -> unit -> Streaming.Graph.t
(** 94-task wider DAG (paper Fig. 5(b)). *)

val random_graph_3 : ?seed:int -> ?ccr:float -> unit -> Streaming.Graph.t
(** Simple chain of 50 tasks (paper's third graph). *)

val all_random : ?seed:int -> ?ccr:float -> unit -> (string * Streaming.Graph.t) list
(** The three graphs above with their names. *)

val two_filter_chain : unit -> Streaming.Graph.t
(** The toy two-task pipeline of paper Fig. 2(a) (e.g. two video filters). *)

val figure_2b : unit -> Streaming.Graph.t
(** The nine-task example DAG of paper Fig. 2(b). *)

val audio_encoder : unit -> Streaming.Graph.t
(** MP2-style audio encoder: framer, 8 subband-filter groups, psychoacoustic
    model (peek = 1: it looks one frame ahead), bit allocation, 8 quantizer
    groups, bitstream packer. Costs are hand-written to be plausible for
    1152-sample frames; the filterbank vectorizes well on SPEs while the
    control-heavy packer favours the PPE. *)
