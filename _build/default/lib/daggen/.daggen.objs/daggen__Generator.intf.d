lib/daggen/generator.mli: Streaming Support
