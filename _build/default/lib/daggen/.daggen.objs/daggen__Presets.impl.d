lib/daggen/presets.ml: Generator List Printf Streaming Support
