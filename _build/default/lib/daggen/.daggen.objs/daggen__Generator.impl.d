lib/daggen/generator.ml: Array Float List Printf Streaming Support
