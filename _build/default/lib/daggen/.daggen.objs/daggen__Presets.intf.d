lib/daggen/presets.mli: Streaming
