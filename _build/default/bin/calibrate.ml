(* Calibration probe (developer tool, not part of the public surface).

   Prints the Fig. 7/Fig. 8 shapes — simulated and predicted speed-ups for
   every strategy across SPE counts and CCR values — so that changes to the
   cost model (Streaming.Ccr.ops_per_second, Daggen cost ranges, simulator
   overheads) can be re-checked against the paper's target shapes quickly.
   See DESIGN.md section "Implementation notes" for the calibration story. *)

let simulate platform g m ~n =
  (Simulator.Runtime.run platform g m ~instances:n).Simulator.Runtime.steady_throughput

let solver_options =
  { Cellsched.Milp_solver.default_options with time_limit = 10. }

let speedups g ~ns_list =
  List.iter
    (fun ns ->
      let platform = Cell.Platform.qs22 ~n_spe:ns () in
      let base_map = Cellsched.Heuristics.ppe_only platform g in
      let base = simulate platform g base_map ~n:2000 in
      let gm = Cellsched.Heuristics.greedy_mem platform g in
      let gc = Cellsched.Heuristics.greedy_cpu platform g in
      let t0 = Unix.gettimeofday () in
      let milp =
        (Cellsched.Milp_solver.solve ~options:solver_options platform g)
          .Cellsched.Milp_solver.mapping
      in
      let dt = Unix.gettimeofday () -. t0 in
      let s m = simulate platform g m ~n:2000 /. base in
      let pred m =
        Cellsched.Steady_state.throughput platform g m
        /. Cellsched.Steady_state.throughput platform g base_map
      in
      Printf.printf "  nS=%d  gm=%.2f(%.2f) gc=%.2f(%.2f) lp=%.2f(%.2f) [%.1fs]\n%!"
        ns (s gm) (pred gm) (s gc) (pred gc) (s milp) (pred milp) dt)
    ns_list

let () =
  List.iter
    (fun (name, g) ->
      Printf.printf "%s: %d tasks %d edges\n%!" name
        (Streaming.Graph.n_tasks g)
        (Streaming.Graph.n_edges g);
      speedups g ~ns_list:[ 2; 4; 8 ])
    (Daggen.Presets.all_random ());
  print_endline "CCR sweep (graph1, nS=8), lp speedup sim(pred):";
  List.iter
    (fun ccr ->
      let g = Daggen.Presets.random_graph_1 ~ccr () in
      let platform = Cell.Platform.qs22 () in
      let base_map = Cellsched.Heuristics.ppe_only platform g in
      let base = simulate platform g base_map ~n:2000 in
      let milp =
        (Cellsched.Milp_solver.solve ~options:solver_options platform g)
          .Cellsched.Milp_solver.mapping
      in
      Printf.printf "  ccr=%.3f  lp=%.2f(%.2f)\n%!" ccr
        (simulate platform g milp ~n:2000 /. base)
        (Cellsched.Steady_state.throughput platform g milp
        /. Cellsched.Steady_state.throughput platform g base_map))
    Streaming.Ccr.paper_ccrs
