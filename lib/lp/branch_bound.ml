type options = {
  rel_gap : float;
  max_nodes : int;
  time_limit : float;
  int_tol : float;
}

let default_options =
  { rel_gap = 0.; max_nodes = 200_000; time_limit = 300.; int_tol = 1e-6 }

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type outcome = {
  status : status;
  best : Simplex.solution option;
  bound : float;
  nodes : int;
  gap : float;
  lp_warm : int;
  lp_cold : int;
}

(* Default-off observability hooks: totals flushed once per solve so the
   node loop pays nothing beyond three local counters. *)
let m_nodes =
  Obs.Metrics.counter ~help:"Branch-and-bound nodes explored"
       "lp_bb_nodes_total"

let m_pruned =
  Obs.Metrics.counter ~help:"Nodes pruned against the incumbent bound"
       "lp_bb_pruned_total"

let m_incumbents =
  Obs.Metrics.counter ~help:"Incumbent improvements accepted"
       "lp_bb_incumbents_total"

let m_gap =
  Obs.Metrics.gauge ~help:"Relative gap of the last MILP solve"
       "lp_bb_last_gap"

(* A node is a set of tightened bounds, the bound inherited from its
   parent's relaxation (a valid lower bound on every leaf below it), and
   the parent's optimal basis: the child differs by one bound flip, so
   re-solving from that basis is a handful of dual-simplex pivots. *)
type node = {
  nlb : float array;
  nub : float array;
  nbound : float;
  nbasis : Simplex.basis option;
}

module Node_heap = Support.Binary_heap.Make (struct
  type t = node

  let compare a b = compare a.nbound b.nbound
end)

let relative_gap ~incumbent ~bound =
  if incumbent = infinity then infinity
  else (incumbent -. bound) /. Float.max 1e-9 (abs_float incumbent)

(* Most fractional integer variable, if any. *)
let find_branch_var ~int_tol int_vars (x : float array) =
  let best = ref (-1) and best_frac = ref int_tol in
  let consider v =
    let f = x.(v) -. Float.round x.(v) in
    let dist = abs_float f in
    if dist > !best_frac then begin
      best := v;
      best_frac := dist
    end
  in
  List.iter consider int_vars;
  if !best < 0 then None else Some !best

let solve ?(span = Obs.Span.null) ?(options = default_options)
    ?(should_stop = fun () -> false) ?warm_start problem =
  let sense, _ = Problem.objective problem in
  (* Internally we minimize; flip reported values for Maximize. *)
  let to_internal obj =
    match sense with Problem.Minimize -> obj | Problem.Maximize -> -.obj
  in
  let of_internal = to_internal in
  let int_vars = Problem.integer_vars problem in
  let lb0, ub0 = Problem.bounds_arrays problem in
  let start_time = Unix.gettimeofday () in
  let deadline = start_time +. options.time_limit in
  let incumbent = ref None in
  let incumbent_obj = ref infinity (* internal sense *) in
  let nodes = ref 0 in
  let pruned = ref 0 in
  let incumbents = ref 0 in
  let lp_warm = ref 0 in
  let lp_cold = ref 0 in
  let open_nodes = Node_heap.create () in
  (* Try to install a solution as incumbent. *)
  let offer (sol : Simplex.solution) =
    let obj = to_internal sol.objective in
    if obj < !incumbent_obj -. 1e-12 then begin
      incumbent_obj := obj;
      incumbent := Some sol;
      incr incumbents
    end
  in
  (* Seed the incumbent from a warm start by fixing integer variables. *)
  (match warm_start with
  | None -> ()
  | Some x0 ->
      if Array.length x0 <> Problem.n_vars problem then
        invalid_arg "Branch_bound.solve: warm start has wrong arity";
      let lb = Array.copy lb0 and ub = Array.copy ub0 in
      let ok = ref true in
      let fix v =
        let r = Float.round x0.(v) in
        if r < lb.(v) -. 1e-9 || r > ub.(v) +. 1e-9 then ok := false
        else begin
          lb.(v) <- r;
          ub.(v) <- r
        end
      in
      List.iter fix int_vars;
      if !ok then
        match Simplex.solve ~lb ~ub problem with
        | Simplex.Optimal sol -> offer sol
        | Simplex.Infeasible | Simplex.Unbounded -> ());
  let solve_node ~warm ~lb ~ub =
    let r = Simplex.solve_detailed ?warm ~lb ~ub problem in
    (match r with
    | Simplex.Opt { warm = true; _ } -> incr lp_warm
    | _ -> incr lp_cold);
    r
  in
  (* Reduced-cost bound tightening: with node relaxation value [obj] and
     incumbent [U], a nonbasic integer variable with reduced cost [d] can
     move at most (U - obj) / |d| from its bound before the LP bound
     alone exceeds the incumbent. Returns None when some integer domain
     empties (the whole subtree is dominated). *)
  let tighten ~obj (solved : Simplex.solved) lb ub =
    if !incumbent_obj = infinity then Some (lb, ub)
    else begin
      let slack = !incumbent_obj -. obj in
      let d = solved.reduced_costs in
      let tlb = ref lb and tub = ref ub and dead = ref false in
      let ensure_lb () = if !tlb == lb then tlb := Array.copy lb in
      let ensure_ub () = if !tub == ub then tub := Array.copy ub in
      List.iter
        (fun v ->
          if not !dead && abs_float d.(v) > 1e-9 then begin
            let x = solved.sol.x.(v) in
            if d.(v) > 0. && x <= lb.(v) +. options.int_tol then begin
              (* At lower bound; moving up costs d per unit. *)
              let cap = floor (lb.(v) +. (slack /. d.(v)) +. options.int_tol) in
              if cap < ub.(v) then begin
                ensure_ub ();
                !tub.(v) <- cap;
                if cap < lb.(v) -. 1e-9 then dead := true
              end
            end
            else if d.(v) < 0. && x >= ub.(v) -. options.int_tol then begin
              let cap = ceil (ub.(v) +. (slack /. d.(v)) -. options.int_tol) in
              if cap > lb.(v) then begin
                ensure_lb ();
                !tlb.(v) <- cap;
                if cap > ub.(v) +. 1e-9 then dead := true
              end
            end
          end)
        int_vars;
      if !dead then None else Some (!tlb, !tub)
    end
  in
  let best_open_bound () =
    if Node_heap.is_empty open_nodes then infinity
    else (Node_heap.min_elt open_nodes).nbound
  in
  let finish status bound =
    let gap = relative_gap ~incumbent:!incumbent_obj ~bound in
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.Counter.add m_nodes !nodes;
      Obs.Metrics.Counter.add m_pruned !pruned;
      Obs.Metrics.Counter.add m_incumbents !incumbents;
      Obs.Metrics.Gauge.set m_gap
        (if gap = infinity then Float.nan else gap)
    end;
    (* Flight-recorder span: one per solve, covering root LP through
       this exit, whichever path finished the tree. *)
    Obs.Span.record span ~t_start:start_time
      ~attrs:
        [
          ("nodes", Obs.Span.Int !nodes);
          ("pruned", Obs.Span.Int !pruned);
          ("incumbents", Obs.Span.Int !incumbents);
          ("lp_warm", Obs.Span.Int !lp_warm);
          ("lp_cold", Obs.Span.Int !lp_cold);
        ]
      "milp-bb";
    {
      status;
      best = Option.map (fun (s : Simplex.solution) -> s) !incumbent;
      bound = of_internal bound;
      nodes = !nodes;
      gap;
      lp_warm = !lp_warm;
      lp_cold = !lp_cold;
    }
  in
  (* Solve the root. *)
  match solve_node ~warm:None ~lb:lb0 ~ub:ub0 with
  | Simplex.Infeas ->
      if !incumbent = None then finish Infeasible infinity
      else finish Optimal !incumbent_obj
  | Simplex.Unbound -> finish Unbounded neg_infinity
  | Simplex.Opt root ->
      Node_heap.add open_nodes
        {
          nlb = lb0;
          nub = ub0;
          nbound = to_internal root.sol.objective;
          nbasis = Some root.sbasis;
        };
      let exception Done of outcome in
      (try
         while not (Node_heap.is_empty open_nodes) do
           let node = Node_heap.pop_min open_nodes in
           (* The popped node has the least bound, so the global lower bound
              is [min node.nbound incumbent]. *)
           let global_lb = Float.min node.nbound !incumbent_obj in
           if relative_gap ~incumbent:!incumbent_obj ~bound:global_lb
              <= options.rel_gap
           then raise (Done (finish Optimal global_lb));
           if
             !nodes >= options.max_nodes
             || Unix.gettimeofday () > deadline
             || should_stop ()
           then begin
             let bound = Float.min node.nbound (best_open_bound ()) in
             let status = if !incumbent = None then Unknown else Feasible in
             raise (Done (finish status bound))
           end;
           incr nodes;
           (* Prune against the incumbent. *)
           if node.nbound >= !incumbent_obj -. 1e-12 then incr pruned
           else begin
             match solve_node ~warm:node.nbasis ~lb:node.nlb ~ub:node.nub with
             | Simplex.Infeas -> ()
             | Simplex.Unbound ->
                 (* Can only happen at the root, handled above; deeper nodes
                    inherit the root's bounded feasible region. *)
                 raise (Done (finish Unbounded neg_infinity))
             | Simplex.Opt solved ->
                 let sol = solved.sol in
                 let obj = to_internal sol.objective in
                 if obj < !incumbent_obj -. 1e-12 then begin
                   match
                     find_branch_var ~int_tol:options.int_tol int_vars sol.x
                   with
                   | None -> offer sol
                   | Some v -> (
                       match tighten ~obj solved node.nlb node.nub with
                       | None -> incr pruned
                       | Some (lb, ub) ->
                           let x = sol.x.(v) in
                           let down_ub = Float.of_int (int_of_float (floor x)) in
                           let left_ub = Array.copy ub in
                           left_ub.(v) <- Float.min left_ub.(v) down_ub;
                           if left_ub.(v) >= lb.(v) -. 1e-9 then
                             Node_heap.add open_nodes
                               {
                                 nlb = lb;
                                 nub = left_ub;
                                 nbound = obj;
                                 nbasis = Some solved.sbasis;
                               };
                           let right_lb = Array.copy lb in
                           right_lb.(v) <-
                             Float.max right_lb.(v) (down_ub +. 1.);
                           if right_lb.(v) <= ub.(v) +. 1e-9 then
                             Node_heap.add open_nodes
                               {
                                 nlb = right_lb;
                                 nub = ub;
                                 nbound = obj;
                                 nbasis = Some solved.sbasis;
                               })
                 end
           end
         done;
         (* Tree exhausted: the incumbent (if any) is optimal. *)
         if !incumbent = None then finish Infeasible infinity
         else finish Optimal !incumbent_obj
       with Done outcome -> outcome)
