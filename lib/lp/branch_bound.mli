(** Mixed-integer solver: LP-based branch and bound.

    Works on any {!Problem.t}; [Integer] variables are branched on, the
    continuous relaxation being solved by {!Simplex}. Nodes are explored
    best-bound-first, each carrying its parent's optimal basis so child
    re-solves run the dual-simplex warm path (one bound flip from
    optimal) instead of a cold two-phase solve; reduced costs from each
    relaxation tighten the integer bounds of the subtree against the
    incumbent. The solver mirrors the paper's use of CPLEX (§6): it
    can stop as soon as the incumbent is proven within a relative gap of
    the optimum (the paper used 5 %), and it accepts a warm-start
    assignment (e.g. from a heuristic) as the initial incumbent. *)

type options = {
  rel_gap : float;  (** Stop at this relative optimality gap (0 = exact). *)
  max_nodes : int;  (** Node budget. *)
  time_limit : float;  (** Wall-clock budget in seconds. *)
  int_tol : float;  (** Integrality tolerance. *)
}

val default_options : options
(** [rel_gap = 0.], [max_nodes = 200_000], [time_limit = 300.],
    [int_tol = 1e-6]. *)

type status =
  | Optimal  (** Incumbent proven optimal (or within [rel_gap]). *)
  | Feasible  (** Budget exhausted with an incumbent; [bound] still valid. *)
  | Infeasible
  | Unbounded
  | Unknown  (** Budget exhausted before any incumbent was found. *)

type outcome = {
  status : status;
  best : Simplex.solution option;  (** Incumbent, original objective sense. *)
  bound : float;
      (** Proven bound on the optimum (lower bound when minimizing, upper
          bound when maximizing). *)
  nodes : int;  (** Nodes expanded. *)
  gap : float;  (** Achieved relative gap; [infinity] without incumbent. *)
  lp_warm : int;  (** Node relaxations answered by the dual warm path. *)
  lp_cold : int;  (** Node relaxations that ran the cold two-phase path. *)
}

val solve :
  ?span:Obs.Span.ctx ->
  ?options:options ->
  ?should_stop:(unit -> bool) ->
  ?warm_start:float array ->
  Problem.t ->
  outcome
(** [span] (default {!Obs.Span.null}: free) records one ["milp-bb"]
    span covering the whole solve, annotated with nodes, prunes,
    incumbent improvements and the warm/cold LP split — the solver
    flight recorder.

    [warm_start] is a full assignment whose integer components seed the
    incumbent: integer variables are fixed to their rounded values and the
    continuous rest re-optimized; it is ignored if that LP is infeasible.

    [should_stop] is polled once per node (default: never stop): when it
    returns [true] the search finishes exactly as if the node budget had
    run out — the incumbent found so far (status [Feasible]) and the best
    open bound are returned instead of nothing. Used for deadline-driven
    cancellation by the scheduling daemon. *)
