(** Linear-programming solver: revised simplex with bounded variables.

    Integrality of [Integer] variables is ignored (LP relaxation); use
    {!Branch_bound} for mixed-integer problems. The implementation is a
    two-phase bounded-variable revised simplex maintaining a dense basis
    inverse with rank-1 updates, Devex pricing with a Bland's-rule
    fallback against cycling, and periodic recomputation of the basic
    values for numerical hygiene. {!solve_detailed} additionally exports
    the optimal basis and accepts one back as a warm start: the basis is
    refactorized under the caller's (typically one-bound-flip) bounds and
    repaired by a dual-simplex phase, which is how {!Branch_bound} turns
    child-node re-solves into a handful of pivots. *)

type solution = {
  x : float array;  (** One value per problem variable. *)
  objective : float;  (** Objective in the problem's original sense. *)
  iterations : int;
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded

type stats = {
  mutable solves : int;
  mutable total_iterations : int;
  mutable warm_solves : int;  (** Solves answered by the dual warm path. *)
  mutable warm_failures : int;  (** Warm starts that fell back cold. *)
}

val stats : stats
(** Global counters (for benchmarks/diagnostics). *)

val solve : ?lb:float array -> ?ub:float array -> Problem.t -> result
(** Solve the LP relaxation. [lb]/[ub], when given, override the problem's
    variable bounds (arrays of length [Problem.n_vars]); this is how
    {!Branch_bound} explores its tree without mutating the problem.
    @raise Invalid_argument on override arrays of the wrong length or with
    [lb > ub] entries. *)

type basis
(** An optimal basis exported by {!solve_detailed}: variable statuses plus
    the row-to-basic-variable map, artificial-free. Opaque; only
    meaningful for the problem (shape) it was exported from. *)

type solved = {
  sol : solution;
  sbasis : basis;  (** Final basis, ready to warm-start a child solve. *)
  reduced_costs : float array;
      (** Structural reduced costs in the internal {e minimization} sense
          (negated for [Maximize] problems); 0 for basic variables. Feed
          to reduced-cost bound tightening. *)
  warm : bool;  (** The dual-simplex warm path produced this answer. *)
}

type basis_result = Opt of solved | Infeas | Unbound

val solve_detailed :
  ?lb:float array -> ?ub:float array -> ?warm:basis -> Problem.t -> basis_result
(** Like {!solve} but returns the final basis and reduced costs, and
    accepts a parent basis via [warm]. A warm solve refactorizes the
    basis under the new bounds and runs dual simplex (the parent optimum
    is dual-feasible after a bound flip, so primal feasibility is
    restored in a few pivots); any numerical trouble silently falls back
    to the cold two-phase path, so the answer is never worse than
    {!solve}'s. The final point is extracted from a fresh factorization
    of the final basis, so warm and cold solves that end on the same
    basis agree bitwise. *)
