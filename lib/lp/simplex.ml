type solution = { x : float array; objective : float; iterations : int }
type result = Optimal of solution | Infeasible | Unbounded

type stats = {
  mutable solves : int;
  mutable total_iterations : int;
  mutable warm_solves : int;
  mutable warm_failures : int;
}

let stats = { solves = 0; total_iterations = 0; warm_solves = 0; warm_failures = 0 }

(* Default-off observability hooks (see lib/obs): registered eagerly at
   module init — forcing a lazy cell from several domains is racy. *)
let m_solves =
  Obs.Metrics.counter ~help:"LP relaxations solved" "lp_simplex_solves_total"

let m_pivots =
  Obs.Metrics.counter ~help:"Simplex pivots (phase 1 + phase 2)"
       "lp_simplex_pivots_total"

let m_warm =
  Obs.Metrics.counter ~help:"LP solves answered by the dual-simplex warm path"
    "lp_warm_solves_total"

let m_warm_fail =
  Obs.Metrics.counter
    ~help:"Warm starts abandoned for a cold two-phase solve"
    "lp_warm_failures_total"

let m_iterations =
  Obs.Metrics.histogram ~help:"Pivots per solve"
       ~buckets:(Obs.Metrics.Histogram.log_buckets ~lo:1. ~factor:2. ~count:24 ())
       "lp_simplex_iterations_per_solve"

(* Tolerances. *)
let dual_tol = 1e-7  (* reduced-cost optimality threshold *)
let pivot_tol = 1e-9  (* smallest usable pivot magnitude *)
let feas_tol = 1e-7  (* phase-1 residual infeasibility threshold *)

type status = At_lower | At_upper | Basic | Free_nb

(* An exportable basis: one status per structural-then-slack variable
   plus the row -> basic-variable map. Artificials never appear (a basic
   artificial at zero is relabeled as the row's slack on export, which
   spans the same unit column). *)
type basis = { vstatus : status array; vbasis : int array }

(* Computational form: min c.x, A x = b (slack per row), l <= x <= u.
   Columns are sparse; the basis inverse is dense. *)
type tableau = {
  m : int;  (* rows *)
  ntot : int;  (* structural + slack + artificial columns *)
  n_struct : int;
  col_idx : int array array;  (* row indices per column *)
  col_val : float array array;
  b : float array;
  c : float array;  (* current-phase cost *)
  lb : float array;
  ub : float array;
  x : float array;  (* current value of every variable *)
  status : status array;
  basis : int array;  (* row -> basic variable *)
  binv : float array;  (* dense basis inverse, m x m, row-major *)
  y : float array;  (* scratch: simplex multipliers *)
  w : float array;  (* scratch: FTRAN result *)
  gamma : float array;  (* Devex reference weights, one per column *)
}

let build problem ~lb_over ~ub_over =
  let n = Problem.n_vars problem in
  let constrs = Problem.constraints problem in
  let m = Array.length constrs in
  let plb, pub = Problem.bounds_arrays problem in
  let lb_s = match lb_over with Some a -> a | None -> plb in
  let ub_s = match ub_over with Some a -> a | None -> pub in
  if Array.length lb_s <> n || Array.length ub_s <> n then
    invalid_arg "Simplex.solve: override bounds have wrong length";
  Array.iteri
    (fun v l -> if l > ub_s.(v) then invalid_arg "Simplex.solve: lb > ub")
    lb_s;
  (* Columns: structural 0..n-1, slack n..n+m-1, artificials appended. *)
  let max_cols = n + (2 * m) in
  let col_idx = Array.make max_cols [||] in
  let col_val = Array.make max_cols [||] in
  let rows_of_var = Array.make n [] in
  let b = Array.make m 0. in
  (* Row equilibration: divide every row by its largest coefficient so that
     rows mixing unit-scale and bandwidth-scale terms keep meaningful
     tolerances. Pure row scaling leaves the solution unchanged. *)
  let row_scale = Array.make m 1. in
  Array.iteri
    (fun i { Problem.expr; _ } ->
      let biggest =
        List.fold_left
          (fun acc (_, coef) -> Float.max acc (abs_float coef))
          0. (Expr.to_list expr)
      in
      if biggest > 0. then row_scale.(i) <- biggest)
    constrs;
  Array.iteri
    (fun i { Problem.expr; rhs; _ } ->
      b.(i) <- rhs /. row_scale.(i);
      List.iter
        (fun (v, coef) ->
          rows_of_var.(v) <- (i, coef /. row_scale.(i)) :: rows_of_var.(v))
        (Expr.to_list expr))
    constrs;
  for v = 0 to n - 1 do
    let entries = List.rev rows_of_var.(v) in
    col_idx.(v) <- Array.of_list (List.map fst entries);
    col_val.(v) <- Array.of_list (List.map snd entries)
  done;
  let lb = Array.make max_cols 0. and ub = Array.make max_cols infinity in
  Array.blit lb_s 0 lb 0 n;
  Array.blit ub_s 0 ub 0 n;
  (* One slack per row; its bounds encode the relation. *)
  for i = 0 to m - 1 do
    let s = n + i in
    col_idx.(s) <- [| i |];
    col_val.(s) <- [| 1. |];
    (match constrs.(i).Problem.rel with
    | Problem.Le ->
        lb.(s) <- 0.;
        ub.(s) <- infinity
    | Problem.Ge ->
        lb.(s) <- neg_infinity;
        ub.(s) <- 0.
    | Problem.Eq ->
        lb.(s) <- 0.;
        ub.(s) <- 0.)
  done;
  (m, n, col_idx, col_val, b, lb, ub, constrs)

(* Set every non-slack, non-artificial variable to its initial nonbasic
   value: the finite bound nearest zero, or 0 for free variables. *)
let initial_nonbasic_value lb ub =
  if lb = neg_infinity && ub = infinity then (0., Free_nb)
  else if lb = neg_infinity then (ub, At_upper)
  else if ub = infinity then (lb, At_lower)
  else if abs_float lb <= abs_float ub then (lb, At_lower)
  else (ub, At_upper)

(* Residual of row i given nonbasic values: b_i - sum_j a_ij x_j over
   structural columns. *)
let residuals m n col_idx col_val b x =
  let r = Array.copy b in
  for v = 0 to n - 1 do
    if x.(v) <> 0. then begin
      let idx = col_idx.(v) and vl = col_val.(v) in
      for k = 0 to Array.length idx - 1 do
        r.(idx.(k)) <- r.(idx.(k)) -. (vl.(k) *. x.(v))
      done
    end
  done;
  ignore m;
  r

exception Unbounded_exn
exception Iteration_limit
exception Numerics  (* warm-start path gave up; caller falls back cold *)

(* Recompute basic values from scratch: x_B = B^-1 (b - N x_N). *)
let refresh_basics tab =
  let m = tab.m in
  let r = Array.copy tab.b in
  for v = 0 to tab.ntot - 1 do
    if tab.status.(v) <> Basic && tab.x.(v) <> 0. then begin
      let idx = tab.col_idx.(v) and vl = tab.col_val.(v) in
      for k = 0 to Array.length idx - 1 do
        r.(idx.(k)) <- r.(idx.(k)) -. (vl.(k) *. tab.x.(v))
      done
    end
  done;
  for i = 0 to m - 1 do
    let acc = ref 0. in
    let base = i * m in
    for j = 0 to m - 1 do
      acc := !acc +. (tab.binv.(base + j) *. r.(j))
    done;
    tab.x.(tab.basis.(i)) <- !acc
  done

(* BTRAN: y = c_B B^-1 into tab.y. *)
let compute_multipliers tab =
  let m = tab.m in
  let y = tab.y in
  Array.fill y 0 m 0.;
  for i = 0 to m - 1 do
    let cb = tab.c.(tab.basis.(i)) in
    if cb <> 0. then begin
      let base = i * m in
      for j = 0 to m - 1 do
        y.(j) <- y.(j) +. (cb *. tab.binv.(base + j))
      done
    end
  done

(* Reduced cost of column q against the multipliers in tab.y. *)
let reduced_cost tab q =
  let idx = tab.col_idx.(q) and vl = tab.col_val.(q) in
  let d = ref tab.c.(q) in
  let y = tab.y in
  for k = 0 to Array.length idx - 1 do
    d := !d -. (y.(idx.(k)) *. vl.(k))
  done;
  !d

(* Rank-1 update of the dense basis inverse after pivoting column q into
   row r; [w] is the FTRAN result B^-1 A_q. *)
let update_binv tab w r =
  let m = tab.m in
  let wr = w.(r) in
  let binv = tab.binv in
  let rbase = r * m in
  let inv_wr = 1. /. wr in
  for j = 0 to m - 1 do
    binv.(rbase + j) <- binv.(rbase + j) *. inv_wr
  done;
  for i = 0 to m - 1 do
    let wi = w.(i) in
    if i <> r && wi <> 0. then begin
      let ibase = i * m in
      for j = 0 to m - 1 do
        let p = binv.(rbase + j) in
        if p <> 0. then binv.(ibase + j) <- binv.(ibase + j) -. (wi *. p)
      done
    end
  done

(* Rebuild tab.binv exactly from the current basis columns by
   Gauss-Jordan with partial pivoting. Makes the final point a pure
   function of the final basis (no drift from accumulated rank-1
   updates), which is what lets a warm solve that lands on the same
   basis as a cold solve reproduce it bitwise.
   @raise Numerics when the basis matrix is (near-)singular. *)
let refactorize tab =
  let m = tab.m in
  let a = Array.make (m * m) 0. in
  for j = 0 to m - 1 do
    let v = tab.basis.(j) in
    let idx = tab.col_idx.(v) and vl = tab.col_val.(v) in
    for k = 0 to Array.length idx - 1 do
      a.((idx.(k) * m) + j) <- vl.(k)
    done
  done;
  let binv = tab.binv in
  Array.fill binv 0 (m * m) 0.;
  for i = 0 to m - 1 do
    binv.((i * m) + i) <- 1.
  done;
  let swap_rows arr r1 r2 =
    if r1 <> r2 then begin
      let b1 = r1 * m and b2 = r2 * m in
      for j = 0 to m - 1 do
        let t = arr.(b1 + j) in
        arr.(b1 + j) <- arr.(b2 + j);
        arr.(b2 + j) <- t
      done
    end
  in
  for col = 0 to m - 1 do
    let p = ref col in
    for i = col + 1 to m - 1 do
      if abs_float a.((i * m) + col) > abs_float a.((!p * m) + col) then p := i
    done;
    let piv = a.((!p * m) + col) in
    if abs_float piv < 1e-11 then raise Numerics;
    swap_rows a !p col;
    swap_rows binv !p col;
    let base = col * m in
    let inv = 1. /. piv in
    for j = 0 to m - 1 do
      a.(base + j) <- a.(base + j) *. inv;
      binv.(base + j) <- binv.(base + j) *. inv
    done;
    for i = 0 to m - 1 do
      if i <> col then begin
        let f = a.((i * m) + col) in
        if f <> 0. then begin
          let ib = i * m in
          for j = 0 to m - 1 do
            a.(ib + j) <- a.(ib + j) -. (f *. a.(base + j));
            binv.(ib + j) <- binv.(ib + j) -. (f *. binv.(base + j))
          done
        end
      end
    done
  done

(* One primal simplex phase: optimize tab.c from the current basis.
   Devex pricing (reference weights in tab.gamma) with a Bland's-rule
   fallback against cycling. *)
let optimize tab ~max_iters =
  let m = tab.m and ntot = tab.ntot in
  let iters = ref 0 in
  let degenerate_run = ref 0 in
  let use_bland () = !degenerate_run > 200 + m in
  Array.fill tab.gamma 0 ntot 1.;
  let continue_ = ref true in
  while !continue_ do
    if !iters >= max_iters then raise Iteration_limit;
    incr iters;
    if !iters land 1023 = 0 then refresh_basics tab;
    (* A Devex reference framework goes stale after many pivots. *)
    if !iters land 4095 = 0 then Array.fill tab.gamma 0 ntot 1.;
    compute_multipliers tab;
    let y = tab.y in
    (* Pricing: find entering column, largest d^2 / gamma. *)
    let best = ref (-1) and best_score = ref neg_infinity and best_dir = ref 1. in
    let bland = use_bland () in
    (try
       for q = 0 to ntot - 1 do
         match tab.status.(q) with
         | Basic -> ()
         | st ->
             let idx = tab.col_idx.(q) and vl = tab.col_val.(q) in
             let d = ref tab.c.(q) in
             for k = 0 to Array.length idx - 1 do
               d := !d -. (y.(idx.(k)) *. vl.(k))
             done;
             let improving, dir =
               match st with
               | At_lower -> (!d < -.dual_tol, 1.)
               | At_upper -> (!d > dual_tol, -1.)
               | Free_nb ->
                   if !d < -.dual_tol then (true, 1.)
                   else if !d > dual_tol then (true, -1.)
                   else (false, 1.)
               | Basic -> (false, 1.)
             in
             if improving then
               if bland then begin
                 best := q;
                 best_dir := dir;
                 raise Exit
               end
               else begin
                 let score = !d *. !d /. tab.gamma.(q) in
                 if score > !best_score then begin
                   best := q;
                   best_score := score;
                   best_dir := dir
                 end
               end
       done
     with Exit -> ());
    if !best < 0 then continue_ := false
    else begin
      let q = !best and dir = !best_dir in
      (* FTRAN: w = B^-1 A_q. *)
      let w = tab.w in
      Array.fill w 0 m 0.;
      let idx = tab.col_idx.(q) and vl = tab.col_val.(q) in
      for k = 0 to Array.length idx - 1 do
        let col = idx.(k) and v = vl.(k) in
        for i = 0 to m - 1 do
          w.(i) <- w.(i) +. (tab.binv.((i * m) + col) *. v)
        done
      done;
      (* Ratio test: entering moves by t >= 0 in direction [dir]; basic i
         moves by delta_i * t with delta_i = -dir * w_i. *)
      let t_bound =
        if tab.lb.(q) > neg_infinity && tab.ub.(q) < infinity then
          tab.ub.(q) -. tab.lb.(q)
        else infinity
      in
      let t_min = ref t_bound and leave = ref (-1) and leave_to_upper = ref false in
      for i = 0 to m - 1 do
        let delta = -.dir *. w.(i) in
        if abs_float delta > pivot_tol then begin
          let bi = tab.basis.(i) in
          let xi = tab.x.(bi) in
          let t =
            if delta > 0. then
              if tab.ub.(bi) < infinity then (tab.ub.(bi) -. xi) /. delta
              else infinity
            else if tab.lb.(bi) > neg_infinity then (tab.lb.(bi) -. xi) /. delta
            else infinity
          in
          let t = Float.max 0. t in
          (* Prefer strictly smaller ratios; among (near-)ties keep the
             larger pivot for stability. *)
          if
            t < !t_min -. 1e-12
            || (t <= !t_min +. 1e-12
               && !leave >= 0
               && abs_float delta
                  > abs_float (-.dir *. w.(!leave)))
          then begin
            t_min := t;
            leave := i;
            leave_to_upper := delta > 0.
          end
        end
      done;
      if !t_min = infinity then raise Unbounded_exn;
      let t = !t_min in
      if t <= 1e-12 then incr degenerate_run else degenerate_run := 0;
      (* Apply the step to all basic variables. *)
      for i = 0 to m - 1 do
        let delta = -.dir *. w.(i) in
        if delta <> 0. then begin
          let bi = tab.basis.(i) in
          tab.x.(bi) <- tab.x.(bi) +. (delta *. t)
        end
      done;
      if !leave < 0 then begin
        (* Bound flip: entering jumps to its other bound; basis unchanged. *)
        tab.x.(q) <- (if dir > 0. then tab.ub.(q) else tab.lb.(q));
        tab.status.(q) <- (if dir > 0. then At_upper else At_lower)
      end
      else begin
        let r = !leave in
        let lv = tab.basis.(r) in
        (* Leaving variable settles on the bound it reached. *)
        if !leave_to_upper then begin
          tab.x.(lv) <- tab.ub.(lv);
          tab.status.(lv) <- At_upper
        end
        else begin
          tab.x.(lv) <- tab.lb.(lv);
          tab.status.(lv) <- At_lower
        end;
        tab.x.(q) <- tab.x.(q) +. (dir *. t);
        tab.status.(q) <- Basic;
        tab.basis.(r) <- q;
        let wr = w.(r) in
        update_binv tab w r;
        (* Devex weight update: the post-pivot row r of binv gives
           alpha_rj / alpha_rq directly. *)
        if not bland then begin
          let gq = tab.gamma.(q) in
          let rbase = r * m in
          for j = 0 to ntot - 1 do
            if j <> q && tab.status.(j) <> Basic then begin
              let jdx = tab.col_idx.(j) and jvl = tab.col_val.(j) in
              let a = ref 0. in
              for k = 0 to Array.length jdx - 1 do
                a := !a +. (tab.binv.(rbase + jdx.(k)) *. jvl.(k))
              done;
              let cand = !a *. !a *. gq in
              if cand > tab.gamma.(j) then tab.gamma.(j) <- cand
            end
          done;
          tab.gamma.(lv) <- Float.max (gq /. (wr *. wr)) 1.
        end
      end
    end
  done;
  !iters

(* Dual simplex: from a dual-feasible basis whose basic values may
   violate their bounds (the warm-start situation: a child node flipped
   a bound under its parent's optimal basis), pivot until primal
   feasible. Each iteration picks the worst-violating row, then the
   entering column by the bounded-variable dual ratio test, which keeps
   every nonbasic reduced cost on its feasible side.
   @raise Numerics on a vanishing pivot (caller falls back cold)
   @raise Exit when some row has no entering candidate: the dual is
   unbounded, i.e. the (child) LP is infeasible. *)
let dual_optimize tab ~max_iters =
  let m = tab.m and ntot = tab.ntot in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if !iters >= max_iters then raise Iteration_limit;
    incr iters;
    if !iters land 255 = 0 then refresh_basics tab;
    (* Leaving row: largest primal bound violation among basic vars. *)
    let r = ref (-1) and worst = ref feas_tol and viol_up = ref false in
    for i = 0 to m - 1 do
      let bi = tab.basis.(i) in
      let xi = tab.x.(bi) in
      if xi -. tab.ub.(bi) > !worst then begin
        r := i;
        worst := xi -. tab.ub.(bi);
        viol_up := true
      end
      else if tab.lb.(bi) -. xi > !worst then begin
        r := i;
        worst := tab.lb.(bi) -. xi;
        viol_up := false
      end
    done;
    if !r < 0 then continue_ := false
    else begin
      let r = !r and up = !viol_up in
      compute_multipliers tab;
      let rbase = r * m in
      (* Dual ratio test: minimize |d_j| / |alpha_j| over columns that can
         move the leaving variable back toward its violated bound. *)
      let q = ref (-1) and best_ratio = ref infinity and best_alpha = ref 0. in
      for j = 0 to ntot - 1 do
        match tab.status.(j) with
        | Basic -> ()
        | st ->
            let idx = tab.col_idx.(j) and vl = tab.col_val.(j) in
            let a = ref 0. in
            for k = 0 to Array.length idx - 1 do
              a := !a +. (tab.binv.(rbase + idx.(k)) *. vl.(k))
            done;
            let alpha = !a in
            let candidate =
              abs_float alpha > pivot_tol
              &&
              (* [up]: x_Br must decrease; d x_Br / d x_j = -alpha. *)
              match st with
              | At_lower -> if up then alpha > 0. else alpha < 0.
              | At_upper -> if up then alpha < 0. else alpha > 0.
              | Free_nb -> true
              | Basic -> false
            in
            if candidate then begin
              let d = reduced_cost tab j in
              let ratio = abs_float d /. abs_float alpha in
              if
                ratio < !best_ratio -. 1e-12
                || (ratio <= !best_ratio +. 1e-12
                   && abs_float alpha > abs_float !best_alpha)
              then begin
                q := j;
                best_ratio := ratio;
                best_alpha := alpha
              end
            end
      done;
      if !q < 0 then raise Exit (* dual unbounded: primal infeasible *);
      let q = !q in
      (* FTRAN the entering column. *)
      let w = tab.w in
      Array.fill w 0 m 0.;
      let idx = tab.col_idx.(q) and vl = tab.col_val.(q) in
      for k = 0 to Array.length idx - 1 do
        let col = idx.(k) and v = vl.(k) in
        for i = 0 to m - 1 do
          w.(i) <- w.(i) +. (tab.binv.((i * m) + col) *. v)
        done
      done;
      if abs_float w.(r) < pivot_tol then raise Numerics;
      let bi = tab.basis.(r) in
      let target = if up then tab.ub.(bi) else tab.lb.(bi) in
      let dxq = (tab.x.(bi) -. target) /. w.(r) in
      for i = 0 to m - 1 do
        if w.(i) <> 0. then begin
          let v = tab.basis.(i) in
          tab.x.(v) <- tab.x.(v) -. (w.(i) *. dxq)
        end
      done;
      tab.x.(bi) <- target;
      tab.status.(bi) <- (if up then At_upper else At_lower);
      tab.x.(q) <- tab.x.(q) +. dxq;
      tab.status.(q) <- Basic;
      tab.basis.(r) <- q;
      update_binv tab w r
    end
  done;
  !iters

(* ------------------------------------------------------------------ *)
(* Basis export / import                                               *)

let export_basis tab =
  let n = tab.n_struct and m = tab.m in
  let vstatus = Array.make (n + m) At_lower in
  Array.blit tab.status 0 vstatus 0 (n + m);
  let vbasis = Array.make m 0 in
  for i = 0 to m - 1 do
    let bi = tab.basis.(i) in
    if bi < n + m then vbasis.(i) <- bi
    else begin
      (* A basic artificial sits at zero and spans the same unit column
         as the row's slack; relabel so the export is artificial-free. *)
      vbasis.(i) <- n + i;
      vstatus.(n + i) <- Basic
    end
  done;
  { vstatus; vbasis }

(* Relabel any basic artificial as the row's slack in place, so the
   final refactorization and point extraction see the same basis a
   warm import would rebuild. *)
let drop_artificials tab =
  let n = tab.n_struct and m = tab.m in
  for i = 0 to m - 1 do
    let bi = tab.basis.(i) in
    if bi >= n + m then begin
      let s = n + i in
      tab.basis.(i) <- s;
      tab.status.(s) <- Basic;
      tab.status.(bi) <- At_lower;
      tab.x.(bi) <- 0.
    end
  done

(* Structural reduced costs against the tableau's current costs
   (internal minimization sense); basic variables get 0. *)
let structural_reduced_costs tab =
  compute_multipliers tab;
  Array.init tab.n_struct (fun v ->
      if tab.status.(v) = Basic then 0. else reduced_cost tab v)

(* ------------------------------------------------------------------ *)
(* Cold two-phase path                                                 *)

(* Build the phase-1 tableau: nonbasic structurals at a bound, slacks
   basic where the residual fits, artificials elsewhere. *)
let cold_tableau problem ~lb_over ~ub_over =
  let m, n, col_idx, col_val, b, lb, ub, _constrs =
    build problem ~lb_over ~ub_over
  in
  let max_cols = n + (2 * m) in
  let x = Array.make max_cols 0. in
  let status = Array.make max_cols At_lower in
  for v = 0 to n - 1 do
    let value, st = initial_nonbasic_value lb.(v) ub.(v) in
    x.(v) <- value;
    status.(v) <- st
  done;
  let r = residuals m n col_idx col_val b x in
  let basis = Array.make m 0 in
  let art_sign = Array.make m 1. in
  let n_art = ref 0 in
  for i = 0 to m - 1 do
    let s = n + i in
    if r.(i) >= lb.(s) -. 1e-12 && r.(i) <= ub.(s) +. 1e-12 then begin
      basis.(i) <- s;
      status.(s) <- Basic;
      x.(s) <- r.(i)
    end
    else begin
      let clamped = if r.(i) > ub.(s) then ub.(s) else lb.(s) in
      x.(s) <- clamped;
      status.(s) <- (if clamped = ub.(s) then At_upper else At_lower);
      let a = n + m + !n_art in
      incr n_art;
      let gap = r.(i) -. clamped in
      let sigma = if gap >= 0. then 1. else -1. in
      art_sign.(i) <- sigma;
      col_idx.(a) <- [| i |];
      col_val.(a) <- [| sigma |];
      lb.(a) <- 0.;
      ub.(a) <- infinity;
      x.(a) <- abs_float gap;
      status.(a) <- Basic;
      basis.(i) <- a
    end
  done;
  let ntot = n + m + !n_art in
  let tab =
    {
      m;
      ntot;
      n_struct = n;
      col_idx;
      col_val;
      b;
      c = Array.make ntot 0.;
      lb = Array.sub lb 0 ntot;
      ub = Array.sub ub 0 ntot;
      x = Array.sub x 0 ntot;
      status = Array.sub status 0 ntot;
      basis;
      (* B starts as a signed identity: slack rows carry +1, rows held by a
         negatively-signed artificial carry -1, so B^-1 = B. *)
      binv =
        (let a = Array.make (max 1 (m * m)) 0. in
         for i = 0 to m - 1 do
           a.((i * m) + i) <- art_sign.(i)
         done;
         a);
      y = Array.make m 0.;
      w = Array.make m 0.;
      gamma = Array.make ntot 1.;
    }
  in
  (tab, !n_art)

let set_phase2_costs tab problem =
  let sense, obj = Problem.objective problem in
  let sign = match sense with Problem.Minimize -> 1. | Problem.Maximize -> -1. in
  Array.fill tab.c 0 tab.ntot 0.;
  List.iter (fun (v, coef) -> tab.c.(v) <- sign *. coef) (Expr.to_list obj)

(* Run the two phases on a cold tableau. Leaves phase-2 costs in tab.c.
   @raise Exit on phase-1 infeasibility. *)
let run_two_phases tab ~n_art problem ~max_iters =
  let n = tab.n_struct and m = tab.m and ntot = tab.ntot in
  let iters1 =
    if n_art = 0 then 0
    else begin
      for a = n + m to ntot - 1 do
        tab.c.(a) <- 1.
      done;
      let it = optimize tab ~max_iters in
      refresh_basics tab;
      let infeas = ref 0. in
      for a = n + m to ntot - 1 do
        infeas := !infeas +. tab.x.(a)
      done;
      if !infeas > feas_tol then raise Exit;
      (* Freeze artificials at zero for phase 2. *)
      for a = n + m to ntot - 1 do
        tab.c.(a) <- 0.;
        tab.lb.(a) <- 0.;
        tab.ub.(a) <- 0.;
        if tab.status.(a) <> Basic then begin
          tab.x.(a) <- 0.;
          tab.status.(a) <- At_lower
        end
      done;
      it
    end
  in
  set_phase2_costs tab problem;
  let iters2 = optimize tab ~max_iters in
  refresh_basics tab;
  iters1 + iters2

let record_iterations iterations =
  stats.total_iterations <- stats.total_iterations + iterations;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.Counter.add m_pivots iterations;
    Obs.Metrics.Histogram.observe m_iterations (float_of_int iterations)
  end

let solve ?lb:lb_over ?ub:ub_over problem =
  let tab, n_art = cold_tableau problem ~lb_over ~ub_over in
  stats.solves <- stats.solves + 1;
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_solves;
  let max_iters = max 20_000 (4 * (tab.m + tab.n_struct)) in
  try
    let iterations = run_two_phases tab ~n_art problem ~max_iters in
    let xsol = Array.sub tab.x 0 tab.n_struct in
    let objective = Problem.eval_objective problem xsol in
    record_iterations iterations;
    Optimal { x = xsol; objective; iterations }
  with
  | Exit -> Infeasible
  | Unbounded_exn -> Unbounded
  | Iteration_limit ->
      (* Extremely defensive: treat as numerical failure. *)
      failwith "Simplex.solve: iteration limit exceeded"

(* ------------------------------------------------------------------ *)
(* Warm-capable detailed interface                                     *)

type solved = {
  sol : solution;
  sbasis : basis;
  reduced_costs : float array;
      (* structural, internal minimization sense; 0 for basic vars *)
  warm : bool;  (* true when the dual-simplex warm path answered *)
}

type basis_result = Opt of solved | Infeas | Unbound

(* Extract the final answer: relabel artificials, refactorize so the
   point is a pure function of the final basis, refresh, package. *)
let finish_detailed tab problem ~iterations ~warm =
  drop_artificials tab;
  (try refactorize tab with Numerics -> () (* keep the incremental binv *));
  refresh_basics tab;
  let xsol = Array.sub tab.x 0 tab.n_struct in
  let objective = Problem.eval_objective problem xsol in
  record_iterations iterations;
  Opt
    {
      sol = { x = xsol; objective; iterations };
      sbasis = export_basis tab;
      reduced_costs = structural_reduced_costs tab;
      warm;
    }

let cold_detailed problem ~lb_over ~ub_over =
  let tab, n_art = cold_tableau problem ~lb_over ~ub_over in
  stats.solves <- stats.solves + 1;
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_solves;
  let max_iters = max 20_000 (4 * (tab.m + tab.n_struct)) in
  try
    let iterations = run_two_phases tab ~n_art problem ~max_iters in
    finish_detailed tab problem ~iterations ~warm:false
  with
  | Exit -> Infeas
  | Unbounded_exn -> Unbound
  | Iteration_limit -> failwith "Simplex.solve: iteration limit exceeded"

(* Rebuild a tableau from an exported basis under (possibly tightened)
   bounds: nonbasic variables snap to their status' bound, the basis
   inverse is refactorized from scratch.
   @raise Numerics when the basis does not fit the problem. *)
let import_tableau problem ~lb_over ~ub_over (bas : basis) =
  let m, n, col_idx, col_val, b, lb, ub, _constrs =
    build problem ~lb_over ~ub_over
  in
  if Array.length bas.vstatus <> n + m || Array.length bas.vbasis <> m then
    raise Numerics;
  let ntot = n + m in
  let status = Array.make ntot At_lower in
  Array.blit bas.vstatus 0 status 0 ntot;
  let x = Array.make ntot 0. in
  let n_basic = ref 0 in
  for v = 0 to ntot - 1 do
    match status.(v) with
    | Basic -> incr n_basic
    | At_lower ->
        if lb.(v) = neg_infinity then raise Numerics;
        x.(v) <- lb.(v)
    | At_upper ->
        if ub.(v) = infinity then raise Numerics;
        x.(v) <- ub.(v)
    | Free_nb -> x.(v) <- 0.
  done;
  if !n_basic <> m then raise Numerics;
  let basis = Array.make m 0 in
  for i = 0 to m - 1 do
    let v = bas.vbasis.(i) in
    if v < 0 || v >= ntot || status.(v) <> Basic then raise Numerics;
    basis.(i) <- v
  done;
  let tab =
    {
      m;
      ntot;
      n_struct = n;
      col_idx = Array.sub col_idx 0 ntot;
      col_val = Array.sub col_val 0 ntot;
      b;
      c = Array.make ntot 0.;
      lb = Array.sub lb 0 ntot;
      ub = Array.sub ub 0 ntot;
      x;
      status;
      basis;
      binv = Array.make (max 1 (m * m)) 0.;
      y = Array.make m 0.;
      w = Array.make m 0.;
      gamma = Array.make ntot 1.;
    }
  in
  refactorize tab;
  refresh_basics tab;
  tab

let dual_feasible tab =
  compute_multipliers tab;
  let ok = ref true in
  (* 1e-6: mildly looser than dual_tol so a parent basis within pricing
     tolerance is not bounced to a cold solve. *)
  for q = 0 to tab.ntot - 1 do
    if !ok then
      match tab.status.(q) with
      | Basic -> ()
      | At_lower -> if reduced_cost tab q < -1e-6 then ok := false
      | At_upper -> if reduced_cost tab q > 1e-6 then ok := false
      | Free_nb -> if abs_float (reduced_cost tab q) > 1e-6 then ok := false
  done;
  !ok

let primal_feasible tab =
  let ok = ref true in
  for v = 0 to tab.ntot - 1 do
    if tab.x.(v) < tab.lb.(v) -. feas_tol || tab.x.(v) > tab.ub.(v) +. feas_tol
    then ok := false
  done;
  !ok

let warm_detailed problem ~lb_over ~ub_over bas =
  let tab = import_tableau problem ~lb_over ~ub_over bas in
  stats.solves <- stats.solves + 1;
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_solves;
  set_phase2_costs tab problem;
  let max_iters = max 20_000 (4 * (tab.m + tab.n_struct)) in
  if not (dual_feasible tab) then
    if primal_feasible tab then begin
      (* Primal-feasible import: plain phase 2 from here is still warm. *)
      let iterations = optimize tab ~max_iters in
      refresh_basics tab;
      finish_detailed tab problem ~iterations ~warm:true
    end
    else raise Numerics
  else
    try
      let it_dual = dual_optimize tab ~max_iters in
      (* Dual simplex stops primal-feasible; a short primal cleanup
         absorbs any reduced-cost drift accumulated on the way. *)
      let it_primal = optimize tab ~max_iters in
      refresh_basics tab;
      if not (primal_feasible tab) then raise Numerics;
      finish_detailed tab problem ~iterations:(it_dual + it_primal) ~warm:true
    with
    | Exit -> Infeas (* dual unbounded: the child LP is infeasible *)
    | Unbounded_exn -> Unbound

let solve_detailed ?lb:lb_over ?ub:ub_over ?warm problem =
  match warm with
  | None -> cold_detailed problem ~lb_over ~ub_over
  | Some bas -> (
      match warm_detailed problem ~lb_over ~ub_over bas with
      | r ->
          stats.warm_solves <- stats.warm_solves + 1;
          if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_warm;
          r
      | exception (Numerics | Iteration_limit) ->
          stats.warm_failures <- stats.warm_failures + 1;
          if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_warm_fail;
          cold_detailed problem ~lb_over ~ub_over)
