type solution = { x : float array; objective : float; iterations : int }
type result = Optimal of solution | Infeasible | Unbounded
type stats = { mutable solves : int; mutable total_iterations : int }

let stats = { solves = 0; total_iterations = 0 }

(* Default-off observability hooks (see lib/obs): registered eagerly at
   module init — forcing a lazy cell from several domains is racy. *)
let m_solves =
  Obs.Metrics.counter ~help:"LP relaxations solved" "lp_simplex_solves_total"

let m_pivots =
  Obs.Metrics.counter ~help:"Simplex pivots (phase 1 + phase 2)"
       "lp_simplex_pivots_total"

let m_iterations =
  Obs.Metrics.histogram ~help:"Pivots per solve"
       ~buckets:(Obs.Metrics.Histogram.log_buckets ~lo:1. ~factor:2. ~count:24 ())
       "lp_simplex_iterations_per_solve"

(* Tolerances. *)
let dual_tol = 1e-7  (* reduced-cost optimality threshold *)
let pivot_tol = 1e-9  (* smallest usable pivot magnitude *)
let feas_tol = 1e-7  (* phase-1 residual infeasibility threshold *)

type status = At_lower | At_upper | Basic | Free_nb

(* Computational form: min c.x, A x = b (slack per row), l <= x <= u.
   Columns are sparse; the basis inverse is dense. *)
type tableau = {
  m : int;  (* rows *)
  ntot : int;  (* structural + slack + artificial columns *)
  n_struct : int;
  col_idx : int array array;  (* row indices per column *)
  col_val : float array array;
  b : float array;
  c : float array;  (* current-phase cost *)
  lb : float array;
  ub : float array;
  x : float array;  (* current value of every variable *)
  status : status array;
  basis : int array;  (* row -> basic variable *)
  binv : float array;  (* dense basis inverse, m x m, row-major *)
  y : float array;  (* scratch: simplex multipliers *)
  w : float array;  (* scratch: FTRAN result *)
}

let build problem ~lb_over ~ub_over =
  let n = Problem.n_vars problem in
  let constrs = Problem.constraints problem in
  let m = Array.length constrs in
  let plb, pub = Problem.bounds_arrays problem in
  let lb_s = match lb_over with Some a -> a | None -> plb in
  let ub_s = match ub_over with Some a -> a | None -> pub in
  if Array.length lb_s <> n || Array.length ub_s <> n then
    invalid_arg "Simplex.solve: override bounds have wrong length";
  Array.iteri
    (fun v l -> if l > ub_s.(v) then invalid_arg "Simplex.solve: lb > ub")
    lb_s;
  (* Columns: structural 0..n-1, slack n..n+m-1, artificials appended. *)
  let max_cols = n + (2 * m) in
  let col_idx = Array.make max_cols [||] in
  let col_val = Array.make max_cols [||] in
  let rows_of_var = Array.make n [] in
  let b = Array.make m 0. in
  (* Row equilibration: divide every row by its largest coefficient so that
     rows mixing unit-scale and bandwidth-scale terms keep meaningful
     tolerances. Pure row scaling leaves the solution unchanged. *)
  let row_scale = Array.make m 1. in
  Array.iteri
    (fun i { Problem.expr; _ } ->
      let biggest =
        List.fold_left
          (fun acc (_, coef) -> Float.max acc (abs_float coef))
          0. (Expr.to_list expr)
      in
      if biggest > 0. then row_scale.(i) <- biggest)
    constrs;
  Array.iteri
    (fun i { Problem.expr; rhs; _ } ->
      b.(i) <- rhs /. row_scale.(i);
      List.iter
        (fun (v, coef) ->
          rows_of_var.(v) <- (i, coef /. row_scale.(i)) :: rows_of_var.(v))
        (Expr.to_list expr))
    constrs;
  for v = 0 to n - 1 do
    let entries = List.rev rows_of_var.(v) in
    col_idx.(v) <- Array.of_list (List.map fst entries);
    col_val.(v) <- Array.of_list (List.map snd entries)
  done;
  let lb = Array.make max_cols 0. and ub = Array.make max_cols infinity in
  Array.blit lb_s 0 lb 0 n;
  Array.blit ub_s 0 ub 0 n;
  (* One slack per row; its bounds encode the relation. *)
  for i = 0 to m - 1 do
    let s = n + i in
    col_idx.(s) <- [| i |];
    col_val.(s) <- [| 1. |];
    (match constrs.(i).Problem.rel with
    | Problem.Le ->
        lb.(s) <- 0.;
        ub.(s) <- infinity
    | Problem.Ge ->
        lb.(s) <- neg_infinity;
        ub.(s) <- 0.
    | Problem.Eq ->
        lb.(s) <- 0.;
        ub.(s) <- 0.)
  done;
  (m, n, col_idx, col_val, b, lb, ub, constrs)

(* Set every non-slack, non-artificial variable to its initial nonbasic
   value: the finite bound nearest zero, or 0 for free variables. *)
let initial_nonbasic_value lb ub =
  if lb = neg_infinity && ub = infinity then (0., Free_nb)
  else if lb = neg_infinity then (ub, At_upper)
  else if ub = infinity then (lb, At_lower)
  else if abs_float lb <= abs_float ub then (lb, At_lower)
  else (ub, At_upper)

(* Residual of row i given nonbasic values: b_i - sum_j a_ij x_j over
   structural columns. *)
let residuals m n col_idx col_val b x =
  let r = Array.copy b in
  for v = 0 to n - 1 do
    if x.(v) <> 0. then begin
      let idx = col_idx.(v) and vl = col_val.(v) in
      for k = 0 to Array.length idx - 1 do
        r.(idx.(k)) <- r.(idx.(k)) -. (vl.(k) *. x.(v))
      done
    end
  done;
  ignore m;
  r

exception Unbounded_exn
exception Iteration_limit

(* Recompute basic values from scratch: x_B = B^-1 (b - N x_N). *)
let refresh_basics tab =
  let m = tab.m in
  let r = Array.copy tab.b in
  for v = 0 to tab.ntot - 1 do
    if tab.status.(v) <> Basic && tab.x.(v) <> 0. then begin
      let idx = tab.col_idx.(v) and vl = tab.col_val.(v) in
      for k = 0 to Array.length idx - 1 do
        r.(idx.(k)) <- r.(idx.(k)) -. (vl.(k) *. tab.x.(v))
      done
    end
  done;
  for i = 0 to m - 1 do
    let acc = ref 0. in
    let base = i * m in
    for j = 0 to m - 1 do
      acc := !acc +. (tab.binv.(base + j) *. r.(j))
    done;
    tab.x.(tab.basis.(i)) <- !acc
  done

(* One simplex phase: optimize tab.c from the current basis. *)
let optimize tab ~max_iters =
  let m = tab.m and ntot = tab.ntot in
  let iters = ref 0 in
  let degenerate_run = ref 0 in
  let use_bland () = !degenerate_run > 200 + m in
  let continue_ = ref true in
  while !continue_ do
    if !iters >= max_iters then raise Iteration_limit;
    incr iters;
    if !iters land 1023 = 0 then refresh_basics tab;
    (* BTRAN: y = c_B B^-1. *)
    let y = tab.y in
    Array.fill y 0 m 0.;
    for i = 0 to m - 1 do
      let cb = tab.c.(tab.basis.(i)) in
      if cb <> 0. then begin
        let base = i * m in
        for j = 0 to m - 1 do
          y.(j) <- y.(j) +. (cb *. tab.binv.(base + j))
        done
      end
    done;
    (* Pricing: find entering column. *)
    let best = ref (-1) and best_score = ref dual_tol and best_dir = ref 1. in
    let bland = use_bland () in
    (try
       for q = 0 to ntot - 1 do
         match tab.status.(q) with
         | Basic -> ()
         | st ->
             let idx = tab.col_idx.(q) and vl = tab.col_val.(q) in
             let d = ref tab.c.(q) in
             for k = 0 to Array.length idx - 1 do
               d := !d -. (y.(idx.(k)) *. vl.(k))
             done;
             let improving, dir =
               match st with
               | At_lower -> (!d < -.dual_tol, 1.)
               | At_upper -> (!d > dual_tol, -1.)
               | Free_nb ->
                   if !d < -.dual_tol then (true, 1.)
                   else if !d > dual_tol then (true, -1.)
                   else (false, 1.)
               | Basic -> (false, 1.)
             in
             if improving then
               if bland then begin
                 best := q;
                 best_dir := dir;
                 raise Exit
               end
               else if abs_float !d > !best_score then begin
                 best := q;
                 best_score := abs_float !d;
                 best_dir := dir
               end
       done
     with Exit -> ());
    if !best < 0 then continue_ := false
    else begin
      let q = !best and dir = !best_dir in
      (* FTRAN: w = B^-1 A_q. *)
      let w = tab.w in
      Array.fill w 0 m 0.;
      let idx = tab.col_idx.(q) and vl = tab.col_val.(q) in
      for k = 0 to Array.length idx - 1 do
        let col = idx.(k) and v = vl.(k) in
        for i = 0 to m - 1 do
          w.(i) <- w.(i) +. (tab.binv.((i * m) + col) *. v)
        done
      done;
      (* Ratio test: entering moves by t >= 0 in direction [dir]; basic i
         moves by delta_i * t with delta_i = -dir * w_i. *)
      let t_bound =
        if tab.lb.(q) > neg_infinity && tab.ub.(q) < infinity then
          tab.ub.(q) -. tab.lb.(q)
        else infinity
      in
      let t_min = ref t_bound and leave = ref (-1) and leave_to_upper = ref false in
      for i = 0 to m - 1 do
        let delta = -.dir *. w.(i) in
        if abs_float delta > pivot_tol then begin
          let bi = tab.basis.(i) in
          let xi = tab.x.(bi) in
          let t =
            if delta > 0. then
              if tab.ub.(bi) < infinity then (tab.ub.(bi) -. xi) /. delta
              else infinity
            else if tab.lb.(bi) > neg_infinity then (tab.lb.(bi) -. xi) /. delta
            else infinity
          in
          let t = Float.max 0. t in
          (* Prefer strictly smaller ratios; among (near-)ties keep the
             larger pivot for stability. *)
          if
            t < !t_min -. 1e-12
            || (t <= !t_min +. 1e-12
               && !leave >= 0
               && abs_float delta
                  > abs_float (-.dir *. w.(!leave)))
          then begin
            t_min := t;
            leave := i;
            leave_to_upper := delta > 0.
          end
        end
      done;
      if !t_min = infinity then raise Unbounded_exn;
      let t = !t_min in
      if t <= 1e-12 then incr degenerate_run else degenerate_run := 0;
      (* Apply the step to all basic variables. *)
      for i = 0 to m - 1 do
        let delta = -.dir *. w.(i) in
        if delta <> 0. then begin
          let bi = tab.basis.(i) in
          tab.x.(bi) <- tab.x.(bi) +. (delta *. t)
        end
      done;
      if !leave < 0 then begin
        (* Bound flip: entering jumps to its other bound; basis unchanged. *)
        tab.x.(q) <- (if dir > 0. then tab.ub.(q) else tab.lb.(q));
        tab.status.(q) <- (if dir > 0. then At_upper else At_lower)
      end
      else begin
        let r = !leave in
        let lv = tab.basis.(r) in
        (* Leaving variable settles on the bound it reached. *)
        if !leave_to_upper then begin
          tab.x.(lv) <- tab.ub.(lv);
          tab.status.(lv) <- At_upper
        end
        else begin
          tab.x.(lv) <- tab.lb.(lv);
          tab.status.(lv) <- At_lower
        end;
        tab.x.(q) <- tab.x.(q) +. (dir *. t);
        tab.status.(q) <- Basic;
        tab.basis.(r) <- q;
        (* Rank-1 update of the dense basis inverse. *)
        let wr = w.(r) in
        let binv = tab.binv in
        let rbase = r * m in
        let inv_wr = 1. /. wr in
        for j = 0 to m - 1 do
          binv.(rbase + j) <- binv.(rbase + j) *. inv_wr
        done;
        for i = 0 to m - 1 do
          let wi = w.(i) in
          if i <> r && wi <> 0. then begin
            let ibase = i * m in
            for j = 0 to m - 1 do
              let p = binv.(rbase + j) in
              if p <> 0. then binv.(ibase + j) <- binv.(ibase + j) -. (wi *. p)
            done
          end
        done
      end
    end
  done;
  !iters

let solve ?lb:lb_over ?ub:ub_over problem =
  let m, n, col_idx, col_val, b, lb, ub, _constrs =
    build problem ~lb_over ~ub_over
  in
  (* Initial point: nonbasic structurals at a bound, slacks basic. *)
  let max_cols = n + (2 * m) in
  let x = Array.make max_cols 0. in
  let status = Array.make max_cols At_lower in
  for v = 0 to n - 1 do
    let value, st = initial_nonbasic_value lb.(v) ub.(v) in
    x.(v) <- value;
    status.(v) <- st
  done;
  let r = residuals m n col_idx col_val b x in
  let basis = Array.make m 0 in
  let art_sign = Array.make m 1. in
  let n_art = ref 0 in
  (* Row i gets its slack as basic variable when the residual fits the
     slack bounds; otherwise the slack is pinned to its nearest bound and
     an artificial column takes the row. *)
  for i = 0 to m - 1 do
    let s = n + i in
    if r.(i) >= lb.(s) -. 1e-12 && r.(i) <= ub.(s) +. 1e-12 then begin
      basis.(i) <- s;
      status.(s) <- Basic;
      x.(s) <- r.(i)
    end
    else begin
      let clamped = if r.(i) > ub.(s) then ub.(s) else lb.(s) in
      x.(s) <- clamped;
      status.(s) <- (if clamped = ub.(s) then At_upper else At_lower);
      let a = n + m + !n_art in
      incr n_art;
      let gap = r.(i) -. clamped in
      let sigma = if gap >= 0. then 1. else -1. in
      art_sign.(i) <- sigma;
      col_idx.(a) <- [| i |];
      col_val.(a) <- [| sigma |];
      lb.(a) <- 0.;
      ub.(a) <- infinity;
      x.(a) <- abs_float gap;
      status.(a) <- Basic;
      basis.(i) <- a
    end
  done;
  let ntot = n + m + !n_art in
  let c = Array.make ntot 0. in
  let tab =
    {
      m;
      ntot;
      n_struct = n;
      col_idx;
      col_val;
      b;
      c;
      lb = Array.sub lb 0 ntot;
      ub = Array.sub ub 0 ntot;
      x = Array.sub x 0 ntot;
      status = Array.sub status 0 ntot;
      basis;
      (* B starts as a signed identity: slack rows carry +1, rows held by a
         negatively-signed artificial carry -1, so B^-1 = B. *)
      binv =
        (let a = Array.make (max 1 (m * m)) 0. in
         for i = 0 to m - 1 do
           a.((i * m) + i) <- art_sign.(i)
         done;
         a);
      y = Array.make m 0.;
      w = Array.make m 0.;
    }
  in
  stats.solves <- stats.solves + 1;
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_solves;
  let max_iters = max 20_000 (4 * (m + n)) in
  let run_phase () = optimize tab ~max_iters in
  try
    (* Phase 1: drive artificial variables to zero. *)
    let iters1 =
      if !n_art = 0 then 0
      else begin
        for a = n + m to ntot - 1 do
          tab.c.(a) <- 1.
        done;
        let it = run_phase () in
        refresh_basics tab;
        let infeas = ref 0. in
        for a = n + m to ntot - 1 do
          infeas := !infeas +. tab.x.(a)
        done;
        if !infeas > feas_tol then raise Exit;
        (* Freeze artificials at zero for phase 2. *)
        for a = n + m to ntot - 1 do
          tab.c.(a) <- 0.;
          tab.lb.(a) <- 0.;
          tab.ub.(a) <- 0.;
          if tab.status.(a) <> Basic then begin
            tab.x.(a) <- 0.;
            tab.status.(a) <- At_lower
          end
        done;
        it
      end
    in
    (* Phase 2: the real objective (internally always minimized). *)
    let sense, obj = Problem.objective problem in
    let sign = match sense with Problem.Minimize -> 1. | Problem.Maximize -> -1. in
    Array.fill tab.c 0 ntot 0.;
    List.iter (fun (v, coef) -> tab.c.(v) <- sign *. coef) (Expr.to_list obj);
    for a = n + m to ntot - 1 do
      tab.c.(a) <- 0.
    done;
    let iters2 = run_phase () in
    refresh_basics tab;
    let xsol = Array.sub tab.x 0 n in
    let objective = Problem.eval_objective problem xsol in
    let iterations = iters1 + iters2 in
    stats.total_iterations <- stats.total_iterations + iterations;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.Counter.add m_pivots iterations;
      Obs.Metrics.Histogram.observe m_iterations
        (float_of_int iterations)
    end;
    Optimal { x = xsol; objective; iterations }
  with
  | Exit -> Infeasible
  | Unbounded_exn -> Unbounded
  | Iteration_limit ->
      (* Extremely defensive: treat as numerical failure. *)
      failwith "Simplex.solve: iteration limit exceeded"
