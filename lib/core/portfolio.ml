module G = Streaming.Graph
module P = Cell.Platform

type candidate = {
  name : string;
  mapping : Mapping.t;
  period : float;
  feasible : bool;
}

type result = {
  best : Mapping.t;
  period : float;
  lower_bound : float;
  candidates : candidate list;
}

let default_restarts = 6
let default_seed = 0x5EED

let m_candidates =
  Obs.Metrics.counter ~help:"Portfolio strategies and restarts evaluated"
    "portfolio_candidates_total"

(* One entrant: produce a mapping, score it canonically, and offer it
   to the shared incumbent. Every entrant builds its own Eval states
   (inside the heuristics and the local search), so entrants share
   nothing but the incumbent cell; [Eval.scratch_period] makes the
   period a canonical recomputation, bitwise independent of which
   worker ran the entrant. *)
let run_entrant ~eval_options ~max_passes ~inc platform g (name, make_start) =
  let start = make_start () in
  let mapping =
    if Steady_state.feasible platform g start then
      Heuristics.local_search ~options:eval_options ~max_passes platform g
        start
    else start
  in
  let feasible = Eval.scratch_feasible ~options:eval_options platform g mapping in
  let period =
    if feasible then Eval.scratch_period ~options:eval_options platform g mapping
    else infinity
  in
  if feasible then
    ignore (Incumbent.offer inc ~period (Mapping.to_array mapping));
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_candidates;
  { name; mapping; period; feasible }

let solve ?(span = Obs.Span.null) ?pool ?(should_stop = fun () -> false)
    ?(restarts = default_restarts) ?(seed = default_seed) ?(max_passes = 50)
    ?(share_colocated_buffers = false) platform g =
  Obs.Span.with_span span "portfolio" @@ fun span ->
  let eval_options =
    Eval.make_options ~share_colocated_buffers ()
  in
  let entrants =
    Array.of_list
      ([
         (* The safety net: always feasible, never worth local search. *)
         ("ppe-only", fun () -> Heuristics.ppe_only platform g);
         ("greedy-mem", fun () -> Heuristics.greedy_mem platform g);
         ("greedy-cpu", fun () -> Heuristics.greedy_cpu platform g);
       ]
      @ List.init restarts (fun i ->
            ( Printf.sprintf "restart-%d" i,
              fun () ->
                (* Independent stream per restart: the draw sequence of
                   entrant i never depends on how many others ran. *)
                let rng = Support.Rng.create (seed + (1000003 * i)) in
                Heuristics.random_feasible ~rng platform g )))
  in
  let inc = Incumbent.create () in
  let run_one = run_entrant ~eval_options ~max_passes ~inc platform g in
  (* Cancellation skips entrants wholesale — except the ppe-only safety
     net, which is cheap and guarantees a feasible result even when the
     deadline has already passed at dispatch. Skipped entrants are
     dropped from the candidate report. *)
  (* Entrant spans carry content-derived ids (the entrant name is the
     path component), so the merged stream is identical whichever
     worker ran each entrant. *)
  let run ((name, _) as entrant) =
    if name <> "ppe-only" && should_stop () then None
    else
      Some
        (Obs.Span.with_span_attrs span ("entrant:" ^ name) (fun _ ->
             let c = run_one entrant in
             ( c,
               [
                 ("period", Obs.Span.Float c.period);
                 ("feasible", Obs.Span.Bool c.feasible);
               ] )))
  in
  let candidates =
    match pool with
    | Some p when Array.length entrants > 1 -> Par.Pool.parallel_map p run entrants
    | _ -> Array.map run entrants
  in
  let e =
    match Incumbent.best inc with
    | Some e -> e
    | None -> (* ppe-only is always offered *) assert false
  in
  {
    best = Mapping.make platform g e.Incumbent.arr;
    period = e.Incumbent.period;
    lower_bound = Bounds.root_bound (Bounds.create platform g);
    candidates = List.filter_map Fun.id (Array.to_list candidates);
  }
