(** Combinatorial branch-and-bound over task-to-PE assignments.

    The generic MILP solver ({!Lp.Branch_bound}) is exact but re-solves a
    large LP at every node, which does not scale to the paper's 50–94-task
    graphs. This module exploits the structure of the mapping problem the
    way a commercial solver exploits the model: tasks are assigned one by
    one in topological order, identical SPEs are explored up to symmetry
    (candidate PEs are the PPEs, the SPEs already in use, and a single
    fresh SPE), infeasible placements (local store, DMA queues) are pruned
    immediately, and each node is bounded below by

    - the occupation of the resources already committed, and
    - the closed-form {!Bounds} relaxations of the remaining work — the
      O(1) per-task bound and the O(PEs) pool-form interface-bandwidth
      check — followed by a divisible-load relaxation: remaining tasks
      may be split fractionally between the PPE pool and the SPE pool
      (a valid relaxation of constraints (1e)/(1f)), evaluated greedily by
      [w_spe/w_ppe] ratio inside a bisection on the period.

    Like the paper's use of CPLEX, the search can stop once the incumbent
    is proven within [rel_gap] of optimal; when {!Bounds.root_bound}
    already proves the ({!Portfolio}-seeded) incumbent within gap, no
    node is ever explored.

    Tasks are assigned {e hardest first} (descending local-store
    footprint, then work), so the divisible knapsacks go infeasible near
    the root where a prune cuts an exponential subtree. The search runs
    in two phases: a {e dive} — always sequential, under the fixed
    [dive_nodes] budget, hence a pure function of the instance whatever
    the pool size — whose incumbent re-derives the deterministic gap
    threshold; then, only if the tightened threshold still exceeds the
    root bound, a full phase at that threshold over the pool. When the
    dive lands within [rel_gap] of the root bound (the common case on
    the paper's 50-task instances) the second phase prunes entirely at
    the root and the result is proven within gap after a few tens of
    thousands of nodes.

    The tree is explored as {e node-budgeted subtree tasks}: each task
    searches one open prefix depth-first and, when its budget runs out,
    hands every still-open branch back as a fresh task — so no work is
    ever abandoned by the budget, and {!Par.Pool.parallel_grow}
    work-steals the tasks across domains however lopsided the tree is
    (the sequential path drains the same tasks off an explicit LIFO
    stack). Incumbents live in an {!Incumbent.t} — a strict total order
    (period, fingerprint, assignment) folded by retry-CAS — and pruning
    distinguishes a {e deterministic} gap rule (fixed threshold derived
    from the initial incumbent) from a {e result-safe} sharing rule
    (strictly-worse-than-live-best only), so the returned mapping,
    period and bounds are identical whether the subtree tasks run
    sequentially or on any number of domains. Node, prune, incumbent
    and subtree {e counters} do depend on timing in parallel runs, as
    does early stopping via [max_nodes]/[time_limit]. *)

type options = {
  rel_gap : float;  (** Relative optimality gap (paper: 0.05). *)
  max_nodes : int;
  dive_nodes : int;
      (** Node budget of the sequential dive phase (see below). *)
  time_limit : float;  (** Seconds. *)
  share_colocated_buffers : bool;
      (** Model the §7 colocated-buffer sharing in the memory accounting
          (both placement checks and bounds). *)
}

val default_options : options
(** [rel_gap = 0.05], [max_nodes = 10_000_000], [dive_nodes = 32_768],
    [time_limit = 30.], [share_colocated_buffers = false]. *)

type result = {
  mapping : Mapping.t;  (** Best feasible mapping found. *)
  period : float;  (** Its period. *)
  lower_bound : float;  (** Proven lower bound on the optimal period. *)
  gap : float;  (** [(period - lower_bound) / period]. *)
  nodes : int;
  optimal_within_gap : bool;
      (** True when the tree was exhausted (incumbent proven within
          [rel_gap]), false when a node/time limit stopped the search. *)
}

val solve :
  ?span:Obs.Span.ctx ->
  ?options:options ->
  ?should_stop:(unit -> bool) ->
  ?incumbent:Mapping.t ->
  ?extra_lower_bound:float ->
  ?pool:Par.Pool.t ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  result
(** [incumbent] seeds the search (it must be feasible; default: the best
    standard heuristic). [extra_lower_bound] is a known valid lower bound
    on the period (e.g. the root LP relaxation) used to tighten the
    reported gap. [pool] fans the root subtrees out over worker domains;
    the result is bitwise identical to the sequential run (see above).

    [span] (default {!Obs.Span.null}: free) records the solver flight
    recorder: the portfolio seed's spans, a ["dive"] span (phase A)
    and a ["fanout"] span (phase B), each with one ["subtree:<hash>"]
    child per budgeted subtree task annotated with its local
    nodes/pruned/incumbents/spilled counters. The phase-B task {e set}
    is timing-dependent (budgets run out at different points), so
    subtree spans — like the node counters — vary between runs even
    though the returned mapping never does.

    [should_stop] is polled periodically during the search (default:
    never): once it returns [true] the search stops like a node budget
    running out and returns the best incumbent found so far — never
    nothing, since the search is seeded with a feasible mapping before
    the first node. Cancelled results are timing-dependent and therefore
    outside the bitwise-determinism contract; callers must treat them as
    {e partial} (the daemon tags such replies explicitly). *)
