(* Combinatorial lower bounds on the achievable period, distilled from
   the paper's §5 MILP constraints: per-interface bandwidth (1c/1d) and
   unrelated-machine load (1b) admit closed-form relaxations that cost
   O(n) once and O(n_pes) per search node — cheap enough to run before
   any LP solve or divisible-load bisection. *)

module G = Streaming.Graph
module P = Cell.Platform

type t = {
  n_pes : int;
  n_ppes : int;
  bw : float;  (* per-interface bandwidth, bytes/s each direction *)
  min_w : float array;
      (* per task: cheapest effective compute cost over its admissible
         PEs (SPE-ineligible tasks only have their PPE cost) *)
  reads : float array;  (* per task: input-interface bytes per period *)
  writes : float array;
  forced_wppe : float array;
      (* effective PPE cost for tasks whose buffers exceed the SPE local
         store (they can only live on a PPE); 0 for eligible tasks *)
  root : float;  (* best static lower bound on the period *)
}

let create platform g =
  let nk = G.n_tasks g in
  let fp = Steady_state.first_periods g in
  let buff = Steady_state.buffer_sizes ~first_periods:fp g in
  let budget = float_of_int (P.spe_memory_budget platform) in
  let n_pes = P.n_pes platform in
  let n_ppes = platform.P.n_ppe in
  let bw = platform.P.bw in
  let min_w = Array.make nk 0. in
  let reads = Array.make nk 0. in
  let writes = Array.make nk 0. in
  let forced_wppe = Array.make nk 0. in
  let per_task = ref 0. in
  for k = 0 to nk - 1 do
    let task = G.task g k in
    let w_ppe = task.Streaming.Task.w_ppe /. platform.P.ppe_speedup in
    let w_spe = task.Streaming.Task.w_spe in
    (* One copy of each incident buffer must fit the local store for the
       task to be SPE-eligible at all — true with or without colocated
       buffer sharing. *)
    let sum = List.fold_left (fun acc e -> acc +. buff.(e)) 0. in
    let eligible =
      sum (G.out_edges g k) +. sum (G.in_edges g k) <= budget +. 1e-9
    in
    min_w.(k) <- (if eligible then Float.min w_ppe w_spe else w_ppe);
    if not eligible then forced_wppe.(k) <- w_ppe;
    reads.(k) <- task.Streaming.Task.read_bytes;
    writes.(k) <- task.Streaming.Task.write_bytes;
    (* Whatever PE hosts task k spends at least min_w compute seconds and
       moves the task's own reads and writes through its interface. *)
    per_task :=
      Float.max !per_task
        (Float.max min_w.(k) (Float.max reads.(k) writes.(k) /. bw))
  done;
  let sum a = Array.fold_left ( +. ) 0. a in
  (* Unrelated-machine load bound: even split across every PE, each task
     at its cheapest cost; plus the PPE-only pool of ineligible tasks. *)
  let avg_compute = sum min_w /. float_of_int n_pes in
  let forced_ppe = sum forced_wppe /. float_of_int n_ppes in
  (* Interface bound: a task's own reads (writes) cross its host PE's
     input (output) interface no matter where it lives; cross-PE edge
     traffic only adds to this. *)
  let avg_in = sum reads /. (float_of_int n_pes *. bw) in
  let avg_out = sum writes /. (float_of_int n_pes *. bw) in
  let root =
    List.fold_left Float.max 0.
      [ !per_task; avg_compute; forced_ppe; avg_in; avg_out ]
  in
  { n_pes; n_ppes; bw; min_w; reads; writes; forced_wppe; root }

let root_bound t = t.root

let task_lb t k =
  Float.max t.min_w.(k) (Float.max t.reads.(k) t.writes.(k) /. t.bw)
