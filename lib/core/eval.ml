module G = Streaming.Graph
module P = Cell.Platform

type options = { share_colocated_buffers : bool; tight_pipeline : bool }

let default_options = { share_colocated_buffers = false; tight_pipeline = false }

let make_options ?(share_colocated_buffers = false) ?(tight_pipeline = false) ()
    =
  { share_colocated_buffers; tight_pipeline }

(* Default-off observability hooks. Counters only — the instrumentation
   never touches the float state, so metrics-on runs stay bitwise equal
   to metrics-off runs (property-tested in test_obs). *)
let m_probes =
  Obs.Metrics.counter ~help:"Eval probe_move/probe_swap evaluations"
       "search_eval_probes_total"

let m_moves =
  Obs.Metrics.counter ~help:"Journaled apply_move mutations"
       "search_eval_moves_total"

let m_swaps =
  Obs.Metrics.counter ~help:"Journaled apply_swap mutations"
       "search_eval_swaps_total"

let m_row_recomputes =
  Obs.Metrics.counter ~help:"Dirty per-PE resource rows recomputed"
       "search_eval_dirty_rows_total"

let m_sweeps =
  Obs.Metrics.counter ~help:"Batched dirty-row recomputation sweeps"
       "search_eval_row_sweeps_total"

(* Journal entries for [apply_move]/[apply_swap]: the data needed to
   reverse the mutation. *)
type op = Move of int * int  (* task, previous PE *) | Swap of int * int

type t = {
  platform : P.t;
  g : G.t;
  opts : options;
  assignment : int array;  (* -1 = unassigned *)
  mutable n_assigned : int;
  (* Cached resource rows. Float rows are recomputed lazily, per PE, by
     accumulating exactly the contributions [Steady_state.loads] would,
     in the same order: that recomputation — never an incremental
     add/subtract, which drifts — is what makes every accessor bitwise
     equal to a from-scratch evaluation. *)
  compute : float array;
  bytes_in : float array;
  bytes_out : float array;
  memory : float array;
  row_dirty : bool array;  (* the four float rows of a PE, together *)
  dma_in : int array;  (* integer counters: maintained incrementally *)
  dma_to_ppe : int array;
  link_out : float array;  (* per Cell; recomputed wholesale when dirty *)
  link_in : float array;
  mutable links_dirty : bool;
  buff : float array;  (* per-edge buffer bytes *)
  mutable buff_dirty : bool;  (* only under [tight_pipeline] *)
  mutable journal : op list;
  (* Preallocated scratch for the probe fast path: a probe saves the
     validated float state, mutates, evaluates, reverses the integer
     state and blits the floats back — a bitwise restoration with no
     recomputation on the undo side. *)
  save_compute : float array;
  save_bytes_in : float array;
  save_bytes_out : float array;
  save_memory : float array;
  save_link_out : float array;
  save_link_in : float array;
  save_buff : float array;
}

let options t = t.opts
let platform t = t.platform
let graph t = t.g
let pe_of t k = t.assignment.(k)
let n_assigned t = t.n_assigned
let undo_depth t = List.length t.journal

(* --- buffer sizes --------------------------------------------------- *)

(* Under [tight_pipeline] the first periods — hence the buffer sizes —
   depend on which edges are colocated. For partial assignments an edge
   counts as colocated when both endpoints are assigned to the same PE,
   which coincides with [Steady_state.first_periods ~mapping] once the
   assignment is complete. Integer arithmetic throughout: exact. *)
let recompute_buffers t =
  let g = t.g in
  let fp = Array.make (G.n_tasks g) 0 in
  let colocated e =
    let { G.src; dst; _ } = G.edge g e in
    let sp = t.assignment.(src) in
    sp >= 0 && sp = t.assignment.(dst)
  in
  let compute k =
    match G.in_edges g k with
    | [] -> fp.(k) <- 0
    | ins ->
        let peek = (G.task g k).Streaming.Task.peek in
        let over_pred acc e =
          let j = (G.edge g e).G.src in
          let comm = if colocated e then 0 else 1 in
          max acc (fp.(j) + 1 + comm + peek)
        in
        fp.(k) <- List.fold_left over_pred 0 ins
  in
  Array.iter compute (G.topological_order g);
  for e = 0 to G.n_edges g - 1 do
    let { G.src; dst; data_bytes } = G.edge g e in
    t.buff.(e) <- data_bytes *. float_of_int (fp.(dst) - fp.(src))
  done

let flush_buffers t =
  if t.buff_dirty then begin
    recompute_buffers t;
    Array.fill t.row_dirty 0 (Array.length t.row_dirty) true;
    t.buff_dirty <- false
  end

(* --- canonical row recomputation ------------------------------------ *)

(* Rebuild every dirty PE's four float rows in one batched pass with the
   loop structure of [Steady_state.loads] restricted to the dirty rows:
   all per-task terms in increasing task id, then all per-edge terms in
   increasing edge id (source copy before destination copy within an
   edge). Canonical order — hence bitwise equality with a from-scratch
   evaluation — holds by construction, and a probe touching several rows
   pays one O(tasks + edges) sweep, not one per row. *)
let recompute_dirty_rows t =
  let g = t.g and p = t.platform in
  let n = P.n_pes p in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.Counter.inc m_sweeps;
    let dirty = ref 0 in
    for pe = 0 to n - 1 do
      if t.row_dirty.(pe) then incr dirty
    done;
    Obs.Metrics.Counter.add m_row_recomputes !dirty
  end;
  for pe = 0 to n - 1 do
    if t.row_dirty.(pe) then begin
      t.compute.(pe) <- 0.;
      t.bytes_in.(pe) <- 0.;
      t.bytes_out.(pe) <- 0.;
      t.memory.(pe) <- 0.
    end
  done;
  for k = 0 to G.n_tasks g - 1 do
    let pe = t.assignment.(k) in
    if pe >= 0 && t.row_dirty.(pe) then begin
      let task = G.task g k in
      let w = Streaming.Task.w task (P.pe_class p pe) in
      let w = if P.is_ppe p pe then w /. p.P.ppe_speedup else w in
      t.compute.(pe) <- t.compute.(pe) +. w;
      t.bytes_in.(pe) <- t.bytes_in.(pe) +. task.Streaming.Task.read_bytes;
      t.bytes_out.(pe) <- t.bytes_out.(pe) +. task.Streaming.Task.write_bytes
    end
  done;
  for e = 0 to G.n_edges g - 1 do
    let edge = G.edge g e in
    let sp = t.assignment.(edge.G.src) and dp = t.assignment.(edge.G.dst) in
    let active = sp >= 0 && dp >= 0 in
    if active && sp <> dp then begin
      if t.row_dirty.(sp) then
        t.bytes_out.(sp) <- t.bytes_out.(sp) +. edge.G.data_bytes;
      if t.row_dirty.(dp) then
        t.bytes_in.(dp) <- t.bytes_in.(dp) +. edge.G.data_bytes
    end;
    (* Memory: each assigned endpoint holds its buffer copy — also for
       half-assigned edges — except one copy total when colocated under
       buffer sharing. *)
    if active && sp = dp && t.opts.share_colocated_buffers then begin
      if t.row_dirty.(sp) then t.memory.(sp) <- t.memory.(sp) +. t.buff.(e)
    end
    else begin
      if sp >= 0 && t.row_dirty.(sp) then
        t.memory.(sp) <- t.memory.(sp) +. t.buff.(e);
      if dp >= 0 && t.row_dirty.(dp) then
        t.memory.(dp) <- t.memory.(dp) +. t.buff.(e)
    end
  done;
  Array.fill t.row_dirty 0 n false

let recompute_links t =
  Array.fill t.link_out 0 (Array.length t.link_out) 0.;
  Array.fill t.link_in 0 (Array.length t.link_in) 0.;
  let p = t.platform in
  for e = 0 to G.n_edges t.g - 1 do
    let edge = G.edge t.g e in
    let sp = t.assignment.(edge.G.src) and dp = t.assignment.(edge.G.dst) in
    if sp >= 0 && dp >= 0 && sp <> dp then begin
      let sc = P.cell_of p sp and dc = P.cell_of p dp in
      if sc <> dc then begin
        t.link_out.(sc) <- t.link_out.(sc) +. edge.G.data_bytes;
        t.link_in.(dc) <- t.link_in.(dc) +. edge.G.data_bytes
      end
    end
  done;
  t.links_dirty <- false

let any_row_dirty t =
  let n = Array.length t.row_dirty in
  let rec scan i = i < n && (t.row_dirty.(i) || scan (i + 1)) in
  scan 0

let validate_rows t =
  flush_buffers t;
  if any_row_dirty t then recompute_dirty_rows t

let validate_all t =
  validate_rows t;
  if t.links_dirty then recompute_links t

(* --- mutation primitives -------------------------------------------- *)

let dirt t pe = t.row_dirty.(pe) <- true

let cross_cell t a b = P.cell_of t.platform a <> P.cell_of t.platform b

(* Remove task [k]'s contributions (it must be assigned). Only the rows
   of [k]'s PE and of its assigned neighbours' PEs can change; integer
   DMA counters are adjusted in place. *)
let detach t k =
  let pe = t.assignment.(k) in
  let handle_in e =
    let edge = G.edge t.g e in
    let sp = t.assignment.(edge.G.src) in
    if sp >= 0 then
      if sp <> pe then begin
        t.dma_in.(pe) <- t.dma_in.(pe) - 1;
        if P.is_spe t.platform sp && P.is_ppe t.platform pe then
          t.dma_to_ppe.(sp) <- t.dma_to_ppe.(sp) - 1;
        dirt t sp;
        if cross_cell t sp pe then t.links_dirty <- true
      end
      else if t.opts.tight_pipeline then t.buff_dirty <- true
  in
  let handle_out e =
    let edge = G.edge t.g e in
    let dp = t.assignment.(edge.G.dst) in
    if dp >= 0 then
      if dp <> pe then begin
        t.dma_in.(dp) <- t.dma_in.(dp) - 1;
        if P.is_spe t.platform pe && P.is_ppe t.platform dp then
          t.dma_to_ppe.(pe) <- t.dma_to_ppe.(pe) - 1;
        dirt t dp;
        if cross_cell t pe dp then t.links_dirty <- true
      end
      else if t.opts.tight_pipeline then t.buff_dirty <- true
  in
  List.iter handle_in (G.in_edges t.g k);
  List.iter handle_out (G.out_edges t.g k);
  t.assignment.(k) <- -1;
  t.n_assigned <- t.n_assigned - 1;
  dirt t pe

(* Mirror of [detach]: add task [k]'s contributions on PE [pe]. *)
let attach t k pe =
  t.assignment.(k) <- pe;
  t.n_assigned <- t.n_assigned + 1;
  dirt t pe;
  let handle_in e =
    let edge = G.edge t.g e in
    let sp = t.assignment.(edge.G.src) in
    if sp >= 0 && edge.G.src <> k then
      if sp <> pe then begin
        t.dma_in.(pe) <- t.dma_in.(pe) + 1;
        if P.is_spe t.platform sp && P.is_ppe t.platform pe then
          t.dma_to_ppe.(sp) <- t.dma_to_ppe.(sp) + 1;
        dirt t sp;
        if cross_cell t sp pe then t.links_dirty <- true
      end
      else if t.opts.tight_pipeline then t.buff_dirty <- true
  in
  let handle_out e =
    let edge = G.edge t.g e in
    let dp = t.assignment.(edge.G.dst) in
    if dp >= 0 && edge.G.dst <> k then
      if dp <> pe then begin
        t.dma_in.(dp) <- t.dma_in.(dp) + 1;
        if P.is_spe t.platform pe && P.is_ppe t.platform dp then
          t.dma_to_ppe.(pe) <- t.dma_to_ppe.(pe) + 1;
        dirt t dp;
        if cross_cell t pe dp then t.links_dirty <- true
      end
      else if t.opts.tight_pipeline then t.buff_dirty <- true
  in
  List.iter handle_in (G.in_edges t.g k);
  List.iter handle_out (G.out_edges t.g k)

(* --- construction ---------------------------------------------------- *)

let create_empty ?(options = default_options) platform g =
  let n = P.n_pes platform in
  let m = G.n_edges g in
  let t =
    {
      platform;
      g;
      opts = options;
      assignment = Array.make (G.n_tasks g) (-1);
      n_assigned = 0;
      compute = Array.make n 0.;
      bytes_in = Array.make n 0.;
      bytes_out = Array.make n 0.;
      memory = Array.make n 0.;
      row_dirty = Array.make n false;
      dma_in = Array.make n 0;
      dma_to_ppe = Array.make n 0;
      link_out = Array.make platform.P.n_cells 0.;
      link_in = Array.make platform.P.n_cells 0.;
      links_dirty = false;
      buff = Steady_state.buffer_sizes ~first_periods:(Steady_state.first_periods g) g;
      buff_dirty = false;
      journal = [];
      save_compute = Array.make n 0.;
      save_bytes_in = Array.make n 0.;
      save_bytes_out = Array.make n 0.;
      save_memory = Array.make n 0.;
      save_link_out = Array.make platform.P.n_cells 0.;
      save_link_in = Array.make platform.P.n_cells 0.;
      save_buff = Array.make m 0.;
    }
  in
  t

let check_pe t pe =
  if pe < 0 || pe >= P.n_pes t.platform then
    invalid_arg "Eval: PE index out of range"

let assign t ~task ~pe =
  check_pe t pe;
  if t.assignment.(task) >= 0 then invalid_arg "Eval.assign: task already assigned";
  attach t task pe

let unassign t ~task =
  if t.assignment.(task) < 0 then invalid_arg "Eval.unassign: task not assigned";
  detach t task

let create ?options platform g m =
  let t = create_empty ?options platform g in
  for k = 0 to G.n_tasks g - 1 do
    attach t k (Mapping.pe m k)
  done;
  t

(* --- accessors ------------------------------------------------------- *)

let compute_on t pe = validate_rows t; t.compute.(pe)
let memory_on t pe = validate_rows t; t.memory.(pe)
let bytes_in_on t pe = validate_rows t; t.bytes_in.(pe)
let bytes_out_on t pe = validate_rows t; t.bytes_out.(pe)
let dma_in_on t pe = t.dma_in.(pe)
let dma_to_ppe_on t pe = t.dma_to_ppe.(pe)

let task_buffer_bytes t k =
  flush_buffers t;
  let sum = List.fold_left (fun acc e -> acc +. t.buff.(e)) 0. in
  sum (G.out_edges t.g k) +. sum (G.in_edges t.g k)

let assign_memory_delta t ~task ~pe =
  let base = task_buffer_bytes t task in
  if not t.opts.share_colocated_buffers then base
  else begin
    let saved e other =
      if t.assignment.(other) = pe then t.buff.(e) else 0.
    in
    let saved_in =
      List.fold_left
        (fun acc e -> acc +. saved e (G.edge t.g e).G.src)
        0. (G.in_edges t.g task)
    in
    let saved_out =
      List.fold_left
        (fun acc e -> acc +. saved e (G.edge t.g e).G.dst)
        0. (G.out_edges t.g task)
    in
    base -. (saved_in +. saved_out)
  end

let mapping t =
  if t.n_assigned <> G.n_tasks t.g then
    invalid_arg "Eval.mapping: partial assignment";
  Mapping.make t.platform t.g (Array.copy t.assignment)

(* Loads view sharing the internal arrays — valid only right after
   [validate_all] and never exposed to callers. *)
let internal_loads t =
  {
    Steady_state.compute = t.compute;
    bytes_in = t.bytes_in;
    bytes_out = t.bytes_out;
    memory = t.memory;
    dma_in = t.dma_in;
    dma_to_ppe = t.dma_to_ppe;
    link_out = t.link_out;
    link_in = t.link_in;
  }

let loads t =
  validate_all t;
  {
    Steady_state.compute = Array.copy t.compute;
    bytes_in = Array.copy t.bytes_in;
    bytes_out = Array.copy t.bytes_out;
    memory = Array.copy t.memory;
    dma_in = Array.copy t.dma_in;
    dma_to_ppe = Array.copy t.dma_to_ppe;
    link_out = Array.copy t.link_out;
    link_in = Array.copy t.link_in;
  }

let period t =
  validate_all t;
  Steady_state.period t.platform (internal_loads t)

let bottleneck t =
  validate_all t;
  Steady_state.bottleneck t.platform (internal_loads t)

let violations t =
  validate_all t;
  Steady_state.violations_of_loads t.platform (internal_loads t)

let feasible t =
  validate_all t;
  let p = t.platform in
  let budget = float_of_int (P.spe_memory_budget p) in
  let ok = ref true in
  let pe = ref 0 in
  let n = P.n_pes p in
  while !ok && !pe < n do
    if P.is_spe p !pe then
      if
        t.memory.(!pe) > budget
        || t.dma_in.(!pe) > p.P.max_dma_in
        || t.dma_to_ppe.(!pe) > p.P.max_dma_to_ppe
      then ok := false;
    incr pe
  done;
  !ok

(* --- journaled mutations and probing --------------------------------- *)

let apply_move t ~task ~pe =
  check_pe t pe;
  let old_pe = t.assignment.(task) in
  if old_pe < 0 then invalid_arg "Eval.apply_move: task not assigned";
  detach t task;
  attach t task pe;
  t.journal <- Move (task, old_pe) :: t.journal;
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_moves

let apply_swap t k1 k2 =
  let p1 = t.assignment.(k1) and p2 = t.assignment.(k2) in
  if p1 < 0 || p2 < 0 then invalid_arg "Eval.apply_swap: task not assigned";
  detach t k1;
  detach t k2;
  attach t k1 p2;
  attach t k2 p1;
  t.journal <- Swap (k1, k2) :: t.journal;
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_swaps

let undo t =
  match t.journal with
  | [] -> invalid_arg "Eval.undo: empty journal"
  | Move (task, old_pe) :: rest ->
      t.journal <- rest;
      detach t task;
      attach t task old_pe
  | Swap (k1, k2) :: rest ->
      t.journal <- rest;
      let p1 = t.assignment.(k1) and p2 = t.assignment.(k2) in
      detach t k1;
      detach t k2;
      attach t k1 p2;
      attach t k2 p1

(* Probe fast path: snapshot the fully validated float state, mutate,
   evaluate, reverse the integer state with the mirror detach/attach
   (exact: integer arithmetic and set operations invert perfectly), and
   blit the floats back — the restored state is bitwise the pre-probe
   one, with no recomputation spent on the way back. *)
let save_floats t =
  validate_all t;
  let n = Array.length t.compute in
  Array.blit t.compute 0 t.save_compute 0 n;
  Array.blit t.bytes_in 0 t.save_bytes_in 0 n;
  Array.blit t.bytes_out 0 t.save_bytes_out 0 n;
  Array.blit t.memory 0 t.save_memory 0 n;
  let c = Array.length t.link_out in
  Array.blit t.link_out 0 t.save_link_out 0 c;
  Array.blit t.link_in 0 t.save_link_in 0 c;
  if t.opts.tight_pipeline then
    Array.blit t.buff 0 t.save_buff 0 (Array.length t.buff)

let restore_floats t =
  let n = Array.length t.compute in
  Array.blit t.save_compute 0 t.compute 0 n;
  Array.blit t.save_bytes_in 0 t.bytes_in 0 n;
  Array.blit t.save_bytes_out 0 t.bytes_out 0 n;
  Array.blit t.save_memory 0 t.memory 0 n;
  Array.fill t.row_dirty 0 n false;
  let c = Array.length t.link_out in
  Array.blit t.save_link_out 0 t.link_out 0 c;
  Array.blit t.save_link_in 0 t.link_in 0 c;
  t.links_dirty <- false;
  if t.opts.tight_pipeline then begin
    Array.blit t.save_buff 0 t.buff 0 (Array.length t.buff);
    t.buff_dirty <- false
  end

let probe_move t ~task ~pe =
  check_pe t pe;
  let old_pe = t.assignment.(task) in
  if old_pe < 0 then invalid_arg "Eval.probe_move: task not assigned";
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_probes;
  save_floats t;
  detach t task;
  attach t task pe;
  let p = period t in
  let f = feasible t in
  detach t task;
  attach t task old_pe;
  restore_floats t;
  (p, f)

let probe_swap t k1 k2 =
  let p1 = t.assignment.(k1) and p2 = t.assignment.(k2) in
  if p1 < 0 || p2 < 0 then invalid_arg "Eval.probe_swap: task not assigned";
  if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_probes;
  save_floats t;
  detach t k1;
  detach t k2;
  attach t k1 p2;
  attach t k2 p1;
  let p = period t in
  let f = feasible t in
  detach t k1;
  detach t k2;
  attach t k1 p1;
  attach t k2 p2;
  restore_floats t;
  (p, f)

let delta_period_of_move t ~task ~pe =
  let base = period t in
  let candidate, _ = probe_move t ~task ~pe in
  candidate -. base

(* --- scratch wrappers ------------------------------------------------ *)

let scratch_period ?options platform g m = period (create ?options platform g m)

let scratch_feasible ?options platform g m =
  feasible (create ?options platform g m)
