module G = Streaming.Graph
module P = Cell.Platform

type options = {
  rel_gap : float;
  max_nodes : int;
  dive_nodes : int;
  time_limit : float;
  share_colocated_buffers : bool;
}

let default_options =
  {
    rel_gap = 0.05;
    max_nodes = 10_000_000;
    dive_nodes = 32_768;
    time_limit = 30.;
    share_colocated_buffers = false;
  }

type result = {
  mapping : Mapping.t;
  period : float;
  lower_bound : float;
  gap : float;
  nodes : int;
  optimal_within_gap : bool;
}

(* Branch nodes extend one incremental {!Eval} engine: [Eval.assign] on
   the way down, [Eval.unassign] on backtrack, and the engine is the
   authority on the committed resource state ([Eval.period] is the
   assigned-resources bound). The search keeps only its own relaxation
   machinery: the assignment order, effective costs, knapsack orders and
   suffix sums feeding the divisible bound. *)
type state = {
  platform : P.t;
  g : G.t;
  ev : Eval.t;
  order : int array;  (* topological order of assignment *)
  w_ppe : float array;  (* effective PPE cost (speedup applied) *)
  w_spe : float array;
  mutable used_spes : int;  (* SPEs in use are spes.(0 .. used_spes-1) *)
  by_ratio : int array;  (* tasks sorted by w_spe/w_ppe descending *)
  suffix_wspe : float array;  (* sum of w_spe over order.(pos..) *)
  mem_need : float array;  (* per-task SPE buffer footprint *)
  by_mem_ratio : int array;  (* tasks sorted by mem_need/w_ppe descending *)
  suffix_mem : float array;  (* sum of mem_need over order.(pos..), eligible *)
  spe_eligible : bool array;
      (* tasks whose buffers can fit an SPE at all; the others are
         PPE-forced, a dominance that tightens the node bound *)
  suffix_forced_wppe : float array;  (* PPE work of ineligible order.(pos..) *)
  bnd : Bounds.t;  (* closed-form §5 relaxations, shared with the MILP *)
  suffix_reads : float array;  (* interface bytes of order.(pos..) *)
  suffix_writes : float array;
  suffix_task_lb : float array;  (* max per-task bound over order.(pos..) *)
}

let make_state ~share platform g =
  let nk = G.n_tasks g in
  let fp = Steady_state.first_periods g in
  let w_ppe =
    Array.init nk (fun k ->
        (G.task g k).Streaming.Task.w_ppe /. platform.P.ppe_speedup)
  in
  let w_spe = Array.init nk (fun k -> (G.task g k).Streaming.Task.w_spe) in
  let ratio k = if w_ppe.(k) <= 0. then infinity else w_spe.(k) /. w_ppe.(k) in
  let by_ratio = Array.init nk Fun.id in
  Array.sort (fun a b -> compare (ratio b) (ratio a)) by_ratio;
  let buff = Steady_state.buffer_sizes ~first_periods:fp g in
  (* Per-task memory footprint used by the divisible relaxation. Under the
     sharing model a single buffer per edge suffices when both endpoints
     share an SPE, so half the incident mass is a valid lower bound. *)
  let mem_need =
    let factor = if share then 0.5 else 1.0 in
    Array.init nk (fun k ->
        let sum = List.fold_left (fun acc e -> acc +. buff.(e)) 0. in
        factor *. (sum (G.out_edges g k) +. sum (G.in_edges g k)))
  in
  let mem_ratio k =
    if w_ppe.(k) <= 0. then infinity else mem_need.(k) /. w_ppe.(k)
  in
  let by_mem_ratio = Array.init nk Fun.id in
  Array.sort (fun a b -> compare (mem_ratio b) (mem_ratio a)) by_mem_ratio;
  (* A task needs at least one copy of each incident buffer on its SPE,
     sharing or not; beyond the budget it can only live on a PPE. *)
  let budget = float_of_int (P.spe_memory_budget platform) in
  let spe_eligible =
    Array.init nk (fun k ->
        let sum = List.fold_left (fun acc e -> acc +. buff.(e)) 0. in
        sum (G.out_edges g k) +. sum (G.in_edges g k) <= budget +. 1e-9)
  in
  let bnd = Bounds.create platform g in
  (* Assignment order: hardest tasks first. Committing the tasks that
     dominate the binding resources (local-store footprint, then raw
     work) makes the divisible knapsacks infeasible near the root, where
     a prune cuts an exponential subtree; any fixed order is complete,
     and a deterministic one preserves the bitwise contract. *)
  let order = Array.init nk Fun.id in
  Array.sort
    (fun a b ->
      let c = compare mem_need.(b) mem_need.(a) in
      if c <> 0 then c
      else
        let c = compare (Float.min w_ppe.(b) w_spe.(b))
                  (Float.min w_ppe.(a) w_spe.(a)) in
        if c <> 0 then c else compare a b)
    order;
  let suffix_mem = Array.make (nk + 1) 0. in
  let suffix_forced_wppe = Array.make (nk + 1) 0. in
  let suffix_wspe = Array.make (nk + 1) 0. in
  let suffix_reads = Array.make (nk + 1) 0. in
  let suffix_writes = Array.make (nk + 1) 0. in
  let suffix_task_lb = Array.make (nk + 1) 0. in
  for pos = nk - 1 downto 0 do
    let k = order.(pos) in
    suffix_mem.(pos) <-
      (suffix_mem.(pos + 1) +. if spe_eligible.(k) then mem_need.(k) else 0.);
    suffix_forced_wppe.(pos) <-
      (suffix_forced_wppe.(pos + 1)
      +. if spe_eligible.(k) then 0. else w_ppe.(k));
    suffix_wspe.(pos) <-
      (suffix_wspe.(pos + 1) +. if spe_eligible.(k) then w_spe.(k) else 0.);
    suffix_reads.(pos) <- suffix_reads.(pos + 1) +. bnd.Bounds.reads.(k);
    suffix_writes.(pos) <- suffix_writes.(pos + 1) +. bnd.Bounds.writes.(k);
    suffix_task_lb.(pos) <-
      Float.max suffix_task_lb.(pos + 1) (Bounds.task_lb bnd k)
  done;
  {
    platform;
    g;
    ev =
      Eval.create_empty
        ~options:(Eval.make_options ~share_colocated_buffers:share ())
        platform g;
    order;
    w_ppe;
    w_spe;
    used_spes = 0;
    by_ratio;
    suffix_wspe;
    mem_need;
    by_mem_ratio;
    suffix_mem;
    spe_eligible;
    suffix_forced_wppe;
    bnd;
    suffix_reads;
    suffix_writes;
    suffix_task_lb;
  }

let remote_in_edges st k pe =
  List.length
    (List.filter
       (fun e ->
         let src = (G.edge st.g e).G.src in
         let p = Eval.pe_of st.ev src in
         p >= 0 && p <> pe)
       (G.in_edges st.g k))

let spe_preds st k pe =
  List.filter_map
    (fun e ->
      let src = (G.edge st.g e).G.src in
      let p = Eval.pe_of st.ev src in
      if p >= 0 && p <> pe && P.is_spe st.platform p then Some p else None)
    (G.in_edges st.g k)

let can_place st k pe =
  if P.is_spe st.platform pe then begin
    let budget = float_of_int (P.spe_memory_budget st.platform) in
    Eval.memory_on st.ev pe +. Eval.assign_memory_delta st.ev ~task:k ~pe
    <= budget +. 1e-9
    && Eval.dma_in_on st.ev pe + remote_in_edges st k pe
       <= st.platform.P.max_dma_in
  end
  else
    List.for_all
      (fun spe ->
        Eval.dma_to_ppe_on st.ev spe + 1 <= st.platform.P.max_dma_to_ppe)
      (spe_preds st k pe)

let ppe_capacity st t =
  List.fold_left
    (fun acc pe -> acc +. Float.max 0. (t -. Eval.compute_on st.ev pe))
    0. (P.ppes st.platform)

(* Shared greedy: remaining tasks hold [amount] units of some SPE-side
   resource with pool capacity [pool]; the excess must be offloaded to the
   PPEs, cheapest (largest amount-per-PPE-second) first. Returns true when
   the offload fits in [cap_ppe]. *)
let offload_fits st ~order_by ~amount ~pool ~total ~cap_ppe =
  let deficit = total -. pool in
  if deficit <= 0. then true
  else begin
    let removed = ref 0. and ppe_used = ref 0. in
    let i = ref 0 in
    let nk = Array.length order_by in
    while !removed < deficit && !i < nk do
      let k = order_by.(!i) in
      if Eval.pe_of st.ev k < 0 && st.spe_eligible.(k) && amount k > 0. then begin
        let need = deficit -. !removed in
        if amount k <= need then begin
          removed := !removed +. amount k;
          ppe_used := !ppe_used +. st.w_ppe.(k)
        end
        else begin
          let fraction = need /. amount k in
          removed := deficit;
          ppe_used := !ppe_used +. (fraction *. st.w_ppe.(k))
        end
      end;
      incr i
    done;
    !removed >= deficit -. 1e-12 && !ppe_used <= cap_ppe +. 1e-12
  end

(* Divisible relaxation check: can the tasks of order.(pos..) be
   fractionally completed within period [t]? Two necessary conditions are
   tested, each a fractional knapsack: the SPE *work* pool of capacity
   [sum_j (t - load_j)], and the SPE *local-store* pool of the remaining
   memory budgets (constraint (1i) aggregated over SPEs). *)
(* Pool-form interface bandwidth check (§5 (1c)/(1d) aggregated over
   interfaces): any completion routes each remaining task's own reads
   (writes) through its host PE's input (output) interface, so the spare
   interface capacity at period [t] — summed over every PE — must cover
   the remaining bytes. O(n_pes), monotone in [t]. *)
let interface_feasible st ~pos t =
  let bw = st.platform.P.bw in
  let spare committed =
    let cap = ref 0. in
    for pe = 0 to P.n_pes st.platform - 1 do
      cap := !cap +. Float.max 0. ((t *. bw) -. committed pe)
    done;
    !cap
  in
  let covers cap need = cap >= need -. (1e-9 *. Float.max 1. need) in
  covers (spare (Eval.bytes_in_on st.ev)) st.suffix_reads.(pos)
  && covers (spare (Eval.bytes_out_on st.ev)) st.suffix_writes.(pos)

let divisible_feasible st ~pos t =
  (* O(1): some PE must grant every remaining task its per-task bound. *)
  t +. 1e-12 >= st.suffix_task_lb.(pos)
  && interface_feasible st ~pos t
  &&
  (* Tasks whose buffers exceed the local store are PPE-bound: their work
     consumes PPE capacity before any offloading happens. *)
  let cap_ppe = ppe_capacity st t -. st.suffix_forced_wppe.(pos) in
  cap_ppe >= -1e-12
  &&
  let cap_spe =
    List.fold_left
      (fun acc pe -> acc +. Float.max 0. (t -. Eval.compute_on st.ev pe))
      0. (P.spes st.platform)
  in
  offload_fits st ~order_by:st.by_ratio
    ~amount:(fun k -> st.w_spe.(k))
    ~pool:cap_spe ~total:st.suffix_wspe.(pos) ~cap_ppe
  && begin
       let budget = float_of_int (P.spe_memory_budget st.platform) in
       let mem_pool =
         List.fold_left
           (fun acc pe ->
             acc +. Float.max 0. (budget -. Eval.memory_on st.ev pe))
           0. (P.spes st.platform)
       in
       offload_fits st ~order_by:st.by_mem_ratio
         ~amount:(fun k -> st.mem_need.(k))
         ~pool:mem_pool ~total:st.suffix_mem.(pos) ~cap_ppe
     end

(* Tight node bound via bisection (used for reporting at the root). *)
let node_bound st ~pos ~hi =
  let lo = ref (Eval.period st.ev) in
  if divisible_feasible st ~pos !lo then !lo
  else begin
    let hi = ref (Float.max hi (2. *. (!lo +. st.suffix_wspe.(pos) +. 1e-9))) in
    for _ = 1 to 50 do
      let mid = 0.5 *. (!lo +. !hi) in
      if divisible_feasible st ~pos mid then hi := mid else lo := mid
    done;
    !hi
  end

exception Limit_hit

(* Default-off observability hooks: per-solve totals, flushed once at
   the end so the node recursion pays only local ref bumps. Registered
   eagerly at module init — a [Lazy.force] from pool workers would be a
   racy lazy access. *)
let m_nodes =
  Obs.Metrics.counter ~help:"Mapping branch-and-bound nodes explored"
    "search_bb_nodes_total"

let m_pruned =
  Obs.Metrics.counter
    ~help:"Mapping branch-and-bound children cut by the divisible bound"
    "search_bb_pruned_total"

let m_incumbents =
  Obs.Metrics.counter ~help:"Mapping branch-and-bound incumbent improvements"
    "search_bb_incumbents_total"

let m_subtrees =
  Obs.Metrics.counter ~help:"Mapping branch-and-bound frontier subtree tasks"
    "search_bb_subtrees_total"

(* --- deterministic subtree-parallel branch and bound --------------------

   The tree is explored as node-budgeted subtree tasks: each task owns
   one open prefix, searches it depth-first on a private state, and when
   its budget runs out hands every still-open branch back as a fresh
   prefix instead of abandoning it — completeness never depends on the
   budget. Tasks fan out dynamically over {!Par.Pool.parallel_grow}
   (work-stealing keeps the domains saturated however lopsided the tree
   is); the sequential path drains the same tasks off an explicit LIFO
   stack. Only the *global* limits — the atomic node counter against
   [max_nodes], the deadline and [should_stop] — abandon work, and they
   mark the result as limit-hit.

   Why the result is independent of execution order (and hence bitwise
   equal between sequential and parallel runs of any pool size):

   - the incumbent cell is folded under a strict total order, so its
     final content depends only on the *set* of leaves offered;
   - a *deterministic* gap prune compares against a threshold fixed
     before the search starts ([det_thr], from the initial incumbent),
     never against the evolving best, so it cuts the same subtrees in
     every execution;
   - the *shared* prune compares against the live best strictly
     ([period > shared], or divisible-infeasible at [shared], which
     implies every completion is strictly worse than [shared]), so it
     only ever removes leaves strictly worse than the final best —
     removing such leaves cannot change the minimum. Timing changes
     which of them are skipped — and therefore where budgets run out
     and which prefixes are handed back — affecting node/prune/subtree
     counters but never the returned mapping. *)

let subtree_budget = 4096

let assignment st =
  Array.init (G.n_tasks st.g) (fun k -> Eval.pe_of st.ev k)

(* Offer the complete assignment at a leaf; the period pre-check keeps
   the per-leaf allocation off the common (losing) path. *)
let offer_leaf inc st =
  let p = Eval.period st.ev in
  if p <= Incumbent.period inc then Incumbent.offer inc ~period:p (assignment st)
  else false

(* Candidate PEs for position [pos]: symmetric SPEs collapsed to the
   ones in use plus one fresh, most promising (smallest resulting
   compute load) first; [List.sort] is stable, so ties keep the
   PPE-before-SPE base order and the ordering is deterministic. *)
let candidates st spes k =
  let base =
    P.ppes st.platform
    @ List.init (min (st.used_spes + 1) (Array.length spes)) (fun s -> spes.(s))
  in
  let key pe =
    let w = if P.is_ppe st.platform pe then st.w_ppe.(k) else st.w_spe.(k) in
    Eval.compute_on st.ev pe +. w
  in
  List.sort (fun a b -> compare (key a) (key b)) base

(* Prune test for the child just assigned (next open position [pos]).
   [p >= det_thr] and infeasibility at [det_thr] are the deterministic
   gap rules; [p > shared] and infeasibility at [shared] are the
   result-safe sharing rules. One divisible check at the min threshold
   covers both (infeasibility is monotone: harder at smaller t). *)
let child_pruned st ~pos ~det_thr ~inc =
  let p = Eval.period st.ev in
  let shared = Incumbent.period inc in
  p >= det_thr || p > shared
  || not (divisible_feasible st ~pos (Float.min det_thr shared))

let bump_used_spes st spes pe =
  if
    P.is_spe st.platform pe
    && st.used_spes < Array.length spes
    && pe = spes.(st.used_spes)
  then st.used_spes <- st.used_spes + 1

let replay st prefix =
  let spes = Array.of_list (P.spes st.platform) in
  Array.iteri
    (fun i pe ->
      bump_used_spes st spes pe;
      Eval.assign st.ev ~task:st.order.(i) ~pe)
    prefix

(* Shared, mutation-only search context: the incumbent cell, the fixed
   deterministic threshold, the global limits and the atomic counters
   every subtree task folds into. *)
type ctx = {
  inc : Incumbent.t;
  det_thr : float;
  deadline : float;
  should_stop : unit -> bool;
  max_nodes : int;
  c_nodes : int Atomic.t;
  c_pruned : int Atomic.t;
  c_incumbents : int Atomic.t;
  c_subtrees : int Atomic.t;
  c_limit : bool Atomic.t;
  sctx : Obs.Span.ctx;  (* parent span of this phase's subtree spans *)
}

(* One budgeted subtree task: fresh state, replay the prefix, depth-first
   until the local node budget runs out, then capture every still-open
   branch (the whole subtree under the current position) as a prefix to
   hand back. Local counters flush into the atomics every 1024 nodes,
   which is also when the global limits are polled. Returns the
   handed-back prefixes; [Limit_hit] abandons the remainder and flags
   [c_limit]. *)
let run_task ~share ctx platform g prefix =
  if Atomic.get ctx.c_limit then [||]
  else begin
    (* Flight-recorder span: one per subtree task, named by the prefix
       hash (unique within a phase — each open prefix is handed back at
       most once), annotated with this task's local counters. The task
       *set* of a parallel phase is timing-dependent, so these spans
       are excluded from the cross-pool determinism property. *)
    let t_start =
      if Obs.Span.active ctx.sctx then Obs.Span.now () else 0.
    in
    let st = make_state ~share platform g in
    let spes = Array.of_list (P.spes platform) in
    let nk = G.n_tasks g in
    replay st prefix;
    let nodes = ref 0 and flushed = ref 0 in
    let pruned = ref 0 and incumbents = ref 0 in
    let spill = ref [] in
    let flush_and_check () =
      ignore (Atomic.fetch_and_add ctx.c_nodes (!nodes - !flushed));
      flushed := !nodes;
      if
        Atomic.get ctx.c_nodes >= ctx.max_nodes
        || Unix.gettimeofday () > ctx.deadline
        || ctx.should_stop ()
      then begin
        Atomic.set ctx.c_limit true;
        raise Limit_hit
      end
    in
    let prefix_of pos = Array.init pos (fun i -> Eval.pe_of st.ev st.order.(i)) in
    let rec explore pos =
      if !nodes >= subtree_budget && pos < nk then
        (* Budget spent: hand the whole open subtree back as a task.
           The node is not counted here — it is counted when the new
           task re-enters it. *)
        spill := prefix_of pos :: !spill
      else begin
        incr nodes;
        if !nodes land 1023 = 0 then flush_and_check ();
        if pos = nk then begin
          if offer_leaf ctx.inc st then incr incumbents
        end
        else begin
          let k = st.order.(pos) in
          List.iter
            (fun pe ->
              if can_place st k pe then begin
                let was_used = st.used_spes in
                bump_used_spes st spes pe;
                Eval.assign st.ev ~task:k ~pe;
                if
                  child_pruned st ~pos:(pos + 1) ~det_thr:ctx.det_thr
                    ~inc:ctx.inc
                then incr pruned
                else explore (pos + 1);
                Eval.unassign st.ev ~task:k;
                st.used_spes <- was_used
              end)
            (candidates st spes k)
        end
      end
    in
    (try
       (* Poll the global limits before the first node so an expired
          deadline or a cancellation cancels on the first check, however
          small the subtree. *)
       flush_and_check ();
       explore (Array.length prefix)
     with Limit_hit -> spill := []);
    ignore (Atomic.fetch_and_add ctx.c_nodes (!nodes - !flushed));
    ignore (Atomic.fetch_and_add ctx.c_pruned !pruned);
    ignore (Atomic.fetch_and_add ctx.c_incumbents !incumbents);
    ignore (Atomic.fetch_and_add ctx.c_subtrees 1);
    if Obs.Span.active ctx.sctx then
      Obs.Span.record ctx.sctx ~t_start
        ~attrs:
          [
            ("nodes", Obs.Span.Int !nodes);
            ("pruned", Obs.Span.Int !pruned);
            ("incumbents", Obs.Span.Int !incumbents);
            ("spilled", Obs.Span.Int (List.length !spill));
          ]
        ("subtree:"
        ^ Support.Fnv.to_hex
            (Array.fold_left Support.Fnv.add_int Support.Fnv.empty prefix));
    Array.of_list !spill
  end

(* Sequential twin of {!Par.Pool.parallel_grow}: drain the task set off
   an explicit LIFO stack (depth-first overall, so memory stays bounded
   by the open prefixes of one root-to-leaf path per budget layer). *)
let sequential_grow f roots =
  let stack = Stack.create () in
  Array.iter (fun r -> Stack.push r stack) roots;
  while not (Stack.is_empty stack) do
    Array.iter (fun c -> Stack.push c stack) (f (Stack.pop stack))
  done

let solve ?(span = Obs.Span.null) ?(options = default_options)
    ?(should_stop = fun () -> false) ?incumbent ?(extra_lower_bound = 0.) ?pool
    platform g =
  let share = options.share_colocated_buffers in
  let st = make_state ~share platform g in
  let eval_options = Eval.make_options ~share_colocated_buffers:share () in
  let incumbent_mapping =
    match incumbent with
    | Some m ->
        if not (Eval.scratch_feasible ~options:eval_options platform g m) then
          invalid_arg "Mapping_search.solve: incumbent is infeasible";
        m
    | None ->
        (* Portfolio seed: every standard candidate plus the seeded
           restarts, each polished by local search. Every point of
           period the seed recovers shrinks [det_thr] and with it the
           whole tree — on the paper's 50-task instances the difference
           is between closing at the root and millions of open nodes.
           The portfolio is bitwise deterministic at any pool size, so
           the determinism contract is unaffected. *)
        (Portfolio.solve ~span ?pool ~should_stop
           ~share_colocated_buffers:share platform g)
          .Portfolio.best
  in
  let init_period =
    Eval.scratch_period ~options:eval_options platform g incumbent_mapping
  in
  let inc =
    Incumbent.of_option (Some (init_period, Mapping.to_array incumbent_mapping))
  in
  (* Fixed before the search: the deterministic gap-prune threshold. *)
  let det_thr = init_period *. (1. -. options.rel_gap) in
  let deadline = Unix.gettimeofday () +. options.time_limit in
  let root_bound = node_bound st ~pos:0 ~hi:init_period in
  let root_bound =
    Float.max root_bound
      (Float.max extra_lower_bound (Bounds.root_bound st.bnd))
  in
  let ctx =
    {
      inc;
      det_thr;
      deadline;
      should_stop;
      max_nodes = min options.dive_nodes options.max_nodes;
      c_nodes = Atomic.make 0;
      c_pruned = Atomic.make 0;
      c_incumbents = Atomic.make 0;
      c_subtrees = Atomic.make 0;
      c_limit = Atomic.make false;
      sctx = Obs.Span.null;
    }
  in
  (* The combinatorial root bound can prove the (polished) incumbent
     within gap outright — then there is no tree to search. *)
  let limit_hit =
    if root_bound >= det_thr then false
    else begin
      (* Phase A — the dive: always sequential under a fixed node
         budget, so its incumbent is a pure function of the instance
         whatever the pool size. Hardest-first DFS typically lands
         within a fraction of a percent of the optimum here. *)
      Obs.Span.with_span_attrs span "dive" (fun dspan ->
          sequential_grow
            (run_task ~share { ctx with sctx = dspan } platform g)
            [| [||] |];
          ((), [ ("nodes", Obs.Span.Int (Atomic.get ctx.c_nodes)) ]));
      if not (Atomic.get ctx.c_limit) then false
      else if Unix.gettimeofday () > deadline || should_stop () then true
      else begin
        (* Phase B at the deterministically tightened threshold: the
           dive incumbent re-derives the gap rule, so when it is within
           [rel_gap] of the root bound the whole tree prunes at the
           root — gap closure expressed as exhaustion. Only a still-open
           tree is fanned out over the pool. *)
        let thr_b =
          Float.min det_thr
            (Incumbent.period inc *. (1. -. options.rel_gap))
        in
        if root_bound >= thr_b then false
        else if Atomic.get ctx.c_nodes >= options.max_nodes then true
        else begin
          Obs.Span.with_span_attrs span "fanout" (fun fspan ->
              let ctx =
                {
                  ctx with
                  det_thr = thr_b;
                  max_nodes = options.max_nodes;
                  c_limit = Atomic.make false;
                  sctx = fspan;
                }
              in
              let run prefix = run_task ~share ctx platform g prefix in
              (match pool with
              | Some p -> Par.Pool.parallel_grow p run [| [||] |]
              | None -> sequential_grow run [| [||] |]);
              ( Atomic.get ctx.c_limit,
                [
                  ("nodes", Obs.Span.Int (Atomic.get ctx.c_nodes));
                  ("subtrees", Obs.Span.Int (Atomic.get ctx.c_subtrees));
                ] ))
        end
      end
    end
  in
  let nodes = Atomic.get ctx.c_nodes in
  let pruned = Atomic.get ctx.c_pruned in
  let incumbents = Atomic.get ctx.c_incumbents in
  let optimal_within_gap = not limit_hit in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.Counter.add m_nodes nodes;
    Obs.Metrics.Counter.add m_pruned pruned;
    Obs.Metrics.Counter.add m_incumbents incumbents;
    Obs.Metrics.Counter.add m_subtrees (Atomic.get ctx.c_subtrees)
  end;
  let e = Option.get (Incumbent.best inc) in
  let mapping = Mapping.make platform g e.Incumbent.arr in
  let period = e.Incumbent.period in
  let lower_bound =
    if optimal_within_gap then
      Float.max root_bound (period *. (1. -. options.rel_gap))
    else root_bound
  in
  let lower_bound = Float.min lower_bound period in
  {
    mapping;
    period;
    lower_bound;
    gap = (if period <= 0. then 0. else (period -. lower_bound) /. period);
    nodes;
    optimal_within_gap;
  }
