module G = Streaming.Graph
module P = Cell.Platform

let ppe_only platform g = Mapping.all_on_ppe platform g

(* All placement strategies walk the tasks through one incremental
   {!Eval} engine: the engine is the authority on per-PE compute load,
   SPE memory footprint, and DMA counters while tasks are placed in
   topological order (so a task's predecessors are always placed before
   it). *)

(* Number of in-edges of [k] whose (already placed) producer is remote. *)
let remote_in_edges ev k pe =
  List.length
    (List.filter
       (fun e ->
         let src = (G.edge (Eval.graph ev) e).G.src in
         Eval.pe_of ev src >= 0 && Eval.pe_of ev src <> pe)
       (G.in_edges (Eval.graph ev) k))

(* Per-SPE count of to-PPE transfers a PPE placement of [k] would add:
   one per in-edge from a task already placed on that SPE. *)
let spe_pred_counts ev k =
  List.fold_left
    (fun acc e ->
      let src = (G.edge (Eval.graph ev) e).G.src in
      let pe = Eval.pe_of ev src in
      if pe >= 0 && P.is_spe (Eval.platform ev) pe then
        let cur = try List.assoc pe acc with Not_found -> 0 in
        (pe, cur + 1) :: List.remove_assoc pe acc
      else acc)
    []
    (G.in_edges (Eval.graph ev) k)

let can_place ev k pe =
  let platform = Eval.platform ev in
  if P.is_spe platform pe then begin
    let budget = float_of_int (P.spe_memory_budget platform) in
    Eval.memory_on ev pe +. Eval.task_buffer_bytes ev k <= budget
    && Eval.dma_in_on ev pe + remote_in_edges ev k pe <= platform.P.max_dma_in
  end
  else
    (* A PPE placement consumes a to-PPE DMA slot per remote in-edge from
       an SPE predecessor. *)
    List.for_all
      (fun (spe, count) ->
        Eval.dma_to_ppe_on ev spe + count <= platform.P.max_dma_to_ppe)
      (spe_pred_counts ev k)

(* The greedy fallback (no PE passes [can_place]) forces tasks onto the
   PPE, which can overflow a predecessor SPE's to-PPE DMA queue — the
   blind spot the old incremental bookkeeping documented and never fixed.
   Repair: while some SPE exceeds its to-PPE queue, move one of its
   PPE-feeding tasks to the PPE. Each step strictly shrinks the SPE-hosted
   task population (to-PPE pressure on an SPE only comes from tasks it
   hosts), so the loop terminates with no [Dma_to_ppe] violation; SPE
   memory only decreases along the way. *)
let repair_to_ppe ev =
  let platform = Eval.platform ev and g = Eval.graph ev in
  let overflowing () =
    List.find_opt
      (fun spe -> Eval.dma_to_ppe_on ev spe > platform.P.max_dma_to_ppe)
      (P.spes platform)
  in
  let feeds_a_ppe k =
    List.exists
      (fun e ->
        let dst = (G.edge g e).G.dst in
        let pe = Eval.pe_of ev dst in
        pe >= 0 && P.is_ppe platform pe)
      (G.out_edges g k)
  in
  let rec fix () =
    match overflowing () with
    | None -> ()
    | Some spe ->
        (* A culprit always exists: every to-PPE slot of [spe] belongs to
           a task hosted there with a PPE consumer. *)
        let victim =
          List.find
            (fun k -> Eval.pe_of ev k = spe && feeds_a_ppe k)
            (List.init (G.n_tasks g) Fun.id)
        in
        Eval.apply_move ev ~task:victim ~pe:0;
        fix ()
  in
  fix ()

let greedy_generic ~choose platform g =
  let ev = Eval.create_empty platform g in
  let order = G.topological_order g in
  let handle k =
    match choose ev k with
    | Some pe -> Eval.assign ev ~task:k ~pe
    | None -> Eval.assign ev ~task:k ~pe:0
  in
  Array.iter handle order;
  repair_to_ppe ev;
  Eval.mapping ev

let greedy_mem platform g =
  let choose ev k =
    let candidates = List.filter (can_place ev k) (P.spes platform) in
    match candidates with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left
             (fun best pe ->
               if Eval.memory_on ev pe < Eval.memory_on ev best then pe
               else best)
             first rest)
  in
  greedy_generic ~choose platform g

let greedy_cpu platform g =
  let choose ev k =
    let load pe =
      let cls = P.pe_class platform pe in
      let w = Streaming.Task.w (G.task g k) cls in
      let w = if cls = P.PPE then w /. platform.P.ppe_speedup else w in
      Eval.compute_on ev pe +. w
    in
    let candidates =
      List.filter (can_place ev k) (List.init (P.n_pes platform) Fun.id)
    in
    match candidates with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left
             (fun best pe -> if load pe < load best then pe else best)
             first rest)
  in
  greedy_generic ~choose platform g

(* Offload tasks to SPEs by decreasing value density w_ppe / memory
   footprint: the optimal structure when the SPE local stores are the
   binding resource (the usual regime on the Cell; cf. the paper's
   observation that SPE memory dominates the mapping problem). *)
let density_pack platform g =
  let ev = Eval.create_empty platform g in
  let nk = G.n_tasks g in
  let w_ppe k = (G.task g k).Streaming.Task.w_ppe /. platform.P.ppe_speedup in
  let density k =
    let mem = Eval.task_buffer_bytes ev k in
    if mem <= 0. then infinity else w_ppe k /. mem
  in
  let by_density = Array.init nk Fun.id in
  Array.sort (fun a b -> compare (density b) (density a)) by_density;
  let budget = float_of_int (P.spe_memory_budget platform) in
  let spes = Array.of_list (P.spes platform) in
  let place_spe k =
    (* Least-loaded (compute) SPE with room for the buffers. *)
    let best = ref (-1) in
    Array.iter
      (fun pe ->
        if Eval.memory_on ev pe +. Eval.task_buffer_bytes ev k <= budget then
          match !best with
          | -1 -> best := pe
          | b -> if Eval.compute_on ev pe < Eval.compute_on ev b then best := pe)
      spes;
    !best
  in
  Array.iter
    (fun k ->
      match place_spe k with
      | -1 -> Eval.assign ev ~task:k ~pe:0
      | pe -> Eval.assign ev ~task:k ~pe)
    by_density;
  repair_to_ppe ev;
  Eval.mapping ev

let random ~rng platform g =
  let n = P.n_pes platform in
  Mapping.make platform g
    (Array.init (G.n_tasks g) (fun _ -> Support.Rng.int rng n))

(* Seeded random *feasible* start: topological placement walk choosing
   uniformly among the PEs [can_place] admits — the restart generator
   for portfolio local search. Consumes exactly one [rng] draw per task
   with at least one admissible PE, so the mapping is a pure function
   of the seed. *)
let random_feasible ~rng platform g =
  let ev = Eval.create_empty platform g in
  let n = P.n_pes platform in
  Array.iter
    (fun k ->
      let admissible =
        List.filter (can_place ev k) (List.init n Fun.id)
      in
      match admissible with
      | [] -> Eval.assign ev ~task:k ~pe:0
      | pes ->
          let pick = Support.Rng.int rng (List.length pes) in
          Eval.assign ev ~task:k ~pe:(List.nth pes pick))
    (G.topological_order g);
  repair_to_ppe ev;
  Eval.mapping ev

(* Default-off observability hooks: local-search acceptance counters
   (probe counts live in Eval). Registered eagerly at module init so no
   lazy cell is forced from pool worker domains (racy under OCaml 5). *)
let m_ls_passes =
  Obs.Metrics.counter ~help:"Local-search improvement passes"
    "search_ls_passes_total"

let m_ls_moves =
  Obs.Metrics.counter ~help:"Local-search single-task moves accepted"
    "search_ls_moves_accepted_total"

let m_ls_swaps =
  Obs.Metrics.counter ~help:"Local-search pairwise swaps accepted"
    "search_ls_swaps_accepted_total"

let local_search ?(options = Eval.default_options) ?(max_passes = 50) platform g
    mapping =
  let ev = Eval.create ~options platform g mapping in
  let n = P.n_pes platform in
  let best_period = ref (Eval.period ev) in
  let improved = ref true in
  let passes = ref 0 in
  let obs = Obs.Metrics.enabled () in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    if obs then Obs.Metrics.Counter.inc m_ls_passes;
    (* Single-task moves, probed through the engine in O(degree) each. *)
    for k = 0 to G.n_tasks g - 1 do
      let home = Eval.pe_of ev k in
      let best_move = ref None in
      for pe = 0 to n - 1 do
        if pe <> home then begin
          let t, feas = Eval.probe_move ev ~task:k ~pe in
          if feas && t < !best_period -. 1e-12 then begin
            best_period := t;
            best_move := Some pe
          end
        end
      done;
      match !best_move with
      | Some pe ->
          improved := true;
          if obs then Obs.Metrics.Counter.inc m_ls_moves;
          Eval.apply_move ev ~task:k ~pe
      | None -> ()
    done;
    (* Pairwise swaps: essential when the local stores are full, where no
       single move is feasible but exchanging tasks is. *)
    for k1 = 0 to G.n_tasks g - 1 do
      for k2 = k1 + 1 to G.n_tasks g - 1 do
        if Eval.pe_of ev k1 <> Eval.pe_of ev k2 then begin
          let t, feas = Eval.probe_swap ev k1 k2 in
          if feas && t < !best_period -. 1e-12 then begin
            best_period := t;
            improved := true;
            if obs then Obs.Metrics.Counter.inc m_ls_swaps;
            Eval.apply_swap ev k1 k2
          end
        end
      done
    done
  done;
  Eval.mapping ev

(* The dense-inverse simplex degrades on very large LPs; past this row
   count the rounding falls back to the density heuristic. *)
let lp_rounding_row_limit = 2000

let lp_rounding ?(improve = true) platform g =
  let formulation = Milp_formulation.build_compact platform g in
  let fallback () =
    let m = density_pack platform g in
    if Steady_state.feasible platform g m then m else greedy_mem platform g
  in
  if Lp.Problem.n_constrs formulation.Milp_formulation.problem > lp_rounding_row_limit
  then fallback ()
  else
  match Lp.Simplex.solve formulation.Milp_formulation.problem with
  | exception Failure _ -> fallback ()
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> fallback ()
  | Lp.Simplex.Optimal sol ->
      let alpha = formulation.Milp_formulation.alpha in
      let ev = Eval.create_empty platform g in
      let order = G.topological_order g in
      let handle k =
        (* PEs by decreasing fractional alpha, filtered by feasibility. *)
        let ranked =
          List.sort
            (fun a b -> compare sol.Lp.Simplex.x.(alpha.(k).(b)) sol.Lp.Simplex.x.(alpha.(k).(a)))
            (List.init (P.n_pes platform) Fun.id)
        in
        match List.find_opt (can_place ev k) ranked with
        | Some pe -> Eval.assign ev ~task:k ~pe
        | None -> Eval.assign ev ~task:k ~pe:0
      in
      Array.iter handle order;
      repair_to_ppe ev;
      let mapping = Eval.mapping ev in
      if improve && Steady_state.feasible platform g mapping then
        local_search platform g mapping
      else mapping

let best_feasible platform g candidates =
  (* One engine pass per candidate: feasibility and period in a single
     O(tasks + edges) evaluation instead of repeated scratch recomputes. *)
  let scored =
    List.filter_map
      (fun (name, m) ->
        let ev = Eval.create platform g m in
        if Eval.feasible ev then Some ((name, m), Eval.period ev) else None)
      candidates
  in
  match scored with
  | [] -> None
  | first :: rest ->
      Some
        (fst
           (List.fold_left
              (fun (best, bt) (c, t) -> if t < bt then (c, t) else (best, bt))
              first rest))

let standard_candidates ?(with_lp = true) platform g =
  let base =
    [
      ("ppe-only", ppe_only platform g);
      ("greedy-mem", greedy_mem platform g);
      ("greedy-cpu", greedy_cpu platform g);
      ("density-pack", density_pack platform g);
    ]
  in
  let base =
    match Chain_dp.solve platform g with
    | Some m -> base @ [ ("chain-dp", m) ]
    | None -> base
  in
  if with_lp then base @ [ ("lp-round", lp_rounding platform g) ] else base
