(** Steady-state analysis of a mapped streaming application (paper §3.1,
    §4.2).

    Given a mapping, the periodic schedule is fully determined: during one
    period of length [T], the PE in charge of task [T_k] processes one
    instance while the data of neighbouring instances flows between PEs.
    The throughput is [1/T] where [T] is the maximal occupation time of any
    resource — PE compute time, or bytes through an interface divided by
    its bandwidth. Feasibility adds the SPE local-store capacity and the
    DMA-queue limits. *)

(** {1 Pipeline depth and buffers} *)

val first_periods : ?mapping:Mapping.t -> Streaming.Graph.t -> int array
(** [firstPeriod T_k]: index of the period processing the first instance of
    each task. Paper formula: [0] for sources, otherwise
    [max over predecessors + peek_k + 2] (one period to compute the
    predecessor, one to communicate, [peek_k] to accumulate look-ahead).
    With [~mapping], the communication period is skipped for edges whose
    endpoints share a PE — the optimization the paper leaves as future
    work (§4.2); without it the result is mapping-independent. *)

val buffer_sizes : first_periods:int array -> Streaming.Graph.t -> float array
(** Per-edge buffer footprint:
    [buff_{k,l} = data_{k,l} * (firstPeriod(T_l) - firstPeriod(T_k))]. *)

(** {1 Resource loads} *)

type loads = {
  compute : float array;  (** Seconds of work per period, per PE. *)
  bytes_in : float array;  (** Incoming bytes per period (memory reads +
                               remote in-edges), per PE. *)
  bytes_out : float array;  (** Outgoing bytes (writes + remote out-edges). *)
  memory : float array;  (** Local-store bytes used for buffers, per PE
                             (meaningful for SPEs). *)
  dma_in : int array;  (** Concurrent incoming remote data per PE. *)
  dma_to_ppe : int array;  (** Concurrent SPE-to-PPE transfers per PE. *)
  link_out : float array;  (** Bytes leaving each Cell chip per period
                               (inter-Cell interface, multi-Cell only). *)
  link_in : float array;  (** Bytes entering each Cell chip per period. *)
}

val loads :
  ?share_colocated_buffers:bool ->
  ?tight_pipeline:bool ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  Mapping.t ->
  loads
(** Resource usage of the induced periodic schedule.
    [share_colocated_buffers] (default [false], as in the paper) counts a
    single buffer instead of separate in/out copies when both endpoints of
    an edge live on the same SPE — the §7 memory optimization.
    [tight_pipeline] (default [false]) computes buffer sizes from the
    mapping-aware {!first_periods}, skipping the communication period of
    colocated edges — the §4.2 future-work optimization. *)

val period : Cell.Platform.t -> loads -> float
(** Smallest feasible period [T]: the maximum resource occupation time
    over PE compute, PE interfaces and, on multi-Cell platforms, the
    inter-Cell links. *)

type resource =
  | Compute of int  (** PE index. *)
  | Interface_in of int
  | Interface_out of int
  | Link_out of int  (** Cell index. *)
  | Link_in of int

val bottleneck : Cell.Platform.t -> loads -> resource * float
(** The resource whose occupation time equals the period, and that time —
    i.e. {e why} the throughput is what it is. *)

val pp_resource : Cell.Platform.t -> Format.formatter -> resource -> unit

val throughput :
  ?share_colocated_buffers:bool ->
  ?tight_pipeline:bool ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  Mapping.t ->
  float
(** [1 / period]; ignores feasibility (see {!violations}). *)

(** {1 Feasibility} *)

type violation =
  | Memory of { pe : int; used : float; budget : float }
      (** Constraint (1i): SPE buffers exceed [LS - code]. *)
  | Dma_in of { pe : int; used : int; limit : int }
      (** Constraint (1j): more than 16 concurrent incoming data. *)
  | Dma_to_ppe of { pe : int; used : int; limit : int }
      (** Constraint (1k): more than 8 concurrent SPE-to-PPE transfers. *)

val violations :
  ?share_colocated_buffers:bool ->
  ?tight_pipeline:bool ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  Mapping.t ->
  violation list

val violations_of_loads : Cell.Platform.t -> loads -> violation list
(** The constraint checks of {!violations} applied to an already-computed
    resource state — the single code path shared by {!violations}, the
    replication analysis and the incremental {!Eval} engine. *)

val feasible :
  ?share_colocated_buffers:bool ->
  ?tight_pipeline:bool ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  Mapping.t ->
  bool

val achieves :
  Cell.Platform.t -> Streaming.Graph.t -> Mapping.t -> float -> bool
(** Polynomial-time throughput check of Theorem 1: does the mapping achieve
    throughput at least the given bound (and satisfy all feasibility
    constraints)? *)

val pp_violation : Cell.Platform.t -> Format.formatter -> violation -> unit
