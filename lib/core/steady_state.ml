module G = Streaming.Graph
module P = Cell.Platform

let first_periods ?mapping g =
  let fp = Array.make (G.n_tasks g) 0 in
  let colocated e =
    match mapping with
    | None -> false
    | Some m -> not (Mapping.is_remote m (G.edge g e))
  in
  let compute k =
    match G.in_edges g k with
    | [] -> fp.(k) <- 0
    | ins ->
        let peek = (G.task g k).Streaming.Task.peek in
        let over_pred acc e =
          let j = (G.edge g e).G.src in
          (* One period for the predecessor's computation, plus one for the
             communication unless the edge stays on the same PE. *)
          let comm = if colocated e then 0 else 1 in
          max acc (fp.(j) + 1 + comm + peek)
        in
        fp.(k) <- List.fold_left over_pred 0 ins
  in
  Array.iter compute (G.topological_order g);
  fp

let buffer_sizes ~first_periods g =
  let size e =
    let { G.src; dst; data_bytes } = G.edge g e in
    data_bytes *. float_of_int (first_periods.(dst) - first_periods.(src))
  in
  Array.init (G.n_edges g) size

type loads = {
  compute : float array;
  bytes_in : float array;
  bytes_out : float array;
  memory : float array;
  dma_in : int array;
  dma_to_ppe : int array;
  link_out : float array;
  link_in : float array;
}

let loads ?(share_colocated_buffers = false) ?(tight_pipeline = false) platform
    g mapping =
  let n = P.n_pes platform in
  let compute = Array.make n 0. in
  let bytes_in = Array.make n 0. in
  let bytes_out = Array.make n 0. in
  let memory = Array.make n 0. in
  let dma_in = Array.make n 0 in
  let dma_to_ppe = Array.make n 0 in
  let link_out = Array.make platform.P.n_cells 0. in
  let link_in = Array.make platform.P.n_cells 0. in
  for k = 0 to G.n_tasks g - 1 do
    let pe = Mapping.pe mapping k in
    let task = G.task g k in
    let w = Streaming.Task.w task (P.pe_class platform pe) in
    let w = if P.is_ppe platform pe then w /. platform.P.ppe_speedup else w in
    compute.(pe) <- compute.(pe) +. w;
    bytes_in.(pe) <- bytes_in.(pe) +. task.Streaming.Task.read_bytes;
    bytes_out.(pe) <- bytes_out.(pe) +. task.Streaming.Task.write_bytes
  done;
  let fp =
    if tight_pipeline then first_periods ~mapping g else first_periods g
  in
  let buff = buffer_sizes ~first_periods:fp g in
  for e = 0 to G.n_edges g - 1 do
    let edge = G.edge g e in
    let src_pe = Mapping.pe mapping edge.G.src in
    let dst_pe = Mapping.pe mapping edge.G.dst in
    let remote = src_pe <> dst_pe in
    if remote then begin
      bytes_out.(src_pe) <- bytes_out.(src_pe) +. edge.G.data_bytes;
      bytes_in.(dst_pe) <- bytes_in.(dst_pe) +. edge.G.data_bytes;
      dma_in.(dst_pe) <- dma_in.(dst_pe) + 1;
      if P.is_spe platform src_pe && P.is_ppe platform dst_pe then
        dma_to_ppe.(src_pe) <- dma_to_ppe.(src_pe) + 1;
      let src_cell = P.cell_of platform src_pe in
      let dst_cell = P.cell_of platform dst_pe in
      if src_cell <> dst_cell then begin
        link_out.(src_cell) <- link_out.(src_cell) +. edge.G.data_bytes;
        link_in.(dst_cell) <- link_in.(dst_cell) +. edge.G.data_bytes
      end
    end;
    (* Memory: the producer holds an outgoing buffer, the consumer an
       incoming one (both even when colocated, unless the sharing
       optimization is enabled). *)
    if (not remote) && share_colocated_buffers then
      memory.(src_pe) <- memory.(src_pe) +. buff.(e)
    else begin
      memory.(src_pe) <- memory.(src_pe) +. buff.(e);
      memory.(dst_pe) <- memory.(dst_pe) +. buff.(e)
    end
  done;
  { compute; bytes_in; bytes_out; memory; dma_in; dma_to_ppe; link_out; link_in }

let period platform l =
  let n = P.n_pes platform in
  let t = ref 0. in
  for pe = 0 to n - 1 do
    t := Float.max !t l.compute.(pe);
    t := Float.max !t (l.bytes_in.(pe) /. platform.P.bw);
    t := Float.max !t (l.bytes_out.(pe) /. platform.P.bw)
  done;
  for cell = 0 to platform.P.n_cells - 1 do
    t := Float.max !t (l.link_out.(cell) /. platform.P.inter_cell_bw);
    t := Float.max !t (l.link_in.(cell) /. platform.P.inter_cell_bw)
  done;
  !t

type resource =
  | Compute of int
  | Interface_in of int
  | Interface_out of int
  | Link_out of int
  | Link_in of int

let bottleneck platform l =
  let best = ref (Compute 0, 0.) in
  let consider resource time = if time > snd !best then best := (resource, time) in
  for pe = 0 to P.n_pes platform - 1 do
    consider (Compute pe) l.compute.(pe);
    consider (Interface_in pe) (l.bytes_in.(pe) /. platform.P.bw);
    consider (Interface_out pe) (l.bytes_out.(pe) /. platform.P.bw)
  done;
  for cell = 0 to platform.P.n_cells - 1 do
    consider (Link_out cell) (l.link_out.(cell) /. platform.P.inter_cell_bw);
    consider (Link_in cell) (l.link_in.(cell) /. platform.P.inter_cell_bw)
  done;
  !best

let pp_resource platform ppf = function
  | Compute pe -> Format.fprintf ppf "compute on %s" (P.pe_name platform pe)
  | Interface_in pe ->
      Format.fprintf ppf "incoming interface of %s" (P.pe_name platform pe)
  | Interface_out pe ->
      Format.fprintf ppf "outgoing interface of %s" (P.pe_name platform pe)
  | Link_out cell -> Format.fprintf ppf "inter-Cell link out of cell %d" cell
  | Link_in cell -> Format.fprintf ppf "inter-Cell link into cell %d" cell

let throughput ?share_colocated_buffers ?tight_pipeline platform g mapping =
  let l = loads ?share_colocated_buffers ?tight_pipeline platform g mapping in
  let t = period platform l in
  if t <= 0. then infinity else 1. /. t

type violation =
  | Memory of { pe : int; used : float; budget : float }
  | Dma_in of { pe : int; used : int; limit : int }
  | Dma_to_ppe of { pe : int; used : int; limit : int }

let violations_of_loads platform l =
  let budget = float_of_int (P.spe_memory_budget platform) in
  let check pe acc =
    if not (P.is_spe platform pe) then acc
    else begin
      let acc =
        if l.memory.(pe) > budget then
          Memory { pe; used = l.memory.(pe); budget } :: acc
        else acc
      in
      let acc =
        if l.dma_in.(pe) > platform.P.max_dma_in then
          Dma_in { pe; used = l.dma_in.(pe); limit = platform.P.max_dma_in }
          :: acc
        else acc
      in
      if l.dma_to_ppe.(pe) > platform.P.max_dma_to_ppe then
        Dma_to_ppe
          { pe; used = l.dma_to_ppe.(pe); limit = platform.P.max_dma_to_ppe }
        :: acc
      else acc
    end
  in
  List.fold_right check (List.init (P.n_pes platform) Fun.id) []

let violations ?share_colocated_buffers ?tight_pipeline platform g mapping =
  violations_of_loads platform
    (loads ?share_colocated_buffers ?tight_pipeline platform g mapping)

let feasible ?share_colocated_buffers ?tight_pipeline platform g mapping =
  violations ?share_colocated_buffers ?tight_pipeline platform g mapping = []

let achieves platform g mapping bound =
  feasible platform g mapping
  && throughput platform g mapping >= bound -. 1e-12

let pp_violation platform ppf = function
  | Memory { pe; used; budget } ->
      Format.fprintf ppf "%s: buffers need %.0f B, budget %.0f B"
        (P.pe_name platform pe) used budget
  | Dma_in { pe; used; limit } ->
      Format.fprintf ppf "%s: %d concurrent incoming data, limit %d"
        (P.pe_name platform pe) used limit
  | Dma_to_ppe { pe; used; limit } ->
      Format.fprintf ppf "%s: %d concurrent transfers to PPEs, limit %d"
        (P.pe_name platform pe) used limit
