(** Throughput-optimal mapping via mixed linear programming (paper §5–6).

    This is the entry point corresponding to the paper's "Linear
    Programming" strategy: build the mapping MILP, seed it with the best
    heuristic mapping, and solve it with a 5 % relative optimality gap —
    the same stopping rule the paper applies to CPLEX.

    Two engines are available and chosen automatically by instance size:

    - [`Exact]: the generic {!Lp.Branch_bound} on the compact formulation
      (exact within the gap; right for small and mid-size graphs);
    - [`Search]: the specialized {!Mapping_search} branch and bound,
      optionally bounded below by the root LP relaxation (scales to the
      paper's 50–94-task graphs).

    A PPE-only mapping is always feasible, so [solve] always returns a
    mapping. *)

type engine = Exact | Search | Auto

type options = {
  rel_gap : float;  (** Stop at this optimality gap (default 0.05). *)
  time_limit : float;  (** Seconds (default 60). *)
  max_nodes : int;
  engine : engine;
  root_lp : bool;
      (** For [Search]: solve the compact LP relaxation at the root to
          tighten the reported bound. Defaults to [false]: the LP takes
          tens of seconds on paper-scale graphs while the search's own
          combinatorial relaxation gives a comparable bound. *)
  share_colocated_buffers : bool;  (** Model the §7 buffer sharing. *)
}

val default_options : options

type result = {
  mapping : Mapping.t;
  period : float;  (** Period of [mapping] (seconds per instance). *)
  throughput : float;  (** Instances per second: [1 / period]. *)
  lower_bound : float;  (** Proven lower bound on the optimal period. *)
  gap : float;  (** [(period - lower_bound) / period]. *)
  proven_within_gap : bool;  (** Whether the target gap was certified. *)
  nodes : int;
  solve_time : float;  (** Wall-clock seconds. *)
}

val solve :
  ?span:Obs.Span.ctx ->
  ?options:options ->
  ?should_stop:(unit -> bool) ->
  ?pool:Par.Pool.t ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  result
(** [span] (default {!Obs.Span.null}: free) is passed to the chosen
    engine: {!Lp.Branch_bound.solve} records a ["milp-bb"] span,
    {!Mapping_search.solve} the portfolio/dive/fanout/subtree family.

    [pool] parallelizes the [`Search] engine's branch and bound (the
    [`Exact] engine ignores it); the result is bitwise identical to the
    sequential run — see {!Mapping_search.solve}.

    [should_stop] (default: never) cancels the underlying branch and
    bound early, in either engine, returning the best incumbent so far
    with [proven_within_gap = false] — the heuristic seed guarantees a
    feasible mapping even under immediate cancellation. *)

val predicted_throughput : result -> float
(** Synonym of [r.throughput]: the theoretical throughput of the mapping,
    as plotted in the paper's Fig. 6. *)
