module G = Streaming.Graph
module P = Cell.Platform
module Pb = Lp.Problem

type t = {
  problem : Pb.t;
  t_var : Pb.var;
  alpha : Pb.var array array;
  encode : Mapping.t -> float array;
}

(* Shared scaffolding: T, alpha, (1b), (1e), (1f), and the alpha-only parts
   of (1g)/(1h)/(1i) expressed as expressions to be completed by the
   formulation-specific communication terms. *)

let add_alpha problem platform g =
  let n = P.n_pes platform in
  Array.init (G.n_tasks g) (fun k ->
      Array.init n (fun i -> Pb.binary problem (Printf.sprintf "a_%d_%d" k i)))

let add_assignment_constraints problem g alpha n =
  for k = 0 to G.n_tasks g - 1 do
    let expr = Lp.Expr.of_list (List.init n (fun i -> (alpha.(k).(i), 1.))) in
    Pb.add_constr problem ~name:(Printf.sprintf "assign_%d" k) expr Pb.Eq 1.
  done

let add_compute_constraints problem platform g alpha t_var =
  let n = P.n_pes platform in
  for i = 0 to n - 1 do
    let cls = P.pe_class platform i in
    let coeff k =
      let w = Streaming.Task.w (G.task g k) cls in
      let w = if cls = P.PPE then w /. platform.P.ppe_speedup else w in
      (alpha.(k).(i), w)
    in
    let expr =
      Lp.Expr.add
        (Lp.Expr.of_list (List.init (G.n_tasks g) coeff))
        (Lp.Expr.term ~coeff:(-1.) t_var)
    in
    Pb.add_constr problem ~name:(Printf.sprintf "compute_%d" i) expr Pb.Le 0.
  done

(* Memory footprint coefficient of task k on an SPE: all its in and out
   buffers (constraint (1i)). *)
let task_buffer_bytes g buff k =
  let out_bytes = List.fold_left (fun acc e -> acc +. buff.(e)) 0. (G.out_edges g k) in
  let in_bytes = List.fold_left (fun acc e -> acc +. buff.(e)) 0. (G.in_edges g k) in
  out_bytes +. in_bytes

let buffers g =
  let fp = Steady_state.first_periods g in
  Steady_state.buffer_sizes ~first_periods:fp g

(* Combinatorial root cut: [T >= Bounds.root] is implied by the integer
   program but not by its LP relaxation, so adding it as an explicit row
   starts every relaxation — the root LP and each branch-and-bound
   node — at the closed-form §5 bound instead of below it. *)
let add_combinatorial_cut problem platform g t_var =
  let lb = Bounds.root_bound (Bounds.create platform g) in
  if lb > 0. then
    Pb.add_constr problem ~name:"comb_root_lb" (Lp.Expr.term t_var) Pb.Ge lb

(* ------------------------------------------------------------------ *)
(* Full formulation: paper constraints (1a)-(1k).                      *)
(* ------------------------------------------------------------------ *)

let build_full ?(integral_beta = false) ?(share_colocated_buffers = false)
    platform g =
  let problem = Pb.create ~name:"cell-mapping-full" () in
  let n = P.n_pes platform in
  let ne = G.n_edges g in
  let t_var = Pb.add_var problem "T" in
  let alpha = add_alpha problem platform g in
  (* (1a) beta variables; continuous in [0,1] unless integral_beta. *)
  let beta =
    Array.init ne (fun e ->
        Array.init n (fun i ->
            Array.init n (fun j ->
                let name = Printf.sprintf "b_%d_%d_%d" e i j in
                if integral_beta then Pb.binary problem name
                else Pb.add_var problem ~ub:1. name)))
  in
  (* (1b) *)
  add_assignment_constraints problem g alpha n;
  (* (1c) the PE computing T_l holds the data: sum_i beta_{i,j} >= alpha_l_j *)
  for e = 0 to ne - 1 do
    let { G.dst = l; _ } = G.edge g e in
    for j = 0 to n - 1 do
      let expr =
        Lp.Expr.add
          (Lp.Expr.of_list (List.init n (fun i -> (beta.(e).(i).(j), 1.))))
          (Lp.Expr.term ~coeff:(-1.) alpha.(l).(j))
      in
      Pb.add_constr problem ~name:(Printf.sprintf "recv_%d_%d" e j) expr Pb.Ge 0.
    done
  done;
  (* (1d) only the producer sends: sum_j beta_{i,j} <= alpha_k_i *)
  for e = 0 to ne - 1 do
    let { G.src = k; _ } = G.edge g e in
    for i = 0 to n - 1 do
      let expr =
        Lp.Expr.add
          (Lp.Expr.of_list (List.init n (fun j -> (beta.(e).(i).(j), 1.))))
          (Lp.Expr.term ~coeff:(-1.) alpha.(k).(i))
      in
      Pb.add_constr problem ~name:(Printf.sprintf "send_%d_%d" e i) expr Pb.Le 0.
    done
  done;
  (* (1e)/(1f) *)
  add_compute_constraints problem platform g alpha t_var;
  (* (1g)/(1h): interface loads within T * bw. *)
  let bw = platform.P.bw in
  for i = 0 to n - 1 do
    let reads =
      List.init (G.n_tasks g) (fun k ->
          (alpha.(k).(i), (G.task g k).Streaming.Task.read_bytes))
    in
    let incoming =
      List.concat
        (List.init ne (fun e ->
             List.filteri (fun j _ -> j <> i)
               (List.init n (fun j -> (beta.(e).(j).(i), (G.edge g e).G.data_bytes)))))
    in
    let expr =
      Lp.Expr.add
        (Lp.Expr.of_list (reads @ incoming))
        (Lp.Expr.term ~coeff:(-.bw) t_var)
    in
    Pb.add_constr problem ~name:(Printf.sprintf "bw_in_%d" i) expr Pb.Le 0.;
    let writes =
      List.init (G.n_tasks g) (fun k ->
          (alpha.(k).(i), (G.task g k).Streaming.Task.write_bytes))
    in
    let outgoing =
      List.concat
        (List.init ne (fun e ->
             List.filteri (fun j _ -> j <> i)
               (List.init n (fun j -> (beta.(e).(i).(j), (G.edge g e).G.data_bytes)))))
    in
    let expr =
      Lp.Expr.add
        (Lp.Expr.of_list (writes @ outgoing))
        (Lp.Expr.term ~coeff:(-.bw) t_var)
    in
    Pb.add_constr problem ~name:(Printf.sprintf "bw_out_%d" i) expr Pb.Le 0.
  done;
  (* (1i) SPE local stores. With buffer sharing, a colocated edge
     (beta_{i,i} = 1) saves one copy. *)
  let buff = buffers g in
  List.iter
    (fun i ->
      let terms =
        List.init (G.n_tasks g) (fun k ->
            (alpha.(k).(i), task_buffer_bytes g buff k))
      in
      let sharing =
        if share_colocated_buffers then
          List.init ne (fun e -> (beta.(e).(i).(i), -.buff.(e)))
        else []
      in
      Pb.add_constr problem
        ~name:(Printf.sprintf "mem_%d" i)
        (Lp.Expr.of_list (terms @ sharing))
        Pb.Le
        (float_of_int (P.spe_memory_budget platform)))
    (P.spes platform);
  (* (1j) incoming DMA slots per SPE. *)
  List.iter
    (fun j ->
      let terms =
        List.concat
          (List.init ne (fun e ->
               List.filteri (fun i _ -> i <> j)
                 (List.init n (fun i -> (beta.(e).(i).(j), 1.)))))
      in
      Pb.add_constr problem
        ~name:(Printf.sprintf "dma_in_%d" j)
        (Lp.Expr.of_list terms) Pb.Le
        (float_of_int platform.P.max_dma_in))
    (P.spes platform);
  (* (1k) SPE-to-PPE DMA slots. *)
  List.iter
    (fun i ->
      let terms =
        List.concat
          (List.init ne (fun e ->
               List.map (fun j -> (beta.(e).(i).(j), 1.)) (P.ppes platform)))
      in
      Pb.add_constr problem
        ~name:(Printf.sprintf "dma_ppe_%d" i)
        (Lp.Expr.of_list terms) Pb.Le
        (float_of_int platform.P.max_dma_to_ppe))
    (P.spes platform);
  (* Inter-Cell links (multi-Cell platforms): cross-cell beta traffic must
     fit the BIF bandwidth in each direction. *)
  if platform.P.n_cells > 1 then
    for c = 0 to platform.P.n_cells - 1 do
      let crossing ~outgoing =
        List.concat
          (List.init ne (fun e ->
               let data = (G.edge g e).G.data_bytes in
               List.concat
                 (List.init n (fun i ->
                      List.filter_map
                        (fun j ->
                          let ci = P.cell_of platform i in
                          let cj = P.cell_of platform j in
                          if ci <> cj && (if outgoing then ci = c else cj = c)
                          then Some (beta.(e).(i).(j), data)
                          else None)
                        (List.init n Fun.id)))))
      in
      let add name terms =
        Pb.add_constr problem ~name
          (Lp.Expr.add (Lp.Expr.of_list terms)
             (Lp.Expr.term ~coeff:(-.platform.P.inter_cell_bw) t_var))
          Pb.Le 0.
      in
      add (Printf.sprintf "link_out_%d" c) (crossing ~outgoing:true);
      add (Printf.sprintf "link_in_%d" c) (crossing ~outgoing:false)
    done;
  add_combinatorial_cut problem platform g t_var;
  Pb.set_objective problem Pb.Minimize (Lp.Expr.term t_var);
  let encode mapping =
    let x = Array.make (Pb.n_vars problem) 0. in
    for k = 0 to G.n_tasks g - 1 do
      x.(alpha.(k).(Mapping.pe mapping k)) <- 1.
    done;
    for e = 0 to ne - 1 do
      let { G.src; dst; _ } = G.edge g e in
      x.(beta.(e).(Mapping.pe mapping src).(Mapping.pe mapping dst)) <- 1.
    done;
    let loads =
      Steady_state.loads ~share_colocated_buffers platform g mapping
    in
    x.(t_var) <- Steady_state.period platform loads;
    x
  in
  { problem; t_var; alpha; encode }

(* ------------------------------------------------------------------ *)
(* Compact formulation.                                                *)
(* ------------------------------------------------------------------ *)

let build_compact ?(share_colocated_buffers = false) platform g =
  let problem = Pb.create ~name:"cell-mapping-compact" () in
  let n = P.n_pes platform in
  let ne = G.n_edges g in
  let t_var = Pb.add_var problem "T" in
  let alpha = add_alpha problem platform g in
  add_assignment_constraints problem g alpha n;
  add_compute_constraints problem platform g alpha t_var;
  (* Per-edge, per-PE remote indicators. *)
  let inv =
    Array.init ne (fun e ->
        Array.init n (fun i -> Pb.add_var problem ~ub:1. (Printf.sprintf "in_%d_%d" e i)))
  in
  let outv =
    Array.init ne (fun e ->
        Array.init n (fun i ->
            Pb.add_var problem ~ub:1. (Printf.sprintf "out_%d_%d" e i)))
  in
  for e = 0 to ne - 1 do
    let { G.src = k; dst = l; _ } = G.edge g e in
    for i = 0 to n - 1 do
      (* in_i^e >= alpha_i^l - alpha_i^k *)
      Pb.add_constr problem
        ~name:(Printf.sprintf "def_in_%d_%d" e i)
        (Lp.Expr.of_list
           [ (inv.(e).(i), 1.); (alpha.(l).(i), -1.); (alpha.(k).(i), 1.) ])
        Pb.Ge 0.;
      (* out_i^e >= alpha_i^k - alpha_i^l *)
      Pb.add_constr problem
        ~name:(Printf.sprintf "def_out_%d_%d" e i)
        (Lp.Expr.of_list
           [ (outv.(e).(i), 1.); (alpha.(k).(i), -1.); (alpha.(l).(i), 1.) ])
        Pb.Ge 0.
    done
  done;
  let zvars = ref [] in
  let gvars = ref [] in
  let bw = platform.P.bw in
  for i = 0 to n - 1 do
    let reads =
      List.init (G.n_tasks g) (fun k ->
          (alpha.(k).(i), (G.task g k).Streaming.Task.read_bytes))
    in
    let incoming =
      List.init ne (fun e -> (inv.(e).(i), (G.edge g e).G.data_bytes))
    in
    Pb.add_constr problem
      ~name:(Printf.sprintf "bw_in_%d" i)
      (Lp.Expr.add
         (Lp.Expr.of_list (reads @ incoming))
         (Lp.Expr.term ~coeff:(-.bw) t_var))
      Pb.Le 0.;
    let writes =
      List.init (G.n_tasks g) (fun k ->
          (alpha.(k).(i), (G.task g k).Streaming.Task.write_bytes))
    in
    let outgoing =
      List.init ne (fun e -> (outv.(e).(i), (G.edge g e).G.data_bytes))
    in
    Pb.add_constr problem
      ~name:(Printf.sprintf "bw_out_%d" i)
      (Lp.Expr.add
         (Lp.Expr.of_list (writes @ outgoing))
         (Lp.Expr.term ~coeff:(-.bw) t_var))
      Pb.Le 0.
  done;
  (* Memory (1i); optional sharing via colocation indicators z <= alpha_k,
     z <= alpha_l entering the row with a negative coefficient. *)
  let buff = buffers g in
  List.iter
    (fun i ->
      let terms =
        List.init (G.n_tasks g) (fun k ->
            (alpha.(k).(i), task_buffer_bytes g buff k))
      in
      let sharing =
        if not share_colocated_buffers then []
        else
          List.init ne (fun e ->
              let { G.src = k; dst = l; _ } = G.edge g e in
              let z = Pb.add_var problem ~ub:1. (Printf.sprintf "z_%d_%d" e i) in
              Pb.add_constr problem
                (Lp.Expr.of_list [ (z, 1.); (alpha.(k).(i), -1.) ])
                Pb.Le 0.;
              Pb.add_constr problem
                (Lp.Expr.of_list [ (z, 1.); (alpha.(l).(i), -1.) ])
                Pb.Le 0.;
              zvars := ((e, i), z) :: !zvars;
              (z, -.buff.(e)))
      in
      Pb.add_constr problem
        ~name:(Printf.sprintf "mem_%d" i)
        (Lp.Expr.of_list (terms @ sharing))
        Pb.Le
        (float_of_int (P.spe_memory_budget platform)))
    (P.spes platform);
  (* (1j): number of remote incoming data per SPE. *)
  List.iter
    (fun j ->
      let terms = List.init ne (fun e -> (inv.(e).(j), 1.)) in
      Pb.add_constr problem
        ~name:(Printf.sprintf "dma_in_%d" j)
        (Lp.Expr.of_list terms) Pb.Le
        (float_of_int platform.P.max_dma_in))
    (P.spes platform);
  (* (1k): gamma_i^e >= alpha_i^k + sum_{j in PPEs} alpha_j^l - 1. *)
  List.iter
    (fun i ->
      let gammas =
        List.init ne (fun e ->
            let { G.src = k; dst = l; _ } = G.edge g e in
            let gamma = Pb.add_var problem ~ub:1. (Printf.sprintf "g_%d_%d" e i) in
            gvars := ((e, i), gamma) :: !gvars;
            let ppe_terms =
              List.map (fun j -> (alpha.(l).(j), -1.)) (P.ppes platform)
            in
            Pb.add_constr problem
              ~name:(Printf.sprintf "def_g_%d_%d" e i)
              (Lp.Expr.of_list
                 (((gamma, 1.) :: (alpha.(k).(i), -1.) :: ppe_terms)))
              Pb.Ge (-1.);
            (gamma, 1.))
      in
      Pb.add_constr problem
        ~name:(Printf.sprintf "dma_ppe_%d" i)
        (Lp.Expr.of_list gammas) Pb.Le
        (float_of_int platform.P.max_dma_to_ppe))
    (P.spes platform);
  (* Inter-Cell links: per edge and cell, difference-linearized cross
     indicators over the per-cell alpha masses. *)
  let cross_vars = ref [] in
  if platform.P.n_cells > 1 then begin
    let cell_alpha task c =
      List.filter_map
        (fun i -> if P.cell_of platform i = c then Some (alpha.(task).(i), 1.) else None)
        (List.init n Fun.id)
    in
    for c = 0 to platform.P.n_cells - 1 do
      let outs = ref [] and ins = ref [] in
      for e = 0 to ne - 1 do
        let { G.src = k; dst = l; _ } = G.edge g e in
        let data = (G.edge g e).G.data_bytes in
        let co = Pb.add_var problem ~ub:1. (Printf.sprintf "xo_%d_%d" e c) in
        let ci = Pb.add_var problem ~ub:1. (Printf.sprintf "xi_%d_%d" e c) in
        cross_vars := ((e, c), (co, ci)) :: !cross_vars;
        (* xo >= alpha_cell(k) - alpha_cell(l); xi symmetric. *)
        Pb.add_constr problem
          ~name:(Printf.sprintf "def_xo_%d_%d" e c)
          (Lp.Expr.sum
             [
               Lp.Expr.term co;
               Lp.Expr.neg (Lp.Expr.of_list (cell_alpha k c));
               Lp.Expr.of_list (cell_alpha l c);
             ])
          Pb.Ge 0.;
        Pb.add_constr problem
          ~name:(Printf.sprintf "def_xi_%d_%d" e c)
          (Lp.Expr.sum
             [
               Lp.Expr.term ci;
               Lp.Expr.neg (Lp.Expr.of_list (cell_alpha l c));
               Lp.Expr.of_list (cell_alpha k c);
             ])
          Pb.Ge 0.;
        outs := (co, data) :: !outs;
        ins := (ci, data) :: !ins
      done;
      let add name terms =
        Pb.add_constr problem ~name
          (Lp.Expr.add (Lp.Expr.of_list terms)
             (Lp.Expr.term ~coeff:(-.platform.P.inter_cell_bw) t_var))
          Pb.Le 0.
      in
      add (Printf.sprintf "link_out_%d" c) !outs;
      add (Printf.sprintf "link_in_%d" c) !ins
    done
  end;
  add_combinatorial_cut problem platform g t_var;
  Pb.set_objective problem Pb.Minimize (Lp.Expr.term t_var);
  let zvars = !zvars and gvars = !gvars and cross_vars = !cross_vars in
  let encode mapping =
    let x = Array.make (Pb.n_vars problem) 0. in
    for k = 0 to G.n_tasks g - 1 do
      x.(alpha.(k).(Mapping.pe mapping k)) <- 1.
    done;
    for e = 0 to ne - 1 do
      let { G.src; dst; _ } = G.edge g e in
      let sp = Mapping.pe mapping src and dp = Mapping.pe mapping dst in
      if sp <> dp then begin
        x.(outv.(e).(sp)) <- 1.;
        x.(inv.(e).(dp)) <- 1.
      end
    done;
    List.iter
      (fun ((e, i), z) ->
        let { G.src; dst; _ } = G.edge g e in
        if Mapping.pe mapping src = i && Mapping.pe mapping dst = i then
          x.(z) <- 1.)
      zvars;
    List.iter
      (fun ((e, i), gamma) ->
        let { G.src; dst; _ } = G.edge g e in
        if
          Mapping.pe mapping src = i
          && P.is_ppe platform (Mapping.pe mapping dst)
        then x.(gamma) <- 1.)
      gvars;
    List.iter
      (fun ((e, c), (co, ci)) ->
        let { G.src; dst; _ } = G.edge g e in
        let sc = P.cell_of platform (Mapping.pe mapping src) in
        let dc = P.cell_of platform (Mapping.pe mapping dst) in
        if sc <> dc then begin
          if sc = c then x.(co) <- 1.;
          if dc = c then x.(ci) <- 1.
        end)
      cross_vars;
    let loads =
      Steady_state.loads ~share_colocated_buffers platform g mapping
    in
    x.(t_var) <- Steady_state.period platform loads;
    x
  in
  { problem; t_var; alpha; encode }

let warm_start t platform g mapping =
  let x = Array.make (Pb.n_vars t.problem) 0. in
  for k = 0 to G.n_tasks g - 1 do
    x.(t.alpha.(k).(Mapping.pe mapping k)) <- 1.
  done;
  let l = Steady_state.loads platform g mapping in
  x.(t.t_var) <- Steady_state.period platform l;
  x

let mapping_of_solution t platform g x =
  let n = P.n_pes platform in
  let assign k =
    let best = ref 0 in
    for i = 1 to n - 1 do
      if x.(t.alpha.(k).(i)) > x.(t.alpha.(k).(!best)) then best := i
    done;
    !best
  in
  Mapping.make platform g (Array.init (G.n_tasks g) assign)
