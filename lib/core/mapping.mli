(** A mapping assigns every task of an application graph to one processing
    element of a Cell platform (paper §3.1). All instances of a task are
    processed on that PE; the paper shows this restriction is the right
    trade-off on the Cell (general per-instance mappings need flow control
    and buffers the local stores cannot afford). *)

type t

val make : Cell.Platform.t -> Streaming.Graph.t -> int array -> t
(** [make platform graph assignment] with [assignment.(k)] the PE index of
    task [k].
    @raise Invalid_argument on arity mismatch or out-of-range PE index. *)

val all_on : Cell.Platform.t -> Streaming.Graph.t -> int -> t
(** Every task on the given PE. *)

val all_on_ppe : Cell.Platform.t -> Streaming.Graph.t -> t
(** The paper's speed-up baseline: everything on PPE0. *)

val pe : t -> int -> int
(** PE hosting a task. *)

val n_tasks : t -> int

val tasks_on : t -> int -> int list
(** Tasks hosted by a PE, increasing ids. *)

val used_pes : t -> int list
(** PEs hosting at least one task, increasing. *)

val is_remote : t -> Streaming.Graph.edge -> bool
(** Whether an edge crosses processing elements. *)

val to_array : t -> int array
(** Fresh copy of the assignment. *)

val equal : t -> t -> bool

val fingerprint : t -> int64
(** Order-sensitive FNV-1a hash of the assignment — a stable,
    platform-independent key used to break period ties
    deterministically in parallel searches. *)

val fingerprint_array : int array -> int64
(** {!fingerprint} on a raw assignment array (no validation). *)

val pp : Cell.Platform.t -> Streaming.Graph.t -> Format.formatter -> t -> unit
(** Per-PE listing of the hosted tasks. *)
