(** Mapping heuristics.

    [greedy_mem] and [greedy_cpu] are the paper's reference heuristics
    (§6.3): both walk the tasks in topological order and never reconsider a
    decision. The remaining strategies address the paper's §7 observation
    that "simple heuristics fail": [lp_rounding] rounds the LP relaxation
    of the mapping program and [local_search] hill-climbs single-task moves.

    All heuristics place tasks through the incremental {!Eval} engine,
    which performs the feasibility checks (SPE memory and DMA-queue
    limits) as tasks are placed and falls back to the PPE when no SPE
    fits. Forced PPE placements that would overflow a predecessor SPE's
    to-PPE DMA queue are repaired before returning: the returned mapping
    never carries a {!Steady_state.Dma_to_ppe} violation. Memory or
    incoming-DMA infeasibility can still occur when the graph fits
    nowhere (e.g. a single task's buffers exceed every local store), so
    callers selecting among candidates should still consult
    {!Steady_state.feasible} or {!Eval.feasible}. *)

val ppe_only : Cell.Platform.t -> Streaming.Graph.t -> Mapping.t
(** Everything on PPE0 — the speed-up baseline. *)

val greedy_mem : Cell.Platform.t -> Streaming.Graph.t -> Mapping.t
(** Paper §6.3: among the SPEs with enough free local store (and DMA slots)
    for the task and its buffers, pick the one with the least loaded
    memory; if none fits, the task goes to the PPE. *)

val greedy_cpu : Cell.Platform.t -> Streaming.Graph.t -> Mapping.t
(** Paper §6.3: among all PEs (SPEs and PPE) with enough memory, pick the
    one with the smallest computation load. *)

val density_pack : Cell.Platform.t -> Streaming.Graph.t -> Mapping.t
(** Offload tasks to the SPEs by decreasing [w_ppe / buffer-footprint]
    value density (the fractional-knapsack order): the right structure when
    SPE local stores are the binding resource. Tasks that fit nowhere stay
    on the PPE. *)

val random : rng:Support.Rng.t -> Cell.Platform.t -> Streaming.Graph.t -> Mapping.t
(** Uniformly random PE per task (may be infeasible); for tests. *)

val random_feasible :
  rng:Support.Rng.t -> Cell.Platform.t -> Streaming.Graph.t -> Mapping.t
(** Seeded random placement walk in topological order, choosing
    uniformly among the PEs the incremental feasibility check admits
    (PPE0 when none), followed by the to-PPE DMA repair pass — the
    restart generator for {!Portfolio}. A pure function of the seed. *)

val local_search :
  ?options:Eval.options ->
  ?max_passes:int ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  Mapping.t ->
  Mapping.t
(** Best-improvement hill climbing over single-task moves and pairwise
    swaps (swaps matter when the local stores are full and no single move
    is feasible), keeping feasibility; stops at a local optimum or after
    [max_passes] (default 50) sweeps. The input mapping must be feasible.
    Candidates are probed through {!Eval.probe_move}/{!Eval.probe_swap} —
    O(degree) per candidate instead of a full steady-state recompute —
    under the given evaluation [options] (default {!Eval.default_options},
    the paper's model). *)

val lp_rounding :
  ?improve:bool -> Cell.Platform.t -> Streaming.Graph.t -> Mapping.t
(** Solve the LP relaxation of the compact mapping program, assign each
    task to its largest feasible [alpha] component (PPE as fallback), then
    run {!local_search} unless [improve] is [false]. *)

val best_feasible :
  Cell.Platform.t ->
  Streaming.Graph.t ->
  (string * Mapping.t) list ->
  (string * Mapping.t) option
(** Highest-throughput feasible mapping among the candidates. *)

val standard_candidates :
  ?with_lp:bool ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  (string * Mapping.t) list
(** [ppe-only; greedy-mem; greedy-cpu; density-pack], plus [chain-dp]
    ({!Chain_dp}) when the graph is a chain, plus [lp-round] when [with_lp]
    (default true); in that order. *)
