module G = Streaming.Graph
module P = Cell.Platform

type engine = Exact | Search | Auto

type options = {
  rel_gap : float;
  time_limit : float;
  max_nodes : int;
  engine : engine;
  root_lp : bool;
  share_colocated_buffers : bool;
}

let default_options =
  {
    rel_gap = 0.05;
    time_limit = 60.;
    max_nodes = 10_000_000;
    engine = Auto;
    root_lp = false;
    share_colocated_buffers = false;
  }

type result = {
  mapping : Mapping.t;
  period : float;
  throughput : float;
  lower_bound : float;
  gap : float;
  proven_within_gap : bool;
  nodes : int;
  solve_time : float;
}

let predicted_throughput r = r.throughput

let finish ~share ~start ~platform ~g ~mapping ~lower_bound ~proven ~nodes =
  let period =
    Eval.scratch_period
      ~options:(Eval.make_options ~share_colocated_buffers:share ())
      platform g mapping
  in
  let lower_bound = Float.min lower_bound period in
  {
    mapping;
    period;
    throughput = (if period > 0. then 1. /. period else infinity);
    lower_bound;
    gap = (if period > 0. then (period -. lower_bound) /. period else 0.);
    proven_within_gap = proven;
    nodes;
    solve_time = Unix.gettimeofday () -. start;
  }

(* Decide between the generic MILP branch & bound and the specialized
   search: the former re-solves a large LP per node, so reserve it for
   small instances. *)
let pick_engine options platform g =
  match options.engine with
  | (Exact | Search) as e -> e
  | Auto ->
      if G.n_tasks g * P.n_pes platform <= 40 then Exact else Search

let solve_exact ~span ~options ~should_stop ~start platform g incumbent =
  let share = options.share_colocated_buffers in
  (* Combinatorial pre-check: when the closed-form §5 bound already
     proves the (polished) incumbent within [rel_gap], no LP is ever
     built or solved. *)
  let comb = Bounds.root_bound (Bounds.create platform g) in
  let inc_period =
    Eval.scratch_period
      ~options:(Eval.make_options ~share_colocated_buffers:share ())
      platform g incumbent
  in
  if inc_period > 0. && (inc_period -. comb) /. inc_period <= options.rel_gap
  then
    finish ~share ~start ~platform ~g ~mapping:incumbent ~lower_bound:comb
      ~proven:true ~nodes:0
  else begin
  let formulation =
    Milp_formulation.build_compact
      ~share_colocated_buffers:options.share_colocated_buffers platform g
  in
  let warm = Milp_formulation.warm_start formulation platform g incumbent in
  let bb_options =
    {
      Lp.Branch_bound.rel_gap = options.rel_gap;
      max_nodes = options.max_nodes;
      time_limit = options.time_limit;
      int_tol = 1e-6;
    }
  in
  let outcome =
    Lp.Branch_bound.solve ~span ~options:bb_options ~should_stop
      ~warm_start:warm formulation.Milp_formulation.problem
  in
  let mapping, proven =
    match outcome.Lp.Branch_bound.best with
    | Some sol ->
        let m =
          Milp_formulation.mapping_of_solution formulation platform g
            sol.Lp.Simplex.x
        in
        (* The MILP constraints imply feasibility, but double-check (and
           fall back to the incumbent) to stay safe against numerics. *)
        if Eval.scratch_feasible platform g m then
          (m, outcome.Lp.Branch_bound.status = Lp.Branch_bound.Optimal)
        else (incumbent, false)
    | None -> (incumbent, false)
  in
  let lower_bound = Float.max comb outcome.Lp.Branch_bound.bound in
  finish ~share:options.share_colocated_buffers ~start ~platform ~g ~mapping
    ~lower_bound ~proven ~nodes:outcome.Lp.Branch_bound.nodes
  end

(* The dense-inverse simplex is only trusted on LPs small enough to stay
   numerically healthy; beyond this the root bound comes from the search's
   own combinatorial relaxation. *)
let root_lp_row_limit = 2000

let solve_search ~span ~options ~should_stop ~start ?pool platform g incumbent =
  let root_lp_bound =
    if not options.root_lp then 0.
    else begin
      let formulation =
        Milp_formulation.build_compact
          ~share_colocated_buffers:options.share_colocated_buffers platform g
      in
      let problem = formulation.Milp_formulation.problem in
      if Lp.Problem.n_constrs problem > root_lp_row_limit then 0.
      else
        match Lp.Simplex.solve problem with
        | Lp.Simplex.Optimal sol -> (
            (* Only trust a bound that is actually primal feasible. *)
            match
              Lp.Problem.check_feasible ~tol:1e-5 ~check_integrality:false
                problem sol.Lp.Simplex.x
            with
            | Ok () -> Float.max 0. sol.Lp.Simplex.objective
            | Error _ -> 0.)
        | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> 0.
        | exception Failure _ -> 0.
    end
  in
  let search_options =
    {
      Mapping_search.rel_gap = options.rel_gap;
      max_nodes = options.max_nodes;
      dive_nodes = Mapping_search.default_options.Mapping_search.dive_nodes;
      time_limit = options.time_limit;
      share_colocated_buffers = options.share_colocated_buffers;
    }
  in
  let r =
    Mapping_search.solve ~span ~options:search_options ~should_stop ~incumbent
      ~extra_lower_bound:root_lp_bound ?pool platform g
  in
  (* Polish the incumbent; this can only improve it, and the bound remains
     valid. (The plain local search is conservative under buffer sharing:
     it only accepts plain-feasible mappings, which are a subset.) *)
  let mapping = Heuristics.local_search platform g r.Mapping_search.mapping in
  let mapping =
    let model_period m =
      Eval.scratch_period
        ~options:
          (Eval.make_options
             ~share_colocated_buffers:options.share_colocated_buffers ())
        platform g m
    in
    if model_period mapping < model_period r.Mapping_search.mapping then mapping
    else r.Mapping_search.mapping
  in
  finish ~share:options.share_colocated_buffers ~start ~platform ~g ~mapping
    ~lower_bound:r.Mapping_search.lower_bound
    ~proven:r.Mapping_search.optimal_within_gap ~nodes:r.Mapping_search.nodes

let solve ?(span = Obs.Span.null) ?(options = default_options)
    ?(should_stop = fun () -> false) ?pool platform g =
  let start = Unix.gettimeofday () in
  let incumbent =
    match
      Heuristics.best_feasible platform g
        (Heuristics.standard_candidates ~with_lp:false platform g)
    with
    | Some (_, m) -> Heuristics.local_search platform g m
    | None -> Heuristics.ppe_only platform g
  in
  match pick_engine options platform g with
  | Exact -> solve_exact ~span ~options ~should_stop ~start platform g incumbent
  | Search ->
      solve_search ~span ~options ~should_stop ~start ?pool platform g incumbent
  | Auto -> assert false
