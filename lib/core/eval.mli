(** Incremental evaluation engine: the single source of truth for the
    resource state, period and feasibility of a (possibly partial) mapping.

    Every layer that explores mappings — {!Heuristics} placement and local
    search, the {!Mapping_search} branch and bound, {!Replication} and the
    resilience controller's remap loop — needs the same three questions
    answered for a stream of closely related candidates: what is the
    period, what is the bottleneck, is the mapping feasible. Recomputing
    {!Steady_state.loads} from scratch costs O(tasks + edges) per
    candidate; this engine materializes the full resource state once and
    maintains it under task moves in O(degree(task)) amortized work.

    {b Exactness.} The engine does not keep running float sums (which
    drift under add/subtract cycles). Each per-PE resource row is cached
    and, when a mutation dirties it, recomputed over exactly the
    contributions {!Steady_state.loads} would accumulate for that PE, in
    the same order — so every accessor returns values {e bitwise equal} to
    a from-scratch [Steady_state] evaluation of the same assignment, for
    every combination of {!options}. Mutations only mark the O(degree)
    affected rows dirty; accessors validate lazily. DMA-queue counters are
    integers and are maintained incrementally (integer arithmetic is
    exact).

    {b Partial mappings.} Tasks may be unassigned (PE [-1]); an edge
    contributes to communication, DMA and memory accounting only through
    its assigned endpoints. On a complete assignment the state coincides
    with [Steady_state]. This is what lets branch-and-bound nodes extend
    an engine instead of rebuilding partial loads. *)

(** {1 Options} *)

type options = {
  share_colocated_buffers : bool;
      (** The §7 memory optimization: a colocated edge occupies one buffer
          instead of separate in/out copies. Default [false], as in the
          paper. *)
  tight_pipeline : bool;
      (** Compute buffer sizes from the mapping-aware
          {!Steady_state.first_periods}, skipping the communication period
          of colocated edges (§4.2 future work). Buffer sizes then depend
          on the whole assignment, so memory rows lose the O(degree)
          locality: the engine transparently falls back to a full buffer
          recomputation when a mutation changes any edge's colocation.
          Default [false]. *)
}

val default_options : options
(** Both [false] — the paper's model. *)

val make_options :
  ?share_colocated_buffers:bool -> ?tight_pipeline:bool -> unit -> options
(** Build an options record from the historical optional arguments; the
    bridge for call sites still written against the
    [?share_colocated_buffers]/[?tight_pipeline] labels. *)

(** {1 Construction} *)

type t

val create :
  ?options:options -> Cell.Platform.t -> Streaming.Graph.t -> Mapping.t -> t
(** Engine positioned on a complete mapping. O(tasks + edges). *)

val create_empty : ?options:options -> Cell.Platform.t -> Streaming.Graph.t -> t
(** Engine with every task unassigned — the root of a placement walk or a
    branch-and-bound tree. *)

val options : t -> options

val platform : t -> Cell.Platform.t

val graph : t -> Streaming.Graph.t

(** {1 Inspection} *)

val pe_of : t -> int -> int
(** Current PE of a task, [-1] when unassigned. *)

val n_assigned : t -> int

val mapping : t -> Mapping.t
(** Snapshot of a complete assignment.
    @raise Invalid_argument if some task is unassigned. *)

val loads : t -> Steady_state.loads
(** Fresh copy of the current resource state; bitwise equal to
    [Steady_state.loads] on the same (complete) assignment. *)

val period : t -> float
(** Smallest feasible period of the current state, exactly
    [Steady_state.period platform (loads t)] without the copy. O(PEs)
    plus the lazy revalidation of dirtied rows. *)

val bottleneck : t -> Steady_state.resource * float
(** Why the period is what it is; ties broken like
    {!Steady_state.bottleneck}. *)

val violations : t -> Steady_state.violation list
(** SPE memory and DMA-queue violations of the current state, identical
    to {!Steady_state.violations} on a complete assignment. *)

val feasible : t -> bool
(** [violations t = []], without materializing the list. *)

val compute_on : t -> int -> float
(** Committed compute seconds per period on a PE. *)

val memory_on : t -> int -> float
(** Committed local-store bytes on a PE. *)

val bytes_in_on : t -> int -> float
(** Committed input-interface bytes per period on a PE (task reads plus
    incoming remote edges). *)

val bytes_out_on : t -> int -> float
(** Committed output-interface bytes per period on a PE. *)

val dma_in_on : t -> int -> int

val dma_to_ppe_on : t -> int -> int

val task_buffer_bytes : t -> int -> float
(** Sum of the buffer sizes of a task's incident edges — its local-store
    footprint before any colocation saving. *)

val assign_memory_delta : t -> task:int -> pe:int -> float
(** Memory the PE would gain by assigning the (unassigned) task to it:
    the task's incident buffers, minus one copy of every buffer shared
    with a neighbour already on [pe] when [share_colocated_buffers]. *)

(** {1 Mutation}

    [assign]/[unassign] are the branch-and-bound primitives: the caller
    owns the discipline (they are not journaled). [apply_move] and
    [apply_swap] journal their inverse; [undo] pops the journal. The two
    families can be mixed as long as every journaled mutation is undone
    before the surrounding [assign]/[unassign] frame is closed. *)

val assign : t -> task:int -> pe:int -> unit
(** Place an unassigned task. O(degree).
    @raise Invalid_argument if the task is assigned or [pe] out of range. *)

val unassign : t -> task:int -> unit
(** Remove a task's assignment. O(degree).
    @raise Invalid_argument if the task is not assigned. *)

val apply_move : t -> task:int -> pe:int -> unit
(** Reassign an assigned task, journaling the inverse for {!undo}. *)

val apply_swap : t -> int -> int -> unit
(** Exchange the PEs of two assigned tasks (one journal entry). *)

val undo : t -> unit
(** Revert the most recent un-undone {!apply_move}/{!apply_swap}.
    @raise Invalid_argument on an empty journal. *)

val undo_depth : t -> int
(** Number of journaled mutations not yet undone. *)

(** {1 Probing (evaluate without committing)} *)

val probe_move : t -> task:int -> pe:int -> float * bool
(** Period and feasibility the state would have after
    [apply_move ~task ~pe]; the state is left untouched. *)

val probe_swap : t -> int -> int -> float * bool
(** Same for {!apply_swap}. *)

val delta_period_of_move : t -> task:int -> pe:int -> float
(** [fst (probe_move t ~task ~pe) -. period t]: negative when the move
    improves the period. *)

(** {1 Scratch wrappers}

    One-shot conveniences routing the historical
    [?share_colocated_buffers]/[?tight_pipeline] plumbing through an
    {!options} record; they evaluate through a throwaway engine and are
    the recommended spelling for single evaluations. *)

val scratch_period :
  ?options:options -> Cell.Platform.t -> Streaming.Graph.t -> Mapping.t -> float

val scratch_feasible :
  ?options:options -> Cell.Platform.t -> Streaming.Graph.t -> Mapping.t -> bool
