(** Shared best-solution cell for concurrent searches.

    An incumbent is the best feasible mapping seen so far, compared by
    the {e strict total order} (period, then {!Mapping.fingerprint},
    then the raw assignment lexicographically). Because the order is
    total and candidate insertion is a retry-CAS fold over it, the
    final content depends only on the {e set} of candidates offered,
    never on timing or completion order — this is what lets parallel
    portfolio search and branch-and-bound return results bitwise equal
    to their sequential counterparts. *)

type entry = private { period : float; fp : int64; arr : int array }

type t

val create : unit -> t
(** Empty: {!period} reads as [infinity]. *)

val of_option : (float * int array) option -> t
(** Seeded with an initial solution (the array is copied). *)

val entry : period:float -> int array -> entry
(** Build a candidate (copies the array, computes the fingerprint). *)

val better : entry -> entry -> bool
(** [better a b] — strictly better under the total order above. *)

val offer : t -> period:float -> int array -> bool
(** Install the candidate iff it beats the current content; [true]
    when it did. Lock-free; safe from any domain. *)

val offer_entry : t -> entry -> bool

val best : t -> entry option

val period : t -> float
(** Period of the current best, [infinity] when empty. *)
