(** Closed-form combinatorial lower bounds on the achievable period.

    The paper's §5 MILP bounds the period through per-PE compute rows
    (1b) and per-interface bandwidth rows (1c)/(1d); relaxing the
    assignment variables fractionally and aggregating each family over
    its pool yields bounds that need no LP at all:

    - {e per task}: whatever PE hosts task [k] spends at least its
      cheapest admissible compute cost and moves the task's own reads
      and writes through one input and one output interface;
    - {e unrelated-machine load}: the cheapest costs spread evenly over
      every PE, with the SPE-ineligible tasks' PPE work spread over the
      PPE pool alone;
    - {e interface}: all reads (writes) spread evenly over every input
      (output) interface.

    They are computed once per instance in O(tasks + edges) and shared
    by every substrate: {!Mapping_search} seeds its root bound and
    suffix pre-checks from the arrays, {!Milp_formulation} adds
    [T >= root] as a cut so even the root LP relaxation starts at the
    combinatorial bound, and {!Milp_solver} can prove an incumbent
    within gap {e before any LP solve}. *)

type t = {
  n_pes : int;
  n_ppes : int;
  bw : float;  (** Per-interface bandwidth, bytes/s each direction. *)
  min_w : float array;
      (** Per task: cheapest effective compute cost over its admissible
          PEs (SPE-ineligible tasks only have their PPE cost). *)
  reads : float array;  (** Per task: input-interface bytes per period. *)
  writes : float array;
  forced_wppe : float array;
      (** Effective PPE cost for tasks whose buffers exceed the SPE
          local store; [0.] for SPE-eligible tasks. *)
  root : float;  (** Best static lower bound on the period. *)
}

val create : Cell.Platform.t -> Streaming.Graph.t -> t
(** O(tasks + edges); uses the paper's mapping-independent
    {!Steady_state.buffer_sizes} for SPE eligibility, which is valid
    with or without colocated-buffer sharing. *)

val root_bound : t -> float
(** [root_bound t = t.root]. *)

val task_lb : t -> int -> float
(** Lower bound on the period contributed by task [k] alone:
    [max min_w.(k) (max reads.(k) writes.(k) / bw)]. The root bound is
    the maximum of these maxed with the pool averages. *)
