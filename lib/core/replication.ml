module G = Streaming.Graph
module P = Cell.Platform

type t = { reps : int array array (* task -> replica PEs, round-robin *) }

let make platform g spec =
  if Array.length spec <> G.n_tasks g then
    invalid_arg "Replication.make: arity mismatch with the graph";
  let n = P.n_pes platform in
  let check k pes =
    if pes = [] then invalid_arg "Replication.make: empty replica list";
    List.iter
      (fun pe ->
        if pe < 0 || pe >= n then
          invalid_arg "Replication.make: PE index out of range")
      pes;
    if List.length (List.sort_uniq compare pes) <> List.length pes then
      invalid_arg "Replication.make: duplicate replicas";
    if List.length pes > 1 && (G.task g k).Streaming.Task.stateful then
      invalid_arg "Replication.make: stateful tasks cannot be replicated"
  in
  Array.iteri check spec;
  { reps = Array.map Array.of_list spec }

let of_mapping platform g mapping =
  make platform g
    (Array.init (G.n_tasks g) (fun k -> [ Mapping.pe mapping k ]))

let replicas t k = Array.to_list t.reps.(k)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

(* Remote traffic of edge e per instance, averaged over one hyper-period:
   data instance j is produced by replica [j mod r_k] of the source and
   needed by the consumer replicas handling instances j-peek .. j. Each
   distinct remote target receives one copy. Returns per-(src_pe, dst_pe)
   average copies per instance. *)
let edge_flows g t e =
  let { G.src; dst; _ } = G.edge g e in
  let peek = (G.task g dst).Streaming.Task.peek in
  let rs = t.reps.(src) and rd = t.reps.(dst) in
  let cycle = lcm (Array.length rs) (Array.length rd) in
  let counts = Hashtbl.create 8 in
  for j = 0 to cycle - 1 do
    let producer = rs.(j mod Array.length rs) in
    (* Consumer instances i with j in [i, i+peek], i.e. i in [j-peek, j]. *)
    let targets = Hashtbl.create 4 in
    let rd_len = Array.length rd in
    for i = j - peek to j do
      (* Steady state: no stream-start truncation; proper modulo for the
         negative indices of the first peek window. *)
      let idx = ((i mod rd_len) + rd_len) mod rd_len in
      Hashtbl.replace targets rd.(idx) ()
    done;
    Hashtbl.iter
      (fun target () ->
        if target <> producer then begin
          let key = (producer, target) in
          let cur = try Hashtbl.find counts key with Not_found -> 0 in
          Hashtbl.replace counts key (cur + 1)
        end)
      targets
  done;
  Hashtbl.fold
    (fun key count acc -> (key, float_of_int count /. float_of_int cycle) :: acc)
    counts []

let duplication_factor g t e =
  List.fold_left (fun acc (_, copies) -> acc +. copies) 0. (edge_flows g t e)

let loads platform g t =
  let n = P.n_pes platform in
  let compute = Array.make n 0. in
  let bytes_in = Array.make n 0. in
  let bytes_out = Array.make n 0. in
  let memory = Array.make n 0. in
  let dma_in = Array.make n 0 in
  let dma_to_ppe = Array.make n 0 in
  let link_out = Array.make platform.P.n_cells 0. in
  let link_in = Array.make platform.P.n_cells 0. in
  let fp = Steady_state.first_periods g in
  let buff = Steady_state.buffer_sizes ~first_periods:fp g in
  for k = 0 to G.n_tasks g - 1 do
    let task = G.task g k in
    let r = float_of_int (Array.length t.reps.(k)) in
    Array.iter
      (fun pe ->
        let cls = P.pe_class platform pe in
        let w = Streaming.Task.w task cls in
        let w = if cls = P.PPE then w /. platform.P.ppe_speedup else w in
        compute.(pe) <- compute.(pe) +. (w /. r);
        bytes_in.(pe) <- bytes_in.(pe) +. (task.Streaming.Task.read_bytes /. r);
        bytes_out.(pe) <- bytes_out.(pe) +. (task.Streaming.Task.write_bytes /. r);
        (* Every replica allocates the task's full buffers (tracked on all
           PEs like Steady_state.loads; only SPEs are budget-checked). *)
        let sum = List.fold_left (fun acc e -> acc +. buff.(e)) 0. in
        memory.(pe) <-
          memory.(pe) +. sum (G.out_edges g k) +. sum (G.in_edges g k))
      t.reps.(k)
  done;
  for e = 0 to G.n_edges g - 1 do
    let data = (G.edge g e).G.data_bytes in
    List.iter
      (fun ((src_pe, dst_pe), copies) ->
        bytes_out.(src_pe) <- bytes_out.(src_pe) +. (data *. copies);
        bytes_in.(dst_pe) <- bytes_in.(dst_pe) +. (data *. copies);
        let sc = P.cell_of platform src_pe and dc = P.cell_of platform dst_pe in
        if sc <> dc then begin
          link_out.(sc) <- link_out.(sc) +. (data *. copies);
          link_in.(dc) <- link_in.(dc) +. (data *. copies)
        end;
        (* One DMA slot per active producer-consumer replica pair. *)
        if P.is_spe platform dst_pe then dma_in.(dst_pe) <- dma_in.(dst_pe) + 1;
        if P.is_spe platform src_pe && P.is_ppe platform dst_pe then
          dma_to_ppe.(src_pe) <- dma_to_ppe.(src_pe) + 1)
      (edge_flows g t e)
  done;
  {
    Steady_state.compute;
    bytes_in;
    bytes_out;
    memory;
    dma_in;
    dma_to_ppe;
    link_out;
    link_in;
  }

let period platform g t = Steady_state.period platform (loads platform g t)

let throughput platform g t =
  let p = period platform g t in
  if p <= 0. then infinity else 1. /. p

(* The constraint checks are the single shared code path in
   Steady_state — only the load model (replica flows) differs here. *)
let violations platform g t =
  Steady_state.violations_of_loads platform (loads platform g t)
