(** Portfolio mapping search: race the constructive heuristics and a
    set of seeded random restarts, keep the best.

    Entrants — GreedyMem, GreedyCpu (each polished by
    {!Heuristics.local_search}), the PPE-only safety net, and
    [restarts] seeded {!Heuristics.random_feasible} walks (each with
    its own [Support.Rng] stream derived from [seed], also polished) —
    run independently on private {!Eval} states and fold their scores
    into a shared {!Incumbent.t}. Periods are canonical
    ({!Eval.scratch_period}) and the incumbent order is strict and
    total (period, then fingerprint), so the winner is a pure function
    of [(seed, restarts, graph, platform)]: running on a {!Par.Pool.t}
    of any size returns bitwise the same mapping and period as the
    sequential fold. *)

val default_restarts : int
(** 6 *)

val default_seed : int

type candidate = {
  name : string;
  mapping : Mapping.t;  (** after local search *)
  period : float;  (** canonical; [infinity] when infeasible *)
  feasible : bool;
}

type result = {
  best : Mapping.t;
  period : float;
  lower_bound : float;
      (** Closed-form {!Bounds.root_bound} of the instance — heuristics
          prove nothing on their own, but the combinatorial bound gives
          every caller an honest optimality gap for free. *)
  candidates : candidate list;  (** in entrant order, for reporting *)
}

val solve :
  ?span:Obs.Span.ctx ->
  ?pool:Par.Pool.t ->
  ?should_stop:(unit -> bool) ->
  ?restarts:int ->
  ?seed:int ->
  ?max_passes:int ->
  ?share_colocated_buffers:bool ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  result
(** Defaults: [restarts = 6], [seed = 0x5EED], [max_passes = 50] (local
    search), sequential when [pool] is absent.

    [span] (default {!Obs.Span.null}: free) records a ["portfolio"]
    span with one ["entrant:<name>"] child per entrant run, annotated
    with its canonical period and feasibility. Entrant names are the
    span path components, so the merged stream is pool-size
    independent (timestamps aside).

    [should_stop] (default: never) is checked before each entrant: once
    it returns [true], remaining entrants other than the always-run
    ppe-only safety net are skipped (and omitted from [candidates]), so
    the best-so-far is returned quickly and is always feasible. A
    cancelled result is timing-dependent — the bitwise-determinism
    contract only covers runs where [should_stop] never fired. *)
