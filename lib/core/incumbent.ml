type entry = { period : float; fp : int64; arr : int array }

type t = entry option Atomic.t

let entry ~period arr =
  let arr = Array.copy arr in
  { period; fp = Mapping.fingerprint_array arr; arr }

let create () = Atomic.make None

let of_option = function
  | None -> Atomic.make None
  | Some (period, arr) -> Atomic.make (Some (entry ~period arr))

(* Strict total order: period, then unsigned fingerprint, then the
   assignment itself lexicographically. No epsilon anywhere — an
   epsilon relation is not transitive, and only a total order makes
   the minimum independent of the order in which candidates arrive
   (the keystone of parallel/sequential bitwise equality). The array
   tiebreak guarantees antisymmetry even under fingerprint collisions. *)
let better a b =
  if a.period < b.period then true
  else if a.period > b.period then false
  else
    let c = Int64.unsigned_compare a.fp b.fp in
    if c <> 0 then c < 0 else Stdlib.compare a.arr b.arr < 0

let rec offer_entry t e =
  let cur = Atomic.get t in
  let improves = match cur with None -> true | Some b -> better e b in
  if not improves then false
  else if Atomic.compare_and_set t cur (Some e) then true
  else offer_entry t e

let offer t ~period arr = offer_entry t (entry ~period arr)

let best t = Atomic.get t

let period t =
  match Atomic.get t with None -> infinity | Some e -> e.period
