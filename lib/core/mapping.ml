type t = int array

let make platform graph assignment =
  if Array.length assignment <> Streaming.Graph.n_tasks graph then
    invalid_arg "Mapping.make: arity mismatch with the graph";
  let n = Cell.Platform.n_pes platform in
  Array.iter
    (fun pe ->
      if pe < 0 || pe >= n then invalid_arg "Mapping.make: PE index out of range")
    assignment;
  Array.copy assignment

let all_on platform graph pe =
  make platform graph (Array.make (Streaming.Graph.n_tasks graph) pe)

let all_on_ppe platform graph = all_on platform graph 0

let pe t k =
  if k < 0 || k >= Array.length t then invalid_arg "Mapping.pe: task id";
  t.(k)

let n_tasks t = Array.length t

let tasks_on t pe =
  List.filter (fun k -> t.(k) = pe) (List.init (Array.length t) Fun.id)

let used_pes t =
  Array.to_list t |> List.sort_uniq compare

let is_remote t (edge : Streaming.Graph.edge) =
  t.(edge.Streaming.Graph.src) <> t.(edge.Streaming.Graph.dst)

let to_array = Array.copy

let equal = ( = )

(* FNV-1a over PE indices (offset by one so a leading PPE0 run still
   stirs the state). 64-bit, endian-free, stable across runs — the
   deterministic tiebreak key for equal-period incumbents. *)
let fingerprint_array (a : int array) =
  Array.fold_left
    (fun h pe -> Support.Fnv.add_int h (pe + 1))
    Support.Fnv.empty a

let fingerprint = fingerprint_array

let pp platform graph ppf t =
  Format.fprintf ppf "@[<v>";
  let print_pe pe =
    match tasks_on t pe with
    | [] -> ()
    | tasks ->
        let names =
          List.map (fun k -> (Streaming.Graph.task graph k).Streaming.Task.name) tasks
        in
        Format.fprintf ppf "%s: %s@," (Cell.Platform.pe_name platform pe)
          (String.concat " " names)
  in
  List.iter print_pe (List.init (Cell.Platform.n_pes platform) Fun.id);
  Format.fprintf ppf "@]"
