module P = Cell.Platform
module G = Streaming.Graph
module SS = Cellsched.Steady_state
module R = Simulator.Runtime
module T = Simulator.Trace

type policy = Heuristic | Refined

type options = {
  policy : policy;
  window : int;
  degradation_threshold : float;
  remap_cost : float;
  refine_time_limit : float;
  state_bytes_per_task : float;
  restart_overhead : float;
  sim_options : R.options;
}

let default_options =
  {
    policy = Heuristic;
    window = 32;
    degradation_threshold = 0.5;
    remap_cost = 2e-3;
    refine_time_limit = 1.0;
    state_bytes_per_task = 16. *. 1024.;
    restart_overhead = 1e-3;
    sim_options = R.default_options;
  }

type incident = {
  failed_pes : int list;
  stall_time : float;
  detection_time : float;
  recovery_time : float;
  remap_cost : float;
  migration_cost : float;
  migrated_tasks : int;
  lost_instances : int;
  strategy : string;
  predicted_period : float;
}

type report = {
  requested : int;
  completed : int;
  recovered : bool;
  makespan : float;
  completion_times : float array;
  incidents : incident list;
  baseline_period : float;
  final_period : float;
}

let validate_options o =
  if o.window < 1 then invalid_arg "Controller.run: window must be >= 1";
  if not (o.degradation_threshold > 0. && o.degradation_threshold < 1.) then
    invalid_arg "Controller.run: degradation_threshold must be in (0, 1)";
  if
    o.remap_cost < 0. || o.refine_time_limit < 0.
    || o.state_bytes_per_task < 0.
    || o.restart_overhead < 0.
  then invalid_arg "Controller.run: negative cost"

(* When did the windowed-completion-rate monitor raise the alarm?  The
   monitor tracks the rate over the last [window] completions; once
   completions stop, the observed rate at time [t] is
   [window / (t - t_old)], which crosses [threshold * pre-fault rate] at
   [t_last + span * (1/threshold - 1)] where [span] is the length of the
   last full window. Early faults (fewer than [window] completions) fall
   back to the predicted period for the window span. *)
let detection_delay opts ~fallback_period (r : R.fault_outcome) =
  let n = r.R.completed in
  let times = r.R.metrics.R.completion_times in
  let span =
    if n > opts.window then times.(n - 1) -. times.(n - 1 - opts.window)
    else float_of_int opts.window *. fallback_period
  in
  let t_last = if n > 0 then times.(n - 1) else 0. in
  Float.max t_last r.R.stall_time
  +. (span *. ((1. /. opts.degradation_threshold) -. 1.))

(* Mask the failed PEs out of the platform: survivors keep their class and
   parameters, the platform is flattened to a single Cell. Returns the
   reduced platform and the new-index -> old-index translation, or [None]
   when no PPE survives. *)
let reduce platform survivors =
  let alive = List.filter (fun i -> survivors.(i)) (P.ppes platform) in
  let alive_spes =
    List.filter (fun i -> survivors.(i)) (P.spes platform)
  in
  match alive with
  | [] -> None
  | ppes ->
      let pe_map = Array.of_list (ppes @ alive_spes) in
      let p' =
        P.make ~n_ppe:(List.length ppes) ~n_spe:(List.length alive_spes)
          ~bw:platform.P.bw ~eib_bw:platform.P.eib_bw
          ~local_store:platform.P.local_store ~code_size:platform.P.code_size
          ~max_dma_in:platform.P.max_dma_in
          ~max_dma_to_ppe:platform.P.max_dma_to_ppe
          ~ppe_speedup:platform.P.ppe_speedup ~n_cells:1
          ~inter_cell_bw:platform.P.inter_cell_bw ()
      in
      Some (p', pe_map)

let remap options platform g =
  let with_lp = options.policy = Refined in
  let name, m =
    match
      Cellsched.Heuristics.best_feasible platform g
        (Cellsched.Heuristics.standard_candidates ~with_lp platform g)
    with
    | Some (name, m) -> (name, m)
    | None -> ("ppe-only", Cellsched.Heuristics.ppe_only platform g)
  in
  match options.policy with
  | Heuristic -> (name, m, options.remap_cost)
  | Refined ->
      let search_options =
        {
          Cellsched.Mapping_search.default_options with
          time_limit = options.refine_time_limit;
        }
      in
      let r =
        Cellsched.Mapping_search.solve ~options:search_options ~incumbent:m
          platform g
      in
      ( "search+" ^ name,
        r.Cellsched.Mapping_search.mapping,
        options.remap_cost +. options.refine_time_limit )

(* Bytes to move so the stream can resume under [new_mapping]: per-task
   state plus the stream buffers adjacent to every task that changes PE
   (an edge is counted once per moved endpoint: each endpoint holds its
   own copy of the double buffer). *)
let migration options g buffers cur_mapping survivors old_to_new new_mapping =
  let moved = ref 0 and bytes = ref 0. in
  for k = 0 to G.n_tasks g - 1 do
    let old_pe = Cellsched.Mapping.pe cur_mapping k in
    let new_pe = Cellsched.Mapping.pe new_mapping k in
    let stays = survivors.(old_pe) && old_to_new.(old_pe) = new_pe in
    if not stays then begin
      incr moved;
      bytes := !bytes +. options.state_bytes_per_task;
      List.iter
        (fun e -> bytes := !bytes +. buffers.(e))
        (G.in_edges g k @ G.out_edges g k)
    end
  done;
  (!moved, !bytes)

let period_of platform g mapping =
  Cellsched.Eval.period (Cellsched.Eval.create platform g mapping)

(* Default-off observability: incident-level counters and latency
   distributions, published when the process registry is enabled. *)
let m_incidents =
  Obs.Metrics.counter ~help:"Fault incidents handled by the controller"
       "resilience_incidents_total"

let m_migrated =
  Obs.Metrics.counter ~help:"Tasks migrated during recoveries"
       "resilience_migrated_tasks_total"

let m_lost =
  Obs.Metrics.counter ~help:"In-flight instances re-processed after stalls"
       "resilience_lost_instances_total"

let m_detect =
  Obs.Metrics.histogram
       ~help:"Stall-to-detection latency of the completion-rate monitor (s)"
       "resilience_detection_latency_seconds"

let m_remap =
  Obs.Metrics.histogram
       ~help:"Detection-to-resume duration (remap + migration, s)"
       "resilience_remap_duration_seconds"

let observe_incident (i : incident) =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.Counter.inc m_incidents;
    Obs.Metrics.Counter.add m_migrated i.migrated_tasks;
    Obs.Metrics.Counter.add m_lost i.lost_instances;
    Obs.Metrics.Histogram.observe m_detect
      (i.detection_time -. i.stall_time);
    if not (Float.is_nan i.recovery_time) then
      Obs.Metrics.Histogram.observe m_remap
        (i.recovery_time -. i.detection_time)
  end

let run ?(options = default_options) ?trace ~faults platform g mapping
    ~instances =
  if instances <= 0 then
    invalid_arg "Controller.run: instances must be positive";
  validate_options options;
  Fault.validate platform faults;
  let buffers = SS.buffer_sizes ~first_periods:(SS.first_periods g) g in
  let baseline_period = period_of platform g mapping in
  let times = Array.make instances nan in
  let copy_spans offset pe_map local =
    match trace with
    | None -> ()
    | Some global ->
        List.iter
          (fun (s : T.span) ->
            T.record global
              {
                s with
                T.pe = pe_map.(s.T.pe);
                start = s.T.start +. offset;
                finish = s.T.finish +. offset;
              })
          (T.spans local)
  in
  let rec go ~offset ~done_ ~cur_platform ~pe_map ~cur_mapping ~pending
      ~incidents =
    let remaining = instances - done_ in
    let local_trace = Option.map (fun _ -> T.create ()) trace in
    let r =
      R.run_with_faults ~options:options.sim_options ?trace:local_trace
        ~faults:pending cur_platform g cur_mapping ~instances:remaining
    in
    (match local_trace with
    | Some lt -> copy_spans offset pe_map lt
    | None -> ());
    for i = 0 to r.R.completed - 1 do
      times.(done_ + i) <- r.R.metrics.R.completion_times.(i) +. offset
    done;
    let done_ = done_ + r.R.completed in
    if not r.R.stalled then
      {
        requested = instances;
        completed = done_;
        recovered = true;
        makespan = offset +. r.R.metrics.R.makespan;
        completion_times = times;
        incidents = List.rev incidents;
        baseline_period;
        final_period =
          (if r.R.metrics.R.steady_throughput > 0. then
             1. /. r.R.metrics.R.steady_throughput
           else nan);
      }
    else begin
      let survivors = Array.copy r.R.survivors in
      if Array.for_all Fun.id survivors then
        failwith "Controller.run: stream stalled without a failure";
      let fallback_period = period_of cur_platform g cur_mapping in
      let detection_time =
        offset +. detection_delay options ~fallback_period r
      in
      let stall_time = offset +. r.R.stall_time in
      let lost_instances =
        Array.fold_left max 0 r.R.progress - r.R.completed
      in
      (* Fold in fail-stops landing before the stream can resume: by the
         time migration completes they have happened, so they belong to
         this incident.  Masking more PEs changes the remap and thus the
         resume time, so iterate to a fixpoint (bounded by the PE count);
         fail-stops after the resume stay pending and get their own
         incident in a later segment. *)
      let rec settle () =
        match reduce cur_platform survivors with
        | None -> None
        | Some (p', pe_map_local) ->
            let old_to_new = Array.make (P.n_pes cur_platform) (-1) in
            Array.iteri (fun ni oi -> old_to_new.(oi) <- ni) pe_map_local;
            let strategy, m', remap_cost = remap options p' g in
            let migrated_tasks, mig_bytes =
              migration options g buffers cur_mapping survivors old_to_new m'
            in
            let migration_cost =
              (mig_bytes /. platform.P.bw) +. options.restart_overhead
            in
            let recovery_time =
              detection_time +. remap_cost +. migration_cost
            in
            let late =
              List.filter
                (fun (f : Fault.fault) ->
                  f.Fault.kind = Fault.Fail_stop
                  && survivors.(f.Fault.pe)
                  && f.Fault.start <= recovery_time -. offset)
                pending
            in
            if late <> [] then begin
              List.iter
                (fun (f : Fault.fault) -> survivors.(f.Fault.pe) <- false)
                late;
              settle ()
            end
            else
              Some
                ( p',
                  pe_map_local,
                  old_to_new,
                  strategy,
                  m',
                  remap_cost,
                  migrated_tasks,
                  migration_cost,
                  recovery_time )
      in
      let settled = settle () in
      let failed_orig =
        List.filter_map
          (fun pe -> if survivors.(pe) then None else Some pe_map.(pe))
          (List.init (P.n_pes cur_platform) Fun.id)
      in
      match settled with
      | None ->
          let incident =
            {
              failed_pes = failed_orig;
              stall_time;
              detection_time;
              recovery_time = nan;
              remap_cost = 0.;
              migration_cost = 0.;
              migrated_tasks = 0;
              lost_instances;
              strategy = "none";
              predicted_period = nan;
            }
          in
          observe_incident incident;
          {
            requested = instances;
            completed = done_;
            recovered = false;
            makespan = stall_time;
            completion_times = Array.sub times 0 done_;
            incidents = List.rev (incident :: incidents);
            baseline_period;
            final_period = nan;
          }
      | Some
          ( p',
            pe_map_local,
            old_to_new,
            strategy,
            m',
            remap_cost,
            migrated_tasks,
            migration_cost,
            recovery_time ) ->
          let incident =
            {
              failed_pes = failed_orig;
              stall_time;
              detection_time;
              recovery_time;
              remap_cost;
              migration_cost;
              migrated_tasks;
              lost_instances;
              strategy;
              predicted_period = period_of p' g m';
            }
          in
          observe_incident incident;
          let pending' =
            Fault.mask
              ~alive:(fun pe -> survivors.(pe))
              ~remap:(fun pe -> old_to_new.(pe))
              (Fault.shift (recovery_time -. offset) pending)
          in
          let pe_map' = Array.map (fun oi -> pe_map.(oi)) pe_map_local in
          go ~offset:recovery_time ~done_ ~cur_platform:p' ~pe_map:pe_map'
            ~cur_mapping:m' ~pending:pending'
            ~incidents:(incident :: incidents)
    end
  in
  go ~offset:0. ~done_:0 ~cur_platform:platform
    ~pe_map:(Array.init (P.n_pes platform) Fun.id)
    ~cur_mapping:mapping ~pending:faults ~incidents:[]

let pp_incident platform ppf i =
  Format.fprintf ppf
    "@[<v>failed: %s@,\
     stalled at %.4fs, detected at %.4fs (latency %.4fs)@,\
     remap: %s (%.4fs), migration: %d tasks (%.4fs)@,\
     resumed at %.4fs; %d in-flight instances re-processed@,\
     degraded steady-state period: %.6fs predicted@]"
    (String.concat ", " (List.map (P.pe_name platform) i.failed_pes))
    i.stall_time i.detection_time
    (i.detection_time -. i.stall_time)
    i.strategy i.remap_cost i.migrated_tasks i.migration_cost i.recovery_time
    i.lost_instances i.predicted_period

let pp_report platform ppf r =
  Format.fprintf ppf
    "@[<v>stream: %d/%d instances in %.4fs (%s)@,\
     baseline period: %.6fs; final measured period: %.6fs@,\
     incidents: %d@]"
    r.completed r.requested r.makespan
    (if r.recovered then "recovered" else "UNRECOVERABLE")
    r.baseline_period r.final_period
    (List.length r.incidents);
  List.iteri
    (fun n i ->
      Format.fprintf ppf "@,@[<v2>incident %d:@,%a@]" (n + 1)
        (pp_incident platform) i)
    r.incidents
