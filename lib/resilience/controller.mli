(** Online recovery from platform faults: monitor, mask, remap, resume.

    The controller runs a mapped stream through the fault-injecting
    simulator ({!Simulator.Runtime.run_with_faults}) and reacts to
    fail-stop failures the way a production runtime would:

    + {b Detect} — a monitor watches the windowed instance-completion
      rate; when it decays below a threshold fraction of the pre-fault
      rate, the failure is declared (fail-stops eventually stop
      completions entirely, so the alarm always fires, after a latency
      governed by the window length).
    + {b Mask} — the failed PEs are removed from the platform model,
      producing a reduced {!Cell.Platform.t} over the survivors (flattened
      to a single Cell; at least one PPE must survive or the stream is
      declared unrecoverable).
    + {b Remap} — a new mapping is computed on the survivors, either with
      the fast greedy heuristics ({!Cellsched.Heuristics}, policy
      {!Heuristic}) or additionally refined by a time-boxed
      branch-and-bound pass ({!Cellsched.Mapping_search}, policy
      {!Refined}).
    + {b Migrate and resume} — an explicit migration cost is charged for
      every task that changes PE (per-task state plus the adjacent stream
      buffers, moved over the EIB at interface bandwidth, plus a fixed
      restart overhead), then the stream resumes on the reduced platform,
      re-priming the pipeline for the instances that were still in
      flight.

    The report compares the measured post-recovery steady-state period
    against the theoretical {!Cellsched.Steady_state.period} of the new
    mapping on the surviving platform — the degraded-mode analogue of the
    paper's throughput prediction. *)

type policy =
  | Heuristic  (** Fast recovery: best standard greedy heuristic. *)
  | Refined
      (** Heuristics (including LP rounding) seeded into a time-boxed
          {!Cellsched.Mapping_search} second pass. *)

type options = {
  policy : policy;
  window : int;  (** Completions in the monitoring window (>= 1). *)
  degradation_threshold : float;
      (** Alarm when the windowed rate falls below this fraction of the
          pre-fault rate; in (0, 1). *)
  remap_cost : float;
      (** Seconds charged for computing a heuristic remapping. *)
  refine_time_limit : float;
      (** Budget (and charged cost) of the {!Refined} search pass. *)
  state_bytes_per_task : float;
      (** Migration payload per moved task (its checkpointed state). *)
  restart_overhead : float;
      (** Fixed seconds per recovery (barrier, code reload, restart). *)
  sim_options : Simulator.Runtime.options;
}

val default_options : options
(** [Heuristic] policy, window 32, threshold 0.5, 2 ms remap, 1 s refine
    budget, 16 kB state per task, 1 ms restart, default simulator
    options. *)

type incident = {
  failed_pes : int list;  (** Original platform indices, increasing. *)
  stall_time : float;  (** When forward progress stopped (global time). *)
  detection_time : float;  (** When the monitor raised the alarm. *)
  recovery_time : float;
      (** When the stream resumed on the survivors ([nan] if
          unrecoverable). *)
  remap_cost : float;
  migration_cost : float;
  migrated_tasks : int;
  lost_instances : int;
      (** Instances that were in flight in the pipeline at the stall and
          had to be re-processed after recovery. *)
  strategy : string;  (** Winning mapping strategy on the survivors. *)
  predicted_period : float;
      (** {!Cellsched.Steady_state.period} of the new mapping on the
          reduced platform ([nan] if unrecoverable). *)
}

type report = {
  requested : int;  (** Stream length asked for. *)
  completed : int;  (** Instances delivered end to end. *)
  recovered : bool;
      (** Every fail-stop was recovered from and the stream completed. *)
  makespan : float;  (** Global completion (or abandon) time. *)
  completion_times : float array;
      (** Global completion time per delivered instance — ramp-down and
          ramp-up around each incident included. *)
  incidents : incident list;  (** In chronological order. *)
  baseline_period : float;
      (** Predicted steady-state period of the initial mapping on the
          healthy platform. *)
  final_period : float;
      (** Measured steady-state period over the last (post-recovery)
          segment; [nan] when nothing completed there. *)
}

val run :
  ?options:options ->
  ?trace:Simulator.Trace.t ->
  faults:Fault.plan ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  Cellsched.Mapping.t ->
  instances:int ->
  report
(** Run the stream to completion (or until unrecoverable) under the
    fault plan, recovering online after each fail-stop. With [?trace],
    the spans of every segment are recorded in the {e original}
    platform's PE indices and global time, so one Gantt chart shows the
    incident: ramp-down, the recovery gap, and the degraded steady
    state.
    @raise Invalid_argument on a non-positive stream length, an invalid
    plan or invalid options. *)

val pp_incident : Cell.Platform.t -> Format.formatter -> incident -> unit

val pp_report : Cell.Platform.t -> Format.formatter -> report -> unit
