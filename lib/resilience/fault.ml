module P = Cell.Platform

type kind = Fail_stop | Slowdown of float | Link_degrade of float

type fault = { pe : int; kind : kind; start : float; finish : float }

type plan = fault list

let fail_stop ~pe ~at = { pe; kind = Fail_stop; start = at; finish = infinity }

let slowdown ~pe ~factor ~from_ ~until =
  { pe; kind = Slowdown factor; start = from_; finish = until }

let link_degrade ~pe ~factor ~from_ ~until =
  { pe; kind = Link_degrade factor; start = from_; finish = until }

let empty = []

let same_kind a b =
  match (a, b) with
  | Fail_stop, Fail_stop -> true
  | Slowdown _, Slowdown _ -> true
  | Link_degrade _, Link_degrade _ -> true
  | _ -> false

let validate platform plan =
  let check f =
    if f.pe < 0 || f.pe >= P.n_pes platform then
      invalid_arg (Printf.sprintf "Fault.validate: PE %d out of range" f.pe);
    if f.start < 0. then invalid_arg "Fault.validate: negative onset";
    if not (f.finish > f.start) then
      invalid_arg "Fault.validate: empty fault interval";
    match f.kind with
    | Fail_stop ->
        if f.finish <> infinity then
          invalid_arg "Fault.validate: fail-stop must last forever"
    | Slowdown factor | Link_degrade factor ->
        if factor < 1. then invalid_arg "Fault.validate: factor below 1"
  in
  List.iter check plan;
  (* The simulator keeps one current factor per PE and kind, so two faults
     of the same kind may not overlap on one PE. *)
  let rec overlaps = function
    | [] -> ()
    | f :: rest ->
        List.iter
          (fun g ->
            if
              f.pe = g.pe && same_kind f.kind g.kind && f.start < g.finish
              && g.start < f.finish
            then
              invalid_arg
                (Printf.sprintf
                   "Fault.validate: overlapping faults of one kind on PE %d"
                   f.pe))
          rest;
        overlaps rest
  in
  overlaps plan

let sorted plan =
  List.sort
    (fun a b ->
      match compare a.start b.start with 0 -> compare a.pe b.pe | c -> c)
    plan

let shift offset plan =
  List.filter_map
    (fun f ->
      if f.finish <= offset then None
      else if f.kind = Fail_stop && f.start <= offset then
        (* Already fired: the dead PE was masked out of the platform. *)
        None
      else
        Some
          {
            f with
            start = Float.max 0. (f.start -. offset);
            finish = f.finish -. offset;
          })
    plan

let mask ~alive ~remap plan =
  List.filter_map
    (fun f -> if alive f.pe then Some { f with pe = remap f.pe } else None)
    plan

let random_campaign ~rng ?(n_fail_stops = 1) ?(n_slowdowns = 1)
    ?(n_degrades = 1) ?(max_factor = 4.0) platform ~horizon =
  if horizon <= 0. then invalid_arg "Fault.random_campaign: horizon";
  if n_fail_stops < 0 || n_slowdowns < 0 || n_degrades < 0 then
    invalid_arg "Fault.random_campaign: negative fault count";
  if max_factor < 1.5 then invalid_arg "Fault.random_campaign: max_factor";
  let spes = Array.of_list (P.spes platform) in
  if n_fail_stops > Array.length spes then
    invalid_arg "Fault.random_campaign: more fail-stops than SPEs";
  (* Distinct fail-stop victims: shuffle the SPEs, take a prefix. *)
  Support.Rng.shuffle rng spes;
  let fails =
    List.init n_fail_stops (fun i ->
        fail_stop ~pe:spes.(i) ~at:(Support.Rng.float rng horizon))
  in
  let interval () =
    let span = Support.Rng.float_in rng (0.05 *. horizon) (0.5 *. horizon) in
    let from_ = Support.Rng.float rng horizon in
    (from_, from_ +. span)
  in
  let transient mk n =
    (* Retry draws that would overlap an existing same-kind fault on the
       same PE; the plan stays valid and the stream of draws stays
       deterministic. *)
    let acc = ref [] in
    let attempts = ref 0 in
    while List.length !acc < n && !attempts < 1000 * (n + 1) do
      incr attempts;
      let pe = Support.Rng.int rng (P.n_pes platform) in
      let factor = Support.Rng.float_in rng 1.5 max_factor in
      let from_, until = interval () in
      let f = mk ~pe ~factor ~from_ ~until in
      let clash =
        List.exists
          (fun g ->
            g.pe = f.pe && same_kind g.kind f.kind && f.start < g.finish
            && g.start < f.finish)
          !acc
      in
      if not clash then acc := f :: !acc
    done;
    List.rev !acc
  in
  let slows = transient slowdown n_slowdowns in
  let degrades = transient link_degrade n_degrades in
  let plan = sorted (fails @ slows @ degrades) in
  validate platform plan;
  plan

let pp_fault platform ppf f =
  match f.kind with
  | Fail_stop ->
      Format.fprintf ppf "%s fail-stop at %.4fs"
        (P.pe_name platform f.pe)
        f.start
  | Slowdown factor ->
      Format.fprintf ppf "%s x%.2f slower over [%.4fs, %.4fs)"
        (P.pe_name platform f.pe)
        factor f.start f.finish
  | Link_degrade factor ->
      Format.fprintf ppf "%s interface bw /%.2f over [%.4fs, %.4fs)"
        (P.pe_name platform f.pe)
        factor f.start f.finish

let pp platform ppf plan =
  match plan with
  | [] -> Format.fprintf ppf "no faults"
  | plan ->
      Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp_fault platform) ppf
        (sorted plan)
