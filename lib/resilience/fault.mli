(** Declarative fault plans for resilience experiments.

    A fault plan is a set of timed perturbations of the Cell platform that
    the simulator ({!Simulator.Runtime}) replays as discrete events: a PE
    can fail outright (fail-stop), compute slower for a while (thermal
    throttling, contention from a co-tenant), or see its communication
    interface degraded (EIB arbitration pressure, a flaky DMA engine).
    Plans are plain data: build them by hand for targeted scenarios, or
    generate randomized campaigns from a {!Support.Rng} seed so entire
    fault-injection sweeps are reproducible from one printed integer. *)

type kind =
  | Fail_stop
      (** The PE halts at [start] and never recovers: it stops selecting
          tasks, its in-flight instance is dropped, and transfers to or
          from it no longer start. *)
  | Slowdown of float
      (** Compute times on the PE are multiplied by the factor ([>= 1])
          for instances {e starting} within the interval. *)
  | Link_degrade of float
      (** The PE's interface bandwidth is divided by the factor ([>= 1])
          for transfers starting within the interval, in both
          directions. *)

type fault = {
  pe : int;  (** Platform PE index. *)
  kind : kind;
  start : float;  (** Onset time, seconds. *)
  finish : float;  (** End of the interval; [infinity] for fail-stop. *)
}

type plan = fault list

(** {1 Constructors} *)

val fail_stop : pe:int -> at:float -> fault

val slowdown : pe:int -> factor:float -> from_:float -> until:float -> fault

val link_degrade : pe:int -> factor:float -> from_:float -> until:float -> fault

val empty : plan

(** {1 Validation and normalization} *)

val validate : Cell.Platform.t -> plan -> unit
(** @raise Invalid_argument on out-of-range PEs, factors below 1, negative
    onsets, empty intervals, a finite fail-stop window, or two faults of
    the same kind overlapping on the same PE. *)

val sorted : plan -> fault list
(** Plan ordered by onset time (ties by PE index). *)

(** {1 Plan surgery (used by the recovery controller)} *)

val shift : float -> plan -> plan
(** [shift offset plan] translates the plan into the time frame of a
    stream resumed at absolute time [offset]: onsets become
    [max 0 (start - offset)], intervals are clipped, and faults entirely
    in the past — including fail-stops that already fired — are dropped. *)

val mask : alive:(int -> bool) -> remap:(int -> int) -> plan -> plan
(** [mask ~alive ~remap plan] drops faults targeting dead PEs and
    renumbers the survivors' PE indices via [remap] — the translation onto
    a reduced platform after failed resources were masked out. *)

(** {1 Randomized campaigns} *)

val random_campaign :
  rng:Support.Rng.t ->
  ?n_fail_stops:int ->
  ?n_slowdowns:int ->
  ?n_degrades:int ->
  ?max_factor:float ->
  Cell.Platform.t ->
  horizon:float ->
  plan
(** Deterministic random plan over [\[0, horizon)]: [n_fail_stops]
    (default 1) fail-stops on distinct SPEs (PPEs are never killed so
    recovery is always possible), [n_slowdowns] (default 1) and
    [n_degrades] (default 1) transient faults on uniformly chosen PEs with
    factors in [\[1.5, max_factor\]] (default 4.0), each lasting between 5
    and 50 % of the horizon. Equal seeds give equal plans.
    @raise Invalid_argument if the platform has fewer SPEs than
    [n_fail_stops] or [horizon <= 0]. *)

(** {1 Printing} *)

val pp_fault : Cell.Platform.t -> Format.formatter -> fault -> unit

val pp : Cell.Platform.t -> Format.formatter -> plan -> unit
