module G = Streaming.Graph
module P = Cell.Platform

type options = {
  overhead_fraction : float;
  dma_setup_time : float;
  comm_cpu_time : float;
  peek_flush : bool;
}

let default_options =
  {
    overhead_fraction = 0.05;
    dma_setup_time = 2e-6;
    comm_cpu_time = 5e-5;
    peek_flush = true;
  }

type metrics = {
  instances : int;
  makespan : float;
  completion_times : float array;
  average_throughput : float;
  steady_throughput : float;
  pe_busy : float array;
  transfers : int;
  bytes_transferred : float;
  dma_in_highwater : int array;
  dma_to_ppe_highwater : int array;
}

type event =
  | Compute_done of int  (* task *)
  | Transfer_done of int  (* edge *)
  | Fault_begin of int  (* index into the fault plan *)
  | Fault_end of int

type sim = {
  platform : P.t;
  g : G.t;
  mapping : Cellsched.Mapping.t;
  options : options;
  trace : Trace.t option;
  n_instances : int;
  engine : event Engine.t;
  cap : int array;  (* per-edge buffer capacity, in instances *)
  produced : int array;  (* instances completed, per task *)
  transferred : int array;  (* instances delivered to the consumer, per edge *)
  in_flight : bool array;  (* per edge *)
  pe_running : int array;  (* task being computed per PE, -1 if idle *)
  in_avail : float array;  (* incoming-interface availability per PE *)
  out_avail : float array;
  link_out_avail : float array;  (* inter-Cell link availability per cell *)
  link_in_avail : float array;
  dma_in_count : int array;  (* concurrent incoming transfers per PE *)
  dma_ppe_count : int array;  (* concurrent SPE-to-PPE transfers per SPE *)
  dma_in_hw : int array;  (* high-water marks of the two queues *)
  dma_ppe_hw : int array;
  sink : Obs.Events.sink;  (* structured-event stream; Null by default *)
  remote_ins : int array;  (* remote in-edges per task under the mapping *)
  mutable buffered : int;  (* instances sitting in remote consumer buffers *)
  pe_tasks : int array array;  (* tasks per PE in topological order *)
  pending_overhead : float array;  (* comm-management CPU time owed per PE *)
  pe_busy : float array;
  completion_times : float array;
  faults : Fault.fault array;  (* injected fault plan, sorted by onset *)
  failed : bool array;  (* fail-stopped PEs *)
  compute_factor : float array;  (* current compute-time multiplier per PE *)
  bw_factor : float array;  (* current interface-bandwidth multiplier *)
  mutable last_progress : float;  (* time of the last delivered instance *)
  mutable completed_instances : int;  (* min over tasks of produced *)
  mutable transfers : int;
  mutable bytes_transferred : float;
}

let make_sim ~options ~trace ~sink ~faults platform g mapping n_instances =
  let fp = Cellsched.Steady_state.first_periods g in
  let cap =
    Array.init (G.n_edges g) (fun e ->
        let { G.src; dst; _ } = G.edge g e in
        max 1 (fp.(dst) - fp.(src)))
  in
  let topo_pos = Array.make (G.n_tasks g) 0 in
  Array.iteri (fun pos k -> topo_pos.(k) <- pos) (G.topological_order g);
  let pe_tasks =
    Array.init (P.n_pes platform) (fun pe ->
        let tasks = Array.of_list (Cellsched.Mapping.tasks_on mapping pe) in
        Array.sort (fun a b -> compare topo_pos.(a) topo_pos.(b)) tasks;
        tasks)
  in
  let sim =
  {
    platform;
    g;
    mapping;
    options;
    trace;
    n_instances;
    engine = Engine.create ();
    cap;
    produced = Array.make (G.n_tasks g) 0;
    transferred = Array.make (G.n_edges g) 0;
    in_flight = Array.make (G.n_edges g) false;
    pe_running = Array.make (P.n_pes platform) (-1);
    in_avail = Array.make (P.n_pes platform) 0.;
    out_avail = Array.make (P.n_pes platform) 0.;
    link_out_avail = Array.make platform.P.n_cells 0.;
    link_in_avail = Array.make platform.P.n_cells 0.;
    dma_in_count = Array.make (P.n_pes platform) 0;
    dma_ppe_count = Array.make (P.n_pes platform) 0;
    dma_in_hw = Array.make (P.n_pes platform) 0;
    dma_ppe_hw = Array.make (P.n_pes platform) 0;
    sink;
    remote_ins =
      Array.init (G.n_tasks g) (fun k ->
          List.length
            (List.filter
               (fun e -> Cellsched.Mapping.is_remote mapping (G.edge g e))
               (G.in_edges g k)));
    buffered = 0;
    pe_tasks;
    pending_overhead = Array.make (P.n_pes platform) 0.;
    pe_busy = Array.make (P.n_pes platform) 0.;
    completion_times = Array.make n_instances nan;
    faults;
    failed = Array.make (P.n_pes platform) false;
    compute_factor = Array.make (P.n_pes platform) 1.;
    bw_factor = Array.make (P.n_pes platform) 1.;
    last_progress = 0.;
    completed_instances = 0;
    transfers = 0;
    bytes_transferred = 0.;
  }
  in
  Array.iteri
    (fun i (f : Fault.fault) ->
      Engine.schedule sim.engine f.Fault.start (Fault_begin i);
      if f.Fault.finish < infinity then
        Engine.schedule sim.engine f.Fault.finish (Fault_end i))
    faults;
  sim

(* Effective interface bandwidth of a PE under the current faults. *)
let ifc_bw sim pe = sim.platform.P.bw *. sim.bw_factor.(pe)

let colocated sim e = not (Cellsched.Mapping.is_remote sim.mapping (G.edge sim.g e))

(* Number of data instances of edge [e] the consumer needs before it can
   process instance [i]: i .. i+peek (clipped to the stream end). *)
let needed_inputs sim k i =
  let peek = (G.task sim.g k).Streaming.Task.peek in
  if sim.options.peek_flush then min (i + peek + 1) sim.n_instances
  else i + peek + 1

(* Can task [k] process its next instance now? *)
let runnable sim k =
  let i = sim.produced.(k) in
  i < sim.n_instances
  && List.for_all
       (fun e -> sim.transferred.(e) >= needed_inputs sim k i)
       (G.in_edges sim.g k)
  && List.for_all
       (fun e ->
         if colocated sim e then
           (* Consumer reads the producer's buffer directly; respect the
              consumer-side capacity. *)
           sim.transferred.(e) - sim.produced.((G.edge sim.g e).G.dst)
           < sim.cap.(e)
         else sim.produced.(k) - sim.transferred.(e) < sim.cap.(e))
       (G.out_edges sim.g k)

let start_compute sim k =
  let now = Engine.now sim.engine in
  let pe = Cellsched.Mapping.pe sim.mapping k in
  let task = G.task sim.g k in
  (* Main-memory reads go through the incoming interface first. *)
  let ready =
    if task.Streaming.Task.read_bytes > 0. then begin
      let finish =
        Float.max now sim.in_avail.(pe)
        +. (task.Streaming.Task.read_bytes /. ifc_bw sim pe)
      in
      sim.in_avail.(pe) <- finish;
      finish
    end
    else now
  in
  let cls = P.pe_class sim.platform pe in
  let w = Streaming.Task.w task cls in
  let w = if cls = P.PPE then w /. sim.platform.P.ppe_speedup else w in
  (* A slowdown fault in force when the slot starts stretches the whole
     slot (the factor is sampled once, at dispatch). *)
  let w = w *. sim.compute_factor.(pe) in
  (* Communication management (issuing Gets, watching DMA, signalling)
     interrupts computation: charge the accumulated cost to this slot. *)
  let duration =
    (w *. (1. +. sim.options.overhead_fraction)) +. sim.pending_overhead.(pe)
  in
  sim.pending_overhead.(pe) <- 0.;
  sim.pe_running.(pe) <- k;
  sim.pe_busy.(pe) <- sim.pe_busy.(pe) +. duration;
  (match sim.trace with
  | Some trace ->
      Trace.record trace
        {
          Trace.pe;
          label =
            Printf.sprintf "%s[%d]" task.Streaming.Task.name sim.produced.(k);
          kind = `Compute;
          start = ready;
          finish = ready +. duration;
        }
  | None -> ());
  Engine.schedule sim.engine (ready +. duration) (Compute_done k)

(* A transfer is eligible when data waits on the producer side, the
   consumer-side buffer has room, and DMA slots are free. *)
let transfer_eligible sim e =
  (not (colocated sim e))
  && (not sim.in_flight.(e))
  && sim.transferred.(e) < sim.produced.((G.edge sim.g e).G.src)
  && begin
       let { G.src; dst; _ } = G.edge sim.g e in
       let src_pe = Cellsched.Mapping.pe sim.mapping src in
       let dst_pe = Cellsched.Mapping.pe sim.mapping dst in
       (not sim.failed.(src_pe))
       && (not sim.failed.(dst_pe))
       && sim.transferred.(e) + 1 - sim.produced.(dst) <= sim.cap.(e)
       && ((not (P.is_spe sim.platform dst_pe))
          || sim.dma_in_count.(dst_pe) < sim.platform.P.max_dma_in)
       && ((not (P.is_spe sim.platform src_pe && P.is_ppe sim.platform dst_pe))
          || sim.dma_ppe_count.(src_pe) < sim.platform.P.max_dma_to_ppe)
     end

let start_transfer sim e =
  let now = Engine.now sim.engine in
  let edge = G.edge sim.g e in
  let src_pe = Cellsched.Mapping.pe sim.mapping edge.G.src in
  let dst_pe = Cellsched.Mapping.pe sim.mapping edge.G.dst in
  let src_cell = P.cell_of sim.platform src_pe in
  let dst_cell = P.cell_of sim.platform dst_pe in
  let cross = src_cell <> dst_cell in
  let start = Float.max now (Float.max sim.out_avail.(src_pe) sim.in_avail.(dst_pe)) in
  let start =
    if cross then
      Float.max start
        (Float.max sim.link_out_avail.(src_cell) sim.link_in_avail.(dst_cell))
    else start
  in
  (* A cross-Cell transfer is paced by the slower of the EIB interface and
     the inter-Cell BIF; a degraded interface on either endpoint slows the
     whole transfer. *)
  let ifc = Float.min (ifc_bw sim src_pe) (ifc_bw sim dst_pe) in
  let rate =
    if cross then Float.min ifc sim.platform.P.inter_cell_bw else ifc
  in
  let finish =
    start +. sim.options.dma_setup_time +. (edge.G.data_bytes /. rate)
  in
  sim.out_avail.(src_pe) <- finish;
  sim.in_avail.(dst_pe) <- finish;
  if cross then begin
    sim.link_out_avail.(src_cell) <- finish;
    sim.link_in_avail.(dst_cell) <- finish
  end;
  sim.in_flight.(e) <- true;
  if P.is_spe sim.platform dst_pe then begin
    sim.dma_in_count.(dst_pe) <- sim.dma_in_count.(dst_pe) + 1;
    if sim.dma_in_count.(dst_pe) > sim.dma_in_hw.(dst_pe) then
      sim.dma_in_hw.(dst_pe) <- sim.dma_in_count.(dst_pe)
  end;
  if P.is_spe sim.platform src_pe && P.is_ppe sim.platform dst_pe then begin
    sim.dma_ppe_count.(src_pe) <- sim.dma_ppe_count.(src_pe) + 1;
    if sim.dma_ppe_count.(src_pe) > sim.dma_ppe_hw.(src_pe) then
      sim.dma_ppe_hw.(src_pe) <- sim.dma_ppe_count.(src_pe)
  end;
  if Obs.Events.enabled sim.sink then
    Obs.Events.emit sim.sink ~cat:"dma" ~tid:dst_pe ~ts:start
      ~phase:Obs.Events.Counter
      ~args:
        [ ("queued", Obs.Events.Int sim.dma_in_count.(dst_pe)) ]
      (Printf.sprintf "dma_in[%s]" (P.pe_name sim.platform dst_pe));
  sim.transfers <- sim.transfers + 1;
  sim.bytes_transferred <- sim.bytes_transferred +. edge.G.data_bytes;
  sim.pending_overhead.(src_pe) <-
    sim.pending_overhead.(src_pe) +. sim.options.comm_cpu_time;
  (match sim.trace with
  | Some trace ->
      Trace.record trace
        {
          Trace.pe = dst_pe;
          label =
            Printf.sprintf "D(%s,%s)[%d]"
              (G.task sim.g edge.G.src).Streaming.Task.name
              (G.task sim.g edge.G.dst).Streaming.Task.name
              sim.transferred.(e);
          kind = `Transfer;
          start;
          finish;
        }
  | None -> ());
  Engine.schedule sim.engine finish (Transfer_done e)

(* Greedy dispatch: start every possible activity. Scheduler policy per PE
   (paper Fig. 4): among runnable tasks, pick the least-advanced one
   (fair round robin), ties broken by topological position. *)
let dispatch sim =
  for e = 0 to G.n_edges sim.g - 1 do
    if transfer_eligible sim e then start_transfer sim e
  done;
  Array.iteri
    (fun pe running ->
      if running < 0 && not sim.failed.(pe) then begin
        let best = ref (-1) in
        let better k =
          match !best with
          | -1 -> true
          | b -> sim.produced.(k) < sim.produced.(b)
        in
        Array.iter
          (fun k -> if runnable sim k && better k then best := k)
          sim.pe_tasks.(pe);
        if !best >= 0 then start_compute sim !best
      end)
    sim.pe_running

let handle sim = function
  | Compute_done k when sim.failed.(Cellsched.Mapping.pe sim.mapping k) ->
      (* The PE fail-stopped while computing: the in-flight instance is
         dropped (fault semantics); nothing is produced. *)
      sim.pe_running.(Cellsched.Mapping.pe sim.mapping k) <- -1
  | Compute_done k ->
      let pe = Cellsched.Mapping.pe sim.mapping k in
      let task = G.task sim.g k in
      sim.pe_running.(pe) <- -1;
      sim.produced.(k) <- sim.produced.(k) + 1;
      (* Main-memory writes occupy the outgoing interface asynchronously. *)
      if task.Streaming.Task.write_bytes > 0. then
        sim.out_avail.(pe) <-
          Float.max (Engine.now sim.engine) sim.out_avail.(pe)
          +. (task.Streaming.Task.write_bytes /. ifc_bw sim pe);
      (* Colocated consumers see the data immediately. *)
      List.iter
        (fun e -> if colocated sim e then sim.transferred.(e) <- sim.produced.(k))
        (G.out_edges sim.g k);
      sim.last_progress <- Engine.now sim.engine;
      (* The new instance consumed one slot from each remote input buffer. *)
      sim.buffered <- sim.buffered - sim.remote_ins.(k);
      (* Track globally completed instances. *)
      let min_produced = Array.fold_left min max_int sim.produced in
      let advanced = sim.completed_instances < min_produced in
      while sim.completed_instances < min_produced do
        sim.completion_times.(sim.completed_instances) <- Engine.now sim.engine;
        sim.completed_instances <- sim.completed_instances + 1
      done;
      if advanced && Obs.Events.enabled sim.sink then begin
        let now = Engine.now sim.engine in
        Obs.Events.emit sim.sink ~cat:"stream" ~ts:now
          ~phase:Obs.Events.Counter
          ~args:[ ("completed", Obs.Events.Int sim.completed_instances) ]
          "completed_instances";
        if now > 0. then
          Obs.Events.emit sim.sink ~cat:"stream" ~ts:now
            ~phase:Obs.Events.Counter
            ~args:
              [
                ( "instances_per_s",
                  Obs.Events.Float
                    (float_of_int sim.completed_instances /. now) );
              ]
            "achieved_throughput"
      end
  | Transfer_done e ->
      let edge = G.edge sim.g e in
      let src_pe = Cellsched.Mapping.pe sim.mapping edge.G.src in
      let dst_pe = Cellsched.Mapping.pe sim.mapping edge.G.dst in
      sim.in_flight.(e) <- false;
      sim.transferred.(e) <- sim.transferred.(e) + 1;
      sim.buffered <- sim.buffered + 1;
      if Obs.Events.enabled sim.sink then
        Obs.Events.emit sim.sink ~cat:"buffers" ~ts:(Engine.now sim.engine)
          ~phase:Obs.Events.Counter
          ~args:[ ("instances", Obs.Events.Int sim.buffered) ]
          "buffer_occupancy";
      sim.pending_overhead.(dst_pe) <-
        sim.pending_overhead.(dst_pe) +. sim.options.comm_cpu_time;
      if P.is_spe sim.platform dst_pe then
        sim.dma_in_count.(dst_pe) <- sim.dma_in_count.(dst_pe) - 1;
      if P.is_spe sim.platform src_pe && P.is_ppe sim.platform dst_pe then
        sim.dma_ppe_count.(src_pe) <- sim.dma_ppe_count.(src_pe) - 1
  | Fault_begin i ->
      let f = sim.faults.(i) in
      if not sim.failed.(f.Fault.pe) then begin
        match f.Fault.kind with
        | Fault.Fail_stop -> sim.failed.(f.Fault.pe) <- true
        | Fault.Slowdown factor -> sim.compute_factor.(f.Fault.pe) <- factor
        | Fault.Link_degrade factor ->
            sim.bw_factor.(f.Fault.pe) <- 1. /. factor
      end
  | Fault_end i ->
      let f = sim.faults.(i) in
      if not sim.failed.(f.Fault.pe) then begin
        match f.Fault.kind with
        | Fault.Fail_stop -> ()
        | Fault.Slowdown _ -> sim.compute_factor.(f.Fault.pe) <- 1.
        | Fault.Link_degrade _ -> sim.bw_factor.(f.Fault.pe) <- 1.
      end

let check_deployable platform g mapping =
  (* Local-store overflow is a hard error: the application cannot be
     deployed at all. DMA-queue pressure, in contrast, is handled by the
     runtime (transfers queue until a slot frees), so mappings violating
     the MILP's per-period DMA constraints still run -- just slower. *)
  match
    List.filter
      (function Cellsched.Steady_state.Memory _ -> true | _ -> false)
      (Cellsched.Steady_state.violations platform g mapping)
  with
  | [] -> ()
  | v :: _ ->
      invalid_arg
        (Format.asprintf "Runtime.run: infeasible mapping (%a)"
           (Cellsched.Steady_state.pp_violation platform)
           v)

let simulate sim =
  dispatch sim;
  let rec loop () =
    match Engine.next sim.engine with
    | None -> ()
    | Some (_, event) ->
        handle sim event;
        dispatch sim;
        loop ()
  in
  loop ()

let metrics_of sim ~completed =
  let makespan =
    if completed > 0 then sim.completion_times.(completed - 1) else 0.
  in
  let steady_throughput =
    if completed = 0 then 0.
    else if completed < 4 then float_of_int completed /. makespan
    else begin
      let half = completed / 2 in
      let t0 = sim.completion_times.(half - 1) in
      float_of_int (completed - half) /. (makespan -. t0)
    end
  in
  {
    instances = completed;
    makespan;
    completion_times = Array.sub sim.completion_times 0 completed;
    average_throughput =
      (if completed = 0 then 0. else float_of_int completed /. makespan);
    steady_throughput;
    pe_busy = sim.pe_busy;
    transfers = sim.transfers;
    bytes_transferred = sim.bytes_transferred;
    dma_in_highwater = Array.copy sim.dma_in_hw;
    dma_to_ppe_highwater = Array.copy sim.dma_ppe_hw;
  }

(* Default-off observability: publish a run's aggregate metrics into the
   process-wide registry (per-PE families labeled by PE name). *)
let publish_metrics platform (m : metrics) =
  if Obs.Metrics.enabled () then begin
    let busy name =
      Obs.Metrics.gauge_family ~help:"Compute-busy fraction of the run per PE"
        "sim_pe_busy_fraction" ~labels:[ "pe" ] [ name ]
    and dma_in name =
      Obs.Metrics.gauge_family
        ~help:"High-water mark of the incoming DMA queue per PE"
        "sim_dma_in_highwater" ~labels:[ "pe" ] [ name ]
    and dma_ppe name =
      Obs.Metrics.gauge_family
        ~help:"High-water mark of the SPE-to-PPE DMA queue per PE"
        "sim_dma_to_ppe_highwater" ~labels:[ "pe" ] [ name ]
    in
    let horizon = m.makespan in
    Array.iteri
      (fun pe b ->
        let name = P.pe_name platform pe in
        Obs.Metrics.Gauge.set (busy name)
          (if horizon > 0. then b /. horizon else 0.);
        Obs.Metrics.Gauge.set (dma_in name)
          (float_of_int m.dma_in_highwater.(pe));
        Obs.Metrics.Gauge.set (dma_ppe name)
          (float_of_int m.dma_to_ppe_highwater.(pe)))
      m.pe_busy;
    Obs.Metrics.Counter.add
      (Obs.Metrics.counter ~help:"Remote DMA transfers simulated"
         "sim_transfers_total")
      m.transfers;
    Obs.Metrics.Counter.add
      (Obs.Metrics.counter ~help:"Stream instances completed in simulation"
         "sim_instances_total")
      m.instances;
    Obs.Metrics.Gauge.set
      (Obs.Metrics.gauge
         ~help:"Steady-state throughput of the last simulated run \
                (instances/s)"
         "sim_steady_throughput")
      m.steady_throughput
  end

let run ?(options = default_options) ?trace ?(sink = Obs.Events.null) platform g
    mapping ~instances =
  if instances <= 0 then invalid_arg "Runtime.run: instances must be positive";
  check_deployable platform g mapping;
  let sim =
    make_sim ~options ~trace ~sink ~faults:[||] platform g mapping instances
  in
  simulate sim;
  if sim.completed_instances <> instances then
    failwith "Runtime.run: simulation stalled (runtime bug)";
  let m = metrics_of sim ~completed:instances in
  publish_metrics platform m;
  m

type fault_outcome = {
  metrics : metrics;
  completed : int;
  stalled : bool;
  stall_time : float;
  survivors : bool array;
  progress : int array;
}

let fault_label (f : Fault.fault) =
  match f.Fault.kind with
  | Fault.Fail_stop -> "FAIL"
  | Fault.Slowdown factor -> Printf.sprintf "SLOW x%.1f" factor
  | Fault.Link_degrade factor -> Printf.sprintf "BW /%.1f" factor

let run_with_faults ?(options = default_options) ?trace
    ?(sink = Obs.Events.null) ~faults platform g mapping ~instances =
  if instances <= 0 then
    invalid_arg "Runtime.run_with_faults: instances must be positive";
  Fault.validate platform faults;
  check_deployable platform g mapping;
  let faults = Array.of_list (Fault.sorted faults) in
  let sim = make_sim ~options ~trace ~sink ~faults platform g mapping instances in
  simulate sim;
  let horizon = Engine.now sim.engine in
  (match trace with
  | None -> ()
  | Some trace ->
      Array.iter
        (fun (f : Fault.fault) ->
          Trace.record trace
            {
              Trace.pe = f.Fault.pe;
              label = fault_label f;
              kind = `Fault;
              start = f.Fault.start;
              finish = Float.max f.Fault.start (Float.min f.Fault.finish horizon);
            })
        faults);
  let completed = sim.completed_instances in
  let stalled = completed < instances in
  (* The event drain after a stall still fires Fault_begin for fail-stops
     scheduled later in the plan, so [sim.failed] over-reports: only the
     failures that had happened when progress stopped are observable by a
     controller.  Fail-stops after the stall stay in its pending plan and
     surface in a later segment.  If the stall predates every completion
     (the victim hosts the stream's final task, say), blame the earliest
     fail-stop alone. *)
  let survivors =
    let alive = Array.make (P.n_pes platform) true in
    Array.iter
      (fun (f : Fault.fault) ->
        if f.Fault.kind = Fault.Fail_stop && f.Fault.start <= sim.last_progress
        then alive.(f.Fault.pe) <- false)
      faults;
    if stalled && Array.for_all Fun.id alive then
      Array.iter
        (fun (f : Fault.fault) ->
          if
            f.Fault.kind = Fault.Fail_stop
            && Array.for_all Fun.id alive
          then alive.(f.Fault.pe) <- false)
        faults;
    alive
  in
  let m = metrics_of sim ~completed in
  publish_metrics platform m;
  {
    metrics = m;
    completed;
    stalled;
    stall_time = sim.last_progress;
    survivors;
    progress = Array.copy sim.produced;
  }

let throughput_curve metrics ~points =
  if points <= 0 then invalid_arg "Runtime.throughput_curve: points";
  let n = metrics.instances in
  let step = max 1 (n / points) in
  let rec sample i acc =
    if i >= n - 1 then
      List.rev ((n, float_of_int n /. metrics.completion_times.(n - 1)) :: acc)
    else begin
      let t = metrics.completion_times.(i) in
      sample (i + step) ((i + 1, float_of_int (i + 1) /. t) :: acc)
    end
  in
  sample (step - 1) []
