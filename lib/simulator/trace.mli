(** Execution traces of simulated runs.

    Pass a fresh trace to {!Runtime.run} via [?trace] to record every
    computation slot and every remote transfer with exact start/finish
    times, then inspect utilization or render Gantt charts (text or SVG) —
    the observability layer one would use on real hardware with a
    profiler. *)

type span = {
  pe : int;  (** Executing PE (for transfers: the destination PE). *)
  label : string;  (** ["task[i]"], ["D(src,dst)[i]"] or a fault label. *)
  kind : [ `Compute | `Transfer | `Fault ];
  start : float;
  finish : float;
}

type t

val create : unit -> t

val record : t -> span -> unit
(** Used by the runtime; spans may arrive out of order. *)

val spans : t -> span list
(** All recorded spans sorted by start time. Allocates and sorts on
    every call; streaming consumers should prefer {!iter}/{!fold}. *)

val iter : t -> (span -> unit) -> unit
(** Visit every span in recording order (unsorted) without building the
    sorted list {!spans} allocates. *)

val fold : t -> init:'a -> f:('a -> span -> 'a) -> 'a
(** Fold over spans in recording order (unsorted). *)

val length : t -> int

val busy_fraction : t -> n_pes:int -> horizon:float -> float array
(** Fraction of [0, horizon] each PE spends computing. *)

val gantt :
  ?width:int ->
  ?from_time:float ->
  ?to_time:float ->
  Cell.Platform.t ->
  t ->
  string
(** ASCII Gantt chart: one row per PE, ['#'] for compute, ['-'] for
    transfer activity, ['x'] for an active fault, ['.'] for idle. [width]
    defaults to 80 columns. *)

val to_svg :
  ?width:int ->
  ?row_height:int ->
  ?from_time:float ->
  ?to_time:float ->
  Cell.Platform.t ->
  t ->
  string
(** Standalone SVG rendering of the same chart, one lane per PE. *)

val to_events : Cell.Platform.t -> t -> Obs.Events.event list
(** The trace as Chrome [trace_event] records: one [Complete] span per
    recorded span (thread id = PE index, category ["compute"],
    ["transfer"] or ["fault"]) preceded by thread-name metadata so lanes
    carry platform PE names. *)

val to_chrome : ?extra:Obs.Events.event list -> Cell.Platform.t -> t -> string
(** Chrome/Perfetto trace JSON of {!to_events} (plus [extra] events,
    e.g. counter samples drained from a {!Obs.Events.sink}); open the
    written file in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}. *)
