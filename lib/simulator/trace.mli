(** Execution traces of simulated runs.

    Pass a fresh trace to {!Runtime.run} via [?trace] to record every
    computation slot and every remote transfer with exact start/finish
    times, then inspect utilization or render Gantt charts (text or SVG) —
    the observability layer one would use on real hardware with a
    profiler. *)

type span = {
  pe : int;  (** Executing PE (for transfers: the destination PE). *)
  label : string;  (** ["task[i]"], ["D(src,dst)[i]"] or a fault label. *)
  kind : [ `Compute | `Transfer | `Fault ];
  start : float;
  finish : float;
}

type t

val create : unit -> t

val record : t -> span -> unit
(** Used by the runtime; spans may arrive out of order. *)

val spans : t -> span list
(** All recorded spans sorted by start time. *)

val length : t -> int

val busy_fraction : t -> n_pes:int -> horizon:float -> float array
(** Fraction of [0, horizon] each PE spends computing. *)

val gantt :
  ?width:int ->
  ?from_time:float ->
  ?to_time:float ->
  Cell.Platform.t ->
  t ->
  string
(** ASCII Gantt chart: one row per PE, ['#'] for compute, ['-'] for
    transfer activity, ['x'] for an active fault, ['.'] for idle. [width]
    defaults to 80 columns. *)

val to_svg :
  ?width:int ->
  ?row_height:int ->
  ?from_time:float ->
  ?to_time:float ->
  Cell.Platform.t ->
  t ->
  string
(** Standalone SVG rendering of the same chart, one lane per PE. *)
