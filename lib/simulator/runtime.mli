(** Discrete-event simulation of a mapped streaming application on the Cell
    model — the experimental substrate standing in for the paper's PS3 and
    QS22 runs (§6).

    The simulated runtime follows the scheduler of paper §6.1 (Fig. 4):
    each PE cyclically selects a runnable task (inputs present, output
    buffer slots free) and processes one instance; inter-PE data moves as
    asynchronous DMA transfers constrained by the bounded-multiport
    interfaces (one transfer at a time per interface direction, [data/bw]
    seconds each plus a DMA setup latency), the per-edge double buffers
    sized by the steady-state analysis, and the SPE DMA-queue limits.
    A configurable per-instance overhead models the framework cost the
    paper measures as the ~5 % gap between predicted and achieved
    throughput (§6.4.1). *)

type options = {
  overhead_fraction : float;
      (** Fractional compute overhead per task instance (default 0.05:
          the paper's framework overhead). *)
  dma_setup_time : float;
      (** Seconds to initiate one DMA transfer (default 2e-6). *)
  comm_cpu_time : float;
      (** CPU seconds consumed on each endpoint per remote transfer for
          issuing the DMA, polling its status and signalling (the paper
          notes SPEs must interrupt computation to manage communication);
          default 5e-5. *)
  peek_flush : bool;
      (** Allow tasks with [peek > 0] to process the final instances of a
          finite stream with truncated look-ahead (default true). *)
}

val default_options : options

type metrics = {
  instances : int;  (** Instances fully processed by every task. *)
  makespan : float;  (** Completion time of the last instance. *)
  completion_times : float array;
      (** [completion_times.(i)]: time when instance [i] left the last
          task. *)
  average_throughput : float;  (** [instances / makespan]. *)
  steady_throughput : float;
      (** Rate over the second half of the stream — the plateau of the
          paper's Fig. 6. *)
  pe_busy : float array;  (** Compute-busy seconds per PE. *)
  transfers : int;  (** Remote transfers performed. *)
  bytes_transferred : float;  (** Total remote bytes moved. *)
  dma_in_highwater : int array;
      (** Per-PE maximum number of concurrent incoming DMA transfers
          observed — how close the run came to [max_dma_in]. *)
  dma_to_ppe_highwater : int array;
      (** Per-SPE maximum concurrent SPE-to-PPE transfers observed
          (vs [max_dma_to_ppe]); always 0 on the PPE entries. *)
}

val run :
  ?options:options ->
  ?trace:Trace.t ->
  ?sink:Obs.Events.sink ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  Cellsched.Mapping.t ->
  instances:int ->
  metrics
(** Simulate the stream; with [?trace], every compute slot and remote
    transfer is recorded for {!Trace} post-processing. With [?sink]
    (default {!Obs.Events.null}), the runtime streams counter events —
    DMA-queue depth per destination PE, remote-buffer occupancy, completed
    instances and achieved throughput — into the sink for Chrome-trace
    export; when the process-wide {!Obs.Metrics} registry is enabled, the
    run additionally publishes busy fractions, DMA high-water marks and
    throughput there.
    @raise Invalid_argument if [instances <= 0] or the mapping overflows
    an SPE local store ({!Cellsched.Steady_state.Memory} violation).
    Mappings that merely exceed the MILP's per-period DMA-queue constraints
    are simulated anyway: the runtime queues transfers dynamically, exactly
    like the real framework, and pays the resulting stalls. *)

val throughput_curve : metrics -> points:int -> (int * float) list
(** Cumulative throughput (instances per second after i instances) sampled
    at [points] evenly spaced instance counts — the experimental curve of
    Fig. 6. *)

(** {1 Fault injection}

    {!run_with_faults} replays a {!Fault.plan} as simulation events: a
    fail-stopped PE stops selecting tasks and drops its in-flight
    instance (transfers already in flight complete, new transfers to or
    from it never start), a slowed PE stretches every compute slot
    starting inside the fault window by the slowdown factor, and a
    degraded interface divides the bandwidth seen by transfers and
    main-memory traffic touching that PE. An empty plan reproduces
    {!run} exactly. *)

type fault_outcome = {
  metrics : metrics;
      (** Metrics over the instances that completed; on a stall,
          [metrics.instances <] the requested stream length and
          [completion_times] is truncated accordingly. *)
  completed : int;  (** Instances fully processed by every task. *)
  stalled : bool;
      (** The stream could not finish on the faulty platform (some task
          is pinned to a fail-stopped PE); recovery needs a remapping —
          see {!Resilience.Controller}. *)
  stall_time : float;
      (** Time of the last delivered task instance — when forward
          progress stopped. *)
  survivors : bool array;  (** Per-PE: still alive at the end. *)
  progress : int array;
      (** Per-task instances produced; beyond [completed], this work was
          in flight in the pipeline when the stream stalled. *)
}

val run_with_faults :
  ?options:options ->
  ?trace:Trace.t ->
  ?sink:Obs.Events.sink ->
  faults:Fault.plan ->
  Cell.Platform.t ->
  Streaming.Graph.t ->
  Cellsched.Mapping.t ->
  instances:int ->
  fault_outcome
(** Simulate the stream under the fault plan. Unlike {!run}, a stalled
    stream is not an error: the outcome reports how far the stream got.
    With [?trace], faults are additionally recorded as [`Fault] spans
    (clipped to the simulated horizon) so Gantt output shows the
    incident.
    @raise Invalid_argument on a non-positive stream length, an invalid
    plan ({!Fault.validate}) or a mapping that overflows a local store. *)
