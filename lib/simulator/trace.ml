type span = {
  pe : int;
  label : string;
  kind : [ `Compute | `Transfer | `Fault ];
  start : float;
  finish : float;
}

type t = { mutable items : span list; mutable n : int }

let create () = { items = []; n = 0 }

let record t span =
  t.items <- span :: t.items;
  t.n <- t.n + 1

(* The one start-time ordering used by every sorted consumer
   (spans/to_svg/to_chrome): a single comparator, not per-exporter
   copies. *)
let by_start a b = compare a.start b.start

let spans t = List.sort by_start t.items

let iter t f = List.iter f t.items

let fold t ~init ~f = List.fold_left f init t.items

let length t = t.n

let busy_fraction t ~n_pes ~horizon =
  let busy = Array.make n_pes 0. in
  iter t (fun s ->
      if s.kind = `Compute && s.pe >= 0 && s.pe < n_pes then
        busy.(s.pe) <- busy.(s.pe) +. (Float.min horizon s.finish -. s.start));
  Array.map (fun b -> if horizon > 0. then b /. horizon else 0.) busy

let bounds t =
  fold t ~init:(infinity, neg_infinity) ~f:(fun (lo, hi) s ->
      (Float.min lo s.start, Float.max hi s.finish))

let window ?from_time ?to_time t =
  let lo, hi = bounds t in
  let lo = match from_time with Some v -> v | None -> Float.min lo 0. in
  let hi = match to_time with Some v -> v | None -> hi in
  (lo, Float.max hi (lo +. 1e-12))

let gantt ?(width = 80) ?from_time ?to_time platform t =
  let lo, hi = window ?from_time ?to_time t in
  let n_pes = Cell.Platform.n_pes platform in
  let cell_width = (hi -. lo) /. float_of_int width in
  let rows = Array.init n_pes (fun _ -> Bytes.make width '.') in
  let paint s =
    if s.pe >= 0 && s.pe < n_pes && s.finish > lo && s.start < hi then begin
      let first =
        max 0 (int_of_float ((s.start -. lo) /. cell_width))
      in
      let last =
        min (width - 1) (int_of_float ((s.finish -. lo) /. cell_width))
      in
      let mark =
        match s.kind with `Compute -> '#' | `Transfer -> '-' | `Fault -> 'x'
      in
      for col = first to last do
        (* Fault spans paint over everything, compute over transfer marks,
           transfers only over idle cells. *)
        let cur = Bytes.get rows.(s.pe) col in
        let paint =
          match mark with
          | 'x' -> true
          | '#' -> cur <> 'x'
          | _ -> cur = '.'
        in
        if paint then Bytes.set rows.(s.pe) col mark
      done
    end
  in
  iter t paint;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "time %.6fs .. %.6fs  (# compute, - transfer)\n" lo hi);
  for pe = 0 to n_pes - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%-6s|%s|\n"
         (Cell.Platform.pe_name platform pe)
         (Bytes.to_string rows.(pe)))
  done;
  Buffer.contents buf

let to_svg ?(width = 800) ?(row_height = 22) ?from_time ?to_time platform t =
  let lo, hi = window ?from_time ?to_time t in
  let n_pes = Cell.Platform.n_pes platform in
  let label_width = 60 in
  let total_height = (n_pes * row_height) + 30 in
  let scale = float_of_int (width - label_width) /. (hi -. lo) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"11\">\n"
       width total_height);
  for pe = 0 to n_pes - 1 do
    let y = 20 + (pe * row_height) in
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"2\" y=\"%d\">%s</text>\n<rect x=\"%d\" y=\"%d\" \
          width=\"%d\" height=\"%d\" fill=\"#f2f2f2\"/>\n"
         (y + 14) (Cell.Platform.pe_name platform pe) label_width y
         (width - label_width) (row_height - 4));
  done;
  let paint s =
    if s.pe >= 0 && s.pe < n_pes && s.finish > lo && s.start < hi then begin
      let x = label_width + int_of_float ((Float.max lo s.start -. lo) *. scale) in
      let w =
        max 1 (int_of_float ((Float.min hi s.finish -. Float.max lo s.start) *. scale))
      in
      let y = 20 + (s.pe * row_height) in
      let color, h, dy, opacity =
        match s.kind with
        | `Compute -> ("#4878a8", row_height - 4, 0, 1.0)
        | `Transfer ->
            ("#c86830", (row_height - 4) / 3, (2 * (row_height - 4)) / 3, 1.0)
        | `Fault -> ("#d03030", row_height - 4, 0, 0.35)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
            fill-opacity=\"%.2f\"><title>%s [%.6f..%.6f]</title></rect>\n"
           x (y + dy) w h color opacity s.label s.start s.finish)
    end
  in
  List.iter paint (spans t);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\">%.6fs .. %.6fs</text>\n</svg>\n" label_width
       (total_height - 5) lo hi);
  Buffer.contents buf

let kind_cat = function
  | `Compute -> "compute"
  | `Transfer -> "transfer"
  | `Fault -> "fault"

let to_events platform t =
  let name_meta =
    List.init (Cell.Platform.n_pes platform) (fun pe ->
        Obs.Events.thread_name_event ~tid:pe (Cell.Platform.pe_name platform pe))
  in
  let seq = ref 0 in
  let span_events =
    List.map
      (fun s ->
        let e =
          {
            Obs.Events.seq = !seq;
            ts = s.start;
            name = s.label;
            cat = kind_cat s.kind;
            pid = 1;
            tid = s.pe;
            phase = Obs.Events.Complete (Float.max 0. (s.finish -. s.start));
            args = [];
          }
        in
        incr seq;
        e)
      (spans t)
  in
  name_meta @ span_events

let to_chrome ?(extra = []) platform t =
  Obs.Events.to_chrome_json (to_events platform t @ extra)
