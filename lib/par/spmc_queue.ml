(* SPMC work-stealing ring, after the ebsl micropool queue: the owner
   pushes at [tail] and pops at [head] optimistically with
   [fetch_and_add]; thieves move [head] forward by CAS, claiming half
   the visible elements in one shot. Cells are [option Atomic.t] so
   occupancy doubles as the generation guard: a slot is reusable only
   once its previous consumer has cleared it. *)

type 'a t = {
  head : int Atomic.t;
  tail : int Atomic.t;
  mask : int;
  cells : 'a option Atomic.t array;
}

let create ?(size_pow = 10) () =
  let n = 1 lsl size_pow in
  {
    head = Atomic.make 0;
    tail = Atomic.make 0;
    mask = n - 1;
    cells = Array.init n (fun _ -> Atomic.make None);
  }

let size t =
  let s = Atomic.get t.tail - Atomic.get t.head in
  if s < 0 then 0 else s

let push t v =
  let tail = Atomic.get t.tail in
  let cell = t.cells.(tail land t.mask) in
  match Atomic.get cell with
  | Some _ -> false (* previous generation not yet consumed: full *)
  | None ->
      Atomic.set cell (Some v);
      Atomic.set t.tail (tail + 1);
      true

(* Spin until the exclusively-claimed cell is visible. The claim
   (fetch_and_add or CAS on [head]) can race ahead of the producer's
   [Atomic.set cell] only across generations, which occupancy prevents;
   in practice the value is already there and this loop does not spin. *)
let rec take_cell cell =
  match Atomic.get cell with
  | Some v ->
      Atomic.set cell None;
      v
  | None ->
      Domain.cpu_relax ();
      take_cell cell

let pop t =
  let old_head = Atomic.fetch_and_add t.head 1 in
  if old_head >= Atomic.get t.tail then begin
    (* Overshot: roll back. Only the owner moves [tail], so [tail] is
       frozen here and concurrent thieves see size <= 0 and back off. *)
    Atomic.decr t.head;
    None
  end
  else Some (take_cell t.cells.(old_head land t.mask))

let steal victim ~into =
  let head = Atomic.get victim.head in
  let tail = Atomic.get victim.tail in
  let available = tail - head in
  if available <= 0 then 0
  else
    let want = (available + 1) / 2 in
    let room = into.mask + 1 - size into in
    let want = if want > room then room else want in
    if want <= 0 then 0
    else if not (Atomic.compare_and_set victim.head head (head + want)) then 0
    else begin
      (* The CAS transferred exclusive ownership of indices
         [head, head+want): drain them into the thief's own queue. *)
      for i = head to head + want - 1 do
        let v = take_cell victim.cells.(i land victim.mask) in
        if not (push into v) then
          (* Cannot happen: [room] was computed against [into]'s size
             and only [into]'s owner (the thief itself) pushes. *)
          invalid_arg "Spmc_queue.steal: destination overflow"
      done;
      want
    end
