(* Fixed domain pool over per-worker SPMC deques; see pool.mli for the
   wakeup and determinism contracts. *)

type task = unit -> unit

type t = {
  deques : task Spmc_queue.t array;
  injector : task Queue.t; (* protected by [m] *)
  m : Mutex.t;
  cond : Condition.t;
  sleepers : int Atomic.t;
  stop : bool Atomic.t;
  mutable domains : unit Domain.t array;
  n : int;
  created_at : float;
  (* per-worker stats: each cell written by one worker, read anywhere *)
  executed : int Atomic.t array;
  stolen : int Atomic.t array;
  steal_failures : int Atomic.t array;
  shielded : int Atomic.t array;
  busy : float Atomic.t array;
  (* previous [publish_stats] snapshot, so counter deltas stay monotonic *)
  mutable published : (int * int * int * int) array;
}

type ctx = { cpool : t; id : int }

let ctx_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let default_size () =
  match Sys.getenv_opt "CELLSTREAM_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> k
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let size t = t.n

(* ------------------------------------------------------------------ *)
(* Task acquisition                                                    *)

let pop_injector t =
  Mutex.lock t.m;
  let r = Queue.take_opt t.injector in
  Mutex.unlock t.m;
  r

let try_steal t id =
  let dq = t.deques.(id) in
  let got = ref None in
  let k = ref 1 in
  while Option.is_none !got && !k < t.n do
    let victim = (id + !k) mod t.n in
    let moved = Spmc_queue.steal t.deques.(victim) ~into:dq in
    if moved > 0 then begin
      Atomic.set t.stolen.(id) (Atomic.get t.stolen.(id) + moved);
      got := Spmc_queue.pop dq
    end
    else Atomic.incr t.steal_failures.(id);
    incr k
  done;
  !got

let find_task t id =
  match Spmc_queue.pop t.deques.(id) with
  | Some _ as r -> r
  | None -> (
      match pop_injector t with
      | Some _ as r -> r
      | None -> if t.n > 1 then try_steal t id else None)

let run_one t id (task : task) =
  Atomic.incr t.executed.(id);
  let t0 = Unix.gettimeofday () in
  (* Task closures capture their own exceptions into their promise; an
     exception escaping here means a raw closure leaked one, so count it
     rather than lose it silently — [stats] exposes the tally and tests
     assert it stays zero. *)
  (try task ()
   with e ->
     Atomic.incr t.shielded.(id);
     if Sys.getenv_opt "CELLSTREAM_DEBUG" <> None then
       Printf.eprintf "par: worker %d shielded %s\n%!" id
         (Printexc.to_string e));
  Atomic.set t.busy.(id) (Atomic.get t.busy.(id) +. (Unix.gettimeofday () -. t0))

(* ------------------------------------------------------------------ *)
(* Parking protocol                                                    *)

let work_visible t =
  (not (Queue.is_empty t.injector))
  || Array.exists (fun dq -> Spmc_queue.size dq > 0) t.deques

let park t =
  Mutex.lock t.m;
  Atomic.incr t.sleepers;
  (* Re-check under the lock: a producer that saw sleepers = 0 made its
     work visible before that read (SC atomics), so this check finds it;
     a producer that saw sleepers > 0 broadcasts under [m], which either
     precedes this check or interrupts the wait. Either way no lost
     wakeup. *)
  while (not (Atomic.get t.stop)) && not (work_visible t) do
    Condition.wait t.cond t.m
  done;
  Atomic.decr t.sleepers;
  Mutex.unlock t.m

let wake t =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.m;
    Condition.broadcast t.cond;
    Mutex.unlock t.m
  end

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)

let worker_loop t id =
  Domain.DLS.set ctx_key (Some { cpool = t; id });
  let rec loop () =
    match find_task t id with
    | Some task ->
        run_one t id task;
        loop ()
    | None -> if Atomic.get t.stop then () else (park t; loop ())
  in
  loop ()

let create ?size:(n = default_size ()) ?(deque_pow = 10) () =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      deques = Array.init n (fun _ -> Spmc_queue.create ~size_pow:deque_pow ());
      injector = Queue.create ();
      m = Mutex.create ();
      cond = Condition.create ();
      sleepers = Atomic.make 0;
      stop = Atomic.make false;
      domains = [||];
      n;
      created_at = Unix.gettimeofday ();
      executed = Array.init n (fun _ -> Atomic.make 0);
      stolen = Array.init n (fun _ -> Atomic.make 0);
      steal_failures = Array.init n (fun _ -> Atomic.make 0);
      shielded = Array.init n (fun _ -> Atomic.make 0);
      busy = Array.init n (fun _ -> Atomic.make 0.);
      published = Array.make n (0, 0, 0, 0);
    }
  in
  t.domains <- Array.init n (fun id -> Domain.spawn (fun () -> worker_loop t id));
  t

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Mutex.lock t.m;
    Atomic.set t.stop true;
    Condition.broadcast t.cond;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Submission and waiting                                              *)

let inject t task =
  Mutex.lock t.m;
  Queue.push task t.injector;
  Mutex.unlock t.m

let submit_task t task =
  (match Domain.DLS.get ctx_key with
  | Some c when c.cpool == t ->
      if not (Spmc_queue.push t.deques.(c.id) task) then inject t task
  | _ -> inject t task);
  wake t

let run_async = submit_task

let self () =
  match Domain.DLS.get ctx_key with
  | Some c -> Some c.cpool
  | None -> None

(* Wait for [pred]: a worker of this pool helps (runs tasks) so nested
   blocking cannot deadlock; an outside domain spins briefly then
   sleeps in 50 µs slices, which keeps single-core hosts from burning
   whole scheduler quanta polling. *)
let wait_until t pred =
  let helper =
    match Domain.DLS.get ctx_key with
    | Some c when c.cpool == t -> Some c.id
    | _ -> None
  in
  let idle = ref 0 in
  while not (pred ()) do
    match helper with
    | Some id -> (
        match find_task t id with
        | Some task ->
            run_one t id task;
            idle := 0
        | None ->
            incr idle;
            if !idle > 100 then Unix.sleepf 5e-5 else Domain.cpu_relax ())
    | None ->
        incr idle;
        if !idle > 100 then Unix.sleepf 5e-5 else Domain.cpu_relax ()
  done

let help_until = wait_until

type 'a promise = ('a, exn * Printexc.raw_backtrace) result option Atomic.t

let submit t f =
  let p = Atomic.make None in
  submit_task t (fun () ->
      let r =
        try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Atomic.set p (Some r));
  p

let await t p =
  wait_until t (fun () -> Atomic.get p <> None);
  match Atomic.get p with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)

(* Await every slot, then fail on the lowest-index error: the reported
   exception does not depend on completion order. *)
let join_all t remaining (results : (_, exn * Printexc.raw_backtrace) result option array) =
  wait_until t (fun () -> Atomic.get remaining = 0);
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) -> ()
      | None -> assert false)
    results

let parallel_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if n = 1 then [| f xs.(0) |]
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    for i = 0 to n - 1 do
      submit_task t (fun () ->
          let r =
            try Ok (f xs.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          (* The decrement publishes the plain write above: the joiner
             observes [remaining = 0] through an atomic read, which
             orders it after every slot write. *)
          Atomic.decr remaining)
    done;
    join_all t remaining results;
    Array.map
      (function Some (Ok v) -> v | _ -> assert false (* join_all raised *))
      results
  end

let parallel_for t ?chunk n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
      | None -> max 1 (n / (4 * t.n))
    in
    let n_chunks = (n + chunk - 1) / chunk in
    let ranges =
      Array.init n_chunks (fun c -> (c * chunk, min n ((c + 1) * chunk)))
    in
    ignore
      (parallel_map t
         (fun (lo, hi) ->
           for i = lo to hi - 1 do
             f i
           done)
         ranges)
  end

(* Dynamic fan-out: run [f] on every item; the items it returns are
   resubmitted as fresh tasks until the frontier drains. A child's
   pending-count increment happens before its parent's decrement, so the
   count can only reach zero when every transitively spawned item has
   finished. *)
let parallel_grow t f roots =
  let n_roots = Array.length roots in
  if n_roots > 0 then begin
    let pending = Atomic.make n_roots in
    let failure = Atomic.make None in
    let rec launch item =
      submit_task t (fun () ->
          (match f item with
          | children ->
              let k = Array.length children in
              if k > 0 then begin
                ignore (Atomic.fetch_and_add pending k);
                Array.iter launch children
              end
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          Atomic.decr pending)
    in
    Array.iter launch roots;
    wait_until t (fun () -> Atomic.get pending = 0);
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let race t entrants =
  if entrants = [] then invalid_arg "Pool.race: no entrants";
  let winner = Atomic.make None in
  let cancelled () = Atomic.get winner <> None in
  let thunks =
    Array.of_list
      (List.map
         (fun f () ->
           if not (cancelled ()) then
             let v = f ~cancelled in
             ignore (Atomic.compare_and_set winner None (Some v)))
         entrants)
  in
  (* Errors only propagate when nobody won: a raced search losing to a
     faster entrant is not a failure of the race. *)
  (try ignore (parallel_map t (fun th -> th ()) thunks)
   with e when Atomic.get winner <> None -> ignore e);
  match Atomic.get winner with
  | Some v -> v
  | None -> assert false (* some entrant must have won or raised *)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

type worker_stats = {
  executed : int;
  stolen : int;
  steal_failures : int;
  shielded : int;
  busy_s : float;
}

let stats t =
  Array.init t.n (fun i ->
      {
        executed = Atomic.get t.executed.(i);
        stolen = Atomic.get t.stolen.(i);
        steal_failures = Atomic.get t.steal_failures.(i);
        shielded = Atomic.get t.shielded.(i);
        busy_s = Atomic.get t.busy.(i);
      })

let publish_stats t =
  if Obs.Metrics.enabled () then begin
    let tasks = Obs.Metrics.counter_family "par_tasks_total" ~labels:[ "worker" ]
    and steals = Obs.Metrics.counter_family "par_steals_total" ~labels:[ "worker" ]
    and fails =
      Obs.Metrics.counter_family "par_steal_failures_total" ~labels:[ "worker" ]
    and shields =
      Obs.Metrics.counter_family "par_shielded_exceptions_total"
        ~labels:[ "worker" ]
    and busy =
      Obs.Metrics.gauge_family "par_worker_busy_fraction" ~labels:[ "worker" ]
    and pool_size = Obs.Metrics.gauge "par_pool_size" in
    Obs.Metrics.Gauge.set pool_size (float_of_int t.n);
    let wall = Unix.gettimeofday () -. t.created_at in
    let st = stats t in
    Array.iteri
      (fun i s ->
        let w = [ string_of_int i ] in
        let pe, ps, pf, px = t.published.(i) in
        Obs.Metrics.Counter.add (tasks w) (max 0 (s.executed - pe));
        Obs.Metrics.Counter.add (steals w) (max 0 (s.stolen - ps));
        Obs.Metrics.Counter.add (fails w) (max 0 (s.steal_failures - pf));
        Obs.Metrics.Counter.add (shields w) (max 0 (s.shielded - px));
        t.published.(i) <- (s.executed, s.stolen, s.steal_failures, s.shielded);
        Obs.Metrics.Gauge.set (busy w)
          (if wall > 0. then s.busy_s /. wall else 0.))
      st
  end
