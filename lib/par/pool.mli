(** Fixed-size domain pool with per-worker work-stealing deques.

    The pool spawns [size] worker domains at [create] and keeps them
    until [shutdown]. Each worker owns one {!Spmc_queue.t}; tasks
    submitted from a worker go to its own deque (falling back to the
    shared injector when the deque is full), tasks submitted from
    outside the pool go to a mutex-protected injector queue. Idle
    workers scan own deque -> injector -> steal (rotating over peers),
    then park on a condition variable; producers wake sleepers after
    publishing work, using a sleeper count read after the (sequentially
    consistent) work publication so wakeups cannot be lost.

    Blocking on results never deadlocks on nested use: when a worker
    awaits, it helps — running pool tasks until its predicate holds —
    instead of sleeping.

    Exceptions raised by tasks are captured with their backtraces and
    re-raised at the join point; combinators re-raise the error of the
    {e lowest-indexed} failing task, a deterministic choice independent
    of execution order. *)

type t

val default_size : unit -> int
(** Pool size from the [CELLSTREAM_DOMAINS] environment variable when
    it parses as a positive integer, else
    [Domain.recommended_domain_count ()]. *)

val create : ?size:int -> ?deque_pow:int -> unit -> t
(** Spawn [size] workers (default {!default_size}); each worker deque
    holds [2^deque_pow] tasks (default 10). *)

val size : t -> int

val shutdown : t -> unit
(** Stop and join all workers. Call only when no submitted work is
    outstanding (every combinator below awaits its own tasks, so this
    holds whenever they are used). Idempotent. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val self : unit -> t option
(** The pool whose worker domain is running the caller, if any. Lets
    code spawned onto a pool (plain tasks and {!Fiber}s alike) reach
    its own scheduler without threading the handle through every
    call. *)

val run_async : t -> (unit -> unit) -> unit
(** Fire-and-forget submission: enqueue the closure (own deque when
    called from a worker of this pool, injector otherwise) and wake a
    sleeper. The closure must capture its own exceptions — anything it
    leaks is shielded and counted in [shielded] ({!stats}), not
    propagated. This is the primitive {!Fiber} schedules on. *)

val help_until : t -> (unit -> bool) -> unit
(** Block until the predicate holds. A worker of this pool {e helps} —
    runs pool tasks between checks — so nested blocking cannot
    deadlock; an outside domain spins briefly then sleeps in 50 µs
    slices. The predicate must eventually be made true by pool tasks
    or another domain. *)

(** {1 Futures} *)

type 'a promise

val submit : t -> (unit -> 'a) -> 'a promise
val await : t -> 'a promise -> 'a
(** Re-raises the task's exception with its original backtrace. *)

(** {1 Combinators} *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving map; element [i] of the result is produced by
    exactly one task evaluating [f xs.(i)]. Returns only once every
    task has finished; if any failed, re-raises the lowest-index
    error. Empty and singleton arrays are evaluated in the calling
    domain without touching the pool. *)

val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f i] for [0 <= i < n], grouped into
    contiguous chunks (default: a balanced split over ~4 tasks per
    worker). Same completion and error semantics as {!parallel_map}. *)

val parallel_grow : t -> ('a -> 'a array) -> 'a array -> unit
(** Dynamic fan-out: run [f] on every root item; the items [f] returns
    are resubmitted as fresh tasks (stolen like any other work), until
    the whole transitively spawned frontier has drained. Built for
    node-budgeted search subtrees that split themselves when their
    budget runs out. Items communicate results through the caller's own
    shared state. If any task raises, one captured exception is
    re-raised after the drain — with dynamically spawned work there is
    no stable index order, so unlike {!parallel_map} the choice is not
    deterministic; callers needing determinism must capture their own
    errors. *)

val race : t -> ((cancelled:(unit -> bool) -> 'a) list) -> 'a
(** Run all entrants concurrently and return the value of whichever
    completes first (inherently timing-dependent — do not use where
    determinism is required; the deterministic alternative is
    [parallel_map] plus an explicit reduction). Losers are not
    interrupted but can poll [cancelled] to exit early; all entrants
    have finished when [race] returns. If every entrant raises, the
    lowest-index error is re-raised. *)

(** {1 Statistics} *)

type worker_stats = {
  executed : int;       (** tasks run by this worker *)
  stolen : int;         (** tasks this worker stole from peers *)
  steal_failures : int; (** steal attempts that found nothing / lost the race *)
  shielded : int;       (** exceptions leaked by raw closures and swallowed by
                            the worker shield — should stay zero; a nonzero
                            count means a {!run_async} closure failed to
                            capture its own errors *)
  busy_s : float;       (** seconds spent running tasks *)
}

val stats : t -> worker_stats array

val publish_stats : t -> unit
(** Push cumulative deltas since the previous call into the [obs]
    [par_*] metric families ([par_tasks_total], [par_steals_total],
    [par_steal_failures_total] counters and the
    [par_worker_busy_fraction] / [par_pool_size] gauges), labeled by
    worker index. No-op when metrics are disabled. *)
