(** Effects-based lightweight tasks (fibers) over {!Pool}.

    A fiber is a computation spawned onto the pool whose blocking
    points {e suspend} instead of occupying a domain: [await] on an
    unresolved promise captures the fiber's continuation (OCaml 5
    effect handlers) and parks it as a waiter on that promise; the
    domain immediately moves on to other pool work. When the promise
    resolves, the continuation is resubmitted as an ordinary pool task
    on the work-stealing deques. [yield] likewise resubmits the
    continuation, sending a long-running fiber to the back of its
    worker's FIFO deque so thousands of fibers interleave fairly on a
    fixed pool — the substrate that lets the daemon keep serving cache
    hits while slow branch-and-bound solves are in flight.

    Both [await] and [yield] degrade gracefully outside a fiber:
    [await] falls back to {!Pool.help_until} (a pool worker helps —
    runs tasks — so nested blocking cannot deadlock; an outside domain
    spin-waits), and [yield] is a no-op. Code can therefore call them
    unconditionally, e.g. from a solver's [should_stop] hook.

    Determinism: fibers schedule {e execution}, not {e results}. A
    computation whose value depends only on its inputs yields the same
    value at any pool size and any interleaving; {!parallel_map}
    additionally re-raises the lowest-index error, independent of
    completion order — the same PR-4 contract as {!Pool.parallel_map}. *)

type 'a t
(** A fiber handle: a promise resolved when the fiber's body returns
    or raises. *)

val spawn : ?pool:Pool.t -> (unit -> 'a) -> 'a t
(** Start [f] as a fiber on [pool]. Without [?pool] the caller must be
    running on a pool domain (inside a fiber or a pool task), and that
    pool is used.
    @raise Invalid_argument outside any pool when [?pool] is omitted. *)

val await : 'a t -> 'a
(** The fiber's result; re-raises its exception with the original
    backtrace. Inside a fiber this suspends (never blocks a domain);
    outside it blocks via {!Pool.help_until}. A resolved fiber can be
    awaited any number of times. *)

val yield : unit -> unit
(** Reschedule the current fiber to the back of the worker's deque and
    run other pool work first. No-op outside a fiber. *)

val yielder : every:int -> unit -> unit
(** [yielder ~every] is a stateful tick: every [every]-th call yields.
    Made to wrap polled hooks like the solvers' [should_stop] so long
    dives share their domain at node-budget boundaries.
    @raise Invalid_argument when [every < 1]. *)

val run : Pool.t -> (unit -> 'a) -> 'a
(** [spawn] + [await]: run [f] as a root fiber and wait for it. The
    usual entry point from a non-pool domain. *)

val parallel_map : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving map with one fiber per element. Returns only once
    every fiber has finished; if any failed, re-raises the
    lowest-index error (deterministic, like {!Pool.parallel_map}).
    Same [?pool] defaulting as {!spawn}. *)

val poll : 'a t -> ('a, exn * Printexc.raw_backtrace) result option
(** Nonblocking completion probe. *)
