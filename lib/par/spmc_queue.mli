(** Single-producer multi-consumer work-stealing queue.

    One {e owner} domain enqueues at the tail and dequeues at the head;
    any number of {e thief} domains bulk-steal from the head. The design
    follows the ebsl micropool queue: a fixed-capacity ring of
    [Atomic.t] cells, a tail index written only by the owner, and a head
    index advanced by consumers — optimistically ([fetch_and_add], then
    rollback on overshoot) by the owner, by compare-and-set by thieves.

    Memory-ordering argument (OCaml atomics are sequentially
    consistent):

    - the owner writes a cell {e before} publishing it by bumping the
      tail, so any consumer that claimed an index below an observed
      tail reads a fully initialised cell;
    - a claimed index is owned exclusively (owner claims by
      [fetch_and_add], thieves by a successful CAS over the whole
      stolen range), so the subsequent read+clear of the cell is
      race-free;
    - a cell is reused by [push] only after the consumer of the
      previous generation cleared it — [push] refuses to overwrite an
      occupied cell — so a slow consumer can never clear a
      newer-generation value.

    The owner's optimistic dequeue can transiently overshoot the tail;
    the owner is single-threaded, so the tail is frozen while the
    overshoot is rolled back and thieves observe a non-positive size
    and simply fail their steal. *)

type 'a t

val create : ?size_pow:int -> unit -> 'a t
(** Ring of [2^size_pow] slots (default 10, i.e. 1024). *)

val push : 'a t -> 'a -> bool
(** Owner only. [false] when the ring is full (the next slot has not
    been cleared by its consumer yet). *)

val pop : 'a t -> 'a option
(** Owner only: take the oldest element. *)

val steal : 'a t -> into:'a t -> int
(** Thief: claim up to half of the victim's elements (at least one when
    non-empty) and push them onto [into], the thief's own queue (the
    thief must be [into]'s owner). Returns the number of elements
    moved; 0 when the victim looked empty, the CAS lost a race, or
    [into] has no room for a single element. *)

val size : 'a t -> int
(** Snapshot of the current element count; may be stale (and
    transiently negative readings are clamped to 0). *)
