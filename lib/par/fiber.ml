(* Effects-based lightweight tasks over Pool; see fiber.mli for the
   scheduling and determinism contracts. *)

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

(* A promise is a CAS-stepped state machine: waiters accumulate (in
   reverse registration order) until the single Pending->Done
   transition, whose winner runs every waiter exactly once. *)
type 'a state =
  | Pending of ('a outcome -> unit) list
  | Done of 'a outcome

type 'a t = { pool : Pool.t; state : 'a state Atomic.t }

type _ Effect.t +=
  | Await : 'a t -> 'a outcome Effect.t
  | Yield : unit Effect.t

let pool_of ?pool () =
  match pool with
  | Some p -> p
  | None -> (
      match Pool.self () with
      | Some p -> p
      | None ->
          invalid_arg
            "Fiber.spawn: no ~pool given and the caller is not on a pool \
             domain")

let resolve (p : 'a t) (o : 'a outcome) =
  let rec settle () =
    match Atomic.get p.state with
    | Done _ -> assert false (* single producer *)
    | Pending ws as seen ->
        if Atomic.compare_and_set p.state seen (Done o) then
          (* registration order: waiters were consed on *)
          List.iter (fun w -> w o) (List.rev ws)
        else settle ()
  in
  settle ()

(* Register [w] to run with the outcome; runs it now if already done.
   [w] must be cheap and total — it executes on whichever domain
   resolves the promise. *)
let on_resolve (p : 'a t) (w : 'a outcome -> unit) =
  let rec add () =
    match Atomic.get p.state with
    | Done o -> w o
    | Pending ws as seen ->
        if not (Atomic.compare_and_set p.state seen (Pending (w :: ws))) then
          add ()
  in
  add ()

let poll (p : 'a t) =
  match Atomic.get p.state with Done o -> Some o | Pending _ -> None

(* Each fiber body runs under its own deep handler. Await suspends the
   fiber by parking its continuation as a waiter on the target promise;
   the resolver resubmits it as a fresh pool task. Yield resubmits the
   continuation immediately, sending the fiber to the back of the
   worker's FIFO deque so siblings get the domain. *)
let run_body (type a) (pool : Pool.t) (p : a t) (f : unit -> a) () =
  Effect.Deep.match_with
    (fun () ->
      match f () with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    ()
    {
      retc = (fun o -> resolve p o);
      exnc =
        (fun e ->
          (* only reachable if resolve itself raised *)
          resolve p (Error (e, Printexc.get_raw_backtrace ())));
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Await q ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  on_resolve q (fun o ->
                      Pool.run_async pool (fun () -> Effect.Deep.continue k o)))
          | Yield ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  Pool.run_async pool (fun () -> Effect.Deep.continue k ()))
          | _ -> None);
    }

let spawn ?pool f =
  let pool = pool_of ?pool () in
  let p = { pool; state = Atomic.make (Pending []) } in
  Pool.run_async pool (run_body pool p f);
  p

let of_outcome = function
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

(* Outside a fiber the Await perform is unhandled; fall back to a
   helping block on the pool, which is deadlock-free for pool workers
   and a spin-then-sleep wait for outside domains. *)
let block (p : 'a t) =
  Pool.help_until p.pool (fun () -> poll p <> None);
  match poll p with Some o -> o | None -> assert false

let await p =
  match poll p with
  | Some o -> of_outcome o
  | None -> (
      match Effect.perform (Await p) with
      | o -> of_outcome o
      | exception Effect.Unhandled (Await _) -> of_outcome (block p))

let yield () =
  match Effect.perform Yield with
  | () -> ()
  | exception Effect.Unhandled Yield -> ()

let yielder ~every =
  if every < 1 then invalid_arg "Fiber.yielder: every must be >= 1";
  let n = ref 0 in
  fun () ->
    incr n;
    if !n >= every then begin
      n := 0;
      yield ()
    end

let run pool f = await (spawn ~pool f)

let parallel_map ?pool f xs =
  let pool = pool_of ?pool () in
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let fibers = Array.map (fun x -> spawn ~pool (fun () -> f x)) xs in
    (* Await in index order: every fiber completes before we return, and
       on failure the lowest-index error wins — same determinism
       contract as Pool.parallel_map. *)
    let outcomes =
      Array.map (fun fb -> match poll fb with
          | Some o -> o
          | None -> (
              match Effect.perform (Await fb) with
              | o -> o
              | exception Effect.Unhandled (Await _) -> block fb))
        fibers
    in
    Array.iter (function Error _ as e -> ignore (of_outcome e) | Ok _ -> ())
      outcomes;
    Array.map (function Ok v -> v | Error _ -> assert false) outcomes
  end
