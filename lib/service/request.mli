(** A mapping request: solve one (graph, platform, solver options)
    triple. The unit of work of the batched front end ({!Batch}) and
    the key domain of the mapping cache ({!Cache}).

    Requests are keyed by a {e canonical} fingerprint — 32 hex digits
    combining {!Streaming.Canonical.fingerprint} of the graph (invariant
    under task relabeling and edge reordering) with FNV-1a hashes of
    every platform field and every solver option. Two requests with
    equal fingerprints describe the same problem up to task relabeling,
    so a cached solution can be transported between them (subject to the
    validation described in {!Batch}). *)

type strategy =
  | Portfolio of { seed : int; restarts : int }
      (** {!Cellsched.Portfolio.solve}: deterministic for fixed seed and
          restart count at any pool size (the PR-4 contract). *)
  | Bb of { rel_gap : float; max_nodes : int }
      (** {!Cellsched.Mapping_search.solve} under a node budget — a
          deterministic cutoff, unlike a wall-clock limit. *)

type t = {
  label : string;  (** User-facing name (e.g. the graph file); not keyed. *)
  platform : Cell.Platform.t;
  graph : Streaming.Graph.t;
  strategy : strategy;
  deadline_ms : float option;
      (** Wall-clock reply budget in milliseconds, counted by the daemon
          from admission: when it expires the solve is cancelled and the
          best incumbent so far is returned, tagged partial. [None] (the
          default, and the batch front end's behaviour) never cancels.
          Not part of the fingerprint — the problem is the same whatever
          the caller's patience. *)
  prio : int;
      (** Dispatch priority in the daemon's pending queue: higher first,
          FIFO within a level. Default [0]. Not part of the fingerprint. *)
}

val default_strategy : strategy
(** [Portfolio] with {!Cellsched.Portfolio.default_seed} and
    {!Cellsched.Portfolio.default_restarts}. *)

val strategy_to_string : strategy -> string
(** Stable one-token rendering, e.g.
    ["portfolio:seed=24301,restarts=6"]. *)

val fingerprint : t -> string
(** 32 lower-case hex digits: canonical graph hash, then a hash of
    (graph hash, platform, strategy). *)

val parse_line :
  load_graph:(string -> Streaming.Graph.t) ->
  ?default_spes:int ->
  ?default_strategy:strategy ->
  int ->
  string ->
  t option
(** Parse one line of a batch request file:
    {v <graph-file> [spes=N] [strategy=portfolio|bb] [seed=N]
       [restarts=N] [gap=F] [max-nodes=N] [deadline=MS] [prio=N] v}
    Blank lines and [#] comments yield [None]. The graph file is loaded
    through [load_graph] (callers may memoize). The platform is a QS22
    with [spes] SPEs (default [default_spes], itself defaulting to 8).
    [deadline] must be a positive number of milliseconds.
    @raise Failure with the line number on malformed input. *)
