(** Batched mapping front end: answer a stream of {!Request}s from the
    {!Cache}, solving only the distinct misses.

    {b Pipeline.} Requests are fingerprinted and classified in order:
    cache hits are answered by {e transporting} the stored canonical
    assignment onto the request graph through its own canonical order;
    duplicate fingerprints within the batch defer to the first
    occurrence's solve; the remaining distinct misses are dispatched —
    over a {!Par.Pool.t} when given — to the requested solver
    ({!Cellsched.Portfolio} or {!Cellsched.Mapping_search}).

    {b Determinism.} Parallelism is {e across} requests only and every
    solver call is deterministic (PR-4 contract: fixed seeds, node
    budgets instead of wall-clock cutoffs), so the response list —
    sources included — is a pure function of (cache state, request
    list): byte-identical between a sequential per-request loop and
    pooled batches of any size.

    {b Hit validation.} Canonical fingerprints are invariant under
    relabeling but only probabilistically distinct, and colour
    refinement can leave interchangeable-looking tasks that are not.
    Every transported assignment is therefore validated on the request
    graph (arity, PE range, and steady-state period within 1 ulp-scale
    relative tolerance of the cached period); a failed validation
    bumps [svc_transport_rejects_total] and falls back to a fresh
    solve — a fingerprint collision can cost time, never correctness.

    Observability ([svc_*] families, default-off like every other
    layer): requests/hits/misses/transport-rejects counters and a batch
    latency histogram here; evictions, recoveries and size gauges in
    {!Cache}. *)

type source =
  | Hit  (** Answered from the cache (incl. in-batch duplicates). *)
  | Solved  (** A fresh solver run (misses and validation fallbacks). *)

type response = {
  request : Request.t;
  fingerprint : string;
  source : source;
  assignment : int array;  (** PE per task id of the {e request} graph. *)
  period : float;  (** The solver's canonical period. *)
  feasible : bool;
  throughput : float;  (** [1 / period] ([0.] when infeasible). *)
  bottleneck : string;
}

val solve_request :
  ?span:Obs.Span.ctx ->
  ?should_stop:(unit -> bool) ->
  Request.t ->
  int array * float * float
(** One uncached solver run: the assignment (request task order), the
    canonical period, and the best proven lower bound on the optimal
    period (the search's bound for [bb], the combinatorial
    {!Cellsched.Bounds.root_bound} for the portfolio) — the daemon
    quotes the bound and its implied gap on partial replies. Exposed
    for differential testing and as the daemon's cancellable solve
    entry point: [should_stop] (default: never) is threaded into the
    underlying solver, which then returns its best incumbent so far —
    always a feasible mapping — instead of running to completion. *)

val try_cache_view : view:Cache.view -> Request.t -> response option
(** The pure hit path: fingerprint, transport, validate. [Some] is a
    [Hit] response bitwise identical to what {!run} would return for a
    singleton batch hitting the same entry; [None] is a miss (a failed
    transport validation bumps [svc_transport_rejects_total], exactly as
    in {!run}). Never solves. Every cache touch goes through the
    [view], so a plain {!Cache.t} and a {!Shard.t} serve requests
    through identical code — the basis of the sharded-vs-single
    bitwise-identity guarantee. *)

val try_cache : cache:Cache.t -> Request.t -> response option
(** [try_cache_view] over {!Cache.view}[ cache]. *)

val solved_response_view :
  ?store:bool -> view:Cache.view -> Request.t -> int array * float -> response
(** Wrap a {!solve_request} result into a [Solved] response, computing
    the summary (feasibility, throughput, bottleneck). [store] (default
    [true]) also records the entry through the view; the daemon passes
    [store:false] for deadline-cancelled partial results so a timing-
    dependent incumbent can never poison the deterministic cache. *)

val solved_response :
  ?store:bool -> cache:Cache.t -> Request.t -> int array * float -> response
(** [solved_response_view] over {!Cache.view}[ cache]. *)

val run_view :
  ?span:Obs.Span.ctx ->
  ?pool:Par.Pool.t ->
  ?fibers:bool ->
  view:Cache.view ->
  Request.t list ->
  response list
(** Responses in request order. The cache behind [view] is updated in
    place with every fresh solve.

    With a [pool], distinct misses fan out as suspendable
    {!Par.Fiber}s by default, each yielding its domain at solver
    node-budget boundaries so more misses than domains interleave;
    [~fibers:false] restores the domain-granular thunk dispatch. Both
    produce bytes identical to the sequential path — fibers schedule
    execution, never results.

    [span] (default {!Obs.Span.null}: free) records one ["batch"] span
    with a ["solve:<fp12>"] child per distinct miss (named by the first
    12 hex digits of the request fingerprint, so the merged stream is
    independent of which pool worker ran which solve), each containing
    the underlying solver's flight-recorder spans. *)

val run :
  ?span:Obs.Span.ctx ->
  ?pool:Par.Pool.t ->
  ?fibers:bool ->
  cache:Cache.t ->
  Request.t list ->
  response list
(** [run_view] over {!Cache.view}[ cache]. *)

val render : response -> string
(** Deterministic multi-line text block (the CLI output format; the
    differential tests compare these byte-for-byte). *)
