module Rng = Support.Rng

type spec = {
  seed : int;
  requests : int;
  skew : float;
  graphs : (string * Streaming.Graph.t) list;
  spes : int list;
  strategies : Request.strategy list;
}

let default_spec =
  {
    seed = 42;
    requests = 200;
    skew = 1.1;
    graphs = [];
    spes = [ 8 ];
    strategies = [ Request.default_strategy ];
  }

(* The population is the cartesian product graphs × spes × strategies,
   in declaration order. Popularity rank is a seeded shuffle of that
   order, so "which problem is hot" is decided by the seed, not by the
   accident of which graph the caller listed first. *)
let population spec =
  if spec.graphs = [] then invalid_arg "Workload: empty graph population";
  if spec.spes = [] then invalid_arg "Workload: empty spes list";
  if spec.strategies = [] then invalid_arg "Workload: empty strategy list";
  List.iter
    (fun s ->
      if s < 0 || s > 8 then
        invalid_arg (Printf.sprintf "Workload: spes=%d out of range (0-8)" s))
    spec.spes;
  let items =
    List.concat_map
      (fun (label, graph) ->
        List.concat_map
          (fun spes ->
            List.map
              (fun strategy ->
                {
                  Request.label;
                  platform = Cell.Platform.qs22 ~n_spe:spes ();
                  graph;
                  strategy;
                  deadline_ms = None;
                  prio = 0;
                })
              spec.strategies)
          spec.spes)
      spec.graphs
    |> Array.of_list
  in
  let rng = Rng.create (Stdlib.abs spec.seed + 0x5ca1e) in
  Rng.shuffle rng items;
  items

(* Zipf over ranks: rank k (0-based) has weight 1/(k+1)^s. Sampling is
   one uniform float against the cumulative weights, resolved by binary
   search — O(log n) per request, exact (no rejection), and a pure
   function of the Rng stream. *)
let zipf_cumulative ~skew n =
  let cum = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (k + 1)) skew);
    cum.(k) <- !total
  done;
  cum

let sample_rank rng cum =
  let n = Array.length cum in
  let r = Rng.float rng cum.(n - 1) in
  (* Smallest k with cum.(k) > r. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) > r then hi := mid else lo := mid + 1
  done;
  !lo

let generate spec =
  if spec.requests < 0 then invalid_arg "Workload: negative request count";
  if not (Float.is_finite spec.skew) || spec.skew < 0. then
    invalid_arg "Workload: skew must be a finite non-negative float";
  let pop = population spec in
  let cum = zipf_cumulative ~skew:spec.skew (Array.length pop) in
  let rng = Rng.create spec.seed in
  Array.init spec.requests (fun _ -> pop.(sample_rank rng cum))

let split ~domains requests =
  if domains <= 0 then invalid_arg "Workload.split: non-positive domains";
  let n = Array.length requests in
  Array.init domains (fun d ->
      (* Round-robin: client d replays requests d, d+domains, ... in
         stream order, so per-client streams preserve arrival order. *)
      Array.init ((n - d + domains - 1) / domains) (fun i ->
          requests.((i * domains) + d)))

(* --- wire rendering ------------------------------------------------------- *)

(* The request-file grammar splits on whitespace and treats '#' as a
   comment; a label containing either (or '=' — it would parse as an
   attribute) cannot round-trip. *)
let token_safe label =
  label <> ""
  && String.for_all
       (fun c -> c > ' ' && c <> '#' && c <> '=' && c <> '\x7f')
       label

let line (r : Request.t) =
  if not (token_safe r.Request.label) then
    invalid_arg
      (Printf.sprintf "Workload.line: label %S is not request-line safe"
         r.Request.label);
  let buf = Buffer.create 96 in
  Buffer.add_string buf r.Request.label;
  Printf.bprintf buf " spes=%d" r.platform.Cell.Platform.n_spe;
  (match r.strategy with
  | Request.Portfolio { seed; restarts } ->
      Printf.bprintf buf " strategy=portfolio seed=%d restarts=%d" seed
        restarts
  | Request.Bb { rel_gap; max_nodes } ->
      Printf.bprintf buf " strategy=bb gap=%.17g max-nodes=%d" rel_gap
        max_nodes);
  (match r.deadline_ms with
  | Some ms -> Printf.bprintf buf " deadline=%.17g" ms
  | None -> ());
  if r.prio <> 0 then Printf.bprintf buf " prio=%d" r.prio;
  Buffer.contents buf

let lines ?(ids = false) requests =
  Array.to_list requests
  |> List.mapi (fun i r ->
         if ids then Printf.sprintf "id=r%d %s" i (line r) else line r)
