module SS = Cellsched.Steady_state
module M = Cellsched.Mapping

type source = Hit | Solved

type response = {
  request : Request.t;
  fingerprint : string;
  source : source;
  assignment : int array;
  period : float;
  feasible : bool;
  throughput : float;
  bottleneck : string;
}

let m_requests =
  Obs.Metrics.counter ~help:"Requests accepted by the batch front end"
    "svc_requests_total"

let m_hits =
  Obs.Metrics.counter ~help:"Requests answered from the mapping cache"
    "svc_hits_total"

let m_misses =
  Obs.Metrics.counter ~help:"Requests answered by a fresh solver run"
    "svc_misses_total"

let m_rejects =
  Obs.Metrics.counter
    ~help:"Cache hits whose transported mapping failed validation"
    "svc_transport_rejects_total"

let h_batch =
  Obs.Metrics.histogram ~help:"Wall-clock latency of one batch run"
    "svc_batch_seconds"

(* Returns the assignment, its period and the best proven lower bound
   on the optimal period (the combinatorial {!Cellsched.Bounds} root
   for the portfolio, the search's own bound for [bb]) — the daemon
   quotes the bound and the implied optimality gap on partial replies. *)
let solve_request ?(span = Obs.Span.null) ?(should_stop = fun () -> false)
    (r : Request.t) =
  match r.Request.strategy with
  | Request.Portfolio { seed; restarts } ->
      let res =
        Cellsched.Portfolio.solve ~span ~should_stop ~seed ~restarts r.platform
          r.graph
      in
      ( M.to_array res.Cellsched.Portfolio.best,
        res.Cellsched.Portfolio.period,
        res.Cellsched.Portfolio.lower_bound )
  | Request.Bb { rel_gap; max_nodes } ->
      (* A node budget, never a wall-clock limit: early stopping must be
         deterministic for the batch determinism contract to hold. The
         daemon's deadline cancellation enters through [should_stop],
         and such results are tagged partial rather than cached. *)
      let options =
        {
          Cellsched.Mapping_search.default_options with
          rel_gap;
          max_nodes;
          time_limit = 3600.;
        }
      in
      let res =
        Cellsched.Mapping_search.solve ~span ~options ~should_stop r.platform
          r.graph
      in
      ( M.to_array res.Cellsched.Mapping_search.mapping,
        res.Cellsched.Mapping_search.period,
        res.Cellsched.Mapping_search.lower_bound )

let summary (r : Request.t) assignment period =
  let m = M.make r.Request.platform r.Request.graph assignment in
  let loads = SS.loads r.platform r.graph m in
  let feasible = SS.feasible r.platform r.graph m in
  let resource, _ = SS.bottleneck r.platform loads in
  let bottleneck =
    Format.asprintf "%a" (SS.pp_resource r.platform) resource
  in
  let throughput =
    if period > 0. && Float.is_finite period then 1. /. period else 0.
  in
  (feasible, throughput, bottleneck)

(* Pull a stored canonical assignment back onto the request's task ids:
   canonical position [p] holds the PE of the task at position [p] of
   the request graph's own canonical order. *)
let transport (entry : Cache.entry) ord =
  let n = Array.length ord in
  if Array.length entry.Cache.canonical_assignment <> n then None
  else begin
    let a = Array.make n 0 in
    Array.iteri (fun p id -> a.(id) <- entry.Cache.canonical_assignment.(p)) ord;
    Some a
  end

(* A fingerprint match is necessary, not sufficient (64-bit hash;
   colour-refinement ties): accept the transported mapping only if it
   is well-formed on the request graph and reproduces the cached period
   there. Bitwise equality holds for identical resubmission; the
   relative tolerance absorbs the summation-order rounding of a
   relabeled-but-isomorphic request. *)
let validate (r : Request.t) (entry : Cache.entry) assignment =
  let n_pes = Cell.Platform.n_pes r.Request.platform in
  Array.for_all (fun pe -> pe >= 0 && pe < n_pes) assignment
  &&
  let m = M.make r.platform r.graph assignment in
  let p = SS.period r.platform (SS.loads r.platform r.graph m) in
  Int64.bits_of_float p = Int64.bits_of_float entry.Cache.period
  || Float.abs (p -. entry.Cache.period) <= 1e-9 *. Float.abs entry.Cache.period

(* One cache probe on precomputed key material; shared between the
   batch classifier and the daemon's hit path so both answer a given
   request bitwise alike. Every cache touch goes through a
   {!Cache.view}, so the same code serves one plain cache or a
   fingerprint-sharded map ({!Shard.view}) — the reply bytes depend
   only on what the probe returns, which is why sharded and single
   caches answer identically. *)
let try_cache_keyed ~(view : Cache.view) (r : Request.t) ~fp ~ord =
  match view.Cache.probe fp with
  | None -> None
  | Some entry -> (
      match transport entry ord with
      | Some assignment when validate r entry assignment ->
          Some
            {
              request = r;
              fingerprint = fp;
              source = Hit;
              assignment;
              period = entry.Cache.period;
              feasible = entry.Cache.feasible;
              throughput = entry.Cache.throughput;
              bottleneck = entry.Cache.bottleneck;
            }
      | _ ->
          if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_rejects;
          None)

let try_cache_view ~view r =
  try_cache_keyed ~view r ~fp:(Request.fingerprint r)
    ~ord:(Streaming.Canonical.order r.Request.graph)

let try_cache ~cache r = try_cache_view ~view:(Cache.view cache) r

let solved_keyed ~store ~(view : Cache.view) (r : Request.t) ~fp ~ord
    (assignment, period) =
  let feasible, throughput, bottleneck = summary r assignment period in
  if store then begin
    let canonical = Array.map (fun id -> assignment.(id)) ord in
    view.Cache.insert
      {
        Cache.fingerprint = fp;
        strategy = Request.strategy_to_string r.Request.strategy;
        canonical_assignment = canonical;
        period;
        feasible;
        throughput;
        bottleneck;
      }
  end;
  {
    request = r;
    fingerprint = fp;
    source = Solved;
    assignment;
    period;
    feasible;
    throughput;
    bottleneck;
  }

let solved_response_view ?(store = true) ~view r result =
  solved_keyed ~store ~view r
    ~fp:(Request.fingerprint r)
    ~ord:(Streaming.Canonical.order r.Request.graph)
    result

let solved_response ?store ~cache r result =
  solved_response_view ?store ~view:(Cache.view cache) r result

let run_view ?(span = Obs.Span.null) ?pool ?(fibers = true) ~view requests =
  Obs.Span.with_span span "batch" @@ fun span ->
  let t0 = Unix.gettimeofday () in
  let requests = Array.of_list requests in
  let n = Array.length requests in
  let fps = Array.map Request.fingerprint requests in
  let ords =
    Array.map (fun r -> Streaming.Canonical.order r.Request.graph) requests
  in
  let responses : response option array = Array.make n None in
  let try_hit i =
    match try_cache_keyed ~view requests.(i) ~fp:fps.(i) ~ord:ords.(i) with
    | Some r ->
        responses.(i) <- Some r;
        true
    | None -> false
  in
  (* Classify in request order: hit, in-batch duplicate, or miss. *)
  let planned = Hashtbl.create 16 in
  let misses = ref [] and duplicates = ref [] in
  for i = 0 to n - 1 do
    if not (try_hit i) then
      if Hashtbl.mem planned fps.(i) then duplicates := i :: !duplicates
      else begin
        Hashtbl.add planned fps.(i) ();
        misses := i :: !misses
      end
  done;
  let record_solved (i, assignment, period) =
    responses.(i) <-
      Some
        (solved_keyed ~store:true ~view requests.(i) ~fp:fps.(i) ~ord:ords.(i)
           (assignment, period))
  in
  (* Miss spans are named by the request fingerprint, so the merged
     stream is independent of which worker solved which miss. *)
  let solve_one i =
    Obs.Span.with_span span ("solve:" ^ String.sub fps.(i) 0 12) @@ fun span ->
    (* The yield tick suspends a fiber-run solve at node-budget
       boundaries so more misses than domains still interleave; it is
       a no-op on the thunk and sequential paths and never stops the
       solver, so all three paths compute identical results. *)
    let tick = Par.Fiber.yielder ~every:1 in
    let should_stop () =
      tick ();
      false
    in
    let assignment, period, _bound =
      solve_request ~span ~should_stop requests.(i)
    in
    (i, assignment, period)
  in
  (* Distinct misses fan out over the pool — as suspendable fibers by
     default, as domain-granular thunks with [~fibers:false]; each
     inner solve is deterministic, so fibered, pooled and sequential
     batches agree bitwise. *)
  let miss_indices = Array.of_list (List.rev !misses) in
  let solved =
    match pool with
    | Some p when Array.length miss_indices > 1 ->
        if fibers then
          Par.Fiber.run p (fun () -> Par.Fiber.parallel_map solve_one miss_indices)
        else Par.Pool.parallel_map p solve_one miss_indices
    | _ -> Array.map solve_one miss_indices
  in
  Array.iter record_solved solved;
  (* Duplicates are served by the entries the misses just filled in;
     the fallback solve only fires on a validation reject (hash
     collision or refinement tie — pathological, but kept correct). *)
  List.iter
    (fun i -> if not (try_hit i) then record_solved (solve_one i))
    (List.rev !duplicates);
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.Counter.add m_requests n;
    Array.iter
      (fun r ->
        match r with
        | Some { source = Hit; _ } -> Obs.Metrics.Counter.inc m_hits
        | Some { source = Solved; _ } -> Obs.Metrics.Counter.inc m_misses
        | None -> ())
      responses;
    Obs.Metrics.Histogram.observe h_batch (Unix.gettimeofday () -. t0)
  end;
  Array.to_list responses
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every index is classified above *))

let run ?span ?pool ?fibers ~cache requests =
  run_view ?span ?pool ?fibers ~view:(Cache.view cache) requests

let render r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "# %s strategy=%s\n" r.request.Request.label
    (Request.strategy_to_string r.request.Request.strategy);
  Printf.bprintf buf "fingerprint: %s\n" r.fingerprint;
  Printf.bprintf buf "source: %s\n"
    (match r.source with Hit -> "cache" | Solved -> "solver");
  Printf.bprintf buf "feasible: %b\n" r.feasible;
  Printf.bprintf buf "period: %.17g s\n" r.period;
  Printf.bprintf buf "throughput: %.17g instances/s\n" r.throughput;
  Printf.bprintf buf "bottleneck: %s\n" r.bottleneck;
  let mapping = M.make r.request.Request.platform r.request.Request.graph r.assignment in
  Buffer.add_string buf
    (Format.asprintf "%a"
       (M.pp r.request.Request.platform r.request.Request.graph)
       mapping);
  Buffer.add_char buf '\n';
  Buffer.contents buf
