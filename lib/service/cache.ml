module Json = Support.Json

type entry = {
  fingerprint : string;
  strategy : string;
  canonical_assignment : int array;
  period : float;
  feasible : bool;
  throughput : float;
  bottleneck : string;
}

type view = {
  probe : string -> entry option;
  insert : entry -> unit;
}

type node = { entry : entry; mutable last_used : int }

type t = {
  max_entries : int;
  max_bytes : int;
  publish_gauges : bool;
  tbl : (string, node) Hashtbl.t;
  mutable tick : int;
  mutable bytes : int;
}

let version = 1

(* Counts {e entries leaving the cache under LRU pressure} — an
   update-in-place overwrite of a resident fingerprint is not an
   eviction and must not bump this (overwrite-heavy streams used to be
   indistinguishable from thrashing in the exported counters). *)
let m_evictions =
  Obs.Metrics.counter
    ~help:
      "Mapping-cache entries evicted by the LRU bounds (update-in-place \
       overwrites excluded)"
    "svc_cache_evicted_total"

let m_recovered =
  Obs.Metrics.counter
    ~help:"Persisted caches that failed to load and recovered to empty"
    "svc_cache_recovered_total"

let g_entries =
  Obs.Metrics.gauge ~help:"Mapping-cache resident entries" "svc_cache_entries"

let g_bytes =
  Obs.Metrics.gauge ~help:"Mapping-cache resident bytes (approximate)"
    "svc_cache_bytes"

let publish t =
  if t.publish_gauges && Obs.Metrics.enabled () then begin
    Obs.Metrics.Gauge.set g_entries (float_of_int (Hashtbl.length t.tbl));
    Obs.Metrics.Gauge.set g_bytes (float_of_int t.bytes)
  end

(* [publish = false] mutes only the process-wide size gauges: a shard
   map wraps many caches and publishes per-shard gauge families instead
   (the eviction/recovery counters stay shared — they count events, not
   states, and sum correctly across shards). *)
let create ?(publish = true) ?(max_entries = 1024)
    ?(max_bytes = 16 * 1024 * 1024) () =
  if max_entries <= 0 || max_bytes <= 0 then
    invalid_arg "Cache.create: non-positive bound";
  {
    max_entries;
    max_bytes;
    publish_gauges = publish;
    tbl = Hashtbl.create 64;
    tick = 0;
    bytes = 0;
  }

let length t = Hashtbl.length t.tbl
let bytes_used t = t.bytes
let max_entries t = t.max_entries
let max_bytes t = t.max_bytes

(* Approximate resident size: words for the record and array plus the
   string payloads. Only relative accuracy matters — the bound exists
   to keep a long-lived service from growing without limit. *)
let entry_bytes e =
  96
  + (8 * Array.length e.canonical_assignment)
  + String.length e.fingerprint
  + String.length e.strategy
  + String.length e.bottleneck

let touch t node =
  t.tick <- t.tick + 1;
  node.last_used <- t.tick

let find t fingerprint =
  match Hashtbl.find_opt t.tbl fingerprint with
  | None -> None
  | Some node ->
      touch t node;
      Some node.entry

let remove t fingerprint =
  match Hashtbl.find_opt t.tbl fingerprint with
  | None -> ()
  | Some node ->
      t.bytes <- t.bytes - entry_bytes node.entry;
      Hashtbl.remove t.tbl fingerprint

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun fp node acc ->
        match acc with
        | Some (_, best) when best.last_used <= node.last_used -> acc
        | _ -> Some (fp, node))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (fp, _) ->
      remove t fp;
      if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_evictions

let add t entry =
  remove t entry.fingerprint;
  let size = entry_bytes entry in
  if size <= t.max_bytes then begin
    while Hashtbl.length t.tbl >= t.max_entries do
      evict_lru t
    done;
    let node = { entry; last_used = 0 } in
    touch t node;
    Hashtbl.add t.tbl entry.fingerprint node;
    t.bytes <- t.bytes + size;
    while t.bytes > t.max_bytes do
      evict_lru t
    done
  end;
  publish t

let entries t =
  Hashtbl.fold (fun _ node acc -> node :: acc) t.tbl []
  |> List.sort (fun a b -> compare b.last_used a.last_used)
  |> List.map (fun node -> node.entry)

let view t = { probe = find t; insert = add t }

(* --- persistence ---------------------------------------------------------- *)

(* Floats persist as hex-float strings ("%h"): bitwise exact, and inf
   survives (JSON itself has no non-finite token). *)
let float_to_json f = Json.Str (Printf.sprintf "%h" f)

let entry_to_json e =
  Json.Obj
    [
      ("fingerprint", Json.Str e.fingerprint);
      ("strategy", Json.Str e.strategy);
      ( "assignment",
        Json.Arr
          (Array.to_list
             (Array.map (fun pe -> Json.Num (float_of_int pe))
                e.canonical_assignment)) );
      ("period", float_to_json e.period);
      ("feasible", Json.Bool e.feasible);
      ("throughput", float_to_json e.throughput);
      ("bottleneck", Json.Str e.bottleneck);
    ]

let to_json_string t =
  (* Oldest first, so reloading replays insertions in LRU order. *)
  Json.to_string
    (Json.Obj
       [
         ("cellsched_cache", Json.Num (float_of_int version));
         ("entries", Json.Arr (List.rev_map entry_to_json (entries t)));
       ])

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let require what = function Some v -> v | None -> corrupt "missing/invalid %s" what

let float_of_json what v =
  match v with
  | Json.Str s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> corrupt "invalid float for %s: %S" what s)
  | _ -> corrupt "missing/invalid %s" what

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let entry_of_json v =
  let member what = require what (Json.member what v) in
  let fingerprint = require "fingerprint" (Json.to_str (member "fingerprint")) in
  if String.length fingerprint <> 32 || not (String.for_all is_hex fingerprint)
  then corrupt "malformed fingerprint %S" fingerprint;
  let assignment =
    require "assignment" (Json.to_list (member "assignment"))
    |> List.map (fun v ->
           match Json.to_int v with
           | Some pe when pe >= 0 -> pe
           | _ -> corrupt "invalid assignment element")
    |> Array.of_list
  in
  {
    fingerprint;
    strategy = require "strategy" (Json.to_str (member "strategy"));
    canonical_assignment = assignment;
    period = float_of_json "period" (member "period");
    feasible = require "feasible" (Json.to_bool (member "feasible"));
    throughput = float_of_json "throughput" (member "throughput");
    bottleneck = require "bottleneck" (Json.to_str (member "bottleneck"));
  }

let load_string ?publish ?max_entries ?max_bytes s =
  let empty () = create ?publish ?max_entries ?max_bytes () in
  match
    let doc =
      match Json.parse s with Ok v -> v | Error m -> corrupt "%s" m
    in
    (match Json.member "cellsched_cache" doc with
    | Some v -> (
        match Json.to_int v with
        | Some v when v = version -> ()
        | Some v -> corrupt "format version %d (supported: %d)" v version
        | None -> corrupt "malformed version field")
    | None -> corrupt "not a cellsched cache file");
    let entries =
      require "entries" (Option.bind (Json.member "entries" doc) Json.to_list)
    in
    let t = empty () in
    List.iter (fun v -> add t (entry_of_json v)) entries;
    t
  with
  | t -> Ok t
  | exception Corrupt reason ->
      if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_recovered;
      Error (empty (), reason)

let load_file ?publish ?max_entries ?max_bytes path =
  if not (Sys.file_exists path) then create ?publish ?max_entries ?max_bytes ()
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> In_channel.input_all ic)
    with
    | contents -> (
        match load_string ?publish ?max_entries ?max_bytes contents with
        | Ok t -> t
        | Error (t, _) -> t)
    | exception Sys_error _ ->
        if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc m_recovered;
        create ?publish ?max_entries ?max_bytes ()

module For_testing = struct
  let crash_after_bytes : int option ref = ref None
end

let temp_path path = path ^ ".tmp"

(* Crash-window-free persistence: the document is written to a sibling
   temp file and atomically renamed over [path], so a process killed at
   any point leaves either the previous complete file or the new
   complete file — never a truncated one (recovery-to-empty used to
   silently drop every entry of a cache whose flush was interrupted).
   A stale [.tmp] from an earlier crash is simply overwritten. *)
let save_file ?(force = false) t path =
  if (not force) && Sys.file_exists path then
    Error (Printf.sprintf "%s exists, not overwriting (use force)" path)
  else
    let tmp = temp_path path in
    match
      let contents = to_json_string t in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          match !For_testing.crash_after_bytes with
          | Some n when n < String.length contents ->
              (* Simulated kill mid-write: part of the temp file is on
                 disk, the rename never happens. *)
              output_substring oc contents 0 n;
              raise (Sys_error "simulated crash during cache flush")
          | _ -> output_string oc contents);
      Sys.rename tmp path
    with
    | () -> Ok ()
    | exception Sys_error m -> Error m
