module Fnv = Support.Fnv

type strategy =
  | Portfolio of { seed : int; restarts : int }
  | Bb of { rel_gap : float; max_nodes : int }

type t = {
  label : string;
  platform : Cell.Platform.t;
  graph : Streaming.Graph.t;
  strategy : strategy;
  deadline_ms : float option;
  prio : int;
}

let default_strategy =
  Portfolio
    {
      seed = Cellsched.Portfolio.default_seed;
      restarts = Cellsched.Portfolio.default_restarts;
    }

let strategy_to_string = function
  | Portfolio { seed; restarts } ->
      Printf.sprintf "portfolio:seed=%d,restarts=%d" seed restarts
  | Bb { rel_gap; max_nodes } ->
      Printf.sprintf "bb:gap=%.17g,max-nodes=%d" rel_gap max_nodes

let platform_hash (p : Cell.Platform.t) =
  let open Fnv in
  let h = empty in
  let h = add_int h p.Cell.Platform.n_ppe in
  let h = add_int h p.Cell.Platform.n_spe in
  let h = add_float h p.Cell.Platform.bw in
  let h = add_float h p.Cell.Platform.eib_bw in
  let h = add_int h p.Cell.Platform.local_store in
  let h = add_int h p.Cell.Platform.code_size in
  let h = add_int h p.Cell.Platform.max_dma_in in
  let h = add_int h p.Cell.Platform.max_dma_to_ppe in
  let h = add_float h p.Cell.Platform.ppe_speedup in
  let h = add_int h p.Cell.Platform.n_cells in
  add_float h p.Cell.Platform.inter_cell_bw

let strategy_hash = function
  | Portfolio { seed; restarts } ->
      Fnv.(add_int (add_int (add_int empty 1) seed) restarts)
  | Bb { rel_gap; max_nodes } ->
      Fnv.(add_int (add_float (add_int empty 2) rel_gap) max_nodes)

let fingerprint r =
  let gfp = Streaming.Canonical.fingerprint r.graph in
  let meta =
    let open Fnv in
    let h = add_value empty gfp in
    let h = add_value h (platform_hash r.platform) in
    add_value h (strategy_hash r.strategy)
  in
  Fnv.to_hex gfp ^ Fnv.to_hex meta

(* --- request-file lines -------------------------------------------------- *)

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_line ~load_graph ?(default_spes = 8)
    ?(default_strategy = default_strategy) lineno line =
  let fail fmt =
    Printf.ksprintf (fun m -> failwith (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_words line with
  | [] -> None
  | file :: attrs ->
      let spes = ref default_spes in
      let strategy = ref None in
      let seed = ref None
      and restarts = ref None
      and gap = ref None
      and max_nodes = ref None in
      let deadline = ref None and prio = ref 0 in
      let int_of key v =
        match int_of_string_opt v with
        | Some i -> i
        | None -> fail "invalid int for %s: %S" key v
      in
      let float_of key v =
        match float_of_string_opt v with
        | Some f -> f
        | None -> fail "invalid float for %s: %S" key v
      in
      let set word =
        match String.index_opt word '=' with
        | None -> fail "expected key=value, got %S" word
        | Some i -> (
            let key = String.sub word 0 i
            and v = String.sub word (i + 1) (String.length word - i - 1) in
            match key with
            | "spes" -> spes := int_of key v
            | "strategy" -> (
                match v with
                | "portfolio" | "bb" -> strategy := Some v
                | _ -> fail "unknown strategy %S (portfolio, bb)" v)
            | "seed" -> seed := Some (int_of key v)
            | "restarts" -> restarts := Some (int_of key v)
            | "gap" -> gap := Some (float_of key v)
            | "max-nodes" -> max_nodes := Some (int_of key v)
            | "deadline" ->
                let ms = float_of key v in
                if not (Float.is_finite ms && ms > 0.) then
                  fail "deadline=%s must be a positive number of ms" v;
                deadline := Some ms
            | "prio" -> prio := int_of key v
            | _ -> fail "unknown request attribute %S" key)
      in
      List.iter set attrs;
      let strategy =
        let default name =
          (* Per-option defaults come from the chosen strategy family. *)
          match (name, default_strategy) with
          | "portfolio", Portfolio d -> Portfolio d
          | "portfolio", Bb _ ->
              Portfolio
                {
                  seed = Cellsched.Portfolio.default_seed;
                  restarts = Cellsched.Portfolio.default_restarts;
                }
          | "bb", Bb d -> Bb d
          | "bb", Portfolio _ ->
              Bb
                {
                  rel_gap = Cellsched.Mapping_search.default_options.rel_gap;
                  max_nodes = 50_000;
                }
          | _ -> assert false
        in
        let base =
          match !strategy with
          | Some name -> default name
          | None -> default_strategy
        in
        match base with
        | Portfolio d ->
            if !gap <> None || !max_nodes <> None then
              fail "gap=/max-nodes= apply only to strategy=bb";
            Portfolio
              {
                seed = Option.value !seed ~default:d.seed;
                restarts = Option.value !restarts ~default:d.restarts;
              }
        | Bb d ->
            if !seed <> None || !restarts <> None then
              fail "seed=/restarts= apply only to strategy=portfolio";
            Bb
              {
                rel_gap = Option.value !gap ~default:d.rel_gap;
                max_nodes = Option.value !max_nodes ~default:d.max_nodes;
              }
      in
      if !spes < 0 || !spes > 8 then fail "spes=%d out of range (0-8)" !spes;
      let graph =
        try load_graph file
        with
        | Sys_error m -> fail "%s" m
        | Streaming.Serialize.Parse_error (l, m) -> fail "%s:%d: %s" file l m
      in
      Some
        {
          label = file;
          platform = Cell.Platform.qs22 ~n_spe:!spes ();
          graph;
          strategy;
          deadline_ms = !deadline;
          prio = !prio;
        }
