(* Fingerprint-sharded mapping cache: N independent {!Cache.t} shards,
   each behind its own mutex, so concurrent client domains probing and
   inserting different fingerprints never serialize on one lock. The
   shard of a fingerprint is a pure function of the fingerprint alone
   (never of the shard count's history), so lookups are bitwise
   equivalent to a single cache at any shard count — only the lock and
   the LRU budget are partitioned. *)

module Metrics = Obs.Metrics

type t = {
  caches : Cache.t array;
  locks : Mutex.t array;
  per_entries : int;  (* per-shard LRU entry budget *)
  per_bytes : int;  (* per-shard LRU byte budget *)
  g_entries : Metrics.Gauge.t array;
  g_bytes : Metrics.Gauge.t array;
  c_probes : Metrics.Counter.t array;
}

let max_shards = 256

(* Per-shard metric children are hoisted at create: family lookups from
   hammering client domains would contend the registry lock. *)
let shard_gauges name help n =
  Array.init n (fun i ->
      Metrics.gauge_family ~help name ~labels:[ "shard" ] [ string_of_int i ])

let create ?(shards = 1) ?(max_entries = 1024)
    ?(max_bytes = 16 * 1024 * 1024) () =
  if shards <= 0 || shards > max_shards then
    invalid_arg
      (Printf.sprintf "Shard.create: shard count %d out of range (1-%d)"
         shards max_shards);
  if max_entries <= 0 || max_bytes <= 0 then
    invalid_arg "Shard.create: non-positive bound";
  (* The budgets are totals, split evenly: a 4-shard map holds at most
     what the single cache it replaces would (remainders are dropped,
     never doubled). *)
  let per_entries = max 1 (max_entries / shards) in
  let per_bytes = max 1 (max_bytes / shards) in
  {
    caches =
      Array.init shards (fun _ ->
          Cache.create ~publish:false ~max_entries:per_entries
            ~max_bytes:per_bytes ());
    locks = Array.init shards (fun _ -> Mutex.create ());
    per_entries;
    per_bytes;
    g_entries =
      shard_gauges "svc_shard_entries" "Resident entries per cache shard"
        shards;
    g_bytes =
      shard_gauges "svc_shard_bytes"
        "Approximate resident bytes per cache shard" shards;
    c_probes =
      Array.init shards (fun i ->
          Metrics.counter_family ~help:"Cache probes routed to each shard"
            "svc_shard_probes_total" ~labels:[ "shard" ] [ string_of_int i ]);
  }

let shards t = Array.length t.caches
let per_shard_entries t = t.per_entries
let per_shard_bytes t = t.per_bytes

(* Route by a byte-wise FNV-1a of the whole fingerprint, reduced by
   modulus. The fingerprint is itself a hex digest, but re-hashing
   costs nothing measurable and keeps the routing uniform even for the
   synthetic single-letter fingerprints tests like to use. *)
let shard_of_fingerprint t fp =
  let h = Support.Fnv.of_string fp in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int (shards t)))

let locked t i f =
  Mutex.lock t.locks.(i);
  Fun.protect ~finally:(fun () -> Mutex.unlock t.locks.(i)) (fun () -> f t.caches.(i))

let publish_shard t i c =
  if Metrics.enabled () then begin
    Metrics.Gauge.set t.g_entries.(i) (float_of_int (Cache.length c));
    Metrics.Gauge.set t.g_bytes.(i) (float_of_int (Cache.bytes_used c))
  end

let find t fp =
  let i = shard_of_fingerprint t fp in
  if Metrics.enabled () then Metrics.Counter.inc t.c_probes.(i);
  locked t i (fun c -> Cache.find c fp)

let add t entry =
  let i = shard_of_fingerprint t entry.Cache.fingerprint in
  locked t i (fun c ->
      Cache.add c entry;
      publish_shard t i c)

let length t =
  let n = ref 0 in
  for i = 0 to shards t - 1 do
    n := !n + locked t i Cache.length
  done;
  !n

let bytes_used t =
  let n = ref 0 in
  for i = 0 to shards t - 1 do
    n := !n + locked t i Cache.bytes_used
  done;
  !n

let shard_stats t =
  Array.init (shards t) (fun i ->
      locked t i (fun c -> (Cache.length c, Cache.bytes_used c)))

let view t = { Cache.probe = find t; insert = add t }

(* --- persistence ---------------------------------------------------------- *)

(* One file per shard, each written through {!Cache.save_file}'s
   temp-file+rename discipline — a kill at any point leaves every shard
   file either the previous complete document or the new one, never
   torn. Shard count 1 keeps the historical single-file name, so an
   unsharded daemon's cache file round-trips unchanged. *)

let shard_path path ~shards i =
  if shards = 1 then path else Printf.sprintf "%s.shard%d" path i

(* Shard files written by a previous, larger shard count would be
   silently resurrected by the next load; saving removes them. Files
   are created densely from 0, so scanning up from [from] until the
   first gap is total. *)
let remove_stale path ~from =
  let i = ref from in
  while
    !i <= max_shards
    && Sys.file_exists (Printf.sprintf "%s.shard%d" path !i)
  do
    (try Sys.remove (Printf.sprintf "%s.shard%d" path !i)
     with Sys_error _ -> ());
    incr i
  done

let save_files ?(force = false) t path =
  let n = shards t in
  let rec go i =
    if i >= n then Ok ()
    else
      match locked t i (fun c -> Cache.save_file ~force c (shard_path path ~shards:n i)) with
      | Ok () -> go (i + 1)
      | Error _ as e -> e
  in
  match go 0 with
  | Ok () ->
      (* A 1-shard save writes the plain [path], so even [.shard0] is
         stale then. *)
      remove_stale path ~from:(if n = 1 then 0 else n);
      Ok ()
  | Error _ as e -> e

let load_files ?shards:(n = 1) ?max_entries ?max_bytes path =
  let t = create ~shards:n ?max_entries ?max_bytes () in
  (* Which files exist on disk, not which this map would write: a map
     reconfigured from 4 shards to 2 (or to 1, or from a legacy single
     file to many) still loads everything, because each loaded entry is
     re-routed through [add] by its own fingerprint. *)
  let files =
    if n > 1 && Sys.file_exists (shard_path path ~shards:n 0) then
      (* Dense scan from 0: count-independent discovery. *)
      let rec go i acc =
        if i > max_shards then List.rev acc
        else
          let f = Printf.sprintf "%s.shard%d" path i in
          if Sys.file_exists f then go (i + 1) (f :: acc) else List.rev acc
      in
      go 0 []
    else if n = 1 && Sys.file_exists (Printf.sprintf "%s.shard0" path) then
      let rec go i acc =
        let f = Printf.sprintf "%s.shard%d" path i in
        if i <= max_shards && Sys.file_exists f then go (i + 1) (f :: acc)
        else List.rev acc
      in
      go 0 []
    else [ path ]
  in
  List.iter
    (fun file ->
      (* Stage through an unsharded load (full budgets, corrupt files
         recover to empty and bump [svc_cache_recovered_total]), then
         replay oldest-first so per-shard LRU order is preserved. *)
      let staged = Cache.load_file ~publish:false ?max_entries ?max_bytes file in
      List.iter (add t) (List.rev (Cache.entries staged)))
    files;
  t

module For_testing = struct
  let with_shard t i f = locked t i f
end
