(** LRU cache of solved mappings, keyed by request fingerprint.

    Bounded both by entry count and by (approximate) resident bytes;
    inserting past either bound evicts least-recently-used entries and
    bumps the [svc_cache_evicted_total] counter. Assignments are stored in
    {e canonical} task order ({!Streaming.Canonical.order}), so an entry
    written for one graph can be transported to any relabeled/reordered
    variant that produces the same fingerprint.

    {b Persistence.} [save_file]/[load_file] use a versioned JSON
    document ([{"cellsched_cache": 1, ...}]). Loading is total: a
    missing, truncated, corrupt or version-mismatched file yields an
    {e empty} cache — never an exception — and bumps
    [svc_cache_recovered_total] (except for the merely-missing case,
    which is the normal cold start). Periods round-trip bitwise (hex
    float encoding). Saving refuses to overwrite an existing file
    unless [force] — the repo-wide [--force] convention. *)

type entry = {
  fingerprint : string;  (** 32 hex digits ({!Request.fingerprint}). *)
  strategy : string;  (** Informational ({!Request.strategy_to_string}). *)
  canonical_assignment : int array;
      (** PE index per {e canonical} task position. *)
  period : float;
  feasible : bool;
  throughput : float;  (** Instances per second ([0.] when infeasible). *)
  bottleneck : string;  (** Rendered {!Cellsched.Steady_state.resource}. *)
}

type view = {
  probe : string -> entry option;  (** Fingerprint lookup. *)
  insert : entry -> unit;
}
(** A cache as the batch front end sees it: probe and insert, nothing
    else. {!Batch} routes every cache touch through a [view], so one
    plain {!t} ({!val-view}) and a fingerprint-sharded map
    ({!Shard.view}) serve requests through the same code path. *)

type t

val version : int
(** Current on-disk format version (1). *)

val create : ?publish:bool -> ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 1024 entries, 16 MiB. [publish] (default [true]) controls
    only the process-wide [svc_cache_entries]/[svc_cache_bytes] gauges;
    {!Shard} passes [false] and publishes per-shard gauge families
    instead (event counters — evictions, recoveries — are shared either
    way).
    @raise Invalid_argument on non-positive bounds. *)

val length : t -> int

val bytes_used : t -> int
(** Approximate resident size of the stored entries. *)

val max_entries : t -> int
val max_bytes : t -> int
(** The bounds this cache was created with (the shard-budget invariant
    checks read them back). *)

val find : t -> string -> entry option
(** Fingerprint lookup; a hit refreshes the entry's recency. *)

val add : t -> entry -> unit
(** Insert or replace, evicting LRU entries while over either bound.
    An entry larger than [max_bytes] on its own is dropped.
    [svc_cache_evicted_total] counts evicted {e entries} only: an
    update-in-place replacement of a resident fingerprint is not an
    eviction and never bumps it. *)

val entries : t -> entry list
(** Most-recently-used first. *)

val view : t -> view
(** This cache as a {!type-view} (probe = {!find}, insert = {!add}). *)

val to_json_string : t -> string

val load_string : ?publish:bool -> ?max_entries:int -> ?max_bytes:int ->
  string -> (t, t * string) result
(** Parse a persisted cache. [Error (empty, reason)] on any corruption
    (and [svc_cache_recovered_total] is bumped). *)

val load_file : ?publish:bool -> ?max_entries:int -> ?max_bytes:int ->
  string -> t
(** Total: missing file is a silent cold start; unreadable/corrupt
    content recovers to empty as in {!load_string}. *)

val save_file : ?force:bool -> t -> string -> (unit, string) result
(** No-clobber unless [force = true]; [Error] carries the reason.
    Atomic against crashes: the document is written to [path ^ ".tmp"]
    and renamed into place, so a process killed mid-flush leaves the
    previous complete file intact (a subsequent {!load_file} sees every
    entry of the last successful save, never a truncated document). *)

val temp_path : string -> string
(** The sibling temp file [save_file] stages through ([path ^ ".tmp"]);
    exposed so operators can clean up after a crashed daemon. *)

(**/**)

module For_testing : sig
  val crash_after_bytes : int option ref
  (** [Some n] makes the next [save_file] write only the first [n] bytes
      of the temp file and then fail as if the process had been killed
      mid-flush (no rename). Tests only; reset to [None] afterwards. *)
end
