(** Fingerprint-sharded mapping cache.

    Wraps N independent {!Cache.t} shards, each behind its own mutex,
    so concurrent client domains probing different fingerprints never
    serialize on a single lock. Routing is a pure function of the
    fingerprint ([FNV-1a mod shards]), so which shard holds an entry
    depends only on the entry itself — {e not} on insertion history —
    and a probe at any shard count returns bitwise the same entry a
    single cache would (when no eviction intervenes, hit/miss
    classification is shard-count-independent too, which is the
    identity the traffic suite asserts at shards 1/2/4/8).

    {b Budgets.} [max_entries]/[max_bytes] are {e totals}: each shard
    gets [total / shards] (at least 1), so a sharded map never holds
    more than the single cache it replaces. The per-shard bounds are
    enforced by {!Cache.add} inside the shard's critical section —
    never exceeded even mid-hammer.

    {b Persistence.} One file per shard ([path.shardI]; shard count 1
    keeps the plain historical [path]), each written atomically via
    {!Cache.save_file}. Loading discovers whatever files exist —
    legacy single file or any shard count — and re-routes every entry
    by its own fingerprint, so reconfiguring the shard count (or
    upgrading from an unsharded daemon) migrates automatically.
    Corrupt shard files recover to empty per shard and bump
    [svc_cache_recovered_total]; the surviving shards load intact. *)

type t

val max_shards : int
(** Upper bound on the shard count (256). *)

val create : ?shards:int -> ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 1 shard, 1024 entries / 16 MiB {e total}.
    @raise Invalid_argument when [shards] is outside [1..max_shards]
    or a bound is non-positive. *)

val shards : t -> int

val per_shard_entries : t -> int
val per_shard_bytes : t -> int
(** The per-shard budgets actually in force ([max 1 (total/shards)]). *)

val shard_of_fingerprint : t -> string -> int
(** The shard index a fingerprint routes to — pure, stable, uniform. *)

val find : t -> string -> Cache.entry option
(** Locked probe of the owning shard (refreshes recency on hit). *)

val add : t -> Cache.entry -> unit
(** Locked insert into the owning shard; per-shard LRU bounds apply. *)

val length : t -> int
val bytes_used : t -> int
(** Totals over all shards (each read under its shard's lock). *)

val shard_stats : t -> (int * int) array
(** Per-shard [(entries, bytes)], for operators and the hammer suite. *)

val view : t -> Cache.view
(** This map as a {!Cache.view}: {!Batch} and {!Daemon.Server} route
    every cache touch through it, so serving code is identical at any
    shard count. *)

val shard_path : string -> shards:int -> int -> string
(** The on-disk file for shard [i]: [path] itself when [shards = 1],
    else [path ^ ".shard" ^ i]. *)

val save_files : ?force:bool -> t -> string -> (unit, string) result
(** Save every shard (atomic per shard, see {!Cache.save_file});
    removes stale [path.shardJ] files left by a larger previous shard
    count. Stops at the first failing shard and returns its reason —
    already-written shards remain valid complete documents. *)

val load_files :
  ?shards:int -> ?max_entries:int -> ?max_bytes:int -> string -> t
(** Total, like {!Cache.load_file}: missing files are a cold start,
    corrupt ones recover to empty (per shard). Loads shard files when
    any exist, else the legacy plain [path], re-routing every entry
    through {!add} so shard-count changes migrate transparently. *)

(**/**)

module For_testing : sig
  val with_shard : t -> int -> (Cache.t -> 'a) -> 'a
  (** Run [f] on shard [i]'s underlying cache {e under its lock} — the
      budget-invariant prober of the hammer suite. *)
end
