(** Seeded zipfian workload generator.

    Builds a ranked {e population} of distinct requests — the cartesian
    product of named graphs × SPE counts × solver strategies, popularity
    rank assigned by a seeded shuffle — and samples [requests] of them
    under a Zipf distribution with skew [s] (rank [k] drawn with
    probability proportional to [1/(k+1)^s]; [s = 0] is uniform, larger
    [s] concentrates traffic on a few hot problems, the shape real
    request streams have).

    Everything is deterministic under {!Support.Rng}: equal specs
    generate byte-equal streams, which is what lets the traffic suite
    assert bitwise-identical replies across shard counts and pool sizes,
    and lets CI replay the exact published benchmark load. *)

type spec = {
  seed : int;
  requests : int;  (** Stream length. *)
  skew : float;  (** Zipf exponent [s >= 0.]; [0.] is uniform. *)
  graphs : (string * Streaming.Graph.t) list;
      (** [(label, graph)] population axis. Labels become request
          labels, so they must be request-line tokens (no whitespace,
          ['#'] or ['=']) if the stream is to be rendered with
          {!lines}. *)
  spes : int list;  (** SPE counts (each 0–8, QS22 platforms). *)
  strategies : Request.strategy list;
}

val default_spec : spec
(** seed 42, 200 requests, skew 1.1, 8 SPEs, the default portfolio
    strategy — and an {e empty} graph list the caller must fill. *)

val population : spec -> Request.t array
(** The ranked population (index = popularity rank, hottest first).
    Exposed for tests and for sizing cache budgets against the number
    of distinct problems.
    @raise Invalid_argument on an empty axis or out-of-range [spes]. *)

val generate : spec -> Request.t array
(** The request stream: [spec.requests] samples from {!population}
    under the zipf law, in arrival order.
    @raise Invalid_argument as {!population}, or on a negative request
    count or non-finite/negative skew. *)

val split : domains:int -> Request.t array -> Request.t array array
(** Round-robin partition into [domains] per-client streams (client [d]
    gets requests [d, d+domains, ...] in arrival order) — the shape the
    multi-domain hammer and the [traffic --clients] replayer use. *)

val line : Request.t -> string
(** Render one request in the request-file grammar ({!Request.parse_line}
    round-trips it onto the same fingerprint).
    @raise Invalid_argument when the label is not token-safe. *)

val lines : ?ids:bool -> Request.t array -> string list
(** The whole stream, one line per request; [ids] (default [false])
    prefixes ["id=rI "] for daemon-framed replay. *)
