module Request = Service.Request
module Batch = Service.Batch
module Cache = Service.Cache
module Shard = Service.Shard

(* --- metrics -------------------------------------------------------------- *)

(* Registered eagerly at module initialisation (lazy registration from
   pool workers would race family creation) and bumped behind the
   repo-wide [Obs.Metrics.enabled] branch. The serve loops enable
   metrics on entry: a daemon's METRICS verb is part of its contract. *)
let m_requests =
  Obs.Metrics.counter ~help:"Daemon request lines received"
    "daemon_requests_total"

let m_accepted =
  Obs.Metrics.counter ~help:"Daemon requests admitted (cache hits included)"
    "daemon_accepted_total"

let m_rejected =
  Obs.Metrics.counter ~help:"Daemon requests refused by admission control"
    "daemon_rejected_total"

let m_hits =
  Obs.Metrics.counter ~help:"Daemon requests answered from the warm cache"
    "daemon_hits_total"

let m_solved =
  Obs.Metrics.counter ~help:"Daemon requests answered by a completed solve"
    "daemon_solved_total"

let m_partial =
  Obs.Metrics.counter
    ~help:"Daemon requests answered with a cancelled solve's best incumbent"
    "daemon_partial_total"

let m_deadline =
  Obs.Metrics.counter ~help:"Daemon solves cancelled by their deadline"
    "daemon_deadline_expired_total"

let m_errors =
  Obs.Metrics.counter ~help:"Daemon request lines refused as malformed"
    "daemon_errors_total"

let m_flushes =
  Obs.Metrics.counter ~help:"Daemon cache persistence flushes"
    "daemon_cache_flushes_total"

let g_pending =
  Obs.Metrics.gauge ~help:"Daemon requests admitted but not yet dispatched"
    "daemon_pending"

let g_inflight =
  Obs.Metrics.gauge ~help:"Daemon solves currently running" "daemon_inflight"

let h_latency =
  Obs.Metrics.histogram ~help:"Daemon reply latency (seconds since receipt)"
    "daemon_reply_seconds"

(* Slack can be negative (reply after the deadline), so the log-scale
   default is unusable: explicit symmetric-ish ms bounds instead. *)
let slack_buckets =
  [|
    -60000.; -30000.; -10000.; -5000.; -2000.; -1000.; -500.; -200.; -100.;
    -50.; -20.; -10.; -5.; -2.; -1.; 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100.;
    200.; 500.; 1000.; 2000.; 5000.; 10000.; 30000.; 60000.;
  |]

let h_slack =
  Obs.Metrics.histogram
    ~help:
      "Milliseconds between the reply and its deadline (negative: missed)"
    ~buckets:slack_buckets "daemon_deadline_slack_ms"

(* SLO and stage families: every child hoisted eagerly at module init —
   family lookups from pool workers would contend the registry lock and
   lazy registration across domains is racy. *)
let slo_family name help =
  let child band = Obs.Metrics.counter_family ~help name ~labels:[ "band" ] [ band ] in
  (child "low", child "normal", child "high")

let slo_met =
  slo_family "daemon_slo_met_total"
    "Replies delivered within their deadline (no deadline counts as met), by priority band"

let slo_missed =
  slo_family "daemon_slo_missed_total"
    "Replies delivered after their deadline, by priority band"

let slo_counter (low, normal, high) prio =
  if prio < 0 then low else if prio > 0 then high else normal

let stage_hist stage =
  Obs.Metrics.histogram_family
    ~help:"Per-request stage latency (seconds), by stage" "daemon_stage_seconds"
    ~labels:[ "stage" ] [ stage ]

let h_stage_queue = stage_hist "queue"
let h_stage_cache = stage_hist "cache"
let h_stage_solve = stage_hist "solve"
let h_stage_reply = stage_hist "reply"

(* --- configuration -------------------------------------------------------- *)

type config = {
  default_spes : int;
  default_strategy : Request.strategy;
  bound : int;
  concurrency : int;
  fibers : bool;
  max_inflight : int;
  cache_path : string option;
  cache_entries : int option;
  cache_bytes : int option;
  cache_shards : int;
  flush_period : float;
  metrics_file : string option;
  trace_dir : string option;
}

let default_config =
  {
    default_spes = 8;
    default_strategy = Request.default_strategy;
    bound = 64;
    concurrency = 1;
    fibers = false;
    max_inflight = 32;
    cache_path = None;
    cache_entries = None;
    cache_bytes = None;
    cache_shards = 1;
    flush_period = 30.;
    metrics_file = None;
    trace_dir = None;
  }

(* --- server state --------------------------------------------------------- *)

type status = [ `Hit | `Solved | `Partial | `Rejected | `Error of string ]

type reply = {
  id : string;
  status : status;
  response : Batch.response option;
  latency : float;
}

type outcome =
  | Finished of {
      assignment : int array;
      period : float;
      bound : float;  (* proven lower bound, quoted on partial replies *)
      partial : bool;
      deadline_hit : bool;
    }
  | Crashed of string
  | Hit of Batch.response
      (* fiber mode only: a dispatch-time cache hit parked in the reply
         sequencer so it goes out in admission order like every other
         queued reply *)

type job = {
  id : string;
  request : Request.t;
  out : string -> unit;
  received : float;
  deadline : float;  (* absolute seconds; [infinity] when none *)
  trace : Obs.Span.collector;  (* this request's private span buffer *)
  span : Obs.Span.ctx;  (* position under the request root span *)
  mutable promise : unit Par.Pool.promise option;
  (* fiber mode: reply-sequencing slot (pop order) and the request
     fingerprint, both stamped at dispatch; -1 / "" beforehand *)
  mutable slot : int;
  mutable fp : string;
}

type done_item = { job : job; outcome : outcome }

type stats = {
  received : int;
  accepted : int;
  rejected : int;
  errors : int;
  hits : int;
  solved : int;
  partials : int;
  replies : int;
}

type t = {
  config : config;
  shard : Shard.t;
  (* Every cache touch below goes through this view, so the serving
     code is byte-identical whether the map has 1 shard or 64. *)
  view : Cache.view;
  pool : Par.Pool.t option;
  admission : job Admission.t;
  (* Pool workers push completions; only the main loop drains. The
     cache, the admission queue and every [out] writer are therefore
     touched exclusively from the main loop. *)
  completed : done_item Queue.t;
  completed_mutex : Mutex.t;
  (* Fiber-mode reply sequencer, main-loop-only like the cache: done
     items keyed by slot, emitted in contiguous slot order. [deferred]
     holds popped jobs whose fingerprint is being solved by an earlier
     slot; [inflight_fps] the fingerprints with a live solve fiber. *)
  ready : (int, done_item) Hashtbl.t;
  deferred : job Queue.t;
  inflight_fps : (string, unit) Hashtbl.t;
  mutable next_slot : int;
  mutable next_reply : int;
  stop : bool Atomic.t;
  load_graph : string -> Streaming.Graph.t;
  on_reply : reply -> unit;
  (* Completed span trees for the TRACE verb, bounded FIFO. Touched only
     from the main loop (send_reply and handle_line both run there). *)
  traces : (string, Obs.Span.span list) Hashtbl.t;
  trace_order : string Queue.t;
  mutable line_no : int;
  mutable auto_id : int;
  mutable last_flush : float;
  mutable dirty : bool;
  mutable received : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable errors : int;
  mutable hits : int;
  mutable solved : int;
  mutable partials : int;
  mutable replies : int;
}

let default_loader () =
  let table = Hashtbl.create 16 in
  fun path ->
    match Hashtbl.find_opt table path with
    | Some g -> g
    | None ->
        let g = Streaming.Serialize.of_file path in
        Hashtbl.add table path g;
        g

let create ?(on_reply = fun _ -> ()) ?load_graph config =
  if config.concurrency <= 0 then
    invalid_arg "Server.create: non-positive concurrency";
  if config.fibers && config.max_inflight <= 0 then
    invalid_arg "Server.create: non-positive max_inflight";
  if config.flush_period < 0. then
    invalid_arg "Server.create: negative flush period";
  let shard =
    match config.cache_path with
    | Some path ->
        Shard.load_files ~shards:config.cache_shards
          ?max_entries:config.cache_entries ?max_bytes:config.cache_bytes path
    | None ->
        Shard.create ~shards:config.cache_shards
          ?max_entries:config.cache_entries ?max_bytes:config.cache_bytes ()
  in
  (* Fibers always get a pool, even at concurrency 1: the whole point
     is that solves run off the main loop so hits keep flowing. *)
  let pool =
    if config.concurrency > 1 || config.fibers then
      Some (Par.Pool.create ~size:config.concurrency ())
    else None
  in
  let load_graph =
    match load_graph with Some f -> f | None -> default_loader ()
  in
  (match config.trace_dir with
  | Some dir -> ( try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | None -> ());
  {
    config;
    shard;
    view = Shard.view shard;
    pool;
    admission = Admission.create ~bound:config.bound;
    completed = Queue.create ();
    completed_mutex = Mutex.create ();
    ready = Hashtbl.create 64;
    deferred = Queue.create ();
    inflight_fps = Hashtbl.create 64;
    next_slot = 0;
    next_reply = 0;
    stop = Atomic.make false;
    load_graph;
    on_reply;
    traces = Hashtbl.create 64;
    trace_order = Queue.create ();
    line_no = 0;
    auto_id = 0;
    last_flush = Unix.gettimeofday ();
    dirty = false;
    received = 0;
    accepted = 0;
    rejected = 0;
    errors = 0;
    hits = 0;
    solved = 0;
    partials = 0;
    replies = 0;
  }

let shard t = t.shard

let stats t =
  {
    received = t.received;
    accepted = t.accepted;
    rejected = t.rejected;
    errors = t.errors;
    hits = t.hits;
    solved = t.solved;
    partials = t.partials;
    replies = t.replies;
  }

let request_shutdown t = Atomic.set t.stop true
let shutdown_requested t = Atomic.get t.stop

let idle t =
  Admission.load t.admission = 0
  && begin
       Mutex.lock t.completed_mutex;
       let empty = Queue.is_empty t.completed in
       Mutex.unlock t.completed_mutex;
       empty
     end

let publish_queue t =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.Gauge.set g_pending
      (float_of_int (Admission.pending t.admission));
    Obs.Metrics.Gauge.set g_inflight
      (float_of_int (Admission.inflight t.admission))
  end

let metrics_inc c = if Obs.Metrics.enabled () then Obs.Metrics.Counter.inc c

let observe_latency latency =
  if Obs.Metrics.enabled () then Obs.Metrics.Histogram.observe h_latency latency

(* One timed stage: a child span plus the matching stage-latency
   histogram observation. *)
let stage_span span hist name f =
  let t0 = Unix.gettimeofday () in
  let v = Obs.Span.with_span span name (fun _ -> f ()) in
  if Obs.Metrics.enabled () then
    Obs.Metrics.Histogram.observe hist (Unix.gettimeofday () -. t0);
  v

(* --- persistence ---------------------------------------------------------- *)

let write_metrics_file path =
  let text =
    if Filename.check_suffix path ".json" then
      Obs.Metrics.to_json Obs.Metrics.default
    else Obs.Metrics.to_prometheus Obs.Metrics.default
  in
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text)
  with
  | () -> ()
  | exception Sys_error m -> Printf.eprintf "cellsched serve: %s\n%!" m

let flush t =
  (match t.config.cache_path with
  | Some path -> (
      match Shard.save_files ~force:true t.shard path with
      | Ok () ->
          t.dirty <- false;
          t.last_flush <- Unix.gettimeofday ();
          metrics_inc m_flushes
      | Error m -> Printf.eprintf "cellsched serve: cache flush: %s\n%!" m)
  | None -> ());
  match t.config.metrics_file with
  | Some path -> write_metrics_file path
  | None -> ()

let maybe_flush t =
  if
    t.dirty && t.config.cache_path <> None
    && t.config.flush_period > 0.
    && Unix.gettimeofday () -. t.last_flush >= t.config.flush_period
  then flush t

(* --- request lifecycle ---------------------------------------------------- *)

let next_id t =
  t.auto_id <- t.auto_id + 1;
  Printf.sprintf "q%d" t.auto_id

let max_retained_traces = 256

let write_trace_file t (job : job) spans =
  match t.config.trace_dir with
  | None -> ()
  | Some dir -> (
      let path = Filename.concat dir (job.id ^ ".json") in
      try
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Obs.Span.to_chrome_json spans))
      with Sys_error m -> Printf.eprintf "cellsched serve: trace: %s\n%!" m)

let store_trace t (job : job) spans =
  if not (Hashtbl.mem t.traces job.id) then begin
    Queue.push job.id t.trace_order;
    while Queue.length t.trace_order > max_retained_traces do
      Hashtbl.remove t.traces (Queue.pop t.trace_order)
    done
  end;
  (* An id reused by the client keeps its latest tree (no extra FIFO
     slot, so eviction order stays first-completion). *)
  Hashtbl.replace t.traces job.id spans

let send_reply t (job : job) ~partial ?bound response =
  stage_span job.span h_stage_reply "reply" (fun () ->
      job.out (Protocol.render_reply ~id:job.id ~partial ?bound response));
  let now = Unix.gettimeofday () in
  let latency = now -. job.received in
  t.replies <- t.replies + 1;
  observe_latency latency;
  let status : status =
    if partial then `Partial
    else match response.Batch.source with Batch.Hit -> `Hit | _ -> `Solved
  in
  (* SLO accounting: a reply with no deadline counts as met; slack is
     only meaningful (and only observed) for finite deadlines. *)
  let met = now <= job.deadline in
  if Obs.Metrics.enabled () then begin
    let prio = job.request.Request.prio in
    Obs.Metrics.Counter.inc
      (slo_counter (if met then slo_met else slo_missed) prio);
    if Float.is_finite job.deadline then
      Obs.Metrics.Histogram.observe h_slack ((job.deadline -. now) *. 1000.)
  end;
  (* Close the request root span and retain the finished tree for the
     TRACE verb and the per-request Chrome file. *)
  Obs.Span.record
    (Obs.Span.root job.trace ~trace:job.id)
    ~t_start:job.received ~t_stop:now
    ~attrs:
      [
        ( "status",
          Obs.Span.String
            (match status with
            | `Partial -> "partial"
            | `Hit -> "hit"
            | _ -> "solved") );
        ("prio", Obs.Span.Int job.request.Request.prio);
        ("slo_met", Obs.Span.Bool met);
      ]
    "request";
  let spans = Obs.Span.spans job.trace in
  store_trace t job spans;
  write_trace_file t job spans;
  t.on_reply { id = job.id; status; response = Some response; latency }

let send_error t ~id ~out reason =
  t.errors <- t.errors + 1;
  t.replies <- t.replies + 1;
  metrics_inc m_errors;
  out (Protocol.render_error ~id reason);
  t.on_reply { id; status = `Error reason; response = None; latency = 0. }

(* Runs on a pool worker (or inline when [concurrency = 1]). Touches
   nothing but the request, the stop flag and the completion queue. *)
let run_job t (job : job) =
  let deadline_hit = ref false and cancelled = ref false in
  (* Fiber mode runs this as a suspendable fiber: the tick yields the
     domain at every solver node-budget poll (a no-op elsewhere), so
     more in-flight solves than domains still make joint progress. *)
  let tick =
    if t.config.fibers then Par.Fiber.yielder ~every:1 else fun () -> ()
  in
  let should_stop () =
    tick ();
    if Unix.gettimeofday () > job.deadline then begin
      deadline_hit := true;
      cancelled := true;
      true
    end
    else if Atomic.get t.stop then begin
      cancelled := true;
      true
    end
    else false
  in
  let t0 = Unix.gettimeofday () in
  let outcome =
    match
      Obs.Span.with_span_attrs job.span "solve" (fun span ->
          let res = Batch.solve_request ~span ~should_stop job.request in
          ( res,
            [
              ("partial", Obs.Span.Bool !cancelled);
              ("deadline_hit", Obs.Span.Bool !deadline_hit);
            ] ))
    with
    | assignment, period, bound ->
        Finished
          {
            assignment;
            period;
            bound;
            partial = !cancelled;
            deadline_hit = !deadline_hit;
          }
    | exception exn -> Crashed (Printexc.to_string exn)
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.Histogram.observe h_stage_solve (Unix.gettimeofday () -. t0);
  Mutex.lock t.completed_mutex;
  Queue.push { job; outcome } t.completed;
  Mutex.unlock t.completed_mutex

let finish_job t { job; outcome } =
  (match (job.promise, t.pool) with
  | Some p, Some pool -> Par.Pool.await pool p
  | _ -> ());
  job.promise <- None;
  Admission.finish t.admission;
  match outcome with
  | Crashed reason -> send_error t ~id:job.id ~out:job.out reason
  | Hit response ->
      t.hits <- t.hits + 1;
      metrics_inc m_hits;
      send_reply t job ~partial:false response
  | Finished { assignment; period; bound; partial; deadline_hit } ->
      (* Partial results are timing-dependent: render them, never cache
         them (store:false), so the deterministic cache stays a pure
         function of the completed-solve history. *)
      let response =
        Batch.solved_response_view ~store:(not partial) ~view:t.view
          job.request (assignment, period)
      in
      if partial then begin
        t.partials <- t.partials + 1;
        metrics_inc m_partial;
        if deadline_hit then metrics_inc m_deadline
      end
      else begin
        t.solved <- t.solved + 1;
        t.dirty <- true;
        metrics_inc m_solved
      end;
      send_reply t job ~partial
        ?bound:(if partial then Some bound else None)
        response

let drain_completed t =
  let pending = Queue.create () in
  Mutex.lock t.completed_mutex;
  Queue.transfer t.completed pending;
  Mutex.unlock t.completed_mutex;
  Queue.iter (finish_job t) pending

let dispatch t =
  let rec go () =
    if Admission.inflight t.admission < t.config.concurrency then
      match Admission.next t.admission with
      | None -> ()
      | Some job -> (
          (* The admission-queue wait: stamped from receipt to dispatch,
             recorded here because its start crossed an async boundary. *)
          Obs.Span.record job.span ~t_start:job.received "queue";
          if Obs.Metrics.enabled () then
            Obs.Metrics.Histogram.observe h_stage_queue
              (Unix.gettimeofday () -. job.received);
          (* Re-check the cache at dispatch: a duplicate that queued
             behind its twin becomes a hit the moment the twin's solve
             lands, instead of burning a second solve. *)
          match
            stage_span job.span h_stage_cache "cache@dispatch" (fun () ->
                Batch.try_cache_view ~view:t.view job.request)
          with
          | Some response ->
              Admission.finish t.admission;
              t.hits <- t.hits + 1;
              metrics_inc m_hits;
              send_reply t job ~partial:false response;
              go ()
          | None ->
              (match t.pool with
              | Some pool ->
                  job.promise <-
                    Some (Par.Pool.submit pool (fun () -> run_job t job))
              | None -> run_job t job);
              go ())
  in
  go ()

(* --- fiber dispatch ------------------------------------------------------- *)

(* Fiber mode keeps the determinism contract under concurrent solves by
   separating execution order from reply order. Every popped job gets a
   slot (pop order = the order the sequential daemon would have served
   it); solves run concurrently as pool fibers and land in [ready];
   replies — and the cache stores they carry — are emitted strictly in
   contiguous slot order by [finish_ready]. A job whose fingerprint is
   already being solved is parked in [deferred] instead of burning a
   duplicate solve, and re-probed when its twin's slot finishes — the
   fiber-mode analogue of the sequential cache@dispatch re-check, which
   keeps its reply bytes ([source: cache]) identical. Progress is
   guaranteed: a deferred job always waits on a strictly smaller slot
   (its twin was popped earlier or spawned by an earlier retry), so the
   smallest unfinished slot is never deferred. *)

let fiber_pool t =
  match t.pool with Some p -> p | None -> assert false (* created with fibers *)

let finish_fiber t ({ job; outcome } as item) =
  (match outcome with
  | Finished _ | Crashed _ ->
      if job.fp <> "" then Hashtbl.remove t.inflight_fps job.fp
  | Hit _ -> ());
  finish_job t item

let spawn_solve t (job : job) =
  Hashtbl.replace t.inflight_fps job.fp ();
  ignore (Par.Fiber.spawn ~pool:(fiber_pool t) (fun () -> run_job t job))

(* Probe-or-spawn for a job already holding a slot; shared between
   first dispatch and deferred retries so both produce the exact bytes
   the sequential cache@dispatch path would. *)
let classify_dispatch t (job : job) =
  if Hashtbl.mem t.inflight_fps job.fp then Queue.push job t.deferred
  else
    match
      stage_span job.span h_stage_cache "cache@dispatch" (fun () ->
          Batch.try_cache_view ~view:t.view job.request)
    with
    | Some response -> Hashtbl.replace t.ready job.slot { job; outcome = Hit response }
    | None -> spawn_solve t job

let retry_deferred t =
  if not (Queue.is_empty t.deferred) then begin
    let parked = Queue.create () in
    Queue.transfer t.deferred parked;
    (* retry in queue (= slot) order; classify_dispatch re-defers any
       job whose fingerprint went back in flight this round *)
    Queue.iter (fun job -> classify_dispatch t job) parked
  end

let transfer_completed t =
  let pending = Queue.create () in
  Mutex.lock t.completed_mutex;
  Queue.transfer t.completed pending;
  Mutex.unlock t.completed_mutex;
  Queue.iter (fun ({ job; _ } as item) -> Hashtbl.replace t.ready job.slot item)
    pending

let rec finish_ready t =
  match Hashtbl.find_opt t.ready t.next_reply with
  | None -> ()
  | Some item ->
      Hashtbl.remove t.ready t.next_reply;
      t.next_reply <- t.next_reply + 1;
      finish_fiber t item;
      (* this finish may have stored a cache entry and released its
         fingerprint: deferred twins can now hit or respawn *)
      retry_deferred t;
      finish_ready t

let dispatch_fibers t =
  let rec go () =
    if Hashtbl.length t.inflight_fps < t.config.max_inflight then
      match Admission.next t.admission with
      | None -> ()
      | Some job ->
          job.slot <- t.next_slot;
          t.next_slot <- t.next_slot + 1;
          job.fp <- Request.fingerprint job.request;
          Obs.Span.record job.span ~t_start:job.received "queue";
          if Obs.Metrics.enabled () then
            Obs.Metrics.Histogram.observe h_stage_queue
              (Unix.gettimeofday () -. job.received);
          classify_dispatch t job;
          go ()
  in
  go ()

let poll t =
  if t.config.fibers then begin
    transfer_completed t;
    finish_ready t;
    dispatch_fibers t;
    (* a dispatch-time hit may occupy the very next slot *)
    finish_ready t
  end
  else begin
    drain_completed t;
    dispatch t;
    drain_completed t
  end;
  maybe_flush t;
  publish_queue t

let handle_line t ~out line =
  t.line_no <- t.line_no + 1;
  match
    Protocol.parse ~load_graph:t.load_graph
      ~default_spes:t.config.default_spes
      ~default_strategy:t.config.default_strategy t.line_no line
  with
  | Protocol.Nothing -> ()
  | Protocol.Command Protocol.Ping -> out Protocol.pong
  | Protocol.Command Protocol.Quit ->
      out Protocol.bye;
      request_shutdown t
  | Protocol.Command Protocol.Metrics ->
      out
        (Protocol.render_metrics
           (Obs.Metrics.to_prometheus Obs.Metrics.default))
  | Protocol.Command (Protocol.Trace id) -> (
      (* A read-only verb like METRICS: replies without touching the
         request counters or admission control. *)
      match Hashtbl.find_opt t.traces id with
      | Some spans ->
          out (Protocol.render_trace ~id (Obs.Span.render_flat spans))
      | None -> out (Protocol.render_error ~id "unknown or evicted trace id"))
  | Protocol.Malformed { id; reason } ->
      t.received <- t.received + 1;
      metrics_inc m_requests;
      let id = match id with Some id -> id | None -> next_id t in
      send_error t ~id ~out reason
  | Protocol.Command (Protocol.Submit { id; request }) -> (
      t.received <- t.received + 1;
      metrics_inc m_requests;
      let id = match id with Some id -> id | None -> next_id t in
      let received = Unix.gettimeofday () in
      (* Every request gets a private span collector rooted at its id;
         the root "request" span itself is recorded when the reply goes
         out, but children nest under it from the first probe on. *)
      let trace = Obs.Span.collector () in
      let span = Obs.Span.sub (Obs.Span.root trace ~trace:id) "request" in
      (* The warm-cache hit path never queues: it is answered inline,
         bypassing admission control entirely, so an overloaded daemon
         keeps serving everything it already knows. *)
      match
        stage_span span h_stage_cache "cache" (fun () ->
            Batch.try_cache_view ~view:t.view request)
      with
      | Some response ->
          t.accepted <- t.accepted + 1;
          t.hits <- t.hits + 1;
          metrics_inc m_accepted;
          metrics_inc m_hits;
          send_reply t
            {
              id;
              request;
              out;
              received;
              deadline = infinity;
              trace;
              span;
              promise = None;
              slot = -1;
              fp = "";
            }
            ~partial:false response
      | None ->
          let deadline =
            match request.Request.deadline_ms with
            | Some ms -> received +. (ms /. 1000.)
            | None -> infinity
          in
          let job =
            {
              id;
              request;
              out;
              received;
              deadline;
              trace;
              span;
              promise = None;
              slot = -1;
              fp = "";
            }
          in
          if Admission.admit t.admission ~prio:request.Request.prio job then begin
            t.accepted <- t.accepted + 1;
            metrics_inc m_accepted;
            publish_queue t
          end
          else begin
            t.rejected <- t.rejected + 1;
            t.replies <- t.replies + 1;
            metrics_inc m_rejected;
            out (Protocol.render_reject ~id);
            t.on_reply
              { id; status = `Rejected; response = None; latency = 0. }
          end)

(* --- lifecycle ------------------------------------------------------------ *)

let drain t =
  while not (idle t) do
    poll t;
    if not (idle t) then Unix.sleepf 0.002
  done

let finish t =
  drain t;
  flush t;
  publish_queue t;
  match t.pool with Some pool -> Par.Pool.shutdown pool | None -> ()

let shutdown t =
  (* The stop flag cancels every in-flight solve; [drain] then
     dispatches the still-pending queue, whose solves cancel on their
     first check — every admitted request gets a (partial) reply before
     the flush, so a SIGTERM drops nothing. *)
  request_shutdown t;
  finish t

(* --- serve loops ---------------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Split complete lines out of [buf], leaving a trailing partial line
   (no '\n' yet) buffered for the next read. *)
let drain_lines buf f =
  if Buffer.length buf > 0 then begin
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None -> ()
    | Some _ ->
        Buffer.clear buf;
        let n = String.length s in
        let rec go start =
          if start < n then
            match String.index_from_opt s start '\n' with
            | Some i ->
                f (String.sub s start (i - start));
                go (i + 1)
            | None -> Buffer.add_substring buf s start (n - start)
        in
        go 0
  end

let install_signals t =
  let handler = Sys.Signal_handle (fun _ -> request_shutdown t) in
  List.iter
    (fun signal ->
      try Sys.set_signal signal handler
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let serve_fd ?on_reply ?load_graph config ~input ~output =
  Obs.Metrics.set_enabled true;
  let t = create ?on_reply ?load_graph config in
  install_signals t;
  let out = write_all output in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let eof = ref false in
  while (not (shutdown_requested t)) && not (!eof && idle t) do
    (if !eof then Unix.sleepf 0.002
     else
       let readable =
         match Unix.select [ input ] [] [] 0.05 with
         | r, _, _ -> r <> []
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
       in
       if readable then
         match Unix.read input chunk 0 (Bytes.length chunk) with
         | 0 -> eof := true
         | n ->
             Buffer.add_subbytes buf chunk 0 n;
             drain_lines buf (handle_line t ~out)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    poll t
  done;
  (* A final line without a trailing newline still deserves a reply. *)
  if Buffer.length buf > 0 && not (shutdown_requested t) then
    handle_line t ~out (Buffer.contents buf);
  if shutdown_requested t then shutdown t else finish t;
  t

let serve_socket ?on_reply ?load_graph config ~path =
  Obs.Metrics.set_enabled true;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (match Unix.lstat path with
  | st ->
      if st.Unix.st_kind = Unix.S_SOCK then Unix.unlink path
      else failwith (path ^ " exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 16;
  let t = create ?on_reply ?load_graph config in
  install_signals t;
  let clients : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let close_client fd =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Hashtbl.remove clients fd
  in
  (* A job's reply may outlive its client: swallow write failures so a
     disconnect never kills the daemon (SIGPIPE is already ignored). *)
  let client_out fd s =
    try write_all fd s with Unix.Unix_error _ | Sys_error _ -> ()
  in
  let chunk = Bytes.create 65536 in
  while not (shutdown_requested t) do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [ srv ] in
    (match Unix.select fds [] [] 0.05 with
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd == srv then (
              match Unix.accept srv with
              | cfd, _ -> Hashtbl.replace clients cfd (Buffer.create 1024)
              | exception Unix.Unix_error _ -> ())
            else
              match Hashtbl.find_opt clients fd with
              | None -> ()
              | Some buf -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 ->
                      if Buffer.length buf > 0 then
                        handle_line t ~out:(client_out fd)
                          (Buffer.contents buf);
                      close_client fd
                  | n ->
                      Buffer.add_subbytes buf chunk 0 n;
                      drain_lines buf (handle_line t ~out:(client_out fd))
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  | exception Unix.Unix_error _ -> close_client fd))
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    poll t
  done;
  shutdown t;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  t
