(* Bounded priority admission queue: the daemon's defence against
   overload. Capacity covers both queued and in-flight work; a full
   queue rejects at admission time (the caller sends an explicit
   `REJECT overload`) instead of queueing without bound. *)

(* The heap holds (negated priority, arrival sequence) keys so the
   minimum is the highest-priority, earliest-arrived item; payloads
   live in a side table keyed by sequence number. *)
module Key_heap = Support.Binary_heap.Make (struct
  type t = int * int

  let compare = compare
end)

type 'a t = {
  bound : int;
  heap : Key_heap.t;
  payloads : (int, 'a) Hashtbl.t;
  mutable seq : int;
  mutable inflight : int;
}

let create ~bound =
  if bound <= 0 then invalid_arg "Admission.create: non-positive bound";
  {
    bound;
    heap = Key_heap.create ();
    payloads = Hashtbl.create 64;
    seq = 0;
    inflight = 0;
  }

let bound t = t.bound
let pending t = Key_heap.length t.heap
let inflight t = t.inflight
let load t = pending t + t.inflight

let admit t ~prio payload =
  if load t >= t.bound then false
  else begin
    t.seq <- t.seq + 1;
    Key_heap.add t.heap (-prio, t.seq);
    Hashtbl.add t.payloads t.seq payload;
    true
  end

let next t =
  if Key_heap.is_empty t.heap then None
  else begin
    let _, seq = Key_heap.pop_min t.heap in
    let payload = Hashtbl.find t.payloads seq in
    Hashtbl.remove t.payloads seq;
    t.inflight <- t.inflight + 1;
    Some payload
  end

let finish t =
  if t.inflight <= 0 then invalid_arg "Admission.finish: nothing in flight";
  t.inflight <- t.inflight - 1
