(** Long-lived scheduling server: {!Service.Batch} promoted to a
    persistent event loop.

    One engine drives both transports ([stdin] pipe mode and a
    Unix-domain socket): lines come in through {!handle_line}, work
    advances through {!poll}. The split keeps every policy decision
    unit-testable without a file descriptor in sight:

    - {b Hits are free}: a request answered by the warm {!Service.Cache}
      replies inline from {!handle_line} and never queues — an
      overloaded daemon keeps serving everything it already knows.
    - {b Admission control}: misses enter a bounded priority queue
      ({!Admission}); when queued plus in-flight work reaches
      [config.bound] the daemon replies [REJECT <id> overload]
      immediately instead of queueing without bound.
    - {b Deadlines}: a request's [deadline=MS] starts a wall-clock
      budget at receipt; when it expires mid-solve the solver is
      cancelled through the [should_stop] hook and the best incumbent
      so far — always a feasible mapping — is returned tagged
      [partial]. Partial results are {e never} written to the cache
      (they are timing-dependent; the cache stays deterministic).
    - {b Concurrency}: [config.concurrency = 1] solves inline in
      {!poll} (deterministic, no domains spawned — fork-safe for
      tests); [> 1] multiplexes solves over a {!Par.Pool.t}, with
      completions crossing back to the main loop through a
      mutex-protected queue, so the cache and the client writers are
      only ever touched from the loop.
    - {b Fibers}: with [config.fibers] every dispatched miss runs as a
      suspendable {!Par.Fiber} on the pool (created even at
      concurrency 1), yielding its domain at solver node-budget
      boundaries, with up to [config.max_inflight] solves in flight at
      once. Replies stay bitwise identical to the sequential daemon: a
      {e slot sequencer} emits queued replies (and their cache stores)
      in admission-pop order regardless of completion order, and a job
      whose fingerprint is already being solved parks until its twin's
      slot lands — then hits the just-stored entry exactly as the
      sequential cache@dispatch re-check would. Inline warm-cache hits
      never queue, so they keep overtaking long dives; that ordering
      (hit before earlier-arrived solve) is the one deliberate
      difference from the pool-less daemon, where a solve blocks the
      loop.
    - {b Sharding}: the warm cache is a {!Service.Shard} map of
      [config.cache_shards] independently-locked shards; every probe
      and insert below goes through its {!Service.Cache.view}, so the
      serving code — and the reply bytes — are identical at any shard
      count. One shard (the default) behaves exactly like the plain
      pre-shard cache.
    - {b Persistence}: the cache loads warm from [cache_path] at
      start-up, flushes periodically (every [flush_period] seconds,
      when dirty) and always on shutdown — atomically {e per shard}
      ({!Service.Shard.save_files}), so a kill mid-flush never loses
      any shard's previous complete snapshot. Shard-count changes
      (and legacy single-file caches) migrate automatically at load.
    - {b Shutdown}: SIGINT/SIGTERM (installed by the serve loops) and
      the [QUIT] verb set one atomic flag; in-flight solves cancel,
      still-pending requests are dispatched and cancel on their first
      check, so {e every admitted request is replied to} (tagged
      partial) before the final flush — a SIGTERM drops nothing.

    - {b Tracing}: every submitted request owns a private
      {!Obs.Span.collector}; the engine records a span tree rooted at
      a ["request"] span (annotated with status, priority and SLO
      outcome) with children for the cache probe ([cache] at receipt,
      [cache@dispatch] at the queue head), the admission-queue wait
      ([queue], stamped from receipt), the [solve] (whose subtree is
      the solver flight recorder of {!Service.Batch.solve_request} —
      portfolio entrants, dive/fanout/subtree tasks, [milp-bb]) and the
      [reply] rendering/write. Finished trees are retained in a
      bounded FIFO (most recent 256) and served back by the
      [TRACE <id>] verb as one [span <path> dur_ms=...] line per span,
      parents first; with [config.trace_dir] set, each request
      additionally writes [<dir>/<id>.json] in Chrome [trace_event]
      format.

    Metric families ([daemon_*]: accepted/rejected/hits/solved/partial/
    deadline-expired/errors/flushes counters, pending and in-flight
    gauges, reply-latency, deadline-slack and per-stage latency
    histograms, SLO met/missed counters by priority band) are
    registered at module initialisation; the serve loops enable the
    registry on entry. *)

type config = {
  default_spes : int;  (** For request lines without [spes=]. *)
  default_strategy : Service.Request.strategy;
  bound : int;  (** Admission bound: max queued + in-flight misses. *)
  concurrency : int;  (** [1] = inline solves; [n > 1] = pool of [n]. *)
  fibers : bool;
      (** Dispatch misses as suspendable {!Par.Fiber}s over the pool
          (spawning one even at concurrency 1), replies sequenced in
          admission order. *)
  max_inflight : int;
      (** Fiber mode only: max concurrently in-flight solve fibers
          (default 32). *)
  cache_path : string option;
      (** Warm-start load at create, flush target afterwards. *)
  cache_entries : int option;  (** Total LRU entry bound (default 1024). *)
  cache_bytes : int option;  (** Total LRU byte bound (default 16 MiB). *)
  cache_shards : int;
      (** Independently-locked cache shards (default 1; max
          {!Service.Shard.max_shards}). Budgets above are totals,
          split evenly across shards. *)
  flush_period : float;
      (** Seconds between background flushes; [0.] disables the
          periodic flush (shutdown still flushes). *)
  metrics_file : string option;
      (** Rewritten at every flush and at shutdown; Prometheus text, or
          JSON when the path ends in [.json]. *)
  trace_dir : string option;
      (** When set (created if missing), every completed request writes
          its span tree to [<dir>/<id>.json] as a Chrome trace. *)
}

val default_config : config
(** 8 SPEs, portfolio strategy, bound 64, concurrency 1, fibers off
    (max 32 in flight when on), one cache shard, no persistence, 30 s
    flush period, no trace directory. *)

type status = [ `Hit | `Solved | `Partial | `Rejected | `Error of string ]

type reply = {
  id : string;
  status : status;
  response : Service.Batch.response option;
      (** [None] for [`Rejected] and [`Error]. *)
  latency : float;  (** Seconds from line receipt to reply. *)
}

type stats = {
  received : int;  (** Request lines (malformed included; verbs not). *)
  accepted : int;  (** Hits plus admitted misses. *)
  rejected : int;
  errors : int;
  hits : int;
  solved : int;
  partials : int;
  replies : int;  (** Every reply sent, [REJECT]/[ERROR] included. *)
}

type t

val create :
  ?on_reply:(reply -> unit) ->
  ?load_graph:(string -> Streaming.Graph.t) ->
  config ->
  t
(** [on_reply] observes every request reply (tests, bench latency
    collection). [load_graph] (default: a memoizing
    {!Streaming.Serialize.of_file}) lets tests resolve graph names
    without touching the filesystem.
    @raise Invalid_argument on non-positive [bound] or [concurrency]. *)

val shard : t -> Service.Shard.t
(** The warm cache (a 1-shard map unless configured otherwise). *)

val stats : t -> stats

val handle_line : t -> out:(string -> unit) -> string -> unit
(** Parse and act on one protocol line. Verbs, malformed lines, cache
    hits and admission rejections reply immediately through [out];
    admitted misses wait for {!poll}. *)

val poll : t -> unit
(** Advance the engine: reap completed solves (replying through each
    job's own [out]), dispatch pending work up to [concurrency], and
    run the periodic flush. Non-blocking with a pool; with
    [concurrency = 1] it runs every pending solve inline. *)

val idle : t -> bool
(** No pending, in-flight or unreaped work. *)

val drain : t -> unit
(** {!poll} until {!idle} — lets outstanding work complete normally. *)

val flush : t -> unit
(** Persist now: cache to [cache_path] (atomic, forced) and the
    metrics file, when configured. *)

val request_shutdown : t -> unit
(** Signal-safe: sets the atomic stop flag, which also cancels
    in-flight solves at their next check. The serve loops notice it on
    their next iteration; engine users should call {!shutdown}. *)

val shutdown_requested : t -> bool

val finish : t -> unit
(** Graceful end-of-input (the pipe EOF path): drain letting solves
    complete, flush, stop the pool. *)

val shutdown : t -> unit
(** Fast stop (the SIGTERM/QUIT path): cancel in-flight solves, reply
    [partial] to everything admitted, flush, stop the pool. *)

val serve_fd :
  ?on_reply:(reply -> unit) ->
  ?load_graph:(string -> Streaming.Graph.t) ->
  config ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  t
(** Pipe mode: read lines from [input], write replies to [output],
    until EOF (then {!finish}) or SIGINT/SIGTERM/[QUIT] (then
    {!shutdown}). Enables metrics and installs signal handlers.
    Returns the engine for post-mortem {!stats}. *)

val serve_socket :
  ?on_reply:(reply -> unit) ->
  ?load_graph:(string -> Streaming.Graph.t) ->
  config ->
  path:string ->
  t
(** Unix-domain-socket mode: listen on [path] (an existing socket file
    is replaced; anything else there fails), multiplex any number of
    clients with [select], ignore SIGPIPE, swallow writes to
    disconnected clients. [QUIT] or a signal stops the whole server
    ({!shutdown}); the socket file is unlinked on exit. *)
